// Tests for ports (messaging + translation) and IPC spaces.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "ipc/port.h"
#include "ipc/space.h"
#include "ipc/stubs.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

TEST(Port, SendReceiveRoundTrip) {
  auto p = make_object<port>();
  message m(7, {1, 2, 3});
  EXPECT_EQ(p->send(std::move(m)), KERN_SUCCESS);
  EXPECT_EQ(p->queued(), 1u);
  auto r = p->receive(100ms);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->op, 7u);
  EXPECT_EQ(r->data, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(p->queued(), 0u);
}

TEST(Port, MessagesAreFifo) {
  auto p = make_object<port>();
  for (std::uint32_t i = 0; i < 5; ++i) p->send(message(i));
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto r = p->try_receive();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->op, i);
  }
}

TEST(Port, TryReceiveEmptyIsNull) {
  auto p = make_object<port>();
  EXPECT_FALSE(p->try_receive().has_value());
}

TEST(Port, ReceiveTimesOut) {
  auto p = make_object<port>();
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(p->receive(30ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST(Port, ReceiverBlocksUntilSend) {
  auto p = make_object<port>();
  std::atomic<bool> got{false};
  auto rx = kthread::spawn("rx", [&] {
    auto r = p->receive(5s);
    got.store(r.has_value() && r->op == 9);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(got.load());
  p->send(message(9));
  rx->join();
  EXPECT_TRUE(got.load());
}

TEST(Port, OneReceiverPerMessage) {
  auto p = make_object<port>();
  constexpr int n = 200;
  std::atomic<int> received{0};
  std::vector<std::unique_ptr<kthread>> rxs;
  for (int i = 0; i < 3; ++i) {
    rxs.push_back(kthread::spawn("rx" + std::to_string(i), [&] {
      while (received.load() < n) {
        auto r = p->receive(50ms);
        if (r.has_value()) received.fetch_add(1);
      }
    }));
  }
  for (int i = 0; i < n; ++i) p->send(message(static_cast<std::uint32_t>(i)));
  for (auto& r : rxs) r->join();
  EXPECT_EQ(received.load(), n);  // every message delivered exactly once
}

TEST(Port, QueueLimitRejectsWithNoSpace) {
  auto p = make_object<port>();
  p->set_queue_limit(2);
  EXPECT_EQ(p->send(message(1)), KERN_SUCCESS);
  EXPECT_EQ(p->send(message(2)), KERN_SUCCESS);
  EXPECT_EQ(p->send(message(3)), KERN_NO_SPACE);
  EXPECT_EQ(p->sends_failed(), 1u);
}

TEST(Port, SendToDeadPortFails) {
  auto p = make_object<port>();
  p->destroy_port();
  EXPECT_EQ(p->send(message(1)), KERN_TERMINATED);
}

TEST(Port, DestroyWakesBlockedReceiver) {
  auto p = make_object<port>();
  std::atomic<bool> woke_empty{false};
  auto rx = kthread::spawn("rx", [&] {
    auto r = p->receive(5s);
    woke_empty.store(!r.has_value());
  });
  std::this_thread::sleep_for(10ms);
  p->destroy_port();
  rx->join();
  EXPECT_TRUE(woke_empty.load());
}

TEST(Port, DestroyDropsQueuedMessagesAndTheirRefs) {
  auto reply = make_object<port>("reply");
  auto p = make_object<port>();
  message m(1);
  m.reply_to = reply;
  p->send(std::move(m));
  EXPECT_EQ(reply->ref_count(), 2);  // ours + queued message's
  p->destroy_port();
  EXPECT_EQ(reply->ref_count(), 1);  // message's right released
}

TEST(Port, MessageCarriesReplyPortReference) {
  auto reply = make_object<port>("reply");
  auto p = make_object<port>();
  message m(1);
  m.reply_to = reply;
  p->send(std::move(m));
  auto r = p->receive(100ms);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->reply_to.get(), reply.get());
  EXPECT_EQ(reply->ref_count(), 2);
  r.reset();  // releases the carried right
  EXPECT_EQ(reply->ref_count(), 1);
}

TEST(Port, TranslationClonesReference) {
  auto obj = make_object<counter_object>();
  auto p = make_object<port>();
  p->set_translation(obj);  // port takes its own reference
  EXPECT_EQ(obj->ref_count(), 2);
  {
    auto t = p->translate();
    ASSERT_TRUE(t);
    EXPECT_EQ(t.get(), obj.get());
    EXPECT_EQ(obj->ref_count(), 3);
  }
  EXPECT_EQ(obj->ref_count(), 2);
}

TEST(Port, ClearTranslationDisablesAndReturnsRef) {
  auto obj = make_object<counter_object>();
  auto p = make_object<port>();
  p->set_translation(obj);
  auto removed = p->clear_translation();
  EXPECT_EQ(removed.get(), obj.get());
  EXPECT_FALSE(p->translate());
  EXPECT_FALSE(p->has_translation());
}

TEST(Port, TranslateOnDeadPortFails) {
  auto obj = make_object<counter_object>();
  auto p = make_object<port>();
  p->set_translation(obj);
  p->destroy_port();
  EXPECT_FALSE(p->translate());
}

TEST(Port, ObjectSurvivesPortDeath) {
  // "it is possible for an object to be terminated, but its data structure
  // to remain while pointers to it exist."
  auto obj = make_object<counter_object>();
  {
    auto p = make_object<port>();
    p->set_translation(obj);
    p->destroy_port();
  }  // port's data structure dies with its last reference
  std::uint64_t v = 0;
  EXPECT_EQ(obj->read(v), KERN_SUCCESS);  // object untouched
}

// --- the port-receive / teardown races fixed in this PR ---

TEST(PortRace, TimedOutReceiverRechecksQueueUnderPortLock) {
  // Regression test for the receive-timeout race: a bounded receive whose
  // thread_block_timeout reported timed_out used to return nullopt without
  // re-taking the port lock, so a send landing at the timeout boundary
  // (its thread_wakeup_one finding no waiter — the receiver had already
  // been dequeued) was stranded until some LATER receive, which on an RPC
  // reply port means the next call collects the previous call's reply.
  //
  // The fixed path must re-lock and drain before giving up. That gives a
  // deterministic pre/post-fix discriminator: force the timeout by hand
  // (clear_wait with timed_out) while the test HOLDS the port lock — a
  // fixed receiver cannot return until the lock is released, the broken
  // one returns immediately.
  auto p = make_object<port>();
  std::atomic<bool> returned{false};
  std::atomic<bool> got{false};
  const std::uint64_t blocked_before = event_counters().blocks_suspended;
  auto rx = kthread::spawn("rx", [&] {
    auto r = p->receive(10s);  // long bound: only clear_wait can "time it out"
    got.store(r.has_value());
    returned.store(true);
  });
  while (event_counters().blocks_suspended == blocked_before) std::this_thread::yield();
  std::this_thread::sleep_for(20ms);  // let the receiver reach its cv wait
  p->lock();
  clear_wait(*rx, wait_result::timed_out);  // fire the timeout by hand
  std::this_thread::sleep_for(50ms);
  // Pre-fix this is already true: the receiver returned without ever
  // touching the port lock we hold.
  EXPECT_FALSE(returned.load());
  p->unlock();
  // Race the rescue drain against a boundary send: whichever order the
  // scheduler picks, the message must not be lost.
  EXPECT_EQ(p->send(message(42)), KERN_SUCCESS);
  rx->join();
  EXPECT_TRUE(returned.load());
  EXPECT_TRUE(got.load() || p->queued() == 1) << "boundary message was lost";
}

TEST(PortRace, DestroyDeactivatesAndDrainsInOneCriticalSection) {
  // Regression test for the destroy_port race: teardown used to drain the
  // queue under one lock hold and only then call deactivate(), which took
  // the lock again — two separate critical sections. A send landing
  // between them passes the active() check and enqueues into an
  // already-drained, dying port, stranding the message (and any carried
  // port right) in the dead queue forever. The unprotected gap is a few
  // instructions wide, far too narrow to hit reliably from another thread
  // (especially on small hosts), so pin the fix structurally instead:
  // "every send that returned KERN_SUCCESS is in the queue the drain
  // collects" holds exactly when deactivation and drain share ONE
  // critical section — i.e. teardown acquires the port lock exactly once.
  // The pre-fix code acquires it twice and fails this assertion.
  auto p = make_object<port>();
  EXPECT_EQ(p->send(message(7)), KERN_SUCCESS);  // non-empty: the drain is real
  const std::uint64_t before = p->lock_addr()->stat_acquisitions;
  p->destroy_port();
  const std::uint64_t taken = p->lock_addr()->stat_acquisitions - before;
  EXPECT_EQ(taken, 1u)
      << "destroy_port took the port lock " << taken
      << " times; deactivate+drain must happen under a single hold, or a "
         "concurrent send can enqueue into the drained, dying queue";
  EXPECT_EQ(p->queued(), 0u);
}

TEST(PortRace, DestroyVsConcurrentSendNeverStrandsMessages) {
  // End-to-end shape of the same property under real concurrency: senders
  // hammer a port while it is torn down. Whatever interleaving the
  // scheduler picks, once destroy_port returns no message may remain
  // queued and every carried reply right must be released. (The
  // deterministic pin for the pre-fix two-critical-section bug is the
  // test above; this one guards the full teardown path, and gives TSan
  // a real destroy-vs-send race to chew on.)
  using namespace std::chrono_literals;
  constexpr int iters = 50;
  int stranded = 0;
  std::uint64_t leaked = 0;
  for (int i = 0; i < iters; ++i) {
    auto p = make_object<port>();
    auto carried = make_object<port>("carried");
    // Park a hammering sender AND the destroyer on the port lock we hold,
    // then release it: both contend for every handoff inside the destroy
    // sequence instead of depending on scheduler luck to collide.
    p->lock();
    auto tx = kthread::spawn("tx", [&] {
      for (int k = 0; k < 20000; ++k) {
        message m(static_cast<std::uint32_t>(k));
        m.reply_to = carried;
        const kern_return_t kr = p->send(std::move(m));
        if (kr == KERN_TERMINATED) break;
      }
    });
    auto destroyer = kthread::spawn("destroyer", [&] { p->destroy_port(); });
    std::this_thread::sleep_for(1ms);  // both threads now spin on the lock
    p->unlock();
    tx->join();
    destroyer->join();
    stranded += p->queued() != 0 ? 1 : 0;
    leaked += static_cast<std::uint64_t>(carried->ref_count()) - 1;
  }
  EXPECT_EQ(stranded, 0) << "messages stranded in dead ports";
  EXPECT_EQ(leaked, 0u) << "carried rights leaked through teardown";
}

// --- IPC space ---

TEST(IpcSpace, InsertLookupRemove) {
  ipc_space s;
  auto p = make_object<port>();
  port_name_t name = s.insert(p);
  EXPECT_EQ(p->ref_count(), 2);  // ours + table's
  auto found = s.lookup(name);
  EXPECT_EQ(found.get(), p.get());
  EXPECT_EQ(p->ref_count(), 3);
  found.reset();
  EXPECT_TRUE(s.remove(name));
  EXPECT_EQ(p->ref_count(), 1);
  EXPECT_FALSE(s.remove(name));
  EXPECT_FALSE(s.lookup(name));
}

TEST(IpcSpace, NamesAreUnique) {
  ipc_space s;
  auto a = s.insert(make_object<port>());
  auto b = s.insert(make_object<port>());
  EXPECT_NE(a, b);
  EXPECT_EQ(s.size(), 2u);
}

TEST(IpcSpace, LookupOfUnknownNameIsNull) {
  ipc_space s;
  EXPECT_FALSE(s.lookup(12345));
}

TEST(IpcSpace, TableHoldsPortAlive) {
  ipc_space s;
  port* raw = nullptr;
  port_name_t name;
  {
    auto p = make_object<port>();
    raw = p.get();
    name = s.insert(std::move(p));
  }
  // Only the table's reference remains; the port must still be usable.
  auto found = s.lookup(name);
  ASSERT_TRUE(found);
  EXPECT_EQ(found.get(), raw);
  EXPECT_EQ(found->send(message(1)), KERN_SUCCESS);
}

TEST(IpcSpace, SharedExternalLockConfiguration) {
  simple_lock_data_t external;
  simple_lock_init(&external, "shared");
  ipc_space s(&external);
  auto name = s.insert(make_object<port>());
  EXPECT_TRUE(s.lookup(name));
  // While we hold the external lock, a concurrent lookup must block —
  // probe via a thread that signals completion.
  simple_lock(&external);
  std::atomic<bool> done{false};
  auto t = kthread::spawn("lookup", [&] {
    s.lookup(name);
    done.store(true);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(done.load());
  simple_unlock(&external);
  t->join();
  EXPECT_TRUE(done.load());
}

}  // namespace
}  // namespace mach
