// Tests for processor sets: the processor-allocation subsystem built on
// the locking/reference primitives, including the section 5 conventions
// (type ordering, address ordering for same-type locks).
#include <gtest/gtest.h>

#include <atomic>

#include "kern/pset.h"
#include "sched/kthread.h"
#include "tests/test_util.h"

namespace mach {
namespace {

TEST(ProcessorSet, AssignRemoveProcessors) {
  auto ps = make_object<processor_set>();
  EXPECT_EQ(ps->assign_processor(0), KERN_SUCCESS);
  EXPECT_EQ(ps->assign_processor(1), KERN_SUCCESS);
  EXPECT_EQ(ps->assign_processor(0), KERN_FAILURE);  // duplicate
  EXPECT_EQ(ps->processor_count(), 2u);
  EXPECT_EQ(ps->remove_processor(0), KERN_SUCCESS);
  EXPECT_EQ(ps->remove_processor(0), KERN_FAILURE);
  EXPECT_EQ(ps->processors(), std::vector<int>{1});
}

TEST(ProcessorSet, AssignTaskHoldsReference) {
  auto ps = make_object<processor_set>();
  auto t = make_object<task>();
  EXPECT_EQ(ps->assign_task(t), KERN_SUCCESS);
  EXPECT_EQ(t->ref_count(), 2);  // ours + the set's
  EXPECT_TRUE(ps->contains_task(t.get()));
  EXPECT_EQ(ps->assign_task(t), KERN_FAILURE);  // already here
  EXPECT_EQ(ps->remove_task(t.get()), KERN_SUCCESS);
  EXPECT_EQ(t->ref_count(), 1);
  EXPECT_EQ(ps->remove_task(t.get()), KERN_FAILURE);
}

TEST(ProcessorSet, DeactivatedSetRejectsAssignment) {
  auto ps = make_object<processor_set>();
  ps->deactivate();
  EXPECT_EQ(ps->assign_processor(0), KERN_TERMINATED);
  EXPECT_EQ(ps->assign_task(make_object<task>()), KERN_TERMINATED);
}

TEST(ProcessorSet, MoveTaskBetweenSets) {
  auto a = make_object<processor_set>("pset-a");
  auto b = make_object<processor_set>("pset-b");
  auto t = make_object<task>();
  ASSERT_EQ(a->assign_task(t), KERN_SUCCESS);
  EXPECT_EQ(processor_set::move_task(*a, *b, t.get()), KERN_SUCCESS);
  EXPECT_FALSE(a->contains_task(t.get()));
  EXPECT_TRUE(b->contains_task(t.get()));
  EXPECT_EQ(t->ref_count(), 2);  // the reference moved, not duplicated
  // Moving a task that is not in `from` fails.
  EXPECT_EQ(processor_set::move_task(*a, *b, t.get()), KERN_FAILURE);
}

TEST(ProcessorSet, MoveToDeadSetFailsAndKeepsTask) {
  auto a = make_object<processor_set>("pset-a");
  auto b = make_object<processor_set>("pset-b");
  auto t = make_object<task>();
  a->assign_task(t);
  b->deactivate();
  EXPECT_EQ(processor_set::move_task(*a, *b, t.get()), KERN_TERMINATED);
  EXPECT_TRUE(a->contains_task(t.get()));
}

TEST(ProcessorSet, MoveTaskRespectsAddressOrderConvention) {
  // With the validator armed, the address-ordered double acquisition in
  // move_task must be clean in both call directions.
  lock_order_validator::instance().set_enabled(true);
  lock_order_validator::instance().take_violations();
  auto a = make_object<processor_set>("pset-a");
  auto b = make_object<processor_set>("pset-b");
  auto t = make_object<task>();
  a->assign_task(t);
  EXPECT_EQ(processor_set::move_task(*a, *b, t.get()), KERN_SUCCESS);
  EXPECT_EQ(processor_set::move_task(*b, *a, t.get()), KERN_SUCCESS);
  EXPECT_TRUE(lock_order_validator::instance().take_violations().empty());
  lock_order_validator::instance().set_enabled(false);
}

TEST(ProcessorSet, ShutdownDropsEverything) {
  auto ps = make_object<processor_set>();
  auto t = make_object<task>();
  ps->assign_processor(3);
  ps->assign_task(t);
  ps->deactivate();
  ps->shutdown_body();
  EXPECT_EQ(ps->task_count(), 0u);
  EXPECT_EQ(ps->processor_count(), 0u);
  EXPECT_EQ(t->ref_count(), 1);  // the set's reference was released
}

// Property: a storm of concurrent moves between two sets never loses or
// duplicates a task.
class PsetMoveStormTest : public ::testing::TestWithParam<int> {};

TEST_P(PsetMoveStormTest, TasksConserved) {
  const int movers = GetParam();
  auto a = make_object<processor_set>("pset-a");
  auto b = make_object<processor_set>("pset-b");
  constexpr int num_tasks = 8;
  std::vector<ref_ptr<task>> tasks;
  for (int i = 0; i < num_tasks; ++i) {
    tasks.push_back(make_object<task>());
    ASSERT_EQ(a->assign_task(tasks.back()), KERN_SUCCESS);
  }
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<kthread>> threads;
  for (int m = 0; m < movers; ++m) {
    threads.push_back(kthread::spawn("mover" + std::to_string(m), [&, m] {
      int i = m;
      while (!stop.load()) {
        task* t = tasks[static_cast<std::size_t>(i) % num_tasks].get();
        // Try both directions; exactly one can succeed per location.
        if (processor_set::move_task(*a, *b, t) != KERN_SUCCESS) {
          processor_set::move_task(*b, *a, t);
        }
        ++i;
      }
    }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& t : threads) t->join();
  // Conservation: every task is in exactly one set.
  EXPECT_EQ(a->task_count() + b->task_count(), static_cast<std::size_t>(num_tasks));
  for (auto& t : tasks) {
    int homes = (a->contains_task(t.get()) ? 1 : 0) + (b->contains_task(t.get()) ? 1 : 0);
    EXPECT_EQ(homes, 1);
    EXPECT_EQ(t->ref_count(), 2);  // ours + exactly one set's
  }
}

INSTANTIATE_TEST_SUITE_P(Movers, PsetMoveStormTest, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace mach
