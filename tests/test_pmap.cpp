// Tests for the pmap module: lock ordering arbitration (section 5), the
// backout protocol, spl discipline, and the at-pmap-lock flag.
#include <gtest/gtest.h>

#include <atomic>

#include "sched/kthread.h"
#include "smp/processor.h"
#include "tests/test_util.h"
#include "vm/memory_object.h"
#include "vm/pmap.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

TEST(Pmap, EnterLookupRemove) {
  pmap_system sys;
  pmap p("p0");
  sys.pmap_enter(p, 0x1000, 0xA000);
  sys.pmap_enter(p, 0x2000, 0xB000);
  EXPECT_EQ(sys.pmap_lookup(p, 0x1000), 0xA000u);
  EXPECT_EQ(sys.pmap_lookup(p, 0x2abc), 0xB000u);  // same page as 0x2000
  sys.pmap_remove(p, 0x1000);
  EXPECT_FALSE(sys.pmap_lookup(p, 0x1000).has_value());
  auto s = sys.stats();
  EXPECT_EQ(s.enters, 2u);
  EXPECT_EQ(s.removes, 1u);
}

TEST(Pmap, PvListTracksReverseMappings) {
  pmap_system sys;
  pmap p1("p1"), p2("p2");
  sys.pmap_enter(p1, 0x1000, 0xA000);
  sys.pmap_enter(p2, 0x5000, 0xA000);  // same frame, two pmaps
  auto& b = sys.pv().bucket_for(0xA000);
  simple_lock(&b.lock);
  std::size_t n = b.entries.size();
  simple_unlock(&b.lock);
  EXPECT_EQ(n, 2u);
}

class ProtectVariantTest : public ::testing::TestWithParam<bool> {
 protected:
  int protect(pmap_system& sys, std::uint64_t pa) {
    return GetParam() ? sys.page_protect_arbitrated(pa) : sys.page_protect_backout(pa);
  }
};

TEST_P(ProtectVariantTest, RemovesAllMappingsOfFrame) {
  pmap_system sys;
  pmap p1("p1"), p2("p2");
  sys.pmap_enter(p1, 0x1000, 0xA000);
  sys.pmap_enter(p2, 0x5000, 0xA000);
  sys.pmap_enter(p1, 0x2000, 0xB000);  // different frame: untouched
  EXPECT_EQ(protect(sys, 0xA000), 2);
  EXPECT_FALSE(sys.pmap_lookup(p1, 0x1000).has_value());
  EXPECT_FALSE(sys.pmap_lookup(p2, 0x5000).has_value());
  EXPECT_EQ(sys.pmap_lookup(p1, 0x2000), 0xB000u);
  EXPECT_EQ(protect(sys, 0xA000), 0);  // idempotent
}

TEST_P(ProtectVariantTest, ConcurrentEntersAndProtectsStayConsistent) {
  pmap_system sys;
  constexpr int npmaps = 3;
  pmap maps[npmaps] = {pmap("c0"), pmap("c1"), pmap("c2")};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> protected_total{0};
  std::vector<std::unique_ptr<kthread>> workers;
  for (int t = 0; t < npmaps; ++t) {
    workers.push_back(kthread::spawn("enter" + std::to_string(t), [&, t] {
      std::uint64_t va = 0x1000;
      while (!stop.load()) {
        sys.pmap_enter(maps[t], va, 0xA000 + (va & 0xF000));
        sys.pmap_remove(maps[t], va);
        va += vm_page_size;
        if (va > 0x10000) va = 0x1000;
      }
    }));
  }
  workers.push_back(kthread::spawn("protect", [&] {
    while (!stop.load()) {
      for (std::uint64_t pa = 0xA000; pa <= 0xF000; pa += vm_page_size) {
        protected_total.fetch_add(static_cast<std::uint64_t>(protect(sys, pa)));
      }
    }
  }));
  std::this_thread::sleep_for(200ms);
  stop.store(true);
  for (auto& w : workers) w->join();
  // Consistency: every pv entry still present must have a matching pmap
  // translation (no dangling reverse mappings).
  for (std::uint64_t pa = 0xA000; pa <= 0xF000; pa += vm_page_size) {
    auto& b = sys.pv().bucket_for(pa);
    simple_lock(&b.lock);
    for (const auto& e : b.entries) {
      spl_t s = e.map->lock_acquire();
      EXPECT_TRUE(e.map->lookup_locked(e.va).has_value())
          << "dangling pv entry for pa=" << std::hex << pa;
      e.map->lock_release(s);
    }
    simple_unlock(&b.lock);
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, ProtectVariantTest, ::testing::Values(true, false),
                         [](const auto& info) { return info.param ? "arbitrated" : "backout"; });

TEST(Pmap, BackoutRetriesUnderOpposingHold) {
  pmap_system sys;
  pmap p("held");
  sys.pmap_enter(p, 0x1000, 0xA000);
  // Hold the pmap lock from another thread so page_protect_backout's
  // try-lock fails at least once.
  std::atomic<bool> holding{false}, release{false};
  auto holder = kthread::spawn("holder", [&] {
    spl_t s = p.lock_acquire();
    holding.store(true);
    while (!release.load()) std::this_thread::yield();
    p.lock_release(s);
  });
  while (!holding.load()) std::this_thread::yield();
  std::atomic<bool> done{false};
  auto protector = kthread::spawn("protector", [&] {
    EXPECT_EQ(sys.page_protect_backout(0xA000), 1);
    done.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(done.load());
  EXPECT_GE(sys.stats().backout_retries, 1u);
  release.store(true);
  holder->join();
  protector->join();
  EXPECT_TRUE(done.load());
}

TEST(Pmap, LockSetsAtPmapLockFlagOnBoundCpu) {
  machine::instance().configure(2);
  {
    cpu_binding bind(0);
    pmap p("flagged");
    EXPECT_FALSE(machine::instance().cpu(0).at_pmap_lock());
    spl_t s = p.lock_acquire();
    EXPECT_TRUE(machine::instance().cpu(0).at_pmap_lock());
    EXPECT_EQ(spl_level(), SPLVM);  // consistent interrupt priority
    p.lock_release(s);
    EXPECT_FALSE(machine::instance().cpu(0).at_pmap_lock());
    EXPECT_EQ(spl_level(), SPL0);
  }
  machine::instance().configure(0);
}

TEST(Pmap, TryFailureRestoresSplAndFlag) {
  machine::instance().configure(1);
  {
    cpu_binding bind(0);
    pmap p("tryfail");
    std::atomic<bool> holding{false}, release{false};
    auto holder = kthread::spawn("holder", [&] {
      spl_t s = p.lock_acquire();
      holding.store(true);
      while (!release.load()) std::this_thread::yield();
      p.lock_release(s);
    });
    while (!holding.load()) std::this_thread::yield();
    spl_t s = SPL0;
    EXPECT_FALSE(p.lock_try(&s));
    p.lock_release_try_failed(s);
    EXPECT_EQ(spl_level(), SPL0);
    EXPECT_FALSE(machine::instance().cpu(0).at_pmap_lock());
    release.store(true);
    holder->join();
  }
  machine::instance().configure(0);
}

TEST(Pmap, ArbitratedProtectExcludesEnters) {
  // With the system lock held for write, an enter (read) must wait.
  pmap_system sys;
  pmap p("excl");
  lock_write(&sys.system_lock());
  std::atomic<bool> entered{false};
  auto t = kthread::spawn("enter", [&] {
    sys.pmap_enter(p, 0x1000, 0xA000);
    entered.store(true);
  });
  std::this_thread::sleep_for(15ms);
  EXPECT_FALSE(entered.load());
  lock_done(&sys.system_lock());
  t->join();
  EXPECT_TRUE(entered.load());
}

}  // namespace
}  // namespace mach
