// Tests for the ktrace subsystem: ring discipline (wraparound drops the
// oldest, with an honest drop count), merge ordering across concurrent
// writers, and both exporters — the Chrome JSON one is validated by
// parsing it back with a real (if minimal) JSON parser.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/mini_json.h"
#include "ipc/rpc.h"
#include "ipc/stubs.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "sync/lockstat.h"
#include "sync/simple_lock.h"
#include "trace/kspan.h"
#include "trace/ktrace.h"
#include "trace/trace_export.h"
#include "trace/trace_session.h"

namespace mach {
namespace {

// The Chrome JSON export is checked against the grammar (via the shared
// harness/mini_json parser) and not just by substring search.
using json_value = mini_json::value;
using json_parser = mini_json::parser;

// ---------------------------------------------------------------------------

class ktrace_fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ktrace::disable();
    ktrace::reset();
    saved_capacity_ = ktrace::default_ring_capacity();
  }
  void TearDown() override {
    ktrace::disable();
    ktrace::set_default_ring_capacity(saved_capacity_);
    ktrace::reset();
  }

  std::size_t saved_capacity_ = 0;
};

const ktrace::thread_info* find_thread(const ktrace::trace_collection& c,
                                       const std::string& name) {
  for (const auto& t : c.threads) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

TEST_F(ktrace_fixture, KindMetadataIsComplete) {
  for (std::uint16_t i = 1; i < static_cast<std::uint16_t>(trace_kind::kind_count); ++i) {
    auto k = static_cast<trace_kind>(i);
    EXPECT_STRNE(trace_kind_label(k), "") << i;
    EXPECT_STRNE(trace_kind_label(k), "none") << i;
    std::string cat = trace_kind_category(k);
    EXPECT_TRUE(cat == "sync" || cat == "sched" || cat == "kern" || cat == "smp" ||
                cat == "vm" || cat == "ipc" || cat == "span")
        << cat;
  }
}

TEST_F(ktrace_fixture, DisabledEmitsNothing) {
  ASSERT_FALSE(ktrace::enabled());
  ktrace::emit(trace_kind::ref_take, "ghost", 1, 2);
  ktrace::emit_span(trace_kind::simple_lock_held, "ghost", 1, 2, now_nanos());
  ktrace::trace_collection c = ktrace::collect();
  EXPECT_TRUE(c.events.empty());
  EXPECT_EQ(c.total_dropped(), 0u);
}

TEST_F(ktrace_fixture, CollectMergesInTimeOrder) {
  ktrace::enable();
  for (std::uint64_t i = 0; i < 5; ++i) {
    ktrace::emit(trace_kind::ref_take, "order", 0x100, i);
  }
  ktrace::disable();
  ktrace::trace_collection c = ktrace::collect();
  ASSERT_GE(c.events.size(), 5u);
  for (std::size_t i = 1; i < c.events.size(); ++i) {
    EXPECT_GE(c.events[i].rec.nanos, c.events[i - 1].rec.nanos);
  }
}

TEST_F(ktrace_fixture, WraparoundKeepsNewestAndCountsDrops) {
  // The shrunken capacity applies only to rings created after the call, so
  // the writer must be a fresh thread.
  ktrace::set_default_ring_capacity(8);
  ktrace::enable();
  auto writer = kthread::spawn("wrap-writer", [] {
    for (std::uint64_t i = 0; i < 20; ++i) {
      ktrace::emit(trace_kind::ref_take, "wrap", 0x400, i);
    }
  });
  writer->join();
  ktrace::disable();

  ktrace::trace_collection c = ktrace::collect();
  const ktrace::thread_info* t = find_thread(c, "wrap-writer");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->written, 20u);
  EXPECT_EQ(t->dropped, 12u);
  EXPECT_EQ(c.total_dropped(), 12u);

  // The surviving records are exactly the newest 8, still in order.
  std::vector<std::uint64_t> seqs;
  for (const auto& e : c.events) {
    if (e.tid == t->tid) seqs.push_back(e.rec.arg2);
  }
  ASSERT_EQ(seqs.size(), 8u);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], 12u + i);
  }
}

TEST_F(ktrace_fixture, ConcurrentWritersMergePerThreadInOrder) {
  constexpr int writers = 4;
  constexpr std::uint64_t per_writer = 500;
  ktrace::enable();
  std::vector<std::unique_ptr<kthread>> threads;
  for (int w = 0; w < writers; ++w) {
    threads.push_back(kthread::spawn("trace-writer-" + std::to_string(w), [w] {
      for (std::uint64_t i = 0; i < per_writer; ++i) {
        ktrace::emit(trace_kind::ref_take, "mt", static_cast<std::uint64_t>(w), i);
      }
    }));
  }
  for (auto& t : threads) t->join();
  ktrace::disable();

  ktrace::trace_collection c = ktrace::collect();
  // Global order: non-decreasing timestamps.
  for (std::size_t i = 1; i < c.events.size(); ++i) {
    EXPECT_GE(c.events[i].rec.nanos, c.events[i - 1].rec.nanos);
  }
  // Per-thread order: each writer's sequence numbers appear ascending, so
  // the merge never reorders a single producer's records.
  std::map<std::uint32_t, std::uint64_t> next_seq;
  std::map<std::uint32_t, std::uint64_t> counts;
  for (const auto& e : c.events) {
    if (e.rec.name == nullptr || std::string(e.rec.name) != "mt") continue;
    auto it = next_seq.find(e.tid);
    if (it == next_seq.end()) {
      next_seq[e.tid] = e.rec.arg2 + 1;
    } else {
      EXPECT_EQ(e.rec.arg2, it->second) << "tid " << e.tid;
      it->second = e.rec.arg2 + 1;
    }
    ++counts[e.tid];
  }
  ASSERT_EQ(counts.size(), static_cast<std::size_t>(writers));
  for (const auto& [tid, n] : counts) EXPECT_EQ(n, per_writer) << "tid " << tid;
}

TEST_F(ktrace_fixture, ChromeJsonRoundTripsThroughParser) {
  ktrace::enable();
  const std::uint64_t end = now_nanos();
  ktrace::emit_span(trace_kind::simple_lock_held, "json-rt", 0xabc, 5000, end);
  ktrace::emit(trace_kind::ref_take, "esc\"ape", 0x123, 2);
  ktrace::disable();

  ktrace::trace_collection c = ktrace::collect();
  std::ostringstream os;
  export_chrome_json(c, os);
  const std::string text = os.str();

  json_value root;
  json_parser p(text);
  ASSERT_TRUE(p.parse(root)) << p.error() << "\n" << text;
  ASSERT_EQ(root.k, json_value::kind::object);

  const json_value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->k, json_value::kind::array);

  bool saw_process_meta = false, saw_thread_meta = false;
  const json_value* span = nullptr;
  const json_value* instant = nullptr;
  for (const json_value& e : events->arr) {
    ASSERT_EQ(e.k, json_value::kind::object);
    const json_value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") {
      const json_value* name = e.find("name");
      ASSERT_NE(name, nullptr);
      if (name->str == "process_name") saw_process_meta = true;
      if (name->str == "thread_name") saw_thread_meta = true;
      continue;
    }
    const json_value* name = e.find("name");
    ASSERT_NE(name, nullptr);
    if (ph->str == "X" && name->str == "lock-held:json-rt") span = &e;
    if (ph->str == "i" && name->str == "ref-take:esc\"ape") instant = &e;
  }
  EXPECT_TRUE(saw_process_meta);
  EXPECT_TRUE(saw_thread_meta);

  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->find("cat")->str, "sync");
  EXPECT_NEAR(span->find("dur")->num, 5.0, 0.001);  // 5000 ns == 5 us
  EXPECT_NEAR(span->find("ts")->num, static_cast<double>(end - 5000) / 1000.0, 0.01);
  const json_value* args = span->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("arg1")->str, "0xabc");

  ASSERT_NE(instant, nullptr);  // the escaped quote survived the round trip
  EXPECT_EQ(instant->find("s")->str, "t");
  EXPECT_EQ(instant->find("cat")->str, "kern");
  EXPECT_NEAR(instant->find("args")->find("arg2")->num, 2.0, 0.0);

  const json_value* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->find("droppedRecords"), nullptr);
  EXPECT_EQ(other->find("droppedRecords")->num, 0.0);
}

TEST_F(ktrace_fixture, TextExportListsEventsAndElides) {
  ktrace::enable();
  for (std::uint64_t i = 0; i < 5; ++i) {
    ktrace::emit(trace_kind::thread_wakeup_ev, nullptr, 0x200, i);
  }
  const std::uint64_t end = now_nanos();
  ktrace::emit_span(trace_kind::complex_write_held, "txt-lock", 0x300, 1500, end);
  ktrace::disable();

  ktrace::trace_collection c = ktrace::collect();
  std::ostringstream full;
  export_text(c, full);
  EXPECT_NE(full.str().find("wakeup"), std::string::npos);
  EXPECT_NE(full.str().find("write-held"), std::string::npos);
  EXPECT_NE(full.str().find("txt-lock"), std::string::npos);

  std::ostringstream limited;
  export_text(c, limited, 2);
  EXPECT_NE(limited.str().find("earlier events elided"), std::string::npos);
}

TEST_F(ktrace_fixture, TraceSessionWritesParseableFile) {
  const std::string path = ::testing::TempDir() + "machlock_trace_session.json";
  {
    trace_session session(path, trace_session::format::chrome_json);
    ASSERT_TRUE(session.active());
    ASSERT_TRUE(ktrace::enabled());
    ktrace::emit(trace_kind::ref_take, "session-obj", 0x1, 1);
  }
  EXPECT_FALSE(ktrace::enabled());  // the session disabled tracing on exit

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  json_value root;
  json_parser p(buf.str());
  ASSERT_TRUE(p.parse(root)) << p.error();
  const json_value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const json_value& e : events->arr) {
    const json_value* name = e.find("name");
    if (name != nullptr && name->str == "ref-take:session-obj") found = true;
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST_F(ktrace_fixture, LockHoldAndWaitFeedTheRegistryHistograms) {
  simple_lock_data_t l("hist-feed");
  ktrace::enable();
  for (int i = 0; i < 3; ++i) {
    simple_lock(&l);
    simple_unlock(&l);
  }
  ktrace::disable();
  for (const auto& e : lock_registry::instance().snapshot()) {
    if (e.address == &l) {
      EXPECT_EQ(e.hold_samples, 3u);  // every traced unlock recorded a hold
      return;
    }
  }
  FAIL() << "lock not found in registry snapshot";
}

TEST_F(ktrace_fixture, RegistrySnapshotJsonIsParseable) {
  // Untimed: tracing stays off, so this lock must carry NO hold/wait
  // objects (absent means "not measured", never "measured 0").
  simple_lock_data_t untimed("json-snap-lock");
  simple_lock(&untimed);
  simple_unlock(&untimed);
  // Timed: exercised under ktrace, so its hold profile has samples and the
  // quantile object must be present.
  simple_lock_data_t timed("json-snap-timed");
  ktrace::enable();
  simple_lock(&timed);
  simple_unlock(&timed);
  ktrace::disable();
  const std::string text = lock_registry::instance().snapshot_json();
  json_value root;
  json_parser p(text);
  ASSERT_TRUE(p.parse(root)) << p.error();
  ASSERT_EQ(root.k, json_value::kind::array);
  bool found_untimed = false;
  bool found_timed = false;
  for (const json_value& e : root.arr) {
    ASSERT_EQ(e.k, json_value::kind::object);
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("kind"), nullptr);
    ASSERT_NE(e.find("acquisitions"), nullptr);
    ASSERT_NE(e.find("contended"), nullptr);
    // Quantile objects appear exactly when the profile sampled.
    if (const json_value* hold = e.find("hold")) {
      ASSERT_NE(hold->find("samples"), nullptr);
      EXPECT_GE(hold->find("samples")->num, 1.0);
      ASSERT_NE(hold->find("p50_ns"), nullptr);
      ASSERT_NE(hold->find("p99_ns"), nullptr);
    }
    if (const json_value* wait = e.find("wait")) {
      ASSERT_NE(wait->find("samples"), nullptr);
      EXPECT_GE(wait->find("samples")->num, 1.0);
    }
    if (e.find("name")->str == "json-snap-lock") {
      found_untimed = true;
      EXPECT_EQ(e.find("kind")->str, "simple");
      EXPECT_GE(e.find("acquisitions")->num, 1.0);
      EXPECT_EQ(e.find("hold"), nullptr);  // never timed -> omitted
      EXPECT_EQ(e.find("wait"), nullptr);
    }
    if (e.find("name")->str == "json-snap-timed") {
      found_timed = true;
      ASSERT_NE(e.find("hold"), nullptr);  // timed -> quantiles present
    }
  }
  EXPECT_TRUE(found_untimed);
  EXPECT_TRUE(found_timed);
}

// ---------------------------------------------------------------------------
// kspan: request-scoped causal tracing (trace/kspan.h).

class kspan_fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    kspan::disable();
    ktrace::disable();
    ktrace::reset();
    saved_capacity_ = ktrace::default_ring_capacity();
  }
  void TearDown() override {
    kspan::disable();
    ktrace::disable();
    ktrace::set_default_ring_capacity(saved_capacity_);
    ktrace::reset();
  }

  std::size_t saved_capacity_ = 0;
};

TEST_F(kspan_fixture, DisabledScopesAreInert) {
  ASSERT_FALSE(kspan::enabled());
  kspan::request req("noop");
  EXPECT_FALSE(req.active());
  EXPECT_EQ(kspan::current(), 0u);
  kspan::adopt_scope adopted(0x1234'0000'0000'0001ull);
  EXPECT_FALSE(adopted.active());
  EXPECT_EQ(kspan::current(), 0u);
  EXPECT_TRUE(ktrace::collect().events.empty());
}

TEST_F(kspan_fixture, ContextPropagatesAcrossSendReceive) {
  kspan::enable();
  ktrace::enable();
  auto p = make_object<port>("span-port");
  span_ctx_t sender_ctx = 0;
  {
    kspan::request req("xfer");
    ASSERT_TRUE(req.active());
    sender_ctx = req.ctx();
    EXPECT_EQ(kspan::current(), sender_ctx);
    ASSERT_EQ(p->send(message(1, {42})), KERN_SUCCESS);
  }
  std::optional<message> m = p->try_receive();
  ASSERT_TRUE(m.has_value());
  // The message carries the sender's exact context...
  EXPECT_EQ(m->span_ctx, sender_ctx);
  EXPECT_NE(m->span_sent_nanos, 0u);
  // ...and adopting it yields a child: same trace id, fresh span id.
  {
    kspan::adopt_scope adopted(m->span_ctx, "receiver");
    ASSERT_TRUE(adopted.active());
    EXPECT_EQ(span_trace_id(adopted.ctx()), span_trace_id(sender_ctx));
    EXPECT_NE(span_span_id(adopted.ctx()), span_span_id(sender_ctx));
    EXPECT_EQ(kspan::current(), adopted.ctx());
  }
  EXPECT_EQ(kspan::current(), 0u);

  ktrace::disable();
  bool saw_send = false, saw_recv = false;
  for (const auto& e : ktrace::collect().events) {
    if (e.rec.kind == trace_kind::span_send && e.rec.arg1 == sender_ctx) saw_send = true;
    if (e.rec.kind == trace_kind::span_recv && e.rec.arg1 == sender_ctx) saw_recv = true;
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_recv);
}

TEST_F(kspan_fixture, NestedAdoptRestoresOuterContext) {
  kspan::enable();
  kspan::request outer("outer");
  const span_ctx_t outer_ctx = outer.ctx();
  {
    // A foreign context arrives mid-request (e.g. a server thread adopting
    // a message while running its own housekeeping span).
    const span_ctx_t foreign = (std::uint64_t{0xbeef} << 32) | 7u;
    kspan::adopt_scope inner(foreign, "inner");
    ASSERT_TRUE(inner.active());
    EXPECT_EQ(span_trace_id(kspan::current()), 0xbeefu);
  }
  EXPECT_EQ(kspan::current(), outer_ctx);
}

TEST_F(kspan_fixture, RpcReplyCarriesTraceIdAndRestoresClientSpan) {
  using namespace std::chrono_literals;
  kspan::enable();
  auto obj = make_object<counter_object>();
  auto service = make_object<port>("span-svc");
  service->set_translation(obj);
  kernel_server server(service, standard_router(), "span-server");

  kspan::request req("client-rpc");
  ASSERT_TRUE(req.active());
  std::optional<message> reply = rpc_call(*service, message(OP_COUNTER_ADD, {3}), 5s);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->ret, KERN_SUCCESS);
  // The server adopted our context for dispatch + reply send, so the reply
  // comes back under our trace id (a different leg of the same request)...
  EXPECT_EQ(span_trace_id(reply->span_ctx), span_trace_id(req.ctx()));
  EXPECT_NE(reply->span_ctx, req.ctx());
  // ...and the client's own context survived the round trip untouched.
  EXPECT_EQ(kspan::current(), req.ctx());
}

TEST_F(kspan_fixture, WakeupDeliveryRecordsWaitForEdge) {
  kspan::enable();
  ktrace::enable();
  int ev = 0;
  std::atomic<bool> asserted{false};
  auto waiter = kthread::spawn("span-waiter", [&] {
    assert_wait(&ev);
    asserted.store(true);
    EXPECT_EQ(thread_block(), wait_result::awakened);
  });
  while (!asserted.load()) std::this_thread::yield();
  span_ctx_t waker_ctx = 0;
  {
    kspan::request req("waker");
    waker_ctx = req.ctx();
    thread_wakeup(&ev);
  }
  waiter->join();
  ktrace::disable();

  bool saw_edge = false;
  for (const auto& e : ktrace::collect().events) {
    if (e.rec.kind != trace_kind::span_unblock) continue;
    EXPECT_EQ(span_trace_id(e.rec.arg1), span_trace_id(waker_ctx));
    EXPECT_EQ(e.rec.arg2, reinterpret_cast<std::uint64_t>(&ev));
    saw_edge = true;
  }
  EXPECT_TRUE(saw_edge);
}

TEST_F(kspan_fixture, FlowEventsRoundTripThroughJson) {
  kspan::enable();
  ktrace::enable();
  auto p = make_object<port>("flow-port");
  {
    kspan::request req("flow");
    ASSERT_EQ(p->send(message(9)), KERN_SUCCESS);
    std::optional<message> m = p->try_receive();
    ASSERT_TRUE(m.has_value());
    kspan::adopt_scope adopted(m->span_ctx, "flow-leg");
  }
  ktrace::disable();

  std::ostringstream os;
  export_chrome_json(ktrace::collect(), os);
  json_value root;
  json_parser parser(os.str());
  ASSERT_TRUE(parser.parse(root)) << parser.error() << "\n" << os.str();
  const json_value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // One flow chain: start, at least one step, finish — all named "kspan",
  // all sharing one id, steps/finish bound to the enclosing slice.
  std::map<std::string, std::vector<const json_value*>> flows;
  const json_value* root_span = nullptr;
  for (const json_value& e : events->arr) {
    const json_value* name = e.find("name");
    const json_value* ph = e.find("ph");
    if (name == nullptr || ph == nullptr) continue;
    if (name->str == "kspan") flows[ph->str].push_back(&e);
    if (name->str == "span-end:flow") root_span = &e;
  }
  ASSERT_EQ(flows["s"].size(), 1u);
  ASSERT_GE(flows["t"].size(), 1u);
  ASSERT_EQ(flows["f"].size(), 1u);
  const double flow_id = flows["s"][0]->find("id")->num;
  for (const auto& [ph, list] : flows) {
    for (const json_value* e : list) {
      EXPECT_EQ(e->find("id")->num, flow_id);
      EXPECT_EQ(e->find("cat")->str, "span");
      if (ph != "s") {
        EXPECT_EQ(e->find("bp")->str, "e");
      }
    }
  }
  // The root span's args carry the trace/span ids for offline analysis,
  // and its trace id matches the flow id.
  ASSERT_NE(root_span, nullptr);
  const json_value* args = root_span->find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->find("trace"), nullptr);
  ASSERT_NE(args->find("span"), nullptr);
  EXPECT_EQ(std::stoul(args->find("trace")->str, nullptr, 16),
            static_cast<unsigned long>(flow_id));
}

TEST_F(kspan_fixture, TraceSessionEnvKnobsDriveRingCapAndSpans) {
  ::setenv("MACHLOCK_TRACE_RING_CAP", "1234", 1);
  ::setenv("MACHLOCK_SPANS", "1", 1);
  {
    trace_session session;  // MACHLOCK_TRACE unset: no file, knobs still read
    EXPECT_FALSE(session.active());
    EXPECT_EQ(ktrace::default_ring_capacity(), 1234u);
    EXPECT_TRUE(kspan::enabled());
  }
  // The session turned spans off again on destruction.
  EXPECT_FALSE(kspan::enabled());
  ::unsetenv("MACHLOCK_TRACE_RING_CAP");
  ::unsetenv("MACHLOCK_SPANS");
}

}  // namespace
}  // namespace mach
