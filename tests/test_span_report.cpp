// Tests for the span_report critical-path analyzer (harness/span_report.h):
// a real instrumented workload is traced, exported to Chrome JSON, parsed
// back, and the report must attribute the request's wall time to the right
// buckets (lock wait, queue wait, run) and rank the blocking lock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "harness/mini_json.h"
#include "harness/span_report.h"
#include "ipc/port.h"
#include "sched/kthread.h"
#include "sync/simple_lock.h"
#include "trace/kspan.h"
#include "trace/ktrace.h"
#include "trace/trace_export.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

class span_report_fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    kspan::disable();
    ktrace::disable();
    ktrace::reset();
  }
  void TearDown() override {
    kspan::disable();
    ktrace::disable();
    ktrace::reset();
  }

  // Run the collected trace through export → parse → build.
  span_report build() {
    std::ostringstream os;
    export_chrome_json(ktrace::collect(), os);
    mini_json::value doc;
    std::string err;
    EXPECT_TRUE(mini_json::parse(os.str(), &doc, &err)) << err;
    span_report report;
    EXPECT_TRUE(build_span_report(doc, &report, &err)) << err;
    return report;
  }
};

TEST_F(span_report_fixture, RejectsNonTraceDocuments) {
  mini_json::value doc;
  std::string err;
  ASSERT_TRUE(mini_json::parse("{\"foo\": 1}", &doc, &err)) << err;
  span_report report;
  EXPECT_FALSE(build_span_report(doc, &report, &err));
  EXPECT_NE(err.find("traceEvents"), std::string::npos);
}

TEST_F(span_report_fixture, FileFailureModesProduceOneLineErrors) {
  // The CLI contract (tools/span_report_main.cpp maps these to exit 1):
  // missing, empty, and truncated inputs each fail with an error naming
  // the file, never crash or report an empty-but-successful analysis.
  const std::string dir = ::testing::TempDir();
  span_report report;
  std::string err;

  const std::string missing = dir + "/span_report_missing.json";
  EXPECT_FALSE(build_span_report_file(missing, &report, &err));
  EXPECT_NE(err.find(missing), std::string::npos) << err;

  const std::string empty = dir + "/span_report_empty.json";
  { std::ofstream touch(empty); }
  err.clear();
  EXPECT_FALSE(build_span_report_file(empty, &report, &err));
  EXPECT_NE(err.find(empty), std::string::npos) << err;

  const std::string truncated = dir + "/span_report_truncated.json";
  { std::ofstream(truncated) << R"j({"traceEvents":[{"ph":"X","name":)j"; }
  err.clear();
  EXPECT_FALSE(build_span_report_file(truncated, &report, &err));
  EXPECT_NE(err.find(truncated), std::string::npos) << err;

  std::remove(empty.c_str());
  std::remove(truncated.c_str());
}

TEST_F(span_report_fixture, EmptyTraceYieldsNoRequests) {
  ktrace::enable();
  ktrace::emit(trace_kind::ref_take, "unrelated", 1, 2);
  ktrace::disable();
  const span_report report = build();
  EXPECT_EQ(report.requests, 0u);
  const std::string text = render_span_report(report);
  EXPECT_NE(text.find("no request roots"), std::string::npos);
}

TEST_F(span_report_fixture, AttributesLockWaitAndNamesTheBlockingLock) {
  kspan::enable();
  ktrace::enable();

  simple_lock_data_t hot;
  simple_lock_init(&hot, "report-hot-lock");
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  auto holder = kthread::spawn("report-holder", [&] {
    // Bind this thread for the holder-naming path, then sit on the lock.
    kspan::request req("holder-housekeeping");
    simple_lock(&hot);
    held.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);
    simple_unlock(&hot);
  });
  while (!held.load()) std::this_thread::yield();

  auto worker = kthread::spawn("report-worker", [&] {
    kspan::request req("contended-op");
    std::this_thread::sleep_for(2ms);  // plain run time
    simple_lock(&hot);                 // spins until the holder releases
    simple_unlock(&hot);
  });
  std::this_thread::sleep_for(20ms);  // let the worker accumulate lock wait
  release.store(true);
  holder->join();
  worker->join();
  ktrace::disable();

  const span_report report = build();
  ASSERT_GE(report.requests, 2u);  // contended-op + holder-housekeeping
  EXPECT_GE(report.coverage, 0.95);

  const span_report::kind_row* op = nullptr;
  for (const auto& k : report.kinds) {
    if (k.kind == "contended-op") op = &k;
  }
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->requests, 1u);
  // The spin on the wedged lock dominates this request's wall time.
  EXPECT_GT(op->lock_wait_nanos, op->wall_nanos / 2);
  EXPECT_GT(op->run_nanos, 0u);

  ASSERT_FALSE(report.locks.empty());
  EXPECT_EQ(report.locks[0].lock, "report-hot-lock");
  EXPECT_GE(report.locks[0].waits, 1u);
  EXPECT_GT(report.locks[0].wait_nanos, 0u);
  // span-bind + thread_name metadata let the report name the holder.
  EXPECT_EQ(report.locks[0].top_holder, "report-holder");

  const std::string text = render_span_report(report);
  EXPECT_NE(text.find("contended-op"), std::string::npos);
  EXPECT_NE(text.find("report-hot-lock"), std::string::npos);
  EXPECT_NE(text.find("report-holder"), std::string::npos);
}

TEST_F(span_report_fixture, AttributesQueueWaitFromMessageHops) {
  kspan::enable();
  ktrace::enable();
  auto p = make_object<port>("report-queue-port");
  {
    kspan::request req("queued-op");
    ASSERT_EQ(p->send(message(1)), KERN_SUCCESS);
    std::this_thread::sleep_for(2ms);  // the message sits in the queue
    std::optional<message> m = p->try_receive();
    ASSERT_TRUE(m.has_value());
    kspan::adopt_scope leg(m->span_ctx, "drain");
  }
  ktrace::disable();

  const span_report report = build();
  ASSERT_GE(report.requests, 1u);
  const span_report::kind_row* op = nullptr;
  for (const auto& k : report.kinds) {
    if (k.kind == "queued-op") op = &k;
  }
  ASSERT_NE(op, nullptr);
  // ~2ms of the request's wall time was queue wait.
  EXPECT_GE(op->queue_wait_nanos, 1'000'000u);
  EXPECT_LE(op->queue_wait_nanos, op->wall_nanos);
  EXPECT_GE(report.flow_events, 2u);  // at least the s + t hop
  EXPECT_GE(report.coverage, 0.95);
}

}  // namespace
}  // namespace mach
