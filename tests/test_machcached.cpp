// Tests for the machcached service: the item cache (complex-locked,
// striped, zone-backed, refcounted), the IPC-fronted server, and the load
// driver (svc/machcached.h; docs/MACHCACHED.md).
#include <gtest/gtest.h>

#include <cstdlib>

#include "sched/kthread.h"
#include "svc/machcached.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

mc_cache_config small_cache(int shards = 1, std::size_t max_items = 16) {
  mc_cache_config c;
  c.shards = shards;
  c.max_items = max_items;
  c.value_words = 4;
  return c;
}

TEST(McCache, SetGetDelRoundTrip) {
  mc_cache cache(small_cache());
  const std::uint64_t v[4] = {10, 20, 30, 40};
  EXPECT_EQ(cache.set(7, v, 4), KERN_SUCCESS);
  EXPECT_EQ(cache.size(), 1u);
  auto item = cache.get(7);
  ASSERT_TRUE(item);
  EXPECT_EQ(item->key(), 7u);
  ASSERT_EQ(item->size(), 4u);
  EXPECT_EQ(item->value()[0], 10u);
  EXPECT_EQ(item->value()[3], 40u);
  item.reset();
  EXPECT_TRUE(cache.del(7));
  EXPECT_FALSE(cache.get(7));
  EXPECT_FALSE(cache.del(7));
  EXPECT_EQ(cache.size(), 0u);
  const mc_cache_stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.deletes, 1u);
  EXPECT_EQ(s.delete_misses, 1u);
}

TEST(McCache, OverwriteReplacesItemAndReturnsOldBlock) {
  mc_cache cache(small_cache());
  const std::uint64_t v1[1] = {111};
  const std::uint64_t v2[1] = {222};
  EXPECT_EQ(cache.set(1, v1, 1), KERN_SUCCESS);
  auto old_item = cache.get(1);  // outstanding reader of the old value
  EXPECT_EQ(cache.set(1, v2, 1), KERN_SUCCESS);
  // The reader still sees the immutable old value; the table serves the new.
  EXPECT_EQ(old_item->value()[0], 111u);
  EXPECT_EQ(cache.get(1)->value()[0], 222u);
  old_item.reset();  // last reference: old block returns to the zone
  EXPECT_EQ(cache.value_zone().in_use(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(McCache, SetReportsShortageWhenZoneExhausted) {
  mc_cache cache(small_cache(1, /*max_items=*/2));
  const std::uint64_t v[1] = {1};
  EXPECT_EQ(cache.set(1, v, 1), KERN_SUCCESS);
  EXPECT_EQ(cache.set(2, v, 1), KERN_SUCCESS);
  EXPECT_EQ(cache.set(3, v, 1), KERN_RESOURCE_SHORTAGE);
  EXPECT_EQ(cache.stats().set_failures, 1u);
  // A delete frees a block; the SET can then land.
  EXPECT_TRUE(cache.del(1));
  EXPECT_EQ(cache.set(3, v, 1), KERN_SUCCESS);
}

TEST(McCache, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(mc_cache(small_cache(1)).shards(), 1);
  EXPECT_EQ(mc_cache(small_cache(3)).shards(), 4);
  EXPECT_EQ(mc_cache(small_cache(16)).shards(), 16);
}

TEST(McCache, ShardsFromEnv) {
  ::setenv("MACHLOCK_CACHE_SHARDS", "9", 1);
  EXPECT_EQ(mc_shards_from_env(1), 9);
  ::setenv("MACHLOCK_CACHE_SHARDS", "100000", 1);
  EXPECT_EQ(mc_shards_from_env(1), 1024);  // clamped
  ::unsetenv("MACHLOCK_CACHE_SHARDS");
  EXPECT_EQ(mc_shards_from_env(3), 3);
}

TEST(McCache, QuiesceInvariantDetectsOutstandingReference) {
  mc_cache cache(small_cache(4));
  const std::uint64_t v[1] = {5};
  ASSERT_EQ(cache.set(1, v, 1), KERN_SUCCESS);
  std::string why;
  EXPECT_TRUE(cache.check_quiesced(&why)) << why;
  auto held = cache.get(1);  // second reference: not quiesced
  EXPECT_FALSE(cache.check_quiesced(&why));
  EXPECT_NE(why.find("ref_count"), std::string::npos);
  held.reset();
  EXPECT_TRUE(cache.check_quiesced(&why)) << why;
}

TEST(McCache, ItemPolicyIsAppliedToItems) {
  mc_cache_config cfg = small_cache();
  cfg.item_policy = refcount_policy::striped;
  mc_cache cache(cfg);
  const std::uint64_t v[1] = {1};
  ASSERT_EQ(cache.set(1, v, 1), KERN_SUCCESS);
  EXPECT_EQ(cache.get(1)->ref_policy(), refcount_policy::striped);
}

TEST(McServer, ServesGetSetDelOverIpc) {
  mc_cache cache(small_cache(2));
  machcached_config cfg;
  cfg.workers = 2;
  machcached_server server(cache, cfg);
  auto reply = make_object<port>("test-reply");

  auto call = [&](std::uint32_t op, std::vector<std::uint64_t> data) {
    message req(op, std::move(data));
    req.reply_to = reply;
    EXPECT_EQ(server.service().send(std::move(req)), KERN_SUCCESS);
    auto r = reply->receive(5s);
    EXPECT_TRUE(r.has_value());
    return r;
  };

  // SET key 42 (stamp 777 echoes back), then GET it, DEL it, GET misses.
  auto set_r = call(MC_SET, {42, 777, 5, 6});
  EXPECT_EQ(set_r->ret, KERN_SUCCESS);
  ASSERT_FALSE(set_r->data.empty());
  EXPECT_EQ(set_r->data[0], 777u);

  auto get_r = call(MC_GET, {42, 778});
  EXPECT_EQ(get_r->ret, KERN_SUCCESS);
  ASSERT_EQ(get_r->data.size(), 3u);  // stamp + 2 value words
  EXPECT_EQ(get_r->data[0], 778u);
  EXPECT_EQ(get_r->data[1], 5u);
  EXPECT_EQ(get_r->data[2], 6u);

  EXPECT_EQ(call(MC_DEL, {42, 779})->ret, KERN_SUCCESS);
  EXPECT_EQ(call(MC_GET, {42, 780})->ret, KERN_INVALID_NAME);
  EXPECT_EQ(call(999, {1, 2})->ret, KERN_INVALID_OP);

  // Malformed (too short) requests are answered, not dropped.
  message bad(MC_GET, {1});
  bad.reply_to = reply;
  EXPECT_EQ(server.service().send(std::move(bad)), KERN_SUCCESS);
  EXPECT_EQ(reply->receive(5s)->ret, KERN_FAILURE);

  EXPECT_EQ(server.served(), 6u);
  server.stop();
  EXPECT_EQ(server.service().send(message(MC_GET, {1, 2})), KERN_TERMINATED);
  server.stop();  // idempotent
}

TEST(McLoad, ShortBurstConservesMessagesAndObjects) {
  const std::uint64_t live_before = kobject::live_objects();
  mc_load_spec spec;
  spec.connections = 3;
  spec.workers = 2;
  spec.duration_ms = 60;
  spec.read_pct = 80;
  spec.keyspace = 64;
  spec.cache = small_cache(4, /*max_items=*/128);
  mc_load_result r = run_mc_load(spec);  // asserts the quiesce invariant itself
  EXPECT_GT(r.ops, 0u);
  // Every completed op is a request the server served, and every accepted
  // request was answered and collected (the drain phase waits them out) —
  // the conservation property the port-receive timeout fix protects.
  EXPECT_EQ(r.ops, r.served);
  EXPECT_EQ(r.latency.count(), r.ops);
  EXPECT_GT(r.ops_per_second(), 0.0);
  EXPECT_EQ(kobject::live_objects(), live_before);  // cache+server+ports all died
}

}  // namespace
}  // namespace mach
