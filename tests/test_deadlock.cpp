// Tests for the wait-for-graph deadlock detector and the lock-order
// validator (sections 5 and 7 tooling).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sched/kthread.h"
#include "sync/complex_lock.h"
#include "sync/deadlock.h"
#include "sync/lock_order.h"
#include "sync/simple_lock.h"
#include "tests/test_util.h"

namespace mach {
namespace {

TEST(WaitGraph, DisabledRecordsNothing) {
  wait_graph& g = wait_graph::instance();
  g.set_enabled(false);
  int r1 = 0;
  g.thread_waits(current_thread_token(), &r1, "r1");
  g.resource_held(&r1, current_thread_token(), "r1");
  EXPECT_FALSE(g.find_cycle().has_value());
  g.clear();
}

TEST(WaitGraph, NoCycleInAcyclicGraph) {
  deadlock_tracing_scope scope;
  wait_graph& g = wait_graph::instance();
  int ra = 0, rb = 0;
  char t1 = 0, t2 = 0;
  g.resource_held(&ra, &t1, "A");
  g.thread_waits(&t2, &ra, "A");
  g.resource_held(&rb, &t2, "B");
  EXPECT_FALSE(g.find_cycle().has_value());
}

TEST(WaitGraph, TwoPartyCycleDetected) {
  deadlock_tracing_scope scope;
  wait_graph& g = wait_graph::instance();
  int ra = 0, rb = 0;
  char t1 = 0, t2 = 0;
  g.name_thread(&t1, "alpha");
  g.name_thread(&t2, "beta");
  g.resource_held(&ra, &t1, "lockA");
  g.resource_held(&rb, &t2, "lockB");
  g.thread_waits(&t1, &rb, "lockB");
  g.thread_waits(&t2, &ra, "lockA");
  auto c = g.find_cycle();
  ASSERT_TRUE(c.has_value());
  EXPECT_NE(c->description.find("alpha"), std::string::npos);
  EXPECT_NE(c->description.find("beta"), std::string::npos);
  EXPECT_NE(c->description.find("lock"), std::string::npos);
}

TEST(WaitGraph, ThreePartyCycleDetected) {
  // The shape of the section 7 interrupt-barrier deadlock.
  deadlock_tracing_scope scope;
  wait_graph& g = wait_graph::instance();
  int lock = 0, entry2 = 0, release = 0;
  char p1 = 0, p2 = 0, p3 = 0;
  g.resource_held(&lock, &p1, "the-lock");
  g.resource_held(&entry2, &p2, "barrier-entry(cpu2)");
  g.resource_held(&release, &p3, "barrier-release");
  g.thread_waits(&p3, &entry2, "barrier-entry(cpu2)");  // initiator waits for P2
  g.thread_waits(&p2, &lock, "the-lock");               // P2 spins on the lock
  g.thread_waits(&p1, &release, "barrier-release");     // P1 parked in the ISR
  auto c = g.find_cycle();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->threads.size(), 3u);
}

TEST(WaitGraph, EdgeRemovalBreaksCycle) {
  deadlock_tracing_scope scope;
  wait_graph& g = wait_graph::instance();
  int ra = 0, rb = 0;
  char t1 = 0, t2 = 0;
  g.resource_held(&ra, &t1, "A");
  g.resource_held(&rb, &t2, "B");
  g.thread_waits(&t1, &rb, "B");
  g.thread_waits(&t2, &ra, "A");
  ASSERT_TRUE(g.find_cycle().has_value());
  g.thread_wait_done(&t2, &ra);
  EXPECT_FALSE(g.find_cycle().has_value());
}

TEST(WaitGraph, SimpleLocksFeedTheGraph) {
  deadlock_tracing_scope scope;
  simple_lock_data_t a, b;
  simple_lock_init(&a, "graph-a");
  simple_lock_init(&b, "graph-b");
  std::atomic<bool> holder_ready{false}, release{false};
  simple_lock(&a);  // taken before the spawn so the ABBA block is certain
  auto t = kthread::spawn("abba", [&] {
    simple_lock(&b);
    holder_ready.store(true);
    simple_lock(&a);  // blocks: main holds a
    simple_unlock(&a);
    simple_unlock(&b);
  });
  while (!holder_ready.load()) std::this_thread::yield();
  std::atomic<bool> done{false};
  std::thread watcher([&] {
    // From a third thread, observe the a/b cross-wait once main blocks on b.
    auto c = wait_graph::instance().wait_for_cycle(2000);
    done.store(c.has_value());
    release.store(true);
  });
  // Create the cycle: we hold a, wait for b.
  // (The watcher breaks it by observing; we time-bound via try loop.)
  wait_graph::instance().thread_waits(current_thread_token(), &b, "graph-b");
  while (!release.load()) std::this_thread::yield();
  wait_graph::instance().thread_wait_done(current_thread_token(), &b);
  simple_unlock(&a);
  t->join();
  watcher.join();
  EXPECT_TRUE(done.load());
}

TEST(WaitGraph, ComplexLockHoldersAndWaitersTracked) {
  deadlock_tracing_scope scope;
  lock_data_t l;
  lock_init(&l, true, "tracked-complex");
  lock_read(&l);  // we are registered as a read holder
  std::atomic<bool> started{false};
  auto writer = kthread::spawn("writer", [&] {
    started.store(true);
    lock_write(&l);  // waits on us → edge registered
    lock_done(&l);
  });
  while (!started.load()) std::this_thread::yield();
  // Close a synthetic cycle: pretend we wait on something the writer holds.
  int token_resource = 0;
  wait_graph::instance().resource_held(&token_resource, writer->token(), "synthetic");
  wait_graph::instance().thread_waits(current_thread_token(), &token_resource, "synthetic");
  auto c = wait_graph::instance().wait_for_cycle(2000);
  EXPECT_TRUE(c.has_value());
  wait_graph::instance().thread_wait_done(current_thread_token(), &token_resource);
  lock_done(&l);
  writer->join();
}

// --- lock-order validator ---

struct validator_fixture : ::testing::Test {
  void SetUp() override {
    lock_order_validator::instance().set_enabled(true);
    lock_order_validator::instance().take_violations();
  }
  void TearDown() override {
    lock_order_validator::instance().take_violations();
    lock_order_validator::instance().set_enabled(false);
  }
};

constexpr lock_class map_class{"vmtest", "map", 0};
constexpr lock_class object_class{"vmtest", "object", 1};
constexpr lock_class other_subsystem{"ipctest", "space", 0};

TEST_F(validator_fixture, InOrderAcquisitionIsClean) {
  int map_lock = 0, obj_lock = 0;
  auto& v = lock_order_validator::instance();
  v.on_acquire(&map_lock, map_class);
  v.on_acquire(&obj_lock, object_class);
  v.on_release(&obj_lock);
  v.on_release(&map_lock);
  EXPECT_TRUE(v.take_violations().empty());
}

TEST_F(validator_fixture, ReverseOrderIsFlagged) {
  int map_lock = 0, obj_lock = 0;
  auto& v = lock_order_validator::instance();
  v.on_acquire(&obj_lock, object_class);
  v.on_acquire(&map_lock, map_class);  // object before map: violation
  auto violations = v.take_violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("vmtest"), std::string::npos);
  v.on_release(&map_lock);
  v.on_release(&obj_lock);
}

TEST_F(validator_fixture, SameRankRequiresAddressOrder) {
  int locks[2] = {0, 0};
  auto& v = lock_order_validator::instance();
  // Increasing address: fine.
  v.on_acquire(&locks[0], map_class);
  v.on_acquire(&locks[1], map_class);
  EXPECT_TRUE(v.take_violations().empty());
  v.on_release(&locks[1]);
  v.on_release(&locks[0]);
  // Decreasing address: flagged.
  v.on_acquire(&locks[1], map_class);
  v.on_acquire(&locks[0], map_class);
  EXPECT_EQ(v.take_violations().size(), 1u);
  v.on_release(&locks[0]);
  v.on_release(&locks[1]);
}

TEST_F(validator_fixture, DifferentSubsystemsAreIndependent) {
  // The paper's point: conventions are per-subsystem; no single hierarchy.
  int obj_lock = 0, space_lock = 0;
  auto& v = lock_order_validator::instance();
  v.on_acquire(&obj_lock, object_class);
  v.on_acquire(&space_lock, other_subsystem);  // rank 0 after rank 1, but other subsystem
  EXPECT_TRUE(v.take_violations().empty());
  v.on_release(&space_lock);
  v.on_release(&obj_lock);
}

TEST_F(validator_fixture, PanicModeEscalates) {
  testing::panic_hook_scope hook;
  auto& v = lock_order_validator::instance();
  v.set_panic_on_violation(true);
  int map_lock = 0, obj_lock = 0;
  v.on_acquire(&obj_lock, object_class);
  EXPECT_THROW(v.on_acquire(&map_lock, map_class), panic_error);
  v.set_panic_on_violation(false);
  v.on_release(&map_lock);
  v.on_release(&obj_lock);
}

// Stress the wait-graph under concurrent edge churn while a checker thread
// runs find_cycle() the whole time. The edge set is acyclic by
// construction (thread i only waits on resources held by higher-indexed
// threads), so any reported cycle is a false positive; any crash or hang
// is a locking bug in the graph itself. This is the pattern the watchdog
// monitor relies on: find_cycle() from an unrelated thread mid-churn.
TEST(WaitGraphStress, ConcurrentChurnYieldsNoFalseCycles) {
  deadlock_tracing_scope scope;
  wait_graph& g = wait_graph::instance();
  constexpr int workers = 4;
  constexpr int rounds = 2000;
  int resources[workers] = {};
  std::atomic<bool> stop{false};
  std::atomic<int> false_cycles{0};

  std::thread checker([&] {
    while (!stop.load()) {
      if (g.find_cycle().has_value()) false_cycles.fetch_add(1);
      (void)g.held_resources();  // exercise the dump path concurrently
    }
  });

  std::vector<std::thread> ts;
  for (int i = 0; i < workers; ++i) {
    ts.emplace_back([&, i] {
      const void* me = current_thread_token();
      g.name_thread(me, std::string("churn") += std::to_string(i));
      for (int r = 0; r < rounds; ++r) {
        g.resource_held(&resources[i], me, "res");
        if (i + 1 < workers) {
          // Edge i -> i+1 only: the digraph stays a DAG at all times.
          g.thread_waits(me, &resources[i + 1], "res");
          g.thread_wait_done(me, &resources[i + 1]);
        }
        g.resource_released(&resources[i], me);
      }
    });
  }
  for (auto& t : ts) t.join();
  stop.store(true);
  checker.join();
  EXPECT_EQ(false_cycles.load(), 0);
  EXPECT_FALSE(g.find_cycle().has_value());
  g.clear();
}

// A real cycle formed while the churn above could also be racing: the
// detector must still find it deterministically once the edges are in.
TEST(WaitGraphStress, CycleFoundAmidUnrelatedChurn) {
  deadlock_tracing_scope scope;
  wait_graph& g = wait_graph::instance();
  int ra = 0, rb = 0, noise_res = 0;
  char ta, tb;

  std::atomic<bool> stop{false};
  std::thread noise([&] {
    const void* me = current_thread_token();
    while (!stop.load()) {
      g.resource_held(&noise_res, me, "noise");
      g.resource_released(&noise_res, me);
    }
  });

  g.resource_held(&ra, &ta, "cyc-a");
  g.resource_held(&rb, &tb, "cyc-b");
  g.thread_waits(&ta, &rb, "cyc-b");
  g.thread_waits(&tb, &ra, "cyc-a");
  auto c = g.find_cycle();
  stop.store(true);
  noise.join();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->threads.size(), 2u);
  EXPECT_NE(c->description.find("cyc-a"), std::string::npos);
  EXPECT_NE(c->description.find("cyc-b"), std::string::npos);
  g.clear();
}

TEST_F(validator_fixture, OrderedHoldRaii) {
  int map_lock = 0;
  {
    ordered_hold h(&map_lock, map_class);
    // Held entry present: an equal-rank lower address would be flagged.
  }
  // Released: same lock again is clean.
  ordered_hold h2(&map_lock, map_class);
  EXPECT_TRUE(lock_order_validator::instance().take_violations().empty());
}

}  // namespace
}  // namespace mach
