// Third-wave tests: interrupt nesting, event-bucket collisions, message
// move semantics, and address-space/pageout interplay.
#include <gtest/gtest.h>

#include <atomic>

#include "ipc/message.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "smp/processor.h"
#include "tests/test_util.h"
#include "vm/addr_space.h"
#include "vm/pageout.h"
#include "vm/vm_pageable.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

// A handler running at its vector's level can accept a still-higher
// vector at its own polling points (nested delivery), but not one at or
// below its level.
TEST(InterruptNesting, HigherVectorDeliversInsideHandler) {
  machine::instance().configure(1);
  {
    std::vector<int> order;
    int high = -1;
    int low = machine::instance().register_vector("low", SPLNET, [&](virtual_cpu&) {
      order.push_back(0);
      machine::interrupt_point();  // nested poll at SPLNET
      order.push_back(2);
    });
    high = machine::instance().register_vector("high", SPLHIGH,
                                               [&](virtual_cpu&) { order.push_back(1); });
    cpu_binding bind(0);
    // Post only the low vector; once inside its handler, post the high one
    // so the nested poll must deliver it mid-handler.
    machine::instance().post_ipi(0, low);
    // Arrange the high post from within the low handler via a second low
    // handler? Simpler: post both up front — delivery picks HIGH first,
    // so instead post low, deliver, and post high inside.
    // (Covered below with the two-phase variant.)
    machine::interrupt_point();
    ASSERT_EQ(order.size(), 2u);  // high wasn't pending: 0 then 2
    order.clear();

    // Two-phase: make the low handler itself post the high vector.
    int low2 = machine::instance().register_vector("low2", SPLNET, [&](virtual_cpu& c) {
      order.push_back(0);
      machine::instance().post_ipi(c.id(), high);
      machine::interrupt_point();  // must run `high` here, nested
      order.push_back(2);
    });
    machine::instance().post_ipi(0, low2);
    machine::interrupt_point();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);  // nested high delivery inside low2's handler
    EXPECT_EQ(order[2], 2);
  }
  machine::instance().configure(0);
}

TEST(InterruptNesting, EqualLevelVectorDefersInsideHandler) {
  machine::instance().configure(1);
  {
    std::vector<int> order;
    int self_level = -1;
    int trigger = machine::instance().register_vector("trigger", SPLNET, [&](virtual_cpu& c) {
      order.push_back(0);
      machine::instance().post_ipi(c.id(), self_level);
      machine::interrupt_point();  // SPLNET not > SPLNET: must defer
      order.push_back(1);
    });
    self_level = machine::instance().register_vector("same-level", SPLNET,
                                                     [&](virtual_cpu&) { order.push_back(2); });
    cpu_binding bind(0);
    machine::instance().post_ipi(0, trigger);
    machine::interrupt_point();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[1], 1);  // handler finished first...
    EXPECT_EQ(order[2], 2);  // ...then the deferred same-level vector ran
  }
  machine::instance().configure(0);
}

TEST(SplGuard, NestsCorrectly) {
  machine::instance().configure(1);
  {
    cpu_binding bind(0);
    spl_guard a(SPLNET);
    EXPECT_EQ(spl_level(), SPLNET);
    {
      spl_guard b(SPLVM);
      EXPECT_EQ(spl_level(), SPLVM);
      {
        spl_guard c(SPLHIGH);
        EXPECT_EQ(spl_level(), SPLHIGH);
      }
      EXPECT_EQ(spl_level(), SPLVM);
    }
    EXPECT_EQ(spl_level(), SPLNET);
  }
  machine::instance().configure(0);
}

// The event table has 128 buckets; hundreds of distinct events force
// collisions, and wakeups must still be exact.
TEST(EventBuckets, CollidingEventsWakeExactly) {
  constexpr int n = 300;
  static int events[n];
  std::atomic<int> woken{0};
  std::atomic<int> ready{0};
  std::vector<std::unique_ptr<kthread>> waiters;
  for (int i = 0; i < n; i += 10) {  // 30 waiters spread over the space
    waiters.push_back(kthread::spawn(std::string("w") += std::to_string(i), [&, i] {
      assert_wait(&events[i]);
      ready.fetch_add(1);
      thread_block();
      woken.fetch_add(1);
    }));
  }
  while (ready.load() < 30) std::this_thread::yield();
  std::this_thread::sleep_for(10ms);
  // Wake every event that has NO waiter: nobody must wake.
  for (int i = 0; i < n; ++i) {
    if (i % 10 != 0) thread_wakeup(&events[i]);
  }
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(woken.load(), 0) << "a colliding wakeup hit the wrong waiter";
  // Now wake the real ones, one by one.
  int expected = 0;
  for (int i = 0; i < n; i += 10) {
    thread_wakeup(&events[i]);
    ++expected;
  }
  for (auto& w : waiters) w->join();
  EXPECT_EQ(woken.load(), expected);
}

TEST(Message, MoveLeavesSourceEmpty) {
  auto reply = make_object<port>("r");
  message a(1, {1, 2, 3});
  a.reply_to = reply;
  EXPECT_EQ(reply->ref_count(), 2);
  message b = std::move(a);
  EXPECT_EQ(reply->ref_count(), 2);  // the right MOVED, not cloned
  EXPECT_EQ(b.reply_to.get(), reply.get());
  EXPECT_FALSE(a.reply_to);  // NOLINT(bugprone-use-after-move)
}

// Wired pages survive the pageout daemon even under a hopeless water
// target, while unwired ones from the same address space are evicted —
// and their contents come back on refault.
TEST(CrossLayer, WiringProtectsFromDaemonAndContentsPersist) {
  object_zone<vm_page> pages("m3-pages", 16);
  pmap_system pmaps;
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t base = 0;
  ASSERT_EQ(map->enter(obj, 0, 8 * vm_page_size, &base), KERN_SUCCESS);
  address_space as(map, pmaps);

  // Touch all 8 pages; tag each; wire the first 4.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(as.access(-1, base + static_cast<std::uint64_t>(i) * vm_page_size, nullptr),
              KERN_SUCCESS);
    obj->lock();
    obj->page_lookup_locked(static_cast<std::uint64_t>(i) * vm_page_size)->data[0] =
        static_cast<std::uint8_t>(i + 1);
    obj->unlock();
  }
  ASSERT_EQ(vm_map_pageable(*map, base, 4 * vm_page_size, true), KERN_SUCCESS);

  {
    pageout_daemon daemon(pages.raw(), /*low_water=*/16, 2ms);  // evict everything it can
    daemon.register_map(map);
    std::this_thread::sleep_for(40ms);
  }
  EXPECT_EQ(obj->resident_count(), 4u) << "wired pages evicted or unwired kept";

  // The evicted half comes back with contents intact.
  for (int i = 4; i < 8; ++i) {
    vm_page* p = nullptr;
    ASSERT_EQ(obj->page_request(static_cast<std::uint64_t>(i) * vm_page_size, &p), KERN_SUCCESS);
    EXPECT_EQ(p->data[0], static_cast<std::uint8_t>(i + 1)) << "page " << i;
  }
  ASSERT_EQ(vm_map_pageable(*map, base, 4 * vm_page_size, false), KERN_SUCCESS);
}

}  // namespace
}  // namespace mach
