// Unit tests for src/base: panic hooks, statistics, RNG, backoff, scope_exit.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/backoff.h"
#include "base/panic.h"
#include "base/rng.h"
#include "base/scope.h"
#include "base/stats.h"

namespace mach {
namespace {

void throwing_panic_hook(const std::string& message) { throw panic_error{message}; }

class panic_hook_scope {
 public:
  panic_hook_scope() : previous_(set_panic_hook(&throwing_panic_hook)) {}
  ~panic_hook_scope() { set_panic_hook(previous_); }

 private:
  panic_hook_t previous_;
};

TEST(Panic, HookReceivesMessage) {
  panic_hook_scope scope;
  try {
    panic("lock held across block");
    FAIL() << "panic returned";
  } catch (const panic_error& e) {
    EXPECT_EQ(e.message, "lock held across block");
  }
}

TEST(Panic, AssertMacroFiresOnFalse) {
  panic_hook_scope scope;
  EXPECT_THROW(MACH_ASSERT(false, "invariant"), panic_error);
  EXPECT_NO_THROW(MACH_ASSERT(true, "invariant"));
}

TEST(EventCounter, AccumulatesAndResets) {
  event_counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(LatencyHistogram, MeanAndMax) {
  latency_histogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 200.0);
  EXPECT_EQ(h.max_nanos(), 300u);
}

TEST(LatencyHistogram, QuantileIsMonotonic) {
  latency_histogram h;
  for (std::uint64_t v = 1; v <= 4096; v *= 2) h.record(v);
  std::uint64_t prev = 0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    std::uint64_t cur = h.quantile_nanos(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
  EXPECT_LE(h.quantile_nanos(0.5), h.max_nanos() * 2);
}

TEST(LatencyHistogram, MergeCombinesCounts) {
  latency_histogram a, b;
  a.record(10);
  b.record(20);
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.total_nanos(), 60u);
  EXPECT_EQ(a.max_nanos(), 30u);
}

TEST(LatencyHistogram, EmptyQuantilesAreZero) {
  latency_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_nanos(0.0), 0u);
  EXPECT_EQ(h.quantile_nanos(0.5), 0u);
  EXPECT_EQ(h.quantile_nanos(1.0), 0u);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 0.0);
  EXPECT_EQ(h.max_nanos(), 0u);
}

TEST(LatencyHistogram, SingleSampleAllQuantilesSameBucket) {
  latency_histogram h;
  h.record(100);  // bit_width(100) == 7 → bucket upper bound 127
  EXPECT_EQ(h.quantile_nanos(0.0), 127u);
  EXPECT_EQ(h.quantile_nanos(0.5), 127u);
  EXPECT_EQ(h.quantile_nanos(1.0), 127u);
}

TEST(LatencyHistogram, QuantileExtremesOutOfRangeClamp) {
  latency_histogram h;
  h.record(1);
  h.record(1 << 20);
  // q outside [0,1] clamps rather than misindexing.
  EXPECT_EQ(h.quantile_nanos(-0.5), h.quantile_nanos(0.0));
  EXPECT_EQ(h.quantile_nanos(1.5), h.quantile_nanos(1.0));
}

TEST(LatencyHistogram, MergeOfDisjointRangesSpansBoth) {
  latency_histogram small, large;
  for (int i = 0; i < 10; ++i) small.record(3);         // bucket 2, upper bound 3
  for (int i = 0; i < 10; ++i) large.record(1 << 20);   // bucket 21
  small.merge(large);
  EXPECT_EQ(small.count(), 20u);
  EXPECT_EQ(small.quantile_nanos(0.0), 3u);
  EXPECT_EQ(small.quantile_nanos(1.0), (std::uint64_t{1} << 21) - 1);
  EXPECT_EQ(small.max_nanos(), std::uint64_t{1} << 20);
}

TEST(LatencyHistogram, HugeValuesLandInOverflowBucket) {
  latency_histogram h;
  const std::uint64_t huge = ~std::uint64_t{0};  // bit_width 64 ≫ num_buckets
  h.record(huge);
  h.record(huge - 1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max_nanos(), huge);
  // Both clamp into the last bucket; the quantile reports its upper bound
  // rather than overflowing the shift.
  EXPECT_EQ(h.quantile_nanos(1.0),
            (std::uint64_t{1} << (latency_histogram::num_buckets - 1)) - 1);
  EXPECT_EQ(h.quantile_nanos(0.0), h.quantile_nanos(1.0));
}

TEST(LatencyHistogram, ResetDropsAllState) {
  latency_histogram h;
  h.record(100);
  h.record(1 << 20);
  ASSERT_EQ(h.count(), 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.total_nanos(), 0u);
  EXPECT_EQ(h.max_nanos(), 0u);
  EXPECT_EQ(h.quantile_nanos(1.0), 0u);
  for (int i = 0; i < latency_histogram::num_buckets; ++i) EXPECT_EQ(h.bucket(i), 0u);
  // Usable again after reset.
  h.record(5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_nanos(), 5u);
}

TEST(LatencyHistogram, BucketAccessorMatchesRecordedWidths) {
  latency_histogram h;
  h.record(1);    // bit_width 1 → bucket 1
  h.record(100);  // bit_width 7 → bucket 7
  h.record(100);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(7), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  // Out-of-range indices are safe and empty.
  EXPECT_EQ(h.bucket(-1), 0u);
  EXPECT_EQ(h.bucket(latency_histogram::num_buckets), 0u);
  // Bucket occupancy sums to count.
  std::uint64_t sum = 0;
  for (int i = 0; i < latency_histogram::num_buckets; ++i) sum += h.bucket(i);
  EXPECT_EQ(sum, h.count());
}

TEST(LatencyHistogram, MergePropagatesMaxAndTotalBothDirections) {
  latency_histogram a, b;
  a.record(1000);
  b.record(10);
  // Merging a smaller-max histogram must not lower max; merging a
  // larger-max one must raise it.
  a.merge(b);
  EXPECT_EQ(a.max_nanos(), 1000u);
  EXPECT_EQ(a.total_nanos(), 1010u);
  latency_histogram c;
  c.record(5);
  c.merge(a);
  EXPECT_EQ(c.max_nanos(), 1000u);
  EXPECT_EQ(c.total_nanos(), 1015u);
  EXPECT_EQ(c.count(), 3u);
}

TEST(Summary, ComputesMoments) {
  summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.118, 1e-3);
}

TEST(Summary, EmptyIsZero) {
  summary s = summarize({});
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Rng, DeterministicForSeed) {
  xorshift64 a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BoundedValuesInRange) {
  xorshift64 r(123);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, ProducesSpread) {
  xorshift64 r(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(r.next_below(1024));
  EXPECT_GT(seen.size(), 32u);  // far from degenerate
}

TEST(Rng, ChancePerMilleExtremes) {
  xorshift64 r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance_per_mille(0));
    EXPECT_TRUE(r.chance_per_mille(1000));
  }
}

TEST(Backoff, CountsPauses) {
  backoff bo;
  for (int i = 0; i < 5; ++i) bo.pause();
  EXPECT_EQ(bo.pauses(), 5u);
}

TEST(ScopeExit, RunsOnExit) {
  int fired = 0;
  {
    scope_exit guard([&] { ++fired; });
  }
  EXPECT_EQ(fired, 1);
}

TEST(ScopeExit, ReleaseDisarms) {
  int fired = 0;
  {
    scope_exit guard([&] { ++fired; });
    guard.release();
  }
  EXPECT_EQ(fired, 0);
}

TEST(Clock, NowNanosAdvances) {
  std::uint64_t a = now_nanos();
  std::uint64_t b = now_nanos();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace mach
