// Fourth-wave tests: shootdown pv consistency, pset argument edges,
// kernel-server shutdown behaviour, zone counters.
#include <gtest/gtest.h>

#include <atomic>

#include "ipc/stubs.h"
#include "kern/pset.h"
#include "kern/zalloc.h"
#include "sched/kthread.h"
#include "tests/test_util.h"
#include "vm/shootdown.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

struct sd_fixture : ::testing::Test {
  void SetUp() override {
    machine::instance().configure(2);
    tlbs = std::make_unique<tlb_set>(2);
    pmaps = std::make_unique<pmap_system>();
    engine = std::make_unique<shootdown_engine>(*pmaps, *tlbs);
    engine->attach(SPLHIGH);
    stop.store(false);
    poller = kthread::spawn("cpu1", [this] {
      cpu_binding bind(1);
      while (!stop.load()) {
        machine::interrupt_point();
        std::this_thread::yield();
      }
    });
  }
  void TearDown() override {
    stop.store(true);
    poller->join();
    poller.reset();
    engine.reset();
    pmaps.reset();
    tlbs.reset();
    machine::instance().configure(0);
  }

  std::size_t pv_entries_for(pmap& p, std::uint64_t pa, std::uint64_t va) {
    auto& b = pmaps->pv().bucket_for(pa);
    simple_lock(&b.lock);
    std::size_t n = 0;
    for (const auto& e : b.entries) {
      if (e.map == &p && e.va == va) ++n;
    }
    simple_unlock(&b.lock);
    return n;
  }

  std::unique_ptr<tlb_set> tlbs;
  std::unique_ptr<pmap_system> pmaps;
  std::unique_ptr<shootdown_engine> engine;
  std::atomic<bool> stop{false};
  std::unique_ptr<kthread> poller;
};

TEST_F(sd_fixture, UpdateMappingMaintainsPvOnEnter) {
  pmap p("pv-enter");
  cpu_binding bind(0);
  ASSERT_EQ(engine->update_mapping(p, 0x1000, 0xA000, 5s), interrupt_barrier::status::ok);
  EXPECT_EQ(pv_entries_for(p, 0xA000, 0x1000), 1u);
  // Remapping to a new frame moves the pv entry, never duplicates it.
  ASSERT_EQ(engine->update_mapping(p, 0x1000, 0xB000, 5s), interrupt_barrier::status::ok);
  EXPECT_EQ(pv_entries_for(p, 0xA000, 0x1000), 0u);
  EXPECT_EQ(pv_entries_for(p, 0xB000, 0x1000), 1u);
}

TEST_F(sd_fixture, UpdateMappingMaintainsPvOnRemove) {
  pmap p("pv-remove");
  cpu_binding bind(0);
  ASSERT_EQ(engine->update_mapping(p, 0x2000, 0xC000, 5s), interrupt_barrier::status::ok);
  ASSERT_EQ(engine->update_mapping(p, 0x2000, 0, 5s), interrupt_barrier::status::ok);
  EXPECT_EQ(pv_entries_for(p, 0xC000, 0x2000), 0u);
  spl_t s = p.lock_acquire();
  EXPECT_FALSE(p.lookup_locked(0x2000).has_value());
  p.lock_release(s);
}

TEST_F(sd_fixture, RepeatedRemapsLeaveExactlyOneTranslation) {
  pmap p("remap");
  cpu_binding bind(0);
  for (int r = 0; r < 10; ++r) {
    ASSERT_EQ(engine->update_mapping(p, 0x3000, 0xD000 + static_cast<std::uint64_t>(r) * 0x1000,
                                     5s),
              interrupt_barrier::status::ok);
  }
  spl_t s = p.lock_acquire();
  EXPECT_EQ(p.size_locked(), 1u);
  EXPECT_EQ(p.lookup_locked(0x3000), 0xD000u + 9 * 0x1000);
  p.lock_release(s);
  // The shootdown kept arbitrated protects working (pv not corrupted).
  EXPECT_EQ(pmaps->page_protect_arbitrated(0xD000 + 9 * 0x1000), 1);
}

// --- pset argument edges ---

TEST(PsetEdge, MoveToSameSetFails) {
  auto a = make_object<processor_set>();
  auto t = make_object<task>();
  a->assign_task(t);
  EXPECT_EQ(processor_set::move_task(*a, *a, t.get()), KERN_FAILURE);
  EXPECT_TRUE(a->contains_task(t.get()));
}

TEST(PsetEdge, AssignNullTaskFails) {
  auto a = make_object<processor_set>();
  EXPECT_EQ(a->assign_task({}), KERN_FAILURE);
}

// --- kernel server shutdown behaviour ---

TEST(KernelServerEdge, StopLeavesUnservedRequestsQueued) {
  auto obj = make_object<counter_object>();
  auto service = make_object<port>("svc");
  service->set_translation(obj);
  {
    kernel_server server(service, standard_router(), "stopper");
    server.stop();  // immediately
  }
  // Requests sent after the stop stay queued (nobody consumes them).
  EXPECT_EQ(service->send(message(OP_COUNTER_ADD, {1})), KERN_SUCCESS);
  EXPECT_EQ(service->queued(), 1u);
  std::uint64_t v = 99;
  obj->read(v);
  EXPECT_EQ(v, 0u) << "a stopped server executed a request";
}

TEST(KernelServerEdge, ServerSurvivesServiceDestroyPort) {
  auto obj = make_object<counter_object>();
  auto service = make_object<port>("svc");
  service->set_translation(obj);
  kernel_server server(service, standard_router(), "dead-port-server");
  std::this_thread::sleep_for(5ms);
  service->destroy_port();  // the receiver retires instead of busy-spinning
  std::this_thread::sleep_for(30ms);
  server.stop();  // must return promptly
  EXPECT_EQ(server.served(), 0u);
}

// --- zone counters ---

TEST(ZoneCounters, AllocSleepsCountsBlockingAllocsOnly) {
  zone z("counted", 32, 1);
  void* a = z.alloc();
  EXPECT_EQ(z.alloc_sleeps(), 0u);
  std::atomic<bool> got{false};
  auto waiter = kthread::spawn("w", [&] {
    void* p = z.alloc();
    got.store(true);
    z.free(p);
  });
  std::this_thread::sleep_for(15ms);
  EXPECT_EQ(z.alloc_sleeps(), 1u);
  z.free(a);
  waiter->join();
  EXPECT_EQ(z.alloc_sleeps(), 1u);  // one blocking episode, however many wakeups
}

}  // namespace
}  // namespace mach
