// stress_vm: sanitizer stress driver for the VM stack — concurrent
// faults, wiring, TLB shootdowns, and the pageout daemon on a virtual
// 3-CPU machine. See stress_core.cpp for build/run instructions.
#include <atomic>
#include <cstdio>
#include <vector>
#include "sched/kthread.h"
#include "vm/addr_space.h"
#include "vm/pageout.h"
#include "vm/vm_pageable.h"
using namespace mach;
using namespace std::chrono_literals;
int main() {
  machine::instance().configure(3);
  {
    object_zone<vm_page> pages("tsan-pages", 48);
    pmap_system pmaps;
    tlb_set tlbs(3);
    shootdown_engine engine(pmaps, tlbs);
    engine.attach(SPLHIGH);
    auto map = make_object<vm_map>();
    auto obj = make_object<memory_object>(pages, 100us);
    std::uint64_t base = 0;
    map->enter(obj, 0, 16 * vm_page_size, &base);
    address_space as(map, pmaps, &tlbs, &engine);

    pageout_daemon daemon(pages.raw(), 8, 2ms);
    daemon.register_map(map);

    std::atomic<bool> stop{false};
    std::vector<std::unique_ptr<kthread>> ts;
    for (int c = 1; c <= 2; ++c) {
      ts.push_back(kthread::spawn("cpu" + std::to_string(c), [&, c] {
        cpu_binding bind(c);
        int i = 0;
        while (!stop.load()) {
          machine::interrupt_point();
          as.access(c, base + static_cast<std::uint64_t>(i++ % 16) * vm_page_size);
          if (i % 64 == 0) std::this_thread::yield();
        }
      }));
    }
    ts.push_back(kthread::spawn("wirer", [&] {
      while (!stop.load()) {
        vm_map_pageable(*map, base, 4 * vm_page_size, true);
        vm_map_pageable(*map, base, 4 * vm_page_size, false);
        std::this_thread::yield();
      }
    }));
    {
      cpu_binding bind(0);
      for (int r = 0; r < 100; ++r) {
        as.unmap_page(base + static_cast<std::uint64_t>(r % 16) * vm_page_size, 5s);
      }
    }
    std::this_thread::sleep_for(100ms);
    stop.store(true);
    for (auto& t : ts) t->join();
    daemon.stop();
    obj->terminate();
    std::printf("vm stress ok; resident=%zu frames=%zu\n", obj->resident_count(),
                pages.raw().in_use());
  }
  machine::instance().configure(0);
  std::printf("ALL OK\n");
  return 0;
}
