// stress_machcached: concurrency battery for the machcached item table
// and the IPC-fronted service (svc/machcached.h) — concurrent GET/SET/
// DELETE storms across every refcount policy and a shard-count sweep,
// plus a service-teardown-vs-traffic race arm. Always built, runs under
// ctest (sized to finish in seconds), and re-run under -fsanitize=thread
// by the TSan CI job, where the read-side lock holds, the immutable-value
// discipline, and the displaced-reference release paths get their real
// audit. Scale knobs:
//
//   MACHLOCK_STRESS_THREADS  worker threads per arm      (default 4)
//   MACHLOCK_STRESS_ITERS    ops per worker per arm      (default 20000)
//   MACHLOCK_STRESS_ROUNDS   teardown-race rounds        (default 20)
//
// Expected output: "ALL OK" and exit 0 (and zero TSan warnings).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/rng.h"
#include "svc/machcached.h"
#include "trace/trace_session.h"

using namespace mach;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

int g_failures = 0;

#define CHECK(cond, what)                                           \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, (what)); \
      ++g_failures;                                                 \
    }                                                               \
  } while (0)

// Arm 1 — direct-API item-table storm: every worker mixes GET (and reads
// the immutable value through its reference), SET (overwrites included)
// and DELETE over a small hot keyspace, per refcount policy x shard
// count. At quiesce: one reference per resident item, zone occupancy ==
// residency, residency <= capacity, and every surviving value is
// self-consistent (value[0] == key ^ tag — a torn or stale block would
// break it).
void table_storm(refcount_policy pol, int shards, int threads, int iters) {
  mc_cache_config cfg;
  cfg.shards = shards;
  cfg.max_items = 64;
  cfg.value_words = 4;
  cfg.item_policy = pol;
  mc_cache cache(cfg);
  constexpr std::uint64_t keyspace = 48;  // < capacity: overwrite-heavy
  constexpr std::uint64_t tag = 0x5ca1ab1eull;
  std::vector<std::unique_ptr<kthread>> ts;
  for (int t = 0; t < threads; ++t) {
    ts.push_back(kthread::spawn("mc-storm" + std::to_string(t), [&, t] {
      xorshift64 rng(static_cast<std::uint64_t>(t) * 2654435761u + 17);
      std::uint64_t value[4] = {0, 0, 0, 0};
      for (int i = 0; i < iters; ++i) {
        const std::uint64_t key = rng.next_below(keyspace);
        switch (rng.next_below(10)) {
          case 0:
            (void)cache.del(key);
            break;
          case 1:
          case 2:
          case 3: {
            value[0] = key ^ tag;
            value[1] = rng.next();
            kern_return_t kr = cache.set(key, value, 4);
            CHECK(kr == KERN_SUCCESS || kr == KERN_RESOURCE_SHORTAGE,
                  "set returned unexpected code");
            break;
          }
          default: {
            ref_ptr<mc_item> item = cache.get(key);
            if (item) {
              CHECK(item->key() == key, "got an item filed under the wrong key");
              CHECK(item->value()[0] == (key ^ tag), "value inconsistent with key");
            }
            break;
          }
        }
      }
    }));
  }
  for (auto& t : ts) t->join();
  std::string why;
  CHECK(cache.check_quiesced(&why), why.c_str());
  CHECK(cache.size() <= cfg.max_items, "residency exceeded capacity");
  const mc_cache_stats s = cache.stats();
  CHECK(s.hits + s.misses == s.gets, "get accounting leaked");
  std::printf("table storm ok: policy=%s shards=%d (resident=%zu, %llu gets)\n",
              refcount_policy_name(pol), cache.shards(), cache.size(),
              static_cast<unsigned long long>(s.gets));
}

// Arm 2 — the full IPC service under load: run_mc_load already asserts
// the quiesce invariant at teardown; on top, check message conservation —
// every accepted request was served, replied to, and collected (the
// property the port-receive timeout fix protects).
void ipc_battery(int threads) {
  for (int read_pct : {90, 30}) {
    mc_load_spec spec;
    spec.connections = threads;
    spec.workers = 2;
    spec.duration_ms = 150;
    spec.read_pct = read_pct;
    spec.keyspace = 96;
    spec.cache.shards = 4;
    spec.cache.max_items = 128;  // tight: zone shortage is exercised
    spec.cache.value_words = 4;
    const std::uint64_t live_before = kobject::live_objects();
    mc_load_result r = run_mc_load(spec);
    CHECK(r.ops > 0, "load burst completed no ops");
    CHECK(r.ops == r.served, "replies lost between server and clients");
    CHECK(r.latency.count() == r.ops, "latency accounting leaked");
    CHECK(kobject::live_objects() == live_before, "service leaked kernel objects");
    std::printf("ipc battery ok: read%%=%d ops=%llu shortage=%llu\n", read_pct,
                static_cast<unsigned long long>(r.ops),
                static_cast<unsigned long long>(r.shortage_replies));
  }
}

// Arm 3 — teardown vs. traffic: stop the server (destroy_port under the
// hood) while senders hammer the service port. Every sender must end on
// KERN_TERMINATED, the dead queue must be empty (the deactivate+drain
// fix), and the carried reply-port rights must all be released.
void teardown_race(int threads, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    mc_cache_config cfg;
    cfg.shards = 2;
    cfg.max_items = 64;
    cfg.value_words = 2;
    mc_cache cache(cfg);
    machcached_config scfg;
    scfg.workers = 2;
    auto server = std::make_unique<machcached_server>(cache, scfg);
    auto reply = make_object<port>("race-reply");
    std::atomic<bool> go{false};
    std::vector<std::unique_ptr<kthread>> senders;
    for (int t = 0; t < threads; ++t) {
      senders.push_back(kthread::spawn("mc-tx" + std::to_string(t), [&, t] {
        while (!go.load(std::memory_order_relaxed)) std::this_thread::yield();
        xorshift64 rng(static_cast<std::uint64_t>(t) + 99);
        for (int k = 0; k < 4096; ++k) {
          message m(MC_GET, {rng.next_below(32), 1});
          m.reply_to = reply;
          const kern_return_t kr = server->service().send(std::move(m));
          if (kr == KERN_TERMINATED) return;
          CHECK(kr == KERN_SUCCESS || kr == KERN_NO_SPACE, "unexpected send result");
        }
      }));
    }
    go.store(true);
    if (round % 2 == 1) std::this_thread::yield();
    server->stop();  // destroy_port races the senders
    for (auto& s : senders) s->join();
    CHECK(server->service().queued() == 0, "messages stranded in dead service port");
    // Workers replied to everything they dequeued; drain those replies,
    // then the only reference left to the reply port must be ours.
    while (reply->try_receive().has_value()) {
    }
    CHECK(reply->ref_count() == 1, "carried reply right leaked through teardown");
    server.reset();
  }
  std::printf("teardown race ok: rounds=%d\n", rounds);
}

}  // namespace

int main() {
  // Honors the MACHLOCK_* observability env knobs so the TSan CI job can
  // race the tracer/sampler against the full battery.
  trace_session session;
  const int threads = env_int("MACHLOCK_STRESS_THREADS", 4);
  const int iters = env_int("MACHLOCK_STRESS_ITERS", 20000);
  const int rounds = env_int("MACHLOCK_STRESS_ROUNDS", 20);

  for (refcount_policy pol : kRefcountPolicies) {
    for (int shards : {1, 8}) table_storm(pol, shards, threads, iters);
  }
  ipc_battery(threads);
  teardown_race(threads, rounds);

  if (g_failures != 0) {
    std::printf("FAILURES: %d\n", g_failures);
    return 1;
  }
  std::printf("ALL OK\n");
  return 0;
}
