// stress_core: sanitizer stress driver for the synchronization core —
// the lock mix, event storms, RPC storms, and the single-writer timers.
//
// Not part of ctest: build with MACHLOCK_STRESS=ON (optionally with
// -DCMAKE_CXX_FLAGS=-fsanitize=thread) and run directly:
//
//   cmake -B build-tsan -G Ninja -DMACHLOCK_STRESS=ON
//         -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g"  (one command line)
//   cmake --build build-tsan --target stress_core stress_vm
//   ./build-tsan/tests/stress_core && ./build-tsan/tests/stress_vm
//
// Expected: "ALL OK" and zero ThreadSanitizer warnings.
#include <atomic>
#include <cstdio>
#include <vector>
#include "ipc/stubs.h"
#include "kern/task.h"
#include "sched/event.h"
#include "sched/timer.h"
#include "sync/complex_lock.h"
using namespace mach;
int main() {
  // 1. simple + complex lock mix
  simple_lock_data_t sl("tsan-simple");
  lock_data_t cl;
  lock_init(&cl, true, "tsan-complex");
  long a = 0, b = 0;
  std::vector<std::unique_ptr<kthread>> ts;
  for (int t = 0; t < 4; ++t) {
    ts.push_back(kthread::spawn("mix" + std::to_string(t), [&, t] {
      for (int i = 0; i < 3000; ++i) {
        simple_lock(&sl); ++a; simple_unlock(&sl);
        if ((i + t) % 3 == 0) { lock_write(&cl); ++b; lock_done(&cl); }
        else { lock_read(&cl); volatile long r = b; (void)r; lock_done(&cl); }
      }
    }));
  }
  for (auto& t : ts) t->join();
  ts.clear();
  std::printf("locks ok: a=%ld b=%ld\n", a, b);

  // 2. events
  std::atomic<int> waves{0};
  int ev = 0;
  for (int t = 0; t < 3; ++t) {
    ts.push_back(kthread::spawn("ev" + std::to_string(t), [&] {
      for (int i = 0; i < 500; ++i) {
        assert_wait(&ev);
        thread_block_timeout(std::chrono::milliseconds(5));
        waves.fetch_add(1);
      }
    }));
  }
  for (int i = 0; i < 3000; ++i) { thread_wakeup(&ev); std::this_thread::yield(); }
  for (auto& t : ts) t->join();
  ts.clear();
  std::printf("events ok: waves=%d\n", waves.load());

  // 3. refcounts + ports + rpc
  ipc_space space;
  auto obj = make_object<counter_object>();
  auto p = make_object<port>("tsan-port");
  p->set_translation(obj);
  auto name = space.insert(p);
  for (int t = 0; t < 4; ++t) {
    ts.push_back(kthread::spawn("rpc" + std::to_string(t), [&] {
      message reply;
      for (int i = 0; i < 2000; ++i) {
        msg_rpc(space, name, message(OP_COUNTER_ADD, {1}), reply, standard_router());
      }
    }));
  }
  for (auto& t : ts) t->join();
  ts.clear();
  std::printf("rpc ok\n");

  // 4. usage timer single-writer/multi-reader
  usage_timer timer;
  std::atomic<bool> stop{false};
  ts.push_back(kthread::spawn("ticker", [&] {
    while (!stop.load()) timer.tick(timer_low_limit / 7);
  }));
  for (int t = 0; t < 2; ++t) {
    ts.push_back(kthread::spawn("reader" + std::to_string(t), [&] {
      std::uint64_t last = 0;
      for (int i = 0; i < 200000; ++i) {
        std::uint64_t v = timer.total_us();
        if (v < last) { std::printf("TIMER WENT BACKWARDS\n"); return; }
        last = v;
      }
    }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (auto& t : ts) t->join();
  std::printf("timer ok\n");
  std::printf("ALL OK\n");
  return 0;
}
