// stress_refcount: concurrency battery for the refcount policies
// (kern/refcount.h) — every policy, every path: cmpxchg fast paths, locked
// fallbacks, lock-steal, striped cross-thread reconciles, and
// last-reference destruction races, with a tracing-enabled arm.
//
// Unlike stress_core/stress_vm this driver is always built and runs under
// ctest (it is sized to finish in seconds); the TSan CI job also builds
// and runs it under -fsanitize=thread, where the lock-free fast paths get
// their real audit. Scale knobs:
//
//   MACHLOCK_STRESS_THREADS  worker threads per arm      (default 4)
//   MACHLOCK_STRESS_ITERS    ops per worker per arm      (default 20000)
//   MACHLOCK_STRESS_ROUNDS   destruction-race rounds     (default 40)
//
// Expected output: "ALL OK" and exit 0 (and zero TSan warnings).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/rng.h"
#include "kern/object.h"
#include "kern/refcount.h"
#include "sched/kthread.h"
#include "trace/ktrace.h"
#include "trace/trace_session.h"

using namespace mach;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

int g_failures = 0;

#define CHECK(cond, what)                                           \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, (what)); \
      ++g_failures;                                                 \
    }                                                               \
  } while (0)

// Arm 1 — mixed get/put/value storm on a shared count, per policy. Each
// worker keeps a local balance so the storm never over-releases; the
// creation reference must survive untouched.
void storm(refcount_policy pol, int threads, int iters) {
  krefcount c(pol, 1);
  std::vector<std::unique_ptr<kthread>> ts;
  for (int t = 0; t < threads; ++t) {
    ts.push_back(kthread::spawn("storm" + std::to_string(t), [&, t] {
      xorshift64 rng(static_cast<std::uint64_t>(t) * 7919 + 13);
      int held = 0;
      for (int i = 0; i < iters; ++i) {
        switch (rng.next_below(4)) {
          case 0:
          case 1:
            c.acquire();
            ++held;
            break;
          case 2:
            if (held > 0) {
              CHECK(!c.release(), "storm release claimed last");
              --held;
            }
            break;
          default:
            CHECK(c.value() >= 1, "storm value dropped below creation ref");
            break;
        }
      }
      while (held-- > 0) CHECK(!c.release(), "storm drain claimed last");
    }));
  }
  for (auto& t : ts) t->join();
  CHECK(c.value() == 1, "storm did not balance");
  std::printf("storm ok: policy=%s\n", refcount_policy_name(pol));
}

// Arm 2 — lockref lock-steal: a stealer repeatedly holds the embedded
// lock (forcing every concurrent op onto the locked fallback), workers
// hammer get/put throughout. Exactness must survive the mode changes.
void lock_steal(int threads, int iters) {
  lockref_refcount c(1);
  std::atomic<bool> stop{false};
  auto stealer = kthread::spawn("stealer", [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      c.lock();
      for (int spin = 0; spin < 50; ++spin) cpu_relax();
      c.unlock();
      std::this_thread::yield();
    }
  });
  std::vector<std::unique_ptr<kthread>> ts;
  for (int t = 0; t < threads; ++t) {
    ts.push_back(kthread::spawn("steal" + std::to_string(t), [&] {
      for (int i = 0; i < iters; ++i) {
        c.acquire();
        CHECK(!c.release(), "lock-steal release claimed last");
      }
    }));
  }
  for (auto& t : ts) t->join();
  stop.store(true);
  stealer->join();
  CHECK(c.value() == 1, "lock-steal did not balance");
  std::printf("lock-steal ok: value=%d\n", c.value());
}

// Arm 3 — striped cross-thread releases: producers acquire (on their own
// slots), consumers release references they never acquired, draining other
// threads' slots through the reconcile path. The handoff pool guarantees
// a consumer never releases a reference before a producer acquired it.
void cross_thread_release(int threads, int iters) {
  striped_refcount c(1);
  const int producers = threads / 2 > 0 ? threads / 2 : 1;
  const int total = producers * iters;
  std::atomic<int> pool{0};      // acquired, not yet released
  std::atomic<int> consumed{0};  // claimed by a consumer
  std::vector<std::unique_ptr<kthread>> ts;
  for (int p = 0; p < producers; ++p) {
    ts.push_back(kthread::spawn("prod" + std::to_string(p), [&] {
      for (int i = 0; i < iters; ++i) {
        c.acquire();
        pool.fetch_add(1, std::memory_order_release);
      }
    }));
  }
  for (int r = 0; r < producers; ++r) {
    ts.push_back(kthread::spawn("cons" + std::to_string(r), [&] {
      for (;;) {
        if (consumed.fetch_add(1, std::memory_order_relaxed) >= total) break;
        while (pool.fetch_sub(1, std::memory_order_acquire) <= 0) {
          pool.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
        CHECK(!c.release(), "cross-thread release claimed last");
      }
    }));
  }
  for (auto& t : ts) t->join();
  CHECK(c.value() == 1, "cross-thread releases did not balance");
  CHECK(c.release(), "creation reference was not last");
  std::printf("cross-thread ok: total=%d\n", total);
}

// Arm 4 — last-reference destruction races through kobject: every thread
// releases one of the object's references at once; exactly one release
// must destroy, and the live-object count must return to its base.
void destruction_race(refcount_policy pol, int threads, int rounds) {
  struct doomed : kobject {
    doomed(refcount_policy p, std::atomic<int>* d) : kobject("doomed", p), flag(d) {}
    ~doomed() override { flag->fetch_add(1); }
    std::atomic<int>* flag;
  };
  std::uint64_t base = kobject::live_objects();
  for (int round = 0; round < rounds; ++round) {
    std::atomic<int> destroyed{0};
    auto* o = new doomed(pol, &destroyed);
    for (int t = 1; t < threads; ++t) o->ref_clone();  // one ref per thread
    std::atomic<int> gate{0};
    std::vector<std::unique_ptr<kthread>> ts;
    for (int t = 0; t < threads; ++t) {
      ts.push_back(kthread::spawn("race" + std::to_string(t), [&] {
        gate.fetch_add(1);
        while (gate.load(std::memory_order_relaxed) < threads) {
        }
        o->ref_release();
      }));
    }
    for (auto& t : ts) t->join();
    CHECK(destroyed.load() == 1, "destruction race: not destroyed exactly once");
  }
  CHECK(kobject::live_objects() == base, "destruction race leaked objects");
  std::printf("destruction ok: policy=%s rounds=%d\n", refcount_policy_name(pol), rounds);
}

// Arm 5 — the same traffic with tracing enabled: the emit paths (which
// run inside the fast paths and critical sections) must be as race-free
// as the counts, and every destruction must leave its arg2==0 marker.
void traced_storm(int threads, int iters) {
  ktrace::disable();
  ktrace::reset();
  ktrace::enable();
  for (refcount_policy pol : kRefcountPolicies) {
    storm(pol, threads, iters);
    destruction_race(pol, threads, /*rounds=*/4);
  }
  ktrace::disable();
  auto c = ktrace::collect();
  std::size_t destroy_markers = 0;
  std::uint64_t prev = 0;
  for (const auto& e : c.events) {
    CHECK(e.rec.nanos >= prev, "trace merge not time-ordered");
    prev = e.rec.nanos;
    if (e.rec.kind == trace_kind::ref_release && e.rec.arg2 == 0) ++destroy_markers;
  }
  // 4 policies x 4 rounds of destruction races (markers may be dropped on
  // ring wrap; with default rings this traffic fits).
  CHECK(destroy_markers + c.total_dropped() >= 16, "missing destruction markers");
  ktrace::reset();
  std::printf("traced ok: events=%zu dropped=%llu\n", c.events.size(),
              static_cast<unsigned long long>(c.total_dropped()));
}

}  // namespace

int main() {
  // Honors the MACHLOCK_* observability env knobs (kprof sampler, kmon,
  // watchdog, trace export) so the TSan CI job can race the sampler's
  // slot-table walk against the full refcount battery.
  trace_session session;
  const int threads = env_int("MACHLOCK_STRESS_THREADS", 4);
  const int iters = env_int("MACHLOCK_STRESS_ITERS", 20000);
  const int rounds = env_int("MACHLOCK_STRESS_ROUNDS", 40);

  for (refcount_policy pol : kRefcountPolicies) storm(pol, threads, iters);
  lock_steal(threads, iters);
  cross_thread_release(threads, iters);
  for (refcount_policy pol : kRefcountPolicies) destruction_race(pol, threads, rounds);
  traced_storm(threads, iters / 10 > 0 ? iters / 10 : 1);

  if (g_failures != 0) {
    std::printf("FAILURES: %d\n", g_failures);
    return 1;
  }
  std::printf("ALL OK\n");
  return 0;
}
