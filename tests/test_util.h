// Shared test helpers.
#pragma once

#include "base/panic.h"

namespace mach::testing {

inline void throwing_panic_hook(const std::string& message) { throw panic_error{message}; }

// Install a panic hook that throws panic_error for the scope's lifetime,
// so tests can assert on invariant violations.
class panic_hook_scope {
 public:
  panic_hook_scope() : previous_(set_panic_hook(&throwing_panic_hook)) {}
  ~panic_hook_scope() { set_panic_hook(previous_); }
  panic_hook_scope(const panic_hook_scope&) = delete;
  panic_hook_scope& operator=(const panic_hook_scope&) = delete;

 private:
  panic_hook_t previous_;
};

}  // namespace mach::testing
