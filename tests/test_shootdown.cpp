// Tests for TLB shootdown: the happy path, the pmap special logic, and
// the section 7 three-processor deadlock (inconsistent spl), detected and
// named by the wait graph.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "sched/kthread.h"
#include "sync/deadlock.h"
#include "tests/test_util.h"
#include "vm/shootdown.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

struct shootdown_fixture : ::testing::Test {
  void SetUp() override {
    machine::instance().configure(3);
    tlbs = std::make_unique<tlb_set>(3);
    pmaps = std::make_unique<pmap_system>();
    engine = std::make_unique<shootdown_engine>(*pmaps, *tlbs);
    engine->attach(SPLHIGH);
  }
  void TearDown() override { machine::instance().configure(0); }

  std::unique_ptr<tlb_set> tlbs;
  std::unique_ptr<pmap_system> pmaps;
  std::unique_ptr<shootdown_engine> engine;
};

TEST_F(shootdown_fixture, TlbBasics) {
  tlbs->insert(0, 0x1000, 0xA000);
  EXPECT_EQ(tlbs->lookup(0, 0x1000), 0xA000u);
  EXPECT_FALSE(tlbs->lookup(1, 0x1000).has_value());  // per-CPU
  tlbs->flush_local(0, 0x1000);
  EXPECT_FALSE(tlbs->lookup(0, 0x1000).has_value());
}

TEST_F(shootdown_fixture, PostedInvalidationsApplyOnProcess) {
  tlbs->insert(1, 0x1000, 0xA000);
  tlbs->post_invalidate(1, 0x1000);
  EXPECT_TRUE(tlbs->has_pending(1));
  EXPECT_EQ(tlbs->lookup(1, 0x1000), 0xA000u);  // stale until processed
  EXPECT_EQ(tlbs->process_pending(1), 1);
  EXPECT_FALSE(tlbs->lookup(1, 0x1000).has_value());
}

TEST_F(shootdown_fixture, ShootdownInvalidatesRemoteTlbs) {
  pmap p("victim");
  // CPU 1 and 2 run poll loops (kernel idle); they cache the translation.
  tlbs->insert(1, 0x1000, 0xA000);
  tlbs->insert(2, 0x1000, 0xA000);
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<kthread>> pollers;
  for (int i = 1; i <= 2; ++i) {
    pollers.push_back(kthread::spawn("cpu" + std::to_string(i), [i, &stop] {
      cpu_binding bind(i);
      while (!stop.load()) {
        machine::interrupt_point();
        std::this_thread::yield();
      }
    }));
  }
  cpu_binding bind(0);
  auto st = engine->update_mapping(p, 0x1000, 0xB000, 5s);
  EXPECT_EQ(st, interrupt_barrier::status::ok);
  stop.store(true);
  for (auto& t : pollers) t->join();
  // No CPU retains the stale translation.
  EXPECT_FALSE(tlbs->lookup(1, 0x1000).has_value());
  EXPECT_FALSE(tlbs->lookup(2, 0x1000).has_value());
  // And the pmap has the new mapping.
  spl_t s = p.lock_acquire();
  EXPECT_EQ(p.lookup_locked(0x1000), 0xB000u);
  p.lock_release(s);
}

TEST_F(shootdown_fixture, SpecialLogicExcludesCpuAtPmapLock) {
  // CPU 2's thread holds a pmap lock (spl raised, cannot take the IPI);
  // the special logic drops it from the participant set, so the round
  // completes, and CPU 2 processes the posted update afterwards.
  pmap p("target"), other("other");
  tlbs->insert(2, 0x1000, 0xA000);
  std::atomic<bool> locked{false}, release{false}, stop{false};
  auto cpu2 = kthread::spawn("cpu2", [&] {
    cpu_binding bind(2);
    spl_t s = other.lock_acquire();  // at_pmap_lock set, spl = SPLVM
    locked.store(true);
    while (!release.load()) std::this_thread::yield();
    other.lock_release(s);  // splx lowers → pending IPI delivered here
    while (!stop.load()) {
      machine::interrupt_point();
      std::this_thread::yield();
    }
  });
  auto cpu1 = kthread::spawn("cpu1", [&] {
    cpu_binding bind(1);
    while (!stop.load()) {
      machine::interrupt_point();
      std::this_thread::yield();
    }
  });
  while (!locked.load()) std::this_thread::yield();

  cpu_binding bind(0);
  auto st = engine->update_mapping(p, 0x1000, 0xB000, 2s);
  EXPECT_EQ(st, interrupt_barrier::status::ok) << "round must not wait for the excluded CPU";
  EXPECT_GE(engine->cpus_excluded(), 1u);
  // CPU 2 still has the stale entry (posted, not yet processed)...
  EXPECT_EQ(tlbs->lookup(2, 0x1000), 0xA000u);
  release.store(true);  // CPU 2 drops the pmap lock → takes the IPI
  while (tlbs->lookup(2, 0x1000).has_value()) std::this_thread::yield();
  stop.store(true);
  cpu2->join();
  cpu1->join();
}

TEST_F(shootdown_fixture, WithoutSpecialLogicRoundTimesOut) {
  engine->set_pmap_special_logic(false);
  pmap p("target"), other("other");
  std::atomic<bool> locked{false}, release{false};
  auto cpu2 = kthread::spawn("cpu2", [&] {
    cpu_binding bind(2);
    spl_t s = other.lock_acquire();
    locked.store(true);
    while (!release.load()) std::this_thread::yield();
    other.lock_release(s);
    machine::interrupt_point();
  });
  std::atomic<bool> stop{false};
  auto cpu1 = kthread::spawn("cpu1", [&] {
    cpu_binding bind(1);
    while (!stop.load()) {
      machine::interrupt_point();
      std::this_thread::yield();
    }
  });
  while (!locked.load()) std::this_thread::yield();
  cpu_binding bind(0);
  auto st = engine->update_mapping(p, 0x1000, 0xB000, 100ms);
  EXPECT_EQ(st, interrupt_barrier::status::timed_out);
  release.store(true);
  stop.store(true);
  cpu2->join();
  cpu1->join();
}

// The full section 7 scenario: "Processor 1 has the lock with interrupts
// enabled. Processor 2 has disabled interrupts and is attempting to
// acquire the lock. Processor 3 initiates interrupt barrier
// synchronization. Processor 1 takes the interrupt, processor 2 does not."
TEST_F(shootdown_fixture, Section7ThreeProcessorDeadlockDetected) {
  deadlock_tracing_scope tracing;
  simple_lock_data_t the_lock;
  simple_lock_init(&the_lock, "device-lock");

  std::atomic<bool> p1_has_lock{false}, p2_spinning{false};
  std::atomic<bool> unwound{false};

  // P1: acquires the lock at spl0 (interrupts enabled — the inconsistent
  // acquisition) and polls inside its critical section.
  auto p1 = kthread::spawn("P1", [&] {
    cpu_binding bind(1);
    simple_lock(&the_lock);
    p1_has_lock.store(true);
    while (!unwound.load()) {
      machine::interrupt_point();  // ...and takes the barrier IPI here
      std::this_thread::yield();
    }
    simple_unlock(&the_lock);
  });
  while (!p1_has_lock.load()) std::this_thread::yield();

  // P2: raises spl (disables the barrier interrupt) and spins on the lock.
  auto p2 = kthread::spawn("P2", [&] {
    cpu_binding bind(2);
    spl_t s = splraise(SPLHIGH);
    p2_spinning.store(true);
    simple_lock(&the_lock);  // spins; poll hook delivers nothing at SPLHIGH
    simple_unlock(&the_lock);
    splx(s);
  });
  while (!p2_spinning.load()) std::this_thread::yield();

  // P3: initiates the barrier including CPUs 1 and 2.
  std::atomic<int> round_status{-1};
  auto p3 = kthread::spawn("P3", [&] {
    cpu_binding bind(0);
    auto st = engine->barrier().run(0b110, [] {}, 30s);
    round_status.store(static_cast<int>(st));
  });

  // The deadlock detector names the three-party cycle.
  auto cycle = wait_graph::instance().wait_for_cycle(10000);
  ASSERT_TRUE(cycle.has_value()) << "expected the section 7 deadlock";
  EXPECT_GE(cycle->threads.size(), 3u) << cycle->description;

  // Unwind: abort the barrier round (the watchdog's remedy). P1 leaves the
  // ISR, releases the lock; P2 acquires and releases; P3 reports aborted.
  engine->barrier().abort_current();
  unwound.store(true);
  p1->join();
  p2->join();
  p3->join();
  EXPECT_EQ(round_status.load(), static_cast<int>(interrupt_barrier::status::aborted));
}

}  // namespace
}  // namespace mach
