// Integration tests: the subsystems composed the way a running kernel
// composes them — tasks with address spaces and IPC spaces on a virtual
// SMP machine, faulting, communicating, shooting down TLBs, and shutting
// down — with the reference accounting checked end to end.
#include <gtest/gtest.h>

#include <atomic>

#include "ipc/stubs.h"
#include "kern/pset.h"
#include "kern/task.h"
#include "sched/kthread.h"
#include "tests/test_util.h"
#include "vm/shootdown.h"
#include "vm/vm_pageable.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

TEST(Integration, TaskWithAddressSpaceAndIpc) {
  const std::uint64_t live_before = kobject::live_objects();
  {
    object_zone<vm_page> pages("int-pages", 32);
    auto tk = make_object<task>("app");
    auto map = make_object<vm_map>("app-map");
    tk->set_vm_map(ref_ptr<kobject>::clone_from(map.get()));

    // Map and touch memory.
    auto data = make_object<memory_object>(pages, 0us, "app-data");
    std::uint64_t base = 0;
    ASSERT_EQ(map->enter(data, 0, 4 * vm_page_size, &base), KERN_SUCCESS);
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(vm_fault(*map, base + static_cast<std::uint64_t>(i) * vm_page_size, nullptr),
                KERN_SUCCESS);
    }
    EXPECT_EQ(data->resident_count(), 4u);

    // Expose a counter service through the task's IPC space and drive it.
    auto ctr = make_object<counter_object>();
    auto service = make_object<port>("svc");
    service->set_translation(ctr);
    port_name_t name = tk->space().insert(service);
    message reply;
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(msg_rpc(tk->space(), name, message(OP_COUNTER_ADD, {1}), reply,
                        standard_router()),
                KERN_SUCCESS);
    }
    EXPECT_EQ(reply.data[0], 100u);

    // Tear down: shutdown the service, terminate memory, drop the task.
    EXPECT_EQ(shutdown_protocol(*service, std::move(ctr)), KERN_SUCCESS);
    EXPECT_EQ(map->remove(base, 4 * vm_page_size), KERN_SUCCESS);
    EXPECT_EQ(data->terminate(), KERN_SUCCESS);
    EXPECT_EQ(pages.raw().in_use(), 0u);
  }
  EXPECT_EQ(kobject::live_objects(), live_before) << "kernel objects leaked";
}

TEST(Integration, FaultsRpcAndShootdownsConcurrently) {
  const std::uint64_t live_before = kobject::live_objects();
  {
    machine::instance().configure(3);
    tlb_set tlbs(3);
    pmap_system pmaps;
    shootdown_engine engine(pmaps, tlbs);
    engine.attach(SPLHIGH);

    object_zone<vm_page> pages("int2-pages", 64);
    auto map = make_object<vm_map>();
    auto obj = make_object<memory_object>(pages, 50us);
    std::uint64_t base = 0;
    ASSERT_EQ(map->enter(obj, 0, 16 * vm_page_size, &base), KERN_SUCCESS);
    // Wire faults into the pmap through the integration hook.
    pmap phys("int2-pmap");
    map->on_mapping_installed = [&](std::uint64_t va, std::uint64_t pa) {
      pmaps.pmap_enter(phys, va, pa);
    };

    auto ctr = make_object<counter_object>();
    auto service = make_object<port>("svc");
    service->set_translation(ctr);
    ipc_space space;
    port_name_t name = space.insert(service);

    std::atomic<bool> stop{false};
    std::atomic<int> rpc_ok{0};
    std::atomic<int> faults_ok{0};

    auto faulter = kthread::spawn("faulter", [&] {
      cpu_binding bind(1);
      int i = 0;
      while (!stop.load()) {
        machine::interrupt_point();
        if (vm_fault(*map, base + static_cast<std::uint64_t>(i % 16) * vm_page_size, nullptr) ==
            KERN_SUCCESS) {
          faults_ok.fetch_add(1);
        }
        ++i;
      }
    });
    auto rpcer = kthread::spawn("rpcer", [&] {
      cpu_binding bind(2);
      message reply;
      while (!stop.load()) {
        machine::interrupt_point();
        if (msg_rpc(space, name, message(OP_COUNTER_ADD, {1}), reply, standard_router()) ==
            KERN_SUCCESS) {
          rpc_ok.fetch_add(1);
        }
        std::this_thread::yield();
      }
    });

    {
      cpu_binding bind(0);
      for (int r = 0; r < 20; ++r) {
        auto st = engine.update_mapping(phys, base, 0x1000u * static_cast<std::uint64_t>(r + 1),
                                        5s);
        EXPECT_EQ(st, interrupt_barrier::status::ok) << "round " << r;
      }
    }
    std::this_thread::sleep_for(50ms);
    stop.store(true);
    faulter->join();
    rpcer->join();

    EXPECT_GT(faults_ok.load(), 0);
    EXPECT_GT(rpc_ok.load(), 0);

    map->on_mapping_installed = nullptr;
    map->remove(base, 16 * vm_page_size);
    obj->terminate();
    machine::instance().configure(0);
  }
  EXPECT_EQ(kobject::live_objects(), live_before);
}

TEST(Integration, PsetsTasksAndShutdownLeaveNoResidue) {
  const std::uint64_t live_before = kobject::live_objects();
  {
    auto ps = make_object<processor_set>("default-pset");
    std::vector<ref_ptr<task>> tasks;
    std::vector<ref_ptr<port>> ports;
    for (int i = 0; i < 4; ++i) {
      auto t = make_object<task>();
      auto th = t->create_thread();
      auto p = make_object<port>("task-port");
      p->set_translation(t);
      ASSERT_EQ(ps->assign_task(t), KERN_SUCCESS);
      tasks.push_back(std::move(t));
      ports.push_back(std::move(p));
      th.reset();
    }
    // Shut every task down via the section 10 protocol (creation refs
    // passed in), then the pset itself.
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(shutdown_protocol(*ports[static_cast<std::size_t>(i)],
                                  std::move(tasks[static_cast<std::size_t>(i)])),
                KERN_SUCCESS);
    }
    ps->deactivate();
    ps->shutdown_body();
    EXPECT_EQ(ps->task_count(), 0u);
  }
  EXPECT_EQ(kobject::live_objects(), live_before);
}

// The layered-locking story end to end: a blocking page-in under the map's
// sleep lock while another thread mutates an unrelated map region.
TEST(Integration, SleepLockAllowsConcurrentMapMutation) {
  object_zone<vm_page> pages("int3-pages", 32);
  auto map = make_object<vm_map>();
  auto slow = make_object<memory_object>(pages, 30ms, "slow");
  auto other = make_object<memory_object>(pages, 0us, "other");
  std::uint64_t slow_base = 0, other_base = 0;
  ASSERT_EQ(map->enter(slow, 0, vm_page_size, &slow_base), KERN_SUCCESS);
  ASSERT_EQ(map->enter(other, 0, vm_page_size, &other_base), KERN_SUCCESS);

  std::atomic<bool> fault_done{false};
  auto faulter = kthread::spawn("slow-faulter", [&] {
    EXPECT_EQ(vm_fault(*map, slow_base, nullptr), KERN_SUCCESS);  // 30ms page-in
    fault_done.store(true);
  });
  // While the fault holds the map READ lock through its 30ms page-in,
  // read-side operations proceed...
  std::this_thread::sleep_for(5ms);
  EXPECT_EQ(vm_fault(*map, other_base, nullptr), KERN_SUCCESS);
  EXPECT_FALSE(fault_done.load()) << "slow fault finished too early to prove overlap";
  faulter->join();
  // ...and write-side mutations waited politely (sleeping, not spinning).
  EXPECT_EQ(map->remove(other_base, vm_page_size), KERN_SUCCESS);
  auto st = lock_stats(&map->map_lock());
  EXPECT_EQ(st.spins, 0u);
}

}  // namespace
}  // namespace mach
