// Tests for the kernel RPC sequence, the standard stubs, the asynchronous
// server, and the section 10 shutdown protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "ipc/rpc.h"
#include "ipc/stubs.h"
#include "kern/task.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

struct rpc_fixture : ::testing::Test {
  void SetUp() override {
    reset_rpc_stats();
    obj = make_object<counter_object>();
    p = make_object<port>();
    p->set_translation(obj);
    name = space.insert(p);
  }
  ipc_space space;
  ref_ptr<counter_object> obj;
  ref_ptr<port> p;
  port_name_t name = 0;
};

TEST_F(rpc_fixture, CounterAddRoundTrip) {
  message reply;
  EXPECT_EQ(msg_rpc(space, name, message(OP_COUNTER_ADD, {5}), reply, standard_router()),
            KERN_SUCCESS);
  EXPECT_EQ(reply.data, (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(msg_rpc(space, name, message(OP_COUNTER_ADD, {3}), reply, standard_router()),
            KERN_SUCCESS);
  EXPECT_EQ(reply.data, (std::vector<std::uint64_t>{8}));
  EXPECT_EQ(msg_rpc(space, name, message(OP_COUNTER_READ), reply, standard_router()),
            KERN_SUCCESS);
  EXPECT_EQ(reply.data, (std::vector<std::uint64_t>{8}));
}

TEST_F(rpc_fixture, EchoReturnsData) {
  message reply;
  EXPECT_EQ(msg_rpc(space, name, message(OP_ECHO, {42, 43}), reply, standard_router()),
            KERN_SUCCESS);
  EXPECT_EQ(reply.data, (std::vector<std::uint64_t>{42, 43}));
}

TEST_F(rpc_fixture, UnknownNameFailsStep1) {
  message reply;
  EXPECT_EQ(msg_rpc(space, 9999, message(OP_ECHO), reply, standard_router()),
            KERN_INVALID_NAME);
  EXPECT_EQ(rpc_stats().invalid_name, 1u);
}

TEST_F(rpc_fixture, UnknownOpFails) {
  message reply;
  EXPECT_EQ(msg_rpc(space, name, message(999), reply, standard_router()), KERN_INVALID_OP);
}

TEST_F(rpc_fixture, ReferencesAreBalancedAcrossCalls) {
  int before = obj->ref_count();
  message reply;
  for (int i = 0; i < 100; ++i) {
    msg_rpc(space, name, message(OP_COUNTER_ADD, {1}), reply, standard_router());
  }
  EXPECT_EQ(obj->ref_count(), before);
}

TEST_F(rpc_fixture, Mach30DisciplineCountsConsumedRefs) {
  message reply;
  msg_rpc(space, name, message(OP_ECHO), reply, standard_router(),
          ref_discipline::mach30_operation_consumes);
  EXPECT_EQ(rpc_stats().refs_consumed_by_operation, 1u);
  // Failure path: interface releases even in 3.0 mode.
  msg_rpc(space, name, message(999), reply, standard_router(),
          ref_discipline::mach30_operation_consumes);
  EXPECT_EQ(rpc_stats().refs_released_by_interface, 1u);
  EXPECT_EQ(obj->ref_count(), 2);  // ours + the port translation's — unchanged
}

TEST_F(rpc_fixture, DeactivatedObjectFailsOperations) {
  obj->deactivate();
  message reply;
  EXPECT_EQ(msg_rpc(space, name, message(OP_COUNTER_ADD, {1}), reply, standard_router()),
            KERN_TERMINATED);
  // object_info still works (it reports on the data structure).
  EXPECT_EQ(msg_rpc(space, name, message(OP_OBJECT_INFO), reply, standard_router()),
            KERN_SUCCESS);
  ASSERT_EQ(reply.data.size(), 2u);
  EXPECT_EQ(reply.data[1], 0u);  // active = false
}

TEST_F(rpc_fixture, TaskOpsViaRpc) {
  auto t = make_object<task>();
  auto tp = make_object<port>("task-port");
  tp->set_translation(t);
  port_name_t tname = space.insert(tp);
  message reply;
  EXPECT_EQ(msg_rpc(space, tname, message(OP_TASK_SUSPEND), reply, standard_router()),
            KERN_SUCCESS);
  EXPECT_EQ(msg_rpc(space, tname, message(OP_TASK_INFO), reply, standard_router()),
            KERN_SUCCESS);
  EXPECT_EQ(reply.data[0], 1u);  // suspend_count
  EXPECT_EQ(msg_rpc(space, tname, message(OP_TASK_RESUME), reply, standard_router()),
            KERN_SUCCESS);
  EXPECT_EQ(t->suspend_count(), 0);
  // resume below zero fails
  EXPECT_EQ(msg_rpc(space, tname, message(OP_TASK_RESUME), reply, standard_router()),
            KERN_FAILURE);
}

// --- shutdown protocol (section 10) ---

TEST_F(rpc_fixture, ShutdownDisablesTranslationButKeepsStructure) {
  counter_object* raw = obj.get();
  EXPECT_EQ(shutdown_protocol(*p, std::move(obj)), KERN_SUCCESS);
  // Step 2 effect: translation disabled → RPC fails at step 2.
  message reply;
  EXPECT_EQ(msg_rpc(space, name, message(OP_COUNTER_READ), reply, standard_router()),
            KERN_TERMINATED);
  EXPECT_EQ(rpc_stats().terminated, 1u);
  // The port data structure itself is alive and sendable-to (it was not
  // destroyed, only the represented object was shut down).
  EXPECT_EQ(p->send(message(1)), KERN_SUCCESS);
  (void)raw;  // object memory already freed (all refs released) — do not touch
}

TEST_F(rpc_fixture, ShutdownIsIdempotent) {
  auto extra = ref_ptr<kobject>::clone_from(obj.get());
  EXPECT_EQ(shutdown_protocol(*p, std::move(obj)), KERN_SUCCESS);
  EXPECT_EQ(shutdown_protocol(*p, {}), KERN_TERMINATED);
}

TEST_F(rpc_fixture, ShutdownWithOutstandingRefsDefersDeletion) {
  std::uint64_t live_before = kobject::live_objects();
  auto held = ref_ptr<kobject>::clone_from(obj.get());  // outside reference
  EXPECT_EQ(shutdown_protocol(*p, std::move(obj)), KERN_SUCCESS);
  // Object still alive (we hold a ref) though deactivated.
  EXPECT_EQ(kobject::live_objects(), live_before);
  held->lock();
  EXPECT_FALSE(held->active());
  held->unlock();
  held.reset();  // last reference → deletion
  EXPECT_EQ(kobject::live_objects(), live_before - 1);
}

TEST_F(rpc_fixture, ConcurrentShutdownExactlyOneWins) {
  for (int round = 0; round < 50; ++round) {
    auto o = make_object<counter_object>();
    auto pp = make_object<port>();
    pp->set_translation(o);
    std::atomic<int> winners{0};
    std::atomic<bool> go{false};
    auto contender = [&](ref_ptr<kobject> cref) {
      return [&, cref = std::move(cref)]() mutable {
        while (!go.load()) std::this_thread::yield();
        if (shutdown_protocol(*pp, std::move(cref)) == KERN_SUCCESS) winners.fetch_add(1);
      };
    };
    // Both contenders carry a real reference; only one may run step 4 on
    // the creation ref, so give one the creation ref and one a clone.
    auto clone = ref_ptr<kobject>::clone_from(o.get());
    auto t1 = kthread::spawn("s1", contender(std::move(o)));
    auto t2 = kthread::spawn("s2", contender(std::move(clone)));
    go.store(true);
    t1->join();
    t2->join();
    EXPECT_EQ(winners.load(), 1);
  }
}

// --- asynchronous kernel server ---

TEST(KernelServer, ServesRequestsAndReplies) {
  auto obj = make_object<counter_object>();
  auto service = make_object<port>("service");
  service->set_translation(obj);
  auto reply_port = make_object<port>("reply");
  kernel_server server(service, standard_router(), "test-server");

  for (int i = 1; i <= 10; ++i) {
    message req(OP_COUNTER_ADD, {1});
    req.reply_to = reply_port;
    EXPECT_EQ(service->send(std::move(req)), KERN_SUCCESS);
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 10; ++i) {
    auto r = reply_port->receive(5s);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->ret, KERN_SUCCESS);
    ASSERT_EQ(r->data.size(), 1u);
    last = r->data[0];
  }
  EXPECT_EQ(last, 10u);
  server.stop();
  EXPECT_EQ(server.served(), 10u);
}

TEST(KernelServer, RepliesTerminatedAfterShutdown) {
  auto obj = make_object<counter_object>();
  auto service = make_object<port>("service");
  service->set_translation(obj);
  auto reply_port = make_object<port>("reply");
  kernel_server server(service, standard_router(), "test-server");

  EXPECT_EQ(shutdown_protocol(*service, std::move(obj)), KERN_SUCCESS);
  message req(OP_COUNTER_READ);
  req.reply_to = reply_port;
  service->send(std::move(req));
  auto r = reply_port->receive(5s);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ret, KERN_TERMINATED);
}

TEST(RpcCall, MessagePairRoundTrip) {
  auto obj = make_object<counter_object>();
  auto service = make_object<port>("svc");
  service->set_translation(obj);
  kernel_server server(service, standard_router(), "rpc-call-server");
  for (int i = 1; i <= 5; ++i) {
    auto reply = rpc_call(*service, message(OP_COUNTER_ADD, {2}), 5s);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->ret, KERN_SUCCESS);
    EXPECT_EQ(reply->data[0], static_cast<std::uint64_t>(2 * i));
  }
  server.stop();
}

TEST(RpcCall, TimesOutWithoutServer) {
  auto service = make_object<port>("unserved");
  auto reply = rpc_call(*service, message(OP_ECHO), 30ms);
  EXPECT_FALSE(reply.has_value());
  // The request is still queued (nobody served it); drain for cleanliness.
  EXPECT_TRUE(service->try_receive().has_value());
}

TEST(RpcCall, FailsCleanlyOnDeadPort) {
  auto service = make_object<port>("dead");
  service->destroy_port();
  EXPECT_FALSE(rpc_call(*service, message(OP_ECHO), 30ms).has_value());
}

TEST(RpcCall, ConcurrentClientsGetTheirOwnReplies) {
  auto obj = make_object<counter_object>();
  auto service = make_object<port>("svc");
  service->set_translation(obj);
  kernel_server server(service, standard_router(), "rpc-mt-server");
  std::atomic<int> mismatches{0};
  std::vector<std::unique_ptr<kthread>> clients;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(kthread::spawn("client" + std::to_string(c), [&, c] {
      for (int i = 0; i < 200; ++i) {
        // Echo a client-unique payload: the reply must match it exactly
        // (a cross-delivered reply would carry another client's tag).
        std::uint64_t tag = static_cast<std::uint64_t>(c) * 100000 + static_cast<std::uint64_t>(i);
        auto reply = rpc_call(*service, message(OP_ECHO, {tag}), 5s);
        if (!reply.has_value() || reply->data != std::vector<std::uint64_t>{tag}) {
          mismatches.fetch_add(1);
        }
      }
    }));
  }
  for (auto& c : clients) c->join();
  server.stop();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace mach
