// Second-wave tests: historical-fidelity knobs, cross-layer interactions,
// and detector corner cases.
#include <gtest/gtest.h>

#include <atomic>

#include "ipc/space.h"
#include "kern/zalloc.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "sync/complex_lock.h"
#include "sync/deadlock.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

// Appendix B.3's documented Mach 2.5 bug, reproduced on demand: the
// try-upgrade blocks through the event system even though Sleep is off.
TEST(Mach25Compat, TryUpgradeSleepsDespiteSpinMode) {
  lock_data_t l;
  lock_init(&l, /*can_sleep=*/false, "mach25");
  lock_set_mach25_try_upgrade_bug(&l, true);
  lock_read(&l);
  std::atomic<bool> done{false};
  auto upgrader = kthread::spawn("upgrader", [&] {
    lock_read(&l);
    EXPECT_TRUE(lock_try_read_to_write(&l));  // drains us... by SLEEPING
    done.store(true);
    lock_done(&l);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(done.load());
  // The waiter must be blocked through the event system, not spinning:
  EXPECT_GT(lock_stats(&l).sleeps, 0u) << "2.5 bug compat did not sleep";
  lock_done(&l);
  upgrader->join();
}

TEST(Mach25Compat, CorrectBehaviourSpinsInSpinMode) {
  lock_data_t l;
  lock_init(&l, /*can_sleep=*/false, "correct");
  lock_read(&l);
  std::atomic<bool> done{false};
  auto upgrader = kthread::spawn("upgrader", [&] {
    lock_read(&l);
    EXPECT_TRUE(lock_try_read_to_write(&l));
    done.store(true);
    lock_done(&l);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(done.load());
  EXPECT_EQ(lock_stats(&l).sleeps, 0u);
  EXPECT_GT(lock_stats(&l).spins, 0u);
  lock_done(&l);
  upgrader->join();
}

// clear_wait aimed at a thread sleeping on a complex lock must not corrupt
// the lock: the waiter re-checks its predicate and re-waits.
TEST(CrossLayer, ClearWaitOnComplexLockSleeperIsHarmless) {
  lock_data_t l;
  lock_init(&l, true, "cleared-sleeper");
  lock_write(&l);
  std::atomic<bool> got{false};
  auto waiter = kthread::spawn("waiter", [&] {
    lock_read(&l);
    got.store(true);
    lock_done(&l);
  });
  std::this_thread::sleep_for(10ms);
  clear_wait(*waiter);  // spurious wake: waiter must re-check and re-block
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(got.load()) << "waiter acquired a write-held lock";
  lock_done(&l);
  waiter->join();
  EXPECT_TRUE(got.load());
}

// A recursive write holder may also take recursive READ holds and unwind
// everything in LIFO order.
TEST(CrossLayer, RecursiveMixedHoldsUnwind) {
  lock_data_t l;
  lock_init(&l, true, "rec-mixed");
  lock_write(&l);
  lock_set_recursive(&l);
  lock_write(&l);  // depth 1
  lock_read(&l);   // recursive read (read_count 1)
  lock_read(&l);   // read_count 2
  lock_done(&l);   // read
  lock_done(&l);   // read
  lock_done(&l);   // depth
  lock_clear_recursive(&l);
  lock_done(&l);   // base write
  EXPECT_TRUE(lock_try_write(&l));
  lock_done(&l);
}

// A thread waiting on multiple resources at once (barrier-initiator
// style) participates correctly in cycle detection.
TEST(Detector, MultiWaitThreadCycles) {
  deadlock_tracing_scope tracing;
  wait_graph& g = wait_graph::instance();
  int r1 = 0, r2 = 0, r3 = 0;
  char t1 = 0, t2 = 0, t3 = 0;
  g.resource_held(&r3, &t1, "r3");
  g.thread_waits(&t1, &r1, "r1");  // t1 waits on two resources
  g.thread_waits(&t1, &r2, "r2");
  g.resource_held(&r1, &t2, "r1");  // r1's holder is not in a cycle
  g.resource_held(&r2, &t3, "r2");  // r2's holder waits back on t1
  g.thread_waits(&t3, &r3, "r3");
  auto c = g.find_cycle();
  ASSERT_TRUE(c.has_value());
  // The cycle is t1 → r2 → t3 → r3 → t1 (not through r1/t2).
  EXPECT_EQ(c->threads.size(), 2u);
}

// Zone shrink racing blocked allocators: raising the cap again releases
// exactly the waiters that fit.
TEST(CrossLayer, ZoneShrinkGrowCycleReleasesWaiters) {
  zone z("cycle", 32, 2);
  void* a = z.alloc();
  void* b = z.alloc();
  std::atomic<int> got{0};
  std::vector<std::unique_ptr<kthread>> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.push_back(kthread::spawn(std::string("w") += std::to_string(i), [&] {
      void* p = z.alloc();
      got.fetch_add(1);
      z.free(p);
    }));
  }
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(got.load(), 0);
  z.set_max(8);  // room for everyone
  for (auto& w : waiters) w->join();
  EXPECT_EQ(got.load(), 3);
  z.free(a);
  z.free(b);
  EXPECT_EQ(z.in_use(), 0u);
}

// IPC space under concurrent churn: names stay unique and lookups never
// return a foreign port.
TEST(CrossLayer, IpcSpaceChurn) {
  ipc_space space;
  std::atomic<bool> bad{false};
  std::vector<std::unique_ptr<kthread>> threads;
  for (int t = 0; t < 4; ++t) {
    threads.push_back(kthread::spawn("churn" + std::to_string(t), [&] {
      for (int i = 0; i < 1000; ++i) {
        auto p = make_object<port>();
        port* raw = p.get();
        port_name_t name = space.insert(std::move(p));
        auto found = space.lookup(name);
        if (!found || found.get() != raw) bad.store(true);
        if (!space.remove(name)) bad.store(true);
      }
    }));
  }
  for (auto& t : threads) t->join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(space.size(), 0u);
}

// Writers' priority applies to try-variants too: lock_try_read must be
// refused while a writer drains, even in the no-priority case once the
// lock is empty.
TEST(CrossLayer, TryReadRespectsPriorityConfiguration) {
  for (bool prio : {true, false}) {
    lock_data_t l;
    lock_init(&l, true, "try-prio");
    lock_set_writer_priority(&l, prio);
    lock_read(&l);
    auto writer = kthread::spawn("writer", [&] {
      lock_write(&l);
      lock_done(&l);
    });
    std::this_thread::sleep_for(10ms);  // writer committed, draining
    EXPECT_EQ(lock_try_read(&l), !prio)
        << "priority=" << prio << ": try_read admission mismatch";
    if (!prio) lock_done(&l);
    lock_done(&l);
    writer->join();
  }
}

}  // namespace
}  // namespace mach
