// Tests for the kmon metrics registry (src/metrics): metric types, the
// disabled fast path, the registry snapshot, both exporters (validated by
// in-file mini-parsers), the delta-rate sampler, and the bench_json
// machine-readable table dump.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/bench_json.h"
#include "harness/mini_json.h"
#include "harness/table.h"
#include "metrics/kmetrics.h"
#include "metrics/kmon.h"
#include "sched/event.h"
#include "sched/kthread.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

// Every test restores the global switch to disabled (the process default)
// so tests stay order-independent.
class kmon_scope {
 public:
  explicit kmon_scope(bool on = true) {
    if (on) kmon::enable();
  }
  ~kmon_scope() { kmon::disable(); }
};

// ---------------------------------------------------------------------------
// Metric types.

TEST(KmonCounter, DisabledUpdateIsNoOp) {
  kmon::disable();
  kmon::counter c("machlock_test_disabled_total", "test");
  c.inc();
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);
}

TEST(KmonCounter, AccumulatesWhenEnabled) {
  kmon_scope scope;
  kmon::counter c("machlock_test_counter_total", "test");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(KmonCounter, StripesSumAcrossThreads) {
  kmon_scope scope;
  kmon::counter c("machlock_test_striped_total", "test");
  constexpr int threads = 8;
  constexpr int per_thread = 10000;
  std::vector<std::thread> ts;
  for (int i = 0; i < threads; ++i) {
    ts.emplace_back([&c] {
      for (int n = 0; n < per_thread; ++n) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(threads) * per_thread);
}

TEST(KmonGauge, AddSubSetAndDisabledGate) {
  kmon::disable();
  kmon::gauge g("machlock_test_gauge", "test");
  g.add(5);
  EXPECT_EQ(g.value(), 0);  // disabled: no store
  kmon_scope scope;
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(KmonCallbackGauge, EvaluatesLazilyAtSnapshot) {
  kmon_scope scope;
  std::atomic<int> level{11};
  kmon::callback_gauge g("machlock_test_cbgauge", "test",
                         [&level] { return static_cast<double>(level.load()); }, "inst", "a");
  kmon::metric_sample s;
  g.sample_into(s);
  EXPECT_DOUBLE_EQ(s.value, 11.0);
  level.store(23);
  g.sample_into(s);
  EXPECT_DOUBLE_EQ(s.value, 23.0);
}

TEST(KmonHistogram, RecordsAndMergesStripes) {
  kmon_scope scope;
  kmon::histogram h("machlock_test_hist_nanos", "test");
  // Record from several threads so multiple stripes are touched.
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&h] {
      for (int n = 0; n < 100; ++n) h.record(1000);
    });
  }
  for (auto& t : ts) t.join();
  h.record(1u << 20);  // one large sample drives max
  latency_histogram m = h.merged();
  EXPECT_EQ(m.count(), 401u);
  EXPECT_EQ(m.max_nanos(), 1u << 20);
  h.reset();
  EXPECT_EQ(h.merged().count(), 0u);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(KmonRegistry, SelfRegistrationAndSortedSnapshot) {
  kmon_scope scope;
  const std::size_t before = kmon::registry::instance().live_metrics();
  {
    kmon::counter b("machlock_ztest_b_total", "test");
    kmon::counter a("machlock_ztest_a_total", "test");
    EXPECT_EQ(kmon::registry::instance().live_metrics(), before + 2);
    b.inc(2);
    a.inc(1);
    auto snap = kmon::registry::instance().snapshot();
    // Sorted by name.
    for (std::size_t i = 1; i < snap.size(); ++i) {
      EXPECT_LE(snap[i - 1].name, snap[i].name) << "snapshot not sorted at " << snap[i].name;
    }
    double va = -1, vb = -1;
    for (const auto& s : snap) {
      if (s.name == "machlock_ztest_a_total") va = s.value;
      if (s.name == "machlock_ztest_b_total") vb = s.value;
    }
    EXPECT_DOUBLE_EQ(va, 1.0);
    EXPECT_DOUBLE_EQ(vb, 2.0);
  }
  EXPECT_EQ(kmon::registry::instance().live_metrics(), before);  // unregistered
}

TEST(KmonRegistry, CanonicalMetricsObserveSubsystemActivity) {
  kmon_scope scope;
  const std::uint64_t blocks0 = kmet().sched_blocks.value() + kmet().sched_blocks_short_circuited.value();
  const std::uint64_t wakeups0 = kmet().sched_wakeups.value() + kmet().sched_wakeups_no_waiter.value();
  int ev = 0;
  std::atomic<bool> ready{false};
  auto t = kthread::spawn("kmon-waiter", [&] {
    assert_wait(&ev);
    ready.store(true);
    thread_block();
  });
  while (!ready.load()) std::this_thread::yield();
  std::this_thread::sleep_for(5ms);
  thread_wakeup(&ev);
  t->join();
  EXPECT_GT(kmet().sched_blocks.value() + kmet().sched_blocks_short_circuited.value(), blocks0);
  EXPECT_GT(kmet().sched_wakeups.value() + kmet().sched_wakeups_no_waiter.value(), wakeups0);

  // The canonical set appears in the snapshot even while idle.
  auto snap = kmon::registry::instance().snapshot();
  auto has = [&snap](const char* name) {
    for (const auto& s : snap)
      if (s.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has("machlock_sched_blocks_total"));
  EXPECT_TRUE(has("machlock_sched_wakeups_total"));
  EXPECT_TRUE(has("machlock_sched_block_nanos"));
  EXPECT_TRUE(has("machlock_kern_zalloc_allocs_total"));
  EXPECT_TRUE(has("machlock_vm_shootdown_rounds_total"));
  EXPECT_TRUE(has("machlock_smp_barrier_rounds_total"));
  EXPECT_TRUE(has("machlock_ipc_rpcs_total"));
}

// ---------------------------------------------------------------------------
// Mini Prometheus text-exposition parser (exporter contract check).

struct prom_sample {
  std::string name;    // sample name without the label block
  std::string labels;  // raw text between { and }, empty if none
  double value = 0.0;
};

struct prom_doc {
  std::map<std::string, std::string> types;  // family -> counter|gauge|histogram
  std::vector<prom_sample> samples;
  std::string error;

  bool parse(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      if (line.rfind("# HELP ", 0) == 0) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream ls(line.substr(7));
        std::string fam, ty;
        ls >> fam >> ty;
        if (ty != "counter" && ty != "gauge" && ty != "histogram") {
          error = "line " + std::to_string(lineno) + ": bad TYPE " + ty;
          return false;
        }
        types[fam] = ty;
        continue;
      }
      if (line[0] == '#') {
        error = "line " + std::to_string(lineno) + ": unknown comment";
        return false;
      }
      prom_sample s;
      std::size_t name_end = line.find_first_of("{ ");
      if (name_end == std::string::npos) {
        error = "line " + std::to_string(lineno) + ": no value";
        return false;
      }
      s.name = line.substr(0, name_end);
      std::size_t value_start = name_end;
      if (line[name_end] == '{') {
        std::size_t close = line.find('}', name_end);
        if (close == std::string::npos) {
          error = "line " + std::to_string(lineno) + ": unterminated label block";
          return false;
        }
        s.labels = line.substr(name_end + 1, close - name_end - 1);
        value_start = close + 1;
      }
      const std::string value_text = line.substr(value_start);
      char* end = nullptr;
      s.value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() && value_text.find("+Inf") == std::string::npos) {
        error = "line " + std::to_string(lineno) + ": unparseable value '" + value_text + "'";
        return false;
      }
      samples.push_back(std::move(s));
    }
    return true;
  }
};

// Validate the Prometheus invariants kmon promises: counters end _total,
// histogram buckets are cumulative and close with +Inf == _count.
void check_prom_invariants(const prom_doc& doc) {
  for (const auto& [fam, ty] : doc.types) {
    if (ty == "counter") {
      EXPECT_TRUE(fam.size() > 6 && fam.compare(fam.size() - 6, 6, "_total") == 0)
          << "counter family not suffixed _total: " << fam;
    }
    if (ty != "histogram") continue;
    double prev = -1.0, inf_value = -1.0, count_value = -2.0;
    for (const auto& s : doc.samples) {
      if (s.name == fam + "_bucket") {
        if (s.labels.find("+Inf") != std::string::npos) {
          inf_value = s.value;
        } else {
          EXPECT_GE(s.value, prev) << fam << " buckets not cumulative";
          prev = s.value;
        }
      } else if (s.name == fam + "_count") {
        count_value = s.value;
      }
    }
    EXPECT_GE(inf_value, prev) << fam << " +Inf bucket below last finite bucket";
    EXPECT_DOUBLE_EQ(inf_value, count_value) << fam << " +Inf bucket != _count";
  }
}

TEST(KmonExport, PrometheusTextParsesAndHoldsInvariants) {
  kmon_scope scope;
  kmet().sched_wakeups.inc(3);
  kmet().sched_block_nanos.record(1500);
  kmet().sched_block_nanos.record(3000000);
  auto snap = kmon::registry::instance().snapshot();
  const std::string text = kmon::export_prometheus(snap);
  prom_doc doc;
  ASSERT_TRUE(doc.parse(text)) << doc.error;
  ASSERT_FALSE(doc.samples.empty());
  check_prom_invariants(doc);
  EXPECT_EQ(doc.types.at("machlock_sched_wakeups_total"), "counter");
  EXPECT_EQ(doc.types.at("machlock_sched_wait_queue_depth"), "gauge");
  EXPECT_EQ(doc.types.at("machlock_sched_block_nanos"), "histogram");
}

TEST(KmonExport, PrometheusEscapesHostileLabelValues) {
  // Exposition format: backslash, double-quote, and line feed in a label
  // value must be escaped or the sample line (and every line after it)
  // is corrupt.
  const std::string hostile = "a\\b\"c\nd";
  EXPECT_EQ(kmon::prom_escape_label_value(hostile), "a\\\\b\\\"c\\nd");

  kmon::metric_sample s;
  s.name = "machlock_test_hostile";
  s.help = "test";
  s.kind = kmon::metric_kind::gauge;
  s.label_key = "zone";
  s.label_value = hostile;
  s.value = 1.0;
  const std::string text = kmon::export_prometheus({s});
  EXPECT_NE(text.find("machlock_test_hostile{zone=\"a\\\\b\\\"c\\nd\"} 1"), std::string::npos)
      << text;
  // No line may carry an unescaped quote-breaking payload: every sample
  // line must still have the `name{labels} value` shape with one pair of
  // UNESCAPED quotes around the value (a backslash-escaped \" inside the
  // value does not count).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    int unescaped = 0;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '\\') {
        ++i;  // skip the escaped character, whatever it is
      } else if (line[i] == '"') {
        ++unescaped;
      }
    }
    EXPECT_EQ(unescaped % 2, 0) << "unbalanced quotes: " << line;
  }

  // The registry print_top path uses the same escaping for its key; the
  // rate-key path in the sampler does too (prom_sample_name). A labelled
  // live metric with a hostile value must round-trip the registry
  // snapshot unharmed (escaping happens at render time, not storage).
  kmon::callback_gauge g("machlock_test_hostile_live", "test", [] { return 2.0; }, "zone",
                         hostile);
  bool found = false;
  for (const auto& snap : kmon::registry::instance().snapshot()) {
    if (snap.name == "machlock_test_hostile_live") {
      found = true;
      EXPECT_EQ(snap.label_value, hostile);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// JSON shape checks for export_json and bench_json use the shared
// harness/mini_json parser (objects preserve insertion order, which the
// name-ordering assertions below rely on).

using json_value = mini_json::value;
using json_parser = mini_json::parser;

TEST(KmonExport, JsonParsesAndCarriesRates) {
  kmon_scope scope;
  kmet().ipc_messages.inc(7);
  auto snap = kmon::registry::instance().snapshot();
  std::vector<kmon::rate_sample> rates{{"machlock_ipc_messages_total", 12.5}};
  const std::string text = kmon::export_json(snap, &rates);
  json_parser p(text);
  json_value root;
  ASSERT_TRUE(p.parse(root)) << p.error();
  ASSERT_EQ(root.k, json_value::kind::array);  // one object per metric
  bool saw_ipc = false;
  for (const auto& m : root.arr) {
    const json_value* name = m.find("name");
    ASSERT_NE(name, nullptr);
    if (name->str == "machlock_ipc_messages_total") {
      saw_ipc = true;
      const json_value* rate = m.find("rate_per_sec");
      ASSERT_NE(rate, nullptr) << "counter with a sampler rate must carry rate_per_sec";
      EXPECT_DOUBLE_EQ(rate->num, 12.5);
    }
  }
  EXPECT_TRUE(saw_ipc);
}

TEST(KmonExport, FileWriterPicksFormatFromExtension) {
  kmon_scope scope;
  const std::string dir = ::testing::TempDir();
  const std::string prom_path = dir + "/kmon_test.prom";
  const std::string json_path = dir + "/kmon_test.json";
  ASSERT_TRUE(kmon::export_file(prom_path));
  ASSERT_TRUE(kmon::export_file(json_path));
  std::ifstream pf(prom_path);
  std::string prom((std::istreambuf_iterator<char>(pf)), std::istreambuf_iterator<char>());
  prom_doc doc;
  ASSERT_TRUE(doc.parse(prom)) << doc.error;
  check_prom_invariants(doc);
  std::ifstream jf(json_path);
  std::string json((std::istreambuf_iterator<char>(jf)), std::istreambuf_iterator<char>());
  json_parser p(json);
  json_value root;
  EXPECT_TRUE(p.parse(root)) << p.error();
  std::remove(prom_path.c_str());
  std::remove(json_path.c_str());
}

// ---------------------------------------------------------------------------
// Sampler.

TEST(KmonSampler, ComputesPositiveRateForBusyCounter) {
  kmon_scope scope;
  kmon::sampler& s = kmon::sampler::instance();
  ASSERT_FALSE(s.running());
  s.start(20ms);
  EXPECT_TRUE(s.running());
  const auto deadline = std::chrono::steady_clock::now() + 3s;
  double rate = 0.0;
  while (std::chrono::steady_clock::now() < deadline) {
    kmet().sched_wakeups_no_waiter.inc(100);
    std::this_thread::sleep_for(5ms);
    for (const auto& r : s.rates()) {
      if (r.name == "machlock_sched_wakeups_no_waiter_total" && r.per_second > 0.0)
        rate = r.per_second;
    }
    if (rate > 0.0) break;
  }
  s.stop();
  EXPECT_FALSE(s.running());
  EXPECT_GT(rate, 0.0);
}

// ---------------------------------------------------------------------------
// CI smoke hook: when MACHLOCK_PROM_FILE names a file written by a bench
// run (MACHLOCK_METRICS=<file>.prom), validate it with the same parser.

TEST(PromFileSmoke, ValidatesExportedFile) {
  const char* path = std::getenv("MACHLOCK_PROM_FILE");
  if (path == nullptr || path[0] == '\0') {
    GTEST_SKIP() << "MACHLOCK_PROM_FILE not set";
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "cannot open " << path;
  std::string text((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  ASSERT_FALSE(text.empty());
  prom_doc doc;
  ASSERT_TRUE(doc.parse(text)) << doc.error;
  check_prom_invariants(doc);
  bool saw_machlock = false;
  for (const auto& s : doc.samples) {
    if (s.name.rfind("machlock_", 0) == 0) saw_machlock = true;
  }
  EXPECT_TRUE(saw_machlock) << "no machlock_* metric in " << path;
}

// ---------------------------------------------------------------------------
// bench_json: tables recorded through the harness land in a parseable
// BENCH_<name>.json with best-effort numeric values.

TEST(BenchJson, TableRoundTripsThroughJsonFile) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("MACHLOCK_BENCH_JSON", dir.c_str(), 1), 0);
  ASSERT_TRUE(bench_json::active());
  bench_json::set_bench_name("unittest");
  table t("test caption");
  t.columns({"label", "count", "ratio"});
  t.row({"row-a", "1,234", "3.42x"});
  t.row({"row-b", "85.0%", "not-a-number"});
  t.print();
  const std::string path = bench_json::flush();
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("BENCH_unittest.json"), std::string::npos);
  EXPECT_TRUE(bench_json::flush().empty());  // second flush is a no-op

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string text((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  json_parser p(text);
  json_value root;
  ASSERT_TRUE(p.parse(root)) << p.error();
  const json_value* bench = root.find("bench");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->str, "unittest");
  const json_value* tables = root.find("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_GE(tables->arr.size(), 1u);
  // Find our table (earlier tests in this binary may have recorded others
  // after the env var was set — it was not, but stay defensive).
  const json_value* mine = nullptr;
  for (const auto& tab : tables->arr) {
    const json_value* cap = tab.find("caption");
    if (cap != nullptr && cap->str == "test caption") mine = &tab;
  }
  ASSERT_NE(mine, nullptr);
  const json_value* rows = mine->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->arr.size(), 2u);
  const json_value* values_a = rows->arr[0].find("values");
  ASSERT_NE(values_a, nullptr);
  ASSERT_EQ(values_a->arr.size(), 3u);
  EXPECT_EQ(values_a->arr[0].k, json_value::kind::null);  // "row-a"
  EXPECT_DOUBLE_EQ(values_a->arr[1].num, 1234.0);         // "1,234"
  EXPECT_DOUBLE_EQ(values_a->arr[2].num, 3.42);           // "3.42x"
  const json_value* values_b = rows->arr[1].find("values");
  ASSERT_NE(values_b, nullptr);
  EXPECT_DOUBLE_EQ(values_b->arr[1].num, 85.0);           // "85.0%"
  EXPECT_EQ(values_b->arr[2].k, json_value::kind::null);  // "not-a-number"

  unsetenv("MACHLOCK_BENCH_JSON");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mach
