// Tests for the SMP substrate: spl discipline, polled interrupt delivery,
// and interrupt-level barrier synchronization (paper section 7).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "sched/kthread.h"
#include "smp/barrier.h"
#include "smp/processor.h"
#include "smp/spl.h"
#include "sync/deadlock.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

class SmpTest : public ::testing::Test {
 protected:
  void SetUp() override { machine::instance().configure(4); }
  void TearDown() override { machine::instance().configure(0); }
};

TEST_F(SmpTest, ConfigureCreatesCpus) {
  EXPECT_EQ(machine::instance().ncpus(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(machine::instance().cpu(i).id(), i);
    EXPECT_EQ(machine::instance().cpu(i).level(), SPL0);
  }
}

TEST_F(SmpTest, UnboundThreadHasNoCpuAndSpl0) {
  EXPECT_EQ(machine::current_cpu(), nullptr);
  EXPECT_EQ(spl_level(), SPL0);
  // spl ops are harmless no-ops when unbound.
  spl_t s = splraise(SPLVM);
  splx(s);
}

TEST_F(SmpTest, BindingSetsCurrentCpu) {
  {
    cpu_binding bind(2);
    ASSERT_NE(machine::current_cpu(), nullptr);
    EXPECT_EQ(machine::current_cpu()->id(), 2);
    EXPECT_EQ(machine::instance().cpu(2).bound_token(), current_thread_token());
  }
  EXPECT_EQ(machine::current_cpu(), nullptr);
  EXPECT_EQ(machine::instance().cpu(2).bound_token(), nullptr);
}

TEST_F(SmpTest, DoubleBindIsFatal) {
  testing::panic_hook_scope hook;
  cpu_binding bind(0);
  EXPECT_THROW(machine::instance().bind_current(1), panic_error);
}

TEST_F(SmpTest, SplRaiseAndRestore) {
  cpu_binding bind(0);
  EXPECT_EQ(spl_level(), SPL0);
  spl_t saved = splraise(SPLVM);
  EXPECT_EQ(saved, SPL0);
  EXPECT_EQ(spl_level(), SPLVM);
  spl_t saved2 = splraise(SPLHIGH);
  EXPECT_EQ(saved2, SPLVM);
  splx(saved2);
  EXPECT_EQ(spl_level(), SPLVM);
  splx(saved);
  EXPECT_EQ(spl_level(), SPL0);
}

TEST_F(SmpTest, SplRaiseCannotLower) {
  testing::panic_hook_scope hook;
  cpu_binding bind(0);
  spl_t saved = splraise(SPLHIGH);
  EXPECT_THROW(splraise(SPLVM), panic_error);
  splx(saved);
}

TEST_F(SmpTest, SplGuardRestores) {
  cpu_binding bind(0);
  {
    spl_guard g(SPLCLOCK);
    EXPECT_EQ(spl_level(), SPLCLOCK);
  }
  EXPECT_EQ(spl_level(), SPL0);
}

TEST_F(SmpTest, InterruptDeliveredAtPollingPoint) {
  std::atomic<int> fired{0};
  int v = machine::instance().register_vector("test-ipi", SPLVM,
                                              [&](virtual_cpu&) { fired.fetch_add(1); });
  cpu_binding bind(1);
  machine::instance().post_ipi(1, v);
  EXPECT_EQ(fired.load(), 0);  // posted, not delivered: no poll yet
  machine::interrupt_point();
  EXPECT_EQ(fired.load(), 1);
  machine::interrupt_point();  // no re-delivery
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(SmpTest, MaskedInterruptDeferredUntilSplLowered) {
  std::atomic<int> fired{0};
  int v = machine::instance().register_vector("vm-ipi", SPLVM,
                                              [&](virtual_cpu&) { fired.fetch_add(1); });
  cpu_binding bind(0);
  spl_t saved = splraise(SPLVM);  // masks vectors at level <= SPLVM
  machine::instance().post_ipi(0, v);
  machine::interrupt_point();
  EXPECT_EQ(fired.load(), 0) << "interrupt accepted while masked";
  splx(saved);  // lowering delivers
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(SmpTest, HandlerRunsAtVectorLevel) {
  spl_t observed = SPL0;
  int v = machine::instance().register_vector(
      "lvl-ipi", SPLCLOCK, [&](virtual_cpu&) { observed = spl_level(); });
  cpu_binding bind(0);
  machine::instance().post_ipi(0, v);
  machine::interrupt_point();
  EXPECT_EQ(observed, SPLCLOCK);
  EXPECT_EQ(spl_level(), SPL0);  // restored after the ISR
}

TEST_F(SmpTest, HigherPriorityVectorDeliveredFirst) {
  std::vector<int> order;
  int lo = machine::instance().register_vector("lo", SPLNET,
                                               [&](virtual_cpu&) { order.push_back(0); });
  int hi = machine::instance().register_vector("hi", SPLHIGH,
                                               [&](virtual_cpu&) { order.push_back(1); });
  cpu_binding bind(0);
  machine::instance().post_ipi(0, lo);
  machine::instance().post_ipi(0, hi);
  machine::interrupt_point();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // high first
  EXPECT_EQ(order[1], 0);
}

TEST_F(SmpTest, SpinningOnSimpleLockAcceptsInterrupts) {
  // The section 7 premise: a CPU spinning on a simple lock with interrupts
  // enabled takes interrupts; one with spl raised does not.
  std::atomic<int> fired{0};
  int v = machine::instance().register_vector("spin-ipi", SPLHIGH,
                                              [&](virtual_cpu&) { fired.fetch_add(1); });
  simple_lock_data_t l;
  simple_lock_init(&l, "spun");
  std::atomic<bool> holder_has_it{false}, release{false};
  auto holder = kthread::spawn("holder", [&] {
    simple_lock(&l);
    holder_has_it.store(true);
    while (!release.load()) std::this_thread::yield();
    simple_unlock(&l);
  });
  while (!holder_has_it.load()) std::this_thread::yield();

  cpu_binding bind(3);
  machine::instance().post_ipi(3, v);
  std::atomic<bool>* rel = &release;
  std::thread releaser([rel] {
    std::this_thread::sleep_for(20ms);
    rel->store(true);
  });
  simple_lock(&l);  // spins; the spin hook polls and delivers the IPI
  simple_unlock(&l);
  releaser.join();
  holder->join();
  EXPECT_EQ(fired.load(), 1);
}

TEST_F(SmpTest, BroadcastReachesAllButExcluded) {
  std::atomic<std::uint32_t> mask{0};
  int v = machine::instance().register_vector(
      "bcast", SPLHIGH, [&](virtual_cpu& c) { mask.fetch_or(1u << c.id()); });
  machine::instance().broadcast_ipi(v, /*except_cpu=*/1);
  // Each CPU needs a bound thread polling to accept.
  std::vector<std::unique_ptr<kthread>> threads;
  for (int i = 0; i < 4; ++i) {
    threads.push_back(kthread::spawn("cpu" + std::to_string(i), [i] {
      cpu_binding bind(i);
      machine::interrupt_point();
    }));
  }
  for (auto& t : threads) t->join();
  EXPECT_EQ(mask.load(), 0b1101u);
}

// --- interrupt barrier ---

class BarrierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine::instance().configure(4);
    barrier_ = std::make_unique<interrupt_barrier>("test-barrier");
  }
  void TearDown() override { machine::instance().configure(0); }
  std::unique_ptr<interrupt_barrier> barrier_;
};

TEST_F(BarrierTest, RoundCompletesWhenAllParticipantsPoll) {
  barrier_->attach(SPLHIGH);
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<kthread>> pollers;
  for (int i = 1; i < 4; ++i) {
    pollers.push_back(kthread::spawn("poll" + std::to_string(i), [i, &stop] {
      cpu_binding bind(i);
      while (!stop.load()) {
        machine::interrupt_point();
        std::this_thread::yield();
      }
    }));
  }
  cpu_binding bind(0);
  std::atomic<int> updates{0};
  auto st = barrier_->run(0b1110, [&] { updates.fetch_add(1); }, 5s);
  stop.store(true);
  for (auto& p : pollers) p->join();
  EXPECT_EQ(st, interrupt_barrier::status::ok);
  EXPECT_EQ(updates.load(), 1);
  EXPECT_EQ(barrier_->rounds_ok(), 1u);
}

TEST_F(BarrierTest, UpdateRunsOnlyAfterAllEntered) {
  barrier_->attach(SPLHIGH);
  std::atomic<int> in_isr{0};
  std::atomic<int> seen_at_update{-1};
  std::atomic<bool> stop{false};
  // on_interrupt runs after release; entry counting happens in the barrier
  // itself, so instrument via a second vector? Simpler: participants poll
  // and we verify via needed/entered semantics — the update callback
  // observes that the barrier reports both CPUs in.
  std::vector<std::unique_ptr<kthread>> pollers;
  for (int i = 1; i <= 2; ++i) {
    pollers.push_back(kthread::spawn("poll" + std::to_string(i), [i, &stop, &in_isr] {
      cpu_binding bind(i);
      while (!stop.load()) {
        machine::interrupt_point();
        std::this_thread::yield();
      }
      (void)in_isr;
    }));
  }
  cpu_binding bind(0);
  auto st = barrier_->run(0b0110, [&] { seen_at_update.store(2); }, 5s);
  stop.store(true);
  for (auto& p : pollers) p->join();
  EXPECT_EQ(st, interrupt_barrier::status::ok);
  EXPECT_EQ(seen_at_update.load(), 2);
}

TEST_F(BarrierTest, TimesOutWhenParticipantNeverPolls) {
  barrier_->attach(SPLHIGH);
  // CPU 2 has a bound thread that never polls (simulating spl-disabled
  // spinning); the round must time out, not hang.
  std::atomic<bool> stop{false};
  auto deaf = kthread::spawn("deaf", [&] {
    cpu_binding bind(2);
    while (!stop.load()) std::this_thread::yield();
  });
  cpu_binding bind(0);
  auto st = barrier_->run(0b0100, [] {}, 100ms);
  stop.store(true);
  deaf->join();
  EXPECT_EQ(st, interrupt_barrier::status::timed_out);
  EXPECT_EQ(barrier_->rounds_failed(), 1u);
}

TEST_F(BarrierTest, InitiatorOwnCpuParticipatesImplicitly) {
  std::atomic<int> flushes{0};
  barrier_->attach(SPLHIGH, [&](virtual_cpu&) { flushes.fetch_add(1); });
  cpu_binding bind(0);
  // Mask includes our own CPU: must not deadlock waiting for ourselves.
  auto st = barrier_->run(0b0001, [] {}, 1s);
  EXPECT_EQ(st, interrupt_barrier::status::ok);
  EXPECT_EQ(flushes.load(), 1);  // our own posted work processed inline
}

TEST_F(BarrierTest, DeafParticipantProcessesPostedWorkLate) {
  // The pmap special-logic behaviour: the excluded/deaf CPU still gets the
  // IPI posted and processes the work when it finally accepts.
  std::atomic<int> flushes{0};
  barrier_->attach(SPLHIGH, [&](virtual_cpu&) { flushes.fetch_add(1); });
  std::atomic<bool> stop{false};
  std::atomic<bool> start_polling{false};
  auto late = kthread::spawn("late", [&] {
    cpu_binding bind(1);
    while (!stop.load()) {
      if (start_polling.load()) machine::interrupt_point();
      std::this_thread::yield();
    }
  });
  cpu_binding bind(0);
  auto st = barrier_->run(0b0010, [] {}, 50ms);
  EXPECT_EQ(st, interrupt_barrier::status::timed_out);
  start_polling.store(true);  // the CPU "re-enables interrupts"
  while (flushes.load() == 0) std::this_thread::yield();
  stop.store(true);
  late->join();
  EXPECT_EQ(flushes.load(), 1);  // posted update processed after the fact
}

}  // namespace
}  // namespace mach
