// Tests for the ticket lock: mutual exclusion and its defining property,
// FIFO (arrival-order) service.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "sync/ticket_lock.h"

namespace mach {
namespace {

TEST(TicketLock, LockUnlockRoundTrip) {
  ticket_lock l;
  EXPECT_FALSE(l.locked());
  EXPECT_EQ(l.lock(), 0u);
  EXPECT_TRUE(l.locked());
  l.unlock();
  EXPECT_FALSE(l.locked());
  EXPECT_EQ(l.lock(), 1u);  // tickets are sequential
  l.unlock();
}

TEST(TicketLock, TryLockFailsWhenHeld) {
  ticket_lock l;
  ASSERT_TRUE(l.try_lock());
  EXPECT_FALSE(l.try_lock());
  l.unlock();
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

TEST(TicketLock, MutualExclusionUnderContention) {
  ticket_lock l;
  long counter = 0;
  constexpr int threads = 4;
  constexpr int iters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        l.lock();
        ++counter;
        l.unlock();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<long>(threads) * iters);
}

TEST(TicketLock, ServiceIsFifo) {
  // Grant order must equal ticket (arrival) order: record the sequence of
  // tickets as each holder enters its critical section.
  ticket_lock l;
  std::vector<std::uint32_t> grant_order;
  constexpr int threads = 4;
  constexpr int iters = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        std::uint32_t ticket = l.lock();
        grant_order.push_back(ticket);  // safe: we hold the lock
        l.unlock();
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_EQ(grant_order.size(), static_cast<std::size_t>(threads) * iters);
  for (std::size_t i = 0; i < grant_order.size(); ++i) {
    ASSERT_EQ(grant_order[i], static_cast<std::uint32_t>(i)) << "out-of-order grant at " << i;
  }
}

TEST(TicketLock, TryLockNeverJumpsTheQueue) {
  ticket_lock l;
  std::uint32_t t0 = l.lock();
  EXPECT_EQ(t0, 0u);
  std::atomic<bool> queued{false}, go{false};
  std::thread waiter([&] {
    queued.store(true);
    std::uint32_t t1 = l.lock();  // ticket 1, waits
    EXPECT_EQ(t1, 1u);
    while (!go.load()) std::this_thread::yield();
    l.unlock();
  });
  while (!queued.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // With a waiter queued, try_lock must fail even after we release: the
  // queue position belongs to the waiter.
  l.unlock();
  EXPECT_FALSE(l.try_lock());
  go.store(true);
  waiter.join();
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

}  // namespace
}  // namespace mach
