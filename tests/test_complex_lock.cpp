// Tests for complex locks (Appendix B): Multiple protocol with writers'
// priority, Sleep and Recursive options, upgrades/downgrades, try-variants.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "sched/kthread.h"
#include "sync/complex_lock.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

// Most tests run each lock in both Sleep and spin modes.
class ComplexLockModeTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { lock_init(&l_, /*can_sleep=*/GetParam(), "test-lock"); }
  lock_data_t l_;
};

TEST_P(ComplexLockModeTest, WriteExcludesWriters) {
  constexpr int threads = 4;
  constexpr int iters = 5000;
  long counter = 0;
  std::vector<std::unique_ptr<kthread>> workers;
  for (int t = 0; t < threads; ++t) {
    workers.push_back(kthread::spawn("w" + std::to_string(t), [&] {
      for (int i = 0; i < iters; ++i) {
        lock_write(&l_);
        ++counter;
        lock_done(&l_);
      }
    }));
  }
  for (auto& w : workers) w->join();
  EXPECT_EQ(counter, static_cast<long>(threads) * iters);
  EXPECT_EQ(lock_stats(&l_).write_acquisitions, static_cast<std::uint64_t>(threads) * iters);
}

TEST_P(ComplexLockModeTest, ReadersRunConcurrently) {
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<bool> go{false};
  constexpr int readers = 4;
  std::vector<std::unique_ptr<kthread>> workers;
  for (int t = 0; t < readers; ++t) {
    workers.push_back(kthread::spawn("r" + std::to_string(t), [&] {
      while (!go.load()) std::this_thread::yield();
      lock_read(&l_);
      int now = inside.fetch_add(1) + 1;
      int prev = max_inside.load();
      while (prev < now && !max_inside.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(20ms);
      inside.fetch_sub(1);
      lock_done(&l_);
    }));
  }
  go.store(true);
  for (auto& w : workers) w->join();
  // All readers overlap inside their 20ms windows.
  EXPECT_GE(max_inside.load(), 2);
}

TEST_P(ComplexLockModeTest, WriterExcludesReaders) {
  std::atomic<bool> writer_in{false};
  std::atomic<bool> violation{false};
  std::atomic<bool> stop{false};
  auto writer = kthread::spawn("writer", [&] {
    for (int i = 0; i < 200; ++i) {
      lock_write(&l_);
      writer_in.store(true);
      for (int s = 0; s < 100; ++s) cpu_relax();
      writer_in.store(false);
      lock_done(&l_);
    }
    stop.store(true);
  });
  auto reader = kthread::spawn("reader", [&] {
    while (!stop.load()) {
      lock_read(&l_);
      if (writer_in.load()) violation.store(true);
      lock_done(&l_);
    }
  });
  writer->join();
  reader->join();
  EXPECT_FALSE(violation.load());
}

TEST_P(ComplexLockModeTest, TryWriteFailsWhenReadHeld) {
  lock_read(&l_);
  std::atomic<bool> got{true};
  auto t = kthread::spawn("tryer", [&] { got.store(lock_try_write(&l_)); });
  t->join();
  EXPECT_FALSE(got.load());
  lock_done(&l_);
}

TEST_P(ComplexLockModeTest, TryReadFailsWhenWriteHeld) {
  lock_write(&l_);
  std::atomic<bool> got{true};
  auto t = kthread::spawn("tryer", [&] { got.store(lock_try_read(&l_)); });
  t->join();
  EXPECT_FALSE(got.load());
  lock_done(&l_);
}

TEST_P(ComplexLockModeTest, TrySucceedsWhenFree) {
  EXPECT_TRUE(lock_try_read(&l_));
  lock_done(&l_);
  EXPECT_TRUE(lock_try_write(&l_));
  lock_done(&l_);
}

TEST_P(ComplexLockModeTest, TryReadSucceedsAlongsideReaders) {
  lock_read(&l_);
  std::atomic<bool> got{false};
  auto t = kthread::spawn("tryer", [&] {
    got.store(lock_try_read(&l_));
    if (got.load()) lock_done(&l_);
  });
  t->join();
  EXPECT_TRUE(got.load());
  lock_done(&l_);
}

TEST_P(ComplexLockModeTest, UpgradeSucceedsWhenSoleReader) {
  lock_read(&l_);
  EXPECT_FALSE(lock_read_to_write(&l_));  // FALSE = success (paper semantics)
  // Now held for write: try-read from elsewhere must fail.
  std::atomic<bool> got{true};
  auto t = kthread::spawn("tryer", [&] { got.store(lock_try_read(&l_)); });
  t->join();
  EXPECT_FALSE(got.load());
  lock_done(&l_);
  EXPECT_EQ(lock_stats(&l_).upgrades_succeeded, 1u);
}

TEST_P(ComplexLockModeTest, SecondUpgradeFailsAndDropsReadLock) {
  // Two readers race to upgrade: the paper requires the second to fail
  // *and lose its read hold* so the first can drain.
  std::atomic<int> failures{0};
  std::atomic<int> successes{0};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::unique_ptr<kthread>> workers;
  for (int t = 0; t < 2; ++t) {
    workers.push_back(kthread::spawn("up" + std::to_string(t), [&] {
      lock_read(&l_);
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      if (lock_read_to_write(&l_)) {
        failures.fetch_add(1);  // read lock already released
      } else {
        successes.fetch_add(1);
        lock_done(&l_);
      }
    }));
  }
  while (ready.load() < 2) std::this_thread::yield();
  go.store(true);
  for (auto& w : workers) w->join();
  EXPECT_EQ(successes.load(), 1);
  EXPECT_EQ(failures.load(), 1);
  // Everything was released: a fresh write acquisition must succeed.
  EXPECT_TRUE(lock_try_write(&l_));
  lock_done(&l_);
}

TEST_P(ComplexLockModeTest, DowngradeCannotFailAndAdmitsReaders) {
  lock_write(&l_);
  lock_write_to_read(&l_);
  std::atomic<bool> got{false};
  auto t = kthread::spawn("reader", [&] {
    got.store(lock_try_read(&l_));
    if (got.load()) lock_done(&l_);
  });
  t->join();
  EXPECT_TRUE(got.load());
  lock_done(&l_);
  EXPECT_EQ(lock_stats(&l_).downgrades, 1u);
}

TEST_P(ComplexLockModeTest, TryUpgradeKeepsReadLockOnFailure) {
  // lock_try_read_to_write does NOT drop the read lock when the upgrade
  // would deadlock (another upgrade pending) — unlike lock_read_to_write.
  lock_read(&l_);
  std::atomic<bool> other_upgraded{false};
  std::atomic<bool> release_reader{false};
  // A second reader upgrades first and holds the drain.
  auto other = kthread::spawn("other", [&] {
    lock_read(&l_);
    other_upgraded.store(true);
    // This blocks until the main thread's read hold is gone...
    bool failed = lock_read_to_write(&l_);
    EXPECT_FALSE(failed);
    lock_done(&l_);
    release_reader.store(true);
  });
  while (!other_upgraded.load()) std::this_thread::yield();
  std::this_thread::sleep_for(5ms);  // let `other` set want_upgrade
  EXPECT_FALSE(lock_try_read_to_write(&l_));
  // Our read hold survives: release it, letting `other` finish.
  lock_done(&l_);
  other->join();
  EXPECT_TRUE(release_reader.load());
}

TEST_P(ComplexLockModeTest, WriterPriorityHoldsOffNewReaders) {
  // Take a read hold, start a writer (which commits want_write while
  // draining), then check that a new reader cannot enter.
  lock_read(&l_);
  std::atomic<bool> writer_done{false};
  auto writer = kthread::spawn("writer", [&] {
    lock_write(&l_);
    writer_done.store(true);
    lock_done(&l_);
  });
  std::this_thread::sleep_for(10ms);  // writer is now draining us
  EXPECT_FALSE(writer_done.load());
  EXPECT_FALSE(lock_try_read(&l_)) << "reader admitted past a pending writer";
  lock_done(&l_);  // release our read hold; writer proceeds
  writer->join();
  EXPECT_TRUE(writer_done.load());
}

TEST_P(ComplexLockModeTest, NoPriorityVariantAdmitsReaders) {
  lock_set_writer_priority(&l_, false);
  lock_read(&l_);
  auto writer = kthread::spawn("writer", [&] {
    lock_write(&l_);
    lock_done(&l_);
  });
  std::this_thread::sleep_for(10ms);
  // Without writers' priority, a new reader IS admitted while we still
  // hold the lock for reading — the starvation E3 measures.
  EXPECT_TRUE(lock_try_read(&l_));
  lock_done(&l_);
  lock_done(&l_);
  writer->join();
}

TEST_P(ComplexLockModeTest, RecursiveWriteAcquisition) {
  lock_write(&l_);
  lock_set_recursive(&l_);
  lock_write(&l_);  // nested: would deadlock without the Recursive option
  lock_write(&l_);
  lock_done(&l_);
  lock_done(&l_);
  lock_clear_recursive(&l_);
  lock_done(&l_);
  EXPECT_TRUE(lock_try_write(&l_));  // fully released
  lock_done(&l_);
}

TEST_P(ComplexLockModeTest, RecursiveReadBypassesPendingWriter) {
  // Paper sec. 4: the recursion holder's requests are not blocked by a
  // pending write request, so it can finish and drop the lock.
  lock_write(&l_);
  lock_set_recursive(&l_);
  lock_write_to_read(&l_);  // downgrade; recursion stays set
  std::atomic<bool> writer_got_it{false};
  auto writer = kthread::spawn("writer", [&] {
    lock_write(&l_);
    writer_got_it.store(true);
    lock_done(&l_);
  });
  std::this_thread::sleep_for(10ms);  // writer commits, drains us
  // An ordinary reader is refused...
  // ...but the recursive holder may still acquire for read:
  lock_read(&l_);
  lock_done(&l_);
  EXPECT_FALSE(writer_got_it.load());
  lock_clear_recursive(&l_);
  lock_done(&l_);  // final release; writer proceeds
  writer->join();
}

TEST_P(ComplexLockModeTest, RecursiveWriteAfterDowngradeIsFatal) {
  testing::panic_hook_scope hook;
  lock_write(&l_);
  lock_set_recursive(&l_);
  lock_write_to_read(&l_);
  EXPECT_THROW(lock_write(&l_), panic_error);
  lock_clear_recursive(&l_);
  lock_done(&l_);
}

TEST_P(ComplexLockModeTest, UpgradeOfRecursiveReadIsFatal) {
  testing::panic_hook_scope hook;
  lock_write(&l_);
  lock_set_recursive(&l_);
  lock_write_to_read(&l_);
  EXPECT_THROW((void)lock_read_to_write(&l_), panic_error);
  lock_clear_recursive(&l_);
  lock_done(&l_);
}

TEST_P(ComplexLockModeTest, SetRecursiveWithoutWriteHoldIsFatal) {
  testing::panic_hook_scope hook;
  lock_read(&l_);
  EXPECT_THROW(lock_set_recursive(&l_), panic_error);
  lock_done(&l_);
}

TEST_P(ComplexLockModeTest, MixedReadWriteStress) {
  constexpr int threads = 4;
  constexpr int iters = 3000;
  long shared = 0;
  std::atomic<long> read_sum{0};
  std::vector<std::unique_ptr<kthread>> workers;
  for (int t = 0; t < threads; ++t) {
    workers.push_back(kthread::spawn("m" + std::to_string(t), [&, t] {
      for (int i = 0; i < iters; ++i) {
        if ((i + t) % 4 == 0) {
          lock_write(&l_);
          ++shared;
          lock_done(&l_);
        } else {
          lock_read(&l_);
          read_sum.fetch_add(shared >= 0 ? 1 : 0);
          lock_done(&l_);
        }
      }
    }));
  }
  for (auto& w : workers) w->join();
  long expected_writes = 0;
  for (int t = 0; t < threads; ++t)
    for (int i = 0; i < iters; ++i)
      if ((i + t) % 4 == 0) ++expected_writes;
  EXPECT_EQ(shared, expected_writes);
}

INSTANTIATE_TEST_SUITE_P(SleepAndSpin, ComplexLockModeTest, ::testing::Values(true, false),
                         [](const auto& info) { return info.param ? "sleep" : "spin"; });

TEST(ComplexLock, SleepableTogglesDynamically) {
  lock_data_t l;
  lock_init(&l, /*can_sleep=*/false, "toggle");
  lock_sleepable(&l, true);
  // A waiter must now block through the event system (observable via the
  // sleeps counter) rather than spin.
  lock_write(&l);
  auto t = kthread::spawn("blocked", [&] {
    lock_read(&l);
    lock_done(&l);
  });
  std::this_thread::sleep_for(10ms);
  lock_done(&l);
  t->join();
  EXPECT_GT(lock_stats(&l).sleeps, 0u);
  EXPECT_EQ(lock_stats(&l).spins, 0u);
}

TEST(ComplexLock, DoneOfUnheldLockIsFatal) {
  testing::panic_hook_scope hook;
  lock_data_t l;
  lock_init(&l, true, "unheld");
  EXPECT_THROW(lock_done(&l), panic_error);
}

TEST(ComplexLock, DowngradeByNonWriterIsFatal) {
  testing::panic_hook_scope hook;
  lock_data_t l;
  lock_init(&l, true, "nonwriter");
  lock_read(&l);
  EXPECT_THROW(lock_write_to_read(&l), panic_error);
  lock_done(&l);
}

TEST(ComplexLock, StatsTrackEverything) {
  lock_data_t l;
  lock_init(&l, true, "stats");
  lock_read(&l);
  lock_done(&l);
  lock_write(&l);
  lock_write_to_read(&l);
  lock_done(&l);
  lock_read(&l);
  EXPECT_FALSE(lock_read_to_write(&l));
  lock_done(&l);
  auto s = lock_stats(&l);
  EXPECT_EQ(s.read_acquisitions, 2u);
  EXPECT_EQ(s.write_acquisitions, 1u);
  EXPECT_EQ(s.downgrades, 1u);
  EXPECT_EQ(s.upgrades_succeeded, 1u);
  EXPECT_EQ(s.upgrades_failed, 0u);
}

TEST(ComplexLockGuards, ReadAndWriteGuardsRelease) {
  lock_data_t l;
  lock_init(&l, true, "guards");
  {
    read_lock_guard g(l);
  }
  {
    write_lock_guard g(l);
  }
  EXPECT_TRUE(lock_try_write(&l));
  lock_done(&l);
}

TEST(ComplexLockGuards, EarlyUnlock) {
  lock_data_t l;
  lock_init(&l, true, "guards2");
  write_lock_guard g(l);
  g.unlock();
  EXPECT_TRUE(lock_try_write(&l));
  lock_done(&l);
}

}  // namespace
}  // namespace mach
