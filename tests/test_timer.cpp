// Tests for the usage-timer subsystem: the paper's one non-locking
// coordination case (single writer + check-field readers).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "base/rng.h"
#include "sched/timer.h"

namespace mach {
namespace {

TEST(UsageTimer, StartsAtZero) {
  usage_timer t;
  EXPECT_EQ(t.total_us(), 0u);
}

TEST(UsageTimer, AccumulatesTicks) {
  usage_timer t;
  t.tick(100);
  t.tick(250);
  EXPECT_EQ(t.total_us(), 350u);
}

TEST(UsageTimer, RolloverPreservesTotal) {
  usage_timer t;
  // Drive across the low-bits limit in large steps.
  std::uint64_t expected = 0;
  const std::uint64_t step = timer_low_limit / 3 + 12345;
  for (int i = 0; i < 10; ++i) {
    t.tick(step);
    expected += step;
    EXPECT_EQ(t.total_us(), expected) << "after tick " << i;
  }
  EXPECT_GT(expected, timer_low_limit);  // we really did roll over
}

TEST(UsageTimer, HugeSingleTickCarriesMultiple) {
  usage_timer t;
  const std::uint64_t huge = 5 * timer_low_limit + 77;
  t.tick(huge);
  EXPECT_EQ(t.total_us(), huge);
}

TEST(UsageTimer, ConcurrentReadersSeeMonotonicConsistentValues) {
  // The check-protocol property: a reader never observes a torn value —
  // in particular, never a value that goes backwards and never one beyond
  // what the writer has written.
  usage_timer t;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> written{0};
  std::atomic<bool> violation{false};

  std::thread writer([&] {
    std::uint64_t total = 0;
    // Steps sized to cross the rollover boundary constantly.
    const std::uint64_t step = timer_low_limit / 7 + 3;
    while (!stop.load()) {
      total += step;
      written.store(total, std::memory_order_release);  // upper bound first
      t.tick(step);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop.load()) {
        std::uint64_t now = t.total_us();
        if (now < last) violation.store(true);  // went backwards: torn read
        // A consistent read can lag `written` but never exceed it... note
        // written is stored before tick, so now <= written always.
        if (now > written.load(std::memory_order_acquire)) violation.store(true);
        last = now;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_FALSE(violation.load());
  // The protocol should have been exercised (some retries under this much
  // rollover pressure are expected but not guaranteed; just report).
  SUCCEED() << "reader retries: " << t.read_retries();
}

TEST(LockedUsageTimer, SameSemantics) {
  locked_usage_timer t;
  t.tick(100);
  t.tick(timer_low_limit);
  EXPECT_EQ(t.total_us(), 100u + timer_low_limit);
}

// Both implementations agree under a deterministic tick sequence.
TEST(UsageTimer, AgreesWithLockedBaseline) {
  usage_timer a;
  locked_usage_timer b;
  std::uint64_t seed = 42;
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t d = (splitmix64(seed) % 100000) + 1;
    a.tick(d);
    b.tick(d);
  }
  EXPECT_EQ(a.total_us(), b.total_us());
}

}  // namespace
}  // namespace mach
