// Property-based tests: randomized multi-threaded workloads checked
// against shadow models of the invariants the paper's protocols guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>

#include "base/rng.h"
#include "ipc/port.h"
#include "kern/object.h"
#include "kern/refcount.h"
#include "kern/zalloc.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "sync/complex_lock.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

// --- complex lock: the Multiple protocol invariant ---
// At any instant: either at most one writer and no readers are inside, or
// any number of readers and no writer.
struct rw_model {
  std::atomic<int> readers{0};
  std::atomic<int> writers{0};
  std::atomic<bool> violated{false};

  void enter_read() {
    readers.fetch_add(1);
    check();
  }
  void exit_read() { readers.fetch_sub(1); }
  void enter_write() {
    writers.fetch_add(1);
    check();
  }
  void exit_write() { writers.fetch_sub(1); }
  void check() {
    int w = writers.load();
    int r = readers.load();
    if (w > 1 || (w >= 1 && r > 0)) violated.store(true);
  }
};

class ComplexLockPropertyTest : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(ComplexLockPropertyTest, MultipleProtocolInvariantUnderRandomOps) {
  const bool can_sleep = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  lock_data_t lock;
  lock_init(&lock, can_sleep, "property");
  rw_model model;
  constexpr int iters = 4000;

  std::vector<std::unique_ptr<kthread>> workers;
  for (int t = 0; t < threads; ++t) {
    workers.push_back(kthread::spawn("prop" + std::to_string(t), [&, t] {
      xorshift64 rng(static_cast<std::uint64_t>(t) * 31 + 7);
      for (int i = 0; i < iters; ++i) {
        switch (rng.next_below(6)) {
          case 0:  // plain read
          case 1: {
            lock_read(&lock);
            model.enter_read();
            model.exit_read();
            lock_done(&lock);
            break;
          }
          case 2: {  // plain write
            lock_write(&lock);
            model.enter_write();
            model.exit_write();
            lock_done(&lock);
            break;
          }
          case 3: {  // read, attempt upgrade
            lock_read(&lock);
            model.enter_read();
            model.exit_read();
            if (!lock_read_to_write(&lock)) {
              model.enter_write();
              model.exit_write();
              lock_done(&lock);
            }
            // on failure the read hold is already gone
            break;
          }
          case 4: {  // write, downgrade
            lock_write(&lock);
            model.enter_write();
            model.exit_write();
            lock_write_to_read(&lock);
            model.enter_read();
            model.exit_read();
            lock_done(&lock);
            break;
          }
          default: {  // try-variants
            if (lock_try_write(&lock)) {
              model.enter_write();
              model.exit_write();
              lock_done(&lock);
            } else if (lock_try_read(&lock)) {
              model.enter_read();
              model.exit_read();
              lock_done(&lock);
            }
            break;
          }
        }
      }
    }));
  }
  for (auto& w : workers) w->join();
  EXPECT_FALSE(model.violated.load());
  // Quiescent state: a fresh write acquisition succeeds (nothing leaked).
  EXPECT_TRUE(lock_try_write(&lock));
  lock_done(&lock);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ComplexLockPropertyTest,
    ::testing::Combine(::testing::Values(true, false), ::testing::Values(2, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "sleep" : "spin") + "_" +
             std::to_string(std::get<1>(info.param)) + "threads";
    });

// Readers really do overlap while writers exclude them, measured rather
// than assumed: under heavy reading the peak concurrent-reader count must
// exceed 1 (otherwise the lock would be degenerate exclusive).
TEST(ComplexLockProperty, ReadersOverlapWritersDoNot) {
  lock_data_t lock;
  lock_init(&lock, true, "overlap");
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  rw_model model;
  std::vector<std::unique_ptr<kthread>> workers;
  for (int t = 0; t < 4; ++t) {
    workers.push_back(kthread::spawn("ov" + std::to_string(t), [&, t] {
      xorshift64 rng(static_cast<std::uint64_t>(t));
      for (int i = 0; i < 1500; ++i) {
        if (rng.next_below(10) == 0) {
          lock_write(&lock);
          model.enter_write();
          model.exit_write();
          lock_done(&lock);
        } else {
          lock_read(&lock);
          int now = inside.fetch_add(1) + 1;
          int prev = peak.load();
          while (prev < now && !peak.compare_exchange_weak(prev, now)) {
          }
          std::this_thread::yield();  // encourage overlap
          inside.fetch_sub(1);
          lock_done(&lock);
        }
      }
    }));
  }
  for (auto& w : workers) w->join();
  EXPECT_FALSE(model.violated.load());
  EXPECT_GE(peak.load(), 2) << "readers never overlapped";
}

// --- refcount policies: all four implementations agree on observable
// semantics (the equivalence contract of kern/refcount.h) ---

class RefcountPolicyEquivalence : public ::testing::TestWithParam<refcount_policy> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, RefcountPolicyEquivalence,
                         ::testing::ValuesIn(kRefcountPolicies),
                         [](const ::testing::TestParamInfo<refcount_policy>& info) {
                           return refcount_policy_name(info.param);
                         });

// Single-threaded: every policy must track a plain integer oracle exactly,
// step by step, including the release()'s last-ness verdict.
TEST_P(RefcountPolicyEquivalence, SequentialOpsMatchOracle) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    krefcount c(GetParam(), 1);
    int oracle = 1;
    xorshift64 rng(seed * 77);
    for (int i = 0; i < 2000 && oracle > 0; ++i) {
      if (oracle == 1 || rng.chance_per_mille(520)) {
        c.acquire();
        ++oracle;
      } else {
        bool last = c.release();
        --oracle;
        EXPECT_EQ(last, oracle == 0) << "seed " << seed << " step " << i;
      }
      EXPECT_EQ(c.value(), oracle) << "seed " << seed << " step " << i;
    }
    while (oracle > 0) {
      EXPECT_EQ(c.release(), --oracle == 0);
    }
  }
}

// The core destruction-safety property: however the threads interleave,
// release() returns true EXACTLY once — the caller that gets true is the
// unique destroyer. Main pre-acquires every reference so worker threads
// release references they did not acquire (the striped policy's reconcile
// path, and the general cross-thread case).
TEST_P(RefcountPolicyEquivalence, ReleaseReturnsTrueExactlyOnce) {
  constexpr int threads = 4;
  constexpr int per_thread = 500;
  for (int round = 0; round < 10; ++round) {
    krefcount c(GetParam(), 1);
    for (int i = 0; i < threads * per_thread - 1; ++i) c.acquire();
    std::atomic<int> lasts{0};
    std::vector<std::unique_ptr<kthread>> workers;
    for (int t = 0; t < threads; ++t) {
      workers.push_back(kthread::spawn("rel" + std::to_string(t), [&] {
        for (int i = 0; i < per_thread; ++i) {
          if (c.release()) lasts.fetch_add(1);
        }
      }));
    }
    for (auto& w : workers) w->join();
    EXPECT_EQ(lasts.load(), 1) << refcount_policy_name(GetParam()) << " round " << round;
    EXPECT_EQ(c.value(), 0);
  }
}

// Dead is sticky and identically fatal: after the last release, both
// acquire (clone-from-dead) and release (over-release) panic, repeatedly.
TEST_P(RefcountPolicyEquivalence, DeadCountPanicsIdentically) {
  testing::panic_hook_scope hook;
  krefcount c(GetParam(), 2);
  EXPECT_FALSE(c.release());
  EXPECT_TRUE(c.release());
  EXPECT_THROW(c.acquire(), panic_error);
  EXPECT_THROW((void)c.release(), panic_error);
  EXPECT_THROW(c.acquire(), panic_error);  // still dead, still fatal
}

// Randomized interleavings: threads keep a local held-balance (never
// releasing more than they acquired, on top of the creation reference held
// by main), so the final count must be exactly 1 for every policy.
TEST_P(RefcountPolicyEquivalence, RandomizedInterleavingsMatchNetOracle) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    krefcount c(GetParam(), 1);
    std::vector<std::unique_ptr<kthread>> workers;
    for (int t = 0; t < 4; ++t) {
      workers.push_back(kthread::spawn("mix" + std::to_string(t), [&, t, seed] {
        xorshift64 rng(seed * 1009 + static_cast<std::uint64_t>(t));
        int held = 0;
        for (int i = 0; i < 4000; ++i) {
          if (held == 0 || rng.chance_per_mille(550)) {
            c.acquire();
            ++held;
          } else {
            EXPECT_FALSE(c.release());
            --held;
          }
        }
        while (held-- > 0) EXPECT_FALSE(c.release());
      }));
    }
    for (auto& w : workers) w->join();
    EXPECT_EQ(c.value(), 1) << refcount_policy_name(GetParam()) << " seed " << seed;
  }
}

// --- references: random clone/release trees balance exactly ---
TEST(RefcountProperty, RandomCloneReleaseTreesBalance) {
  struct plain : kobject {
    plain() : kobject("prop") {}
  };
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto root = make_object<plain>();
    std::atomic<long> net{0};
    std::vector<std::unique_ptr<kthread>> workers;
    for (int t = 0; t < 4; ++t) {
      workers.push_back(kthread::spawn("rc" + std::to_string(t), [&, t, seed] {
        xorshift64 rng(seed * 100 + static_cast<std::uint64_t>(t));
        std::vector<ref_ptr<plain>> held;
        for (int i = 0; i < 5000; ++i) {
          if (held.empty() || rng.chance_per_mille(550)) {
            held.push_back(root);  // clone
            net.fetch_add(1);
          } else {
            held.pop_back();  // release
            net.fetch_sub(1);
          }
        }
        net.fetch_sub(static_cast<long>(held.size()));  // vector dtor releases
      }));
    }
    for (auto& w : workers) w->join();
    EXPECT_EQ(net.load(), 0);
    EXPECT_EQ(root->ref_count(), 1) << "seed " << seed;
  }
}

// --- ports: every message delivered exactly once ---
TEST(PortProperty, MessageConservation) {
  auto p = make_object<port>();
  p->set_queue_limit(100000);
  constexpr int senders = 3, receivers = 3, per_sender = 2000;
  std::mutex seen_mutex;
  std::set<std::uint64_t> seen;
  std::atomic<int> received{0};
  std::atomic<bool> duplicate{false};

  std::vector<std::unique_ptr<kthread>> threads;
  for (int s = 0; s < senders; ++s) {
    threads.push_back(kthread::spawn("send" + std::to_string(s), [&, s] {
      for (int i = 0; i < per_sender; ++i) {
        message m(1, {static_cast<std::uint64_t>(s) * 1000000 + static_cast<std::uint64_t>(i)});
        ASSERT_EQ(p->send(std::move(m)), KERN_SUCCESS);
      }
    }));
  }
  for (int r = 0; r < receivers; ++r) {
    threads.push_back(kthread::spawn("recv" + std::to_string(r), [&] {
      while (received.load() < senders * per_sender) {
        auto m = p->receive(100ms);
        if (!m.has_value()) continue;
        received.fetch_add(1);
        std::lock_guard<std::mutex> g(seen_mutex);
        if (!seen.insert(m->data[0]).second) duplicate.store(true);
      }
    }));
  }
  for (auto& t : threads) t->join();
  EXPECT_FALSE(duplicate.load());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(senders * per_sender));
  EXPECT_EQ(p->queued(), 0u);
}

// --- zones: randomized alloc/free with mixed wait/nowait ---
TEST(ZoneProperty, RandomAllocFreeNeverExceedsCapacityOrLeaks) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    constexpr std::size_t capacity = 6;
    zone z("prop-zone", 64, capacity);
    std::vector<std::unique_ptr<kthread>> workers;
    std::atomic<bool> over{false};
    for (int t = 0; t < 4; ++t) {
      workers.push_back(kthread::spawn("za" + std::to_string(t), [&, t, seed] {
        xorshift64 rng(seed * 991 + static_cast<std::uint64_t>(t));
        std::vector<void*> mine;
        for (int i = 0; i < 2000; ++i) {
          if (mine.size() < 2 && rng.chance_per_mille(600)) {
            // Mix blocking and non-blocking allocation paths.
            void* p = rng.chance_per_mille(500) ? z.alloc() : z.alloc_nowait();
            if (p != nullptr) mine.push_back(p);
          } else if (!mine.empty()) {
            z.free(mine.back());
            mine.pop_back();
          }
          if (z.in_use() > capacity) over.store(true);
        }
        for (void* p : mine) z.free(p);
      }));
    }
    for (auto& w : workers) w->join();
    EXPECT_FALSE(over.load());
    EXPECT_EQ(z.in_use(), 0u) << "seed " << seed;
  }
}

// --- events: wakeup/clear_wait storms never lose a blocked thread ---
TEST(EventProperty, MixedWakeupAndClearNeverStrandsWaiter) {
  for (int round = 0; round < 30; ++round) {
    std::atomic<bool> entered{false};
    std::atomic<bool> woke{false};
    int event = 0;
    auto waiter = kthread::spawn("waiter", [&] {
      assert_wait(&event);
      entered.store(true);
      thread_block();
      woke.store(true);
    });
    while (!entered.load()) std::this_thread::yield();
    // Race a wakeup against a clear_wait; at least one must land.
    auto clearer = kthread::spawn("clearer", [&] { clear_wait(*waiter); });
    thread_wakeup(&event);
    clearer->join();
    waiter->join();
    EXPECT_TRUE(woke.load()) << "round " << round;
  }
}

}  // namespace
}  // namespace mach
