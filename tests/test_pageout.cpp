// Tests for the pageout daemon: the standing reclaimer that keeps blocked
// allocators from waiting forever on the page zone.
#include <gtest/gtest.h>

#include <atomic>

#include "sched/kthread.h"
#include "tests/test_util.h"
#include "vm/pageout.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

struct pageout_fixture : ::testing::Test {
  pageout_fixture() : pages("po-pages", 8) {}

  void populate_cold(vm_map& map, int npages) {
    cold = make_object<memory_object>(pages);
    std::uint64_t base = 0;
    ASSERT_EQ(map.enter(cold, 0,
                        static_cast<std::uint64_t>(npages) * vm_page_size, &base),
              KERN_SUCCESS);
    for (int i = 0; i < npages; ++i) {
      ASSERT_EQ(vm_fault(map, base + static_cast<std::uint64_t>(i) * vm_page_size, nullptr),
                KERN_SUCCESS);
    }
  }

  object_zone<vm_page> pages;
  ref_ptr<memory_object> cold;
};

TEST_F(pageout_fixture, DaemonEvictsWhenBelowLowWater) {
  auto map = make_object<vm_map>();
  populate_cold(*map, 6);  // 6 of 8 frames used → 2 free
  pageout_daemon daemon(pages.raw(), /*low_water=*/4, 2ms);
  daemon.register_map(map);
  // Wait for the daemon to notice and evict down to the water line.
  for (int i = 0; i < 500 && pages.raw().in_use() > 4; ++i) std::this_thread::sleep_for(2ms);
  EXPECT_LE(pages.raw().in_use(), 4u);
  EXPECT_GE(daemon.scans(), 1u);
  EXPECT_GE(daemon.reclaim_passes(), 1u);
}

TEST_F(pageout_fixture, DaemonUnblocksSleepingAllocator) {
  auto map = make_object<vm_map>();
  populate_cold(*map, 8);  // zone exhausted
  std::atomic<bool> got{false};
  auto allocator = kthread::spawn("allocator", [&] {
    void* p = pages.raw().alloc();  // blocks: zone full
    got.store(true);
    pages.raw().free(p);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(got.load());
  pageout_daemon daemon(pages.raw(), /*low_water=*/2, 2ms);
  daemon.register_map(map);
  allocator->join();  // daemon eviction wakes the allocator
  EXPECT_TRUE(got.load());
}

TEST_F(pageout_fixture, DaemonSkipsWiredPages) {
  auto map = make_object<vm_map>();
  auto wired_obj = make_object<memory_object>(pages);
  std::uint64_t wired_base = 0;
  ASSERT_EQ(map->enter(wired_obj, 0, 4 * vm_page_size, &wired_base), KERN_SUCCESS);
  ASSERT_EQ(vm_map_pageable(*map, wired_base, 4 * vm_page_size, true), KERN_SUCCESS);
  pageout_daemon daemon(pages.raw(), /*low_water=*/8, 2ms);  // impossible target
  daemon.register_map(map);
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(wired_obj->resident_count(), 4u) << "daemon evicted wired pages";
  ASSERT_EQ(vm_map_pageable(*map, wired_base, 4 * vm_page_size, false), KERN_SUCCESS);
}

TEST_F(pageout_fixture, IdleDaemonDoesNothingAboveWater) {
  auto map = make_object<vm_map>();
  populate_cold(*map, 2);  // 6 free, water 2
  pageout_daemon daemon(pages.raw(), /*low_water=*/2, 2ms);
  daemon.register_map(map);
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(daemon.scans(), 0u);
  EXPECT_EQ(pages.raw().in_use(), 2u);
}

TEST_F(pageout_fixture, StopIsIdempotentAndDtorSafe) {
  pageout_daemon daemon(pages.raw(), 1, 2ms);
  daemon.stop();
  daemon.stop();  // no-op
}

}  // namespace
}  // namespace mach
