// Tests for the zone allocator: capacity-bounded allocation with blocking
// on exhaustion (the "memory allocation blocks" substrate of sec. 4).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>

#include "kern/zalloc.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

TEST(Zone, AllocFreeRoundTrip) {
  zone z("z1", 64, 4);
  void* p = z.alloc();
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 64);  // usable memory
  EXPECT_EQ(z.in_use(), 1u);
  z.free(p);
  EXPECT_EQ(z.in_use(), 0u);
}

TEST(Zone, ElementsAreDistinct) {
  zone z("z2", 32, 8);
  std::set<void*> seen;
  std::vector<void*> held;
  for (int i = 0; i < 8; ++i) {
    void* p = z.alloc();
    EXPECT_TRUE(seen.insert(p).second) << "duplicate element";
    held.push_back(p);
  }
  for (void* p : held) z.free(p);
}

TEST(Zone, FreedElementsAreReused) {
  zone z("z3", 32, 1);
  void* a = z.alloc();
  z.free(a);
  void* b = z.alloc();
  EXPECT_EQ(a, b);
  z.free(b);
}

TEST(Zone, NowaitReturnsNullWhenExhausted) {
  zone z("z4", 32, 2);
  void* a = z.alloc_nowait();
  void* b = z.alloc_nowait();
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_EQ(z.alloc_nowait(), nullptr);
  z.free(a);
  z.free(b);
}

TEST(Zone, AllocBlocksUntilFree) {
  zone z("z5", 32, 1);
  void* a = z.alloc();
  std::atomic<bool> got{false};
  auto waiter = kthread::spawn("allocator", [&] {
    void* p = z.alloc();  // blocks: zone exhausted
    got.store(true);
    z.free(p);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(got.load());
  EXPECT_GE(z.alloc_sleeps(), 1u);
  z.free(a);  // wakes the waiter
  waiter->join();
  EXPECT_TRUE(got.load());
}

TEST(Zone, AllocBlocksUntilCapacityRaised) {
  zone z("z6", 32, 1);
  void* a = z.alloc();
  std::atomic<bool> got{false};
  void* p2 = nullptr;
  auto waiter = kthread::spawn("allocator", [&] {
    p2 = z.alloc();
    got.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(got.load());
  z.set_max(2);  // "more memory arrives"
  waiter->join();
  EXPECT_TRUE(got.load());
  z.free(a);
  z.free(p2);
}

TEST(Zone, ForeignFreeIsFatal) {
  testing::panic_hook_scope hook;
  zone z("z7", 32, 2);
  int not_mine = 0;
  EXPECT_THROW(z.free(&not_mine), panic_error);
}

TEST(Zone, DoubleFreeIsFatal) {
  testing::panic_hook_scope hook;
  zone z("z8", 32, 2);
  void* p = z.alloc();
  z.free(p);
  EXPECT_THROW(z.free(p), panic_error);
  // Re-take it so the zone is clean at destruction.
  void* q = z.alloc();
  z.free(q);
}

TEST(Zone, AllocWhileHoldingSimpleLockPanicsOnlyIfItMustBlock) {
  testing::panic_hook_scope hook;
  zone z("z9", 32, 1);
  simple_lock_data_t l;
  simple_lock_init(&l, "held-over-alloc");
  simple_lock(&l);
  void* p = z.alloc();  // capacity available: no block, allowed
  EXPECT_NE(p, nullptr);
  // Exhausted now: a blocking alloc under a simple lock is the paper's
  // fatal design violation, caught by thread_block.
  EXPECT_THROW((void)z.alloc(), panic_error);
  simple_unlock(&l);
  z.free(p);
  // The aborted alloc left a wait asserted; consume the wakeup free()
  // delivered so this thread's wait state is clean for later tests.
  thread_block();
}

TEST(ObjectZone, ConstructDestroy) {
  struct widget {
    explicit widget(int v) : value(v) {}
    int value;
  };
  object_zone<widget> z("widgets", 4);
  widget* w = z.construct(7);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->value, 7);
  z.destroy(w);
  EXPECT_EQ(z.raw().in_use(), 0u);
}

TEST(ObjectZone, ConstructNowaitRespectsCapacity) {
  struct pod {
    int x = 0;
  };
  object_zone<pod> z("pods", 1);
  pod* a = z.construct_nowait();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(z.construct_nowait(), nullptr);
  z.destroy(a);
}

TEST(Zone, MultiSleeperExhaustionAllWake) {
  // Free-side wakeup policy (fixed in this PR): free() used to wake
  // exactly one sleeper regardless of how many were blocked; a wakeup
  // wasted on a sleeper that cannot proceed stranded the rest. With
  // multiple sleepers a free now broadcasts, and every sleeper re-checks
  // capacity under the zone lock — so a pile-up of blocked allocators
  // always drains once elements start coming back.
  zone z("multi-sleeper", 32, 2);
  void* a = z.alloc();
  void* b = z.alloc();
  constexpr int sleepers = 4;
  std::atomic<int> completed{0};
  std::vector<std::unique_ptr<kthread>> waiters;
  for (int i = 0; i < sleepers; ++i) {
    waiters.push_back(kthread::spawn("sleeper" + std::to_string(i), [&] {
      void* p = z.alloc();  // blocks: zone exhausted
      completed.fetch_add(1);
      std::this_thread::sleep_for(1ms);  // overlap holders so sleepers stack up
      z.free(p);
    }));
  }
  // Wait until all four are asleep in alloc().
  while (z.alloc_sleeps() < sleepers) std::this_thread::yield();
  EXPECT_EQ(completed.load(), 0);
  z.free(a);  // multiple sleepers: broadcast
  z.free(b);
  for (auto& w : waiters) w->join();
  EXPECT_EQ(completed.load(), sleepers);
  EXPECT_EQ(z.in_use(), 0u);
}

TEST(Zone, BroadcastSurvivesNowaitStealingTheFreedElement) {
  // The wasted-wakeup scenario the broadcast policy covers: a free wakes
  // sleepers, but an alloc_nowait steals the element before any of them
  // retake the zone lock. Every woken sleeper must re-sleep cleanly and
  // be woken again by the next free — nobody may be stranded by having
  // "used up" the only wakeup.
  zone z("steal", 32, 1);
  void* held = z.alloc();
  constexpr int sleepers = 3;
  std::atomic<int> completed{0};
  std::vector<std::unique_ptr<kthread>> waiters;
  for (int i = 0; i < sleepers; ++i) {
    waiters.push_back(kthread::spawn("sleeper" + std::to_string(i), [&] {
      void* p = z.alloc();
      completed.fetch_add(1);
      z.free(p);
    }));
  }
  while (z.alloc_sleeps() < sleepers) std::this_thread::yield();
  z.free(held);                    // broadcast to the pile
  void* stolen = z.alloc_nowait(); // ...and steal the element from under it
  if (stolen != nullptr) {
    std::this_thread::sleep_for(5ms);  // let the woken sleepers re-sleep
    z.free(stolen);                    // second free must re-wake them
  }
  for (auto& w : waiters) w->join();  // drains: each sleeper frees for the next
  EXPECT_EQ(completed.load(), sleepers);
  EXPECT_EQ(z.in_use(), 0u);
}

// Property sweep: concurrent allocators never exceed capacity and all
// elements return.
class ZoneStressTest : public ::testing::TestWithParam<int> {};

TEST_P(ZoneStressTest, CapacityNeverExceeded) {
  const int capacity = GetParam();
  zone z("stress", 64, static_cast<std::size_t>(capacity));
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::atomic<bool> over{false};
  constexpr int threads = 4;
  constexpr int iters = 800;
  std::vector<std::unique_ptr<kthread>> workers;
  for (int t = 0; t < threads; ++t) {
    workers.push_back(kthread::spawn("alloc" + std::to_string(t), [&] {
      for (int i = 0; i < iters; ++i) {
        void* p = z.alloc();
        int now = concurrent.fetch_add(1) + 1;
        if (now > capacity) over.store(true);
        int prev = peak.load();
        while (prev < now && !peak.compare_exchange_weak(prev, now)) {
        }
        concurrent.fetch_sub(1);
        z.free(p);
      }
    }));
  }
  for (auto& w : workers) w->join();
  EXPECT_FALSE(over.load());
  EXPECT_EQ(z.in_use(), 0u);
  EXPECT_LE(peak.load(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Capacities, ZoneStressTest, ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace mach
