// Tests for simple locks (Appendix A) and the spin policies behind them.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/simple_lock.h"
#include "tests/test_util.h"

namespace mach {
namespace {

TEST(SimpleLock, InitialStateIsUnlocked) {
  decl_simple_lock_data(, l);
  simple_lock_init(&l, "t");
  EXPECT_EQ(l.word.load(), 0);
  EXPECT_FALSE(simple_lock_held(&l));
}

TEST(SimpleLock, LockUnlockRoundTrip) {
  simple_lock_data_t l;
  simple_lock_init(&l);
  simple_lock(&l);
  EXPECT_TRUE(simple_lock_held(&l));
  EXPECT_EQ(l.word.load(), 1);
  simple_unlock(&l);
  EXPECT_FALSE(simple_lock_held(&l));
  EXPECT_EQ(l.word.load(), 0);
}

TEST(SimpleLock, TryFailsWhenHeldElsewhere) {
  simple_lock_data_t l;
  simple_lock_init(&l);
  std::atomic<bool> held{false}, release{false};
  std::thread holder([&] {
    simple_lock(&l);
    held.store(true);
    while (!release.load()) std::this_thread::yield();
    simple_unlock(&l);
  });
  while (!held.load()) std::this_thread::yield();
  EXPECT_FALSE(simple_lock_try(&l));
  release.store(true);
  holder.join();
  EXPECT_TRUE(simple_lock_try(&l));
  simple_unlock(&l);
}

TEST(SimpleLock, RecursiveAcquisitionPanics) {
  testing::panic_hook_scope hook;
  simple_lock_data_t l;
  simple_lock_init(&l, "recursive-victim");
  simple_lock(&l);
  EXPECT_THROW(simple_lock(&l), panic_error);
  EXPECT_THROW((void)simple_lock_try(&l), panic_error);
  simple_unlock(&l);
}

TEST(SimpleLock, UnlockByNonHolderPanics) {
  testing::panic_hook_scope hook;
  simple_lock_data_t l;
  simple_lock_init(&l, "foreign-unlock");
  EXPECT_THROW(simple_unlock(&l), panic_error);
}

TEST(SimpleLock, HeldCountTracksNesting) {
  simple_lock_data_t a, b;
  simple_lock_init(&a, "a");
  simple_lock_init(&b, "b");
  int base = held_tracked_simple_locks();
  simple_lock(&a);
  EXPECT_EQ(held_tracked_simple_locks(), base + 1);
  simple_lock(&b);
  EXPECT_EQ(held_tracked_simple_locks(), base + 2);
  simple_unlock(&b);
  simple_unlock(&a);
  EXPECT_EQ(held_tracked_simple_locks(), base);
}

TEST(SimpleLock, UntrackedLockDoesNotCount) {
  simple_lock_data_t l;
  simple_lock_init(&l, "internal", /*tracked=*/false);
  int base = held_tracked_simple_locks();
  simple_lock(&l);
  EXPECT_EQ(held_tracked_simple_locks(), base);
  simple_unlock(&l);
}

TEST(SimpleLocker, RaiiReleases) {
  simple_lock_data_t l;
  simple_lock_init(&l);
  {
    simple_locker guard(l);
    EXPECT_TRUE(simple_lock_held(&l));
  }
  EXPECT_FALSE(simple_lock_held(&l));
}

TEST(SimpleLocker, EarlyUnlock) {
  simple_lock_data_t l;
  simple_lock_init(&l);
  simple_locker guard(l);
  guard.unlock();
  EXPECT_FALSE(simple_lock_held(&l));
  // Destructor must not double-unlock (would panic as non-holder).
}

// Mutual exclusion under real contention, for every spin policy.
class SpinPolicyTest : public ::testing::TestWithParam<spin_policy> {};

TEST_P(SpinPolicyTest, MutualExclusionUnderContention) {
  simple_lock_data_t l;
  simple_lock_init(&l, "contended", true, GetParam());
  constexpr int threads = 4;
  constexpr int iters = 20000;
  long counter = 0;  // deliberately non-atomic: the lock must protect it
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        simple_lock(&l);
        ++counter;
        simple_unlock(&l);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<long>(threads) * iters);
}

TEST_P(SpinPolicyTest, StatsCountAcquisitions) {
  simple_lock_data_t l;
  simple_lock_init(&l, "stats", true, GetParam());
  spin_stats st;
  for (int i = 0; i < 10; ++i) {
    simple_lock(&l, &st);
    simple_unlock(&l);
  }
  EXPECT_EQ(st.acquisitions, 10u);
  EXPECT_EQ(st.contended, 0u);  // uncontended: acquired first try
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SpinPolicyTest,
                         ::testing::Values(spin_policy::tas, spin_policy::ttas,
                                           spin_policy::tas_then_ttas,
                                           spin_policy::ttas_backoff),
                         [](const auto& info) {
                           switch (info.param) {
                             case spin_policy::tas: return "tas";
                             case spin_policy::ttas: return "ttas";
                             case spin_policy::tas_then_ttas: return "tas_then_ttas";
                             case spin_policy::ttas_backoff: return "ttas_backoff";
                           }
                           return "unknown";
                         });

TEST(SpinStats, TasPolicyReportsFailedRmwUnderContention) {
  simple_lock_data_t l;
  simple_lock_init(&l, "rmw", true, spin_policy::tas);
  spin_stats st;
  std::atomic<bool> held{false}, release{false};
  std::thread hog([&] {
    simple_lock(&l);
    held.store(true);
    while (!release.load()) std::this_thread::yield();
    simple_unlock(&l);
  });
  while (!held.load()) std::this_thread::yield();
  // Guaranteed contended: the hog holds the lock until we are spinning.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    release.store(true);
  });
  simple_lock(&l, &st);
  simple_unlock(&l);
  hog.join();
  releaser.join();
  EXPECT_EQ(st.acquisitions, 1u);
  // Under contention the raw-TAS policy must have burned failed RMWs.
  EXPECT_EQ(st.contended, 1u);
  EXPECT_GT(st.failed_rmw, 0u);
}

TEST(SpinStats, MergeAddsFields) {
  spin_stats a{1, 2, 3, 4, 5}, b{10, 20, 30, 40, 50};
  a.merge(b);
  EXPECT_EQ(a.acquisitions, 11u);
  EXPECT_EQ(a.contended, 22u);
  EXPECT_EQ(a.failed_rmw, 33u);
  EXPECT_EQ(a.spin_loads, 44u);
  EXPECT_EQ(a.yields, 55u);
}

TEST(SpinPolicy, ToStringNamesAll) {
  EXPECT_STREQ(to_string(spin_policy::tas), "tas");
  EXPECT_STREQ(to_string(spin_policy::ttas), "ttas");
  EXPECT_STREQ(to_string(spin_policy::tas_then_ttas), "tas+ttas");
  EXPECT_STREQ(to_string(spin_policy::ttas_backoff), "ttas+backoff");
}

}  // namespace
}  // namespace mach
