// Tests for the prof_report renderer (harness/prof_report.h): the
// export → parse → load round trip, the three render forms (folded
// stacks, top table, flight JSON with computed counter rates), and the
// CLI failure modes for missing/empty/truncated input files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "harness/mini_json.h"
#include "harness/prof_report.h"
#include "prof/kprof.h"

namespace mach {
namespace {

// A hand-built profile exercising every rendering path: request and
// background cells, all attribution states, a site containing the folded
// separator, and two flight snapshots with a counter and a gauge.
kprof::profile sample_profile() {
  kprof::profile p;
  p.hz = 97.0;
  p.ticks = 40;
  p.duration_nanos = 400'000'000;        // 400 ms
  p.flight_interval_nanos = 20'000'000;  // 20 ms
  p.flight_dropped = 1;

  auto cell = [&p](kprof::activity state, bool request, const char* site, std::uint64_t count,
                   std::uint64_t weight_ms) {
    kprof::site_sample s;
    s.state = state;
    s.request = request;
    s.site = site;
    s.count = count;
    s.weight_nanos = weight_ms * 1'000'000;
    p.sites.push_back(std::move(s));
  };
  cell(kprof::activity::spinning, false, "hot-lock", 30, 300);
  cell(kprof::activity::lock_waiting, true, "rw;lock", 8, 80);  // ';' must be sanitized
  cell(kprof::activity::holding, false, "hot-lock", 5, 50);
  cell(kprof::activity::blocked, true, "event:0xdead", 4, 40);
  cell(kprof::activity::running, false, "", 12, 120);

  kprof::flight_snapshot a;
  a.nanos = 20'000'000;
  a.values = {{"machlock_ops_total", 100.0}, {"machlock_depth", 3.0}};
  kprof::flight_snapshot b;
  b.nanos = 120'000'000;  // 100 ms later
  b.values = {{"machlock_ops_total", 250.0}, {"machlock_depth", 5.0}};
  p.flight.push_back(std::move(a));
  p.flight.push_back(std::move(b));
  return p;
}

TEST(ProfReport, ExportLoadRoundTripPreservesTheProfile) {
  const kprof::profile in = sample_profile();
  mini_json::value doc;
  std::string err;
  ASSERT_TRUE(mini_json::parse(kprof::export_json(in), &doc, &err)) << err;
  kprof::profile out;
  ASSERT_TRUE(load_profile(doc, &out, &err)) << err;

  EXPECT_EQ(out.hz, in.hz);
  EXPECT_EQ(out.ticks, in.ticks);
  EXPECT_EQ(out.duration_nanos, in.duration_nanos);
  EXPECT_EQ(out.flight_interval_nanos, in.flight_interval_nanos);
  EXPECT_EQ(out.flight_dropped, in.flight_dropped);
  ASSERT_EQ(out.sites.size(), in.sites.size());
  for (std::size_t i = 0; i < in.sites.size(); ++i) {
    EXPECT_EQ(out.sites[i].state, in.sites[i].state) << i;
    EXPECT_EQ(out.sites[i].request, in.sites[i].request) << i;
    EXPECT_EQ(out.sites[i].site, in.sites[i].site) << i;
    EXPECT_EQ(out.sites[i].count, in.sites[i].count) << i;
    EXPECT_EQ(out.sites[i].weight_nanos, in.sites[i].weight_nanos) << i;
  }
  ASSERT_EQ(out.flight.size(), in.flight.size());
  EXPECT_EQ(out.flight[0].nanos, in.flight[0].nanos);
  // mini_json objects re-sort keys; compare as sets.
  ASSERT_EQ(out.flight[1].values.size(), in.flight[1].values.size());
  double ops = -1.0;
  for (const auto& [name, v] : out.flight[1].values) {
    if (name == "machlock_ops_total") ops = v;
  }
  EXPECT_EQ(ops, 250.0);
}

TEST(ProfReport, LoadRejectsNonProfileDocuments) {
  mini_json::value doc;
  std::string err;
  ASSERT_TRUE(mini_json::parse("{\"schema\":\"something-else\"}", &doc, &err)) << err;
  kprof::profile p;
  EXPECT_FALSE(load_profile(doc, &p, &err));
  EXPECT_NE(err.find("machlock-kprof-v1"), std::string::npos) << err;

  mini_json::value no_samples;
  ASSERT_TRUE(mini_json::parse("{\"schema\":\"machlock-kprof-v1\"}", &no_samples, &err)) << err;
  EXPECT_FALSE(load_profile(no_samples, &p, &err));
  EXPECT_NE(err.find("samples"), std::string::npos) << err;
}

TEST(ProfReport, LoadFileFailureModesNameThePath) {
  const std::string dir = ::testing::TempDir();
  kprof::profile p;
  std::string err;

  const std::string missing = dir + "/kprof_missing.json";
  EXPECT_FALSE(load_profile_file(missing, &p, &err));
  EXPECT_NE(err.find(missing), std::string::npos) << err;

  const std::string empty = dir + "/kprof_empty.json";
  { std::ofstream touch(empty); }
  err.clear();
  EXPECT_FALSE(load_profile_file(empty, &p, &err));
  EXPECT_NE(err.find(empty), std::string::npos) << err;

  const std::string truncated = dir + "/kprof_truncated.json";
  { std::ofstream(truncated) << R"j({"schema":"machlock-kprof-v1","samples":[{"state":)j"; }
  err.clear();
  EXPECT_FALSE(load_profile_file(truncated, &p, &err));
  EXPECT_NE(err.find(truncated), std::string::npos) << err;

  std::remove(empty.c_str());
  std::remove(truncated.c_str());
}

TEST(ProfReport, FoldedStacksOneLinePerCellWithSanitizedSites) {
  const std::string folded = render_folded(sample_profile());
  EXPECT_NE(folded.find("kprof;background;spinning;hot-lock 30\n"), std::string::npos) << folded;
  // The ';' inside the site name may not survive into a folded frame.
  EXPECT_NE(folded.find("kprof;request;lock-waiting;rw,lock 8\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("kprof;background;holding;hot-lock 5\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("kprof;request;blocked;event:0xdead 4\n"), std::string::npos) << folded;
  // Running has no site segment: exactly three frames.
  EXPECT_NE(folded.find("kprof;background;running 12\n"), std::string::npos) << folded;
}

TEST(ProfReport, TopTableRanksByContentionWeight) {
  const std::string top = render_top(sample_profile());
  // hot-lock: 300ms spin weight; rw;lock: 80ms wait weight — hot-lock
  // must be ranked first, and both appear with their per-state counts.
  const std::size_t hot = top.find("hot-lock");
  const std::size_t rw = top.find("rw;lock");
  ASSERT_NE(hot, std::string::npos) << top;
  ASSERT_NE(rw, std::string::npos) << top;
  EXPECT_LT(hot, rw) << top;
  EXPECT_NE(top.find("59 thread-samples over 40 ticks"), std::string::npos) << top;

  // `top` bounds the row count: with top=1 only hot-lock is printed.
  const std::string only_one = render_top(sample_profile(), 1);
  EXPECT_NE(only_one.find("hot-lock"), std::string::npos) << only_one;
  EXPECT_EQ(only_one.find("rw;lock"), std::string::npos) << only_one;
}

TEST(ProfReport, FlightJsonComputesCounterRatesBetweenSnapshots) {
  const std::string flight = render_flight_json(sample_profile());
  mini_json::value doc;
  std::string err;
  ASSERT_TRUE(mini_json::parse(flight, &doc, &err)) << err << "\n" << flight;
  const mini_json::value* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "machlock-kprof-flight-v1");

  const mini_json::value* snaps = doc.find("snapshots");
  ASSERT_NE(snaps, nullptr);
  ASSERT_EQ(snaps->arr.size(), 2u);
  // First snapshot has no predecessor, so no rates.
  EXPECT_EQ(snaps->arr[0].find("rates"), nullptr);
  // Second: ops went 100 → 250 over 100 ms ⇒ 1500/s. The gauge gets no
  // rate (only "_total" counters do).
  const mini_json::value* rates = snaps->arr[1].find("rates");
  ASSERT_NE(rates, nullptr);
  const mini_json::value* ops_rate = rates->find("machlock_ops_total");
  ASSERT_NE(ops_rate, nullptr);
  EXPECT_NEAR(ops_rate->num, 1500.0, 1e-6);
  EXPECT_EQ(rates->find("machlock_depth"), nullptr);
}

TEST(ProfReport, EmptyProfileRendersEmptyButValidOutput) {
  const kprof::profile p;  // sampler never ran
  EXPECT_EQ(render_folded(p), "");
  const std::string top = render_top(p);
  EXPECT_NE(top.find("0 thread-samples"), std::string::npos) << top;
  EXPECT_NE(top.find("no site-attributed samples"), std::string::npos) << top;
  mini_json::value doc;
  std::string err;
  ASSERT_TRUE(mini_json::parse(render_flight_json(p), &doc, &err)) << err;
  ASSERT_NE(doc.find("snapshots"), nullptr);
  EXPECT_TRUE(doc.find("snapshots")->arr.empty());
}

}  // namespace
}  // namespace mach
