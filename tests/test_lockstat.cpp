// Tests for the lockstat registry: Appendix A's "debugging and statistics
// information" as a live, system-wide facility.
#include <gtest/gtest.h>

#include <atomic>

#include "sched/kthread.h"
#include "sync/complex_lock.h"
#include "sync/lockstat.h"
#include "sync/simple_lock.h"
#include "tests/test_util.h"

namespace mach {
namespace {

// A complex lock and its first-member interlock share an address, so the
// lookup must also match the kind.
lock_stat_entry find_entry(const void* addr, bool is_complex = false) {
  for (const auto& e : lock_registry::instance().snapshot()) {
    if (e.address == addr && e.is_complex == is_complex) return e;
  }
  return {nullptr, "missing", false, 0, 0};
}

TEST(Lockstat, LocksRegisterAndUnregister) {
  std::size_t before = lock_registry::instance().live_locks();
  {
    simple_lock_data_t s("reg-simple");
    lock_data_t c;  // note: a complex lock also contains its interlock
    EXPECT_EQ(lock_registry::instance().live_locks(), before + 3);
    EXPECT_STREQ(find_entry(&s).name, "reg-simple");
  }
  EXPECT_EQ(lock_registry::instance().live_locks(), before);
}

TEST(Lockstat, CountsAcquisitions) {
  simple_lock_data_t l("counted");
  for (int i = 0; i < 10; ++i) {
    simple_lock(&l);
    simple_unlock(&l);
  }
  EXPECT_TRUE(simple_lock_try(&l));
  simple_unlock(&l);
  lock_stat_entry e = find_entry(&l);
  EXPECT_EQ(e.acquisitions, 11u);
  EXPECT_EQ(e.contended, 0u);
  EXPECT_FALSE(e.is_complex);
}

TEST(Lockstat, CountsContention) {
  simple_lock_data_t l("contended-stat");
  std::atomic<bool> held{false}, release{false};
  auto holder = kthread::spawn("holder", [&] {
    simple_lock(&l);
    held.store(true);
    while (!release.load()) std::this_thread::yield();
    simple_unlock(&l);
  });
  while (!held.load()) std::this_thread::yield();
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    release.store(true);
  });
  simple_lock(&l);  // contended
  simple_unlock(&l);
  holder->join();
  releaser.join();
  EXPECT_EQ(find_entry(&l).contended, 1u);
}

TEST(Lockstat, ComplexLocksReportCombinedStats) {
  lock_data_t l;
  lock_init(&l, true, "complex-stat");
  lock_read(&l);
  lock_done(&l);
  lock_write(&l);
  lock_done(&l);
  lock_stat_entry e = find_entry(&l, /*is_complex=*/true);
  EXPECT_TRUE(e.is_complex);
  EXPECT_EQ(e.acquisitions, 2u);  // one read + one write
}

TEST(Lockstat, SnapshotSortsMostContendedFirst) {
  auto snap = lock_registry::instance().snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i - 1].contended, snap[i].contended);
  }
}

TEST(Lockstat, SnapshotTieBreaksByNameThenAddress) {
  // Identical counters: order must fall back to name, then address, so
  // repeated snapshots (and print_top output) are stable run to run.
  simple_lock_data_t b("tiebreak-b");
  simple_lock_data_t a("tiebreak-a");
  simple_lock_data_t a2("tiebreak-a");
  auto position = [](const std::vector<lock_stat_entry>& snap, const void* addr) {
    for (std::size_t i = 0; i < snap.size(); ++i) {
      if (snap[i].address == addr) return i;
    }
    return snap.size();
  };
  auto snap = lock_registry::instance().snapshot();
  ASSERT_LT(position(snap, &a), snap.size());
  EXPECT_LT(position(snap, &a), position(snap, &b));  // name breaks the tie
  // Same name: address ordering decides, deterministically within a run.
  const bool a_first = &a < &a2;
  EXPECT_EQ(position(snap, &a) < position(snap, &a2), a_first);

  // The full order is reproducible across snapshots.
  auto snap2 = lock_registry::instance().snapshot();
  ASSERT_EQ(snap.size(), snap2.size());
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].address, snap2[i].address) << "row " << i;
  }
}

TEST(Lockstat, PrintTopDoesNotExplode) {
  // Smoke: the report renders with whatever is live (captured by ctest).
  lock_registry::instance().print_top(5);
}

}  // namespace
}  // namespace mach
