// Tests for the bench harness itself (workload driver, table printer) and
// regression tests for subtle bugs found during development.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/compiler.h"
#include "harness/bench_json.h"
#include "harness/mini_json.h"
#include "harness/table.h"
#include "harness/workload.h"
#include "kern/zalloc.h"
#include "sched/kthread.h"
#include "smp/barrier.h"
#include "sync/complex_lock.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

TEST(Workload, RunsAllThreadsForDuration) {
  std::atomic<int> setups{0}, teardowns{0};
  workload_spec spec;
  spec.threads = 3;
  spec.duration_ms = 50;
  spec.setup = [&](int) { setups.fetch_add(1); };
  spec.teardown = [&](int) { teardowns.fetch_add(1); };
  spec.body = [&](int, std::uint64_t) {};
  workload_result r = run_workload(spec);
  EXPECT_EQ(setups.load(), 3);
  EXPECT_EQ(teardowns.load(), 3);
  EXPECT_EQ(r.per_thread.size(), 3u);
  EXPECT_GT(r.total_ops(), 0u);
  EXPECT_GE(r.wall_nanos, 45'000'000u);
  EXPECT_GT(r.ops_per_second(), 0.0);
}

TEST(Workload, TimedModeRecordsLatencies) {
  workload_spec spec;
  spec.threads = 1;
  spec.duration_ms = 30;
  spec.timed = true;
  spec.body = [](int, std::uint64_t) { cpu_relax(); };
  workload_result r = run_workload(spec);
  EXPECT_EQ(r.merged_latency().count(), r.total_ops());
}

TEST(Workload, FairnessIsOneForSymmetricWork) {
  workload_spec spec;
  spec.threads = 2;
  spec.duration_ms = 50;
  spec.body = [](int, std::uint64_t) { std::this_thread::yield(); };
  workload_result r = run_workload(spec);
  EXPECT_GT(r.fairness(), 0.0);
  EXPECT_LE(r.fairness(), 1.0);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(table::num(std::uint64_t{0}), "0");
  EXPECT_EQ(table::num(std::uint64_t{999}), "999");
  EXPECT_EQ(table::num(std::uint64_t{1000}), "1,000");
  EXPECT_EQ(table::num(std::uint64_t{1234567}), "1,234,567");
  EXPECT_EQ(table::num(3.14159, 2), "3.14");
  EXPECT_EQ(table::ratio(2.5), "2.50x");
}

TEST(Table, BenchDurationEnvOverride) {
  EXPECT_EQ(bench_duration_ms(123), 123);  // no env var set in tests
}

// --- bench_json cell parsing (benchguard satellite: scientific notation,
// negatives, and the values that must never leak into the JSON) ---

TEST(BenchJsonParse, AcceptsHarnessFormatsAndScientificNotation) {
  double v = 0;
  EXPECT_TRUE(bench_json::parse_numeric_cell("1,234", &v));
  EXPECT_DOUBLE_EQ(v, 1234.0);
  EXPECT_TRUE(bench_json::parse_numeric_cell("3.42x", &v));
  EXPECT_DOUBLE_EQ(v, 3.42);
  EXPECT_TRUE(bench_json::parse_numeric_cell("85.0%", &v));
  EXPECT_DOUBLE_EQ(v, 85.0);
  EXPECT_TRUE(bench_json::parse_numeric_cell("1.2e+06", &v));
  EXPECT_DOUBLE_EQ(v, 1.2e6);
  EXPECT_TRUE(bench_json::parse_numeric_cell("3.5E-2", &v));
  EXPECT_DOUBLE_EQ(v, 0.035);
  EXPECT_TRUE(bench_json::parse_numeric_cell("-42", &v));
  EXPECT_DOUBLE_EQ(v, -42.0);
  EXPECT_TRUE(bench_json::parse_numeric_cell("-1,234ns", &v));
  EXPECT_DOUBLE_EQ(v, -1234.0);
  EXPECT_TRUE(bench_json::parse_numeric_cell("+0.5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(bench_json::parse_numeric_cell("17us", &v));
  EXPECT_DOUBLE_EQ(v, 17.0);
}

TEST(BenchJsonParse, RejectsNonNumbersAndNonFinite) {
  double v = 0;
  EXPECT_FALSE(bench_json::parse_numeric_cell("", &v));
  EXPECT_FALSE(bench_json::parse_numeric_cell("row-a", &v));
  EXPECT_FALSE(bench_json::parse_numeric_cell("12 ops", &v));  // unknown suffix
  // nan/inf parse via strtod but would be invalid JSON tokens.
  EXPECT_FALSE(bench_json::parse_numeric_cell("nan", &v));
  EXPECT_FALSE(bench_json::parse_numeric_cell("inf", &v));
  EXPECT_FALSE(bench_json::parse_numeric_cell("-inf", &v));
  EXPECT_FALSE(bench_json::parse_numeric_cell("1e999", &v));  // overflow (ERANGE)
  // strtod accepts hex; our formatters never emit it, so it is a label.
  EXPECT_FALSE(bench_json::parse_numeric_cell("0x1f", &v));
  EXPECT_FALSE(bench_json::parse_numeric_cell("-0X2A", &v));
}

// --- bench_json flush error paths (benchguard satellite: a bad output
// directory must not crash or silently drop tables) ---

class bench_json_fixture : public ::testing::Test {
 protected:
  void SetUp() override { bench_json::reset_for_tests(); }
  void TearDown() override {
    unsetenv("MACHLOCK_BENCH_JSON");
    bench_json::reset_for_tests();
  }
};

TEST_F(bench_json_fixture, FlushToMissingDirectoryKeepsTablesForRetry) {
  const std::string missing = ::testing::TempDir() + "/no-such-dir/nested";
  ASSERT_EQ(setenv("MACHLOCK_BENCH_JSON", missing.c_str(), 1), 0);
  bench_json::set_bench_name("retry");
  bench_json::record_table("kept table", {"metric"}, {}, {{"7"}});
  EXPECT_TRUE(bench_json::flush().empty());  // logged to stderr, not fatal

  // Point at a writable directory: the recorded table must still be there.
  ASSERT_EQ(setenv("MACHLOCK_BENCH_JSON", ::testing::TempDir().c_str(), 1), 0);
  const std::string path = bench_json::flush();
  ASSERT_FALSE(path.empty());
  mini_json::value root;
  std::string err;
  ASSERT_TRUE(mini_json::parse_file(path, &root, &err)) << err;
  const mini_json::value* tables = root.find("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->arr.size(), 1u);
  EXPECT_EQ(tables->arr[0].find("caption")->str, "kept table");
  std::remove(path.c_str());
}

TEST_F(bench_json_fixture, DoubleFlushAfterExternalOutputIsSafe) {
  ASSERT_EQ(setenv("MACHLOCK_BENCH_JSON", ::testing::TempDir().c_str(), 1), 0);
  bench_json::set_bench_name("extern");
  bench_json::note_external_output("/tmp/external-owner.json");
  bench_json::record_table("late table", {"metric"}, {}, {{"1"}});
  // Both flushes are no-ops (the external writer owns the file); the
  // second exercises the already-flushed path with tables pending.
  EXPECT_TRUE(bench_json::flush().empty());
  EXPECT_TRUE(bench_json::flush().empty());
  EXPECT_EQ(bench_json::output_path(), "/tmp/external-owner.json");
}

TEST_F(bench_json_fixture, MetaStampCarriesEnvironment) {
  ASSERT_EQ(setenv("MACHLOCK_BENCH_JSON", ::testing::TempDir().c_str(), 1), 0);
  ASSERT_EQ(setenv("MACHLOCK_GIT_SHA", "deadbeef1234", 1), 0);
  bench_json::set_bench_name("meta");
  table t("stamped");
  t.columns({"policy", "ops/s"});
  t.dirs({metric_dir::info, metric_dir::higher});
  t.row({"tas", "1,000"});
  t.print();
  const std::string path = bench_json::flush();
  unsetenv("MACHLOCK_GIT_SHA");
  ASSERT_FALSE(path.empty());
  mini_json::value root;
  std::string err;
  ASSERT_TRUE(mini_json::parse_file(path, &root, &err)) << err;
  EXPECT_EQ(root.find("schema")->num, 2.0);
  const mini_json::value* meta = root.find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->find("git_sha")->str, "deadbeef1234");
  EXPECT_GE(meta->find("hw_concurrency")->num, 1.0);
  EXPECT_EQ(meta->find("reps")->num, 1.0);
  const mini_json::value* dirs = root.find("tables")->arr[0].find("directions");
  ASSERT_NE(dirs, nullptr);
  ASSERT_EQ(dirs->arr.size(), 2u);
  EXPECT_EQ(dirs->arr[0].str, "info");
  EXPECT_EQ(dirs->arr[1].str, "higher");
  std::remove(path.c_str());
}

// --- regressions ---

// Back-to-back barrier rounds: a participant that had not yet observed
// round N's release when round N+1 reset the flags used to wedge forever
// inside the ISR at interrupt level (fixed with the generation counter).
TEST(Regression, BarrierBackToBackRoundsDoNotWedge) {
  machine::instance().configure(2);
  {
    interrupt_barrier b("b2b");
    b.attach(SPLHIGH);
    std::atomic<bool> stop{false};
    auto poller = kthread::spawn("cpu1", [&] {
      cpu_binding bind(1);
      while (!stop.load()) {
        machine::interrupt_point();
        std::this_thread::yield();
      }
    });
    cpu_binding bind(0);
    for (int r = 0; r < 50; ++r) {
      ASSERT_EQ(b.run(0b10, [] {}, 5s), interrupt_barrier::status::ok) << "round " << r;
    }
    stop.store(true);
    poller->join();
    EXPECT_EQ(b.rounds_ok(), 50u);
  }
  machine::instance().configure(0);
}

// Upgrades are favored over writes: a committed writer draining readers
// must yield to a reader's upgrade request.
TEST(Regression, UpgradeBeatsCommittedWriter) {
  lock_data_t l;
  lock_init(&l, true, "upgrade-vs-writer");
  lock_read(&l);  // we hold a read lock
  std::atomic<bool> writer_done{false};
  auto writer = kthread::spawn("writer", [&] {
    lock_write(&l);  // commits want_write, drains our read hold
    writer_done.store(true);
    lock_done(&l);
  });
  std::this_thread::sleep_for(10ms);  // writer is now draining
  EXPECT_FALSE(writer_done.load());
  // Our upgrade must succeed ahead of the committed writer.
  EXPECT_FALSE(lock_read_to_write(&l));  // FALSE = success
  EXPECT_FALSE(writer_done.load()) << "writer got in before the upgrade";
  lock_done(&l);
  writer->join();
  EXPECT_TRUE(writer_done.load());
}

// The zone free-list must respect a shrunk ceiling (regression for the
// shrink-below-usage bug).
TEST(Regression, ZoneFreeListHonorsShrunkCeiling) {
  zone z("shrunk", 16, 3);
  void* a = z.alloc();
  void* b = z.alloc();
  void* c = z.alloc();
  z.free(c);     // free list now has one element
  z.set_max(2);  // in_use == 2 == max
  EXPECT_EQ(z.alloc_nowait(), nullptr) << "free-list element handed out past the ceiling";
  z.free(a);
  z.free(b);
}

}  // namespace
}  // namespace mach
