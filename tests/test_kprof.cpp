// Tests for the kprof sampling profiler (prof/kprof.h): activity-word
// packing, slot publication and decoding, sampler lifecycle, and — the
// acceptance scenario — a scripted spin/wait/block workload whose sampled
// attribution is deterministic and agrees with the event-based lockstat
// registry on which site is contended.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "harness/mini_json.h"
#include "metrics/kmon.h"
#include "prof/kprof.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "sync/complex_lock.h"
#include "sync/deadlock.h"
#include "sync/lockstat.h"
#include "sync/simple_lock.h"
#include "trace/kspan.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

// Stops the sampler and clears accumulated state around every test so the
// singleton never leaks samples between cases.
class kprof_fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    kprof::sampler::instance().stop();
    kprof::sampler::instance().reset();
  }
  void TearDown() override {
    kprof::sampler::instance().stop();
    kprof::sampler::instance().reset();
    kmon::disable();
    kspan::disable();
    kprof::publish(kprof::activity::running, nullptr);
  }

  // Find the aggregated cell for (state, site); null when never sampled.
  static const kprof::site_sample* find_site(const kprof::profile& p, kprof::activity state,
                                             const std::string& site) {
    for (const kprof::site_sample& s : p.sites) {
      if (s.state == state && s.site == site) return &s;
    }
    return nullptr;
  }
};

TEST_F(kprof_fixture, PackRoundTripsStateSubjectAndRequestFlag) {
  static const char* const name = "pack-probe-lock";
  const kprof::activity_word w = kprof::pack(kprof::activity::lock_waiting, name, true);
  EXPECT_EQ(kprof::unpack_state(w), kprof::activity::lock_waiting);
  EXPECT_TRUE(kprof::unpack_request(w));
  EXPECT_EQ(kprof::unpack_subject(w),
            reinterpret_cast<std::uintptr_t>(name) & kprof::k_subject_mask);

  const kprof::activity_word bg = kprof::pack(kprof::activity::running, nullptr, false);
  EXPECT_EQ(bg, 0u);  // running/background/no-subject is the zero word
  EXPECT_EQ(kprof::unpack_state(bg), kprof::activity::running);
  EXPECT_FALSE(kprof::unpack_request(bg));
}

TEST_F(kprof_fixture, PublishAndActivityForDecodeTheCurrentThread) {
  static const char* const name = "probe-lock";
  kprof::publish(kprof::activity::spinning, name);
  kprof::thread_activity act = kprof::activity_for(current_thread_token());
  ASSERT_TRUE(act.found);
  EXPECT_EQ(act.state, kprof::activity::spinning);
  EXPECT_EQ(act.site, "probe-lock");
  EXPECT_FALSE(act.request);

  // The request bit tracks the live kspan context at publish time.
  kspan::enable();
  {
    kspan::request req("probe-request");
    kprof::publish(kprof::activity::holding, name);
    act = kprof::activity_for(current_thread_token());
    ASSERT_TRUE(act.found);
    EXPECT_EQ(act.state, kprof::activity::holding);
    EXPECT_TRUE(act.request);
  }
  kspan::disable();

  // A token that never published is reported as not found.
  int not_a_thread = 0;
  EXPECT_FALSE(kprof::activity_for(&not_a_thread).found);
}

TEST_F(kprof_fixture, SaveRestoreNestingKeepsOuterAttribution) {
  // The protocol the instrumentation points use: an inner wait publishes
  // over the outer word and restores it, so e.g. the interlock spin inside
  // a complex-lock wait re-surfaces as the complex-lock wait when it ends.
  static const char* const outer = "outer-lock";
  static const char* const inner = "inner-lock";
  kprof::publish(kprof::activity::lock_waiting, outer);
  const kprof::activity_word saved = kprof::self_word();
  kprof::publish(kprof::activity::spinning, inner);
  EXPECT_EQ(kprof::unpack_state(kprof::self_word()), kprof::activity::spinning);
  kprof::publish_word(saved);
  const kprof::thread_activity act = kprof::activity_for(current_thread_token());
  ASSERT_TRUE(act.found);
  EXPECT_EQ(act.state, kprof::activity::lock_waiting);
  EXPECT_EQ(act.site, "outer-lock");
}

TEST_F(kprof_fixture, SamplerStartStopIsIdempotentAndRestartable) {
  kprof::sampler& s = kprof::sampler::instance();
  EXPECT_FALSE(s.running());
  s.start(500.0, 5ms);
  EXPECT_TRUE(s.running());
  s.start(500.0, 5ms);  // second start is a no-op
  EXPECT_TRUE(s.running());
  s.stop();
  EXPECT_FALSE(s.running());
  s.stop();  // second stop is a no-op
  EXPECT_FALSE(s.running());
  s.start(500.0, 5ms);
  EXPECT_TRUE(s.running());
  std::this_thread::sleep_for(20ms);
  s.stop();
  const kprof::profile p = s.snapshot();
  EXPECT_GT(p.ticks, 0u);
  EXPECT_GT(p.duration_nanos, 0u);
  s.reset();
  EXPECT_EQ(s.snapshot().ticks, 0u);
}

TEST_F(kprof_fixture, ZeroSampleSnapshotExportsValidJson) {
  // A sampler that never ran (or was reset) must still export a
  // well-formed, schema-stamped document — the "empty profile is valid"
  // contract prof_report relies on.
  const kprof::profile p = kprof::sampler::instance().snapshot();
  EXPECT_EQ(p.ticks, 0u);
  EXPECT_TRUE(p.sites.empty());
  EXPECT_TRUE(p.flight.empty());

  const std::string json = kprof::export_json(p);
  mini_json::value doc;
  std::string err;
  ASSERT_TRUE(mini_json::parse(json, &doc, &err)) << err;
  const mini_json::value* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "machlock-kprof-v1");
  const mini_json::value* samples = doc.find("samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_TRUE(samples->arr.empty());
}

// The acceptance scenario: three threads pinned in the three wait states
// for the whole sampling window, so the attribution is deterministic —
// every sample of each thread must land on the right (state, site) cell —
// and the profiler's contention ranking can be cross-checked against the
// event-based lockstat registry while both are live.
TEST_F(kprof_fixture, AttributesScriptedSpinWaitBlockAndAgreesWithLockstat) {
  kmon::enable();
  kmon::counter flight_probe("machlock_kprof_test_ops_total", "flight-recorder probe");
  flight_probe.inc(7);

  simple_lock_data_t hot;
  simple_lock_init(&hot, "kprof-hot-lock");
  lock_data_t rw;
  lock_init(&rw, /*can_sleep=*/true, "kprof-rw-lock");

  std::atomic<bool> wedged{false};
  std::atomic<bool> reading{false};
  std::atomic<bool> release{false};

  // Holder wedges both locks; spinner/waiter/blocker then sit in their
  // respective states until released.
  auto holder = kthread::spawn("kprof-holder", [&] {
    simple_lock(&hot);
    lock_read(&rw);
    wedged.store(true);
    reading.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);
    lock_done(&rw);
    simple_unlock(&hot);
  });
  while (!wedged.load()) std::this_thread::yield();

  auto spinner = kthread::spawn("kprof-spinner", [&] {
    simple_lock(&hot);  // spins for the whole window
    simple_unlock(&hot);
  });
  auto waiter = kthread::spawn("kprof-waiter", [&] {
    lock_write(&rw);  // sleeps in lock_wait for the whole window
    lock_done(&rw);
  });
  int ev = 0;
  auto blocker = kthread::spawn("kprof-blocker", [&] {
    assert_wait(&ev);
    thread_block_timeout(2000ms);  // nobody wakes us; released below
  });

  kprof::sampler& s = kprof::sampler::instance();
  s.start(/*hz=*/2000.0, /*flight_interval=*/5ms);
  std::this_thread::sleep_for(120ms);
  s.stop();

  release.store(true);
  thread_wakeup(&ev);
  holder->join();
  spinner->join();
  waiter->join();
  blocker->join();

  const kprof::profile p = s.snapshot();
  EXPECT_GT(p.ticks, 50u);  // 120ms at 2kHz minus scheduling slack

  const kprof::site_sample* spin = find_site(p, kprof::activity::spinning, "kprof-hot-lock");
  ASSERT_NE(spin, nullptr) << "spinner never sampled on kprof-hot-lock";
  EXPECT_GT(spin->count, 0u);
  EXPECT_GT(spin->weight_nanos, 0u);

  const kprof::site_sample* wait = find_site(p, kprof::activity::lock_waiting, "kprof-rw-lock");
  ASSERT_NE(wait, nullptr) << "writer never sampled waiting on kprof-rw-lock";
  EXPECT_GT(wait->count, 0u);

  // The blocker's subject is the event address — no live lock at that
  // address, so it renders as an event label.
  bool saw_blocked_event = false;
  for (const kprof::site_sample& cell : p.sites) {
    if (cell.state == kprof::activity::blocked &&
        cell.site.compare(0, 8, "event:0x") == 0) {
      saw_blocked_event = true;
    }
  }
  EXPECT_TRUE(saw_blocked_event) << "blocker never sampled in thread_block";

  // Cross-check against lockstat: both locks the profiler ranked as
  // contended must be live, contended locks in the event-based registry —
  // the two modalities agree on WHAT was fought over.
  bool lockstat_saw_hot = false, lockstat_saw_rw = false;
  for (const lock_stat_entry& e : lock_registry::instance().snapshot()) {
    if (std::string(e.name) == "kprof-hot-lock" && e.contended > 0) lockstat_saw_hot = true;
    if (std::string(e.name) == "kprof-rw-lock" && e.contended > 0) lockstat_saw_rw = true;
  }
  EXPECT_TRUE(lockstat_saw_hot) << "lockstat disagrees: kprof-hot-lock not contended";
  EXPECT_TRUE(lockstat_saw_rw) << "lockstat disagrees: kprof-rw-lock not contended";

  // Flight recorder: 120ms at a 5ms interval must have captured several
  // kmon snapshots, and each carries our probe counter.
  ASSERT_GE(p.flight.size(), 3u);
  bool probe_in_flight = false;
  for (const auto& [name, value] : p.flight.front().values) {
    if (name == "machlock_kprof_test_ops_total") {
      probe_in_flight = true;
      EXPECT_EQ(value, 7.0);
    }
  }
  EXPECT_TRUE(probe_in_flight) << "flight snapshot missing the kmon probe counter";
}

}  // namespace
}  // namespace mach
