// Tests for the stall watchdog (src/metrics/watchdog.h): each wait class
// trips its deadline, the trip report names the stalled resource, and
// healthy waits do not trip. These cover the paper's runtime failure modes
// (wedged simple-lock holders, lost wakeups, starved writers) end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/watchdog.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "sync/complex_lock.h"
#include "sync/simple_lock.h"
#include "trace/kspan.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

// Collects trip reports and stops the watchdog on scope exit so tests stay
// independent.
class trip_collector {
 public:
  explicit trip_collector(watchdog_config cfg) : baseline_(watchdog::instance().trips()) {
    cfg.on_trip = [this](const std::string& report) {
      std::lock_guard<std::mutex> g(m_);
      reports_.push_back(report);
    };
    watchdog::instance().start(cfg);
  }
  ~trip_collector() { watchdog::instance().stop(); }

  std::uint64_t trips() const { return watchdog::instance().trips() - baseline_; }

  // Wait until at least one trip fires or `deadline` elapses; returns the
  // first report (empty on timeout).
  std::string wait_for_trip(std::chrono::milliseconds deadline) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      {
        std::lock_guard<std::mutex> g(m_);
        if (!reports_.empty()) return reports_.front();
      }
      std::this_thread::sleep_for(2ms);
    }
    std::lock_guard<std::mutex> g(m_);
    return reports_.empty() ? std::string{} : reports_.front();
  }

 private:
  std::uint64_t baseline_;
  std::mutex m_;
  std::vector<std::string> reports_;
};

// The ISSUE acceptance scenario: one thread wedges holding a simple lock,
// another spins on it; the watchdog must trip within the spin deadline
// (plus poll and scheduling slack) and name the held lock.
TEST(Watchdog, TripsOnWedgedSimpleLockAndNamesIt) {
  watchdog_config cfg;
  cfg.poll = 5ms;
  cfg.spin_deadline = 50ms;
  cfg.block_deadline = 10s;   // keep other classes quiet
  cfg.writer_deadline = 10s;
  trip_collector trips(cfg);

  simple_lock_data_t wedge;
  simple_lock_init(&wedge, "wedge-lock");
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  auto holder = kthread::spawn("wedge-holder", [&] {
    simple_lock(&wedge);
    held.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);  // wedged
    simple_unlock(&wedge);
  });
  while (!held.load()) std::this_thread::yield();

  const auto spin_start = std::chrono::steady_clock::now();
  auto spinner = kthread::spawn("wedge-spinner", [&] {
    simple_lock(&wedge);
    simple_unlock(&wedge);
  });

  // Deadline 50ms + poll 5ms; allow generous scheduler slack but still
  // assert the trip arrived well before an un-watched spin would.
  const std::string report = trips.wait_for_trip(2000ms);
  const auto elapsed = std::chrono::steady_clock::now() - spin_start;
  ASSERT_FALSE(report.empty()) << "watchdog did not trip on a wedged simple lock";
  EXPECT_GE(trips.trips(), 1u);
  EXPECT_GE(elapsed, 45ms);  // not before the deadline
  EXPECT_NE(report.find("wedge-lock"), std::string::npos) << report;
  EXPECT_NE(report.find("simple-lock spin"), std::string::npos) << report;
  // The kprof activity word: the spinner's last published state must be
  // "spinning on 'wedge-lock'" — the report says what the thread was
  // DOING, not just which deadline fired.
  EXPECT_NE(report.find("activity: spinning on 'wedge-lock'"), std::string::npos) << report;
  EXPECT_NE(watchdog::instance().last_report().find("wedge-lock"), std::string::npos);

  release.store(true);
  holder->join();
  spinner->join();
}

TEST(Watchdog, TripsOnThreadBlockedPastDeadline) {
  watchdog_config cfg;
  cfg.poll = 5ms;
  cfg.spin_deadline = 10s;
  cfg.block_deadline = 50ms;
  cfg.writer_deadline = 10s;
  trip_collector trips(cfg);

  int ev = 0;
  std::atomic<bool> waiting{false};
  auto waiter = kthread::spawn("lost-wakeup-waiter", [&] {
    assert_wait(&ev);
    waiting.store(true);
    // Nobody wakes us; the timeout is our own unwedge, well past the
    // watchdog's block deadline.
    thread_block_timeout(1500ms);
  });
  while (!waiting.load()) std::this_thread::yield();

  const std::string report = trips.wait_for_trip(2000ms);
  ASSERT_FALSE(report.empty()) << "watchdog did not trip on a blocked thread";
  EXPECT_NE(report.find("blocked thread"), std::string::npos) << report;
  EXPECT_NE(report.find("event-wait"), std::string::npos) << report;

  thread_wakeup(&ev);  // harmless if the timeout already fired
  waiter->join();
}

TEST(Watchdog, TripsOnStarvedWriter) {
  watchdog_config cfg;
  cfg.poll = 5ms;
  cfg.spin_deadline = 10s;
  cfg.block_deadline = 10s;
  cfg.writer_deadline = 50ms;
  trip_collector trips(cfg);

  lock_data_t l;
  lock_init(&l, /*can_sleep=*/true, "starver-lock");
  std::atomic<bool> reading{false};
  std::atomic<bool> release{false};
  auto reader = kthread::spawn("greedy-reader", [&] {
    lock_read(&l);
    reading.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);
    lock_done(&l);
  });
  while (!reading.load()) std::this_thread::yield();

  auto writer = kthread::spawn("starved-writer", [&] {
    lock_write(&l);
    lock_done(&l);
  });

  const std::string report = trips.wait_for_trip(2000ms);
  ASSERT_FALSE(report.empty()) << "watchdog did not trip on a starved writer";
  EXPECT_NE(report.find("starved complex-lock writer"), std::string::npos) << report;
  EXPECT_NE(report.find("starver-lock"), std::string::npos) << report;

  release.store(true);
  reader->join();
  writer->join();
}

TEST(Watchdog, HealthyContentionDoesNotTrip) {
  watchdog_config cfg;
  cfg.poll = 5ms;
  cfg.spin_deadline = 500ms;
  cfg.block_deadline = 2s;
  cfg.writer_deadline = 1s;
  trip_collector trips(cfg);

  // Short lock hand-offs and immediate wakeups: all waits end far inside
  // their deadlines.
  simple_lock_data_t l;
  simple_lock_init(&l, "healthy-lock");
  int ev = 0;
  std::vector<std::unique_ptr<kthread>> threads;
  for (int i = 0; i < 4; ++i) {
    threads.push_back(kthread::spawn(std::string("healthy") += std::to_string(i), [&] {
      for (int n = 0; n < 200; ++n) {
        simple_lock(&l);
        simple_unlock(&l);
      }
      assert_wait(&ev);
      thread_block_timeout(20ms);
    }));
  }
  for (auto& t : threads) t->join();
  thread_wakeup(&ev);
  std::this_thread::sleep_for(30ms);  // a few poll periods
  EXPECT_EQ(trips.trips(), 0u);
}

TEST(Watchdog, StartStopIsIdempotentAndRestartable) {
  watchdog_config cfg;
  cfg.poll = 5ms;
  trip_collector first(cfg);
  EXPECT_TRUE(watchdog::instance().running());
  watchdog::instance().start(cfg);  // second start is a no-op
  EXPECT_TRUE(watchdog::instance().running());
  watchdog::instance().stop();
  EXPECT_FALSE(watchdog::instance().running());
  watchdog::instance().stop();  // second stop is a no-op
  watchdog::instance().start(cfg);
  EXPECT_TRUE(watchdog::instance().running());
  watchdog::instance().stop();
}

// A stall inside an active kspan request names the request in the trip
// report, so the operator can join the trip against the exported trace.
TEST(Watchdog, TripReportNamesTheStalledRequestSpan) {
  kspan::enable();
  watchdog_config cfg;
  cfg.poll = 5ms;
  cfg.spin_deadline = 50ms;
  cfg.block_deadline = 10s;
  cfg.writer_deadline = 10s;
  trip_collector trips(cfg);

  simple_lock_data_t wedge;
  simple_lock_init(&wedge, "span-wedge-lock");
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  auto holder = kthread::spawn("span-wedge-holder", [&] {
    simple_lock(&wedge);
    held.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);
    simple_unlock(&wedge);
  });
  while (!held.load()) std::this_thread::yield();

  std::atomic<std::uint32_t> trace_id{0};
  auto spinner = kthread::spawn("span-wedge-spinner", [&] {
    kspan::request req("stalled-request");
    trace_id.store(span_trace_id(req.ctx()));
    simple_lock(&wedge);
    simple_unlock(&wedge);
  });

  const std::string report = trips.wait_for_trip(2000ms);
  ASSERT_FALSE(report.empty()) << "watchdog did not trip";
  char expect[64];
  std::snprintf(expect, sizeof(expect), "request: trace=0x%x", trace_id.load());
  EXPECT_NE(report.find(expect), std::string::npos) << report;

  release.store(true);
  holder->join();
  spinner->join();
  kspan::disable();
}

TEST(Watchdog, ConfigFromEnvReadsOverrides) {
  setenv("MACHLOCK_WATCHDOG_POLL_MS", "7", 1);
  setenv("MACHLOCK_WATCHDOG_SPIN_MS", "123", 1);
  setenv("MACHLOCK_WATCHDOG_PANIC", "1", 1);
  watchdog_config cfg = watchdog_config_from_env();
  EXPECT_EQ(cfg.poll, 7ms);
  EXPECT_EQ(cfg.spin_deadline, 123ms);
  EXPECT_TRUE(cfg.panic_on_trip);
  unsetenv("MACHLOCK_WATCHDOG_POLL_MS");
  unsetenv("MACHLOCK_WATCHDOG_SPIN_MS");
  unsetenv("MACHLOCK_WATCHDOG_PANIC");
  cfg = watchdog_config_from_env();
  EXPECT_EQ(cfg.poll, 10ms);
  EXPECT_EQ(cfg.spin_deadline, 250ms);
  EXPECT_FALSE(cfg.panic_on_trip);
}

}  // namespace
}  // namespace mach
