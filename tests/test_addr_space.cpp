// Tests for the address-space integration layer: TLB → pmap → fault walk,
// unmap with shootdown, and pv consistency across shootdown updates.
#include <gtest/gtest.h>

#include <atomic>

#include "sched/kthread.h"
#include "tests/test_util.h"
#include "vm/addr_space.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

struct aspace_fixture : ::testing::Test {
  aspace_fixture() : pages("as-pages", 32) {}

  ref_ptr<vm_map> make_mapped(std::uint64_t* base, std::uint64_t npages = 4) {
    auto map = make_object<vm_map>();
    obj = make_object<memory_object>(pages);
    EXPECT_EQ(map->enter(obj, 0, npages * vm_page_size, base), KERN_SUCCESS);
    return map;
  }

  object_zone<vm_page> pages;
  ref_ptr<memory_object> obj;
  pmap_system pmaps;
};

TEST_F(aspace_fixture, AccessWalksFaultPathOnceThenHitsPmap) {
  std::uint64_t base = 0;
  address_space as(make_mapped(&base), pmaps);
  std::uint64_t pa1 = 0, pa2 = 0;
  EXPECT_EQ(as.access(-1, base, &pa1), KERN_SUCCESS);  // cold: full fault
  EXPECT_EQ(as.access(-1, base, &pa2), KERN_SUCCESS);  // warm: pmap hit
  EXPECT_EQ(pa1, pa2);
  auto st = as.stats();
  EXPECT_EQ(st.faults, 1u);
  EXPECT_EQ(st.pmap_hits, 1u);
  EXPECT_EQ(st.tlb_hits, 0u);  // no TLB without a cpu
}

TEST_F(aspace_fixture, TlbHitsAfterFirstAccess) {
  tlb_set tlbs(2);
  std::uint64_t base = 0;
  address_space as(make_mapped(&base), pmaps, &tlbs);
  std::uint64_t pa = 0;
  EXPECT_EQ(as.access(0, base, &pa), KERN_SUCCESS);  // fault + fills cpu0 TLB
  EXPECT_EQ(as.access(0, base, &pa), KERN_SUCCESS);  // TLB hit
  EXPECT_EQ(as.access(1, base, &pa), KERN_SUCCESS);  // cpu1: TLB miss, pmap hit
  EXPECT_EQ(as.access(1, base, &pa), KERN_SUCCESS);  // cpu1 TLB hit
  auto st = as.stats();
  EXPECT_EQ(st.faults, 1u);
  EXPECT_EQ(st.pmap_hits, 1u);
  EXPECT_EQ(st.tlb_hits, 2u);
}

TEST_F(aspace_fixture, UnmappedAccessFails) {
  std::uint64_t base = 0;
  address_space as(make_mapped(&base), pmaps);
  EXPECT_EQ(as.access(-1, base + 64 * vm_page_size, nullptr), KERN_FAILURE);
}

TEST_F(aspace_fixture, SubPageAddressesShareOneTranslation) {
  std::uint64_t base = 0;
  address_space as(make_mapped(&base), pmaps);
  std::uint64_t pa1 = 0, pa2 = 0;
  EXPECT_EQ(as.access(-1, base + 17, &pa1), KERN_SUCCESS);
  EXPECT_EQ(as.access(-1, base + vm_page_size - 1, &pa2), KERN_SUCCESS);
  EXPECT_EQ(pa1, pa2);
  EXPECT_EQ(as.stats().faults, 1u);
}

TEST_F(aspace_fixture, UniprocessorUnmapDropsTranslationAndTlb) {
  tlb_set tlbs(1);
  std::uint64_t base = 0;
  address_space as(make_mapped(&base), pmaps, &tlbs);
  std::uint64_t pa = 0;
  ASSERT_EQ(as.access(0, base, &pa), KERN_SUCCESS);
  ASSERT_EQ(as.unmap_page(base), KERN_SUCCESS);
  EXPECT_FALSE(tlbs.lookup(0, base).has_value());
  // Access faults back in (the map entry survives).
  auto before = as.stats().faults;
  EXPECT_EQ(as.access(0, base, &pa), KERN_SUCCESS);
  EXPECT_EQ(as.stats().faults, before + 1);
}

TEST_F(aspace_fixture, UnmapWithEngineShootsDownRemoteTlbs) {
  machine::instance().configure(2);
  {
    tlb_set tlbs(2);
    shootdown_engine engine(pmaps, tlbs);
    engine.attach(SPLHIGH);
    std::uint64_t base = 0;
    address_space as(make_mapped(&base), pmaps, &tlbs, &engine);

    std::atomic<bool> stop{false};
    std::atomic<bool> populated{false};
    std::atomic<std::uint64_t> remote_pa{0};
    auto cpu1 = kthread::spawn("cpu1", [&] {
      cpu_binding bind(1);
      std::uint64_t pa = 0;
      EXPECT_EQ(as.access(1, base, &pa), KERN_SUCCESS);
      remote_pa.store(pa);
      populated.store(true);
      while (!stop.load()) {
        machine::interrupt_point();
        std::this_thread::yield();
      }
    });
    while (!populated.load()) std::this_thread::yield();
    ASSERT_TRUE(tlbs.lookup(1, base).has_value());
    {
      cpu_binding bind(0);
      EXPECT_EQ(as.unmap_page(base, 5s), KERN_SUCCESS);
    }
    EXPECT_FALSE(tlbs.lookup(1, base).has_value()) << "remote TLB survived the shootdown";
    // pv lists are consistent: no entry for the old frame remains.
    auto& b = pmaps.pv().bucket_for(remote_pa.load());
    simple_lock(&b.lock);
    bool dangling = false;
    for (const auto& e : b.entries) {
      if (e.map == &as.physical_map() && e.va == base) dangling = true;
    }
    simple_unlock(&b.lock);
    EXPECT_FALSE(dangling);
    stop.store(true);
    cpu1->join();
  }
  machine::instance().configure(0);
}

TEST_F(aspace_fixture, AccessOnTerminatedObjectPropagatesError) {
  std::uint64_t base = 0;
  address_space as(make_mapped(&base), pmaps);
  obj->terminate();
  EXPECT_EQ(as.access(-1, base, nullptr), KERN_TERMINATED);
}

TEST_F(aspace_fixture, ConcurrentAccessesAreCoherent) {
  std::uint64_t base = 0;
  address_space as(make_mapped(&base, 8), pmaps);
  std::atomic<bool> mismatch{false};
  std::vector<std::unique_ptr<kthread>> threads;
  std::array<std::atomic<std::uint64_t>, 8> seen{};
  for (auto& s : seen) s.store(0);
  for (int t = 0; t < 4; ++t) {
    threads.push_back(kthread::spawn("acc" + std::to_string(t), [&] {
      for (int i = 0; i < 400; ++i) {
        std::uint64_t va = base + static_cast<std::uint64_t>(i % 8) * vm_page_size;
        std::uint64_t pa = 0;
        if (as.access(-1, va, &pa) != KERN_SUCCESS) continue;
        std::uint64_t expected = 0;
        auto& slot = seen[static_cast<std::size_t>(i % 8)];
        if (!slot.compare_exchange_strong(expected, pa) && expected != pa) {
          mismatch.store(true);  // two PAs for one VA: incoherent
        }
      }
    }));
  }
  for (auto& t : threads) t->join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(obj->resident_count(), 8u);
}

}  // namespace
}  // namespace mach
