// Tests for kernel objects: reference counting, deactivation, ref_ptr
// (paper sections 8 and 9). The refcount policy suites run against every
// policy in kern/refcount.h (locked / atomic / lockref / striped), and the
// kobject/ref_ptr lifecycle suites are parameterized over the same set so
// the object protocol is exercised through each count implementation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kern/object.h"
#include "kern/refcount.h"
#include "tests/test_util.h"
#include "trace/ktrace.h"

namespace mach {
namespace {

// --- refcount policies ---

template <typename Policy>
class RefcountPolicyTest : public ::testing::Test {};

using Policies =
    ::testing::Types<locked_refcount, atomic_refcount, lockref_refcount, striped_refcount>;
TYPED_TEST_SUITE(RefcountPolicyTest, Policies);

TYPED_TEST(RefcountPolicyTest, StartsAtInitial) {
  TypeParam c(1);
  EXPECT_EQ(c.value(), 1);
}

TYPED_TEST(RefcountPolicyTest, AcquireReleaseBalance) {
  TypeParam c(1);
  c.acquire();
  c.acquire();
  EXPECT_EQ(c.value(), 3);
  EXPECT_FALSE(c.release());
  EXPECT_FALSE(c.release());
  EXPECT_TRUE(c.release());  // last one
}

TYPED_TEST(RefcountPolicyTest, OverReleaseIsFatal) {
  testing::panic_hook_scope hook;
  TypeParam c(1);
  EXPECT_TRUE(c.release());
  EXPECT_THROW((void)c.release(), panic_error);
}

TYPED_TEST(RefcountPolicyTest, CloneFromDeadIsFatal) {
  testing::panic_hook_scope hook;
  TypeParam c(1);
  EXPECT_TRUE(c.release());
  EXPECT_THROW(c.acquire(), panic_error);
}

TYPED_TEST(RefcountPolicyTest, ConcurrentCloneReleaseIsExact) {
  TypeParam c(1);
  constexpr int threads = 4;
  constexpr int iters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        c.acquire();
        EXPECT_FALSE(c.release());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), 1);
}

// While the embedded lock is held every lockref op must fall back to the
// locked path and still be exact (the lockref contract: the lock bit makes
// the holder the owner of the count).
TEST(LockrefRefcount, OpsFallBackWhileLockIsHeld) {
  lockref_refcount c(1);
  c.lock();
  std::thread other([&] {
    c.acquire();  // must wait on the embedded lock, then succeed
    EXPECT_FALSE(c.release());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  c.unlock();
  other.join();
  EXPECT_EQ(c.value(), 1);
  EXPECT_TRUE(c.try_lock());
  c.unlock();
}

// Cross-thread release: references acquired on one thread (slot) and
// released on others must still produce exactly one release()==true —
// the striped reconcile path, not the per-slot fast path.
TEST(StripedRefcount, CrossThreadReleasesAreExact) {
  striped_refcount c(1);
  constexpr int extra = 64;
  for (int i = 0; i < extra; ++i) c.acquire();  // all on this thread's slot
  std::atomic<int> last_seen{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < extra / 4; ++i) {
        if (c.release()) last_seen.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(last_seen.load(), 0);  // the creation reference survives
  EXPECT_EQ(c.value(), 1);
  EXPECT_TRUE(c.release());
}

// --- trace regression (the locked policy's ordering guarantee) ---
//
// locked_refcount::release once emitted its trace record AFTER dropping
// the lock, with an inexact arg2 (`last ? 0 : 1`): a delayed non-final
// release could then sequence its record after the destruction record,
// and intermediate counts were unobservable. The fix emits the exact
// remaining count while the lock is still held; these tests pin both the
// exact counts and the ordering down.

class refcount_trace_fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ktrace::disable();
    ktrace::reset();
  }
  void TearDown() override {
    ktrace::disable();
    ktrace::reset();
  }

  static std::vector<std::uint64_t> release_args_for(std::uint64_t addr) {
    std::vector<std::uint64_t> args;
    for (const auto& e : ktrace::collect().events) {
      if (e.rec.kind == trace_kind::ref_release && e.rec.arg1 == addr) {
        args.push_back(e.rec.arg2);
      }
    }
    return args;
  }
};

TEST_F(refcount_trace_fixture, LockedReleaseEmitsExactRemainingCount) {
  locked_refcount c(3);
  ktrace::enable();
  EXPECT_FALSE(c.release());
  EXPECT_FALSE(c.release());
  EXPECT_TRUE(c.release());
  ktrace::disable();
  // The pre-fix code emitted {1, 1, 0}: only last-ness, not the count.
  std::vector<std::uint64_t> expected{2, 1, 0};
  EXPECT_EQ(release_args_for(reinterpret_cast<std::uint64_t>(&c)), expected);
}

TEST_F(refcount_trace_fixture, LockedDestroyRecordIsSequencedLast) {
  constexpr int threads = 4;
  constexpr int per_thread = 50;
  locked_refcount c(threads * per_thread);  // main owns every reference
  ktrace::enable();
  std::atomic<int> lasts{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < per_thread; ++i) {
        if (c.release()) lasts.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  ktrace::disable();
  EXPECT_EQ(lasts.load(), 1);
  // collect() merges rings time-ordered; each record was stamped inside
  // the critical section, so record order must equal count order: a full
  // descending sequence ending in the (unique) destruction record.
  auto args = release_args_for(reinterpret_cast<std::uint64_t>(&c));
  ASSERT_EQ(args.size(), static_cast<std::size_t>(threads * per_thread));
  for (std::size_t i = 0; i < args.size(); ++i) {
    EXPECT_EQ(args[i], args.size() - 1 - i) << "record " << i << " out of order";
  }
  EXPECT_EQ(args.back(), 0u);
}

// Every policy, driven through kobject: destruction must emit exactly one
// ref_release record with arg2 == 0 (the "destroyed" marker), and no
// record for the object may follow it. (Records carry the count word's
// address, which kobject does not expose; the per-iteration reset makes
// this object's records the only ones in the rings.)
TEST_F(refcount_trace_fixture, EveryPolicyEmitsDestroyMarkerExactlyOnce) {
  for (refcount_policy p : kRefcountPolicies) {
    ktrace::reset();
    struct traced : kobject {
      explicit traced(refcount_policy pol) : kobject("traced", pol) {}
    };
    ktrace::enable();
    auto o = make_object<traced>(p);
    o->ref_clone();
    o->ref_release();
    o.reset();  // destroys
    ktrace::disable();
    std::vector<std::uint64_t> args;
    for (const auto& e : ktrace::collect().events) {
      if (e.rec.kind == trace_kind::ref_release) args.push_back(e.rec.arg2);
    }
    ASSERT_GE(args.size(), 2u) << refcount_policy_name(p);
    EXPECT_EQ(args.back(), 0u) << refcount_policy_name(p);
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
      EXPECT_NE(args[i], 0u) << refcount_policy_name(p) << " record " << i;
    }
  }
}

// --- kobject (parameterized over every count policy) ---

struct test_object : kobject {
  explicit test_object(refcount_policy p = default_refcount_policy(),
                       std::atomic<int>* destroyed = nullptr)
      : kobject("test-object", p), destroyed_flag(destroyed) {}
  ~test_object() override {
    if (destroyed_flag != nullptr) destroyed_flag->fetch_add(1);
  }
  std::atomic<int>* destroyed_flag;
  int payload = 42;
};

class KObjectPolicy : public ::testing::TestWithParam<refcount_policy> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, KObjectPolicy, ::testing::ValuesIn(kRefcountPolicies),
                         [](const ::testing::TestParamInfo<refcount_policy>& info) {
                           return refcount_policy_name(info.param);
                         });

TEST_P(KObjectPolicy, CreationReferenceAndDestruction) {
  std::atomic<int> destroyed{0};
  auto* o = new test_object(GetParam(), &destroyed);
  EXPECT_EQ(o->ref_policy(), GetParam());
  EXPECT_EQ(o->ref_count(), 1);
  o->ref_release();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST_P(KObjectPolicy, CloneKeepsAlive) {
  std::atomic<int> destroyed{0};
  auto* o = new test_object(GetParam(), &destroyed);
  o->ref_clone();
  o->ref_release();
  EXPECT_EQ(destroyed.load(), 0);
  o->ref_release();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST_P(KObjectPolicy, CloneLockedRequiresLock) {
  testing::panic_hook_scope hook;
  auto* o = new test_object(GetParam());
  EXPECT_THROW(o->ref_clone_locked(), panic_error);
  o->lock();
  o->ref_clone_locked();
  o->unlock();
  o->ref_release();
  o->ref_release();
}

TEST_P(KObjectPolicy, ReleaseWhileHoldingSimpleLockIsFatalOnlyForLast) {
  testing::panic_hook_scope hook;
  auto* o = new test_object(GetParam());
  o->ref_clone();
  simple_lock_data_t l;
  simple_lock_init(&l, "held");
  simple_lock(&l);
  // Non-final release is fine (no destruction → no blocking).
  EXPECT_NO_THROW(o->ref_release());
  // Final release would destroy (may block): fatal under a simple lock.
  EXPECT_THROW(o->ref_release(), panic_error);
  simple_unlock(&l);
  // The count already dropped before the panic fired; recreate cleanly.
  // (In production the panic halts the kernel, so no recovery is defined;
  // here we just stop touching the object.)
}

TEST_P(KObjectPolicy, DeactivationProtocol) {
  auto o = make_object<test_object>(GetParam());
  o->lock();
  EXPECT_TRUE(o->active());
  o->unlock();
  EXPECT_TRUE(o->deactivate());   // we did it
  EXPECT_FALSE(o->deactivate());  // idempotent: already dead
  o->lock();
  EXPECT_FALSE(o->active());
  o->unlock();
  // Data structure survives deactivation while references exist.
  EXPECT_EQ(o->payload, 42);
}

// Sticky references (section 8): a deactivated object's count keeps
// working — clones of still-held references succeed on every policy, and
// destruction happens only when the count reaches zero.
TEST_P(KObjectPolicy, StickyReferencesSurviveDeactivation) {
  std::atomic<int> destroyed{0};
  auto o = make_object<test_object>(GetParam(), &destroyed);
  EXPECT_TRUE(o->deactivate());
  o->ref_clone();  // clone of a held reference on a DEAD object: legal
  EXPECT_EQ(o->ref_count(), 2);
  o->ref_release();
  EXPECT_EQ(destroyed.load(), 0);
  o.reset();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST_P(KObjectPolicy, ActiveCheckWithoutLockIsFatal) {
  testing::panic_hook_scope hook;
  auto o = make_object<test_object>(GetParam());
  EXPECT_THROW((void)o->active(), panic_error);
}

TEST_P(KObjectPolicy, LiveObjectCounter) {
  std::uint64_t base = kobject::live_objects();
  {
    auto a = make_object<test_object>(GetParam());
    auto b = make_object<test_object>(GetParam());
    EXPECT_EQ(kobject::live_objects(), base + 2);
  }
  EXPECT_EQ(kobject::live_objects(), base);
}

TEST_P(KObjectPolicy, OnLastReferenceHookRuns) {
  struct hooked : kobject {
    hooked(refcount_policy p, std::atomic<int>* c) : kobject("hooked", p), counter(c) {}
    void on_last_reference() override { counter->fetch_add(1); }
    std::atomic<int>* counter;
  };
  std::atomic<int> hook_runs{0};
  auto o = make_object<hooked>(GetParam(), &hook_runs);
  o.reset();
  EXPECT_EQ(hook_runs.load(), 1);
}

// --- ref_ptr (parameterized over every count policy) ---

class RefPtrPolicy : public ::testing::TestWithParam<refcount_policy> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, RefPtrPolicy, ::testing::ValuesIn(kRefcountPolicies),
                         [](const ::testing::TestParamInfo<refcount_policy>& info) {
                           return refcount_policy_name(info.param);
                         });

TEST_P(RefPtrPolicy, AdoptDoesNotClone) {
  auto* raw = new test_object(GetParam());
  auto p = ref_ptr<test_object>::adopt(raw);
  EXPECT_EQ(p->ref_count(), 1);
}

TEST_P(RefPtrPolicy, CopyClones) {
  std::atomic<int> destroyed{0};
  {
    auto a = make_object<test_object>(GetParam(), &destroyed);
    {
      ref_ptr<test_object> b = a;
      EXPECT_EQ(a->ref_count(), 2);
    }
    EXPECT_EQ(a->ref_count(), 1);
  }
  EXPECT_EQ(destroyed.load(), 1);
}

TEST_P(RefPtrPolicy, MoveSteals) {
  auto a = make_object<test_object>(GetParam());
  test_object* raw = a.get();
  ref_ptr<test_object> b = std::move(a);
  EXPECT_EQ(b.get(), raw);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_EQ(b->ref_count(), 1);
}

TEST_P(RefPtrPolicy, AssignmentReleasesOld) {
  std::atomic<int> d1{0}, d2{0};
  auto a = make_object<test_object>(GetParam(), &d1);
  auto b = make_object<test_object>(GetParam(), &d2);
  a = b;
  EXPECT_EQ(d1.load(), 1);
  EXPECT_EQ(b->ref_count(), 2);
}

TEST_P(RefPtrPolicy, SelfAssignmentSafe) {
  auto a = make_object<test_object>(GetParam());
  auto& alias = a;
  a = alias;
  EXPECT_TRUE(a);
  EXPECT_EQ(a->ref_count(), 1);
}

TEST_P(RefPtrPolicy, CloneFromRaw) {
  auto a = make_object<test_object>(GetParam());
  auto b = ref_ptr<test_object>::clone_from(a.get());
  EXPECT_EQ(a->ref_count(), 2);
}

TEST_P(RefPtrPolicy, ReleaseToCallerHandsOffReference) {
  std::atomic<int> destroyed{0};
  auto a = make_object<test_object>(GetParam(), &destroyed);
  test_object* raw = a.release_to_caller();
  EXPECT_FALSE(a);
  EXPECT_EQ(destroyed.load(), 0);
  raw->ref_release();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST_P(RefPtrPolicy, ConcurrentCopiesAreSafe) {
  auto a = make_object<test_object>(GetParam());
  constexpr int threads = 4;
  constexpr int iters = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        ref_ptr<test_object> local = a;  // clone
        EXPECT_EQ(local->payload, 42);
      }  // release
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(a->ref_count(), 1);
}

}  // namespace
}  // namespace mach
