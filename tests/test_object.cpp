// Tests for kernel objects: reference counting, deactivation, ref_ptr
// (paper sections 8 and 9).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kern/object.h"
#include "kern/refcount.h"
#include "tests/test_util.h"

namespace mach {
namespace {

// --- refcount policies ---

template <typename Policy>
class RefcountPolicyTest : public ::testing::Test {};

using Policies = ::testing::Types<locked_refcount, atomic_refcount>;
TYPED_TEST_SUITE(RefcountPolicyTest, Policies);

TYPED_TEST(RefcountPolicyTest, StartsAtInitial) {
  TypeParam c(1);
  EXPECT_EQ(c.value(), 1);
}

TYPED_TEST(RefcountPolicyTest, AcquireReleaseBalance) {
  TypeParam c(1);
  c.acquire();
  c.acquire();
  EXPECT_EQ(c.value(), 3);
  EXPECT_FALSE(c.release());
  EXPECT_FALSE(c.release());
  EXPECT_TRUE(c.release());  // last one
}

TYPED_TEST(RefcountPolicyTest, OverReleaseIsFatal) {
  testing::panic_hook_scope hook;
  TypeParam c(1);
  EXPECT_TRUE(c.release());
  EXPECT_THROW((void)c.release(), panic_error);
}

TYPED_TEST(RefcountPolicyTest, CloneFromDeadIsFatal) {
  testing::panic_hook_scope hook;
  TypeParam c(1);
  EXPECT_TRUE(c.release());
  EXPECT_THROW(c.acquire(), panic_error);
}

TYPED_TEST(RefcountPolicyTest, ConcurrentCloneReleaseIsExact) {
  TypeParam c(1);
  constexpr int threads = 4;
  constexpr int iters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        c.acquire();
        EXPECT_FALSE(c.release());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), 1);
}

// --- kobject ---

struct test_object : kobject {
  explicit test_object(std::atomic<int>* destroyed = nullptr)
      : kobject("test-object"), destroyed_flag(destroyed) {}
  ~test_object() override {
    if (destroyed_flag != nullptr) destroyed_flag->fetch_add(1);
  }
  std::atomic<int>* destroyed_flag;
  int payload = 42;
};

TEST(KObject, CreationReferenceAndDestruction) {
  std::atomic<int> destroyed{0};
  auto* o = new test_object(&destroyed);
  EXPECT_EQ(o->ref_count(), 1);
  o->ref_release();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(KObject, CloneKeepsAlive) {
  std::atomic<int> destroyed{0};
  auto* o = new test_object(&destroyed);
  o->ref_clone();
  o->ref_release();
  EXPECT_EQ(destroyed.load(), 0);
  o->ref_release();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(KObject, CloneLockedRequiresLock) {
  testing::panic_hook_scope hook;
  auto* o = new test_object();
  EXPECT_THROW(o->ref_clone_locked(), panic_error);
  o->lock();
  o->ref_clone_locked();
  o->unlock();
  o->ref_release();
  o->ref_release();
}

TEST(KObject, ReleaseWhileHoldingSimpleLockIsFatalOnlyForLast) {
  testing::panic_hook_scope hook;
  auto* o = new test_object();
  o->ref_clone();
  simple_lock_data_t l;
  simple_lock_init(&l, "held");
  simple_lock(&l);
  // Non-final release is fine (no destruction → no blocking).
  EXPECT_NO_THROW(o->ref_release());
  // Final release would destroy (may block): fatal under a simple lock.
  EXPECT_THROW(o->ref_release(), panic_error);
  simple_unlock(&l);
  // The count already dropped before the panic fired; recreate cleanly.
  // (In production the panic halts the kernel, so no recovery is defined;
  // here we just stop touching the object.)
}

TEST(KObject, DeactivationProtocol) {
  auto o = make_object<test_object>();
  o->lock();
  EXPECT_TRUE(o->active());
  o->unlock();
  EXPECT_TRUE(o->deactivate());   // we did it
  EXPECT_FALSE(o->deactivate());  // idempotent: already dead
  o->lock();
  EXPECT_FALSE(o->active());
  o->unlock();
  // Data structure survives deactivation while references exist.
  EXPECT_EQ(o->payload, 42);
}

TEST(KObject, ActiveCheckWithoutLockIsFatal) {
  testing::panic_hook_scope hook;
  auto o = make_object<test_object>();
  EXPECT_THROW((void)o->active(), panic_error);
}

TEST(KObject, LiveObjectCounter) {
  std::uint64_t base = kobject::live_objects();
  {
    auto a = make_object<test_object>();
    auto b = make_object<test_object>();
    EXPECT_EQ(kobject::live_objects(), base + 2);
  }
  EXPECT_EQ(kobject::live_objects(), base);
}

TEST(KObject, OnLastReferenceHookRuns) {
  struct hooked : kobject {
    explicit hooked(std::atomic<int>* c) : kobject("hooked"), counter(c) {}
    void on_last_reference() override { counter->fetch_add(1); }
    std::atomic<int>* counter;
  };
  std::atomic<int> hook_runs{0};
  auto o = make_object<hooked>(&hook_runs);
  o.reset();
  EXPECT_EQ(hook_runs.load(), 1);
}

// --- ref_ptr ---

TEST(RefPtr, AdoptDoesNotClone) {
  auto* raw = new test_object();
  auto p = ref_ptr<test_object>::adopt(raw);
  EXPECT_EQ(p->ref_count(), 1);
}

TEST(RefPtr, CopyClones) {
  std::atomic<int> destroyed{0};
  {
    auto a = make_object<test_object>(&destroyed);
    {
      ref_ptr<test_object> b = a;
      EXPECT_EQ(a->ref_count(), 2);
    }
    EXPECT_EQ(a->ref_count(), 1);
  }
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(RefPtr, MoveSteals) {
  auto a = make_object<test_object>();
  test_object* raw = a.get();
  ref_ptr<test_object> b = std::move(a);
  EXPECT_EQ(b.get(), raw);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_EQ(b->ref_count(), 1);
}

TEST(RefPtr, AssignmentReleasesOld) {
  std::atomic<int> d1{0}, d2{0};
  auto a = make_object<test_object>(&d1);
  auto b = make_object<test_object>(&d2);
  a = b;
  EXPECT_EQ(d1.load(), 1);
  EXPECT_EQ(b->ref_count(), 2);
}

TEST(RefPtr, SelfAssignmentSafe) {
  auto a = make_object<test_object>();
  auto& alias = a;
  a = alias;
  EXPECT_TRUE(a);
  EXPECT_EQ(a->ref_count(), 1);
}

TEST(RefPtr, CloneFromRaw) {
  auto a = make_object<test_object>();
  auto b = ref_ptr<test_object>::clone_from(a.get());
  EXPECT_EQ(a->ref_count(), 2);
}

TEST(RefPtr, ReleaseToCallerHandsOffReference) {
  std::atomic<int> destroyed{0};
  auto a = make_object<test_object>(&destroyed);
  test_object* raw = a.release_to_caller();
  EXPECT_FALSE(a);
  EXPECT_EQ(destroyed.load(), 0);
  raw->ref_release();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(RefPtr, ConcurrentCopiesAreSafe) {
  auto a = make_object<test_object>();
  constexpr int threads = 4;
  constexpr int iters = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        ref_ptr<test_object> local = a;  // clone
        EXPECT_EQ(local->payload, 42);
      }  // release
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(a->ref_count(), 1);
}

}  // namespace
}  // namespace mach
