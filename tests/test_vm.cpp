// Tests for the VM subsystem: memory objects (dual counts, pager ports,
// customized lock), maps, faults, and both vm_map_pageable variants —
// including the section 7.1 recursive-lock deadlock, detected and named.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "sched/kthread.h"
#include "sync/deadlock.h"
#include "tests/test_util.h"
#include "vm/vm_map.h"
#include "vm/vm_pageable.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

struct vm_fixture : ::testing::Test {
  vm_fixture() : pages("test-pages", 64) {}
  object_zone<vm_page> pages;
};

TEST_F(vm_fixture, PageRequestMakesResident) {
  auto obj = make_object<memory_object>(pages);
  vm_page* p = nullptr;
  EXPECT_EQ(obj->page_request(0, &p), KERN_SUCCESS);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->object, obj.get());
  EXPECT_EQ(obj->resident_count(), 1u);
  // Second request for the same page hits the resident copy.
  vm_page* q = nullptr;
  EXPECT_EQ(obj->page_request(0, &q), KERN_SUCCESS);
  EXPECT_EQ(p, q);
  EXPECT_EQ(obj->resident_count(), 1u);
}

TEST_F(vm_fixture, PageOffsetsRoundToPages) {
  auto obj = make_object<memory_object>(pages);
  vm_page* a = nullptr;
  vm_page* b = nullptr;
  EXPECT_EQ(obj->page_request(100, &a), KERN_SUCCESS);
  EXPECT_EQ(obj->page_request(vm_page_size - 1, &b), KERN_SUCCESS);
  EXPECT_EQ(a, b);  // same page
}

TEST_F(vm_fixture, ConcurrentFaultsOnSameOffsetPageInOnce) {
  auto obj = make_object<memory_object>(pages, 5ms);
  std::atomic<int> successes{0};
  std::vector<std::unique_ptr<kthread>> workers;
  for (int i = 0; i < 4; ++i) {
    workers.push_back(kthread::spawn("fault" + std::to_string(i), [&] {
      vm_page* p = nullptr;
      if (obj->page_request(0, &p) == KERN_SUCCESS) successes.fetch_add(1);
    }));
  }
  for (auto& w : workers) w->join();
  EXPECT_EQ(successes.load(), 4);
  EXPECT_EQ(obj->resident_count(), 1u);
  EXPECT_EQ(pages.raw().in_use(), 1u);  // exactly one physical page used
}

TEST_F(vm_fixture, PagingCountExcludesTermination) {
  // The hybrid count of section 8: termination waits for paging to drain.
  auto obj = make_object<memory_object>(pages, 50ms);
  std::atomic<bool> fault_done{false};
  auto faulter = kthread::spawn("faulter", [&] {
    vm_page* p = nullptr;
    obj->page_request(0, &p);
    fault_done.store(true);
  });
  // Wait until the fault is inside the pager (paging count raised).
  while (obj->paging_in_progress() == 0 && !fault_done.load()) std::this_thread::yield();
  std::atomic<bool> terminated{false};
  auto terminator = kthread::spawn("terminator", [&] {
    obj->terminate();
    terminated.store(true);
  });
  std::this_thread::sleep_for(5ms);
  EXPECT_FALSE(terminated.load()) << "terminate proceeded while paging in progress";
  faulter->join();
  terminator->join();
  EXPECT_TRUE(fault_done.load());
  EXPECT_TRUE(terminated.load());
}

TEST_F(vm_fixture, TerminateFreesResidentPages) {
  auto obj = make_object<memory_object>(pages);
  vm_page* p = nullptr;
  obj->page_request(0, &p);
  obj->page_request(vm_page_size, &p);
  EXPECT_EQ(pages.raw().in_use(), 2u);
  EXPECT_EQ(obj->terminate(), KERN_SUCCESS);
  EXPECT_EQ(pages.raw().in_use(), 0u);
  EXPECT_EQ(obj->terminate(), KERN_TERMINATED);  // idempotent failure
}

TEST_F(vm_fixture, PageRequestOnDeadObjectFails) {
  auto obj = make_object<memory_object>(pages);
  obj->terminate();
  vm_page* p = nullptr;
  EXPECT_EQ(obj->page_request(0, &p), KERN_TERMINATED);
}

TEST_F(vm_fixture, EvictRespectsWiring) {
  auto obj = make_object<memory_object>(pages);
  vm_page* p = nullptr;
  obj->page_request(0, &p);
  obj->wire_page(p);
  EXPECT_FALSE(obj->evict_one());  // only a wired page resident
  obj->unwire_page(p);
  EXPECT_TRUE(obj->evict_one());
  EXPECT_EQ(obj->resident_count(), 0u);
}

TEST_F(vm_fixture, PagerPortsCreatedExactlyOnce) {
  auto obj = make_object<memory_object>(pages);
  EXPECT_FALSE(obj->ports_created());
  std::atomic<int> distinct{0};
  port* seen = nullptr;
  std::vector<std::unique_ptr<kthread>> workers;
  std::atomic<port*> first{nullptr};
  for (int i = 0; i < 4; ++i) {
    workers.push_back(kthread::spawn("ports" + std::to_string(i), [&] {
      auto p = obj->pager_port();
      port* expected = nullptr;
      if (!first.compare_exchange_strong(expected, p.get()) && expected != p.get()) {
        distinct.fetch_add(1);
      }
    }));
  }
  for (auto& w : workers) w->join();
  EXPECT_EQ(distinct.load(), 0) << "pager port created more than once";
  EXPECT_TRUE(obj->ports_created());
  // All three ports exist and are distinct objects.
  EXPECT_NE(obj->pager_port().get(), obj->pager_request_port().get());
  EXPECT_NE(obj->pager_port().get(), obj->id_port().get());
  (void)seen;
}

// --- vm_map ---

TEST_F(vm_fixture, MapEnterLookupRemove) {
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t addr = 0;
  ASSERT_EQ(map->enter(obj, 0, 4 * vm_page_size, &addr), KERN_SUCCESS);
  EXPECT_EQ(map->entry_count(), 1u);
  EXPECT_EQ(obj->ref_count(), 2);  // ours + the entry's
  {
    read_lock_guard g(map->map_lock());
    vm_map_entry* e = map->lookup_locked(addr + vm_page_size);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->object.get(), obj.get());
    EXPECT_EQ(map->lookup_locked(addr + 4 * vm_page_size), nullptr);
  }
  EXPECT_EQ(map->remove(addr, 4 * vm_page_size), KERN_SUCCESS);
  EXPECT_EQ(obj->ref_count(), 1);
}

TEST_F(vm_fixture, MapRejectsUnalignedEnter) {
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t addr = 0;
  EXPECT_EQ(map->enter(obj, 0, 100, &addr), KERN_FAILURE);
  EXPECT_EQ(map->enter(obj, 3, vm_page_size, &addr), KERN_FAILURE);
  EXPECT_EQ(map->enter(obj, 0, 0, &addr), KERN_FAILURE);
}

TEST_F(vm_fixture, FaultPagesInThroughTheMap) {
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t addr = 0;
  ASSERT_EQ(map->enter(obj, 0, 2 * vm_page_size, &addr), KERN_SUCCESS);
  std::uint64_t pa = 0;
  EXPECT_EQ(vm_fault(*map, addr, &pa), KERN_SUCCESS);
  EXPECT_NE(pa, 0u);
  EXPECT_EQ(obj->resident_count(), 1u);
  // Unmapped address faults fail.
  EXPECT_EQ(vm_fault(*map, addr + 16 * vm_page_size, &pa), KERN_FAILURE);
}

TEST_F(vm_fixture, FaultHookReportsMapping) {
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t addr = 0;
  ASSERT_EQ(map->enter(obj, 0, vm_page_size, &addr), KERN_SUCCESS);
  std::uint64_t seen_va = 0, seen_pa = 0;
  map->on_mapping_installed = [&](std::uint64_t va, std::uint64_t pa) {
    seen_va = va;
    seen_pa = pa;
  };
  ASSERT_EQ(vm_fault(*map, addr, nullptr), KERN_SUCCESS);
  EXPECT_EQ(seen_va, addr);
  EXPECT_NE(seen_pa, 0u);
}

TEST_F(vm_fixture, ConcurrentReadFaultsProceedInParallel) {
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages, 20ms);
  std::uint64_t addr = 0;
  ASSERT_EQ(map->enter(obj, 0, 8 * vm_page_size, &addr), KERN_SUCCESS);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<kthread>> workers;
  for (int i = 0; i < 4; ++i) {
    workers.push_back(kthread::spawn(std::string("f") += std::to_string(i), [&, i] {
      EXPECT_EQ(vm_fault(*map, addr + static_cast<std::uint64_t>(i) * vm_page_size, nullptr),
                KERN_SUCCESS);
    }));
  }
  for (auto& w : workers) w->join();
  auto elapsed = std::chrono::steady_clock::now() - start;
  // Serialized faults would take >= 80ms; parallel read locks overlap the
  // 20ms pager waits.
  EXPECT_LT(elapsed, 70ms) << "read faults appear serialized";
  EXPECT_EQ(obj->resident_count(), 4u);
}

// --- vm_map_pageable (section 7.1) ---

class PageableVariantTest : public ::testing::TestWithParam<bool> {
 protected:
  kern_return_t run_pageable(vm_map& m, std::uint64_t s, std::uint64_t sz, bool wire) {
    return GetParam() ? vm_map_pageable_legacy(m, s, sz, wire)
                      : vm_map_pageable(m, s, sz, wire);
  }
};

TEST_P(PageableVariantTest, WiresAndUnwiresPages) {
  object_zone<vm_page> pages("pageable-pages", 64);
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t addr = 0;
  ASSERT_EQ(map->enter(obj, 0, 4 * vm_page_size, &addr), KERN_SUCCESS);
  ASSERT_EQ(run_pageable(*map, addr, 4 * vm_page_size, true), KERN_SUCCESS);
  EXPECT_EQ(obj->resident_count(), 4u);
  EXPECT_FALSE(obj->evict_one()) << "wired pages must not be evictable";
  ASSERT_EQ(run_pageable(*map, addr, 4 * vm_page_size, false), KERN_SUCCESS);
  EXPECT_TRUE(obj->evict_one());
}

TEST_P(PageableVariantTest, FailsOnUnmappedRange) {
  object_zone<vm_page> pages("pageable-pages2", 8);
  auto map = make_object<vm_map>();
  EXPECT_EQ(run_pageable(*map, 0x100000, vm_page_size, true), KERN_FAILURE);
}

INSTANTIATE_TEST_SUITE_P(Variants, PageableVariantTest, ::testing::Values(true, false),
                         [](const auto& info) { return info.param ? "legacy" : "rewritten"; });

// The E6 scenario as a test: under memory shortage, the legacy recursive
// path deadlocks against a same-map reclaimer (detected, then resolved by
// raising capacity); the rewritten path completes because the reclaimer
// can take the write lock.
struct pageable_deadlock_fixture : ::testing::Test {
  pageable_deadlock_fixture() : pages("shortage-pages", 6) {}

  void build_map() {
    map = make_object<vm_map>();
    cold = make_object<memory_object>(pages);
    hot = make_object<memory_object>(pages);
    ASSERT_EQ(map->enter(cold, 0, 4 * vm_page_size, &cold_addr), KERN_SUCCESS);
    ASSERT_EQ(map->enter(hot, 0, 4 * vm_page_size, &hot_addr), KERN_SUCCESS);
    // Fill the zone with cold, unwired, evictable pages: 4 of 6 slots.
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(vm_fault(*map, cold_addr + static_cast<std::uint64_t>(i) * vm_page_size, nullptr),
                KERN_SUCCESS);
    }
    ASSERT_EQ(pages.raw().in_use(), 4u);
  }

  object_zone<vm_page> pages;
  ref_ptr<vm_map> map;
  ref_ptr<memory_object> cold, hot;
  std::uint64_t cold_addr = 0, hot_addr = 0;
};

TEST_F(pageable_deadlock_fixture, LegacyRecursivePathDeadlocks) {
  deadlock_tracing_scope tracing;
  build_map();
  // Wiring 4 hot pages needs 4 free slots; only 2 exist. The wiring thread
  // will block inside a fault holding the recursive read lock.
  std::atomic<bool> wire_done{false};
  auto wirer = kthread::spawn("vm_map_pageable", [&] {
    EXPECT_EQ(vm_map_pageable_legacy(*map, hot_addr, 4 * vm_page_size, true), KERN_SUCCESS);
    wire_done.store(true);
  });
  // The reclaimer needs the map write lock to evict cold pages — and
  // cannot get it: the deadlock of section 7.1.
  std::atomic<bool> reclaim_done{false};
  auto reclaimer = kthread::spawn("reclaimer", [&] {
    vm_map_reclaim(*map, pages.raw(), 4);
    reclaim_done.store(true);
  });
  auto cycle = wait_graph::instance().wait_for_cycle(5000);
  ASSERT_TRUE(cycle.has_value()) << "expected the sec. 7.1 deadlock cycle";
  EXPECT_FALSE(wire_done.load());
  EXPECT_FALSE(reclaim_done.load());
  // Operator intervention: add physical memory. The wiring completes, the
  // reclaimer gets its write lock, everything drains.
  pages.raw().set_max(16);
  wirer->join();
  reclaimer->join();
  EXPECT_TRUE(wire_done.load());
  EXPECT_TRUE(reclaim_done.load());
}

TEST_F(pageable_deadlock_fixture, RewrittenPathSurvivesShortage) {
  deadlock_tracing_scope tracing;
  build_map();
  std::atomic<bool> wire_done{false};
  auto wirer = kthread::spawn("vm_map_pageable", [&] {
    EXPECT_EQ(vm_map_pageable(*map, hot_addr, 4 * vm_page_size, true), KERN_SUCCESS);
    wire_done.store(true);
  });
  // Give the wirer time to hit the shortage, then reclaim: the write lock
  // is obtainable because the rewritten path dropped the map lock.
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(vm_map_reclaim(*map, pages.raw(), 4), KERN_SUCCESS);
  wirer->join();
  EXPECT_TRUE(wire_done.load());
  EXPECT_FALSE(wait_graph::instance().find_cycle().has_value());
}

// --- page contents and the backing store ---

TEST_F(vm_fixture, FirstTouchPagesAreZeroFilled) {
  auto obj = make_object<memory_object>(pages);
  vm_page* p = nullptr;
  ASSERT_EQ(obj->page_request(0, &p), KERN_SUCCESS);
  for (std::uint8_t byte : p->data) EXPECT_EQ(byte, 0);
}

TEST_F(vm_fixture, ContentsSurviveEvictionAndRefault) {
  auto obj = make_object<memory_object>(pages);
  vm_page* p = nullptr;
  ASSERT_EQ(obj->page_request(0, &p), KERN_SUCCESS);
  for (std::size_t i = 0; i < vm_page_data_size; ++i) {
    p->data[i] = static_cast<std::uint8_t>(i * 3 + 1);
  }
  std::uint64_t pa_before = p->pa();
  ASSERT_TRUE(obj->evict_one());  // pages out to the backing store
  EXPECT_EQ(obj->resident_count(), 0u);
  EXPECT_EQ(obj->backing_count(), 1u);
  vm_page* q = nullptr;
  ASSERT_EQ(obj->page_request(0, &q), KERN_SUCCESS);  // pages back in
  EXPECT_EQ(obj->backing_count(), 0u);
  for (std::size_t i = 0; i < vm_page_data_size; ++i) {
    EXPECT_EQ(q->data[i], static_cast<std::uint8_t>(i * 3 + 1)) << "byte " << i;
  }
  (void)pa_before;  // the physical frame may differ; the contents must not
}

TEST_F(vm_fixture, DistinctPagesKeepDistinctContents) {
  auto obj = make_object<memory_object>(pages);
  for (int n = 0; n < 4; ++n) {
    vm_page* p = nullptr;
    ASSERT_EQ(obj->page_request(static_cast<std::uint64_t>(n) * vm_page_size, &p), KERN_SUCCESS);
    p->data[0] = static_cast<std::uint8_t>(0xA0 + n);
  }
  while (obj->evict_one()) {
  }
  EXPECT_EQ(obj->backing_count(), 4u);
  for (int n = 0; n < 4; ++n) {
    vm_page* p = nullptr;
    ASSERT_EQ(obj->page_request(static_cast<std::uint64_t>(n) * vm_page_size, &p), KERN_SUCCESS);
    EXPECT_EQ(p->data[0], static_cast<std::uint8_t>(0xA0 + n)) << "page " << n;
  }
}

TEST_F(vm_fixture, ReclaimPreservesContentsAcrossMaps) {
  // End to end: write through a map's fault path, have vm_map_reclaim
  // evict everything, refault, and find the data intact.
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t base = 0;
  ASSERT_EQ(map->enter(obj, 0, 2 * vm_page_size, &base), KERN_SUCCESS);
  for (int n = 0; n < 2; ++n) {
    std::uint64_t va = base + static_cast<std::uint64_t>(n) * vm_page_size;
    ASSERT_EQ(vm_fault(*map, va, nullptr), KERN_SUCCESS);
    obj->lock();
    vm_page* p = obj->page_lookup_locked(static_cast<std::uint64_t>(n) * vm_page_size);
    ASSERT_NE(p, nullptr);
    p->data[7] = static_cast<std::uint8_t>(n + 1);
    obj->unlock();
  }
  ASSERT_EQ(vm_map_reclaim(*map, pages.raw(), 2), KERN_SUCCESS);
  EXPECT_EQ(obj->resident_count(), 0u);
  for (int n = 0; n < 2; ++n) {
    std::uint64_t va = base + static_cast<std::uint64_t>(n) * vm_page_size;
    ASSERT_EQ(vm_fault(*map, va, nullptr), KERN_SUCCESS);
    obj->lock();
    vm_page* p = obj->page_lookup_locked(static_cast<std::uint64_t>(n) * vm_page_size);
    EXPECT_EQ(p->data[7], static_cast<std::uint8_t>(n + 1));
    obj->unlock();
  }
}

}  // namespace
}  // namespace mach
