// Tests for tasks and threads: the two-lock layout (section 5), thread
// lifecycle, and deactivation semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "kern/task.h"
#include "sched/kthread.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

TEST(Task, SuspendResumeCounts) {
  auto t = make_object<task>();
  EXPECT_EQ(t->suspend_count(), 0);
  EXPECT_EQ(t->suspend(), KERN_SUCCESS);
  EXPECT_EQ(t->suspend(), KERN_SUCCESS);
  EXPECT_EQ(t->suspend_count(), 2);
  EXPECT_EQ(t->resume(), KERN_SUCCESS);
  EXPECT_EQ(t->resume(), KERN_SUCCESS);
  EXPECT_EQ(t->resume(), KERN_FAILURE);  // below zero
}

TEST(Task, OpsFailAfterDeactivation) {
  auto t = make_object<task>();
  t->deactivate();
  EXPECT_EQ(t->suspend(), KERN_TERMINATED);
  EXPECT_EQ(t->resume(), KERN_TERMINATED);
}

TEST(Task, CreateThreadLinksBothWays) {
  auto t = make_object<task>();
  auto th = t->create_thread();
  ASSERT_TRUE(th);
  EXPECT_EQ(t->thread_count(), 1u);
  EXPECT_EQ(th->owner().get(), t.get());
  // Task holds one ref to the thread; we hold one.
  EXPECT_EQ(th->ref_count(), 2);
}

TEST(Task, ThreadHoldsTaskAlive) {
  ref_ptr<thread_obj> th;
  {
    auto t = make_object<task>();
    th = t->create_thread();
  }
  // Task kept alive by the thread's counted back-pointer.
  auto owner = th->owner();
  ASSERT_TRUE(owner);
  EXPECT_EQ(owner->thread_count(), 1u);
}

TEST(Task, RemoveThreadReleasesTaskRef) {
  auto t = make_object<task>();
  auto th = t->create_thread();
  EXPECT_TRUE(t->remove_thread(th.get()));
  EXPECT_EQ(t->thread_count(), 0u);
  EXPECT_EQ(th->ref_count(), 1);
  EXPECT_FALSE(t->remove_thread(th.get()));
}

TEST(Task, CreateThreadOnDeadTaskFails) {
  auto t = make_object<task>();
  t->deactivate();
  EXPECT_FALSE(t->create_thread());
}

TEST(Task, ThreadsSnapshotClonesRefs) {
  auto t = make_object<task>();
  auto a = t->create_thread();
  auto b = t->create_thread();
  auto snap = t->threads();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(a->ref_count(), 3);  // ours + task's + snapshot's
  snap.clear();
  EXPECT_EQ(a->ref_count(), 2);
  (void)b;
}

TEST(Task, ShutdownBodyDeactivatesThreads) {
  auto t = make_object<task>();
  auto th = t->create_thread();
  t->deactivate();
  t->shutdown_body();
  EXPECT_EQ(t->thread_count(), 0u);
  th->lock();
  EXPECT_FALSE(th->active());
  th->unlock();
  EXPECT_EQ(th->suspend(), KERN_TERMINATED);
}

TEST(Task, ThreadSuspendResume) {
  auto t = make_object<task>();
  auto th = t->create_thread();
  EXPECT_EQ(th->suspend(), KERN_SUCCESS);
  EXPECT_EQ(th->suspend_count(), 1);
  EXPECT_EQ(th->resume(), KERN_SUCCESS);
  EXPECT_EQ(th->resume(), KERN_FAILURE);
}

TEST(Task, VmMapSlotHoldsReference) {
  auto t = make_object<task>();
  auto some_obj = make_object<task>("stand-in-map");
  t->set_vm_map(ref_ptr<kobject>::clone_from(some_obj.get()));
  EXPECT_EQ(some_obj->ref_count(), 2);
  auto got = t->vm_map_ref();
  EXPECT_EQ(got.get(), some_obj.get());
  t->set_vm_map({});
  got.reset();
  EXPECT_EQ(some_obj->ref_count(), 1);
}

// The section 5 claim behind E12: with split locks, holding the task lock
// does not block IPC translations; with a shared lock it does.
TEST(Task, SplitLocksAllowParallelTranslation) {
  auto t = make_object<task>("split-task", /*split_ipc_lock=*/true);
  auto name = t->space().insert(make_object<port>());
  t->lock();  // long task operation in progress
  std::atomic<bool> done{false};
  auto worker = kthread::spawn("translator", [&] {
    EXPECT_TRUE(t->space().lookup(name));
    done.store(true);
  });
  worker->join();  // completes even while the task lock is held
  EXPECT_TRUE(done.load());
  t->unlock();
}

TEST(Task, SharedLockSerializesTranslation) {
  auto t = make_object<task>("coarse-task", /*split_ipc_lock=*/false);
  auto name = t->space().insert(make_object<port>());
  t->lock();
  std::atomic<bool> done{false};
  auto worker = kthread::spawn("translator", [&] {
    EXPECT_TRUE(t->space().lookup(name));
    done.store(true);
  });
  std::this_thread::sleep_for(15ms);
  EXPECT_FALSE(done.load()) << "translation proceeded despite shared lock held";
  t->unlock();
  worker->join();
  EXPECT_TRUE(done.load());
}

}  // namespace
}  // namespace mach
