// Edge-case and failure-path tests across all modules: the paths a
// downstream user hits when things go wrong (bad arguments, dead objects,
// shrunk resources, mid-operation teardown).
#include <gtest/gtest.h>

#include <atomic>

#include "ipc/stubs.h"
#include "kern/task.h"
#include "sched/event.h"
#include "smp/barrier.h"
#include "tests/test_util.h"
#include "vm/pmap.h"
#include "vm/shootdown.h"
#include "vm/vm_pageable.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

// --- vm_map ---

struct vm_edge_fixture : ::testing::Test {
  vm_edge_fixture() : pages("edge-pages", 32) {}
  object_zone<vm_page> pages;
};

TEST_F(vm_edge_fixture, RemoveOfWiredEntryFails) {
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t base = 0;
  ASSERT_EQ(map->enter(obj, 0, vm_page_size, &base), KERN_SUCCESS);
  ASSERT_EQ(vm_map_pageable(*map, base, vm_page_size, true), KERN_SUCCESS);
  EXPECT_EQ(map->remove(base, vm_page_size), KERN_FAILURE);  // still wired
  ASSERT_EQ(vm_map_pageable(*map, base, vm_page_size, false), KERN_SUCCESS);
  EXPECT_EQ(map->remove(base, vm_page_size), KERN_SUCCESS);
}

TEST_F(vm_edge_fixture, RemoveOfUnknownRangeFails) {
  auto map = make_object<vm_map>();
  EXPECT_EQ(map->remove(0x7777000, vm_page_size), KERN_FAILURE);
}

TEST_F(vm_edge_fixture, EnterOnDeactivatedMapFails) {
  auto map = make_object<vm_map>();
  map->deactivate();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t base = 0;
  EXPECT_EQ(map->enter(obj, 0, vm_page_size, &base), KERN_TERMINATED);
}

TEST_F(vm_edge_fixture, LookupBoundariesAreExact) {
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t base = 0;
  ASSERT_EQ(map->enter(obj, 0, 2 * vm_page_size, &base), KERN_SUCCESS);
  read_lock_guard g(map->map_lock());
  EXPECT_NE(map->lookup_locked(base), nullptr);                         // first byte
  EXPECT_NE(map->lookup_locked(base + 2 * vm_page_size - 1), nullptr);  // last byte
  EXPECT_EQ(map->lookup_locked(base + 2 * vm_page_size), nullptr);      // one past
  EXPECT_EQ(map->lookup_locked(base - 1), nullptr);                     // one before
}

TEST_F(vm_edge_fixture, FaultAfterRemoveFails) {
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t base = 0;
  ASSERT_EQ(map->enter(obj, 0, vm_page_size, &base), KERN_SUCCESS);
  ASSERT_EQ(map->remove(base, vm_page_size), KERN_SUCCESS);
  EXPECT_EQ(vm_fault(*map, base, nullptr), KERN_FAILURE);
}

TEST_F(vm_edge_fixture, EntriesSnapshotClonesObjectRefs) {
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t base = 0;
  ASSERT_EQ(map->enter(obj, 0, vm_page_size, &base), KERN_SUCCESS);
  {
    auto snap = map->entries_snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(obj->ref_count(), 3);  // ours + entry + snapshot
  }
  EXPECT_EQ(obj->ref_count(), 2);
}

TEST_F(vm_edge_fixture, DeactivateMidFaultAborts) {
  // deactivate() (not terminate(), which waits) while a fault is inside
  // the pager exercises the KERN_ABORTED recovery path of section 9.
  auto obj = make_object<memory_object>(pages, 30ms);
  std::atomic<int> result{-1};
  auto faulter = kthread::spawn("faulter", [&] {
    vm_page* p = nullptr;
    result.store(obj->page_request(0, &p));
  });
  while (obj->paging_in_progress() == 0) std::this_thread::yield();
  obj->deactivate();
  faulter->join();
  EXPECT_EQ(result.load(), KERN_ABORTED);
  EXPECT_EQ(obj->resident_count(), 0u);     // nothing half-installed
  EXPECT_EQ(pages.raw().in_use(), 0u);      // the page went back to the zone
  EXPECT_EQ(obj->paging_in_progress(), 0);  // the hybrid count drained
}

TEST_F(vm_edge_fixture, EvictOneEvictsExactlyOne) {
  auto obj = make_object<memory_object>(pages);
  vm_page* p = nullptr;
  obj->page_request(0, &p);
  obj->page_request(vm_page_size, &p);
  obj->page_request(2 * vm_page_size, &p);
  EXPECT_TRUE(obj->evict_one());
  EXPECT_EQ(obj->resident_count(), 2u);
}

TEST_F(vm_edge_fixture, PageableWireFailsCleanlyOnDeadObject) {
  auto map = make_object<vm_map>();
  auto obj = make_object<memory_object>(pages);
  std::uint64_t base = 0;
  ASSERT_EQ(map->enter(obj, 0, 2 * vm_page_size, &base), KERN_SUCCESS);
  obj->deactivate();
  EXPECT_EQ(vm_map_pageable(*map, base, 2 * vm_page_size, true), KERN_TERMINATED);
  EXPECT_EQ(vm_map_pageable_legacy(*map, base, 2 * vm_page_size, true), KERN_TERMINATED);
}

// --- zone ---

TEST(ZoneEdge, ShrinkBelowUsageBlocksNewAllocs) {
  zone z("shrink", 32, 4);
  void* a = z.alloc();
  void* b = z.alloc();
  z.set_max(1);  // below current usage of 2
  EXPECT_EQ(z.alloc_nowait(), nullptr);
  z.free(a);  // usage 1 == max 1: still full
  EXPECT_EQ(z.alloc_nowait(), nullptr);
  z.free(b);  // usage 0 < max 1
  void* c = z.alloc_nowait();
  EXPECT_NE(c, nullptr);
  z.free(c);
}

TEST(ZoneEdge, CapacityZeroBlocksEverything) {
  zone z("zero", 32, 0);
  EXPECT_EQ(z.alloc_nowait(), nullptr);
}

// --- port / messages ---

TEST(PortEdge, MessageCopyClonesCarriedRight) {
  auto reply = make_object<port>("r");
  message a(1);
  a.reply_to = reply;
  message b = a;  // copy
  EXPECT_EQ(reply->ref_count(), 3);
  b = message(2);  // reassign drops b's right
  EXPECT_EQ(reply->ref_count(), 2);
}

TEST(PortEdge, QueueLimitShrinkTakesEffectForNewSends) {
  auto p = make_object<port>();
  for (int i = 0; i < 5; ++i) ASSERT_EQ(p->send(message(1)), KERN_SUCCESS);
  p->set_queue_limit(2);  // below current depth
  EXPECT_EQ(p->send(message(1)), KERN_NO_SPACE);
  // Draining below the limit re-enables sends.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(p->try_receive().has_value());
  EXPECT_EQ(p->send(message(1)), KERN_SUCCESS);
}

TEST(PortEdge, TryReceiveOnDeadPortIsEmpty) {
  auto p = make_object<port>();
  p->send(message(1));
  p->destroy_port();  // drops the queue
  EXPECT_FALSE(p->try_receive().has_value());
  EXPECT_FALSE(p->receive(10ms).has_value());
}

TEST(PortEdge, SetTranslationReplacesAndReleasesOld) {
  auto a = make_object<counter_object>();
  auto b = make_object<counter_object>();
  auto p = make_object<port>();
  p->set_translation(a);
  EXPECT_EQ(a->ref_count(), 2);
  p->set_translation(b);
  EXPECT_EQ(a->ref_count(), 1);  // old reference released
  EXPECT_EQ(b->ref_count(), 2);
  EXPECT_EQ(p->translate().get(), b.get());
}

// --- RPC ---

TEST(RpcEdge, WrongObjectTypeFailsOp) {
  ipc_space space;
  auto t = make_object<task>();
  auto p = make_object<port>();
  p->set_translation(t);
  port_name_t name = space.insert(p);
  message reply;
  // Counter op against a task object: handler type-check fails.
  EXPECT_EQ(msg_rpc(space, name, message(OP_COUNTER_ADD, {1}), reply, standard_router()),
            KERN_FAILURE);
  EXPECT_EQ(reply.ret, KERN_FAILURE);
}

TEST(RpcEdge, CounterAddWithoutArgumentFails) {
  ipc_space space;
  auto c = make_object<counter_object>();
  auto p = make_object<port>();
  p->set_translation(c);
  port_name_t name = space.insert(p);
  message reply;
  EXPECT_EQ(msg_rpc(space, name, message(OP_COUNTER_ADD), reply, standard_router()),
            KERN_FAILURE);
}

TEST(RpcEdge, RouterRejectsDuplicateRegistration) {
  testing::panic_hook_scope hook;
  rpc_router r;
  r.register_op(1, "one", [](kobject&, const message&, message&) { return KERN_SUCCESS; });
  EXPECT_THROW(
      r.register_op(1, "dup", [](kobject&, const message&, message&) { return KERN_SUCCESS; }),
      panic_error);
}

// --- complex lock ---

TEST(ComplexLockEdge, SleepersSurviveSleepableToggle) {
  lock_data_t l;
  lock_init(&l, /*can_sleep=*/true, "toggle-mid-wait");
  lock_write(&l);
  std::atomic<bool> got{false};
  auto waiter = kthread::spawn("waiter", [&] {
    lock_read(&l);  // blocks through the event system
    got.store(true);
    lock_done(&l);
  });
  std::this_thread::sleep_for(10ms);  // waiter is asleep
  lock_sleepable(&l, false);          // future waiters spin; sleeper must still wake
  lock_done(&l);
  waiter->join();
  EXPECT_TRUE(got.load());
}

TEST(ComplexLockEdge, TryUpgradeDrainsOtherReaders) {
  lock_data_t l;
  lock_init(&l, true, "try-upgrade-drain");
  lock_read(&l);
  std::atomic<bool> upgraded{false};
  auto upgrader = kthread::spawn("upgrader", [&] {
    lock_read(&l);
    // Blocks until the main thread's read hold drains, then succeeds.
    EXPECT_TRUE(lock_try_read_to_write(&l));
    upgraded.store(true);
    lock_done(&l);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(upgraded.load());
  lock_done(&l);  // release our read hold
  upgrader->join();
  EXPECT_TRUE(upgraded.load());
}

TEST(ComplexLockEdge, WriterQueueDrainsInBoundedTime) {
  lock_data_t l;
  lock_init(&l, true, "writer-queue");
  constexpr int writers = 6;
  std::atomic<int> done{0};
  std::vector<std::unique_ptr<kthread>> threads;
  for (int i = 0; i < writers; ++i) {
    threads.push_back(kthread::spawn(std::string("w") += std::to_string(i), [&] {
      for (int j = 0; j < 200; ++j) {
        lock_write(&l);
        lock_done(&l);
      }
      done.fetch_add(1);
    }));
  }
  for (auto& t : threads) t->join();
  EXPECT_EQ(done.load(), writers);
}

// --- machine / spl / barrier ---

TEST(SmpEdge, PostToUnregisteredVectorIsFatal) {
  testing::panic_hook_scope hook;
  machine::instance().configure(1);
  EXPECT_THROW(machine::instance().post_ipi(0, 0), panic_error);
  machine::instance().configure(0);
}

TEST(SmpEdge, CpuIndexOutOfRangeIsFatal) {
  testing::panic_hook_scope hook;
  machine::instance().configure(2);
  EXPECT_THROW((void)machine::instance().cpu(2), panic_error);
  EXPECT_THROW((void)machine::instance().cpu(-1), panic_error);
  machine::instance().configure(0);
}

TEST(SmpEdge, InterruptAtEqualLevelIsMasked) {
  machine::instance().configure(1);
  std::atomic<int> fired{0};
  int v = machine::instance().register_vector("eq", SPLVM,
                                              [&](virtual_cpu&) { fired.fetch_add(1); });
  {
    cpu_binding bind(0);
    spl_t s = splraise(SPLVM);  // exactly the vector's level
    machine::instance().post_ipi(0, v);
    machine::interrupt_point();
    EXPECT_EQ(fired.load(), 0) << "level <= spl must be masked";
    splx(s);
    EXPECT_EQ(fired.load(), 1);
  }
  machine::instance().configure(0);
}

TEST(SmpEdge, BarrierRunBeforeAttachIsFatal) {
  testing::panic_hook_scope hook;
  machine::instance().configure(1);
  interrupt_barrier b("unattached");
  EXPECT_THROW((void)b.run(0, [] {}), panic_error);
  machine::instance().configure(0);
}

TEST(SmpEdge, EmptyParticipantMaskCompletesImmediately) {
  machine::instance().configure(2);
  interrupt_barrier b("empty");
  b.attach(SPLHIGH);
  int ran = 0;
  EXPECT_EQ(b.run(0, [&] { ran = 1; }), interrupt_barrier::status::ok);
  EXPECT_EQ(ran, 1);
  machine::instance().configure(0);
}

TEST(SmpEdge, AbortWithNoRoundIsHarmless) {
  machine::instance().configure(1);
  interrupt_barrier b("idle-abort");
  b.attach(SPLHIGH);
  b.abort_current();
  // A later round still works (the abort flag is re-armed per round).
  EXPECT_EQ(b.run(0, [] {}), interrupt_barrier::status::ok);
  machine::instance().configure(0);
}

// --- pmap / tlb ---

TEST(PmapEdge, RemoveAndLookupOfAbsentMapping) {
  pmap_system sys;
  pmap p("absent");
  sys.pmap_remove(p, 0x9000);  // harmless
  EXPECT_FALSE(sys.pmap_lookup(p, 0x9000).has_value());
}

TEST(PmapEdge, ReEnterUpdatesExistingMapping) {
  pmap_system sys;
  pmap p("update");
  sys.pmap_enter(p, 0x1000, 0xA000);
  sys.pmap_enter(p, 0x1000, 0xB000);
  EXPECT_EQ(sys.pmap_lookup(p, 0x1000), 0xB000u);
}

TEST(TlbEdge, ProcessPendingEmptyIsZero) {
  tlb_set tlbs(1);
  EXPECT_EQ(tlbs.process_pending(0), 0);
  EXPECT_FALSE(tlbs.has_pending(0));
}

TEST(TlbEdge, FlushAllClearsEverything) {
  tlb_set tlbs(1);
  tlbs.insert(0, 0x1000, 0xA000);
  tlbs.insert(0, 0x2000, 0xB000);
  tlbs.flush_all_local(0);
  EXPECT_FALSE(tlbs.lookup(0, 0x1000).has_value());
  EXPECT_FALSE(tlbs.lookup(0, 0x2000).has_value());
}

// --- events / kthread ---

TEST(KThreadEdge, DoubleJoinIsFatal) {
  testing::panic_hook_scope hook;
  auto t = kthread::spawn("once", [] {});
  t->join();
  EXPECT_THROW(t->join(), panic_error);
}

TEST(EventEdge, NullEventAssertIsFatal) {
  testing::panic_hook_scope hook;
  EXPECT_THROW(assert_wait(nullptr), panic_error);
}

TEST(EventEdge, ThreadSleepWakesOnEvent) {
  simple_lock_data_t l;
  simple_lock_init(&l, "ts");
  int event = 0;
  std::atomic<bool> woke{false};
  auto t = kthread::spawn("sleeper", [&] {
    simple_lock(&l);
    thread_sleep(&event, &l);
    woke.store(true);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(woke.load());
  thread_wakeup(&event);
  t->join();
  EXPECT_TRUE(woke.load());
}

// --- lock order validator ---

TEST(LockOrderEdge, ViolationCountAccumulatesAndDrains) {
  auto& v = lock_order_validator::instance();
  v.set_enabled(true);
  v.take_violations();
  constexpr lock_class hi{"edge", "hi", 1};
  constexpr lock_class lo{"edge", "lo", 0};
  int a = 0, b = 0;
  std::size_t before = v.violation_count();
  v.on_acquire(&a, hi);
  v.on_acquire(&b, lo);  // violation
  EXPECT_EQ(v.violation_count(), before + 1);
  EXPECT_EQ(v.take_violations().size(), 1u);
  EXPECT_TRUE(v.take_violations().empty());  // drained
  v.on_release(&b);
  v.on_release(&a);
  v.set_enabled(false);
}

}  // namespace
}  // namespace mach
