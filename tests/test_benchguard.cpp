// Tests for benchguard: the bench_doc model (parse/render/merge), the
// metric-direction registry, the google-benchmark normalization, and —
// most importantly — golden-file tests for bench_diff covering every
// verdict class plus the synthetic-regression gate the CI job relies on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/bench_all.h"
#include "harness/bench_diff.h"
#include "harness/bench_model.h"
#include "harness/mini_json.h"

namespace mach {
namespace {

namespace fs = std::filesystem;

bench_doc doc_from_json(const std::string& text) {
  bench_doc d;
  std::string err;
  EXPECT_TRUE(parse_bench_doc(text, "fallback", &d, &err)) << err;
  return d;
}

// A one-table doc in the committed v2 schema: row key "tas", one gated
// higher-is-better column and one gated lower-is-better column, with an
// optional per-cell CoV.
std::string v2_doc(const std::string& bench, double ops, double p99, double cov = 0.0) {
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      R"j({"schema":2,"bench":"%s","meta":{"git_sha":"abc","build_type":"RelWithDebInfo",)j"
      R"j("source":"harness","hw_concurrency":8,"reps":3,"bench_ms":30},"tables":[)j"
      R"j({"caption":"T1","columns":["policy","ops/s","p99 (us)"],)j"
      R"j("directions":["info","higher","lower"],)j"
      R"j("rows":[{"cells":["tas","%g","%g"],"values":[null,%g,%g],)j"
      R"j("cov":[null,%g,%g]}]}]})j",
      bench.c_str(), ops, p99, ops, p99, cov, cov);
  return buf;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.good()) << path;
  f << body;
}

// --- direction registry ---

TEST(BenchDirs, InferenceFollowsHeaderConventions) {
  EXPECT_EQ(infer_metric_dir("ops/s"), metric_dir::higher);
  EXPECT_EQ(infer_metric_dir("reader reads/s"), metric_dir::higher);
  EXPECT_EQ(infer_metric_dir("fairness (min/max)"), metric_dir::higher);
  EXPECT_EQ(infer_metric_dir("p99 (us)"), metric_dir::lower);
  EXPECT_EQ(infer_metric_dir("wire time (ms)"), metric_dir::lower);
  EXPECT_EQ(infer_metric_dir("policy"), metric_dir::info);
  EXPECT_EQ(infer_metric_dir("threads"), metric_dir::info);
  EXPECT_EQ(infer_metric_dir("some unknown header"), metric_dir::stat);
}

TEST(BenchDirs, ExplicitAnnotationWinsOverInference) {
  const std::vector<std::string> cols{"ops/s", "p99 (us)", "retries"};
  // Explicitly demote ops/s to stat; leave the rest to inference.
  const auto resolved = resolve_metric_dirs(cols, {metric_dir::stat});
  ASSERT_EQ(resolved.size(), 3u);
  EXPECT_EQ(resolved[0], metric_dir::stat);
  EXPECT_EQ(resolved[1], metric_dir::lower);
  EXPECT_EQ(resolved[2], metric_dir::stat);
  EXPECT_EQ(to_string(metric_dir::higher), std::string("higher"));
  EXPECT_EQ(metric_dir_from_string("lower"), metric_dir::lower);
  EXPECT_EQ(metric_dir_from_string("garbage"), metric_dir::stat);
}

// --- model round trip, row keys ---

TEST(BenchModel, RenderParseRoundTrip) {
  bench_doc d = doc_from_json(v2_doc("e99_example", 1000, 25, 0.05));
  EXPECT_EQ(d.bench, "e99_example");
  EXPECT_EQ(d.meta.git_sha, "abc");
  EXPECT_EQ(d.meta.reps, 3);
  ASSERT_EQ(d.tables.size(), 1u);
  EXPECT_EQ(row_key(d.tables[0], 0), "tas");

  bench_doc back = doc_from_json(render_bench_doc(d));
  ASSERT_EQ(back.tables.size(), 1u);
  EXPECT_EQ(back.tables[0].directions[1], metric_dir::higher);
  EXPECT_EQ(back.tables[0].directions[2], metric_dir::lower);
  ASSERT_TRUE(back.tables[0].rows[0].values[1].has_value());
  EXPECT_DOUBLE_EQ(*back.tables[0].rows[0].values[1], 1000.0);
  ASSERT_TRUE(back.tables[0].rows[0].cov[2].has_value());
  EXPECT_DOUBLE_EQ(*back.tables[0].rows[0].cov[2], 0.05);
}

TEST(BenchModel, V1SchemaParsesWithInferredDirections) {
  // PR 2's schema: no meta, no directions.
  const std::string v1 =
      R"j({"bench":"old","tables":[{"caption":"T","columns":["policy","ops/s"],)j"
      R"j("rows":[{"cells":["a","10"],"values":[null,10]}]}]})j";
  bench_doc d = doc_from_json(v1);
  EXPECT_EQ(d.meta.schema, 1);
  EXPECT_EQ(d.meta.reps, 1);
  ASSERT_EQ(d.tables.size(), 1u);
  EXPECT_EQ(d.tables[0].directions[0], metric_dir::info);
  EXPECT_EQ(d.tables[0].directions[1], metric_dir::higher);
}

TEST(BenchModel, RowKeyFallsBackToIndexWithoutInfoColumns) {
  bench_table t;
  t.columns = {"ops/s"};
  t.directions = {metric_dir::higher};
  t.rows.resize(2);
  t.rows[0].cells = {"1"};
  t.rows[1].cells = {"2"};
  EXPECT_EQ(row_key(t, 0), "row:0");
  EXPECT_EQ(row_key(t, 1), "row:1");
}

// --- repetition merging: median + CoV ---

TEST(BenchModel, MergeRepsTakesMedianAndStampsCov) {
  std::vector<bench_doc> reps;
  for (double ops : {1000.0, 1200.0, 1400.0}) {
    reps.push_back(doc_from_json(v2_doc("e1", ops, 20)));
  }
  bench_doc merged;
  std::string err;
  ASSERT_TRUE(merge_reps(reps, &merged, &err)) << err;
  EXPECT_EQ(merged.meta.reps, 3);
  ASSERT_EQ(merged.tables.size(), 1u);
  const bench_row& row = merged.tables[0].rows[0];
  ASSERT_TRUE(row.values[1].has_value());
  EXPECT_DOUBLE_EQ(*row.values[1], 1200.0);  // median of 1000/1200/1400
  ASSERT_TRUE(row.cov[1].has_value());
  // mean 1200, population stddev sqrt((200^2+0+200^2)/3) = 163.3 → CoV 0.1361
  EXPECT_NEAR(*row.cov[1], 0.1361, 0.001);
  // p99 identical in every rep → CoV 0.
  ASSERT_TRUE(row.cov[2].has_value());
  EXPECT_DOUBLE_EQ(*row.cov[2], 0.0);
  // Non-numeric cells stay non-numeric.
  EXPECT_FALSE(row.values[0].has_value());
}

TEST(BenchModel, MergeRepsEvenCountAveragesMiddlePair) {
  std::vector<bench_doc> reps;
  for (double ops : {100.0, 200.0, 300.0, 400.0}) {
    reps.push_back(doc_from_json(v2_doc("e1", ops, 20)));
  }
  bench_doc merged;
  std::string err;
  ASSERT_TRUE(merge_reps(reps, &merged, &err)) << err;
  EXPECT_DOUBLE_EQ(*merged.tables[0].rows[0].values[1], 250.0);
}

TEST(BenchModel, MergeRepsRejectsMismatchedBenches) {
  std::vector<bench_doc> reps{doc_from_json(v2_doc("a", 1, 1)),
                              doc_from_json(v2_doc("b", 1, 1))};
  bench_doc merged;
  std::string err;
  EXPECT_FALSE(merge_reps(reps, &merged, &err));
  EXPECT_NE(err.find("mismatched"), std::string::npos);
}

TEST(BenchAll, RepsFromEnvClamped) {
  ASSERT_EQ(setenv("MACHLOCK_BENCH_REPS", "5", 1), 0);
  EXPECT_EQ(bench_reps_from_env(1), 5);
  ASSERT_EQ(setenv("MACHLOCK_BENCH_REPS", "0", 1), 0);
  EXPECT_EQ(bench_reps_from_env(3), 3);  // non-positive → default
  ASSERT_EQ(setenv("MACHLOCK_BENCH_REPS", "1000", 1), 0);
  EXPECT_EQ(bench_reps_from_env(1), 99);  // clamped
  unsetenv("MACHLOCK_BENCH_REPS");
  EXPECT_EQ(bench_reps_from_env(2), 2);
}

// --- google-benchmark (e13) normalization ---

TEST(BenchModel, NormalizesGoogleBenchmarkSchema) {
  const std::string gb = R"j({
    "context": {"num_cpus": 4, "date": "2026-08-09"},
    "benchmarks": [
      {"name": "BM_SimpleLockUnlock/0", "iterations": 1000000,
       "real_time": 2.5e+01, "cpu_time": 24.0, "time_unit": "ns"},
      {"name": "BM_MsgRpc", "iterations": 5000,
       "real_time": 1.5, "cpu_time": 1.4, "time_unit": "us"},
      {"name": "BM_Agg_mean", "aggregate_name": "mean",
       "iterations": 3, "real_time": 9.9, "cpu_time": 9.9, "time_unit": "ns"}
    ]})j";
  bench_doc d = doc_from_json(gb);  // parse_bench_doc auto-detects the schema
  EXPECT_EQ(d.meta.source, "google-benchmark");
  EXPECT_EQ(d.meta.hw_concurrency, 4u);
  ASSERT_EQ(d.tables.size(), 1u);
  const bench_table& t = d.tables[0];
  ASSERT_EQ(t.rows.size(), 2u);  // the aggregate row is skipped
  EXPECT_EQ(row_key(t, 0), "BM_SimpleLockUnlock/0");
  EXPECT_EQ(t.directions[1], metric_dir::lower);
  EXPECT_EQ(t.directions[3], metric_dir::stat);  // iterations: not a key, not gated
  EXPECT_DOUBLE_EQ(*t.rows[0].values[1], 25.0);
  EXPECT_DOUBLE_EQ(*t.rows[1].values[1], 1500.0);  // us → ns
  EXPECT_DOUBLE_EQ(*t.rows[1].values[2], 1400.0);
}

// --- bench_diff classification (golden docs) ---

diff_result diff_single(const std::string& base_json, const std::string& fresh_json,
                        diff_options opts = {}) {
  diff_result r;
  diff_docs(doc_from_json(base_json), doc_from_json(fresh_json), opts, &r);
  return r;
}

TEST(BenchDiff, WithinNoiseUnderFloor) {
  // +10% ops on a 25% floor: no verdict.
  diff_result r = diff_single(v2_doc("e1", 1000, 20), v2_doc("e1", 1100, 20));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.gated_cells, 2u);
  EXPECT_EQ(r.within_noise, 2u);
  EXPECT_TRUE(r.improvements.empty());
}

TEST(BenchDiff, ImprovementAndRegressionFollowDirection) {
  // ops/s -40% (higher-is-better → regression), p99 -50% (lower-is-better
  // → improvement).
  diff_result r = diff_single(v2_doc("e1", 1000, 20), v2_doc("e1", 600, 10));
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].column, "ops/s");
  EXPECT_NEAR(r.regressions[0].rel_delta, -0.4, 1e-9);
  EXPECT_EQ(r.regressions[0].kind, delta_kind::regression);
  ASSERT_EQ(r.improvements.size(), 1u);
  EXPECT_EQ(r.improvements[0].column, "p99 (us)");
  EXPECT_EQ(r.improvements[0].row, "tas");
}

TEST(BenchDiff, NoisyCellGetsCovKeyedSlack) {
  // -40% would regress at the floor, but the baseline's measured CoV of
  // 0.2 widens the threshold to 3 * 0.2 = 60%.
  diff_result r = diff_single(v2_doc("e1", 1000, 20, 0.2), v2_doc("e1", 600, 20));
  EXPECT_TRUE(r.ok()) << "CoV-keyed threshold should absorb the delta";
  EXPECT_EQ(r.within_noise, 2u);
  // The same delta on a tight cell (CoV 0.01) regresses.
  diff_result tight = diff_single(v2_doc("e1", 1000, 20, 0.01), v2_doc("e1", 600, 20));
  EXPECT_FALSE(tight.ok());
  ASSERT_EQ(tight.regressions.size(), 1u);
  EXPECT_DOUBLE_EQ(tight.regressions[0].threshold, 0.25);  // floor still applies
}

TEST(BenchDiff, AddedAndRemovedTablesAndRowsAreStructuralNotGated) {
  const std::string base =
      R"j({"schema":2,"bench":"e2","meta":{},"tables":[)j"
      R"j({"caption":"OLD","columns":["policy","ops/s"],"directions":["info","higher"],)j"
      R"j("rows":[{"cells":["a","10"],"values":[null,10]},)j"
      R"j(        {"cells":["gone","5"],"values":[null,5]}]}]})j";
  const std::string fresh =
      R"j({"schema":2,"bench":"e2","meta":{},"tables":[)j"
      R"j({"caption":"OLD","columns":["policy","ops/s"],"directions":["info","higher"],)j"
      R"j("rows":[{"cells":["a","10"],"values":[null,10]},)j"
      R"j(        {"cells":["new","7"],"values":[null,7]}]},)j"
      R"j({"caption":"NEW","columns":["x"],"directions":["info"],"rows":[]}]})j";
  diff_result r = diff_single(base, fresh);
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.added_tables.size(), 1u);
  EXPECT_EQ(r.added_tables[0], "e2: NEW");
  ASSERT_EQ(r.removed_rows.size(), 1u);
  EXPECT_EQ(r.removed_rows[0], "e2: OLD: gone");
  ASSERT_EQ(r.added_rows.size(), 1u);
  EXPECT_EQ(r.added_rows[0], "e2: OLD: new");
}

TEST(BenchDiff, FromZeroBaseGates) {
  diff_result r = diff_single(v2_doc("e1", 1000, 0), v2_doc("e1", 1000, 50));
  ASSERT_EQ(r.regressions.size(), 1u);  // p99 appeared from zero
  EXPECT_EQ(r.regressions[0].column, "p99 (us)");
}

// --- verdict JSON + markdown report ---

TEST(BenchDiff, VerdictJsonParsesAndNamesTheRegression) {
  diff_result r = diff_single(v2_doc("e1", 1000, 20), v2_doc("e1", 500, 20));
  const std::string verdict = verdict_json(r, diff_options{});
  mini_json::value root;
  std::string err;
  ASSERT_TRUE(mini_json::parse(verdict, &root, &err)) << err << "\n" << verdict;
  EXPECT_EQ(root.find("status")->str, "regression");
  EXPECT_EQ(root.find("counts")->find("regressions")->num, 1.0);
  const mini_json::value* regs = root.find("regressions");
  ASSERT_EQ(regs->arr.size(), 1u);
  EXPECT_EQ(regs->arr[0].find("column")->str, "ops/s");
  EXPECT_EQ(regs->arr[0].find("row")->str, "tas");
  EXPECT_NEAR(regs->arr[0].find("rel_delta")->num, -0.5, 1e-9);

  diff_result ok = diff_single(v2_doc("e1", 1000, 20), v2_doc("e1", 1000, 20));
  mini_json::value root_ok;
  ASSERT_TRUE(mini_json::parse(verdict_json(ok, diff_options{}), &root_ok, &err)) << err;
  EXPECT_EQ(root_ok.find("status")->str, "ok");
}

TEST(BenchDiff, MarkdownReportCarriesVerdictAndDeltas) {
  diff_result r = diff_single(v2_doc("e1", 1000, 20), v2_doc("e1", 500, 8));
  const std::string md = markdown_report(r, diff_options{}, "baseline", "fresh");
  EXPECT_NE(md.find("**Verdict: REGRESSION**"), std::string::npos);
  EXPECT_NE(md.find("## Regressions"), std::string::npos);
  EXPECT_NE(md.find("## Improvements"), std::string::npos);
  EXPECT_NE(md.find("| e1 | T1 | tas | ops/s | higher |"), std::string::npos);
  EXPECT_NE(md.find("-50.0%"), std::string::npos);
}

// --- the CI gate, end to end on trees: a synthetic regression injected
// into a fresh tree must fail the diff (this is the acceptance-criteria
// demonstration for the workflow's perf-gate job) ---

class diff_tree_fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each test in its own process, possibly concurrently: the
    // scratch root must be unique per test or SetUp()'s remove_all nukes a
    // sibling's files mid-run.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("benchguard_") + info->name() + "_" + std::to_string(getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_ / "base");
    fs::create_directories(root_ / "fresh");
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string base() const { return (root_ / "base").string(); }
  std::string fresh() const { return (root_ / "fresh").string(); }

  fs::path root_;
};

TEST_F(diff_tree_fixture, SyntheticRegressionFailsTheGate) {
  write_file(base() + "/BENCH_e1.json", v2_doc("e1", 1000, 20));
  write_file(base() + "/BENCH_e2.json", v2_doc("e2", 500, 40));
  write_file(fresh() + "/BENCH_e1.json", v2_doc("e1", 1010, 21));  // healthy
  write_file(fresh() + "/BENCH_e2.json", v2_doc("e2", 250, 40));   // injected -50%

  diff_result r;
  std::string err;
  ASSERT_TRUE(diff_trees(base(), fresh(), diff_options{}, &r, &err)) << err;
  EXPECT_FALSE(r.ok()) << "the injected regression must fail the gate";
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].bench, "e2");
  EXPECT_EQ(r.regressions[0].column, "ops/s");
  // The gate's exit-code contract is result.ok() — bench_diff_main maps
  // this to exit 1.
}

TEST_F(diff_tree_fixture, CleanTreesPassAndStructuralDriftIsReported) {
  write_file(base() + "/BENCH_e1.json", v2_doc("e1", 1000, 20));
  write_file(base() + "/BENCH_gone.json", v2_doc("gone", 1, 1));
  write_file(fresh() + "/BENCH_e1.json", v2_doc("e1", 1100, 19));
  write_file(fresh() + "/BENCH_new.json", v2_doc("new", 2, 2));

  diff_result r;
  std::string err;
  ASSERT_TRUE(diff_trees(base(), fresh(), diff_options{}, &r, &err)) << err;
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.added_benches.size(), 1u);
  EXPECT_EQ(r.added_benches[0], "BENCH_new.json");
  ASSERT_EQ(r.removed_benches.size(), 1u);
  EXPECT_EQ(r.removed_benches[0], "BENCH_gone.json");
}

TEST_F(diff_tree_fixture, RawGoogleBenchmarkTreeNormalizesInTheDiff) {
  // A baseline committed in the normalized schema vs a fresh tree where
  // e13 wrote google-benchmark's own JSON: same model after load.
  const std::string normalized =
      R"j({"schema":2,"bench":"e13_primitives","meta":{"source":"google-benchmark"},"tables":[)j"
      R"j({"caption":"E13: primitive operation costs (normalized from google-benchmark)",)j"
      R"j("columns":["name","real_time (ns)","cpu_time (ns)","iterations"],)j"
      R"j("directions":["info","lower","lower","stat"],)j"
      R"j("rows":[{"cells":["BM_X","10","9","1000"],"values":[null,10,9,1000]}]}]})j";
  const std::string raw_gb =
      R"j({"context":{"num_cpus":2},"benchmarks":[)j"
      R"j({"name":"BM_X","iterations":900,"real_time":30.0,"cpu_time":9.1,"time_unit":"ns"}]})j";
  write_file(base() + "/BENCH_e13_primitives.json", normalized);
  write_file(fresh() + "/BENCH_e13_primitives.json", raw_gb);

  diff_result r;
  std::string err;
  ASSERT_TRUE(diff_trees(base(), fresh(), diff_options{}, &r, &err)) << err;
  // real_time tripled → regression on a lower-is-better metric; cpu_time
  // +1.1% → within noise; iterations is stat → not gated.
  EXPECT_EQ(r.gated_cells, 2u);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].column, "real_time (ns)");
  EXPECT_EQ(r.regressions[0].row, "BM_X");
}

TEST_F(diff_tree_fixture, MissingDirectoryIsAnError) {
  diff_result r;
  std::string err;
  EXPECT_FALSE(diff_trees(base() + "/nope", fresh(), diff_options{}, &r, &err));
  EXPECT_FALSE(err.empty());
}

TEST_F(diff_tree_fixture, EmptyTreeIsAnErrorNotACleanVerdict) {
  // A directory with no BENCH_*.json almost always means a wrong path or a
  // run that produced nothing — "OK, 0 cells" would wave a broken perf
  // gate through. Both sides are checked.
  write_file(fresh() + "/BENCH_e1.json", v2_doc("e1", 1000, 20));
  diff_result r;
  std::string err;
  EXPECT_FALSE(diff_trees(base(), fresh(), diff_options{}, &r, &err));
  EXPECT_NE(err.find("no BENCH_*.json"), std::string::npos) << err;

  err.clear();
  diff_result r2;
  EXPECT_FALSE(diff_trees(fresh(), base(), diff_options{}, &r2, &err));
  EXPECT_NE(err.find("no BENCH_*.json"), std::string::npos) << err;
}

TEST_F(diff_tree_fixture, TruncatedBenchFileFailsEvenWhenUnmatched) {
  // A fresh-only file used to bypass parsing entirely and read as "bench
  // added"; truncated/empty files must fail the diff in every position.
  write_file(base() + "/BENCH_e1.json", v2_doc("e1", 1000, 20));
  write_file(fresh() + "/BENCH_e1.json", v2_doc("e1", 1010, 20));
  write_file(fresh() + "/BENCH_corrupt.json", R"j({"bench":)j");  // truncated
  diff_result r;
  std::string err;
  EXPECT_FALSE(diff_trees(base(), fresh(), diff_options{}, &r, &err));
  EXPECT_NE(err.find("BENCH_corrupt.json"), std::string::npos) << err;

  // Same for an empty file on the base side with no fresh counterpart.
  fs::remove(fresh() + "/BENCH_corrupt.json");
  write_file(base() + "/BENCH_empty.json", "");
  err.clear();
  diff_result r2;
  EXPECT_FALSE(diff_trees(base(), fresh(), diff_options{}, &r2, &err));
  EXPECT_NE(err.find("BENCH_empty.json"), std::string::npos) << err;
}

}  // namespace
}  // namespace mach
