// Tests for the Mach event-wait primitives (paper section 6) and kthread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "sched/event.h"
#include "sync/simple_lock.h"
#include "tests/test_util.h"

namespace mach {
namespace {

using namespace std::chrono_literals;

int dummy_event_a, dummy_event_b;

TEST(KThread, SpawnRunsAndJoins) {
  std::atomic<int> ran{0};
  auto t = kthread::spawn("worker", [&] { ran.store(1); });
  t->join();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(t->name(), "worker");
  EXPECT_NE(t->token(), nullptr);
}

TEST(KThread, CurrentIsStablePerThread) {
  kthread& a = kthread::current();
  kthread& b = kthread::current();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.token(), current_thread_token());
}

TEST(KThread, SpawnedThreadSeesItselfAsCurrent) {
  const kthread* inside = nullptr;
  auto t = kthread::spawn("self", [&] { inside = &kthread::current(); });
  t->join();
  EXPECT_EQ(inside, t.get());
}

TEST(Event, WakeupBeforeBlockShortCircuits) {
  // The core race the split primitives close: the event occurring between
  // assert_wait and thread_block converts the block into a no-op.
  reset_event_counters();
  assert_wait(&dummy_event_a);
  thread_wakeup(&dummy_event_a);
  wait_result r = thread_block();
  EXPECT_EQ(r, wait_result::awakened);
  auto c = event_counters();
  EXPECT_EQ(c.blocks_short_circuited, 1u);
  EXPECT_EQ(c.blocks_suspended, 0u);
}

TEST(Event, BlockWithoutAssertIsYield) {
  EXPECT_EQ(thread_block(), wait_result::not_waiting);
}

TEST(Event, WakeupWithNoWaiterIsCounted) {
  reset_event_counters();
  thread_wakeup(&dummy_event_b);
  EXPECT_EQ(event_counters().wakeups_no_waiter, 1u);
}

TEST(Event, BlockedThreadIsAwakened) {
  std::atomic<bool> entered{false};
  std::atomic<int> result{-1};
  auto t = kthread::spawn("waiter", [&] {
    assert_wait(&dummy_event_a);
    entered.store(true);
    result.store(static_cast<int>(thread_block()));
  });
  while (!entered.load()) std::this_thread::yield();
  std::this_thread::sleep_for(5ms);  // give it time to actually suspend
  thread_wakeup(&dummy_event_a);
  t->join();
  EXPECT_EQ(result.load(), static_cast<int>(wait_result::awakened));
}

TEST(Event, WakeupIsEventSpecific) {
  std::atomic<int> woken{0};
  std::atomic<int> asserted{0};
  auto waiter = [&](event_t e) {
    return [&woken, &asserted, e] {
      assert_wait(e);
      asserted.fetch_add(1);
      thread_block();
      woken.fetch_add(1);
    };
  };
  auto ta = kthread::spawn("wa", waiter(&dummy_event_a));
  auto tb = kthread::spawn("wb", waiter(&dummy_event_b));
  while (asserted.load() < 2) std::this_thread::yield();
  thread_wakeup(&dummy_event_a);
  ta->join();
  EXPECT_EQ(woken.load(), 1);  // only the event-a waiter woke
  thread_wakeup(&dummy_event_b);
  tb->join();
  EXPECT_EQ(woken.load(), 2);
}

TEST(Event, WakeupAllWakesEveryWaiter) {
  constexpr int n = 6;
  std::atomic<int> ready{0};
  std::vector<std::unique_ptr<kthread>> threads;
  for (int i = 0; i < n; ++i) {
    std::string wname = "w";
    wname += std::to_string(i);
    threads.push_back(kthread::spawn(std::move(wname), [&] {
      assert_wait(&dummy_event_a);
      ready.fetch_add(1);
      thread_block();
    }));
  }
  while (ready.load() < n) std::this_thread::yield();
  std::this_thread::sleep_for(10ms);
  thread_wakeup(&dummy_event_a);
  for (auto& t : threads) t->join();  // hangs if anyone was missed
}

TEST(Event, WakeupOneWakesExactlyOne) {
  std::atomic<int> ready{0};
  std::atomic<int> woken{0};
  std::vector<std::unique_ptr<kthread>> threads;
  for (int i = 0; i < 3; ++i) {
    threads.push_back(kthread::spawn("w1_" + std::to_string(i), [&] {
      assert_wait(&dummy_event_a);
      ready.fetch_add(1);
      thread_block();
      woken.fetch_add(1);
    }));
  }
  while (ready.load() < 3) std::this_thread::yield();
  std::this_thread::sleep_for(10ms);
  thread_wakeup_one(&dummy_event_a);
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(woken.load(), 1);
  thread_wakeup(&dummy_event_a);  // release the rest
  for (auto& t : threads) t->join();
}

TEST(Event, ClearWaitWakesSpecificThread) {
  std::atomic<bool> ready{false};
  std::atomic<int> result{-1};
  auto t = kthread::spawn("cleared", [&] {
    assert_wait(&dummy_event_a);
    ready.store(true);
    result.store(static_cast<int>(thread_block()));
  });
  while (!ready.load()) std::this_thread::yield();
  std::this_thread::sleep_for(5ms);
  clear_wait(*t, wait_result::cleared);
  t->join();
  EXPECT_EQ(result.load(), static_cast<int>(wait_result::cleared));
}

TEST(Event, ClearWaitOnNonWaitingThreadIsNoop) {
  std::atomic<bool> done{false};
  auto t = kthread::spawn("idle", [&] {
    while (!done.load()) std::this_thread::yield();
  });
  clear_wait(*t);  // must not blow up or corrupt anything
  done.store(true);
  t->join();
}

TEST(Event, TimeoutExpiresAndCancelsAssertion) {
  assert_wait(&dummy_event_a);
  auto start = std::chrono::steady_clock::now();
  wait_result r = thread_block_timeout(30ms);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(r, wait_result::timed_out);
  EXPECT_GE(elapsed, 25ms);
  // The assertion must be gone: a later wakeup finds no waiter.
  reset_event_counters();
  thread_wakeup(&dummy_event_a);
  EXPECT_EQ(event_counters().wakeups_no_waiter, 1u);
}

TEST(Event, TimeoutNotTakenWhenWakeupArrives) {
  std::atomic<bool> ready{false};
  std::atomic<int> result{-1};
  auto t = kthread::spawn("timed", [&] {
    assert_wait(&dummy_event_b);
    ready.store(true);
    result.store(static_cast<int>(thread_block_timeout(5s)));
  });
  while (!ready.load()) std::this_thread::yield();
  std::this_thread::sleep_for(5ms);
  thread_wakeup(&dummy_event_b);
  t->join();
  EXPECT_EQ(result.load(), static_cast<int>(wait_result::awakened));
}

TEST(Event, DoubleAssertWaitIsFatal) {
  // "the blocking operations will call assert_wait() a second time (this
  // is fatal)" — paper section 8.
  testing::panic_hook_scope hook;
  assert_wait(&dummy_event_a);
  EXPECT_THROW(assert_wait(&dummy_event_b), panic_error);
  // Clean up the outstanding assertion.
  thread_wakeup(&dummy_event_a);
  thread_block();
}

TEST(Event, BlockWhileHoldingSimpleLockIsFatal) {
  testing::panic_hook_scope hook;
  simple_lock_data_t l;
  simple_lock_init(&l, "held-at-block");
  simple_lock(&l);
  assert_wait(&dummy_event_a);
  EXPECT_THROW(thread_block(), panic_error);
  simple_unlock(&l);
  // Drain the assertion now that the lock is gone.
  thread_wakeup(&dummy_event_a);
  thread_block();
}

TEST(Event, ThreadSleepReleasesLockAndWaits) {
  simple_lock_data_t l;
  simple_lock_init(&l, "sleep-lock");
  std::atomic<bool> ready{false};
  std::atomic<bool> lock_was_free{false};
  auto sleeper = kthread::spawn("sleeper", [&] {
    simple_lock(&l);
    ready.store(true);
    thread_sleep(&dummy_event_a, &l);  // releases l, then blocks
  });
  while (!ready.load()) std::this_thread::yield();
  std::this_thread::sleep_for(5ms);
  // The lock must be free while the sleeper is blocked.
  lock_was_free.store(simple_lock_try(&l));
  if (lock_was_free.load()) simple_unlock(&l);
  thread_wakeup(&dummy_event_a);
  sleeper->join();
  EXPECT_TRUE(lock_was_free.load());
}

// Property sweep: N producers wake N consumers, no lost wakeups, for a
// range of concurrency levels.
class EventStressTest : public ::testing::TestWithParam<int> {};

TEST_P(EventStressTest, NoLostWakeups) {
  const int pairs = GetParam();
  constexpr int rounds = 300;
  std::vector<std::unique_ptr<kthread>> threads;
  std::vector<std::atomic<int>> tokens(static_cast<std::size_t>(pairs));
  for (auto& t : tokens) t.store(0);
  for (int p = 0; p < pairs; ++p) {
    threads.push_back(kthread::spawn("cons" + std::to_string(p), [&, p] {
      for (int r = 0; r < rounds; ++r) {
        assert_wait(&tokens[static_cast<std::size_t>(p)]);
        if (tokens[static_cast<std::size_t>(p)].load() > r) {
          // Already produced; the wakeup may have fired before our
          // assert_wait. Cancel our own wait (the paper's thread-based
          // occurrence) and move on.
          clear_wait(kthread::current());
          thread_block();
          continue;
        }
        thread_block_timeout(std::chrono::seconds(10));
      }
    }));
  }
  for (int p = 0; p < pairs; ++p) {
    threads.push_back(kthread::spawn("prod" + std::to_string(p), [&, p] {
      for (int r = 0; r < rounds; ++r) {
        tokens[static_cast<std::size_t>(p)].fetch_add(1);
        thread_wakeup(&tokens[static_cast<std::size_t>(p)]);
        if (r % 64 == 0) std::this_thread::yield();
      }
    }));
  }
  for (auto& t : threads) t->join();
  for (auto& t : tokens) EXPECT_EQ(t.load(), rounds);
}

INSTANTIATE_TEST_SUITE_P(Concurrency, EventStressTest, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace mach
