// vm_workload: the virtual-memory substrate end to end.
//
// Builds a task with an address space, maps two memory objects, runs
// concurrent faulting threads against a capacity-bounded page zone, wires
// a region with the rewritten vm_map_pageable while a reclaimer evicts
// cold pages, and finally terminates the objects — exercising the map's
// sleepable complex lock, the dual-count memory object, and the zone
// allocator's blocking behaviour together.
#include <atomic>
#include <cstdio>
#include <vector>

#include "kern/task.h"
#include "sched/kthread.h"
#include "vm/addr_space.h"
#include "vm/pageout.h"
#include "vm/vm_pageable.h"

using namespace mach;
using namespace std::chrono_literals;

int main() {
  std::printf("machlock vm_workload example\n============================\n\n");

  // "Physical memory": 32 page frames, with a simulated 100us pager.
  object_zone<vm_page> physical_memory("physical-memory", 32);

  auto tk = make_object<task>("demo-task");
  auto map = make_object<vm_map>("demo-map");
  tk->set_vm_map(ref_ptr<kobject>::clone_from(map.get()));

  auto code = make_object<memory_object>(physical_memory, 100us, "code-object");
  auto heap = make_object<memory_object>(physical_memory, 100us, "heap-object");

  std::uint64_t code_base = 0, heap_base = 0;
  map->enter(code, 0, 8 * vm_page_size, &code_base);
  map->enter(heap, 0, 16 * vm_page_size, &heap_base);
  std::printf("mapped code at 0x%llx (8 pages), heap at 0x%llx (16 pages)\n",
              static_cast<unsigned long long>(code_base),
              static_cast<unsigned long long>(heap_base));

  // Concurrent demand faults across both regions: read locks on the map
  // overlap, page-ins block politely under the Sleep option.
  std::atomic<int> faults_ok{0};
  std::vector<std::unique_ptr<kthread>> faulters;
  for (int t = 0; t < 4; ++t) {
    faulters.push_back(kthread::spawn("faulter" + std::to_string(t), [&, t] {
      for (int i = 0; i < 16; ++i) {
        std::uint64_t va = (t % 2 == 0 ? code_base + (i % 8) * vm_page_size
                                       : heap_base + (i % 16) * vm_page_size);
        std::uint64_t pa = 0;
        if (vm_fault(*map, va, &pa) == KERN_SUCCESS) faults_ok.fetch_add(1);
      }
    }));
  }
  for (auto& f : faulters) f->join();
  std::printf("demand faults: %d complete; resident: code=%zu heap=%zu, frames used %zu/32\n",
              faults_ok.load(), code->resident_count(), heap->resident_count(),
              physical_memory.raw().in_use());

  // Wire the code region (the rewritten, deadlock-free vm_map_pageable)
  // while a reclaimer concurrently evicts heap pages to keep frames free.
  auto reclaimer = kthread::spawn("reclaimer", [&] {
    vm_map_reclaim(*map, physical_memory.raw(), 8);
  });
  kern_return_t kr = vm_map_pageable(*map, code_base, 8 * vm_page_size, /*wire=*/true);
  reclaimer->join();
  std::printf("wired code region: %s; frames used %zu/32\n", to_string(kr),
              physical_memory.raw().in_use());

  // Pager ports exist per object (created at most once, sec. 5's
  // customized lock).
  std::printf("code object pager ports: pager=%p request=%p id=%p\n",
              static_cast<void*>(code->pager_port().get()),
              static_cast<void*>(code->pager_request_port().get()),
              static_cast<void*>(code->id_port().get()));

  // An address space glues the map to machine-dependent translation state
  // (pmap + per-CPU TLBs): accesses walk TLB → pmap → fault.
  pmap_system pmaps;
  tlb_set tlbs(1);
  address_space aspace(map, pmaps, &tlbs);
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 8; ++i) {
      aspace.access(0, code_base + static_cast<std::uint64_t>(i) * vm_page_size);
    }
  }
  auto as = aspace.stats();
  std::printf("address space walks: %llu TLB hits, %llu pmap hits, %llu faults\n",
              static_cast<unsigned long long>(as.tlb_hits),
              static_cast<unsigned long long>(as.pmap_hits),
              static_cast<unsigned long long>(as.faults));

  // A pageout daemon keeps frames free by evicting unwired pages, so
  // allocators sleeping on the zone get unblocked automatically.
  {
    pageout_daemon daemon(physical_memory.raw(), /*low_water=*/20);
    daemon.register_map(map);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::printf("pageout daemon: %llu scans, %llu reclaim passes; frames used %zu/32\n",
                static_cast<unsigned long long>(daemon.scans()),
                static_cast<unsigned long long>(daemon.reclaim_passes()),
                physical_memory.raw().in_use());
  }

  // Unwire and terminate; the dual count guarantees no termination races
  // with in-flight paging.
  vm_map_pageable(*map, code_base, 8 * vm_page_size, /*wire=*/false);
  map->remove(code_base, 8 * vm_page_size);
  map->remove(heap_base, 16 * vm_page_size);
  code->terminate();
  heap->terminate();
  std::printf("terminated both objects; frames used %zu/32 (expected 0)\n",
              physical_memory.raw().in_use());
  return 0;
}
