// lock_doctor: the diagnostic tooling in action — lockstat (Appendix A's
// "debugging and statistics information") and the wait-for-graph deadlock
// detector (the instrument behind the paper's section 5/7 deadlock
// analyses).
//
// Phase 1 runs a mixed workload and prints the most contended locks.
// Phase 2 constructs a live ABBA deadlock between two simple locks, lets
// the detector name the cycle, and unwinds it.
#include <atomic>
#include <cstdio>

#include "sched/kthread.h"
#include "sync/complex_lock.h"
#include "sync/deadlock.h"
#include "sync/lockstat.h"

using namespace mach;
using namespace std::chrono_literals;

int main() {
  std::printf("machlock lock_doctor example\n============================\n\n");

  // --- Phase 1: lockstat over a mixed workload ---
  simple_lock_data_t hot("hot-simple-lock");
  simple_lock_data_t cold("cold-simple-lock");
  lock_data_t table_lock;
  lock_init(&table_lock, true, "hot-complex-lock");

  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<kthread>> workers;
  for (int t = 0; t < 4; ++t) {
    workers.push_back(kthread::spawn("worker" + std::to_string(t), [&, t] {
      long sink = 0;
      while (!stop.load()) {
        simple_lock(&hot);  // everyone hammers this one
        for (int i = 0; i < 50; ++i) sink += i;
        simple_unlock(&hot);
        if (t == 0) {  // only one thread touches the cold lock
          simple_lock(&cold);
          ++sink;
          simple_unlock(&cold);
        }
        if (t % 2 == 0) {
          read_lock_guard g(table_lock);
        } else {
          write_lock_guard g(table_lock);
        }
      }
      (void)sink;
    }));
  }
  std::this_thread::sleep_for(300ms);
  stop.store(true);
  for (auto& w : workers) w->join();
  std::printf("phase 1: workload done — lockstat report:\n");
  lock_registry::instance().print_top(6);

  // --- Phase 2: a live deadlock, named by the detector ---
  std::printf("\nphase 2: constructing an ABBA deadlock on purpose...\n");
  deadlock_tracing_scope tracing;
  wait_graph::instance().name_thread(current_thread_token(), "main");
  simple_lock_data_t lock_a("lock-A");
  simple_lock_data_t lock_b("lock-B");
  std::atomic<bool> b_held{false};

  simple_lock(&lock_a);  // main: A then (synthetically) B
  auto villain = kthread::spawn("villain", [&] {
    simple_lock(&lock_b);
    b_held.store(true);
    simple_lock(&lock_a);  // blocks on main's hold — B then A
    simple_unlock(&lock_a);
    simple_unlock(&lock_b);
  });
  while (!b_held.load()) std::this_thread::yield();
  // Main would now block on B; register the wait and let the watchdog look
  // instead of actually spinning forever.
  wait_graph::instance().thread_waits(current_thread_token(), &lock_b, "lock-B");
  auto cycle = wait_graph::instance().wait_for_cycle(3000);
  if (cycle.has_value()) {
    std::printf("  deadlock detected: %s\n", cycle->description.c_str());
  } else {
    std::printf("  (no deadlock detected — unexpected)\n");
  }
  // Unwind: main backs off its intent to take B (the backout protocol of
  // section 5), releasing A so the villain can finish.
  wait_graph::instance().thread_wait_done(current_thread_token(), &lock_b);
  simple_unlock(&lock_a);
  villain->join();
  std::printf("  unwound via backout: released A instead of waiting for B.\n");

  std::printf("\ndone.\n");
  return 0;
}
