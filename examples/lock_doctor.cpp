// lock_doctor: the diagnostic tooling in action — lockstat (Appendix A's
// "debugging and statistics information") and the wait-for-graph deadlock
// detector (the instrument behind the paper's section 5/7 deadlock
// analyses).
//
// Phase 1 runs a mixed workload and prints the most contended locks.
// Phase 2 constructs a live ABBA deadlock between two simple locks, lets
// the detector name the cycle, and unwinds it.
// Phase 3 turns on ktrace and replays the E6 recursive-lock deadlock
// (vm_map_pageable under memory shortage, sec. 7.1), then prints the
// reconstructed timeline: who blocked on what, and for how long.
// Phase 5 enables kmon, reruns a short mixed workload, and prints the
// kernel-wide metric top — the system view the per-lock tools lack.
// Phase 4 does the same for an E10 TLB-shootdown round (sec. 7), showing
// the initiator's round span bracketing every participant's ISR park.
#include <atomic>
#include <cstdio>
#include <iostream>

#include "metrics/kmon.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "sync/complex_lock.h"
#include "sync/deadlock.h"
#include "sync/lockstat.h"
#include "trace/ktrace.h"
#include "trace/trace_export.h"
#include "vm/shootdown.h"
#include "vm/vm_pageable.h"

using namespace mach;
using namespace std::chrono_literals;

int main() {
  std::printf("machlock lock_doctor example\n============================\n\n");
  ktrace::set_thread_name("main");  // label this thread in phase 3/4 timelines

  // --- Phase 1: lockstat over a mixed workload ---
  // Trace the workload so print_top's hold/wait p50/p99 columns populate
  // (they are clock-gated on ktrace; untraced runs show "-").
  ktrace::enable();
  simple_lock_data_t hot("hot-simple-lock");
  simple_lock_data_t cold("cold-simple-lock");
  lock_data_t table_lock;
  lock_init(&table_lock, true, "hot-complex-lock");

  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<kthread>> workers;
  for (int t = 0; t < 4; ++t) {
    workers.push_back(kthread::spawn("worker" + std::to_string(t), [&, t] {
      long sink = 0;
      while (!stop.load()) {
        simple_lock(&hot);  // everyone hammers this one
        for (int i = 0; i < 50; ++i) sink += i;
        simple_unlock(&hot);
        if (t == 0) {  // only one thread touches the cold lock
          simple_lock(&cold);
          ++sink;
          simple_unlock(&cold);
        }
        if (t % 2 == 0) {
          read_lock_guard g(table_lock);
        } else {
          write_lock_guard g(table_lock);
        }
      }
      (void)sink;
    }));
  }
  std::this_thread::sleep_for(300ms);
  stop.store(true);
  for (auto& w : workers) w->join();
  ktrace::disable();
  std::printf("phase 1: workload done — lockstat report (hold/wait from the trace):\n");
  lock_registry::instance().print_top(6);

  // --- Phase 2: a live deadlock, named by the detector ---
  std::printf("\nphase 2: constructing an ABBA deadlock on purpose...\n");
  deadlock_tracing_scope tracing;
  wait_graph::instance().name_thread(current_thread_token(), "main");
  simple_lock_data_t lock_a("lock-A");
  simple_lock_data_t lock_b("lock-B");
  std::atomic<bool> b_held{false};

  simple_lock(&lock_a);  // main: A then (synthetically) B
  auto villain = kthread::spawn("villain", [&] {
    simple_lock(&lock_b);
    b_held.store(true);
    simple_lock(&lock_a);  // blocks on main's hold — B then A
    simple_unlock(&lock_a);
    simple_unlock(&lock_b);
  });
  while (!b_held.load()) std::this_thread::yield();
  // Main would now block on B; register the wait and let the watchdog look
  // instead of actually spinning forever.
  wait_graph::instance().thread_waits(current_thread_token(), &lock_b, "lock-B");
  auto cycle = wait_graph::instance().wait_for_cycle(3000);
  if (cycle.has_value()) {
    std::printf("  deadlock detected: %s\n", cycle->description.c_str());
  } else {
    std::printf("  (no deadlock detected — unexpected)\n");
  }
  // Unwind: main backs off its intent to take B (the backout protocol of
  // section 5), releasing A so the villain can finish.
  wait_graph::instance().thread_wait_done(current_thread_token(), &lock_b);
  simple_unlock(&lock_a);
  villain->join();
  std::printf("  unwound via backout: released A instead of waiting for B.\n");

  // --- Phase 3: ktrace timeline of the E6 recursive-lock deadlock ---
  std::printf("\nphase 3: tracing the sec. 7.1 vm_map_pageable deadlock (E6)...\n");
  {
    ktrace::reset();
    ktrace::enable();
    // 6 physical pages, 4 already consumed: the legacy wiring path faults
    // under its recursive read lock and waits for memory that only a
    // write-locked reclaim can free.
    object_zone<vm_page> pages("doctor-pages", 6);
    auto map = make_object<vm_map>();
    auto cold = make_object<memory_object>(pages);
    auto hot = make_object<memory_object>(pages);
    std::uint64_t cold_addr = 0, hot_addr = 0;
    map->enter(cold, 0, 4 * vm_page_size, &cold_addr);
    map->enter(hot, 0, 4 * vm_page_size, &hot_addr);
    for (std::uint64_t i = 0; i < 4; ++i) {
      vm_fault(*map, cold_addr + i * vm_page_size, nullptr);
    }
    std::atomic<bool> wire_done{false};
    auto wirer = kthread::spawn("vm_map_pageable", [&] {
      wire_done.store(vm_map_pageable_legacy(*map, hot_addr, 4 * vm_page_size, true) ==
                      KERN_SUCCESS);
    });
    auto reclaimer = kthread::spawn("page-reclaimer",
                                    [&] { vm_map_reclaim(*map, pages.raw(), 4); });
    auto vm_cycle = wait_graph::instance().wait_for_cycle(3000);
    if (vm_cycle.has_value()) {
      std::printf("  deadlock detected: %s\n", vm_cycle->description.c_str());
      pages.raw().set_max(16);  // operator remedy: add memory so it unwinds
    }
    wirer->join();
    reclaimer->join();
    ktrace::disable();
    ktrace::trace_collection c = ktrace::collect();
    std::printf("  wiring %s; trace captured %zu events from %zu threads.\n",
                wire_done.load() ? "completed after the remedy" : "FAILED",
                c.events.size(), c.threads.size());
    std::printf("  timeline (last 25 events — read-wait/write-wait/blocked spans show the"
                " cycle forming):\n");
    export_text(c, std::cout, 25);
  }

  // --- Phase 4: ktrace timeline of an E10 TLB-shootdown round ---
  std::printf("\nphase 4: tracing a TLB-shootdown round (E10)...\n");
  {
    ktrace::reset();
    ktrace::enable();
    machine::instance().configure(3);
    {
      tlb_set tlbs(3);
      pmap_system pmaps;
      shootdown_engine engine(pmaps, tlbs);
      engine.attach(SPLHIGH);
      pmap target("doctor-pmap");
      std::atomic<bool> stop{false};
      std::vector<std::unique_ptr<kthread>> pollers;
      for (int i = 1; i < 3; ++i) {
        pollers.push_back(kthread::spawn("cpu" + std::to_string(i), [i, &stop] {
          cpu_binding bind(i);
          while (!stop.load()) {
            machine::interrupt_point();
            std::this_thread::yield();
          }
        }));
      }
      {
        cpu_binding bind(0);
        for (std::uint64_t r = 0; r < 2; ++r) {
          engine.update_mapping(target, 0x1000, 0xB000 + r, std::chrono::seconds(5));
        }
      }
      stop.store(true);
      for (auto& p : pollers) p->join();
    }
    machine::instance().configure(0);
    ktrace::disable();
    ktrace::trace_collection c = ktrace::collect();
    std::printf("  timeline (shootdown-post instants, each CPU's barrier-isr park, the\n"
                "  initiator's barrier-round and whole-protocol shootdown spans):\n");
    export_text(c, std::cout, 30);
  }

  // --- Phase 5: kmon — the kernel-wide counter view ---
  std::printf("\nphase 5: kmon metrics over a short mixed workload...\n");
  {
    kmon::enable();
    int ev = 0;
    std::atomic<bool> stop{false};
    std::vector<std::unique_ptr<kthread>> workers;
    simple_lock_data_t l;
    simple_lock_init(&l, "doctor-metrics-lock");
    for (int i = 0; i < 4; ++i) {
      workers.push_back(kthread::spawn(std::string("met") += std::to_string(i), [&] {
        while (!stop.load()) {
          simple_lock(&l);
          simple_unlock(&l);
          assert_wait(&ev);
          thread_block_timeout(std::chrono::milliseconds(1));
        }
      }));
    }
    for (int r = 0; r < 50; ++r) {
      thread_wakeup(&ev);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop.store(true);
    thread_wakeup(&ev);
    for (auto& w : workers) w->join();
    kmon::disable();
    std::printf("  top metrics (kmon::registry::print_top — counters, gauges,\n"
                "  block-latency histogram; exportable via MACHLOCK_METRICS=out.prom):\n");
    kmon::registry::instance().print_top(12);
  }

  std::printf("\ndone.\n");
  return 0;
}
