// ipc_server: a message-pair RPC service in the Mach style (paper sec. 3).
//
// "Most kernel operations are invoked by sending messages to the kernel
// ... Results from most kernel operations are returned to the sender in a
// second message; this pair of messages constitutes a remote procedure
// call." This example builds exactly that: a kernel_server thread owning a
// service port whose translation is a counter object, and a set of client
// threads doing request/reply over ports — each with its own reply port,
// each message carrying the reply-port reference.
//
// It then shuts the object down mid-stream and shows the clients observing
// clean KERN_TERMINATED replies while nothing leaks.
#include <atomic>
#include <cstdio>
#include <vector>

#include "ipc/stubs.h"
#include "sched/kthread.h"
#include "trace/kspan.h"
#include "trace/trace_session.h"

using namespace mach;
using namespace std::chrono_literals;

int main() {
  // Env-driven observability: MACHLOCK_TRACE=<path> exports the run,
  // MACHLOCK_SPANS=1 threads every request across client → server → reply
  // (this example is the CI smoke for kspan's cross-thread flow events).
  trace_session session;
  std::printf("machlock ipc_server example\n===========================\n\n");
  const std::uint64_t live_before = kobject::live_objects();
  {
    // The service: a counter object represented by a port.
    auto counter = make_object<counter_object>();
    auto service = make_object<port>("counter-service");
    service->set_translation(counter);
    kernel_server server(service, standard_router(), "counter-server");

    // Clients: each sends OP_COUNTER_ADD requests and awaits replies on
    // its private reply port.
    constexpr int num_clients = 4;
    constexpr int requests_per_client = 500;
    std::atomic<int> ok_replies{0};
    std::atomic<int> terminated_replies{0};
    std::vector<std::unique_ptr<kthread>> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.push_back(kthread::spawn("client" + std::to_string(c), [&, c] {
        auto reply_port = make_object<port>("client-reply");
        for (int i = 0; i < requests_per_client; ++i) {
          // One request span per message pair (inert without MACHLOCK_SPANS).
          kspan::request span("client-rpc");
          message req(OP_COUNTER_ADD, {1});
          req.reply_to = reply_port;  // the carried port right
          if (service->send(std::move(req)) != KERN_SUCCESS) break;
          auto reply = reply_port->receive(5s);
          if (!reply.has_value()) break;
          if (reply->ret == KERN_SUCCESS) {
            ok_replies.fetch_add(1);
          } else if (reply->ret == KERN_TERMINATED) {
            terminated_replies.fetch_add(1);
          }
          if (c == 0 && i == requests_per_client / 2) {
            // Halfway through, client 0 shuts the object down (sec. 10).
            shutdown_protocol(*service, {});
            std::printf("client0: issued shutdown after %d requests\n", i + 1);
          }
        }
      }));
    }
    for (auto& c : clients) c->join();
    server.stop();

    std::printf("\nresults:\n");
    std::printf("  successful replies:      %d\n", ok_replies.load());
    std::printf("  clean TERMINATED replies: %d\n", terminated_replies.load());
    std::printf("  server served:           %llu messages\n",
                static_cast<unsigned long long>(server.served()));
    counter->lock();
    std::printf("  object deactivated:      %s\n", counter->active() ? "no (?)" : "yes");
    counter->unlock();
  }
  std::printf("  leaked kernel objects:   %llu (expected 0)\n",
              static_cast<unsigned long long>(kobject::live_objects() - live_before));
  return 0;
}
