// machcached: the traffic-serving macro-workload as a runnable demo
// (docs/MACHCACHED.md; bench E17 measures the same service).
//
// A memcached-shaped request/response service built from the kernel
// substrate alone: IPC ports carry the "connections", worker kthreads on
// virtual processors serve a complex-locked (striped) item table of
// reference-counted kernel objects whose values live in a zalloc zone.
// The demo runs a short load burst, prints the service-side numbers, and
// then shows the two teardown properties the substrate guarantees: the
// cache quiesces with exactly one reference per resident item, and
// nothing leaks.
//
// Usage: machcached [connections] [workers] [duration_ms] [read_pct]
// Knobs: MACHLOCK_CACHE_SHARDS (item-table stripes, default 4),
//        MACHLOCK_REFCOUNT (item refcount policy), plus the usual
//        observability matrix (MACHLOCK_TRACE / _LOCKSTAT / _SPANS ...).
#include <cstdio>
#include <cstdlib>

#include "smp/processor.h"
#include "svc/machcached.h"
#include "trace/trace_session.h"

using namespace mach;

int main(int argc, char** argv) {
  trace_session session;
  std::printf("machlock machcached example\n===========================\n\n");
  const std::uint64_t live_before = kobject::live_objects();

  mc_load_spec spec;
  spec.connections = argc > 1 ? std::atoi(argv[1]) : 8;
  spec.workers = argc > 2 ? std::atoi(argv[2]) : 4;
  spec.duration_ms = argc > 3 ? std::atoi(argv[3]) : 300;
  spec.read_pct = argc > 4 ? std::atoi(argv[4]) : 90;
  spec.keyspace = 512;
  spec.cache.shards = mc_shards_from_env(4);
  spec.cache.max_items = 2 * spec.keyspace;
  spec.bind_vcpus = true;
  machine::instance().configure(spec.workers);

  std::printf("serving: %d connections -> %d workers (vcpu-bound), %d ms, %d%% reads,\n"
              "         %d-way striped table, policy %s\n\n",
              spec.connections, spec.workers, spec.duration_ms, spec.read_pct,
              spec.cache.shards, refcount_policy_name(spec.cache.item_policy));

  mc_load_result r = run_mc_load(spec);

  std::printf("results:\n");
  std::printf("  ops completed:      %llu (%.0f ops/s)\n",
              static_cast<unsigned long long>(r.ops), r.ops_per_second());
  std::printf("  round trip:         p50 %.1f us, p99 %.1f us\n",
              static_cast<double>(r.latency.quantile_nanos(0.50)) / 1e3,
              static_cast<double>(r.latency.quantile_nanos(0.99)) / 1e3);
  std::printf("  hit rate:           %.1f%%\n", 100.0 * r.hit_rate());
  std::printf("  server served:      %llu requests\n",
              static_cast<unsigned long long>(r.served));
  std::printf("  backpressure:       %llu queue-full sends, %llu zone-shortage SETs\n",
              static_cast<unsigned long long>(r.send_backpressure),
              static_cast<unsigned long long>(r.shortage_replies));
  std::printf("  cache:              %llu GETs (%llu hit), %llu SETs, %llu DELs\n",
              static_cast<unsigned long long>(r.cache_stats.gets),
              static_cast<unsigned long long>(r.cache_stats.hits),
              static_cast<unsigned long long>(r.cache_stats.sets),
              static_cast<unsigned long long>(r.cache_stats.deletes));
  // run_mc_load asserted check_quiesced() before teardown.
  std::printf("  quiesce invariant:  held (1 ref per resident item, zone == residency)\n");
  std::printf("  leaked objects:     %llu (expected 0)\n",
              static_cast<unsigned long long>(kobject::live_objects() - live_before));
  return 0;
}
