// shootdown_demo: a guided tour of interrupt priority levels, IPIs, and
// TLB shootdown (paper section 7).
//
// Boots a 4-CPU virtual machine, shows interrupts being masked and
// deferred by spl, then runs TLB shootdowns — including one against a CPU
// that is holding a pmap lock, demonstrating the special logic that keeps
// the barrier from deadlocking.
#include <atomic>
#include <cstdio>

#include "sched/kthread.h"
#include "vm/shootdown.h"

using namespace mach;
using namespace std::chrono_literals;

int main() {
  std::printf("machlock shootdown demo\n=======================\n\n");
  machine::instance().configure(4);
  tlb_set tlbs(4);
  pmap_system pmaps;
  shootdown_engine engine(pmaps, tlbs);
  engine.attach(SPLHIGH);

  // --- spl masking ---
  std::atomic<int> ticks{0};
  int tick_vector = machine::instance().register_vector(
      "clock-tick", SPLCLOCK, [&](virtual_cpu&) { ticks.fetch_add(1); });
  {
    cpu_binding bind(0);
    machine::instance().post_ipi(0, tick_vector);
    spl_t s = splraise(SPLCLOCK);  // masks the clock vector
    machine::interrupt_point();
    std::printf("1. at %s, pending clock tick deferred: ticks=%d\n", to_string(spl_level()),
                ticks.load());
    splx(s);  // lowering delivers it
    std::printf("   after splx to %s: ticks=%d\n", to_string(spl_level()), ticks.load());
  }

  // --- a clean shootdown round ---
  pmap p("demo-pmap");
  pmaps.pmap_enter(p, 0x4000, 0xAA000);
  for (int c = 0; c < 4; ++c) tlbs.insert(c, 0x4000, 0xAA000);  // everyone cached it
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<kthread>> cpus;
  for (int c = 1; c < 4; ++c) {
    cpus.push_back(kthread::spawn("cpu" + std::to_string(c), [c, &stop] {
      cpu_binding bind(c);
      while (!stop.load()) {
        machine::interrupt_point();
        std::this_thread::yield();
      }
    }));
  }
  {
    cpu_binding bind(0);
    auto st = engine.update_mapping(p, 0x4000, 0xBB000, 5s);
    std::printf("2. shootdown round: %s; stale entries left: ",
                st == interrupt_barrier::status::ok ? "completed" : "FAILED");
    int stale = 0;
    for (int c = 0; c < 4; ++c) {
      if (tlbs.lookup(c, 0x4000) == 0xAA000u) ++stale;
    }
    std::printf("%d (expected 0)\n", stale);
  }

  // --- the special logic: one CPU is busy at a pmap lock ---
  stop.store(true);
  for (auto& c : cpus) c->join();
  cpus.clear();
  stop.store(false);

  pmap other("other-pmap");
  std::atomic<bool> locked{false}, release{false};
  tlbs.insert(2, 0x4000, 0xBB000);
  auto busy = kthread::spawn("cpu2-busy", [&] {
    cpu_binding bind(2);
    spl_t s = other.lock_acquire();  // raises to SPLVM: IPI cannot land
    locked.store(true);
    while (!release.load()) std::this_thread::yield();
    other.lock_release(s);           // splx here delivers the deferred IPI
    while (!stop.load()) {
      machine::interrupt_point();
      std::this_thread::yield();
    }
  });
  auto idle = kthread::spawn("cpu1-idle", [&] {
    cpu_binding bind(1);
    while (!stop.load()) {
      machine::interrupt_point();
      std::this_thread::yield();
    }
  });
  auto idle3 = kthread::spawn("cpu3-idle", [&] {
    cpu_binding bind(3);
    while (!stop.load()) {
      machine::interrupt_point();
      std::this_thread::yield();
    }
  });
  while (!locked.load()) std::this_thread::yield();
  {
    cpu_binding bind(0);
    auto st = engine.update_mapping(p, 0x4000, 0xCC000, 5s);
    std::printf("3. shootdown with cpu2 at a pmap lock: round %s, cpus excluded: %llu\n",
                st == interrupt_barrier::status::ok ? "completed" : "FAILED",
                static_cast<unsigned long long>(engine.cpus_excluded()));
    std::printf("   cpu2 TLB still stale (update posted): %s\n",
                tlbs.lookup(2, 0x4000).has_value() ? "yes" : "no");
  }
  release.store(true);
  while (tlbs.lookup(2, 0x4000).has_value()) std::this_thread::yield();
  std::printf("   cpu2 dropped the pmap lock and flushed: stale entry gone\n");
  stop.store(true);
  busy->join();
  idle->join();
  idle3->join();
  machine::instance().configure(0);
  std::printf("\ndone.\n");
  return 0;
}
