// Quickstart: the machlock public API in five minutes.
//
// Walks through the paper's core facilities in order: simple locks
// (Appendix A), complex locks (Appendix B), event waits (sec. 6),
// reference counting and deactivation (secs. 8-9), and a kernel RPC with
// the sec. 10 shutdown protocol.
//
// Build & run:  ./build/examples/quickstart
#include <atomic>
#include <cstdio>
#include <thread>

#include "ipc/stubs.h"
#include "kern/task.h"
#include "sched/event.h"
#include "sync/complex_lock.h"
#include "sync/simple_lock.h"

using namespace mach;

int main() {
  std::printf("machlock quickstart\n===================\n\n");

  // --- 1. Simple locks: the spinning mutual-exclusion primitive. ---
  decl_simple_lock_data(static, counter_lock);
  simple_lock_init(&counter_lock, "counter-lock");
  long counter = 0;

  auto worker = kthread::spawn("worker", [&] {
    for (int i = 0; i < 100000; ++i) {
      simple_lock(&counter_lock);
      ++counter;
      simple_unlock(&counter_lock);
    }
  });
  for (int i = 0; i < 100000; ++i) {
    simple_locker guard(counter_lock);  // RAII form for C++ call sites
    ++counter;
  }
  worker->join();
  std::printf("1. simple lock: two threads counted to %ld (expected 200000)\n", counter);

  // --- 2. Complex locks: readers/writer with writers' priority. ---
  lock_data_t rw;
  lock_init(&rw, /*can_sleep=*/true, "table-lock");
  lock_read(&rw);   // many readers may hold this concurrently
  lock_done(&rw);
  lock_write(&rw);  // writers are exclusive and take priority over new readers
  lock_write_to_read(&rw);  // downgrade never fails...
  lock_done(&rw);
  lock_read(&rw);
  bool upgrade_failed = lock_read_to_write(&rw);  // ...upgrades can (TRUE = failed)
  if (!upgrade_failed) lock_done(&rw);
  std::printf("2. complex lock: upgrade %s, stats: %llu reads, %llu writes\n",
              upgrade_failed ? "failed" : "succeeded",
              static_cast<unsigned long long>(lock_stats(&rw).read_acquisitions),
              static_cast<unsigned long long>(lock_stats(&rw).write_acquisitions));

  // --- 3. Event waits: declare, then conditionally block. ---
  // The declaration (assert_wait) must happen before the event can occur;
  // a wakeup landing between assert_wait and thread_block is NOT lost —
  // that is the whole point of the split (sec. 6).
  static int data_ready_event;
  std::atomic<bool> declared{false};
  auto consumer = kthread::spawn("consumer", [&] {
    assert_wait(&data_ready_event);       // declaration...
    declared.store(true);
    wait_result r = thread_block();       // ...conditional wait: no lost wakeups
    std::printf("3. event wait: consumer woke (%s)\n",
                r == wait_result::awakened ? "awakened" : "other");
  });
  while (!declared.load()) std::this_thread::yield();
  thread_wakeup(&data_ready_event);  // may land before OR after the block
  consumer->join();

  // --- 4. References and deactivation. ---
  auto obj = make_object<counter_object>();  // created with one reference
  {
    ref_ptr<counter_object> second = obj;    // clone: ++count, never blocks
    std::printf("4. references: count is %d with two holders\n", obj->ref_count());
  }  // release: --count; the last release destroys
  obj->deactivate();  // the object dies; its data structure lives on
  std::uint64_t v = 0;
  kern_return_t kr = obj->read(v);
  std::printf("   after deactivation, read() fails cleanly: %s\n", to_string(kr));

  // --- 5. Kernel RPC and the shutdown protocol. ---
  ipc_space space;  // a task's port name table
  auto counter_obj = make_object<counter_object>();
  auto service = make_object<port>("counter-service");
  service->set_translation(counter_obj);  // the port represents the object
  port_name_t name = space.insert(service);

  message reply;
  msg_rpc(space, name, message(OP_COUNTER_ADD, {41}), reply, standard_router());
  msg_rpc(space, name, message(OP_COUNTER_ADD, {1}), reply, standard_router());
  std::printf("5. RPC: counter is %llu after two adds\n",
              static_cast<unsigned long long>(reply.data[0]));

  shutdown_protocol(*service, std::move(counter_obj));  // sec. 10 sequence
  kr = msg_rpc(space, name, message(OP_COUNTER_READ), reply, standard_router());
  std::printf("   after shutdown, RPC fails at translation: %s\n", to_string(kr));

  std::printf("\nDone. See examples/ipc_server.cpp, examples/vm_workload.cpp and\n"
              "examples/shootdown_demo.cpp for the deeper subsystems.\n");
  return 0;
}
