// E10 — TLB shootdown: barrier cost, the pmap special logic, and the
// section 7 three-processor deadlock.
//
// Claims reproduced:
//   (a) "Barrier synchronization at interrupt level is actively
//       discouraged because it is a costly operation" — we measure
//       shootdown round latency as participants grow;
//   (b) inconsistent interrupt protection deadlocks three processors
//       (P1 holds the lock with interrupts enabled, P2 spins with them
//       disabled, P3 initiates the barrier) — we build the exact
//       interleaving, let the wait-for-graph detector name the cycle, and
//       unwind;
//   (c) the special pmap logic removes a CPU at a pmap lock from the
//       participant set so the round completes, posting its TLB update
//       for later.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "trace/trace_session.h"
#include "base/stats.h"
#include "harness/table.h"
#include "sched/kthread.h"
#include "sync/deadlock.h"
#include "vm/shootdown.h"

namespace {

using namespace mach;
using dir = mach::metric_dir;
using namespace std::chrono_literals;

// (a) round latency vs participant count.
void bench_latency() {
  mach::table t("E10a: shootdown round latency vs participants (sec. 7 'costly operation')");
  t.columns({"participants", "rounds", "mean (us)", "p99 (us)"});
  t.dirs({dir::info, dir::info, dir::lower, dir::lower});
  for (int participants : {1, 2, 3, 5, 7}) {
    const int ncpus = participants + 1;
    machine::instance().configure(ncpus);
    tlb_set tlbs(ncpus);
    pmap_system pmaps;
    shootdown_engine engine(pmaps, tlbs);
    engine.attach(SPLHIGH);
    pmap target("e10-pmap");

    std::atomic<bool> stop{false};
    std::vector<std::unique_ptr<kthread>> pollers;
    for (int i = 1; i < ncpus; ++i) {
      pollers.push_back(kthread::spawn("cpu" + std::to_string(i), [i, &stop] {
        cpu_binding bind(i);
        while (!stop.load()) {
          machine::interrupt_point();
          std::this_thread::yield();
        }
      }));
    }
    latency_histogram lat;
    const int rounds = mach::bench_duration_ms(300) / 3;
    {
      cpu_binding bind(0);
      for (int r = 0; r < rounds; ++r) {
        std::uint64_t t0 = now_nanos();
        engine.update_mapping(target, 0x1000, 0xA000 + static_cast<std::uint64_t>(r), 5s);
        lat.record(now_nanos() - t0);
      }
    }
    stop.store(true);
    for (auto& p : pollers) p->join();
    machine::instance().configure(0);
    t.row({mach::table::num(static_cast<std::uint64_t>(participants)),
           mach::table::num(static_cast<std::uint64_t>(rounds)),
           mach::table::num(lat.mean_nanos() / 1000.0, 1),
           mach::table::num(lat.quantile_nanos(0.99) / 1000)});
  }
  t.print();
}

// (b) the three-processor deadlock, detected and unwound.
void bench_deadlock() {
  deadlock_tracing_scope tracing;
  machine::instance().configure(3);
  tlb_set tlbs(3);
  pmap_system pmaps;
  shootdown_engine engine(pmaps, tlbs);
  engine.attach(SPLHIGH);

  simple_lock_data_t device_lock;
  simple_lock_init(&device_lock, "device-lock");
  std::atomic<bool> p1_in{false}, p2_spinning{false}, unwound{false};

  auto p1 = kthread::spawn("P1(lock@spl0)", [&] {
    cpu_binding bind(1);
    simple_lock(&device_lock);  // inconsistently at spl0: interrupts enabled
    p1_in.store(true);
    while (!unwound.load()) machine::interrupt_point();
    simple_unlock(&device_lock);
  });
  while (!p1_in.load()) std::this_thread::yield();
  auto p2 = kthread::spawn("P2(spin@splhigh)", [&] {
    cpu_binding bind(2);
    spl_t s = splraise(SPLHIGH);  // interrupts disabled
    p2_spinning.store(true);
    simple_lock(&device_lock);
    simple_unlock(&device_lock);
    splx(s);
  });
  while (!p2_spinning.load()) std::this_thread::yield();

  std::atomic<int> status{-1};
  std::uint64_t t0 = now_nanos();
  auto p3 = kthread::spawn("P3(initiator)", [&] {
    cpu_binding bind(0);
    status.store(static_cast<int>(engine.barrier().run(0b110, [] {}, 30s)));
  });
  auto cycle = wait_graph::instance().wait_for_cycle(10000);
  double detect_ms = static_cast<double>(now_nanos() - t0) / 1e6;

  mach::table t("E10b: sec. 7 three-processor barrier deadlock (inconsistent spl)");
  t.columns({"observation", "value"});
  t.dirs({dir::info, dir::stat});
  t.row({"deadlock cycle detected", cycle.has_value() ? "YES" : "no"});
  t.row({"detection time (ms)", mach::table::num(detect_ms, 1)});
  if (cycle.has_value()) {
    t.row({"threads in cycle", mach::table::num(static_cast<std::uint64_t>(cycle->threads.size()))});
  }
  engine.barrier().abort_current();
  unwound.store(true);
  p1->join();
  p2->join();
  p3->join();
  t.row({"round outcome after watchdog abort",
         status.load() == static_cast<int>(interrupt_barrier::status::aborted) ? "aborted (unwound)"
                                                                               : "unexpected"});
  t.print();
  if (cycle.has_value()) std::printf("\n  cycle: %s\n", cycle->description.c_str());
  machine::instance().configure(0);
}

// (c) the pmap special logic keeps shootdown alive when a CPU holds a
// pmap lock.
void bench_special_logic() {
  mach::table t("E10c: pmap special logic — CPU at a pmap lock (sec. 7 last para.)");
  t.columns({"special logic", "round outcome", "stale TLB until lock drop", "flushed after"});
  t.dirs({dir::info, dir::info, dir::info, dir::info});
  for (bool logic : {true, false}) {
    machine::instance().configure(3);
    tlb_set tlbs(3);
    pmap_system pmaps;
    shootdown_engine engine(pmaps, tlbs);
    engine.attach(SPLHIGH);
    engine.set_pmap_special_logic(logic);
    pmap target("t"), held("h");
    tlbs.insert(2, 0x1000, 0xAAAA);

    std::atomic<bool> locked{false}, release{false}, stop{false};
    auto cpu2 = kthread::spawn("cpu2", [&] {
      cpu_binding bind(2);
      spl_t s = held.lock_acquire();
      locked.store(true);
      while (!release.load()) std::this_thread::yield();
      held.lock_release(s);
      while (!stop.load()) machine::interrupt_point();
    });
    auto cpu1 = kthread::spawn("cpu1", [&] {
      cpu_binding bind(1);
      while (!stop.load()) machine::interrupt_point();
    });
    while (!locked.load()) std::this_thread::yield();
    interrupt_barrier::status st;
    {
      cpu_binding bind(0);
      st = engine.update_mapping(target, 0x1000, 0xBBBB, 300ms);
    }
    bool stale = tlbs.lookup(2, 0x1000).has_value();
    release.store(true);
    bool flushed = false;
    for (int i = 0; i < 2000 && !flushed; ++i) {
      flushed = !tlbs.lookup(2, 0x1000).has_value();
      std::this_thread::sleep_for(1ms);
    }
    stop.store(true);
    cpu2->join();
    cpu1->join();
    machine::instance().configure(0);
    t.row({logic ? "on (Mach)" : "off",
           st == interrupt_barrier::status::ok ? "completed" : "TIMED OUT",
           stale ? "yes (posted, deferred)" : "no", flushed ? "yes" : "NO"});
  }
  t.print();
}

}  // namespace

int main() {
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  bench_latency();
  bench_deadlock();
  bench_special_logic();
  std::printf("\n  expected shape: latency grows with participants (the 'costly operation');\n"
              "  the inconsistent-spl interleaving produces the named 3-thread cycle; with\n"
              "  the special logic the round completes and the deferred flush lands later.\n");
  return 0;
}
