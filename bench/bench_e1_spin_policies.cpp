// E1 — Spin policy comparison (paper section 2).
//
// Claim: while a lock is unavailable, raw test-and-set wastes bus /
// interconnect bandwidth (every attempt is an atomic RMW = a cache-line
// ownership transfer); test-and-test-and-set spins on plain loads in the
// local cache; Mach's refinement tries the RMW first because "most locks
// in a well designed system are acquired on the first attempt".
//
// Output: per policy × thread count — acquisition throughput, the fraction
// of contended acquisitions, and failed RMWs per acquisition (the bus
// traffic proxy); plus the uncontended first-attempt check.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "trace/trace_session.h"
#include "harness/table.h"
#include "harness/workload.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "sync/simple_lock.h"
#include "sync/ticket_lock.h"
#include "vm/shootdown.h"

namespace {

using namespace mach;

struct config_result {
  spin_policy policy;
  int threads;
  double ops_per_sec;
  spin_stats stats;
};

config_result run_config(spin_policy policy, int threads, int duration_ms) {
  const int threads_ = threads;
  simple_lock_data_t lock;
  simple_lock_init(&lock, "e1", true, policy);
  std::vector<spin_stats> per_thread(static_cast<std::size_t>(threads));
  long shared = 0;

  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int t, std::uint64_t iter) {
    simple_lock(&lock, &per_thread[static_cast<std::size_t>(t)]);
    ++shared;
    // Simulate occasional preemption of the lock holder (on a machine
    // with fewer cores than threads the OS does this at scheduler ticks;
    // we make it deterministic so contention is visible at any host core
    // count). This is what makes waiters actually spin.
    if (threads_ > 1 && iter % 16 == 0) std::this_thread::yield();
    simple_unlock(&lock);
  };
  workload_result r = run_workload(spec);

  spin_stats merged;
  for (const auto& s : per_thread) merged.merge(s);
  return {policy, threads, r.ops_per_second(), merged};
}

// Trace-only showcase: a spin-policy run alone traces nothing but lock
// events. When a trace session is active, briefly exercise the scheduler
// (assert_wait/thread_block/thread_wakeup) and the TLB-shootdown engine so
// one exported timeline demonstrates the sync + sched + vm categories.
void run_trace_showcase() {
  using namespace std::chrono_literals;

  // A blocked/wakeup handshake for the sched track.
  std::atomic<bool> waiting{false};
  int the_event = 0;
  auto sleeper = kthread::spawn("trace-sleeper", [&] {
    assert_wait(&the_event);
    waiting.store(true);
    thread_block();
  });
  while (!waiting.load()) std::this_thread::yield();
  std::this_thread::sleep_for(1ms);
  thread_wakeup(&the_event);
  sleeper->join();

  // A few shootdown rounds with two participant CPUs for the vm/smp track.
  machine::instance().configure(3);
  {
    tlb_set tlbs(3);
    pmap_system pmaps;
    shootdown_engine engine(pmaps, tlbs);
    engine.attach(SPLHIGH);
    pmap target("e1-trace-pmap");
    std::atomic<bool> stop{false};
    std::vector<std::unique_ptr<kthread>> pollers;
    for (int i = 1; i < 3; ++i) {
      pollers.push_back(kthread::spawn("cpu" + std::to_string(i), [i, &stop] {
        cpu_binding bind(i);
        while (!stop.load()) {
          machine::interrupt_point();
          std::this_thread::yield();
        }
      }));
    }
    {
      cpu_binding bind(0);
      for (std::uint64_t r = 0; r < 4; ++r) {
        engine.update_mapping(target, 0x1000, 0xA000 + r, 5s);
      }
    }
    stop.store(true);
    for (auto& p : pollers) p->join();
  }
  machine::instance().configure(0);
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(200);
  const spin_policy policies[] = {spin_policy::tas, spin_policy::ttas,
                                  spin_policy::tas_then_ttas, spin_policy::ttas_backoff};

  mach::table t(
      "E1: spin policies under contention (sec. 2) — failed RMW/acq is the bus-traffic proxy");
  t.columns({"policy", "threads", "acq/s", "contended%", "failedRMW/acq", "loads/acq", "yields/acq"});
  // benchguard: gate throughput and the bus-traffic proxy; the raw spin
  // diagnostics are too host-dependent to gate.
  t.dirs({dir::info, dir::info, dir::higher, dir::stat, dir::lower, dir::stat, dir::stat});
  for (spin_policy p : policies) {
    for (int threads : {1, 2, 4, 8}) {
      config_result r = run_config(p, threads, duration);
      double acq = static_cast<double>(r.stats.acquisitions);
      if (acq == 0) acq = 1;
      t.row({to_string(p), mach::table::num(static_cast<std::uint64_t>(threads)),
             mach::table::num(static_cast<std::uint64_t>(r.ops_per_sec)),
             mach::table::num(100.0 * static_cast<double>(r.stats.contended) / acq, 1),
             mach::table::num(static_cast<double>(r.stats.failed_rmw) / acq, 3),
             mach::table::num(static_cast<double>(r.stats.spin_loads) / acq, 1),
             mach::table::num(static_cast<double>(r.stats.yields) / acq, 3)});
    }
  }
  t.print();

  // The refinement's premise: uncontended locks are acquired first try.
  mach::table t2("E1b: uncontended acquisition — first attempt succeeds (sec. 2 premise)");
  t2.columns({"policy", "acquisitions", "contended", "failedRMW"});
  t2.dirs({dir::info, dir::stat, dir::stat, dir::stat});
  for (spin_policy p : policies) {
    config_result r = run_config(p, 1, duration / 2);
    t2.row({to_string(p), mach::table::num(r.stats.acquisitions),
            mach::table::num(r.stats.contended), mach::table::num(r.stats.failed_rmw)});
  }
  t2.print();

  // E1c: fairness. Test-and-set grants the lock to whichever RMW lands
  // first; a waiter can starve behind luckier ones. The ticket lock is the
  // FIFO contrast. Fairness = min/max per-thread completed ops.
  mach::table t3("E1c: acquisition fairness at 8 threads — TAS family vs FIFO ticket lock");
  t3.columns({"lock", "ops/s", "fairness (min/max)"});
  t3.dirs({dir::info, dir::higher, dir::higher});
  auto fairness_run = [&](const char* name, auto lock_fn, auto unlock_fn) {
    workload_spec spec;
    spec.threads = 8;
    spec.duration_ms = duration;
    long shared = 0;
    spec.body = [&](int, std::uint64_t iter) {
      lock_fn();
      ++shared;
      if (iter % 16 == 0) std::this_thread::yield();  // holder preemption, as E1a
      unlock_fn();
    };
    workload_result r = run_workload(spec);
    t3.row({name, mach::table::num(static_cast<std::uint64_t>(r.ops_per_second())),
            mach::table::num(r.fairness(), 3)});
  };
  {
    simple_lock_data_t l("e1c-tas", true, spin_policy::tas);
    fairness_run("tas", [&] { simple_lock(&l); }, [&] { simple_unlock(&l); });
  }
  {
    simple_lock_data_t l("e1c-ttas", true, spin_policy::tas_then_ttas);
    fairness_run("tas+ttas", [&] { simple_lock(&l); }, [&] { simple_unlock(&l); });
  }
  {
    ticket_lock l;
    fairness_run("ticket (FIFO)", [&] { l.lock(); }, [&] { l.unlock(); });
  }
  t3.print();
  std::printf(
      "\n  expected shape: the ticket lock's fairness approaches 1.0; the TAS family\n"
      "  is measurably less fair under contention (the price of its simplicity).\n");

  if (trace.active()) {
    std::printf("\n  trace session active: adding a sched + shootdown showcase to %s\n",
                trace.path().c_str());
    run_trace_showcase();
  }
  return 0;
}
