// E13 — Primitive operation costs (Appendices A and B).
//
// google-benchmark microbenchmarks of every locking primitive the paper's
// appendices document, uncontended: the baseline costs every design
// discussion in the paper builds on (e.g. why the simple lock is "a C
// integer" and why complex locks tolerate an interlock acquisition per
// operation).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness/bench_json.h"
#include "trace/trace_session.h"
#include "ipc/stubs.h"
#include "kern/object.h"
#include "sched/event.h"
#include "sync/complex_lock.h"
#include "sync/simple_lock.h"

namespace {

using namespace mach;

void BM_SimpleLockUnlock(benchmark::State& state) {
  simple_lock_data_t l;
  simple_lock_init(&l, "bm", true, static_cast<spin_policy>(state.range(0)));
  for (auto _ : state) {
    simple_lock(&l);
    simple_unlock(&l);
  }
}
BENCHMARK(BM_SimpleLockUnlock)
    ->Arg(static_cast<int>(spin_policy::tas))
    ->Arg(static_cast<int>(spin_policy::ttas))
    ->Arg(static_cast<int>(spin_policy::tas_then_ttas))
    ->Arg(static_cast<int>(spin_policy::ttas_backoff));

void BM_SimpleLockTry(benchmark::State& state) {
  simple_lock_data_t l;
  simple_lock_init(&l, "bm-try");
  for (auto _ : state) {
    benchmark::DoNotOptimize(simple_lock_try(&l));
    simple_unlock(&l);
  }
}
BENCHMARK(BM_SimpleLockTry);

void BM_ComplexRead(benchmark::State& state) {
  lock_data_t l;
  lock_init(&l, state.range(0) != 0, "bm-read");
  for (auto _ : state) {
    lock_read(&l);
    lock_done(&l);
  }
}
BENCHMARK(BM_ComplexRead)->Arg(0)->Arg(1);  // spin / sleep option

void BM_ComplexWrite(benchmark::State& state) {
  lock_data_t l;
  lock_init(&l, state.range(0) != 0, "bm-write");
  for (auto _ : state) {
    lock_write(&l);
    lock_done(&l);
  }
}
BENCHMARK(BM_ComplexWrite)->Arg(0)->Arg(1);

void BM_ComplexUpgradeDowngrade(benchmark::State& state) {
  lock_data_t l;
  lock_init(&l, true, "bm-upg");
  for (auto _ : state) {
    lock_read(&l);
    benchmark::DoNotOptimize(lock_read_to_write(&l));
    lock_write_to_read(&l);
    lock_done(&l);
  }
}
BENCHMARK(BM_ComplexUpgradeDowngrade);

void BM_RecursiveWrite(benchmark::State& state) {
  lock_data_t l;
  lock_init(&l, true, "bm-rec");
  lock_write(&l);
  lock_set_recursive(&l);
  for (auto _ : state) {
    lock_write(&l);  // recursive acquisition
    lock_done(&l);
  }
  lock_clear_recursive(&l);
  lock_done(&l);
}
BENCHMARK(BM_RecursiveWrite);

void BM_RefCloneRelease(benchmark::State& state) {
  struct plain : kobject {
    plain() : kobject("bm") {}
  };
  auto obj = make_object<plain>();
  for (auto _ : state) {
    obj->ref_clone();
    obj->ref_release();
  }
}
BENCHMARK(BM_RefCloneRelease);

void BM_EventShortCircuit(benchmark::State& state) {
  int event = 0;
  for (auto _ : state) {
    assert_wait(&event);
    thread_wakeup(&event);
    benchmark::DoNotOptimize(thread_block());
  }
}
BENCHMARK(BM_EventShortCircuit);

void BM_PortSendReceive(benchmark::State& state) {
  auto p = make_object<port>("bm-port");
  for (auto _ : state) {
    p->send(message(1));
    benchmark::DoNotOptimize(p->try_receive());
  }
}
BENCHMARK(BM_PortSendReceive);

void BM_MsgRpcCounterAdd(benchmark::State& state) {
  ipc_space space;
  auto obj = make_object<counter_object>();
  auto p = make_object<port>("bm-rpc");
  p->set_translation(obj);
  port_name_t name = space.insert(p);
  message reply;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        msg_rpc(space, name, message(OP_COUNTER_ADD, {1}), reply, standard_router()));
  }
}
BENCHMARK(BM_MsgRpcCounterAdd);

}  // namespace

// Expanded BENCHMARK_MAIN() so a trace_session wraps the benchmark run:
// MACHLOCK_TRACE / MACHLOCK_LOCKSTAT / MACHLOCK_METRICS work here like in
// every other bench. MACHLOCK_BENCH_JSON gets google-benchmark's own JSON
// reporter instead of the harness-table collector (this bench prints no
// harness tables); note_external_output keeps trace_session's flush from
// overwriting it with an empty table list.
int main(int argc, char** argv) {
  mach::trace_session trace;
  // Under MACHLOCK_BENCH_JSON, google-benchmark writes its own JSON to
  // the BENCH_<name>.json path via the flags it expects; marking the file
  // external keeps the table-based flush from clobbering it. bench_all
  // later normalizes that file into the common table schema.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  std::string min_time_flag;
  // MACHLOCK_BENCH_MS shortens every other bench; map it onto
  // google-benchmark's per-benchmark min time so CI smoke and bench_all
  // repetitions control this binary's runtime the same way. An explicit
  // --benchmark_min_time on the command line wins.
  bool explicit_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) explicit_min_time = true;
  }
  if (const char* ms = std::getenv("MACHLOCK_BENCH_MS"); ms != nullptr && !explicit_min_time) {
    const int v = std::atoi(ms);
    if (v > 0) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "--benchmark_min_time=%.3f", v / 1000.0);
      min_time_flag = buf;
      args.push_back(min_time_flag.data());
    }
  }
  if (mach::bench_json::active()) {
    const std::string path = mach::bench_json::output_path();
    mach::bench_json::note_external_output(path);
    out_flag = "--benchmark_out=";
    out_flag += path;
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
