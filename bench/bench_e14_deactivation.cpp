// E14 — Deactivated objects (paper section 9).
//
// Claims reproduced:
//   * operations against deactivated objects "fail cleanly": the op
//     re-checks liveness under the lock and runs its recovery path;
//   * the discipline costs a liveness check on every lock acquisition —
//     we measure that overhead against an (incorrect) unchecked op;
//   * "this must be checked whenever the object is locked during the
//     operation because the object can be deactivated at any time it is
//     unlocked" — a two-phase op that drops and retakes the lock observes
//     mid-operation deactivations.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "trace/trace_session.h"
#include "sched/kthread.h"

#include "harness/table.h"
#include "harness/workload.h"
#include "kern/object.h"

namespace {

using namespace mach;

struct victim : kobject {
  victim() : kobject("e14") {}
  long value = 0;
};

// One op in the correct section 9 style. Returns false if the object was
// found deactivated (the recovery path).
bool checked_op(victim& v) {
  v.lock();
  if (!v.active()) {
    v.unlock();
    return false;  // recovery: fail with a code, corrupt nothing
  }
  ++v.value;
  v.unlock();
  return true;
}

// The same mutation without the liveness check (what the discipline costs
// is the delta to this — correct only while nothing ever deactivates).
void unchecked_op(victim& v) {
  v.lock();
  ++v.value;
  v.unlock();
}

// Two-phase op: phase 1 under the lock, unlock (simulated blocking work),
// relock and RE-CHECK. Returns 0 = ok, 1 = dead at entry, 2 = died
// mid-operation.
int two_phase_op(victim& v) {
  v.lock();
  if (!v.active()) {
    v.unlock();
    return 1;
  }
  long staged = v.value + 1;  // phase 1
  v.unlock();
  // The blocking work between the phases: wide enough a window that the
  // deactivator can land inside it.
  std::this_thread::yield();
  v.lock();
  if (!v.active()) {
    // "Pointers from an object and the internal state of that object
    // cannot, in general, be saved when unlocking and relocking."
    v.unlock();
    return 2;
  }
  v.value = staged;
  v.unlock();
  return 0;
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(250);

  // (a) overhead of the check, live object, no contention.
  {
    auto v = make_object<victim>();
    workload_spec spec;
    spec.threads = 1;
    spec.duration_ms = duration;
    spec.body = [&](int, std::uint64_t) { checked_op(*v); };
    double checked = run_workload(spec).ops_per_second();
    spec.body = [&](int, std::uint64_t) { unchecked_op(*v); };
    double unchecked = run_workload(spec).ops_per_second();
    mach::table t("E14a: cost of the liveness-check discipline (sec. 9)");
    t.columns({"variant", "ops/s", "relative"});
    t.dirs({dir::info, dir::higher, dir::stat});
    t.row({"unchecked (baseline)", mach::table::num(static_cast<std::uint64_t>(unchecked)),
           mach::table::ratio(1.0)});
    t.row({"active()-checked (Mach)", mach::table::num(static_cast<std::uint64_t>(checked)),
           mach::table::ratio(checked / unchecked)});
    t.print();
  }

  // (b) ops racing deactivation fail cleanly, exactly once each.
  {
    constexpr int objects = 8;
    std::vector<ref_ptr<victim>> victims;
    for (int i = 0; i < objects; ++i) victims.push_back(make_object<victim>());
    std::atomic<std::uint64_t> ok{0}, failed{0}, died_midway{0};
    std::atomic<int> killed{0};
    std::atomic<bool> stop{false};

    // A paced deactivator: one object dies at each 1/(objects+1) of the
    // run, so live and dead phases are both well represented.
    auto deactivator = kthread::spawn("deactivator", [&] {
      for (int i = 0; i < objects && !stop.load(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(duration / (objects + 1)));
        victims[static_cast<std::size_t>(i)]->deactivate();
        killed.fetch_add(1);
      }
    });

    workload_spec spec;
    spec.threads = 4;
    spec.duration_ms = duration;
    spec.body = [&](int t, std::uint64_t iter) {
      std::size_t idx = (static_cast<std::size_t>(t) * 3 + iter) % objects;
      switch (two_phase_op(*victims[idx])) {
        case 0: ok.fetch_add(1, std::memory_order_relaxed); break;
        case 1: failed.fetch_add(1, std::memory_order_relaxed); break;
        default: died_midway.fetch_add(1, std::memory_order_relaxed); break;
      }
    };
    workload_result r = run_workload(spec);
    stop.store(true);
    deactivator->join();

    mach::table t("E14b: two-phase ops racing deactivation (sec. 9 rules)");
    t.columns({"metric", "count"});
    t.dirs({dir::info, dir::stat});
    t.row({"operations completed", mach::table::num(ok.load())});
    t.row({"failed: dead at entry", mach::table::num(failed.load())});
    t.row({"failed: deactivated mid-operation (re-check)", mach::table::num(died_midway.load())});
    t.row({"objects deactivated", mach::table::num(static_cast<std::uint64_t>(killed.load()))});
    t.row({"total ops", mach::table::num(r.total_ops())});
    t.print();
    // Integrity: every surviving object's value must equal its successful
    // increments — no corruption from the failure paths. (We can't track
    // per-object expected counts cheaply here; the gtest suite does; this
    // bench asserts the structural invariant instead.)
    std::uint64_t leaked = 0;
    for (auto& v : victims) {
      if (v->ref_count() != 1) ++leaked;
    }
    std::printf("\n  reference balance violations: %llu (expected 0)\n",
                static_cast<unsigned long long>(leaked));
  }
  return 0;
}
