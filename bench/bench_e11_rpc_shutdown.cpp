// E11 — Kernel operations, references, and shutdown (paper section 10).
//
// Claim: the receive → translate → operate → release sequence, combined
// with the shutdown protocol (deactivate, then disable port→object
// translation, then tear down, then drop the creation reference), lets
// operations race shutdown with no use-after-free: late callers fail
// cleanly at step 2 with KERN_TERMINATED while outstanding references keep
// the data structures alive.
//
// Workload: client threads hammer counter objects through msg_rpc while a
// shutdown thread destroys the objects one by one. We report completed
// ops, clean KERN_TERMINATED failures, the reference-discipline counters
// (Mach 2.5 vs 3.0), and assert zero leaked objects.
#include <atomic>
#include <cstdio>
#include <thread>

#include "trace/kspan.h"
#include "trace/trace_session.h"
#include "harness/table.h"
#include "harness/workload.h"
#include "ipc/stubs.h"

namespace {

using namespace mach;
using namespace std::chrono_literals;

struct e11_result {
  std::uint64_t ops_ok;
  std::uint64_t terminated;
  std::uint64_t invalid_name;
  std::uint64_t refs_interface;
  std::uint64_t refs_operation;
  std::uint64_t leaked_objects;
};

e11_result run_config(ref_discipline disc, int clients, int objects, int duration_ms) {
  reset_rpc_stats();
  const std::uint64_t live_before = kobject::live_objects();
  e11_result out{};
  {
    ipc_space space;
    std::vector<ref_ptr<kobject>> creation_refs;
    std::vector<ref_ptr<port>> ports;
    std::vector<port_name_t> names;
    for (int i = 0; i < objects; ++i) {
      auto obj = make_object<counter_object>();
      auto p = make_object<port>("e11-port");
      p->set_translation(obj);
      names.push_back(space.insert(p));
      ports.push_back(std::move(p));
      creation_refs.push_back(std::move(obj));
    }

    std::atomic<bool> clients_done{false};
    workload_spec spec;
    spec.threads = clients;
    spec.duration_ms = duration_ms;
    spec.body = [&](int t, std::uint64_t iter) {
      port_name_t name = names[(static_cast<std::size_t>(t) + iter) % names.size()];
      message reply;
      // One request span per RPC (inert unless MACHLOCK_SPANS=1), so a
      // traced run can be decomposed by tools/span_report.
      kspan::request span("rpc");
      msg_rpc(space, name, message(OP_COUNTER_ADD, {1}), reply, standard_router(), disc);
    };
    // Shutdown thread: spread the shutdowns across the run.
    auto destroyer = kthread::spawn("shutdown", [&] {
      for (int i = 0; i < objects; ++i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(duration_ms / (objects + 1)));
        shutdown_protocol(*ports[static_cast<std::size_t>(i)],
                          std::move(creation_refs[static_cast<std::size_t>(i)]));
        if (clients_done.load()) break;
      }
    });
    run_workload(spec);
    clients_done.store(true);
    destroyer->join();

    rpc_counters c = rpc_stats();
    out.ops_ok = c.ok;
    out.terminated = c.terminated;
    out.invalid_name = c.invalid_name;
    out.refs_interface = c.refs_released_by_interface;
    out.refs_operation = c.refs_consumed_by_operation;
  }
  out.leaked_objects = kobject::live_objects() - live_before;
  return out;
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(400);
  mach::table t("E11: RPC storm racing object shutdown (sec. 10)");
  t.columns({"discipline", "clients", "ops ok", "clean TERMINATED", "refs by interface",
             "refs by operation", "leaked objects"});
  t.dirs({dir::info, dir::info, dir::stat, dir::stat, dir::stat, dir::stat, dir::stat});
  for (int clients : {1, 2, 4}) {
    for (ref_discipline disc :
         {ref_discipline::mach25_interface_releases, ref_discipline::mach30_operation_consumes}) {
      e11_result r = run_config(disc, clients, /*objects=*/8, duration);
      t.row({disc == ref_discipline::mach25_interface_releases ? "Mach 2.5" : "Mach 3.0",
             mach::table::num(static_cast<std::uint64_t>(clients)), mach::table::num(r.ops_ok),
             mach::table::num(r.terminated), mach::table::num(r.refs_interface),
             mach::table::num(r.refs_operation), mach::table::num(r.leaked_objects)});
    }
  }
  t.print();
  std::printf("\n  expected shape: ops succeed until each object's shutdown, then fail cleanly\n"
              "  with KERN_TERMINATED (translation disabled at step 2); zero leaks either\n"
              "  discipline; 3.0 shifts successful releases from interface to operation.\n");
  return 0;
}
