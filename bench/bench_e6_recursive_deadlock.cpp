// E6 — The vm_map_pageable recursive-lock deadlock (paper section 7.1).
//
// Claim: the original vm_map_pageable holds a recursive read lock on the
// memory map while faulting pages in; if a fault must wait for memory and
// freeing memory requires a write lock on the same map, the system
// deadlocks ("While these deadlocks are difficult to cause, they have been
// observed in practice"). The rewrite — wire under the write lock, then
// fault with no map lock held — eliminates the deadlock.
//
// Output: per variant — whether the wait-for-graph detector found a
// deadlock cycle (and its shape), and the wiring wall time once resolved.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "trace/trace_session.h"
#include "base/stats.h"
#include "harness/table.h"
#include "sched/kthread.h"
#include "sync/deadlock.h"
#include "vm/vm_pageable.h"

namespace {

using namespace mach;
using namespace std::chrono_literals;

struct scenario_result {
  bool deadlocked;
  std::string cycle;
  double wire_ms;
  bool completed;
};

scenario_result run_scenario(bool legacy) {
  deadlock_tracing_scope tracing;
  // 6 physical pages; 4 consumed by cold (evictable) data, 4 needed for
  // wiring → guaranteed shortage halfway through.
  object_zone<vm_page> pages("e6-pages", 6);
  auto map = make_object<vm_map>();
  auto cold = make_object<memory_object>(pages);
  auto hot = make_object<memory_object>(pages);
  std::uint64_t cold_addr = 0, hot_addr = 0;
  map->enter(cold, 0, 4 * vm_page_size, &cold_addr);
  map->enter(hot, 0, 4 * vm_page_size, &hot_addr);
  for (int i = 0; i < 4; ++i) {
    vm_fault(*map, cold_addr + static_cast<std::uint64_t>(i) * vm_page_size, nullptr);
  }

  wait_graph::instance().name_thread(current_thread_token(), "main");
  std::atomic<bool> wire_done{false};
  std::uint64_t t0 = now_nanos();
  std::atomic<std::uint64_t> t_wire_end{0};
  auto wirer = kthread::spawn("vm_map_pageable", [&] {
    kern_return_t kr = legacy ? vm_map_pageable_legacy(*map, hot_addr, 4 * vm_page_size, true)
                              : vm_map_pageable(*map, hot_addr, 4 * vm_page_size, true);
    t_wire_end.store(now_nanos());
    wire_done.store(kr == KERN_SUCCESS);
  });
  std::atomic<bool> reclaim_done{false};
  auto reclaimer = kthread::spawn("page-reclaimer", [&] {
    vm_map_reclaim(*map, pages.raw(), 4);
    reclaim_done.store(true);
  });

  scenario_result out{};
  // Give the system time to either complete or deadlock.
  auto cycle = wait_graph::instance().wait_for_cycle(legacy ? 3000 : 500);
  if (cycle.has_value()) {
    out.deadlocked = true;
    out.cycle = cycle->description;
    // Operator remedy: add physical memory so the run can unwind.
    pages.raw().set_max(16);
  }
  wirer->join();
  reclaimer->join();
  out.completed = wire_done.load() && reclaim_done.load();
  out.wire_ms = static_cast<double>(t_wire_end.load() - t0) / 1e6;
  return out;
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  mach::table t("E6: vm_map_pageable under memory shortage (sec. 7.1)");
  t.columns({"variant", "deadlock detected", "completed after remedy", "wire time (ms)"});
  // Outcome columns are the experiment's point; wire time includes a
  // deliberate deadlock + remedy, so nothing here is a perf gate.
  t.dirs({dir::info, dir::info, dir::info, dir::stat});
  scenario_result legacy = run_scenario(true);
  scenario_result rewritten = run_scenario(false);
  t.row({"legacy (recursive lock)", legacy.deadlocked ? "YES" : "no",
         legacy.completed ? "yes" : "NO", mach::table::num(legacy.wire_ms, 1)});
  t.row({"rewritten (no recursion)", rewritten.deadlocked ? "YES" : "no",
         rewritten.completed ? "yes" : "NO", mach::table::num(rewritten.wire_ms, 1)});
  t.print();
  if (legacy.deadlocked) {
    std::printf("\n  legacy deadlock cycle: %s\n", legacy.cycle.c_str());
  }
  std::printf("\n  expected shape: legacy detects the sec. 7.1 cycle and needs operator\n"
              "  intervention; the rewrite completes on its own (reclaim can run).\n");
  return 0;
}
