// E12 — The task's two locks (paper section 5).
//
// Claim: "Some classes of objects have more than one lock in order to
// allow concurrent operations on different parts of the object (e.g., a
// task has two locks to allow task operations and ipc translations to
// occur in parallel)."
//
// Scenario: one "hog" thread performs long task operations (think
// task-statistics snapshots) holding the task lock ~50% of the time, while
// translator threads perform IPC name lookups in the same task. With a
// single shared lock every lookup can stall behind the task operation;
// with Mach's split locks the translators never touch the task lock.
//
// Metrics: translation throughput and tail latency. Expected shape: split
// locks keep translation p99 flat; the shared lock inflates it to the
// task-operation hold time (and worse, scheduling delays), and burns
// translator CPU in spinning.
#include <chrono>
#include <cstdio>
#include <thread>

#include "trace/trace_session.h"
#include "base/stats.h"
#include "harness/table.h"
#include "harness/workload.h"
#include "kern/task.h"

namespace {

using namespace mach;

struct e12_result {
  double translations_per_sec;
  double task_ops_per_sec;
  std::uint64_t translate_p99_us;
  std::uint64_t translate_max_us;
};

e12_result run_config(bool split, int translators, int duration_ms) {
  auto tk = make_object<task>("e12-task", split);
  std::vector<port_name_t> names;
  for (int i = 0; i < 16; ++i) names.push_back(tk->space().insert(make_object<port>()));

  const int threads = translators + 1;  // thread 0 is the hog
  std::vector<latency_histogram> lat(static_cast<std::size_t>(threads));
  std::atomic<std::uint64_t> task_ops{0};
  std::atomic<std::uint64_t> translations{0};

  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int t, std::uint64_t iter) {
    if (t == 0) {
      // A long task operation holding the task lock. The sleep models the
      // holder being delayed mid-operation (interrupt service, preemption
      // — the delays sec. 7 worries about), which is when the lock layout
      // matters most: with a shared lock every translation stalls behind
      // it; with split locks none do.
      (void)iter;
      tk->lock();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      tk->unlock();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      task_ops.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::uint64_t t0 = now_nanos();
      auto p = tk->space().lookup(names[iter % names.size()]);
      lat[static_cast<std::size_t>(t)].record(now_nanos() - t0);
      translations.fetch_add(1, std::memory_order_relaxed);
    }
  };
  workload_result r = run_workload(spec);

  latency_histogram all;
  for (const auto& h : lat) all.merge(h);
  double secs = static_cast<double>(r.wall_nanos) / 1e9;
  return {static_cast<double>(translations.load()) / secs,
          static_cast<double>(task_ops.load()) / secs, all.quantile_nanos(0.99) / 1000,
          all.max_nanos() / 1000};
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(250);
  mach::table t("E12: IPC translation vs long task operations — two locks vs one (sec. 5)");
  t.columns({"locking", "translators", "translations/s", "task ops/s", "xlate p99 (us)",
             "xlate max (us)"});
  t.dirs({dir::info, dir::info, dir::higher, dir::higher, dir::lower, dir::stat});
  for (int translators : {1, 2, 4}) {
    for (bool split : {true, false}) {
      e12_result r = run_config(split, translators, duration);
      t.row({split ? "split (Mach)" : "single lock",
             mach::table::num(static_cast<std::uint64_t>(translators)),
             mach::table::num(static_cast<std::uint64_t>(r.translations_per_sec)),
             mach::table::num(static_cast<std::uint64_t>(r.task_ops_per_sec)),
             mach::table::num(r.translate_p99_us), mach::table::num(r.translate_max_us)});
    }
  }
  t.print();
  std::printf("\n  expected shape: with the shared lock, translation tail latency inflates to\n"
              "  the task operation's hold time; split locks keep translations unaffected.\n");
  return 0;
}
