// E17 — machcached: a traffic-serving macro-benchmark on the kernel
// substrate (ROADMAP item 1; docs/MACHCACHED.md).
//
// The micro-benches E1–E16 measure one primitive at a time. E17 composes
// them the way the paper's kernel composes them — IPC ports in front,
// worker kthreads on virtual processors, a complex-locked (optionally
// striped) item table, kobject reference counting on every item, and
// zalloc backpressure — and measures what a *service* built on those
// primitives serves:
//
//   E17a  connections × workers × read/write mix sweep: ops/s and
//         round-trip p50/p99 (gated: ops/s higher, p99 lower).
//   E17b  item-table stripe sweep at a write-heavy mix: the sec. 2 lock
//         granularity trade-off, measured in served traffic rather than
//         raw lock throughput.
//   E17c  the lockstat contention top table for a dedicated burst: where
//         a traffic-serving kernel actually spends its contention.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/table.h"
#include "smp/processor.h"
#include "svc/machcached.h"
#include "trace/trace_session.h"

namespace {

using namespace mach;
using dir = mach::metric_dir;

mc_load_spec base_spec(int duration_ms) {
  mc_load_spec s;
  s.duration_ms = duration_ms;
  s.window = 8;
  s.keyspace = 512;
  s.del_every = 8;
  s.bind_vcpus = true;  // one worker per virtual CPU (machine::configure in main)
  s.cache.shards = mc_shards_from_env(4);
  // Headroom over the keyspace: an overwrite holds old + new blocks
  // briefly, so a zone sized exactly to the keyspace would refuse every
  // steady-state SET (see mc_cache::set).
  s.cache.max_items = 2 * s.keyspace;
  s.cache.value_words = 8;
  return s;
}

std::string us(std::uint64_t nanos) { return table::num(static_cast<double>(nanos) / 1e3, 1); }

}  // namespace

int main() {
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(300);
  machine::instance().configure(8);

  // E17a: the service under a conns × workers × mix sweep.
  table ta("E17a: machcached served throughput and latency (conns x workers x mix)");
  ta.columns({"conns", "workers", "read%", "ops/s", "p50 us", "p99 us", "hit%", "backpressure"});
  // Only ops/s gates: the latency quantiles come from log2-bucket
  // histograms, so one bucket shift reads as ±100% — far past any
  // CoV-derived threshold — and would make the perf gate flake on
  // scheduler noise. They stay in the table as descriptive stats.
  ta.dirs({dir::info, dir::info, dir::info, dir::higher, dir::stat, dir::stat, dir::stat,
           dir::stat});
  for (int conns : {4, 16}) {
    for (int workers : {2, 4}) {
      for (int read_pct : {95, 50}) {
        mc_load_spec s = base_spec(duration);
        s.connections = conns;
        s.workers = workers;
        s.read_pct = read_pct;
        mc_load_result r = run_mc_load(s);
        ta.row({table::num(static_cast<std::uint64_t>(conns)),
                table::num(static_cast<std::uint64_t>(workers)),
                table::num(static_cast<std::uint64_t>(read_pct)),
                table::num(static_cast<std::uint64_t>(r.ops_per_second())),
                us(r.latency.quantile_nanos(0.50)), us(r.latency.quantile_nanos(0.99)),
                table::num(100.0 * r.hit_rate(), 1), table::num(r.send_backpressure)});
      }
    }
  }
  ta.print();

  // E17b: stripe the item table (sec. 2's granularity trade) under a
  // write-heavy mix, where the single table lock is the bottleneck.
  table tb("E17b: machcached item-table stripes under a write-heavy mix (sec. 2)");
  tb.columns({"shards", "ops/s", "p99 us", "set fails"});
  tb.dirs({dir::info, dir::higher, dir::stat, dir::stat});  // p99: see E17a note
  for (int shards : {1, 4, 16}) {
    mc_load_spec s = base_spec(duration);
    s.connections = 16;
    s.workers = 4;
    s.read_pct = 50;
    s.cache.shards = shards;
    mc_load_result r = run_mc_load(s);
    tb.row({table::num(static_cast<std::uint64_t>(shards)),
            table::num(static_cast<std::uint64_t>(r.ops_per_second())),
            us(r.latency.quantile_nanos(0.99)), table::num(r.cache_stats.set_failures)});
  }
  tb.print();

  // E17c: where the burst's lock contention actually lands. Aggregated by
  // lock name (all stripes of the item table share "mc-shard"); counters
  // are cumulative over this process, so the table is diagnostic
  // (info/stat), never gated.
  mc_load_spec s = base_spec(duration);
  s.connections = 16;
  s.workers = 4;
  s.read_pct = 80;
  mc_load_result burst = run_mc_load(s);

  struct name_agg {
    bool is_complex = false;
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
  };
  std::map<std::string, name_agg> by_name;
  for (const lock_stat_entry& e : burst.lock_top) {
    name_agg& a = by_name[e.name];
    a.is_complex = e.is_complex;
    a.acquisitions += e.acquisitions;
    a.contended += e.contended;
  }
  std::vector<std::pair<std::string, name_agg>> ranked(by_name.begin(), by_name.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.second.contended != y.second.contended) return x.second.contended > y.second.contended;
    if (x.second.acquisitions != y.second.acquisitions)
      return x.second.acquisitions > y.second.acquisitions;
    return x.first < y.first;
  });

  table tc("E17c: machcached burst contention top table (by lock name, cumulative)");
  tc.columns({"lock", "kind", "acquisitions", "contended", "contended %"});
  tc.dirs({dir::info, dir::info, dir::stat, dir::stat, dir::stat});
  std::size_t rows = 0;
  for (const auto& [name, a] : ranked) {
    if (a.acquisitions == 0 || rows == 8) break;
    const double pct =
        100.0 * static_cast<double>(a.contended) / static_cast<double>(a.acquisitions);
    tc.row({name, a.is_complex ? "complex" : "simple", table::num(a.acquisitions),
            table::num(a.contended), table::num(pct, 2)});
    ++rows;
  }
  tc.print();

  std::printf(
      "\n  expected shape: ops/s grows with workers (more vcpu service contexts) and with\n"
      "  the read share (read holds on the item table admit concurrent GETs). Striping\n"
      "  (E17b) only pays once the item table is the bottleneck: at this scale the\n"
      "  request path is IPC-dominated (the contention table puts the service/reply\n"
      "  port locks far above mc-shard), so the shard sweep is expected to be flat —\n"
      "  sec. 2's granularity argument cuts both ways: finer locks buy nothing where\n"
      "  there is no contention to split.\n");
  return 0;
}
