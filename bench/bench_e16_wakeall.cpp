// E16 — Ablation: the wake-all policy of complex-lock releases.
//
// lock_done/lock_write_to_read wake EVERY thread blocked on the lock and
// let the waiters re-check their predicates ("Wake-all: waiters re-check
// their predicate and re-wait, which keeps the state machine simple at the
// price of a small thundering herd — Mach makes the same trade",
// sync/complex_lock.cpp). This bench quantifies that price: as the number
// of blocked writers grows, each successful acquisition costs more sleep
// episodes (each wake-all puts all-but-one waiter back to sleep).
//
// Expected shape: sleeps per acquisition grows roughly linearly with the
// number of waiters; throughput stays roughly flat (the herd re-blocks
// quickly) — evidence the simplicity trade is affordable, which is why
// both Mach and this reproduction keep it.
#include <cstdio>
#include <thread>

#include "trace/trace_session.h"
#include "harness/table.h"
#include "sched/event.h"
#include "harness/workload.h"
#include "sync/complex_lock.h"

namespace {

using namespace mach;

struct e16_result {
  double ops_per_sec;
  double sleeps_per_acq;
  double wakeups_delivered_per_acq;
};

e16_result run_config(int threads, int duration_ms) {
  lock_data_t lock;
  lock_init(&lock, /*can_sleep=*/true, "e16");
  reset_event_counters();

  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int, std::uint64_t) {
    lock_write(&lock);
    // Enough hold time that the other threads pile up asleep.
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    lock_done(&lock);
  };
  workload_result r = run_workload(spec);
  complex_lock_stats s = lock_stats(&lock);
  double acq = s.write_acquisitions != 0 ? static_cast<double>(s.write_acquisitions) : 1.0;
  return {r.ops_per_second(), static_cast<double>(s.sleeps) / acq,
          static_cast<double>(event_counters().wakeups_delivered) / acq};
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(250);
  mach::table t("E16 (ablation): wake-all release policy — the thundering-herd price");
  t.columns({"threads", "acq/s", "sleeps/acq", "wakeups delivered/acq"});
  t.dirs({dir::info, dir::higher, dir::stat, dir::stat});
  for (int threads : {1, 2, 4, 8, 16}) {
    e16_result r = run_config(threads, duration);
    t.row({mach::table::num(static_cast<std::uint64_t>(threads)),
           mach::table::num(static_cast<std::uint64_t>(r.ops_per_sec)),
           mach::table::num(r.sleeps_per_acq, 2), mach::table::num(r.wakeups_delivered_per_acq, 2)});
  }
  t.print();
  std::printf("\n  expected shape: sleeps/acq and wakeups/acq grow ~linearly with waiters\n"
              "  while throughput stays flat — the cost of wake-all simplicity, accepted\n"
              "  by Mach and by this reproduction.\n");
  return 0;
}
