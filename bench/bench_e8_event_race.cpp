// E8 — The event-wait race (paper section 6).
//
// Claim: releasing locks to wait for an event "must be atomic with respect
// to the operation that declares event occurrence; this avoids races in
// which the event occurs while the locks are being released, leaving the
// waiter blocked indefinitely. Mach implements this functionality by
// splitting the wait functionality into declaration and conditional wait
// components" (assert_wait / thread_block).
//
// We run a producer/consumer handshake two ways:
//   mach:  lock → check → assert_wait → unlock → thread_block
//   naive: lock → check → unlock → (window!) → assert_wait → thread_block
// The naive variant loses wakeups that land in the window; a rescue
// timeout converts each loss into a visible, slow recovery.
#include <atomic>
#include <cstdio>
#include <thread>

#include "trace/trace_session.h"
#include "base/stats.h"
#include "harness/table.h"
#include "sched/event.h"
#include "sched/kthread.h"
#include "sync/simple_lock.h"

namespace {

using namespace mach;
using namespace std::chrono_literals;

struct race_result {
  std::uint64_t rounds;
  std::uint64_t lost_wakeups;
  double mean_wait_us;
};

race_result run_variant(bool mach_protocol, int rounds) {
  simple_lock_data_t lock;
  simple_lock_init(&lock, "e8");
  int flag = 0;  // guarded by lock
  int consumed = 0;
  std::uint64_t lost = 0;
  std::uint64_t total_wait_ns = 0;

  auto producer = kthread::spawn("producer", [&] {
    for (int r = 0; r < rounds; ++r) {
      simple_lock(&lock);
      ++flag;
      simple_unlock(&lock);
      thread_wakeup(&flag);
      // Wait until the consumer caught up before producing again, so each
      // round is an independent race instance.
      while (true) {
        simple_lock(&lock);
        bool done = consumed > r;
        simple_unlock(&lock);
        if (done) break;
        std::this_thread::yield();
      }
    }
  });

  auto consumer = kthread::spawn("consumer", [&] {
    for (int r = 0; r < rounds; ++r) {
      std::uint64_t t0 = now_nanos();
      for (;;) {
        simple_lock(&lock);
        if (flag > r) {
          ++consumed;
          simple_unlock(&lock);
          break;
        }
        if (mach_protocol) {
          // Declaration BEFORE the unlock: a wakeup between unlock and
          // block converts the block into a no-op.
          assert_wait(&flag);
          simple_unlock(&lock);
          thread_block();
        } else {
          // The racy ordering: unlock first, then declare. A wakeup in
          // the window is lost; the rescue timeout makes that visible.
          simple_unlock(&lock);
          std::this_thread::yield();  // the window: producer may run here
          assert_wait(&flag);
          if (thread_block_timeout(2ms) == wait_result::timed_out) ++lost;
        }
      }
      total_wait_ns += now_nanos() - t0;
    }
  });

  producer->join();
  consumer->join();
  return {static_cast<std::uint64_t>(rounds), lost,
          static_cast<double>(total_wait_ns) / static_cast<double>(rounds) / 1000.0};
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int rounds = mach::bench_duration_ms(300) * 10;  // ~3000 rounds by default
  mach::table t("E8: assert_wait/thread_block vs unlock-then-wait (sec. 6)");
  t.columns({"protocol", "rounds", "lost wakeups", "mean wait (us)"});
  // lost wakeups is the demonstration (the broken protocol is SUPPOSED to
  // lose some), so it stays descriptive; the wait time gates.
  t.dirs({dir::info, dir::info, dir::stat, dir::lower});
  race_result naive = run_variant(false, rounds);
  race_result machp = run_variant(true, rounds);
  t.row({"mach (declare-then-release)", mach::table::num(machp.rounds),
         mach::table::num(machp.lost_wakeups), mach::table::num(machp.mean_wait_us, 1)});
  t.row({"naive (release-then-declare)", mach::table::num(naive.rounds),
         mach::table::num(naive.lost_wakeups), mach::table::num(naive.mean_wait_us, 1)});
  t.print();
  std::printf("\n  expected shape: the Mach split protocol loses zero wakeups; the naive\n"
              "  ordering loses some fraction, each costing a full rescue timeout.\n");
  return 0;
}
