// E4 — Upgrade vs write-then-downgrade (paper section 7.1).
//
// Claim: "The read to write upgrade feature of Mach's complex locks is
// rarely used because a failed upgrade attempt releases the read lock.
// Releasing the lock in this situation is required to avoid deadlocked
// upgrades, but also requires recovery logic in the caller to handle
// failed upgrades. A simpler alternative that avoids upgrades is to
// initially lock for writing, and downgrade to a read lock after
// operations that require the write lock are complete. This downgrade
// cannot fail and does not require any special logic."
//
// Both variants perform the same read-validate / maybe-mutate transaction.
// Expected shape: the upgrade variant pays failed upgrades (with full
// retries — the recovery logic) under contention; downgrade never fails.
#include <atomic>
#include <chrono>
#include <thread>

#include "trace/trace_session.h"
#include "harness/table.h"
#include "harness/workload.h"
#include "sync/complex_lock.h"

namespace {

using namespace mach;

struct variant_result {
  double ops_per_sec;
  std::uint64_t upgrades_failed;
  std::uint64_t retries;
};

variant_result run_upgrade(int threads, int duration_ms) {
  lock_data_t lock;
  lock_init(&lock, true, "e4-upgrade");
  long value = 0;
  std::atomic<std::uint64_t> retries{0};

  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int, std::uint64_t) {
    for (;;) {
      lock_read(&lock);
      long seen = value;  // validate phase under read lock (with dwell, so
                          // concurrent readers overlap and race to upgrade)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      if (lock_read_to_write(&lock)) {
        // TRUE = failed; our read hold is GONE — this retry loop is the
        // "recovery logic in the caller" the paper complains about.
        retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      value = seen + 1;  // mutate under the upgraded write lock
      lock_done(&lock);
      return;
    }
  };
  workload_result r = run_workload(spec);
  return {r.ops_per_second(), lock_stats(&lock).upgrades_failed, retries.load()};
}

variant_result run_downgrade(int threads, int duration_ms) {
  lock_data_t lock;
  lock_init(&lock, true, "e4-downgrade");
  long value = 0;

  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int, std::uint64_t) {
    lock_write(&lock);
    ++value;  // mutate first, under the write lock
    lock_write_to_read(&lock);  // cannot fail
    long sink = value;          // the same validate-phase dwell, under read
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    (void)sink;
    lock_done(&lock);
  };
  workload_result r = run_workload(spec);
  return {r.ops_per_second(), lock_stats(&lock).upgrades_failed, 0};
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(250);
  mach::table t("E4: read→write upgrade vs write-then-downgrade (sec. 7.1)");
  t.columns({"variant", "threads", "transactions/s", "failed upgrades", "retries"});
  t.dirs({dir::info, dir::info, dir::higher, dir::stat, dir::stat});
  for (int threads : {1, 2, 4}) {
    variant_result up = run_upgrade(threads, duration);
    variant_result down = run_downgrade(threads, duration);
    t.row({"upgrade", mach::table::num(static_cast<std::uint64_t>(threads)),
           mach::table::num(static_cast<std::uint64_t>(up.ops_per_sec)),
           mach::table::num(up.upgrades_failed), mach::table::num(up.retries)});
    t.row({"write+downgrade", mach::table::num(static_cast<std::uint64_t>(threads)),
           mach::table::num(static_cast<std::uint64_t>(down.ops_per_sec)),
           mach::table::num(down.upgrades_failed), mach::table::num(down.retries)});
  }
  t.print();
  return 0;
}
