// E2 — Lock granularity (paper section 2).
//
// Claim: "If large amounts of code are locked by each lock, the resulting
// coarse locking structure can exhibit performance bottlenecks. The
// alternative is to associate locks with data structures; this allows code
// to execute in parallel with itself."
//
// Two sub-experiments:
//
//   E2a (spin locks, CPU-bound critical sections): the classic form. Its
//   throughput shape requires real hardware parallelism — on a single-core
//   host the scheduler serializes every variant equally — so the table
//   reports contention metrics alongside ops/s and EXPERIMENTS.md records
//   the host dependence.
//
//   E2b (sleep locks, *blocking* critical sections): the same granularity
//   question where the parallel resource is overlap of blocking time (disk
//   waits, pager RPCs — exactly the operations Mach's Sleep locks exist
//   for). A global lock serializes all blocking; per-object locks let
//   independent operations overlap. This shape is host-independent and is
//   the headline result.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "trace/trace_session.h"
#include "base/compiler.h"
#include "base/rng.h"
#include "base/stats.h"
#include "harness/table.h"
#include "harness/workload.h"
#include "sync/complex_lock.h"
#include "sync/simple_lock.h"

namespace {

using namespace mach;

constexpr int num_objects = 16;

// --- E2a: spin locks, CPU-bound critical sections ---

struct e2a_result {
  double ops_per_sec;
  double contended_pct;
  std::uint64_t p99_wait_ns;
};

e2a_result run_spin(int granularity, int threads, int duration_ms) {
  struct alignas(cacheline_size) slot {
    long value = 0;
  };
  std::vector<slot> counters(num_objects);
  std::vector<std::unique_ptr<simple_lock_data_t>> locks;
  for (int i = 0; i < granularity; ++i) {
    locks.push_back(std::make_unique<simple_lock_data_t>("e2-lock"));
  }
  std::vector<spin_stats> stats(static_cast<std::size_t>(threads));
  std::vector<latency_histogram> waits(static_cast<std::size_t>(threads));

  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int t, std::uint64_t iter) {
    xorshift64 rng(static_cast<std::uint64_t>(t) * 7919 + iter);
    int object = static_cast<int>(rng.next_below(num_objects));
    simple_lock_data_t* l = locks[static_cast<std::size_t>(object) % locks.size()].get();
    std::uint64_t t0 = now_nanos();
    simple_lock(l, &stats[static_cast<std::size_t>(t)]);
    waits[static_cast<std::size_t>(t)].record(now_nanos() - t0);
    for (int i = 0; i < 64; ++i) counters[static_cast<std::size_t>(object)].value += i;
    simple_unlock(l);
  };
  workload_result r = run_workload(spec);

  spin_stats merged;
  latency_histogram wait_all;
  for (const auto& s : stats) merged.merge(s);
  for (const auto& w : waits) wait_all.merge(w);
  double acq = merged.acquisitions != 0 ? static_cast<double>(merged.acquisitions) : 1.0;
  return {r.ops_per_second(), 100.0 * static_cast<double>(merged.contended) / acq,
          wait_all.quantile_nanos(0.99)};
}

// --- E2b: sleep locks, blocking critical sections ---

double run_blocking(int granularity, int threads, int block_us, int duration_ms) {
  std::vector<std::unique_ptr<lock_data_t>> locks;
  for (int i = 0; i < granularity; ++i) {
    auto l = std::make_unique<lock_data_t>();
    lock_init(l.get(), /*can_sleep=*/true, "e2b-lock");
    locks.push_back(std::move(l));
  }
  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int t, std::uint64_t iter) {
    xorshift64 rng(static_cast<std::uint64_t>(t) * 104729 + iter);
    int object = static_cast<int>(rng.next_below(num_objects));
    lock_data_t* l = locks[static_cast<std::size_t>(object) % locks.size()].get();
    lock_write(l);
    // The blocking operation the Sleep option exists for (pager RPC,
    // allocation): holder sleeps, lock held.
    std::this_thread::sleep_for(std::chrono::microseconds(block_us));
    lock_done(l);
  };
  return run_workload(spec).ops_per_second();
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(250);
  struct variant {
    const char* name;
    int granularity;
  };
  const variant variants[] = {{"global (1 lock)", 1},
                              {"subsystem (4 locks)", 4},
                              {"per-object (16 locks)", num_objects}};

  mach::table ta("E2a: spin-lock granularity, CPU-bound sections (sec. 2)");
  ta.columns({"granularity", "threads", "ops/s", "contended%", "p99 wait (us)"});
  ta.dirs({dir::info, dir::info, dir::higher, dir::stat, dir::lower});
  for (const variant& v : variants) {
    for (int threads : {2, 8}) {
      e2a_result r = run_spin(v.granularity, threads, duration);
      ta.row({v.name, mach::table::num(static_cast<std::uint64_t>(threads)),
              mach::table::num(static_cast<std::uint64_t>(r.ops_per_sec)),
              mach::table::num(r.contended_pct, 2), mach::table::num(r.p99_wait_ns / 1000)});
    }
  }
  ta.print();

  mach::table tb("E2b: sleep-lock granularity, 500us blocking sections (sec. 2) — "
                 "parallelism = overlapped blocking");
  tb.columns({"granularity", "2 threads", "4 threads", "8 threads", "8T vs global"});
  tb.dirs({dir::info, dir::higher, dir::higher, dir::higher, dir::stat});
  std::vector<double> at8;
  std::vector<std::vector<std::string>> rows;
  for (const variant& v : variants) {
    std::vector<std::string> row{v.name};
    double last = 0;
    for (int threads : {2, 4, 8}) {
      last = run_blocking(v.granularity, threads, 500, duration);
      row.push_back(mach::table::num(static_cast<std::uint64_t>(last)));
    }
    at8.push_back(last);
    rows.push_back(std::move(row));
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].push_back(mach::table::ratio(at8[i] / at8[0]));
    tb.row(rows[i]);
  }
  tb.print();
  std::printf("\n  expected shape: in E2b, per-object locking approaches threads/1 speedup\n"
              "  over the global lock (independent blocking overlaps); E2a's throughput\n"
              "  shape additionally needs a multi-core host.\n");
  return 0;
}
