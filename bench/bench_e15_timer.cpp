// E15 — Non-locking coordination: the usage-timing subsystem (paper §2).
//
// Claim: "The Mach kernel's operation coordination techniques are based on
// multiprocessor locking, with the exception of access to timer data
// structures in its usage timing subsystem [5]" — justified because the
// single-writer restriction holds there, and techniques without locks
// "require an independently accessible memory cell per processor" while a
// locking solution uses a single cell.
//
// Workload: one writer ticking a timer continuously (the running
// processor) while N readers sample it (other processors computing usage
// statistics). Compared: the check-field lock-free timer vs the simple-
// lock baseline. Expected shape: the lock-free timer's writer is immune to
// readers (no shared lock to contend), and readers never block the writer;
// the locked version couples them.
#include <atomic>
#include <cstdio>
#include <thread>

#include "trace/trace_session.h"
#include "base/stats.h"
#include "harness/table.h"
#include "sched/timer.h"

namespace {

using namespace mach;

template <typename Timer>
struct e15_result {
  double writer_ticks_per_sec;
  double reader_reads_per_sec;
  std::uint64_t retries;
};

template <typename Timer>
e15_result<Timer> run_config(int readers, int duration_ms) {
  Timer timer;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ticks{0};
  std::atomic<std::uint64_t> reads{0};

  std::thread writer([&] {
    std::uint64_t local = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      timer.tick(timer_low_limit / 5);  // constant rollover pressure
      ++local;
    }
    ticks.store(local);
  });
  std::vector<std::thread> rs;
  std::vector<std::uint64_t> local_reads(static_cast<std::size_t>(readers), 0);
  for (int r = 0; r < readers; ++r) {
    rs.emplace_back([&, r] {
      std::uint64_t sink = 0;
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        sink += timer.total_us();
        ++n;
      }
      local_reads[static_cast<std::size_t>(r)] = n;
      (void)sink;
    });
  }
  std::uint64_t t0 = now_nanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  writer.join();
  for (auto& t : rs) t.join();
  double secs = static_cast<double>(now_nanos() - t0) / 1e9;

  std::uint64_t total_reads = 0;
  for (std::uint64_t n : local_reads) total_reads += n;
  std::uint64_t retries = 0;
  if constexpr (std::is_same_v<Timer, usage_timer>) retries = timer.read_retries();
  return {static_cast<double>(ticks.load()) / secs, static_cast<double>(total_reads) / secs,
          retries};
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(200);
  mach::table t("E15: usage timers — check-field (lock-free) vs simple-lock (sec. 2)");
  t.columns({"implementation", "readers", "writer ticks/s", "reader reads/s", "read retries"});
  t.dirs({dir::info, dir::info, dir::higher, dir::higher, dir::stat});
  for (int readers : {0, 1, 2, 4}) {
    auto lf = run_config<usage_timer>(readers, duration);
    auto lk = run_config<locked_usage_timer>(readers, duration);
    t.row({"check-field (Mach)", mach::table::num(static_cast<std::uint64_t>(readers)),
           mach::table::num(static_cast<std::uint64_t>(lf.writer_ticks_per_sec)),
           mach::table::num(static_cast<std::uint64_t>(lf.reader_reads_per_sec)),
           mach::table::num(lf.retries)});
    t.row({"simple lock", mach::table::num(static_cast<std::uint64_t>(readers)),
           mach::table::num(static_cast<std::uint64_t>(lk.writer_ticks_per_sec)),
           mach::table::num(static_cast<std::uint64_t>(lk.reader_reads_per_sec)),
           mach::table::num(lk.retries)});
  }
  t.print();
  std::printf("\n  expected shape: the check-field writer sustains its tick rate regardless\n"
              "  of reader count and readers pay only occasional retries; the locked\n"
              "  variant couples writer and readers through the shared lock.\n");
  return 0;
}
