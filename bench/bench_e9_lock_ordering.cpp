// E9 — pmap/pv-list lock-order arbitration vs backout (paper section 5).
//
// Claim: pmap modules need the pmap→pv and pv→pmap lock orders; Mach
// arbitrates with the pmap system lock ("any procedure with a write lock
// ... can assume exclusive access to the pv lists"), and some modules use
// "a backout protocol when acquiring two locks in the reverse of the
// usual order; a single attempt is made for the second lock, with failure
// causing the first one to be released and reacquired later."
//
// Workload: enter threads (pmap→pv direction) against one page-protect
// thread (pv→pmap direction), with both resolutions. Expected shape: both
// are correct; arbitration serializes protect against ALL enters (writer
// excludes readers of the system lock), while backout only pays when it
// actually collides — visible as backout retries but higher enter
// throughput at low collision rates.
#include <atomic>

#include "trace/trace_session.h"
#include "base/rng.h"
#include "harness/table.h"
#include "harness/workload.h"
#include "vm/pmap.h"
#include "vm/memory_object.h"

namespace {

using namespace mach;

struct e9_result {
  double enters_per_sec;
  double protects_per_sec;
  std::uint64_t backout_retries;
};

e9_result run_config(bool arbitrated, int enter_threads, int duration_ms) {
  pmap_system sys;
  std::vector<std::unique_ptr<pmap>> maps;
  for (int i = 0; i < enter_threads; ++i) {
    maps.push_back(std::make_unique<pmap>("e9-pmap"));
  }
  constexpr std::uint64_t frames = 32;

  const int threads = enter_threads + 1;  // last thread runs page_protect
  std::atomic<std::uint64_t> protects{0};
  std::atomic<std::uint64_t> enters{0};

  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int t, std::uint64_t iter) {
    xorshift64 rng(static_cast<std::uint64_t>(t) * 977 + iter);
    if (t == enter_threads) {
      std::uint64_t pa = (rng.next_below(frames) + 1) << vm_page_shift;
      if (arbitrated) {
        sys.page_protect_arbitrated(pa);
      } else {
        sys.page_protect_backout(pa);
      }
      protects.fetch_add(1, std::memory_order_relaxed);
    } else {
      pmap& m = *maps[static_cast<std::size_t>(t)];
      std::uint64_t va = (rng.next_below(64) + 1) << vm_page_shift;
      std::uint64_t pa = (rng.next_below(frames) + 1) << vm_page_shift;
      sys.pmap_enter(m, va, pa);
      enters.fetch_add(1, std::memory_order_relaxed);
    }
  };
  workload_result r = run_workload(spec);
  double secs = static_cast<double>(r.wall_nanos) / 1e9;
  return {static_cast<double>(enters.load()) / secs,
          static_cast<double>(protects.load()) / secs, sys.stats().backout_retries};
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(250);
  mach::table t("E9: pv->pmap order conflict — system-lock arbitration vs backout (sec. 5)");
  t.columns({"resolution", "enter threads", "enters/s", "protects/s", "backout retries"});
  t.dirs({dir::info, dir::info, dir::higher, dir::higher, dir::stat});
  for (int et : {1, 2, 4}) {
    for (bool arb : {true, false}) {
      e9_result r = run_config(arb, et, duration);
      t.row({arb ? "pmap system lock" : "backout protocol",
             mach::table::num(static_cast<std::uint64_t>(et)),
             mach::table::num(static_cast<std::uint64_t>(r.enters_per_sec)),
             mach::table::num(static_cast<std::uint64_t>(r.protects_per_sec)),
             mach::table::num(r.backout_retries)});
    }
  }
  t.print();
  return 0;
}
