// E7 — Reference counting cost and the dual-count memory object (paper
// section 8).
//
// Claims reproduced:
//   (a) "Actually acquiring a reference requires locking the object (or
//       the portion containing its reference count)" — a four-way policy
//       shoot-out under increasing sharing: the paper's locked count, the
//       atomic "portion", the Linux-style lockref (lock word + count in
//       one 64-bit cmpxchg; kern/refcount.h), and the striped per-slot
//       count for long-lived hot objects.
//   (b) the same four policies threaded through the full kobject
//       ref_ptr clone/release path (the policy choice kobject exposes).
//   (c) memory objects carry TWO counts; the paging count "is a hybrid of
//       a reference and a lock because it excludes operations such as
//       object termination while paging is in progress" — we measure how
//       long termination is excluded while faults are in flight.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "trace/trace_session.h"
#include "harness/table.h"
#include "harness/workload.h"
#include "kern/refcount.h"
#include "sched/kthread.h"
#include "vm/memory_object.h"

namespace {

using namespace mach;
using namespace std::chrono_literals;

constexpr int kThreadPoints[] = {1, 2, 4, 8};

double run_count_storm(refcount_policy policy, int threads, int duration_ms) {
  krefcount count(policy, 1);
  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int, std::uint64_t) {
    count.acquire();
    count.release();
  };
  return run_workload(spec).ops_per_second();
}

double run_kobject_storm(refcount_policy policy, int threads, int duration_ms) {
  struct plain : kobject {
    explicit plain(refcount_policy p) : kobject("e7", p) {}
  };
  auto obj = make_object<plain>(policy);
  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int, std::uint64_t) {
    ref_ptr<plain> local = obj;  // clone
  };                             // release
  return run_workload(spec).ops_per_second();
}

const char* policy_row_label(refcount_policy p) {
  switch (p) {
    case refcount_policy::locked:
      return "locked count (paper)";
    case refcount_policy::atomic:
      return "atomic portion";
    case refcount_policy::lockref:
      return "lockref cmpxchg";
    case refcount_policy::striped:
      return "striped per-slot";
  }
  return "?";
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(200);

  mach::table t("E7a: reference clone+release throughput by count policy (sec. 8)");
  t.columns({"policy", "1 thread", "2 threads", "4 threads", "8 threads"});
  t.dirs({dir::info, dir::higher, dir::higher, dir::higher, dir::higher});
  for (refcount_policy p : kRefcountPolicies) {
    std::vector<std::string> row{policy_row_label(p)};
    for (int th : kThreadPoints) {
      row.push_back(mach::table::num(
          static_cast<std::uint64_t>(run_count_storm(p, th, duration))));
    }
    t.row(row);
  }
  t.print();

  // (b) the same shoot-out through the full kobject get/put path: clone a
  // ref_ptr from a shared object and drop it, with the policy threaded
  // through the kobject constructor.
  mach::table tb("E7b: kobject ref_ptr clone+release by count policy (sec. 8)");
  tb.columns({"policy", "1 thread", "2 threads", "4 threads", "8 threads"});
  tb.dirs({dir::info, dir::higher, dir::higher, dir::higher, dir::higher});
  for (refcount_policy p : kRefcountPolicies) {
    std::vector<std::string> row{std::string("kobject ") + refcount_policy_name(p)};
    for (int th : kThreadPoints) {
      row.push_back(mach::table::num(
          static_cast<std::uint64_t>(run_kobject_storm(p, th, duration))));
    }
    tb.row(row);
  }
  tb.print();

  // (c) the hybrid paging count excludes termination.
  mach::table t2("E7c: memory-object dual count — termination excluded by paging (sec. 8)");
  t2.columns({"in-flight faults", "pager latency", "terminate wait (ms)"});
  t2.dirs({dir::info, dir::info, dir::stat});
  for (int faults : {0, 1, 4}) {
    const auto pager_latency = 30ms;
    object_zone<vm_page> pages("e7-pages", 16);
    auto obj = make_object<memory_object>(pages, pager_latency);
    std::vector<std::unique_ptr<kthread>> faulters;
    for (int i = 0; i < faults; ++i) {
      faulters.push_back(kthread::spawn("fault" + std::to_string(i), [&, i] {
        vm_page* p = nullptr;
        obj->page_request(static_cast<std::uint64_t>(i) * vm_page_size, &p);
      }));
    }
    if (faults > 0) {
      while (obj->paging_in_progress() == 0) std::this_thread::yield();
    }
    std::uint64_t t0 = now_nanos();
    obj->terminate();
    double wait_ms = static_cast<double>(now_nanos() - t0) / 1e6;
    for (auto& f : faulters) f->join();
    t2.row({mach::table::num(static_cast<std::uint64_t>(faults)), "30ms",
            mach::table::num(wait_ms, 1)});
  }
  t2.print();
  std::printf("\n  expected shape: terminate waits ~one pager latency whenever faults are in\n"
              "  flight (the hybrid count's exclusion), ~0 otherwise; lockref and the atomic\n"
              "  portion outpace the locked count as sharing grows (no lock convoy), and the\n"
              "  striped count scales further once threads stop sharing a count line.\n");
  return 0;
}
