// E3 — Writers' priority (paper section 4).
//
// Claim: the Multiple protocol implements "a multiple readers/single
// writer lock, with writers priority to avoid starvation. This means that
// readers may not be added to a lock held for reading in the presence of
// an outstanding write request, thus ensuring that the lock will be
// released and made available to the writer."
//
// We flood a complex lock with readers and measure what a single writer
// experiences with writers' priority on (Mach) vs off (ablation).
// Expected shape: priority off → writer ops collapse and worst-case write
// latency explodes; priority on → bounded.
#include <chrono>
#include <thread>

#include "trace/trace_session.h"
#include "base/stats.h"

#include "harness/table.h"
#include "harness/workload.h"
#include "sync/complex_lock.h"

namespace {

using namespace mach;

struct run_result {
  double reader_ops_per_sec;
  double writer_ops_per_sec;
  std::uint64_t writer_p99_us;
  std::uint64_t writer_max_us;
};

run_result run_config(bool writer_priority, int readers, int duration_ms) {
  lock_data_t lock;
  lock_init(&lock, /*can_sleep=*/true, "e3");
  lock_set_writer_priority(&lock, writer_priority);
  long shared = 0;
  latency_histogram writer_wait;  // time from lock_write call to acquisition

  const int threads = readers + 1;  // thread 0 is the writer
  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int t, std::uint64_t) {
    if (t == 0) {
      // A paced writer (e.g. periodic table update): what matters is how
      // long each write WAITS, not how many writes it can monopolize.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      std::uint64_t t0 = now_nanos();
      lock_write(&lock);
      writer_wait.record(now_nanos() - t0);
      ++shared;
      lock_done(&lock);
    } else {
      lock_read(&lock);
      // Readers dwell (a short blocking read, e.g. copying out data)
      // long enough that their holds overlap: without writers' priority,
      // read_count then rarely reaches zero and the writer starves.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      long sink = shared;
      (void)sink;
      lock_done(&lock);
    }
  };
  workload_result r = run_workload(spec);

  run_result out{};
  const worker_result& writer = r.per_thread[0];
  std::uint64_t reader_ops = r.total_ops() - writer.ops;
  out.reader_ops_per_sec =
      static_cast<double>(reader_ops) * 1e9 / static_cast<double>(r.wall_nanos);
  out.writer_ops_per_sec =
      static_cast<double>(writer.ops) * 1e9 / static_cast<double>(r.wall_nanos);
  out.writer_p99_us = writer_wait.quantile_nanos(0.99) / 1000;
  out.writer_max_us = writer_wait.max_nanos() / 1000;
  return out;
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(300);
  mach::table t("E3: writers' priority vs reader flood (sec. 4) — 1 writer");
  t.columns({"priority", "readers", "reader ops/s", "writer ops/s", "write wait p99 (us)",
             "write wait max (us)"});
  t.dirs({dir::info, dir::info, dir::higher, dir::higher, dir::lower, dir::stat});
  for (int readers : {2, 4, 6}) {
    for (bool prio : {true, false}) {
      run_result r = run_config(prio, readers, duration);
      t.row({prio ? "on (Mach)" : "off", mach::table::num(static_cast<std::uint64_t>(readers)),
             mach::table::num(static_cast<std::uint64_t>(r.reader_ops_per_sec)),
             mach::table::num(static_cast<std::uint64_t>(r.writer_ops_per_sec)),
             mach::table::num(r.writer_p99_us), mach::table::num(r.writer_max_us)});
    }
  }
  t.print();
  return 0;
}
