// E5 — The Sleep option (paper section 4).
//
// Claim: "The Sleep option supports situations in which blocking
// operations will be executed while a lock is held. Examples of these
// operations include memory allocation (blocks if memory is not
// available) [and] accessing pageable memory." Waiters on a Sleep lock
// block through the event system and consume no CPU; waiters on a spin
// lock burn CPU for the whole time the holder is blocked.
//
// Workload: each op takes the lock and performs a simulated page-in
// (hundreds of microseconds of blocking) inside the critical section.
// Metric: process CPU time per completed operation, alongside the waiter
// sleep/spin counters. Expected shape: sleep mode's CPU/op stays near the
// critical-section cost; spin mode's CPU/op grows with thread count as
// waiters burn the holder's entire blocking time.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>

#include "trace/trace_session.h"
#include "harness/table.h"
#include "harness/workload.h"
#include "sync/complex_lock.h"

namespace {

using namespace mach;

std::uint64_t process_cpu_nanos() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

struct sleep_result {
  double ops_per_sec;
  double cpu_us_per_op;
  double cpu_utilization_pct;  // CPU time / wall time
  std::uint64_t sleeps;
  std::uint64_t spins;
};

sleep_result run_config(bool can_sleep, int threads, int block_us, int duration_ms) {
  lock_data_t lock;
  lock_init(&lock, can_sleep, "e5");

  std::uint64_t cpu0 = process_cpu_nanos();
  workload_spec spec;
  spec.threads = threads;
  spec.duration_ms = duration_ms;
  spec.body = [&](int, std::uint64_t) {
    lock_write(&lock);
    // The blocking operation inside the critical section (a page-in /
    // allocation stand-in).
    std::this_thread::sleep_for(std::chrono::microseconds(block_us));
    lock_done(&lock);
  };
  workload_result r = run_workload(spec);
  std::uint64_t cpu = process_cpu_nanos() - cpu0;

  complex_lock_stats s = lock_stats(&lock);
  double ops = static_cast<double>(r.total_ops());
  if (ops == 0) ops = 1;
  return {r.ops_per_second(), static_cast<double>(cpu) / ops / 1000.0,
          100.0 * static_cast<double>(cpu) / static_cast<double>(r.wall_nanos), s.sleeps,
          s.spins};
}

}  // namespace

int main() {
  using dir = mach::metric_dir;
  mach::trace_session trace;  // MACHLOCK_TRACE / MACHLOCK_LOCKSTAT exports on exit
  const int duration = mach::bench_duration_ms(300);
  mach::table t("E5: Sleep option vs spinning through a blocking hold (sec. 4)");
  t.columns({"mode", "threads", "block", "ops/s", "CPU us/op", "CPU util%", "sleeps", "spin iters"});
  t.dirs({dir::info, dir::info, dir::info, dir::higher, dir::lower, dir::stat, dir::stat,
          dir::stat});
  for (int block_us : {200, 1000}) {
    for (int threads : {2, 4, 8}) {
      for (bool can_sleep : {true, false}) {
        sleep_result r = run_config(can_sleep, threads, block_us, duration);
        t.row({can_sleep ? "sleep" : "spin",
               mach::table::num(static_cast<std::uint64_t>(threads)),
               mach::table::num(static_cast<std::uint64_t>(block_us)) + "us",
               mach::table::num(static_cast<std::uint64_t>(r.ops_per_sec)),
               mach::table::num(r.cpu_us_per_op, 1), mach::table::num(r.cpu_utilization_pct, 1),
               mach::table::num(r.sleeps), mach::table::num(r.spins)});
      }
    }
  }
  t.print();
  std::printf("\n  expected shape: sleep-mode waiters consume no CPU while the holder blocks\n"
              "  (CPU util stays near 0%%); spin-mode waiters burn CPU for the entire hold,\n"
              "  driving CPU/op up with thread count for no throughput gain.\n");
  return 0;
}
