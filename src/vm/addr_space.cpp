#include "vm/addr_space.h"

namespace mach {

address_space::address_space(ref_ptr<vm_map> map, pmap_system& pmaps, tlb_set* tlbs,
                             shootdown_engine* engine, const char* name)
    : map_(std::move(map)), pmaps_(pmaps), tlbs_(tlbs), engine_(engine), pmap_(name) {
  MACH_ASSERT(static_cast<bool>(map_), "address_space requires a map");
}

address_space::~address_space() = default;

kern_return_t address_space::access(int cpu, std::uint64_t va, std::uint64_t* out_pa) {
  va &= ~(vm_page_size - 1);
  // 1. TLB.
  if (tlbs_ != nullptr && cpu >= 0) {
    if (auto pa = tlbs_->lookup(cpu, va)) {
      if (out_pa != nullptr) *out_pa = *pa;
      simple_locker g(stats_lock_);
      ++stats_.tlb_hits;
      return KERN_SUCCESS;
    }
  }
  // 2. pmap walk.
  if (auto pa = pmaps_.pmap_lookup(pmap_, va)) {
    if (tlbs_ != nullptr && cpu >= 0) tlbs_->insert(cpu, va, *pa);
    if (out_pa != nullptr) *out_pa = *pa;
    simple_locker g(stats_lock_);
    ++stats_.pmap_hits;
    return KERN_SUCCESS;
  }
  // 3. Full fault: page the backing object in, then install the
  // translation (map lock before object lock, inside vm_fault).
  std::uint64_t pa = 0;
  kern_return_t kr = vm_fault(*map_, va, &pa);
  if (kr != KERN_SUCCESS) return kr;
  pmaps_.pmap_enter(pmap_, va, pa);
  if (tlbs_ != nullptr && cpu >= 0) tlbs_->insert(cpu, va, pa);
  if (out_pa != nullptr) *out_pa = pa;
  {
    simple_locker g(stats_lock_);
    ++stats_.faults;
  }
  return kr;
}

kern_return_t address_space::unmap_page(std::uint64_t va, std::chrono::milliseconds timeout) {
  va &= ~(vm_page_size - 1);
  if (engine_ != nullptr) {
    // Full shootdown round: pmap update under the barrier, every CPU's
    // TLB invalidated before anyone can race the change.
    auto st = engine_->update_mapping(pmap_, va, /*new_pa=*/0, timeout);
    if (st != interrupt_barrier::status::ok) return KERN_ABORTED;
    {
      simple_locker g(stats_lock_);
      ++stats_.shootdowns;
    }
    return KERN_SUCCESS;
  }
  // Uniprocessor path: drop the translation and the local TLB entry.
  pmaps_.pmap_remove(pmap_, va);
  if (tlbs_ != nullptr) {
    for (int c = 0; c < tlbs_->ncpus(); ++c) tlbs_->flush_local(c, va);
  }
  return KERN_SUCCESS;
}

address_space_stats address_space::stats() const {
  simple_locker g(stats_lock_);
  return stats_;
}

}  // namespace mach
