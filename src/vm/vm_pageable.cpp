#include "vm/vm_pageable.h"

#include <algorithm>

#include "sync/deadlock.h"

namespace mach {
namespace {

// Mark every entry overlapping [start,end) wired/unwired; the caller
// holds the map write lock. Returns false if the range is unmapped.
bool set_wired_locked(vm_map& map, std::uint64_t start, std::uint64_t end, bool wire) {
  bool any = false;
  for (std::uint64_t va = start; va < end; va += vm_page_size) {
    vm_map_entry* e = map.lookup_locked(va);
    if (e == nullptr) return false;
    e->wired = wire;
    any = true;
    va = e->end - vm_page_size;  // skip to entry end
  }
  return any;
}

// Unwire the resident pages of [start,end). Caller holds the map lock
// (read suffices: page wire counts are under the object locks).
void unwire_pages_locked(vm_map& map, std::uint64_t start, std::uint64_t end) {
  for (std::uint64_t va = start; va < end; va += vm_page_size) {
    vm_map_entry* e = map.lookup_locked(va);
    if (e == nullptr) continue;
    ref_ptr<memory_object> obj = e->object;
    std::uint64_t offset = e->offset + (va - e->start);
    obj->lock();
    vm_page* p = obj->page_lookup_locked(offset);
    obj->unlock();
    if (p != nullptr && p->wire_count > 0) obj->unwire_page(p);
  }
}

}  // namespace

kern_return_t vm_map_pageable_legacy(vm_map& map, std::uint64_t start, std::uint64_t size,
                                     bool wire) {
  const std::uint64_t end = start + size;
  lock_write(&map.map_lock());
  if (!set_wired_locked(map, start, end, wire)) {
    lock_done(&map.map_lock());
    return KERN_FAILURE;
  }
  if (!wire) {
    unwire_pages_locked(map, start, end);
    lock_done(&map.map_lock());
    return KERN_SUCCESS;
  }

  // The section 7.1 sequence: keep a recursive read hold across the
  // faults so the fault routine's own lock_read on the same map succeeds.
  lock_set_recursive(&map.map_lock());
  lock_write_to_read(&map.map_lock());

  kern_return_t kr = KERN_SUCCESS;
  for (std::uint64_t va = start; va < end && kr == KERN_SUCCESS; va += vm_page_size) {
    // vm_fault_wire's internal lock_read is a recursive acquisition;
    // any work needing the write lock must already have been done above
    // ("vm_map_pageable must perform any work that would otherwise
    // necessitate a write lock in the fault routine").
    kr = vm_fault_wire(map, va);
  }

  lock_clear_recursive(&map.map_lock());
  lock_done(&map.map_lock());
  if (kr != KERN_SUCCESS) {
    // Partial failure: undo the wiring so the range is not left pinned.
    write_lock_guard g(map.map_lock());
    set_wired_locked(map, start, end, false);
    unwire_pages_locked(map, start, end);
  }
  return kr;
}

kern_return_t vm_map_pageable(vm_map& map, std::uint64_t start, std::uint64_t size, bool wire) {
  const std::uint64_t end = start + size;
  // Pass 1: under the write lock, flip the wired flags and collect
  // object references for every page to fault.
  struct pending_fault {
    ref_ptr<memory_object> object;
    std::uint64_t offset;
  };
  std::vector<pending_fault> faults;
  {
    write_lock_guard g(map.map_lock());
    if (!set_wired_locked(map, start, end, wire)) return KERN_FAILURE;
    if (!wire) {
      unwire_pages_locked(map, start, end);
      return KERN_SUCCESS;
    }
    for (std::uint64_t va = start; va < end; va += vm_page_size) {
      vm_map_entry* e = map.lookup_locked(va);
      faults.push_back({e->object, e->offset + (va - e->start)});
    }
  }
  // Pass 2: no map lock held — a concurrent writer (e.g. vm_map_reclaim)
  // can proceed. The object references pin the data structures (section 8
  // "operations in progress").
  for (pending_fault& f : faults) {
    vm_page* p = nullptr;
    kern_return_t kr = f.object->page_request(f.offset, &p);
    if (kr != KERN_SUCCESS) {
      // Partial failure: unwire what we wired and clear the flags.
      write_lock_guard g(map.map_lock());
      set_wired_locked(map, start, end, false);
      unwire_pages_locked(map, start, end);
      return kr;
    }
    f.object->wire_page(p);
  }
  return KERN_SUCCESS;
}

kern_return_t vm_map_reclaim(vm_map& map, zone& page_zone, std::size_t target_pages) {
  const void* me = current_thread_token();
  // Announce responsibility for producing memory: the deadlock detector
  // needs the zone→reclaimer edge to close E6's cycle.
  wait_graph::instance().resource_held(&page_zone, me, page_zone.name());

  std::size_t reclaimed = 0;
  {
    write_lock_guard g(map.map_lock());
    ordered_hold order(&map.map_lock(), vm_map_lock_class);
    for (const vm_map_entry& e : map.entries_) {
      while (reclaimed < target_pages && e.object->evict_one()) ++reclaimed;
      if (reclaimed >= target_pages) break;
    }
  }

  wait_graph::instance().resource_released(&page_zone, me);
  return reclaimed > 0 ? KERN_SUCCESS : KERN_FAILURE;
}

}  // namespace mach
