#include "vm/tlb.h"

#include "base/panic.h"
#include "vm/memory_object.h"  // vm_page_shift

namespace mach {
namespace {

std::uint64_t vpn(std::uint64_t va) { return va >> vm_page_shift; }

}  // namespace

tlb_set::tlb_set(int ncpus) {
  cpus_.reserve(static_cast<std::size_t>(ncpus));
  for (int i = 0; i < ncpus; ++i) cpus_.push_back(std::make_unique<cpu_tlb>());
}

tlb_set::cpu_tlb& tlb_set::at(int cpu) {
  MACH_ASSERT(cpu >= 0 && cpu < ncpus(), "TLB index out of range");
  return *cpus_[static_cast<std::size_t>(cpu)];
}

void tlb_set::insert(int cpu, std::uint64_t va, std::uint64_t pa) {
  cpu_tlb& t = at(cpu);
  simple_lock(&t.lock);
  t.entries[vpn(va)] = pa;
  simple_unlock(&t.lock);
}

std::optional<std::uint64_t> tlb_set::lookup(int cpu, std::uint64_t va) {
  cpu_tlb& t = at(cpu);
  simple_lock(&t.lock);
  auto it = t.entries.find(vpn(va));
  std::optional<std::uint64_t> r =
      it == t.entries.end() ? std::nullopt : std::optional<std::uint64_t>(it->second);
  simple_unlock(&t.lock);
  return r;
}

void tlb_set::flush_local(int cpu, std::uint64_t va) {
  cpu_tlb& t = at(cpu);
  simple_lock(&t.lock);
  t.entries.erase(vpn(va));
  ++t.flushes;
  simple_unlock(&t.lock);
}

void tlb_set::flush_all_local(int cpu) {
  cpu_tlb& t = at(cpu);
  simple_lock(&t.lock);
  t.entries.clear();
  ++t.flushes;
  simple_unlock(&t.lock);
}

void tlb_set::post_invalidate(int cpu, std::uint64_t va) {
  cpu_tlb& t = at(cpu);
  simple_lock(&t.lock);
  t.pending.push_back(vpn(va));
  simple_unlock(&t.lock);
}

int tlb_set::process_pending(int cpu) {
  cpu_tlb& t = at(cpu);
  simple_lock(&t.lock);
  int n = static_cast<int>(t.pending.size());
  for (std::uint64_t v : t.pending) t.entries.erase(v);
  if (n > 0) ++t.flushes;
  t.pending.clear();
  simple_unlock(&t.lock);
  return n;
}

bool tlb_set::has_pending(int cpu) {
  cpu_tlb& t = at(cpu);
  simple_lock(&t.lock);
  bool b = !t.pending.empty();
  simple_unlock(&t.lock);
  return b;
}

std::uint64_t tlb_set::flushes(int cpu) {
  cpu_tlb& t = at(cpu);
  simple_lock(&t.lock);
  std::uint64_t f = t.flushes;
  simple_unlock(&t.lock);
  return f;
}

}  // namespace mach
