// Address spaces: the integration layer gluing the machine-independent map
// (vm_map) to the machine-dependent translation state (pmap, per-CPU TLBs,
// shootdown) — the composition a task's memory accesses actually traverse
// in Mach:
//
//   TLB lookup → pmap lookup → vm_fault (page-in) → pmap_enter → TLB fill
//
// and on unmap, the reverse teardown with cross-CPU TLB shootdown. This is
// where the section 5 ordering convention "always lock the memory map
// before the memory object" and the pmap locking protocols meet in one
// call path.
#pragma once

#include "vm/shootdown.h"
#include "vm/vm_map.h"

namespace mach {

struct address_space_stats {
  std::uint64_t tlb_hits = 0;
  std::uint64_t pmap_hits = 0;   // TLB miss, pmap walk hit
  std::uint64_t faults = 0;      // full fault path taken
  std::uint64_t shootdowns = 0;  // unmap rounds run
};

class address_space {
 public:
  // `engine` may be null: unmap then only updates the pmap and local TLB
  // (uniprocessor behaviour). `map` must outlive the address space... no —
  // the space holds its own reference.
  address_space(ref_ptr<vm_map> map, pmap_system& pmaps, tlb_set* tlbs = nullptr,
                shootdown_engine* engine = nullptr, const char* name = "address-space");
  ~address_space();
  address_space(const address_space&) = delete;
  address_space& operator=(const address_space&) = delete;

  vm_map& map() { return *map_; }
  pmap& physical_map() { return pmap_; }

  // Resolve `va` as the memory access of `cpu` (pass -1 for an unbound
  // context: no TLB). Fills the TLB and pmap as needed; `out_pa` receives
  // the physical address. Fails with KERN_FAILURE for unmapped addresses
  // and propagates fault errors (KERN_TERMINATED/KERN_ABORTED).
  kern_return_t access(int cpu, std::uint64_t va, std::uint64_t* out_pa = nullptr);

  // Remove one page's translation everywhere: pmap entry dropped, every
  // CPU's TLB shot down (barrier round when an engine is attached). The
  // map entry itself stays (the page can fault back in).
  kern_return_t unmap_page(std::uint64_t va,
                           std::chrono::milliseconds timeout = std::chrono::milliseconds(1000));

  address_space_stats stats() const;

 private:
  ref_ptr<vm_map> map_;
  pmap_system& pmaps_;
  tlb_set* tlbs_;
  shootdown_engine* engine_;
  pmap pmap_;
  mutable simple_lock_data_t stats_lock_{"aspace-stats", /*track=*/false};
  address_space_stats stats_;
};

}  // namespace mach
