// Memory maps: the address-space data structure behind a task (paper
// section 3), protected by a *sleepable complex lock* — "Most complex
// locks use the sleep option, including the lock on a memory map data
// structure."
//
// The map is itself a kernel object (reference counted, deactivatable);
// its entries hold counted references to memory objects, following the
// section 5 ordering convention: memory map before memory object.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sync/complex_lock.h"
#include "sync/lock_order.h"
#include "vm/memory_object.h"

namespace mach {

// Section 5 lock classes for the VM subsystem: map (rank 0) before
// object (rank 1).
inline constexpr lock_class vm_map_lock_class{"vm", "vm-map-lock", 0};
inline constexpr lock_class vm_object_lock_class{"vm", "vm-object-lock", 1};

struct vm_map_entry {
  std::uint64_t start = 0;  // page aligned, inclusive
  std::uint64_t end = 0;    // page aligned, exclusive
  ref_ptr<memory_object> object;
  std::uint64_t offset = 0;  // object offset corresponding to `start`
  bool wired = false;

  std::uint64_t size() const { return end - start; }
};

class vm_map final : public kobject {
 public:
  explicit vm_map(const char* name = "vm-map");

  // The map's complex lock (Sleep option on). Exposed because the VM
  // routines of the paper manipulate it directly (read faults, write
  // mutations, the vm_map_pageable recursion).
  lock_data_t& map_lock() { return lock_data_; }

  // Allocate `size` bytes backed by `obj` at `obj_offset`; the chosen
  // address is returned through `out_addr`. Takes the map write lock.
  kern_return_t enter(ref_ptr<memory_object> obj, std::uint64_t obj_offset, std::uint64_t size,
                      std::uint64_t* out_addr);
  // Remove the entry containing [start, start+size). Write lock.
  kern_return_t remove(std::uint64_t start, std::uint64_t size);

  // Entry lookup; caller holds the map lock (read or write).
  vm_map_entry* lookup_locked(std::uint64_t va);

  std::size_t entry_count();
  // Snapshot under a read lock.
  std::vector<vm_map_entry> entries_snapshot();

  // Optional hook invoked (without the map lock) after a successful fault
  // installs a page — integration point for the pmap layer.
  std::function<void(std::uint64_t va, std::uint64_t pa)> on_mapping_installed;

 private:
  friend kern_return_t vm_map_reclaim(vm_map& map, zone& page_zone, std::size_t target_pages);
  friend kern_return_t vm_map_pageable_legacy(vm_map&, std::uint64_t, std::uint64_t, bool);
  friend kern_return_t vm_map_pageable(vm_map&, std::uint64_t, std::uint64_t, bool);

  lock_data_t lock_data_;
  std::vector<vm_map_entry> entries_;  // sorted by start, non-overlapping
  std::uint64_t next_alloc_ = vm_page_size;
};

// Handle a fault at `va`: look the address up under a map read lock, page
// the backing offset in (possibly blocking with the read lock held — the
// Sleep option at work), and report the resident page's physical address.
kern_return_t vm_fault(vm_map& map, std::uint64_t va, std::uint64_t* out_pa = nullptr);

// As vm_fault, but also wires the page. Used by vm_map_pageable; takes the
// map read lock itself (the legacy caller relies on recursive bypass).
kern_return_t vm_fault_wire(vm_map& map, std::uint64_t va);

}  // namespace mach
