// TLB shootdown (paper section 7; Black et al. [2]).
//
// Changing a translation that other processors may have cached requires:
//   1. hold the pmap lock (the initiator keeps it for the whole round);
//   2. post the invalidation to every CPU's pending-TLB queue;
//   3. interrupt-barrier synchronize: every participating CPU enters the
//      shootdown ISR before any leaves, so nobody races the update with a
//      stale translation;
//   4. perform the pmap update;
//   5. release; each participant processes its posted invalidations in
//      the ISR on the way out.
//
// The SPECIAL LOGIC of section 7's last paragraph: a CPU that is
// attempting to acquire — or holding — a pmap lock cannot take the
// interrupt (it spins with that lock's spl), so it is REMOVED from the set
// of processors that must participate. "The TLB update is still posted
// for that processor, and an interrupt is sent to it. The processor will
// reenable interrupts, and hence take this interrupt before it touches
// pageable memory again." Toggleable here (use_pmap_special_logic) so E10
// can demonstrate the deadlock its absence causes.
#pragma once

#include <atomic>
#include <chrono>

#include "smp/barrier.h"
#include "vm/pmap.h"
#include "vm/tlb.h"

namespace mach {

class shootdown_engine {
 public:
  shootdown_engine(pmap_system& pmaps, tlb_set& tlbs);

  // Register the shootdown IPI vector; call once after machine::configure.
  void attach(spl_t ipi_level = SPLHIGH);

  // Disable the special logic to reproduce the section 7 deadlock (E10).
  void set_pmap_special_logic(bool on) { use_special_logic_.store(on); }

  // Change (or remove, new_pa == 0) the mapping of `va` in `map`,
  // shooting down every other CPU's TLB. Runs the full five-step
  // protocol; the initiator's own TLB is flushed inline.
  interrupt_barrier::status update_mapping(
      pmap& map, std::uint64_t va, std::uint64_t new_pa,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(1000));

  interrupt_barrier& barrier() { return barrier_; }
  tlb_set& tlbs() { return tlbs_; }

  std::uint64_t cpus_excluded() const { return excluded_.load(std::memory_order_relaxed); }

 private:
  pmap_system& pmaps_;
  tlb_set& tlbs_;
  interrupt_barrier barrier_;
  std::atomic<bool> use_special_logic_{true};
  std::atomic<std::uint64_t> excluded_{0};
};

}  // namespace mach
