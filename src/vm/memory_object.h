// Memory objects (paper sections 3, 5, 8).
//
// Reproduced behaviours:
//   * the TWO independent counts of section 8: the data-structure
//     reference count (kobject's) and paging_in_progress — "a hybrid of a
//     reference and a lock because it excludes operations such as object
//     termination that cannot be performed while paging is in progress";
//   * the section 5 customized lock: boolean flags, set under the object's
//     simple lock, marking that pager ports are being / have been created —
//     needed because port allocation may block, so the simple lock cannot
//     be held across it;
//   * the three associated ports: two pager ports (kernel↔pager
//     communication) and one identifying port;
//   * page-in via a simulated pager with configurable latency, allocating
//     resident pages from a capacity-bounded zone ("physical memory") —
//     which makes page_request a genuinely blocking operation.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <unordered_map>

#include "ipc/port.h"
#include "kern/zalloc.h"

namespace mach {

inline constexpr std::uint64_t vm_page_size = 4096;
inline constexpr std::uint64_t vm_page_shift = 12;

// Representative page payload: big enough to demonstrate content
// persistence across evict/refault cycles, small enough that zones stay
// cheap in tests. (A real kernel would use the full page size.)
inline constexpr std::size_t vm_page_data_size = 64;

// A resident physical page. Allocated from the page zone; `pa` is its
// synthetic physical address (derived from the element pointer).
struct vm_page {
  class memory_object* object = nullptr;
  std::uint64_t offset = 0;     // page-aligned offset within the object
  int wire_count = 0;           // nonzero = not evictable
  std::array<std::uint8_t, vm_page_data_size> data{};  // page contents
  std::uint64_t pa() const { return reinterpret_cast<std::uintptr_t>(this); }
};

class memory_object final : public kobject {
 public:
  // `pages`: the zone standing in for physical memory. `pager_latency`:
  // simulated time for the pager to supply a page (the blocking the Sleep
  // option exists for).
  memory_object(object_zone<vm_page>& pages,
                std::chrono::microseconds pager_latency = std::chrono::microseconds(0),
                const char* name = "memory-object");
  ~memory_object() override;

  // --- the paging count (the second, hybrid count) ---
  // Callers hold the object lock.
  void paging_begin_locked();
  void paging_end_locked();  // wakes a waiting terminator at zero
  int paging_in_progress();

  // --- paging ---
  // Make the page at `offset` resident, paging it in if needed; returns
  // the page. May block (pager latency, page-zone exhaustion, or another
  // thread already paging the same offset). Fails with KERN_TERMINATED if
  // the object is deactivated, KERN_ABORTED if it deactivates mid-fault.
  kern_return_t page_request(std::uint64_t offset, vm_page** out);
  // Resident lookup; caller holds the object lock. Null if absent.
  vm_page* page_lookup_locked(std::uint64_t offset);
  // Evict one resident, unwired page back to the zone (its contents are
  // written to the object's backing store first); false if none evictable.
  bool evict_one();
  // Wire/unwire a resident page.
  void wire_page(vm_page* p);
  void unwire_page(vm_page* p);

  std::size_t resident_count();
  // Pages currently saved in the backing store ("on disk").
  std::size_t backing_count();

  // --- termination (excluded by paging in progress) ---
  // Deactivates the object and frees all resident pages; waits for
  // paging_in_progress to drain first — the exclusion the hybrid count
  // provides.
  kern_return_t terminate();

  // --- pager ports (section 5's customized lock) ---
  // Create-once accessor: the first caller allocates the three ports
  // (which may block); concurrent callers wait on the in-progress flag.
  ref_ptr<port> pager_port();
  ref_ptr<port> pager_request_port();
  ref_ptr<port> id_port();
  bool ports_created();

  void shutdown_body() override;

 private:
  void create_ports_once();
  void free_pages_locked(bool all);
  // Lock held: save a page's contents to the backing store.
  void page_out_locked(vm_page* p);

  object_zone<vm_page>& pages_;
  std::chrono::microseconds pager_latency_;
  std::unordered_map<std::uint64_t, vm_page*> resident_;
  std::unordered_map<std::uint64_t, bool> in_transit_;  // offsets being paged in
  // The "disk": contents of paged-out pages, keyed by offset. This is what
  // the pager ports would fetch from a real memory manager.
  std::unordered_map<std::uint64_t, std::array<std::uint8_t, vm_page_data_size>> backing_;
  int paging_in_progress_ = 0;

  // The customized lock: both flags mutated under the object's simple lock.
  bool ports_creating_ = false;
  bool ports_created_ = false;
  ref_ptr<port> pager_port_, pager_request_port_, id_port_;
};

}  // namespace mach
