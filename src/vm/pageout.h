// The pageout daemon: a kernel thread that keeps physical memory (the
// page zone) from exhausting by evicting unwired resident pages.
//
// This is the standing version of the "obtaining more memory requires a
// write lock on the same map" party from the paper's section 7.1 story:
// blocked allocators sleep on the zone; the daemon watches the free level
// and evicts from registered maps under their write locks. Because it
// takes each map's write lock, it composes correctly with the rewritten
// vm_map_pageable — and deadlocks against the legacy recursive one,
// exactly as the paper reports (experiment E6 stages that with a manual
// reclaimer; the daemon is the production shape).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "sched/kthread.h"
#include "vm/vm_pageable.h"

namespace mach {

class pageout_daemon {
 public:
  // Keep at least `low_water` elements of `pages` free; check every
  // `period`. Maps are registered explicitly (the daemon holds references).
  pageout_daemon(zone& pages, std::size_t low_water,
                 std::chrono::milliseconds period = std::chrono::milliseconds(5));
  ~pageout_daemon();
  pageout_daemon(const pageout_daemon&) = delete;
  pageout_daemon& operator=(const pageout_daemon&) = delete;

  void register_map(ref_ptr<vm_map> map);

  // Stop the daemon thread (also done by the destructor).
  void stop();

  // Reclaim passes that actually evicted something / shortage scans run.
  std::uint64_t reclaim_passes() const { return evicted_.load(std::memory_order_relaxed); }
  std::uint64_t scans() const { return scans_.load(std::memory_order_relaxed); }

 private:
  void loop();
  std::size_t free_level() const;

  zone& pages_;
  std::size_t low_water_;
  std::chrono::milliseconds period_;
  mutable simple_lock_data_t maps_lock_{"pageout-maps", /*track=*/false};
  std::vector<ref_ptr<vm_map>> maps_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> scans_{0};
  std::unique_ptr<kthread> thread_;
};

}  // namespace mach
