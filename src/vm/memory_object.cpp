#include "vm/memory_object.h"

#include <thread>

#include "sched/event.h"

namespace mach {

memory_object::memory_object(object_zone<vm_page>& pages, std::chrono::microseconds pager_latency,
                             const char* name)
    // Pager-backed objects are long-lived and hot (every fault clones a
    // reference): striped counters keep the get/put traffic off one line.
    : kobject(name, refcount_policy::striped), pages_(pages), pager_latency_(pager_latency) {}

memory_object::~memory_object() {
  // Whatever is still resident goes back to the zone (no locks needed: no
  // references exist anymore).
  for (auto& [off, page] : resident_) pages_.destroy(page);
  resident_.clear();
}

void memory_object::paging_begin_locked() {
  MACH_ASSERT(locked_by_me(), "paging_begin without the object lock");
  ++paging_in_progress_;
}

void memory_object::paging_end_locked() {
  MACH_ASSERT(locked_by_me(), "paging_end without the object lock");
  MACH_ASSERT(paging_in_progress_ > 0, "paging_end underflow");
  if (--paging_in_progress_ == 0) {
    // A terminator may be waiting for the drain.
    thread_wakeup(&paging_in_progress_);
  }
}

int memory_object::paging_in_progress() {
  lock();
  int n = paging_in_progress_;
  unlock();
  return n;
}

vm_page* memory_object::page_lookup_locked(std::uint64_t offset) {
  MACH_ASSERT(locked_by_me(), "page_lookup without the object lock");
  auto it = resident_.find(offset & ~(vm_page_size - 1));
  return it == resident_.end() ? nullptr : it->second;
}

kern_return_t memory_object::page_request(std::uint64_t offset, vm_page** out) {
  offset &= ~(vm_page_size - 1);
  lock();
  for (;;) {
    if (!active()) {  // re-checked on every relock (section 9 rule)
      unlock();
      return KERN_TERMINATED;
    }
    if (vm_page* p = page_lookup_locked(offset)) {
      *out = p;
      unlock();
      return KERN_SUCCESS;
    }
    if (!in_transit_.contains(offset)) break;
    // Another thread is paging this offset in: wait for it. The event is
    // the resident table's address; wakers are page completions.
    thread_sleep(&resident_, lock_addr());
    lock();
  }
  in_transit_[offset] = true;
  paging_begin_locked();  // operation in progress: excludes termination
  unlock();

  // --- pager interaction, no object lock held ---
  if (pager_latency_.count() > 0) std::this_thread::sleep_for(pager_latency_);
  // Allocating the resident page may block on zone exhaustion — the
  // "fault routine drops its lock to wait for memory" behaviour of
  // section 7.1 (here the object lock is already dropped; the *map* lock
  // the caller may hold is the one that matters for E6).
  vm_page* p = pages_.construct();
  p->object = this;
  p->offset = offset;

  lock();
  // "The pager supplies the data": restore paged-out contents, or leave
  // the zero-filled page for first touch.
  if (auto it = backing_.find(offset); it != backing_.end()) {
    p->data = it->second;
    backing_.erase(it);
  }
  in_transit_.erase(offset);
  if (!active()) {
    // Deactivated while we paged: undo and fail (section 9 recovery).
    paging_end_locked();
    unlock();
    pages_.destroy(p);
    thread_wakeup(&resident_);
    return KERN_ABORTED;
  }
  resident_.emplace(offset, p);
  paging_end_locked();
  *out = p;
  unlock();
  thread_wakeup(&resident_);  // co-faulters of this offset
  return KERN_SUCCESS;
}

bool memory_object::evict_one() {
  vm_page* victim = nullptr;
  lock();
  for (auto it = resident_.begin(); it != resident_.end(); ++it) {
    if (it->second->wire_count == 0) {
      victim = it->second;
      page_out_locked(victim);  // contents survive on the "disk"
      resident_.erase(it);
      break;
    }
  }
  unlock();
  if (victim == nullptr) return false;
  pages_.destroy(victim);  // wakes zone waiters
  return true;
}

void memory_object::wire_page(vm_page* p) {
  lock();
  ++p->wire_count;
  unlock();
}

void memory_object::unwire_page(vm_page* p) {
  lock();
  MACH_ASSERT(p->wire_count > 0, "unwire of unwired page");
  --p->wire_count;
  unlock();
}

std::size_t memory_object::resident_count() {
  lock();
  std::size_t n = resident_.size();
  unlock();
  return n;
}

void memory_object::page_out_locked(vm_page* p) {
  MACH_ASSERT(locked_by_me(), "page_out without the object lock");
  backing_[p->offset] = p->data;
}

std::size_t memory_object::backing_count() {
  lock();
  std::size_t n = backing_.size();
  unlock();
  return n;
}

void memory_object::free_pages_locked(bool all) {
  // Move victims out, destroy outside the lock (zone free wakes waiters —
  // cheap, but keep critical sections minimal).
  std::vector<vm_page*> victims;
  for (auto it = resident_.begin(); it != resident_.end();) {
    if (all || it->second->wire_count == 0) {
      victims.push_back(it->second);
      it = resident_.erase(it);
    } else {
      ++it;
    }
  }
  unlock();
  for (vm_page* p : victims) pages_.destroy(p);
  lock();
}

kern_return_t memory_object::terminate() {
  lock();
  if (!active()) {
    unlock();
    return KERN_TERMINATED;
  }
  // The paging count excludes termination: wait for in-flight paging
  // operations to drain. Re-check liveness after each relock.
  while (paging_in_progress_ > 0) {
    thread_sleep(&paging_in_progress_, lock_addr());
    lock();
    if (!active()) {
      unlock();
      return KERN_TERMINATED;  // someone else terminated during our wait
    }
  }
  unlock();
  deactivate();
  lock();
  free_pages_locked(/*all=*/true);
  unlock();
  return KERN_SUCCESS;
}

void memory_object::shutdown_body() { (void)terminate(); }

void memory_object::create_ports_once() {
  lock();
  for (;;) {
    if (ports_created_) {
      unlock();
      return;
    }
    if (!ports_creating_) break;
    // Another thread is creating the ports; the flags are the customized
    // lock — we wait on them because the simple lock itself cannot be
    // held across the (potentially blocking) port allocation.
    thread_sleep(&ports_creating_, lock_addr());
    lock();
  }
  ports_creating_ = true;
  unlock();

  // Port allocation, outside the simple lock (it may block in a real
  // kernel; here it allocates).
  auto pager = make_object<port>("pager-port");
  auto request = make_object<port>("pager-request-port");
  auto id = make_object<port>("object-id-port");

  lock();
  pager_port_ = std::move(pager);
  pager_request_port_ = std::move(request);
  id_port_ = std::move(id);
  ports_created_ = true;
  ports_creating_ = false;
  unlock();
  thread_wakeup(&ports_creating_);
}

ref_ptr<port> memory_object::pager_port() {
  create_ports_once();
  lock();
  ref_ptr<port> r = pager_port_;
  unlock();
  return r;
}

ref_ptr<port> memory_object::pager_request_port() {
  create_ports_once();
  lock();
  ref_ptr<port> r = pager_request_port_;
  unlock();
  return r;
}

ref_ptr<port> memory_object::id_port() {
  create_ports_once();
  lock();
  ref_ptr<port> r = id_port_;
  unlock();
  return r;
}

bool memory_object::ports_created() {
  lock();
  bool b = ports_created_;
  unlock();
  return b;
}

}  // namespace mach
