#include "vm/pmap.h"

#include <algorithm>

#include "base/backoff.h"
#include "metrics/kmetrics.h"
#include "smp/processor.h"
#include "sync/lock_order.h"
#include "vm/memory_object.h"  // vm_page_size

namespace mach {
namespace {

void flag_cpu(bool v) {
  if (virtual_cpu* c = machine::current_cpu()) c->set_at_pmap_lock(v);
}

std::uint64_t vpn(std::uint64_t va) { return va >> vm_page_shift; }

}  // namespace

pmap::pmap(const char* name) : name_(name) { simple_lock_init(&lock_, name); }

spl_t pmap::lock_acquire() {
  // Consistent interrupt priority for this lock class (section 7), raised
  // BEFORE acquiring so the hold is entirely at SPLVM.
  spl_t saved = splraise(SPLVM);
  flag_cpu(true);
  simple_lock(&lock_);
  lock_order_validator::instance().on_acquire(&lock_, pmap_lock_class);
  return saved;
}

bool pmap::lock_try(spl_t* saved) {
  *saved = splraise(SPLVM);
  flag_cpu(true);
  if (simple_lock_try(&lock_)) {
    lock_order_validator::instance().on_acquire(&lock_, pmap_lock_class);
    return true;
  }
  return false;
}

void pmap::lock_release(spl_t saved) {
  lock_order_validator::instance().on_release(&lock_);
  simple_unlock(&lock_);
  flag_cpu(false);
  splx(saved);
}

void pmap::lock_release_try_failed(spl_t saved) {
  flag_cpu(false);
  splx(saved);
}

void pmap::enter_locked(std::uint64_t va, std::uint64_t pa) {
  MACH_ASSERT(simple_lock_held(&lock_), "pmap enter without the pmap lock");
  translations_[vpn(va)] = pa;
  kmet().vm_pmap_enters.inc();
}

void pmap::remove_locked(std::uint64_t va) {
  MACH_ASSERT(simple_lock_held(&lock_), "pmap remove without the pmap lock");
  translations_.erase(vpn(va));
  kmet().vm_pmap_removes.inc();
}

std::optional<std::uint64_t> pmap::lookup_locked(std::uint64_t va) const {
  MACH_ASSERT(simple_lock_held(&lock_), "pmap lookup without the pmap lock");
  auto it = translations_.find(vpn(va));
  return it == translations_.end() ? std::nullopt : std::optional<std::uint64_t>(it->second);
}

pv_table::pv_table(std::size_t buckets) {
  std::size_t n = 1;
  while (n < buckets) n <<= 1;
  mask_ = n - 1;
  buckets_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) buckets_.push_back(std::make_unique<bucket>());
}

pv_table::bucket& pv_table::bucket_for(std::uint64_t pa) {
  return *buckets_[(pa >> vm_page_shift) & mask_];
}

pmap_system::pmap_system() {
  // Spin mode: pmap code runs at raised spl and may be reached from the
  // fault path; it never blocks.
  lock_init(&system_lock_, /*can_sleep=*/false, "pmap-system-lock");
}

void pmap_system::pmap_enter(pmap& map, std::uint64_t va, std::uint64_t pa) {
  // Usual order: system(read) → pmap → pv.
  lock_read(&system_lock_);
  spl_t s = map.lock_acquire();
  map.enter_locked(va, pa);
  pv_table::bucket& b = pv_.bucket_for(pa);
  simple_lock(&b.lock);
  lock_order_validator::instance().on_acquire(&b.lock, pv_lock_class);
  b.entries.push_back({&map, va});
  lock_order_validator::instance().on_release(&b.lock);
  simple_unlock(&b.lock);
  kmet().vm_pv_operations.inc();
  map.lock_release(s);
  lock_done(&system_lock_);
  simple_lock(&stats_lock_);
  ++stats_.enters;
  simple_unlock(&stats_lock_);
}

void pmap_system::pmap_remove(pmap& map, std::uint64_t va) {
  lock_read(&system_lock_);
  spl_t s = map.lock_acquire();
  std::optional<std::uint64_t> pa = map.lookup_locked(va);
  map.remove_locked(va);
  if (pa.has_value()) {
    pv_table::bucket& b = pv_.bucket_for(*pa);
    simple_lock(&b.lock);
    std::erase_if(b.entries, [&](const pv_table::pv_entry& e) {
      return e.map == &map && e.va == va;
    });
    simple_unlock(&b.lock);
    kmet().vm_pv_operations.inc();
  }
  map.lock_release(s);
  lock_done(&system_lock_);
  simple_lock(&stats_lock_);
  ++stats_.removes;
  simple_unlock(&stats_lock_);
}

std::optional<std::uint64_t> pmap_system::pmap_lookup(pmap& map, std::uint64_t va) {
  lock_read(&system_lock_);
  spl_t s = map.lock_acquire();
  std::optional<std::uint64_t> pa = map.lookup_locked(va);
  map.lock_release(s);
  lock_done(&system_lock_);
  return pa;
}

int pmap_system::page_protect_arbitrated(std::uint64_t pa) {
  // Reverse order made safe by arbitration: the system WRITE lock excludes
  // every enter/remove (which hold it for read), so we have exclusive
  // access to the pv lists and may take pmap locks in pv→pmap order
  // without meeting an opposing pmap→pv holder.
  spl_guard at_splvm(SPLVM);  // pv locks are SPLVM locks, consistently
  lock_write(&system_lock_);
  pv_table::bucket& b = pv_.bucket_for(pa);
  simple_lock(&b.lock);
  int removed = 0;
  for (const pv_table::pv_entry& e : b.entries) {
    spl_t s = e.map->lock_acquire();
    e.map->remove_locked(e.va);
    e.map->lock_release(s);
    ++removed;
  }
  b.entries.clear();
  simple_unlock(&b.lock);
  kmet().vm_pv_operations.inc(static_cast<std::uint64_t>(removed));
  lock_done(&system_lock_);
  simple_lock(&stats_lock_);
  ++stats_.protects;
  simple_unlock(&stats_lock_);
  return removed;
}

int pmap_system::page_protect_backout(std::uint64_t pa) {
  // "a single attempt is made for the second lock, with failure causing
  // the first one to be released and reacquired later."
  spl_guard at_splvm(SPLVM);
  backoff bo;
  for (;;) {
    pv_table::bucket& b = pv_.bucket_for(pa);
    simple_lock(&b.lock);
    bool backed_out = false;
    int removed = 0;
    for (std::size_t i = 0; i < b.entries.size();) {
      pmap* m = b.entries[i].map;
      spl_t s = SPL0;
      if (!m->lock_try(&s)) {
        m->lock_release_try_failed(s);
        backed_out = true;
        break;
      }
      m->remove_locked(b.entries[i].va);
      m->lock_release(s);
      b.entries.erase(b.entries.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    }
    simple_unlock(&b.lock);
    kmet().vm_pv_operations.inc(static_cast<std::uint64_t>(removed));
    if (!backed_out) {
      simple_lock(&stats_lock_);
      ++stats_.protects;
      simple_unlock(&stats_lock_);
      return removed;
    }
    simple_lock(&stats_lock_);
    ++stats_.backout_retries;
    simple_unlock(&stats_lock_);
    bo.pause();  // reacquire "later"
  }
}

pmap_op_stats pmap_system::stats() {
  simple_lock(&stats_lock_);
  pmap_op_stats s = stats_;
  simple_unlock(&stats_lock_);
  return s;
}

}  // namespace mach
