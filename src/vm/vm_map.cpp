#include "vm/vm_map.h"

#include <algorithm>

namespace mach {

vm_map::vm_map(const char* name) : kobject(name) {
  lock_init(&lock_data_, /*can_sleep=*/true, "vm-map-lock");
}

kern_return_t vm_map::enter(ref_ptr<memory_object> obj, std::uint64_t obj_offset,
                            std::uint64_t size, std::uint64_t* out_addr) {
  if (size == 0 || (size & (vm_page_size - 1)) != 0 ||
      (obj_offset & (vm_page_size - 1)) != 0) {
    return KERN_FAILURE;
  }
  write_lock_guard g(lock_data_);
  ordered_hold order(&lock_data_, vm_map_lock_class);
  lock();
  bool alive = active();
  unlock();
  if (!alive) return KERN_TERMINATED;
  std::uint64_t start = next_alloc_;
  next_alloc_ += size + vm_page_size;  // guard page between entries
  entries_.push_back(vm_map_entry{start, start + size, std::move(obj), obj_offset, false});
  std::sort(entries_.begin(), entries_.end(),
            [](const vm_map_entry& a, const vm_map_entry& b) { return a.start < b.start; });
  *out_addr = start;
  return KERN_SUCCESS;
}

kern_return_t vm_map::remove(std::uint64_t start, std::uint64_t size) {
  ref_ptr<memory_object> doomed;  // object ref released after the lock drops
  {
    write_lock_guard g(lock_data_);
    auto it = std::find_if(entries_.begin(), entries_.end(), [&](const vm_map_entry& e) {
      return e.start == start && e.size() == size;
    });
    if (it == entries_.end()) return KERN_FAILURE;
    if (it->wired) return KERN_FAILURE;  // unwire first
    doomed = std::move(it->object);
    entries_.erase(it);
  }
  return KERN_SUCCESS;
}

vm_map_entry* vm_map::lookup_locked(std::uint64_t va) {
  // Entries are sorted; binary search on start.
  auto it = std::upper_bound(entries_.begin(), entries_.end(), va,
                             [](std::uint64_t v, const vm_map_entry& e) { return v < e.start; });
  if (it == entries_.begin()) return nullptr;
  --it;
  return (va >= it->start && va < it->end) ? &*it : nullptr;
}

std::size_t vm_map::entry_count() {
  read_lock_guard g(lock_data_);
  return entries_.size();
}

std::vector<vm_map_entry> vm_map::entries_snapshot() {
  read_lock_guard g(lock_data_);
  return entries_;  // clones the object references
}

namespace {

kern_return_t fault_common(vm_map& map, std::uint64_t va, bool wire, std::uint64_t* out_pa) {
  va &= ~(vm_page_size - 1);
  // Read lock held across the whole fault, including the possibly-blocking
  // page_request — legal because the map lock has the Sleep option. The
  // legacy vm_map_pageable path reaches here with the lock held
  // recursively, which is exactly the paper's section 7.1 scenario.
  lock_read(&map.map_lock());
  ordered_hold order(&map.map_lock(), vm_map_lock_class);
  vm_map_entry* e = map.lookup_locked(va);
  if (e == nullptr) {
    lock_done(&map.map_lock());
    return KERN_FAILURE;
  }
  // Clone the object reference: the entry could be unmapped by others the
  // moment we drop the map lock (not here, but page_request blocks).
  ref_ptr<memory_object> obj = e->object;
  const std::uint64_t offset = e->offset + (va - e->start);

  vm_page* page = nullptr;
  kern_return_t kr = obj->page_request(offset, &page);
  if (kr == KERN_SUCCESS && wire) obj->wire_page(page);
  lock_done(&map.map_lock());
  if (kr != KERN_SUCCESS) return kr;
  if (out_pa != nullptr) *out_pa = page->pa();
  if (map.on_mapping_installed) map.on_mapping_installed(va, page->pa());
  return KERN_SUCCESS;
}

}  // namespace

kern_return_t vm_fault(vm_map& map, std::uint64_t va, std::uint64_t* out_pa) {
  return fault_common(map, va, /*wire=*/false, out_pa);
}

kern_return_t vm_fault_wire(vm_map& map, std::uint64_t va) {
  return fault_common(map, va, /*wire=*/true, nullptr);
}

}  // namespace mach
