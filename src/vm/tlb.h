// Per-CPU translation lookaside buffers.
//
// Each virtual CPU caches va→pa translations. Changing or removing a
// mapping makes remote copies stale; the shootdown engine (vm/shootdown.h)
// posts invalidations here and uses interrupt-barrier synchronization to
// guarantee no CPU keeps using a stale entry past the update — the subject
// of [2] (Black et al., ASPLOS 1989) summarized in the paper's section 7.
//
// The pending-invalidation queue is the "TLB update is still posted for
// that processor" mechanism: a CPU excluded from (or late to) a barrier
// round processes its queue when it next accepts the shootdown interrupt
// or polls explicitly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sync/simple_lock.h"

namespace mach {

class tlb_set {
 public:
  explicit tlb_set(int ncpus);

  int ncpus() const { return static_cast<int>(cpus_.size()); }

  // Cache a translation / consult the cache on `cpu`.
  void insert(int cpu, std::uint64_t va, std::uint64_t pa);
  std::optional<std::uint64_t> lookup(int cpu, std::uint64_t va);

  // Immediate local invalidation.
  void flush_local(int cpu, std::uint64_t va);
  void flush_all_local(int cpu);

  // Post an invalidation for `cpu` to process later (the deferred path).
  void post_invalidate(int cpu, std::uint64_t va);
  // Apply every posted invalidation on `cpu`; returns how many applied.
  int process_pending(int cpu);
  bool has_pending(int cpu);

  std::uint64_t flushes(int cpu);

 private:
  struct cpu_tlb {
    // Untracked: a leaf lock held only for table updates.
    simple_lock_data_t lock{"tlb", /*track=*/false};
    std::unordered_map<std::uint64_t, std::uint64_t> entries;  // vpn → pa
    std::vector<std::uint64_t> pending;                        // vpns to invalidate
    std::uint64_t flushes = 0;
  };
  cpu_tlb& at(int cpu);
  std::vector<std::unique_ptr<cpu_tlb>> cpus_;
};

}  // namespace mach
