#include "vm/pageout.h"

#include <thread>

#include "metrics/kmetrics.h"

namespace mach {

pageout_daemon::pageout_daemon(zone& pages, std::size_t low_water,
                               std::chrono::milliseconds period)
    : pages_(pages), low_water_(low_water), period_(period) {
  thread_ = kthread::spawn("pageout-daemon", [this] { loop(); });
}

pageout_daemon::~pageout_daemon() { stop(); }

void pageout_daemon::register_map(ref_ptr<vm_map> map) {
  simple_lock(&maps_lock_);
  maps_.push_back(std::move(map));
  simple_unlock(&maps_lock_);
}

void pageout_daemon::stop() {
  if (thread_ == nullptr) return;
  stop_.store(true);
  thread_->join();
  thread_.reset();
}

std::size_t pageout_daemon::free_level() const {
  std::size_t cap = pages_.capacity();
  std::size_t used = pages_.in_use();
  return cap > used ? cap - used : 0;
}

void pageout_daemon::loop() {
  while (!stop_.load()) {
    if (free_level() < low_water_) {
      scans_.fetch_add(1, std::memory_order_relaxed);
      kmet().vm_pageout_scans.inc();
      // Snapshot the registered maps (cloned references), then evict from
      // each under its write lock until the water level recovers.
      std::vector<ref_ptr<vm_map>> maps;
      {
        simple_locker g(maps_lock_);
        maps = maps_;
      }
      for (auto& map : maps) {
        std::size_t deficit = free_level() < low_water_ ? low_water_ - free_level() : 0;
        if (deficit == 0) break;
        if (vm_map_reclaim(*map, pages_, deficit) == KERN_SUCCESS) {
          evicted_.fetch_add(1, std::memory_order_relaxed);
          kmet().vm_pageout_evictions.inc();
        }
      }
    }
    std::this_thread::sleep_for(period_);
  }
}

}  // namespace mach
