// vm_map_pageable — changing memory pageability (wiring/pinning), in both
// the historical recursive-lock form and the rewritten form.
//
// Paper section 7.1: vm_map_pageable "was the original motivation for
// recursive locking and is an example of its drawbacks. When making memory
// nonpageable ... it acquires a write lock on the memory map to change the
// appropriate map entries, and downgrades to a recursive read lock to
// fault in the memory. ... If one of the faults cannot be satisfied due to
// a physical memory shortage, the fault routine drops its lock to wait for
// memory. The fact that vm_map_pageable still holds a read lock can cause
// a deadlock if obtaining more memory requires a write lock on the same
// map. ... To eliminate them, vm_map_pageable is being rewritten to avoid
// the use of recursive locks."
//
// vm_map_pageable_legacy() is the deadlock-prone original;
// vm_map_pageable() is the rewrite: it wires the entries under the write
// lock, takes object references, *releases the map lock entirely*, and
// faults the pages in unlocked — the references (section 8 "operations in
// progress") keep everything alive. Experiment E6 replays both under a
// memory shortage.
#pragma once

#include "kern/zalloc.h"
#include "vm/vm_map.h"

namespace mach {

// Historical form: write lock → mark wired → set recursive → downgrade to
// recursive read → fault pages (recursive read bypass) → clear recursive →
// release. Deadlocks if a fault must wait for memory that only a write
// locker of the same map can free.
kern_return_t vm_map_pageable_legacy(vm_map& map, std::uint64_t start, std::uint64_t size,
                                     bool wire);

// Rewritten form: no recursive locking; the map lock is not held while
// faulting.
kern_return_t vm_map_pageable(vm_map& map, std::uint64_t start, std::uint64_t size, bool wire);

// The "obtaining more memory requires a write lock on the same map" side:
// take the map write lock and evict unwired resident pages from the map's
// objects until `target_pages` zone elements are free (or nothing more can
// be evicted). Registers itself with the deadlock detector as the party
// responsible for producing memory from `page_zone`, so E6's cycle is
// nameable. Returns the number of pages reclaimed.
kern_return_t vm_map_reclaim(vm_map& map, zone& page_zone, std::size_t target_pages);

}  // namespace mach
