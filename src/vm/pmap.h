// Physical maps and physical-to-virtual lists (paper section 5).
//
// "These modules manage two classes of data structures, the physical maps
// (pmaps), and physical to virtual lists (pv lists). ... Both data
// structures have locks, and the pmap modules contain routines that need
// to acquire these locks in both orders (pmap then pv list, and pv list
// then pmap). To resolve this conflict, a third lock (the pmap system
// lock) is used to arbitrate between the orders in which these locks may
// be acquired. In some systems this is a readers/writers lock, so that any
// procedure with a write lock on this lock can assume exclusive access to
// the pv lists. ... A final alternative is to use a backout protocol when
// acquiring two locks in the reverse of the usual order."
//
// pmap_system implements BOTH resolutions so experiment E9 can compare:
//   * enter-direction ops (pmap → pv): system lock held for READ;
//   * pv-direction ops, arbitrated: system lock held for WRITE, which
//     excludes all enters and thereby grants exclusive pv access;
//   * pv-direction ops, backout: no system lock; pv lock first, then a
//     single simple_lock_try per pmap, releasing and retrying the whole
//     operation on failure.
//
// All pmap lock acquisitions run at SPLVM (section 7: every lock is
// acquired at one consistent interrupt priority level) and set the
// current CPU's at_pmap_lock flag for the shootdown special logic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "smp/spl.h"
#include "sync/complex_lock.h"
#include "sync/lock_order.h"
#include "sync/simple_lock.h"

namespace mach {

inline constexpr lock_class pmap_lock_class{"pmap", "pmap-lock", 0};
inline constexpr lock_class pv_lock_class{"pmap", "pv-lock", 1};

// One task's machine-dependent address translation map.
class pmap {
 public:
  explicit pmap(const char* name = "pmap");
  pmap(const pmap&) = delete;
  pmap& operator=(const pmap&) = delete;

  // Lock helpers: raise to SPLVM, flag the CPU, acquire. Exposed because
  // the shootdown initiator holds the pmap lock across the barrier.
  spl_t lock_acquire();
  // Single attempt; flags the CPU during it (the paper's "attempting to
  // acquire" case). On success release with lock_release(*saved); on
  // failure call lock_release_try_failed(*saved).
  bool lock_try(spl_t* saved);
  void lock_release(spl_t saved);
  void lock_release_try_failed(spl_t saved);

  // Translation table ops; caller holds the pmap lock.
  void enter_locked(std::uint64_t va, std::uint64_t pa);
  void remove_locked(std::uint64_t va);
  std::optional<std::uint64_t> lookup_locked(std::uint64_t va) const;
  std::size_t size_locked() const { return translations_.size(); }

  const char* name() const { return name_; }

 private:
  mutable simple_lock_data_t lock_;
  const char* name_;
  std::unordered_map<std::uint64_t, std::uint64_t> translations_;  // vpn → pa
};

// Inverted mappings: which (pmap, va) pairs map each physical frame.
class pv_table {
 public:
  explicit pv_table(std::size_t buckets = 256);

  struct pv_entry {
    pmap* map;
    std::uint64_t va;
  };

  struct bucket {
    simple_lock_data_t lock{"pv-lock"};
    std::vector<pv_entry> entries;
  };

  bucket& bucket_for(std::uint64_t pa);

 private:
  std::vector<std::unique_ptr<bucket>> buckets_;
  std::size_t mask_;
};

struct pmap_op_stats {
  std::uint64_t enters = 0;
  std::uint64_t removes = 0;
  std::uint64_t protects = 0;
  std::uint64_t backout_retries = 0;  // reverse-order attempts that had to back out
};

// The pmap module: pmaps + pv table + system lock, with both
// order-conflict resolutions.
class pmap_system {
 public:
  pmap_system();

  // pmap → pv direction (the usual order): install va→pa in `map` and
  // record the inverted mapping. System lock for read.
  void pmap_enter(pmap& map, std::uint64_t va, std::uint64_t pa);
  void pmap_remove(pmap& map, std::uint64_t va);
  std::optional<std::uint64_t> pmap_lookup(pmap& map, std::uint64_t va);

  // pv → pmap direction: strip every mapping of frame `pa` (the classic
  // pmap_page_protect(VM_PROT_NONE)). Returns mappings removed.
  //   arbitrated: takes the system lock for WRITE (exclusive pv access).
  int page_protect_arbitrated(std::uint64_t pa);
  //   backout: reverse-order acquisition with try-lock and full retry.
  int page_protect_backout(std::uint64_t pa);

  pmap_op_stats stats();
  lock_data_t& system_lock() { return system_lock_; }
  pv_table& pv() { return pv_; }

 private:
  lock_data_t system_lock_;  // readers/writers, spin (pmap code cannot sleep)
  pv_table pv_;
  simple_lock_data_t stats_lock_{"pmap-stats", /*track=*/false};
  pmap_op_stats stats_;
};

}  // namespace mach
