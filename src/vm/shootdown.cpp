#include "vm/shootdown.h"

#include "metrics/kmetrics.h"
#include "trace/ktrace.h"

namespace mach {

shootdown_engine::shootdown_engine(pmap_system& pmaps, tlb_set& tlbs)
    : pmaps_(pmaps), tlbs_(tlbs), barrier_("tlb-shootdown") {}

void shootdown_engine::attach(spl_t ipi_level) {
  barrier_.attach(ipi_level, [this](virtual_cpu& c) {
    // Every acceptance of the shootdown interrupt — in-round, late, or
    // stale — drains the CPU's posted invalidations.
    tlbs_.process_pending(c.id());
  });
}

interrupt_barrier::status shootdown_engine::update_mapping(pmap& map, std::uint64_t va,
                                                           std::uint64_t new_pa,
                                                           std::chrono::milliseconds timeout) {
  machine& m = machine::instance();
  const std::uint64_t round_start = ktrace::enabled() ? now_nanos() : 0;
  kmet().vm_shootdown_rounds.inc();

  // This is a pmap-direction operation (pmap → pv): hold the system lock
  // for read like every other enter/remove, so arbitrated pv-direction
  // scans stay excluded while we touch pv lists below.
  lock_read(&pmaps_.system_lock());

  // Step 1: the initiator holds the pmap lock across the whole round —
  // this is exactly the lock the special logic exists for.
  spl_t saved = map.lock_acquire();
  const std::optional<std::uint64_t> old_pa = map.lookup_locked(va);

  // Step 2: post the invalidation to every other CPU.
  std::uint32_t mask = 0;
  for (int i = 0; i < m.ncpus(); ++i) {
    virtual_cpu* self = machine::current_cpu();
    if (self != nullptr && self->id() == i) continue;
    tlbs_.post_invalidate(i, va);
    ktrace::emit(trace_kind::shootdown_posted, map.name(), static_cast<std::uint64_t>(i), va);
    mask |= 1u << i;
  }

  // Special logic: CPUs at a pmap lock cannot take the interrupt — drop
  // them from the must-enter set but still send the IPI so they process
  // the posted update when they re-enable interrupts.
  std::uint32_t participant_mask = mask;
  if (use_special_logic_.load()) {
    for (int i = 0; i < m.ncpus(); ++i) {
      const std::uint32_t bit = 1u << i;
      if ((mask & bit) != 0 && m.cpu(i).at_pmap_lock()) {
        participant_mask &= ~bit;
        m.post_ipi(i, barrier_.vector());
        excluded_.fetch_add(1, std::memory_order_relaxed);
        kmet().vm_shootdown_cpus_excluded.inc();
        ktrace::emit(trace_kind::shootdown_excluded, map.name(), static_cast<std::uint64_t>(i),
                     va);
      }
    }
  }

  // Steps 3–5: barrier round; the update mutates the pmap entry while
  // everyone who could race is parked in the ISR.
  interrupt_barrier::status st = barrier_.run(
      participant_mask,
      [&] {
        if (new_pa == 0) {
          map.remove_locked(va);
        } else {
          map.enter_locked(va, new_pa);
        }
      },
      timeout);

  // Keep the inverted (pv) mappings consistent with the change, in the
  // usual pmap → pv order.
  if (st == interrupt_barrier::status::ok) {
    if (old_pa.has_value()) {
      pv_table::bucket& b = pmaps_.pv().bucket_for(*old_pa);
      simple_lock(&b.lock);
      std::erase_if(b.entries, [&](const pv_table::pv_entry& e) {
        return e.map == &map && e.va == va;
      });
      simple_unlock(&b.lock);
      kmet().vm_pv_operations.inc();
    }
    if (new_pa != 0) {
      pv_table::bucket& b = pmaps_.pv().bucket_for(new_pa);
      simple_lock(&b.lock);
      b.entries.push_back({&map, va});
      simple_unlock(&b.lock);
      kmet().vm_pv_operations.inc();
    }
  }

  // The initiator's own TLB is updated inline.
  if (virtual_cpu* self = machine::current_cpu()) {
    tlbs_.flush_local(self->id(), va);
    tlbs_.process_pending(self->id());
  }

  map.lock_release(saved);
  lock_done(&pmaps_.system_lock());
  if (round_start != 0) {
    const std::uint64_t end = now_nanos();
    ktrace::emit_span(trace_kind::shootdown_round, map.name(), va, end - round_start, end);
  }
  return st;
}

}  // namespace mach
