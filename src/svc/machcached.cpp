#include "svc/machcached.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/panic.h"
#include "base/rng.h"
#include "ipc/port.h"
#include "metrics/kmetrics.h"
#include "smp/processor.h"
#include "trace/kspan.h"

namespace mach {

// --- mc_item ---

mc_item::mc_item(std::uint64_t key, zone& vz, std::uint64_t* block, const std::uint64_t* words,
                 std::size_t len, refcount_policy policy)
    : kobject("mc-item", policy), key_(key), vz_(vz), block_(block), len_(len) {
  for (std::size_t i = 0; i < len_; ++i) block_[i] = words[i];
}

void mc_item::on_last_reference() { vz_.free(block_); }

// --- mc_cache ---

struct mc_cache::shard {
  lock_data_t lock;
  std::unordered_map<std::uint64_t, ref_ptr<mc_item>> map;
};

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

int mc_shards_from_env(int def) {
  const char* v = std::getenv("MACHLOCK_CACHE_SHARDS");
  if (v == nullptr || v[0] == '\0') return def;
  long n = std::strtol(v, nullptr, 10);
  return static_cast<int>(std::clamp(n, 1L, 1024L));
}

mc_cache::mc_cache(const mc_cache_config& cfg)
    : cfg_(cfg),
      vzone_("mc-items", std::max<std::size_t>(cfg.value_words, 1) * sizeof(std::uint64_t),
             cfg.max_items) {
  const std::size_t n =
      round_up_pow2(static_cast<std::size_t>(std::clamp(cfg.shards, 1, 1024)));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<shard>();
    // One shared name: the lockstat contention table aggregates by name,
    // so all stripes of the item table report as a single row.
    lock_init(&s->lock, /*can_sleep=*/true, "mc-shard");
    shards_.push_back(std::move(s));
  }
}

mc_cache::~mc_cache() = default;  // shards_ (and their items) die before vzone_

mc_cache::shard& mc_cache::shard_for(std::uint64_t key) const {
  std::uint64_t s = key;
  return *shards_[splitmix64(s) & (shards_.size() - 1)];
}

ref_ptr<mc_item> mc_cache::get(std::uint64_t key) {
  gets_.add();
  shard& sh = shard_for(key);
  ref_ptr<mc_item> r;
  {
    read_lock_guard g(sh.lock);
    auto it = sh.map.find(key);
    // Cloning the table's reference under the read hold is safe: a clone
    // never blocks (paper section 8).
    if (it != sh.map.end()) r = it->second;
  }
  if (r) {
    hits_.add();
  } else {
    misses_.add();
  }
  return r;
}

kern_return_t mc_cache::set(std::uint64_t key, const std::uint64_t* words, std::size_t len) {
  MACH_ASSERT(len <= cfg_.value_words, "mc_cache::set value exceeds configured value_words");
  sets_.add();
  // Allocate (and potentially observe backpressure) BEFORE the shard
  // write hold: a SET never sleeps on the zone while holding table locks,
  // and an overwrite frees its displaced block only after the swap — so
  // the zone needs transient headroom of one element per in-flight SET.
  void* block = vzone_.alloc_nowait();
  if (block == nullptr) {
    set_failures_.add();
    return KERN_RESOURCE_SHORTAGE;
  }
  ref_ptr<mc_item> item = make_object<mc_item>(key, vzone_, static_cast<std::uint64_t*>(block),
                                               words, len, cfg_.item_policy);
  ref_ptr<mc_item> displaced;
  shard& sh = shard_for(key);
  {
    write_lock_guard g(sh.lock);
    ref_ptr<mc_item>& slot = sh.map[key];
    displaced = std::move(slot);
    slot = std::move(item);
  }
  // `displaced` dies here, outside the write hold: releasing the last
  // reference may block (returning the block to the zone), which is not
  // allowed under table locks.
  return KERN_SUCCESS;
}

bool mc_cache::del(std::uint64_t key) {
  ref_ptr<mc_item> victim;
  shard& sh = shard_for(key);
  {
    write_lock_guard g(sh.lock);
    auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      victim = std::move(it->second);
      sh.map.erase(it);
    }
  }
  if (victim) {
    deletes_.add();
    return true;  // victim's reference dies after the lock, as in set()
  }
  delete_misses_.add();
  return false;
}

std::size_t mc_cache::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    read_lock_guard g(sh->lock);
    n += sh->map.size();
  }
  return n;
}

mc_cache_stats mc_cache::stats() const {
  mc_cache_stats s;
  s.gets = gets_.value();
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.sets = sets_.value();
  s.set_failures = set_failures_.value();
  s.deletes = deletes_.value();
  s.delete_misses = delete_misses_.value();
  return s;
}

bool mc_cache::check_quiesced(std::string* why) const {
  std::size_t resident = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    read_lock_guard g(shards_[i]->lock);
    for (const auto& [key, item] : shards_[i]->map) {
      ++resident;
      const int rc = item->ref_count();
      if (rc != 1) {
        if (why != nullptr) {
          *why = "item key=" + std::to_string(key) + " in shard " + std::to_string(i) +
                 " has ref_count " + std::to_string(rc) + " at quiesce (expected 1)";
        }
        return false;
      }
      if (item->key() != key) {
        if (why != nullptr) {
          *why = "item under key " + std::to_string(key) + " claims key " +
                 std::to_string(item->key());
        }
        return false;
      }
    }
  }
  const std::size_t zoned = vzone_.in_use();
  if (zoned != resident) {
    if (why != nullptr) {
      *why = "value zone holds " + std::to_string(zoned) + " blocks but " +
             std::to_string(resident) + " items are resident (leak or double-account)";
    }
    return false;
  }
  return true;
}

// --- machcached_server ---

machcached_server::machcached_server(mc_cache& cache, const machcached_config& cfg)
    : cache_(cache), cfg_(cfg) {
  MACH_ASSERT(cfg_.workers >= 1, "machcached_server needs at least one worker");
  service_ = make_object<port>("mc-service");
  service_->set_queue_limit(cfg_.queue_limit);
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.push_back(
        kthread::spawn("mc-worker-" + std::to_string(i), [this, i] { worker_loop(i); }));
  }
}

machcached_server::~machcached_server() { stop(); }

void machcached_server::stop() {
  if (workers_.empty()) return;
  // Killing the port is the shutdown signal: blocked receivers wake,
  // re-check liveness, and retire; late senders get KERN_TERMINATED.
  service_->destroy_port();
  for (auto& w : workers_) w->join();
  workers_.clear();
}

void machcached_server::worker_loop(int idx) {
  using namespace std::chrono_literals;
  // One bound thread per virtual CPU, so a bound worker pool models the
  // paper's "one thread of control per processor" service shape.
  std::unique_ptr<cpu_binding> bind;
  if (cfg_.bind_vcpus) bind = std::make_unique<cpu_binding>(idx);
  for (;;) {
    std::optional<message> req = service_->receive(20ms);
    if (!req.has_value()) {
      service_->lock();
      bool dead = !service_->active();
      service_->unlock();
      if (dead) break;
      continue;
    }
    // Server-side leg of the request's causal trace (no-op untraced).
    kspan::adopt_scope span(req->span_ctx, "mc-serve");
    const std::uint64_t start = kmon::enabled() ? now_nanos() : 0;
    message reply(req->op);
    if (req->data.size() < 2) {
      reply.ret = KERN_FAILURE;
    } else {
      const std::uint64_t key = req->data[0];
      reply.data.push_back(req->data[1]);  // echo the client stamp
      switch (req->op) {
        case MC_GET: {
          ref_ptr<mc_item> item = cache_.get(key);
          if (item) {
            reply.ret = KERN_SUCCESS;
            reply.data.insert(reply.data.end(), item->value(), item->value() + item->size());
            kmet().svc_hits.inc();
          } else {
            reply.ret = KERN_INVALID_NAME;
            kmet().svc_misses.inc();
          }
          break;
        }
        case MC_SET: {
          reply.ret = cache_.set(key, req->data.data() + 2, req->data.size() - 2);
          if (reply.ret == KERN_RESOURCE_SHORTAGE) kmet().svc_backpressure.inc();
          break;
        }
        case MC_DEL:
          reply.ret = cache_.del(key) ? KERN_SUCCESS : KERN_INVALID_NAME;
          break;
        default:
          reply.ret = KERN_INVALID_OP;
          break;
      }
    }
    served_.fetch_add(1, std::memory_order_relaxed);
    kmet().svc_requests.inc();
    if (start != 0) kmet().svc_serve_nanos.record(now_nanos() - start);
    if (req->reply_to) {
      // Undeliverable replies (dead reply port) are the client's problem.
      (void)req->reply_to->send(std::move(reply));
    }
  }
}

// --- load generator ---

double mc_load_result::ops_per_second() const noexcept {
  return wall_nanos == 0 ? 0.0 : static_cast<double>(ops) * 1e9 / static_cast<double>(wall_nanos);
}

double mc_load_result::hit_rate() const noexcept {
  const std::uint64_t denom = cache_stats.hits + cache_stats.misses;
  return denom == 0 ? 0.0 : static_cast<double>(cache_stats.hits) / static_cast<double>(denom);
}

namespace {

// Per-connection tallies, merged after the join.
struct conn_result {
  std::uint64_t ops = 0;
  latency_histogram latency;
  std::uint64_t backpressure = 0;
  std::uint64_t shortages = 0;
  std::uint64_t timeouts = 0;
};

void run_connection(int idx, const mc_load_spec& spec, port& service, std::uint64_t deadline,
                    conn_result& out) {
  using namespace std::chrono_literals;
  xorshift64 rng(0x6d63ull * 1315423911u + static_cast<std::uint64_t>(idx));
  ref_ptr<port> reply = make_object<port>("mc-conn-reply");
  std::vector<std::uint64_t> value(spec.cache.value_words, 0);

  int in_flight = 0;
  bool service_up = true;
  auto absorb = [&](const message& m) {
    --in_flight;
    ++out.ops;
    if (!m.data.empty()) {
      const std::uint64_t sent = m.data[0];
      const std::uint64_t now = now_nanos();
      out.latency.record(now > sent ? now - sent : 0);
    }
    if (m.ret == KERN_RESOURCE_SHORTAGE) ++out.shortages;
  };

  while (service_up && now_nanos() < deadline) {
    // Open loop within a bounded window: issue until the window is full
    // (or the service port pushes back), then reap at least one reply.
    while (service_up && in_flight < spec.window && now_nanos() < deadline) {
      const std::uint64_t key = rng.next_below(std::max<std::uint64_t>(spec.keyspace, 1));
      message req;
      if (rng.next_below(100) < static_cast<std::uint64_t>(spec.read_pct)) {
        req.op = MC_GET;
        req.data = {key, now_nanos()};
      } else if (spec.del_every > 0 &&
                 rng.next_below(static_cast<std::uint64_t>(spec.del_every)) == 0) {
        req.op = MC_DEL;
        req.data = {key, now_nanos()};
      } else {
        req.op = MC_SET;
        req.data.reserve(2 + value.size());
        req.data = {key, now_nanos()};
        value[0] = key ^ 0xfeedfaceull;
        req.data.insert(req.data.end(), value.begin(), value.end());
      }
      req.reply_to = reply;
      const kern_return_t kr = service.send(std::move(req));
      if (kr == KERN_SUCCESS) {
        ++in_flight;
      } else if (kr == KERN_NO_SPACE) {
        ++out.backpressure;
        break;  // queue full: go reap replies instead of hammering
      } else {
        service_up = false;  // KERN_TERMINATED: server shut down under us
      }
    }
    if (in_flight == 0) continue;
    // The bounded receive path here is exactly the port::receive timeout
    // race the PR fixes: replies landing at the timeout boundary must not
    // be stranded for a later call to mis-collect.
    std::optional<message> m = reply->receive(50ms);
    if (m.has_value()) {
      absorb(*m);
    } else {
      ++out.timeouts;
    }
  }

  // Drain: every accepted send produces exactly one reply (the server is
  // not stopped until all connections join), so wait the stragglers out.
  int dry = 0;
  while (in_flight > 0 && dry < 20) {
    std::optional<message> m = reply->receive(250ms);
    if (m.has_value()) {
      absorb(*m);
      dry = 0;
    } else {
      ++dry;
      ++out.timeouts;
    }
  }
}

}  // namespace

mc_load_result run_mc_load(const mc_load_spec& spec) {
  MACH_ASSERT(spec.connections >= 1 && spec.workers >= 1, "mc load needs clients and workers");
  mc_cache cache(spec.cache);
  machcached_config scfg;
  scfg.workers = spec.workers;
  scfg.bind_vcpus = spec.bind_vcpus;
  machcached_server server(cache, scfg);

  if (spec.prefill) {
    std::vector<std::uint64_t> value(spec.cache.value_words, 0);
    for (std::uint64_t k = 0; k < spec.keyspace; ++k) {
      value[0] = k ^ 0xfeedfaceull;
      (void)cache.set(k, value.data(), value.size());  // shortage just lowers hit rate
    }
  }

  std::vector<conn_result> results(static_cast<std::size_t>(spec.connections));
  const std::uint64_t start = now_nanos();
  const std::uint64_t deadline =
      start + static_cast<std::uint64_t>(spec.duration_ms) * 1'000'000ull;
  std::vector<std::unique_ptr<kthread>> conns;
  conns.reserve(results.size());
  for (int i = 0; i < spec.connections; ++i) {
    conns.push_back(kthread::spawn("mc-conn-" + std::to_string(i), [&, i] {
      run_connection(i, spec, server.service(), deadline, results[static_cast<std::size_t>(i)]);
    }));
  }
  for (auto& c : conns) c->join();
  const std::uint64_t wall = now_nanos() - start;

  mc_load_result r;
  server.stop();
  // Snapshot after stop() — every worker has joined, so the stats are
  // quiescent — but before the server/cache objects die: locks only
  // unregister from the registry at destruction, so the service port and
  // shard entries are still present here.
  r.lock_top = lock_registry::instance().snapshot();
  r.wall_nanos = wall;
  for (const conn_result& c : results) {
    r.ops += c.ops;
    r.latency.merge(c.latency);
    r.send_backpressure += c.backpressure;
    r.shortage_replies += c.shortages;
    r.reply_timeouts += c.timeouts;
  }
  r.served = server.served();
  r.cache_stats = cache.stats();

  std::string why;
  MACH_ASSERT(cache.check_quiesced(&why), "machcached cache failed quiesce invariant: " + why);
  return r;
}

}  // namespace mach
