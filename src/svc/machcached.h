// machcached — a memcached-style request/response service built entirely
// on the kernel substrate, and the repo's first traffic-serving workload
// (ROADMAP item 1, experiment E17).
//
// The shape follows the paper's own layering rather than a user-space
// cache library:
//
//   * items are kernel objects (`mc_item` : kobject) — existence is
//     coordinated by reference counting (section 8), with the count
//     policy selectable per cache (the E7 four-way shoot-out, live);
//   * item values live in a zalloc zone (section 4's "memory allocation
//     blocks if memory is not available" substrate) — the zone capacity
//     is the cache's "physical memory" and SET observes backpressure
//     through it;
//   * the item table is guarded by complex locks (Appendix B): GET takes
//     a read hold, SET/DELETE a write hold, optionally striped across
//     shards (MACHLOCK_CACHE_SHARDS) so the lock-granularity story of
//     section 2 is measurable against served traffic;
//   * client "connections" arrive as IPC messages on a service port
//     (section 3); a pool of worker kthreads — optionally bound to
//     virtual processors — serves them and replies through each
//     message's carried reply-port right.
//
// `run_mc_load` is the open-loop load generator the E17 bench and the CI
// smoke drive: per-connection client threads keep up to `window` requests
// in flight (the window bounds the port queues without closing the loop
// on every request), and report ops/s, round-trip p50/p99, backpressure
// and the cache hit rate. docs/MACHCACHED.md is the operator's guide.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/stats.h"
#include "ipc/message.h"
#include "ipc/port.h"
#include "kern/refcount.h"
#include "kern/zalloc.h"
#include "sched/kthread.h"
#include "sync/complex_lock.h"
#include "sync/lockstat.h"

namespace mach {

// --- items (kernel objects holding zone-backed values) ---

class mc_item final : public kobject {
 public:
  // Adopts `block` (allocated from `vz`, at least `len` words); the block
  // returns to the zone when the last reference dies. The value is
  // immutable after construction, so readers holding a reference never
  // need the item lock (a SET replaces the whole item instead).
  mc_item(std::uint64_t key, zone& vz, std::uint64_t* block, const std::uint64_t* words,
          std::size_t len, refcount_policy policy);

  std::uint64_t key() const noexcept { return key_; }
  std::size_t size() const noexcept { return len_; }
  const std::uint64_t* value() const noexcept { return block_; }

 protected:
  void on_last_reference() override;

 private:
  std::uint64_t key_;
  zone& vz_;
  std::uint64_t* block_;
  std::size_t len_;
};

// --- the shared key→object cache ---

struct mc_cache_config {
  // Item-table stripe count (rounded up to a power of two). 1 reproduces
  // the paper's single complex-lock table; mc_shards_from_env() applies
  // the MACHLOCK_CACHE_SHARDS override.
  int shards = 1;
  // Zone capacity: resident item ceiling (SET fails with
  // KERN_RESOURCE_SHORTAGE once the zone is exhausted — zalloc
  // backpressure, not an eviction policy).
  std::size_t max_items = 4096;
  // Fixed value-block size, in 64-bit words.
  std::size_t value_words = 8;
  // Reference-count policy for items (kern/refcount.h); defaults to the
  // kernel-wide default (MACHLOCK_REFCOUNT or lockref).
  refcount_policy item_policy = default_refcount_policy();
};

struct mc_cache_stats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t set_failures = 0;  // zone exhausted
  std::uint64_t deletes = 0;       // successful erases
  std::uint64_t delete_misses = 0;
};

class mc_cache {
 public:
  explicit mc_cache(const mc_cache_config& cfg = {});
  ~mc_cache();
  mc_cache(const mc_cache&) = delete;
  mc_cache& operator=(const mc_cache&) = delete;

  // GET: clone a reference under the shard's read hold (cloning never
  // blocks — paper section 8 — so holding the complex lock is safe).
  ref_ptr<mc_item> get(std::uint64_t key);
  // SET: build the replacement item (zone allocation happens BEFORE the
  // shard write hold) and swap it in; the displaced item's reference is
  // released after the lock is dropped. KERN_RESOURCE_SHORTAGE when the
  // item zone is exhausted.
  kern_return_t set(std::uint64_t key, const std::uint64_t* words, std::size_t len);
  // DELETE: erase under the write hold; returns false on a miss.
  bool del(std::uint64_t key);

  std::size_t size() const;  // resident items, summed across shards
  mc_cache_stats stats() const;
  int shards() const noexcept { return static_cast<int>(shards_.size()); }
  const mc_cache_config& config() const noexcept { return cfg_; }
  zone& value_zone() noexcept { return vzone_; }

  // Quiescence invariant for the stress battery: with no operations in
  // flight, every resident item holds exactly one reference (the
  // table's) and the value zone's occupancy equals the resident count.
  // Returns false and fills `why` on violation.
  bool check_quiesced(std::string* why) const;

 private:
  struct shard;
  shard& shard_for(std::uint64_t key) const;

  mc_cache_config cfg_;
  zone vzone_;
  std::vector<std::unique_ptr<shard>> shards_;
  // Cacheline-padded so the counters do not ping-pong under load.
  mutable event_counter gets_, hits_, misses_, sets_, set_failures_, deletes_, delete_misses_;
};

// Reads MACHLOCK_CACHE_SHARDS (default `def`), clamped to [1, 1024].
int mc_shards_from_env(int def = 1);

// --- the service (workers on virtual processors, IPC in front) ---

enum mc_op : std::uint32_t {
  MC_GET = 100,  // request data: [key, client-stamp]; hit reply data: [stamp, value...]
  MC_SET = 101,  // request data: [key, client-stamp, value...]; reply data: [stamp]
  MC_DEL = 102,  // request data: [key, client-stamp]; reply data: [stamp]
};

struct machcached_config {
  int workers = 2;
  // Bind worker i to virtual CPU i (machine::configure(>= workers) must
  // have run; off by default so unit tests need no machine setup).
  bool bind_vcpus = false;
  std::size_t queue_limit = 4096;
};

class machcached_server {
 public:
  machcached_server(mc_cache& cache, const machcached_config& cfg = {});
  ~machcached_server();

  port& service() noexcept { return *service_; }
  ref_ptr<port> service_ref() const { return service_; }

  // Destroy the service port (senders observe KERN_TERMINATED, blocked
  // workers wake and retire) and join the workers. Idempotent.
  void stop();
  std::uint64_t served() const { return served_.load(std::memory_order_relaxed); }
  int workers() const noexcept { return cfg_.workers; }

 private:
  void worker_loop(int idx);

  mc_cache& cache_;
  machcached_config cfg_;
  ref_ptr<port> service_;
  std::atomic<std::uint64_t> served_{0};
  std::vector<std::unique_ptr<kthread>> workers_;
};

// --- the open-loop load generator ---

struct mc_load_spec {
  int connections = 4;
  int workers = 2;
  int duration_ms = 200;
  int read_pct = 90;  // GETs; the remainder splits per write_del_ratio
  // Of the non-GET ops, one in `del_every` is a DELETE (0 = never).
  int del_every = 8;
  int window = 8;  // max in-flight requests per connection
  std::uint64_t keyspace = 512;
  bool prefill = true;  // SET every key once before the clock starts
  bool bind_vcpus = false;
  mc_cache_config cache;
};

struct mc_load_result {
  std::uint64_t ops = 0;  // completed request/response pairs
  std::uint64_t wall_nanos = 0;
  latency_histogram latency;  // client-observed round trip
  std::uint64_t send_backpressure = 0;  // sends bounced by the port queue limit
  std::uint64_t shortage_replies = 0;   // SETs refused on zone exhaustion
  std::uint64_t reply_timeouts = 0;     // bounded reply receives that timed out
  std::uint64_t served = 0;             // server-side request count
  mc_cache_stats cache_stats;
  // lock_registry snapshot taken before teardown, while the cache's shard
  // locks and the service port are still registered — the raw material for
  // the E17 contention top table. Counters are cumulative per lock, not
  // per run.
  std::vector<lock_stat_entry> lock_top;

  double ops_per_second() const noexcept;
  double hit_rate() const noexcept;  // hits / (hits + misses), 0 when idle
};

// Build a cache + server per `spec`, run the sweep point, tear down, and
// report. The same driver backs bench E17, the example, and the CI smoke.
mc_load_result run_mc_load(const mc_load_spec& spec);

}  // namespace mach
