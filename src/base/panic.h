// Kernel-style fatal error handling.
//
// The Mach kernel panics on invariant violations (e.g. releasing a lock the
// caller does not hold, a second assert_wait between assert_wait and
// thread_block — "this is fatal" per the paper, section 8). We reproduce
// that discipline: panic() never returns. Tests that exercise
// violation paths install a panic hook that throws instead, so gtest can
// assert on the failure without killing the process.
#pragma once

#include <string>

namespace mach {

// Thrown by the test panic hook; production hook aborts instead.
struct panic_error {
  std::string message;
};

using panic_hook_t = void (*)(const std::string& message);

// Replace the process-aborting default. Returns the previous hook.
// Intended for tests; not thread-safe against concurrent panics by design
// (a real panic is the end of the world anyway).
panic_hook_t set_panic_hook(panic_hook_t hook) noexcept;

// Report a fatal kernel invariant violation. Never returns under the
// default hook. `what` should name the invariant, not the symptom.
[[noreturn]] void panic(const std::string& what);

// Assert a kernel invariant; compiled in all build types because the
// invariants it guards (lock ownership, refcount sanity) are exactly what
// this library exists to demonstrate.
#define MACH_ASSERT(cond, what)        \
  do {                                 \
    if (!(cond)) ::mach::panic(what);  \
  } while (0)

}  // namespace mach
