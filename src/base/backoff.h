// Bounded exponential backoff for spin-waiters.
//
// The paper's spinners just retry the test; on a machine with fewer
// hardware contexts than spinning threads (or any modern machine, really)
// that wastes the very bus/scheduler bandwidth section 2 worries about.
// backoff spins with cpu_relax() for an exponentially growing bounded
// budget, then starts yielding the host thread so a preempted lock holder
// can run. The yield is a host-portability concession documented in
// DESIGN.md section 3 and measured in experiment E1.
#pragma once

#include <cstdint>
#include <thread>

#include "base/compiler.h"

namespace mach {

class backoff {
 public:
  // `initial`/`ceiling`: pause-loop lengths; once the budget saturates every
  // further pause() also yields to the OS scheduler.
  explicit backoff(std::uint32_t initial = 4, std::uint32_t ceiling = 1024) noexcept
      : current_(initial), ceiling_(ceiling) {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < current_; ++i) cpu_relax();
    if (current_ < ceiling_) {
      current_ *= 2;
    } else {
      std::this_thread::yield();
    }
    ++pauses_;
  }

  void reset() noexcept { current_ = 4; }

  // Number of pause() calls so far: the spin-effort proxy experiments use.
  std::uint64_t pauses() const noexcept { return pauses_; }

 private:
  std::uint32_t current_;
  std::uint32_t ceiling_;
  std::uint64_t pauses_ = 0;
};

}  // namespace mach
