// Low-level compiler/CPU helpers shared by every machlock module.
//
// These are the "machine dependent" leaves of the reproduction: the paper's
// simple locks sit on a hardware test-and-set (VAX bbssi, ns32000 sbitib);
// ours sit on std::atomic read-modify-writes plus a polite spin-wait hint.
#pragma once

#include <cstddef>
#include <new>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace mach {

// Hardware destructive-interference distance. std::hardware_destructive_
// interference_size triggers -Winterference-size portability warnings on
// GCC; 64 bytes is correct for every platform we target.
inline constexpr std::size_t cacheline_size = 64;

// Spin-wait hint to the CPU (x86 PAUSE / ARM YIELD). Keeps a spinning
// waiter from starving the sibling hyperthread and saves power; has no
// synchronization meaning.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

}  // namespace mach
