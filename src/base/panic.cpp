#include "base/panic.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mach {
namespace {

[[noreturn]] void default_panic_hook_abort(const std::string& message) {
  std::fprintf(stderr, "mach panic: %s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

void default_panic_hook(const std::string& message) {
  default_panic_hook_abort(message);
}

std::atomic<panic_hook_t> g_hook{&default_panic_hook};

}  // namespace

panic_hook_t set_panic_hook(panic_hook_t hook) noexcept {
  return g_hook.exchange(hook != nullptr ? hook : &default_panic_hook);
}

void panic(const std::string& what) {
  g_hook.load()(what);
  // A test hook must throw; if it returned, fall back to aborting so panic()
  // keeps its never-returns contract.
  default_panic_hook_abort(what);
}

}  // namespace mach
