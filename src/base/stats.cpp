#include "base/stats.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

namespace mach {

void latency_histogram::record(std::uint64_t nanos) noexcept {
  int bucket = nanos == 0 ? 0 : std::bit_width(nanos);
  if (bucket >= num_buckets) bucket = num_buckets - 1;
  ++buckets_[bucket];
  ++count_;
  total_ += nanos;
  max_ = std::max(max_, nanos);
}

void latency_histogram::merge(const latency_histogram& other) noexcept {
  for (int i = 0; i < num_buckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  total_ += other.total_;
  max_ = std::max(max_, other.max_);
}

void latency_histogram::reset() noexcept { *this = latency_histogram{}; }

double latency_histogram::mean_nanos() const noexcept {
  return count_ == 0 ? 0.0 : static_cast<double>(total_) / static_cast<double>(count_);
}

std::uint64_t latency_histogram::quantile_nanos(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < num_buckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Upper bound of bucket i: values v with bit_width(v) == i.
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
  }
  return max_;
}

summary summarize(const std::vector<double>& samples) {
  summary s;
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(samples.size()));
  return s;
}

std::uint64_t now_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace mach
