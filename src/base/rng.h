// Small deterministic PRNGs for workload generation.
//
// Benchmarks and property tests need per-thread, seedable, allocation-free
// randomness; <random> engines are bulkier than needed for that. xorshift*
// passes the statistical bar for scheduling jitter and key selection.
#pragma once

#include <cstdint>

namespace mach {

// splitmix64: used to expand a user seed into well-mixed stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class xorshift64 {
 public:
  explicit constexpr xorshift64(std::uint64_t seed = 0x2545f4914f6cdd1dull) noexcept {
    std::uint64_t s = seed;
    state_ = splitmix64(s);
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ull;
  }

  constexpr std::uint64_t next() noexcept {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  // Uniform in [0, bound). bound must be nonzero.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  // True with probability per_mille/1000.
  constexpr bool chance_per_mille(std::uint64_t per_mille) noexcept {
    return next_below(1000) < per_mille;
  }

 private:
  std::uint64_t state_;
};

}  // namespace mach
