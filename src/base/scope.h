// scope_exit: run a callable on scope exit (CP.20 / E.6 — RAII everywhere,
// even around primitives that are deliberately manual like simple_unlock).
#pragma once

#include <utility>

namespace mach {

template <typename F>
class scope_exit {
 public:
  explicit scope_exit(F fn) noexcept : fn_(std::move(fn)) {}
  ~scope_exit() {
    if (armed_) fn_();
  }

  scope_exit(const scope_exit&) = delete;
  scope_exit& operator=(const scope_exit&) = delete;
  scope_exit(scope_exit&& other) noexcept
      : fn_(std::move(other.fn_)), armed_(std::exchange(other.armed_, false)) {}
  scope_exit& operator=(scope_exit&&) = delete;

  // Cancel the pending action (e.g. ownership was handed off).
  void release() noexcept { armed_ = false; }

 private:
  F fn_;
  bool armed_ = true;
};

template <typename F>
scope_exit(F) -> scope_exit<F>;

}  // namespace mach
