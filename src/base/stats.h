// Counters and latency statistics used by lock instrumentation and the
// benchmark harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/compiler.h"

namespace mach {

// Cacheline-padded relaxed counter: per-thread/per-object event tallies
// where cross-thread precision at read time is not required.
class alignas(cacheline_size) event_counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Log2-bucketed histogram of nanosecond latencies. Single-writer or
// externally synchronized; merge() combines per-thread instances.
class latency_histogram {
 public:
  static constexpr int num_buckets = 48;

  void record(std::uint64_t nanos) noexcept;
  void merge(const latency_histogram& other) noexcept;
  // Drop all samples (between bench rounds / sampler windows).
  void reset() noexcept;

  std::uint64_t count() const noexcept { return count_; }
  // Raw bucket occupancy; bucket i holds values whose bit_width is i
  // (i.e. v in [2^(i-1), 2^i - 1]). Used by the Prometheus exporter.
  std::uint64_t bucket(int i) const noexcept {
    return i < 0 || i >= num_buckets ? 0 : buckets_[i];
  }
  std::uint64_t total_nanos() const noexcept { return total_; }
  double mean_nanos() const noexcept;
  // Approximate quantile (bucket upper bound), q in [0,1].
  std::uint64_t quantile_nanos(double q) const noexcept;
  std::uint64_t max_nanos() const noexcept { return max_; }

 private:
  std::uint64_t buckets_[num_buckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

// Summary statistics over a small sample vector (bench harness output).
struct summary {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

summary summarize(const std::vector<double>& samples);

// Monotonic clock reading in nanoseconds.
std::uint64_t now_nanos() noexcept;

}  // namespace mach
