// The canonical machlock metric set — one instance of every kernel-wide
// kmon metric, grouped by subsystem. Subsystems update these directly
// (`kmet().sched_blocks.inc()`); each update is one relaxed load while
// metrics are disabled (see metrics/kmon.h for the cost model).
//
// `g_kmetrics` is a plain global (not a function-local static) so the hot
// update path is a direct reference with no init-guard check. Updates that
// could run during static initialization are safe anyway: kmon is disabled
// until main() (trace_session / an explicit kmon::enable()), so every
// pre-main update takes the one-relaxed-load early return.
//
// The sync subsystem is bridged from lockstat rather than counted twice:
// callback gauges evaluate lock_registry totals at snapshot time, so lock
// hot paths carry no additional instrumentation.
#pragma once

#include "metrics/kmon.h"

namespace mach {

struct kmetrics_t {
  kmetrics_t();  // wires the callback gauges (kern/sync bridges)

  // --- sched ---
  kmon::counter sched_blocks{"machlock_sched_blocks_total",
                             "thread_block calls that suspended (context switches)"};
  kmon::counter sched_blocks_short_circuited{
      "machlock_sched_blocks_short_circuited_total",
      "thread_block calls short-circuited by an early wakeup (non-blocking switches)"};
  kmon::counter sched_wakeups{"machlock_sched_wakeups_total",
                              "waiters actually woken by thread_wakeup/clear_wait"};
  kmon::counter sched_wakeups_no_waiter{"machlock_sched_wakeups_no_waiter_total",
                                        "thread_wakeup calls that found no waiter"};
  kmon::gauge sched_wait_queue_depth{"machlock_sched_wait_queue_depth",
                                     "threads currently queued on event wait queues"};
  kmon::gauge sched_threads_live{"machlock_sched_threads_live",
                                 "spawned kthreads currently running"};
  kmon::histogram sched_block_nanos{"machlock_sched_block_nanos",
                                    "blocked time from thread_block to wakeup"};

  // --- ipc ---
  kmon::counter ipc_messages{"machlock_ipc_messages_total", "messages accepted by port::send"};
  kmon::counter ipc_translations{"machlock_ipc_translations_total",
                                 "port name -> port -> object translations in msg_rpc"};
  kmon::counter ipc_rpcs{"machlock_ipc_rpcs_total", "msg_rpc calls"};
  kmon::gauge ipc_rpc_in_flight{"machlock_ipc_rpc_in_flight", "msg_rpc calls currently executing"};
  kmon::histogram ipc_rpc_nanos{"machlock_ipc_rpc_nanos",
                                "msg_rpc latency, translation through dispatch"};

  // --- vm ---
  kmon::counter vm_shootdown_rounds{"machlock_vm_shootdown_rounds_total",
                                    "TLB shootdown protocol rounds initiated"};
  kmon::counter vm_shootdown_cpus_excluded{
      "machlock_vm_shootdown_cpus_excluded_total",
      "CPUs removed from shootdown rounds by the pmap special logic (sec. 7)"};
  kmon::counter vm_pageout_scans{"machlock_vm_pageout_scans_total",
                                 "pageout daemon scan passes below the low-water mark"};
  kmon::counter vm_pageout_evictions{"machlock_vm_pageout_evictions_total",
                                     "successful pageout reclaim passes over a map"};
  kmon::counter vm_pmap_enters{"machlock_vm_pmap_enters_total", "pmap translation insertions"};
  kmon::counter vm_pmap_removes{"machlock_vm_pmap_removes_total", "pmap translation removals"};
  kmon::counter vm_pv_operations{"machlock_vm_pv_operations_total",
                                 "pv-list (inverted mapping) bucket operations"};

  // --- kern ---
  kmon::counter kern_zalloc_allocs{"machlock_kern_zalloc_allocs_total", "zone element allocations"};
  kmon::counter kern_zalloc_frees{"machlock_kern_zalloc_frees_total", "zone element frees"};
  kmon::counter kern_zalloc_sleeps{"machlock_kern_zalloc_sleeps_total",
                                   "zone allocations that slept on exhaustion"};
  kmon::counter kern_ref_takes{"machlock_kern_ref_takes_total", "kobject references cloned"};
  kmon::counter kern_ref_releases{"machlock_kern_ref_releases_total",
                                  "kobject references released"};
  kmon::counter kern_deactivations{"machlock_kern_deactivations_total",
                                   "kobject deactivations (sec. 9)"};
  kmon::counter kern_lockref_fast{"machlock_kern_lockref_fast_total",
                                  "refcount ops completed by the lockref cmpxchg fast path"};
  kmon::counter kern_lockref_slow{"machlock_kern_lockref_slow_total",
                                  "refcount ops that fell back to a locked slow path"};
  kmon::callback_gauge kern_live_objects;  // kobject::live_objects() at snapshot

  // --- smp ---
  kmon::counter smp_barrier_rounds{"machlock_smp_barrier_rounds_total",
                                   "interrupt-barrier rounds completed"};
  kmon::counter smp_barrier_rounds_failed{"machlock_smp_barrier_rounds_failed_total",
                                          "interrupt-barrier rounds aborted or timed out"};
  kmon::counter smp_barrier_isr_parks{"machlock_smp_barrier_isr_parks_total",
                                      "participant ISR entries parked at interrupt level"};
  kmon::counter smp_spl_raises{"machlock_smp_spl_raises_total",
                               "splraise calls that raised the CPU priority level"};

  // --- svc (machcached traffic service, svc/machcached.h) ---
  kmon::counter svc_requests{"machlock_svc_requests_total",
                             "machcached requests served (GET+SET+DEL)"};
  kmon::counter svc_hits{"machlock_svc_hits_total", "machcached GET hits"};
  kmon::counter svc_misses{"machlock_svc_misses_total", "machcached GET misses"};
  kmon::counter svc_backpressure{"machlock_svc_backpressure_total",
                                 "machcached SETs refused on item-zone exhaustion"};
  kmon::histogram svc_serve_nanos{"machlock_svc_serve_nanos",
                                  "machcached server-side request service time"};

  // --- sync (bridged from lockstat at snapshot time) ---
  kmon::callback_gauge sync_locks_live;
  kmon::callback_gauge sync_acquisitions;
  kmon::callback_gauge sync_contended;

  // --- trace / kspan ---
  // Fed once per trace_session export with that session's ring-wraparound
  // total, so a truncated trace is visible in metrics, not just the stderr
  // summary line.
  kmon::counter trace_dropped{"machlock_trace_dropped_total",
                              "trace ring records lost to wraparound (tallied at session export)"};
  kmon::counter span_requests{"machlock_span_requests_total",
                              "kspan root request spans completed"};
  kmon::counter span_adoptions{"machlock_span_adoptions_total",
                               "kspan contexts adopted from received messages"};
  kmon::histogram span_queue_nanos{"machlock_span_queue_nanos",
                                   "port queue wait (enqueue to dequeue) for span-carrying messages"};
};

extern kmetrics_t g_kmetrics;
inline kmetrics_t& kmet() noexcept { return g_kmetrics; }

}  // namespace mach
