#include "metrics/kmetrics.h"

#include "kern/object.h"
#include "sync/lockstat.h"

namespace mach {

namespace {

double lockstat_total(bool contended) {
  double sum = 0;
  for (const lock_stat_entry& e : lock_registry::instance().snapshot()) {
    sum += static_cast<double>(contended ? e.contended : e.acquisitions);
  }
  return sum;
}

}  // namespace

kmetrics_t::kmetrics_t()
    : kern_live_objects("machlock_kern_live_objects", "kobject instances currently alive",
                        [] { return static_cast<double>(kobject::live_objects()); }),
      sync_locks_live("machlock_sync_locks_live", "locks registered in lock_registry",
                      [] { return static_cast<double>(lock_registry::instance().live_locks()); }),
      sync_acquisitions("machlock_sync_acquisitions", "lockstat: acquisitions across live locks",
                        [] { return lockstat_total(false); }),
      sync_contended("machlock_sync_contended", "lockstat: contended acquisitions across live locks",
                     [] { return lockstat_total(true); }) {}

kmetrics_t g_kmetrics;

}  // namespace mach
