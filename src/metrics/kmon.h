// kmon — kernel-wide metrics registry.
//
// lockstat (sync/lockstat.h) counts lock events and ktrace (trace/ktrace.h)
// timestamps them, but nothing observes the REST of the kernel: how many
// context switches the scheduler performed, how deep the wait queues are,
// how many RPCs are in flight, how often the pageout daemon ran, how many
// TLB-shootdown rounds the vm layer paid for. kmon is that system-wide
// instrument: a typed registry of self-registering metrics that every
// subsystem feeds, exportable as JSON or Prometheus text exposition, with
// a periodic sampler computing delta rates.
//
// Metric types:
//   * counter   — monotonically increasing event tally, striped across
//                 cacheline-padded per-CPU-ish ways so concurrent writers
//                 do not bounce one line;
//   * gauge     — instantaneous signed level (queue depth, in-flight ops);
//   * callback_gauge — gauge evaluated lazily at snapshot time (zone
//                 occupancy, live object count, lockstat bridges);
//   * histogram — log2-bucketed nanosecond distribution reusing
//                 base/stats.h latency_histogram, striped like counters.
//
// Cost model (the same discipline as ktrace): compiled in unconditionally;
// runtime-disabled by default; every disabled update is ONE relaxed atomic
// load and a predicted-taken early return — no stores, no clock reads.
// Enable via kmon::enable() or MACHLOCK_METRICS=<file> (trace_session).
//
// Metric names follow Prometheus conventions ("machlock_<subsystem>_<what>"
// with counters suffixed "_total"); an optional single label supports
// per-instance metrics such as zone occupancy. The canonical metric set
// lives in metrics/kmetrics.h.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/compiler.h"
#include "base/stats.h"

namespace mach::kmon {

namespace detail {
extern std::atomic<bool> g_enabled;
// The calling thread's stripe index in [0, num_ways).
unsigned way_index() noexcept;
}  // namespace detail

// The global switch. enabled() is the update fast path: a single relaxed
// load, so disabled metrics stay near-free.
inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }
void enable() noexcept;
void disable() noexcept;

enum class metric_kind { counter, gauge, histogram };
const char* to_string(metric_kind k) noexcept;

// One metric's value at snapshot time.
struct metric_sample {
  std::string name;
  std::string help;
  metric_kind kind = metric_kind::counter;
  std::string label_key;    // optional: single Prometheus label
  std::string label_value;
  double value = 0.0;       // counter / gauge
  latency_histogram hist;   // histogram only
};

class metric;

// Global, never-destroyed directory of live metrics (same lifetime
// discipline as lock_registry: metrics with static storage duration may
// unregister after main).
class registry {
 public:
  static registry& instance() noexcept;

  void add(metric* m);
  void remove(metric* m);
  std::size_t live_metrics() const;

  // Snapshot every live metric, sorted by name (then label) so output is
  // deterministic.
  std::vector<metric_sample> snapshot() const;

  // Zero every resettable metric (between bench rounds). Callback gauges
  // are unaffected (they have no state here).
  void reset_all();

  // Top-style dump on stdout: metrics sorted by value, largest first.
  // max_rows == 0 prints everything.
  void print_top(std::size_t max_rows = 0) const;

 private:
  registry() = default;
  struct impl;
  impl& self() const;
};

// Base: name + kind + self-registration.
class metric {
 public:
  metric(const char* name, const char* help, metric_kind kind, std::string label_key = {},
         std::string label_value = {});
  virtual ~metric();
  metric(const metric&) = delete;
  metric& operator=(const metric&) = delete;

  const char* name() const noexcept { return name_; }
  const char* help() const noexcept { return help_; }
  metric_kind kind() const noexcept { return kind_; }
  const std::string& label_key() const noexcept { return label_key_; }
  const std::string& label_value() const noexcept { return label_value_; }

  // Fill `s` (pre-populated with name/kind/label) with the current value.
  virtual void sample_into(metric_sample& s) const = 0;
  virtual void reset() noexcept {}

 private:
  const char* name_;
  const char* help_;
  metric_kind kind_;
  std::string label_key_;
  std::string label_value_;
};

inline constexpr unsigned num_ways = 8;

// Monotonic event counter, striped to keep concurrent writers off one
// cacheline. value() is a racy sum — the usual diagnostics trade.
class counter final : public metric {
 public:
  counter(const char* name, const char* help)
      : metric(name, help, metric_kind::counter) {}

  void inc(std::uint64_t n = 1) noexcept {
    if (!enabled()) [[likely]] return;
    ways_[detail::way_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const way& w : ways_) sum += w.v.load(std::memory_order_relaxed);
    return sum;
  }

  void sample_into(metric_sample& s) const override { s.value = static_cast<double>(value()); }
  void reset() noexcept override {
    for (way& w : ways_) w.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(cacheline_size) way {
    std::atomic<std::uint64_t> v{0};
  };
  way ways_[num_ways];
};

// Signed level. Updates are gated like counters, so a gauge paired across
// an enable/disable toggle can transiently drift; exporters report the raw
// signed value.
class gauge final : public metric {
 public:
  gauge(const char* name, const char* help) : metric(name, help, metric_kind::gauge) {}

  void add(std::int64_t n = 1) noexcept {
    if (!enabled()) [[likely]] return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) noexcept { add(-n); }
  void set(std::int64_t n) noexcept {
    if (!enabled()) [[likely]] return;
    v_.store(n, std::memory_order_relaxed);
  }

  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void sample_into(metric_sample& s) const override { s.value = static_cast<double>(value()); }
  void reset() noexcept override { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Gauge whose value is computed at snapshot time (no update fast path at
// all): zone occupancy, live kobject count, lockstat bridges.
class callback_gauge final : public metric {
 public:
  callback_gauge(const char* name, const char* help, std::function<double()> fn,
                 std::string label_key = {}, std::string label_value = {})
      : metric(name, help, metric_kind::gauge, std::move(label_key), std::move(label_value)),
        fn_(std::move(fn)) {}

  void sample_into(metric_sample& s) const override { s.value = fn_ ? fn_() : 0.0; }

 private:
  std::function<double()> fn_;
};

// Striped log2 histogram of nanosecond values. Each stripe is a
// latency_histogram behind a tiny spinlock; record() contends only within
// one stripe, and only while metrics are enabled.
class histogram final : public metric {
 public:
  histogram(const char* name, const char* help) : metric(name, help, metric_kind::histogram) {}
  // Labelled variant (e.g. machlock_span_nanos{kind="rpc"}), for families
  // created per instance like kspan's per-kind latency histograms.
  histogram(const char* name, const char* help, std::string label_key, std::string label_value)
      : metric(name, help, metric_kind::histogram, std::move(label_key), std::move(label_value)) {}

  void record(std::uint64_t nanos) noexcept {
    if (!enabled()) [[likely]] return;
    stripe& s = stripes_[detail::way_index()];
    while (s.busy.test_and_set(std::memory_order_acquire)) cpu_relax();
    s.h.record(nanos);
    s.busy.clear(std::memory_order_release);
  }

  // Merged copy of all stripes.
  latency_histogram merged() const noexcept;

  void sample_into(metric_sample& s) const override { s.hist = merged(); }
  void reset() noexcept override;

 private:
  struct alignas(cacheline_size) stripe {
    mutable std::atomic_flag busy = ATOMIC_FLAG_INIT;
    latency_histogram h;
  };
  stripe stripes_[num_ways];
};

// --- exporters ---

// Escape a label value per the Prometheus exposition format: backslash,
// double-quote, and line feed become \\, \", and \n. Used everywhere a
// label value is interpolated into a sample name (text exporter, rate
// keys, print_top) so hostile values cannot break the line format.
std::string prom_escape_label_value(const std::string& v);

// Prometheus text exposition format (v0.0.4): HELP/TYPE headers, counters
// and gauges as single samples, histograms as cumulative le-buckets plus
// _sum/_count. Parseable by any Prometheus scraper and by the test-side
// mini-parser (tests/test_metrics.cpp).
std::string export_prometheus(const std::vector<metric_sample>& samples);

// One JSON object per metric. When `rates` is non-null, counters carry the
// sampler's last-window per-second rate as "rate_per_sec".
struct rate_sample {
  std::string name;   // metric name (+ "{label}" suffix when labelled)
  double per_second = 0.0;
};
std::string export_json(const std::vector<metric_sample>& samples,
                        const std::vector<rate_sample>* rates = nullptr);

// Snapshot now and write `path`: Prometheus text if the path ends in
// ".prom", JSON otherwise. Includes sampler rates in JSON when the sampler
// ran. Returns false on I/O failure.
bool export_file(const std::string& path);

// --- periodic sampler ---

// Background thread snapshotting every `interval`, computing per-counter
// delta rates over the last completed window. Used by trace_session when
// MACHLOCK_METRICS is set so the final export carries rates, and usable
// standalone for live monitoring.
class sampler {
 public:
  static sampler& instance() noexcept;

  void start(std::chrono::milliseconds interval);
  void stop();
  bool running() const noexcept;

  // Per-counter rates over the last completed window; empty before the
  // first window completes.
  std::vector<rate_sample> rates() const;

 private:
  sampler() = default;
  struct impl;
  impl& self() const;
};

}  // namespace mach::kmon
