// Stall watchdog — the machlock analogue of Linux's softlockup / hung-task
// detectors.
//
// The paper's failure modes (section 5's ordering deadlocks, section 7's
// barrier deadlock, section 7.1's recursive-lock deadlock) all present the
// same way at runtime: a thread stops making progress while waiting for
// something. The watchdog watches for exactly that, from a monitor thread,
// across three wait classes:
//
//   * simple_spin    — a simple-lock acquisition spinning past its deadline
//                      (the holder is wedged or the lock leaked);
//   * thread_blocked — a thread suspended in assert_wait/thread_block past
//                      its deadline (a lost wakeup or an abandoned event);
//   * writer_wait    — a complex-lock writer (or upgrader) starved past its
//                      deadline (readers never drain).
//
// Each waiting thread publishes its current wait in a per-thread slot of a
// lock-free stall table via a seqlock protocol; the monitor polls the table
// and, when a wait exceeds its class deadline, composes a trip report:
// the stalled thread and resource, the resource's holder (for locks), the
// wait-graph's held-lock dump and cycle report (when deadlock tracing is
// on), the lockstat top table, and the recent ktrace tail (when tracing is
// on) — then optionally panics.
//
// Cost model: hooks sit ONLY in wait slow paths (a contended acquisition,
// an actual suspension); the uncontended fast paths are untouched. A
// disarmed begin hook is one relaxed load; a disarmed end hook is one
// thread-local read.
//
// Enable programmatically (watchdog::instance().start(cfg)) or via the
// environment through trace_session: MACHLOCK_WATCHDOG=1 with optional
// MACHLOCK_WATCHDOG_{POLL,SPIN,BLOCK,WRITER}_MS and
// MACHLOCK_WATCHDOG_PANIC=1. See docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

namespace mach {

enum class stall_kind : int { none = 0, simple_spin, thread_blocked, writer_wait };
const char* to_string(stall_kind k) noexcept;

namespace watchdog_detail {
extern std::atomic<bool> g_armed;
extern thread_local int t_wait_depth;
void note_wait_begin_slow(stall_kind k, const void* resource, const char* name) noexcept;
void note_wait_end_slow() noexcept;
}  // namespace watchdog_detail

inline bool watchdog_armed() noexcept {
  return watchdog_detail::g_armed.load(std::memory_order_relaxed);
}

// Publish "the current thread is now waiting on `resource`". Nested waits
// (a starved writer that sleeps through the event system) keep the
// outermost entry — it names the real stall.
inline void watchdog_note_wait_begin(stall_kind k, const void* resource,
                                     const char* name) noexcept {
  if (!watchdog_armed()) [[likely]] return;
  watchdog_detail::note_wait_begin_slow(k, resource, name);
}

// Retire the matching begin. Not gated on the armed flag so an entry made
// while armed is cleared even if the watchdog stops mid-wait.
inline void watchdog_note_wait_end() noexcept {
  if (watchdog_detail::t_wait_depth == 0) [[likely]] return;
  watchdog_detail::note_wait_end_slow();
}

struct watchdog_config {
  std::chrono::milliseconds poll{10};
  std::chrono::milliseconds spin_deadline{250};
  std::chrono::milliseconds block_deadline{2000};
  std::chrono::milliseconds writer_deadline{1000};
  bool panic_on_trip = false;
  // Report sink; default writes the report to stderr. Runs on the monitor
  // thread.
  std::function<void(const std::string& report)> on_trip;
};

// Config from MACHLOCK_WATCHDOG_* environment variables (defaults above).
watchdog_config watchdog_config_from_env();

class watchdog {
 public:
  static watchdog& instance() noexcept;

  void start(const watchdog_config& cfg = {});
  void stop();
  bool running() const noexcept;

  std::uint64_t trips() const noexcept;
  std::string last_report() const;

 private:
  watchdog() = default;
  struct impl;
  impl& self() const;
};

}  // namespace mach
