#include "metrics/kmon.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>

#include "harness/table.h"
#include "trace/trace_export.h"

namespace mach::kmon {

namespace detail {

std::atomic<bool> g_enabled{false};

unsigned way_index() noexcept {
  // Round-robin stripe assignment at first use: cheap, stable per thread,
  // and spreads concurrent writers across ways even when thread ids are
  // clustered.
  static std::atomic<unsigned> next{0};
  thread_local unsigned mine = next.fetch_add(1, std::memory_order_relaxed) % num_ways;
  return mine;
}

}  // namespace detail

void enable() noexcept { detail::g_enabled.store(true, std::memory_order_relaxed); }
void disable() noexcept { detail::g_enabled.store(false, std::memory_order_relaxed); }

const char* to_string(metric_kind k) noexcept {
  switch (k) {
    case metric_kind::counter: return "counter";
    case metric_kind::gauge: return "gauge";
    case metric_kind::histogram: return "histogram";
  }
  return "?";
}

std::string prom_escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// --- metric base / registry ---

metric::metric(const char* name, const char* help, metric_kind kind, std::string label_key,
               std::string label_value)
    : name_(name),
      help_(help),
      kind_(kind),
      label_key_(std::move(label_key)),
      label_value_(std::move(label_value)) {
  registry::instance().add(this);
}

metric::~metric() { registry::instance().remove(this); }

struct registry::impl {
  mutable std::mutex m;
  std::set<metric*> metrics;
};

registry& registry::instance() noexcept {
  // Intentionally leaked, like lock_registry: metrics with static storage
  // duration unregister during shutdown, possibly after any registry with
  // a destructor would already be gone.
  static registry* r = new registry;
  return *r;
}

registry::impl& registry::self() const {
  static impl* i = new impl;
  return *i;
}

void registry::add(metric* m) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.metrics.insert(m);
}

void registry::remove(metric* m) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.metrics.erase(m);
}

std::size_t registry::live_metrics() const {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  return s.metrics.size();
}

std::vector<metric_sample> registry::snapshot() const {
  impl& s = self();
  std::vector<metric_sample> out;
  {
    std::lock_guard<std::mutex> g(s.m);
    out.reserve(s.metrics.size());
    for (const metric* m : s.metrics) {
      metric_sample ms;
      ms.name = m->name();
      ms.help = m->help();
      ms.kind = m->kind();
      ms.label_key = m->label_key();
      ms.label_value = m->label_value();
      m->sample_into(ms);
      out.push_back(std::move(ms));
    }
  }
  std::sort(out.begin(), out.end(), [](const metric_sample& a, const metric_sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.label_value < b.label_value;
  });
  return out;
}

void registry::reset_all() {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  for (metric* m : s.metrics) m->reset();
}

void registry::print_top(std::size_t max_rows) const {
  std::vector<metric_sample> snap = snapshot();
  // Top-style: largest values first; histograms rank by count.
  std::stable_sort(snap.begin(), snap.end(), [](const metric_sample& a, const metric_sample& b) {
    const double av = a.kind == metric_kind::histogram ? static_cast<double>(a.hist.count())
                                                       : a.value;
    const double bv = b.kind == metric_kind::histogram ? static_cast<double>(b.hist.count())
                                                       : b.value;
    return av > bv;
  });
  table t("kmon: kernel metrics (" + std::to_string(snap.size()) + " registered, largest first)");
  t.columns({"metric", "kind", "value", "p50", "p99", "max"});
  std::size_t rows = 0;
  for (const metric_sample& s : snap) {
    if (max_rows != 0 && rows++ >= max_rows) break;
    std::string name = s.name;
    if (!s.label_key.empty()) {
      name += "{" + s.label_key + "=\"" + prom_escape_label_value(s.label_value) + "\"}";
    }
    if (s.kind == metric_kind::histogram) {
      t.row({name, "histogram", table::num(s.hist.count()),
             table::num(s.hist.quantile_nanos(0.5)) + "ns",
             table::num(s.hist.quantile_nanos(0.99)) + "ns", table::num(s.hist.max_nanos()) + "ns"});
    } else {
      t.row({name, to_string(s.kind), table::num(s.value, s.value == static_cast<std::int64_t>(s.value) ? 0 : 2),
             "-", "-", "-"});
    }
  }
  t.print();
}

// --- histogram ---

latency_histogram histogram::merged() const noexcept {
  latency_histogram out;
  for (const stripe& s : stripes_) {
    while (s.busy.test_and_set(std::memory_order_acquire)) cpu_relax();
    out.merge(s.h);
    s.busy.clear(std::memory_order_release);
  }
  return out;
}

void histogram::reset() noexcept {
  for (stripe& s : stripes_) {
    while (s.busy.test_and_set(std::memory_order_acquire)) cpu_relax();
    s.h.reset();
    s.busy.clear(std::memory_order_release);
  }
}

// --- exporters ---

namespace {

std::string prom_sample_name(const metric_sample& s) {
  if (s.label_key.empty()) return s.name;
  return s.name + "{" + s.label_key + "=\"" + prom_escape_label_value(s.label_value) + "\"}";
}

void append_double(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    out += std::to_string(static_cast<std::int64_t>(v));
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out += buf;
  }
}

}  // namespace

std::string export_prometheus(const std::vector<metric_sample>& samples) {
  std::string out;
  const std::string* last_name = nullptr;
  for (const metric_sample& s : samples) {
    // HELP/TYPE once per metric name (labelled instances share them).
    if (last_name == nullptr || *last_name != s.name) {
      out += "# HELP " + s.name + " " + s.help + "\n";
      out += "# TYPE " + s.name + " ";
      out += to_string(s.kind);
      out += "\n";
    }
    last_name = &s.name;
    if (s.kind == metric_kind::histogram) {
      // Cumulative le-buckets over the log2 layout: bucket i holds values
      // whose bit_width is i, i.e. at most 2^i - 1 ns.
      std::uint64_t cum = 0;
      int top = 0;
      for (int i = 0; i < latency_histogram::num_buckets; ++i) {
        if (s.hist.bucket(i) != 0) top = i;
      }
      for (int i = 0; i <= top; ++i) {
        cum += s.hist.bucket(i);
        const std::uint64_t le = i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
        out += s.name + "_bucket{le=\"" + std::to_string(le) + "\"} " + std::to_string(cum) + "\n";
      }
      out += s.name + "_bucket{le=\"+Inf\"} " + std::to_string(s.hist.count()) + "\n";
      out += s.name + "_sum " + std::to_string(s.hist.total_nanos()) + "\n";
      out += s.name + "_count " + std::to_string(s.hist.count()) + "\n";
    } else {
      out += prom_sample_name(s) + " ";
      append_double(out, s.value);
      out += "\n";
    }
  }
  return out;
}

std::string export_json(const std::vector<metric_sample>& samples,
                        const std::vector<rate_sample>* rates) {
  std::unordered_map<std::string, double> rate_by_name;
  if (rates != nullptr) {
    for (const rate_sample& r : *rates) rate_by_name[r.name] = r.per_second;
  }
  std::string out = "[";
  bool first = true;
  for (const metric_sample& s : samples) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"kind\":\"";
    out += to_string(s.kind);
    out += "\"";
    if (!s.label_key.empty()) {
      out += ",\"" + json_escape(s.label_key) + "\":\"" + json_escape(s.label_value) + "\"";
    }
    if (s.kind == metric_kind::histogram) {
      out += ",\"count\":" + std::to_string(s.hist.count());
      out += ",\"sum_ns\":" + std::to_string(s.hist.total_nanos());
      out += ",\"p50_ns\":" + std::to_string(s.hist.quantile_nanos(0.5));
      out += ",\"p99_ns\":" + std::to_string(s.hist.quantile_nanos(0.99));
      out += ",\"max_ns\":" + std::to_string(s.hist.max_nanos());
    } else {
      out += ",\"value\":";
      append_double(out, s.value);
    }
    auto rit = rate_by_name.find(prom_sample_name(s));
    if (rit != rate_by_name.end()) {
      out += ",\"rate_per_sec\":";
      append_double(out, rit->second);
    }
    out += "}";
  }
  out += "\n]";
  return out;
}

bool export_file(const std::string& path) {
  const std::vector<metric_sample> snap = registry::instance().snapshot();
  const bool prom = path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  std::string body;
  if (prom) {
    body = export_prometheus(snap);
  } else {
    const std::vector<rate_sample> r = sampler::instance().rates();
    body = export_json(snap, r.empty() ? nullptr : &r);
    body += "\n";
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

// --- sampler ---

struct sampler::impl {
  mutable std::mutex m;
  std::thread thread;
  std::atomic<bool> stop{false};
  bool running = false;
  std::vector<rate_sample> last_rates;  // guarded by m

  void window(std::chrono::milliseconds interval) {
    std::unordered_map<std::string, double> prev;
    std::uint64_t prev_nanos = now_nanos();
    for (const metric_sample& s : registry::instance().snapshot()) {
      if (s.kind == metric_kind::counter) prev[prom_sample_name(s)] = s.value;
    }
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(interval);
      const std::uint64_t now = now_nanos();
      const double dt = static_cast<double>(now - prev_nanos) / 1e9;
      std::vector<rate_sample> rates;
      std::unordered_map<std::string, double> cur;
      for (const metric_sample& s : registry::instance().snapshot()) {
        if (s.kind != metric_kind::counter) continue;
        const std::string name = prom_sample_name(s);
        cur[name] = s.value;
        auto it = prev.find(name);
        const double delta = it == prev.end() ? s.value : s.value - it->second;
        if (dt > 0) rates.push_back({name, delta / dt});
      }
      prev = std::move(cur);
      prev_nanos = now;
      std::lock_guard<std::mutex> g(m);
      last_rates = std::move(rates);
    }
  }
};

sampler& sampler::instance() noexcept {
  static sampler* s = new sampler;
  return *s;
}

sampler::impl& sampler::self() const {
  static impl* i = new impl;
  return *i;
}

void sampler::start(std::chrono::milliseconds interval) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  if (s.running) return;
  s.stop.store(false);
  s.thread = std::thread([&s, interval] { s.window(interval); });
  s.running = true;
}

void sampler::stop() {
  impl& s = self();
  {
    std::lock_guard<std::mutex> g(s.m);
    if (!s.running) return;
    s.stop.store(true);
  }
  s.thread.join();
  std::lock_guard<std::mutex> g(s.m);
  s.running = false;
}

bool sampler::running() const noexcept {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  return s.running;
}

std::vector<rate_sample> sampler::rates() const {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  return s.last_rates;
}

}  // namespace mach::kmon
