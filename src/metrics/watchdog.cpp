#include "metrics/watchdog.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "base/compiler.h"
#include "base/panic.h"
#include "base/stats.h"
#include "prof/kprof.h"
#include "sync/deadlock.h"
#include "sync/lockstat.h"
#include "sync/simple_lock.h"
#include "trace/kspan.h"
#include "trace/ktrace.h"
#include "trace/trace_export.h"

namespace mach {

const char* to_string(stall_kind k) noexcept {
  switch (k) {
    case stall_kind::none: return "none";
    case stall_kind::simple_spin: return "simple-lock spin";
    case stall_kind::thread_blocked: return "blocked thread";
    case stall_kind::writer_wait: return "starved complex-lock writer";
  }
  return "?";
}

namespace watchdog_detail {

std::atomic<bool> g_armed{false};
thread_local int t_wait_depth = 0;

namespace {

// The stall table: one seqlock-published slot per waiting thread. Writers
// (the waiting threads) touch only their own slot; the monitor reads all
// slots racily and discards torn reads via the sequence check.
struct alignas(cacheline_size) stall_slot {
  std::atomic<std::uint64_t> seq{0};       // odd while the owner writes
  std::atomic<const void*> thread{nullptr};  // owner token; null = slot free
  std::atomic<const void*> resource{nullptr};
  std::atomic<const char*> rname{nullptr};
  std::atomic<std::uint64_t> since{0};
  std::atomic<int> kind{0};
  // The waiter's kspan context at wait begin (0 when none): a trip report
  // can then name the stalled *request*, not just the stalled thread.
  std::atomic<std::uint64_t> span{0};
};

constexpr int k_stall_slots = 256;
stall_slot g_stalls[k_stall_slots];

// Per-thread slot ownership, released at thread exit so slots recycle
// across the short-lived kthreads the tests and benches spawn.
struct slot_owner {
  int idx = -1;
  ~slot_owner() {
    if (idx < 0) return;
    stall_slot& s = g_stalls[idx];
    const std::uint64_t q = s.seq.load(std::memory_order_relaxed);
    s.seq.store(q + 1, std::memory_order_relaxed);
    s.kind.store(static_cast<int>(stall_kind::none), std::memory_order_relaxed);
    s.seq.store(q + 2, std::memory_order_release);
    s.thread.store(nullptr, std::memory_order_release);
  }
};
thread_local slot_owner t_slot;

int claim_slot() {
  const void* me = current_thread_token();
  const std::size_t h = std::hash<const void*>{}(me);
  for (int i = 0; i < k_stall_slots; ++i) {
    const int idx = static_cast<int>((h + static_cast<std::size_t>(i)) % k_stall_slots);
    const void* expect = nullptr;
    if (g_stalls[idx].thread.compare_exchange_strong(expect, me, std::memory_order_acq_rel)) {
      return idx;
    }
  }
  return -1;  // table full: this stall goes unobserved, nothing breaks
}

}  // namespace

void note_wait_begin_slow(stall_kind k, const void* resource, const char* name) noexcept {
  if (++t_wait_depth > 1) return;  // the outermost wait names the stall
  if (t_slot.idx < 0) t_slot.idx = claim_slot();
  if (t_slot.idx < 0) return;
  stall_slot& s = g_stalls[t_slot.idx];
  const std::uint64_t q = s.seq.load(std::memory_order_relaxed);
  s.seq.store(q + 1, std::memory_order_relaxed);
  s.resource.store(resource, std::memory_order_relaxed);
  s.rname.store(name, std::memory_order_relaxed);
  s.since.store(now_nanos(), std::memory_order_relaxed);
  s.kind.store(static_cast<int>(k), std::memory_order_relaxed);
  s.span.store(kspan::current(), std::memory_order_relaxed);
  s.seq.store(q + 2, std::memory_order_release);
}

void note_wait_end_slow() noexcept {
  if (--t_wait_depth > 0) return;
  if (t_slot.idx < 0) return;
  stall_slot& s = g_stalls[t_slot.idx];
  const std::uint64_t q = s.seq.load(std::memory_order_relaxed);
  s.seq.store(q + 1, std::memory_order_relaxed);
  s.kind.store(static_cast<int>(stall_kind::none), std::memory_order_relaxed);
  s.span.store(0, std::memory_order_relaxed);
  s.seq.store(q + 2, std::memory_order_release);
}

}  // namespace watchdog_detail

namespace {

int env_int(const char* var, int def) {
  const char* v = std::getenv(var);
  if (v == nullptr || v[0] == '\0') return def;
  const int n = std::atoi(v);
  return n > 0 ? n : def;
}

}  // namespace

watchdog_config watchdog_config_from_env() {
  watchdog_config cfg;
  cfg.poll = std::chrono::milliseconds(env_int("MACHLOCK_WATCHDOG_POLL_MS", 10));
  cfg.spin_deadline = std::chrono::milliseconds(env_int("MACHLOCK_WATCHDOG_SPIN_MS", 250));
  cfg.block_deadline = std::chrono::milliseconds(env_int("MACHLOCK_WATCHDOG_BLOCK_MS", 2000));
  cfg.writer_deadline = std::chrono::milliseconds(env_int("MACHLOCK_WATCHDOG_WRITER_MS", 1000));
  const char* p = std::getenv("MACHLOCK_WATCHDOG_PANIC");
  cfg.panic_on_trip = p != nullptr && p[0] == '1';
  return cfg;
}

struct watchdog::impl {
  mutable std::mutex m;
  std::thread thread;
  std::atomic<bool> stop{false};
  bool running = false;
  watchdog_config cfg;
  std::atomic<std::uint64_t> trips{0};
  std::string last_report;  // guarded by m

  std::uint64_t deadline_nanos(stall_kind k) const {
    using namespace std::chrono;
    switch (k) {
      case stall_kind::simple_spin: return duration_cast<nanoseconds>(cfg.spin_deadline).count();
      case stall_kind::thread_blocked:
        return duration_cast<nanoseconds>(cfg.block_deadline).count();
      case stall_kind::writer_wait:
        return duration_cast<nanoseconds>(cfg.writer_deadline).count();
      case stall_kind::none: break;
    }
    return ~std::uint64_t{0};
  }

  std::string build_report(stall_kind k, const void* thread, const void* resource,
                           const char* rname, std::uint64_t age_nanos,
                           std::uint64_t deadline_nanos, std::uint64_t span) {
    wait_graph& wg = wait_graph::instance();
    std::ostringstream os;
    os << "== machlock watchdog trip ==\n";
    os << "stall: " << to_string(k) << " — " << wg.thread_label(thread) << " waiting on '"
       << (rname != nullptr ? rname : "?") << "' (" << resource << ") for "
       << age_nanos / 1'000'000 << " ms (deadline " << deadline_nanos / 1'000'000 << " ms)\n";
    if (span != 0) {
      // The stall hit an in-flight request: name it so the trip can be
      // joined against the exported trace / span_report output.
      char buf[64];
      std::snprintf(buf, sizeof(buf), "request: trace=0x%x span=0x%x\n", span_trace_id(span),
                    span_span_id(span));
      os << buf;
    }
    // What the thread itself last published to the kprof slot table — the
    // deadline says how long it has been stuck; the activity word says
    // what it was last observed DOING (spinning on which lock, blocked on
    // which event), even when the sampler is not running.
    const kprof::thread_activity act = kprof::activity_for(thread);
    if (act.found) {
      os << "activity: " << kprof::to_string(act.state);
      if (!act.site.empty()) os << " on '" << act.site << "'";
      if (act.request) os << " (in-request)";
      os << "\n";
    } else {
      os << "activity: (thread never published to kprof)\n";
    }
    if (k == stall_kind::simple_spin && resource != nullptr) {
      // The waiter is still spinning, so the lock structure is alive.
      const auto* l = static_cast<const simple_lock_data_t*>(resource);
      const void* holder = l->holder.load(std::memory_order_relaxed);
      if (holder != nullptr) {
        os << "holder: " << wg.thread_label(holder) << " holds '" << l->name << "'\n";
      } else {
        os << "holder: none recorded (released since, or never published)\n";
      }
    }
    os << "held tracked locks (wait-graph):\n";
    if (wg.enabled()) {
      const std::vector<std::string> held = wg.held_resources();
      if (held.empty()) os << "  (none recorded)\n";
      for (const std::string& h : held) os << "  " << h << "\n";
      if (auto c = wg.find_cycle()) {
        os << "wait-graph cycle: " << c->description << "\n";
      } else {
        os << "wait-graph cycle: none found\n";
      }
    } else {
      os << "  (deadlock tracing disabled — set MACHLOCK_DEADLOCK=1 for holder edges)\n";
    }
    os << "lockstat top (most contended):\n";
    std::size_t rows = 0;
    for (const lock_stat_entry& e : lock_registry::instance().snapshot()) {
      if (rows++ >= 5) break;
      os << "  " << e.name << " [" << (e.is_complex ? "complex" : "simple")
         << "] acquisitions=" << e.acquisitions << " contended=" << e.contended << "\n";
    }
    if (ktrace::enabled()) {
      os << "ktrace tail (most recent events):\n";
      ktrace::trace_collection c = ktrace::collect();
      std::ostringstream tail;
      export_text(c, tail, 20);
      os << tail.str();
    } else {
      os << "ktrace tail: (tracing disabled — set MACHLOCK_TRACE to capture timelines)\n";
    }
    return os.str();
  }

  void trip(stall_kind k, const void* thread, const void* resource, const char* rname,
            std::uint64_t age, std::uint64_t deadline, std::uint64_t span) {
    const std::string report = build_report(k, thread, resource, rname, age, deadline, span);
    trips.fetch_add(1, std::memory_order_relaxed);
    std::function<void(const std::string&)> sink;
    bool do_panic = false;
    {
      std::lock_guard<std::mutex> g(m);
      last_report = report;
      sink = cfg.on_trip;
      do_panic = cfg.panic_on_trip;
    }
    if (sink) {
      sink(report);
    } else {
      std::fwrite(report.data(), 1, report.size(), stderr);
      std::fflush(stderr);
      // The full table dump goes to stdout, where the bench output lives.
      lock_registry::instance().print_top(10);
    }
    if (do_panic) {
      panic("watchdog: " + std::string(to_string(k)) + " stall on '" +
            (rname != nullptr ? rname : "?") + "' exceeded deadline");
    }
  }

  void scan(std::map<int, std::uint64_t>& reported) {
    using watchdog_detail::g_stalls;
    const std::uint64_t now = now_nanos();
    for (int i = 0; i < watchdog_detail::k_stall_slots; ++i) {
      auto& s = g_stalls[i];
      const std::uint64_t q1 = s.seq.load(std::memory_order_acquire);
      if (q1 & 1) continue;  // owner mid-write
      const auto k = static_cast<stall_kind>(s.kind.load(std::memory_order_relaxed));
      if (k == stall_kind::none) {
        reported.erase(i);
        continue;
      }
      const void* resource = s.resource.load(std::memory_order_relaxed);
      const char* rname = s.rname.load(std::memory_order_relaxed);
      const std::uint64_t since = s.since.load(std::memory_order_relaxed);
      const void* thread = s.thread.load(std::memory_order_relaxed);
      const std::uint64_t span = s.span.load(std::memory_order_relaxed);
      if (s.seq.load(std::memory_order_acquire) != q1) continue;  // torn read
      const std::uint64_t deadline = deadline_nanos(k);
      if (now - since < deadline) continue;
      auto it = reported.find(i);
      if (it != reported.end() && it->second == since) continue;  // already tripped
      reported[i] = since;
      trip(k, thread, resource, rname, now - since, deadline, span);
    }
  }

  void loop() {
    std::map<int, std::uint64_t> reported;
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(cfg.poll);
      scan(reported);
    }
  }
};

watchdog& watchdog::instance() noexcept {
  static watchdog* w = new watchdog;
  return *w;
}

watchdog::impl& watchdog::self() const {
  static impl* i = new impl;
  return *i;
}

void watchdog::start(const watchdog_config& cfg) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  if (s.running) return;
  s.cfg = cfg;
  s.stop.store(false);
  watchdog_detail::g_armed.store(true, std::memory_order_relaxed);
  s.thread = std::thread([&s] { s.loop(); });
  s.running = true;
}

void watchdog::stop() {
  impl& s = self();
  {
    std::lock_guard<std::mutex> g(s.m);
    if (!s.running) return;
    watchdog_detail::g_armed.store(false, std::memory_order_relaxed);
    s.stop.store(true);
  }
  s.thread.join();
  std::lock_guard<std::mutex> g(s.m);
  s.running = false;
}

bool watchdog::running() const noexcept {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  return s.running;
}

std::uint64_t watchdog::trips() const noexcept {
  return self().trips.load(std::memory_order_relaxed);
}

std::string watchdog::last_report() const {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  return s.last_report;
}

}  // namespace mach
