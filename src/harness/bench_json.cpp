#include "harness/bench_json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "harness/bench_model.h"

namespace mach::bench_json {
namespace {

struct recorded_table {
  std::string caption;
  std::vector<std::string> columns;
  std::vector<metric_dir> directions;
  std::vector<std::vector<std::string>> rows;
};

struct state_t {
  std::mutex m;
  std::string bench_name;  // set lazily from the binary name
  std::vector<recorded_table> tables;
  bool flushed = false;
  std::string external_path;
};

state_t& state() {
  static state_t* s = new state_t;
  return *s;
}

const char* out_dir() {
  const char* d = std::getenv("MACHLOCK_BENCH_JSON");
  return (d != nullptr && d[0] != '\0') ? d : nullptr;
}

std::string default_bench_name() {
#ifdef __GLIBC__
  const char* base = program_invocation_short_name;
#else
  const char* base = "bench";
#endif
  std::string name = base != nullptr ? base : "bench";
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

std::string bench_name_locked(state_t& s) {
  if (s.bench_name.empty()) s.bench_name = default_bench_name();
  return s.bench_name;
}

std::string render_locked(state_t& s) {
  bench_doc doc;
  doc.bench = bench_name_locked(s);
  doc.meta = meta_from_environment();
  for (const recorded_table& rt : s.tables) {
    bench_table t;
    t.caption = rt.caption;
    t.columns = rt.columns;
    t.directions = rt.directions;
    for (const auto& cells : rt.rows) {
      bench_row row;
      row.cells = cells;
      for (const std::string& cell : cells) {
        double v = 0;
        row.values.push_back(parse_numeric_cell(cell, &v) ? std::optional<double>(v)
                                                          : std::nullopt);
      }
      t.rows.push_back(std::move(row));
    }
    doc.tables.push_back(std::move(t));
  }
  return render_bench_doc(doc);
}

}  // namespace

bool parse_numeric_cell(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  std::string digits;
  digits.reserve(cell.size());
  for (char c : cell) {
    if (c != ',') digits.push_back(c);
  }
  // strtod would happily parse hex ("0x1f") — our formatters never emit
  // it, so a hex-looking cell is an identifier, not a number.
  std::size_t p = 0;
  if (p < digits.size() && (digits[p] == '-' || digits[p] == '+')) ++p;
  if (p + 1 < digits.size() && digits[p] == '0' && (digits[p + 1] == 'x' || digits[p + 1] == 'X')) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || errno == ERANGE) return false;
  // Reject "nan"/"inf" cells and anything that parsed to a non-finite
  // value: they would render as invalid JSON tokens.
  if (!std::isfinite(v)) return false;
  const std::string suffix(end);
  if (suffix.empty() || suffix == "%" || suffix == "x" || suffix == "ns" || suffix == "us" ||
      suffix == "ms") {
    *out = v;
    return true;
  }
  return false;
}

bool active() { return out_dir() != nullptr; }

void set_bench_name(std::string name) {
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  s.bench_name = std::move(name);
}

void record_table(const std::string& caption, const std::vector<std::string>& columns,
                  const std::vector<metric_dir>& directions,
                  const std::vector<std::vector<std::string>>& rows) {
  if (!active()) return;
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  s.tables.push_back({caption, columns, resolve_metric_dirs(columns, directions), rows});
}

void note_external_output(const std::string& path) {
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  s.external_path = path;
  s.flushed = true;
}

std::string output_path() {
  const char* dir = out_dir();
  if (dir == nullptr) return {};
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  if (!s.external_path.empty()) return s.external_path;
  return std::string(dir) + "/BENCH_" + bench_name_locked(s) + ".json";
}

std::string flush() {
  const char* dir = out_dir();
  if (dir == nullptr) return {};
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  if (s.flushed) {
    // A second flush after note_external_output() that still holds
    // recorded tables means someone printed harness tables AND wrote an
    // external file; say where the tables went instead of dropping them
    // silently.
    if (!s.external_path.empty() && !s.tables.empty()) {
      std::fprintf(stderr,
                   "bench_json: %zu recorded table(s) not written — output is external (%s)\n",
                   s.tables.size(), s.external_path.c_str());
    }
    return {};
  }
  const std::string path = std::string(dir) + "/BENCH_" + bench_name_locked(s) + ".json";
  const std::string body = render_locked(s);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    // Keep the tables and the unflushed state: the caller may fix the
    // destination (create the directory, change MACHLOCK_BENCH_JSON) and
    // flush again — never silently drop results.
    std::fprintf(stderr, "bench_json: cannot write %s: %s (tables retained, flush again)\n",
                 path.c_str(), std::strerror(errno));
    return {};
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != body.size() || !close_ok) {
    std::fprintf(stderr, "bench_json: short write to %s (%zu of %zu bytes)\n", path.c_str(),
                 written, body.size());
    return {};
  }
  s.flushed = true;
  return path;
}

void reset_for_tests() {
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  s.bench_name.clear();
  s.tables.clear();
  s.flushed = false;
  s.external_path.clear();
}

}  // namespace mach::bench_json
