#include "harness/bench_json.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "trace/trace_export.h"

namespace mach::bench_json {
namespace {

struct recorded_table {
  std::string caption;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

struct state_t {
  std::mutex m;
  std::string bench_name;  // set lazily from the binary name
  std::vector<recorded_table> tables;
  bool flushed = false;
  std::string external_path;
};

state_t& state() {
  static state_t* s = new state_t;
  return *s;
}

const char* out_dir() {
  const char* d = std::getenv("MACHLOCK_BENCH_JSON");
  return (d != nullptr && d[0] != '\0') ? d : nullptr;
}

std::string default_bench_name() {
#ifdef __GLIBC__
  const char* base = program_invocation_short_name;
#else
  const char* base = "bench";
#endif
  std::string name = base != nullptr ? base : "bench";
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

std::string bench_name_locked(state_t& s) {
  if (s.bench_name.empty()) s.bench_name = default_bench_name();
  return s.bench_name;
}

// Best-effort numeric parse of a table cell: strips the harness's digit
// grouping and the unit suffixes its formatters produce ("x", "%", "ns",
// "us", "ms"). Returns false for anything else (the JSON carries null).
bool parse_cell(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  std::string digits;
  digits.reserve(cell.size());
  for (char c : cell) {
    if (c != ',') digits.push_back(c);
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || errno == ERANGE) return false;
  const std::string suffix(end);
  if (suffix.empty() || suffix == "%" || suffix == "x" || suffix == "ns" || suffix == "us" ||
      suffix == "ms") {
    *out = v;
    return true;
  }
  return false;
}

void append_string_array(std::string& out, const std::vector<std::string>& items) {
  out += "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"";
    out += json_escape(items[i]);
    out += "\"";
  }
  out += "]";
}

std::string render_locked(state_t& s) {
  std::string out = "{\"bench\":\"";
  out += json_escape(bench_name_locked(s));
  out += "\",\"tables\":[";
  for (std::size_t t = 0; t < s.tables.size(); ++t) {
    const recorded_table& rt = s.tables[t];
    out += t == 0 ? "\n" : ",\n";
    out += "{\"caption\":\"";
    out += json_escape(rt.caption);
    out += "\",\"columns\":";
    append_string_array(out, rt.columns);
    out += ",\"rows\":[";
    for (std::size_t r = 0; r < rt.rows.size(); ++r) {
      if (r != 0) out += ",";
      out += "\n{\"cells\":";
      append_string_array(out, rt.rows[r]);
      out += ",\"values\":[";
      for (std::size_t c = 0; c < rt.rows[r].size(); ++c) {
        if (c != 0) out += ",";
        double v = 0;
        if (parse_cell(rt.rows[r][c], &v)) {
          char buf[64];
          std::snprintf(buf, sizeof buf, "%.17g", v);
          out += buf;
        } else {
          out += "null";
        }
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace

bool active() { return out_dir() != nullptr; }

void set_bench_name(std::string name) {
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  s.bench_name = std::move(name);
}

void record_table(const std::string& caption, const std::vector<std::string>& columns,
                  const std::vector<std::vector<std::string>>& rows) {
  if (!active()) return;
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  s.tables.push_back({caption, columns, rows});
}

void note_external_output(const std::string& path) {
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  s.external_path = path;
  s.flushed = true;
}

std::string output_path() {
  const char* dir = out_dir();
  if (dir == nullptr) return {};
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  if (!s.external_path.empty()) return s.external_path;
  return std::string(dir) + "/BENCH_" + bench_name_locked(s) + ".json";
}

std::string flush() {
  const char* dir = out_dir();
  if (dir == nullptr) return {};
  state_t& s = state();
  std::lock_guard<std::mutex> g(s.m);
  if (s.flushed) return {};
  s.flushed = true;
  const std::string path = std::string(dir) + "/BENCH_" + bench_name_locked(s) + ".json";
  const std::string body = render_locked(s);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "machlock: cannot write bench JSON to %s\n", path.c_str());
    return {};
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return path;
}

}  // namespace mach::bench_json
