// Workload driver: run N kernel threads against a per-thread work function
// for a fixed duration, collecting per-thread operation counts and
// latencies. Shared by the experiment benches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/stats.h"

namespace mach {

struct worker_result {
  std::uint64_t ops = 0;
  latency_histogram latency;
};

struct workload_result {
  std::vector<worker_result> per_thread;
  std::uint64_t wall_nanos = 0;

  std::uint64_t total_ops() const;
  double ops_per_second() const;
  // Merged latency across threads.
  latency_histogram merged_latency() const;
  // Fairness: min/max per-thread ops ratio in [0,1]; 1 = perfectly fair.
  double fairness() const;
};

// Each worker repeatedly calls `body(thread_index, iteration)` until the
// stop flag flips; every call counts as one op. When `timed` is set, each
// op's latency is recorded.
struct workload_spec {
  int threads = 1;
  int duration_ms = 300;
  bool timed = false;
  // Optional per-thread setup/teardown running inside the worker thread
  // (e.g. binding to a virtual CPU).
  std::function<void(int)> setup;
  std::function<void(int)> teardown;
  std::function<void(int, std::uint64_t)> body;
};

workload_result run_workload(const workload_spec& spec);

}  // namespace mach
