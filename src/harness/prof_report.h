// prof_report: offline rendering of kprof sampling profiles.
//
// Consumes the schema-stamped JSON written by kprof::export_file
// ("machlock-kprof-v1") and renders it three ways:
//
//   * folded stacks — one "kprof;<request|background>;<state>;<site> N"
//     line per profile cell, the collapsed format every flamegraph tool
//     (flamegraph.pl, speedscope, inferno) consumes directly;
//   * a top table of sampled lock sites — per-site sample counts split by
//     state plus the sampled wall-time share, sorted by contention weight
//     (spinning + lock-waiting) so the ranking is directly comparable to
//     the event-based lockstat top table;
//   * flight-recorder JSON ("machlock-kprof-flight-v1") — the kmon
//     snapshot ring re-emitted with per-interval delta rates computed for
//     every counter (names ending in "_total"), giving rate-over-time
//     series that end-of-run totals cannot show.
//
// An empty profile (sampler ran, nothing claimed a slot) is valid input
// and renders as empty-but-well-formed output in all three forms.
#pragma once

#include <cstddef>
#include <string>

#include "harness/mini_json.h"
#include "prof/kprof.h"

namespace mach {

// Reconstruct a kprof::profile from a parsed "machlock-kprof-v1" document.
// Returns false and fills *err when the document is not a kprof profile.
bool load_profile(const mini_json::value& doc, kprof::profile* out, std::string* err);

// Read `path`, parse it, and reconstruct the profile. Rejects missing,
// empty, and truncated files with a one-line *err naming the path.
bool load_profile_file(const std::string& path, kprof::profile* out, std::string* err);

// Collapsed-stack rendering (see header comment). Deterministic: cells in
// the profile's sorted order.
std::string render_folded(const kprof::profile& p);

// Human-readable site ranking; `top` bounds the row count (0 = all).
std::string render_top(const kprof::profile& p, std::size_t top = 10);

// Flight-recorder re-export with computed counter rates.
std::string render_flight_json(const kprof::profile& p);

}  // namespace mach
