// A minimal recursive-descent JSON parser shared by the bench tooling
// (bench_all / bench_diff read BENCH_*.json trees back) and by the tests
// that validate our exporters against the grammar instead of by substring
// search. Formerly duplicated in test_trace.cpp and test_metrics.cpp;
// promoted here when benchguard needed it in the library proper.
//
// Objects preserve insertion order (the Prometheus/JSON exporter tests
// assert name ordering), and `find()` gives map-style lookup. The parser
// accepts exactly the JSON this repo's exporters emit: BMP-only \u
// escapes, doubles for all numbers.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace mach::mini_json {

struct value {
  enum class kind { null, boolean, number, string, array, object } k = kind::null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<value> arr;
  std::vector<std::pair<std::string, value>> obj;  // insertion-ordered

  // Object member lookup; nullptr when absent or not an object.
  const value* find(const std::string& key) const;

  bool is(kind kk) const { return k == kk; }
};

class parser {
 public:
  // Copies the text: callers routinely pass temporaries (e.g. oss.str()).
  explicit parser(std::string text) : s_(std::move(text)) {}

  // Parses the full text as one JSON value. Returns false (and records
  // error()) on malformed input or trailing characters.
  bool parse(value& out);

  const std::string& error() const { return error_; }

 private:
  bool fail(const char* msg);
  void skip_ws();
  bool consume(char c);
  bool literal(const char* word);
  bool string_body(std::string& out);
  bool parse_value(value& out);

  std::string s_;
  std::size_t pos_ = 0;
  std::string error_;
};

// Convenience wrapper: parse `text`, returning false and filling *err on
// failure.
bool parse(const std::string& text, value* out, std::string* err);

// Read a whole file and parse it. *err names the file on failure.
bool parse_file(const std::string& path, value* out, std::string* err);

}  // namespace mach::mini_json
