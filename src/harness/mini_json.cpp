#include "harness/mini_json.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mach::mini_json {

const value* value::find(const std::string& key) const {
  for (const auto& [k2, v] : obj) {
    if (k2 == key) return &v;
  }
  return nullptr;
}

bool parser::fail(const char* msg) {
  if (error_.empty()) error_ = std::string(msg) + " at offset " + std::to_string(pos_);
  return false;
}

void parser::skip_ws() {
  while (pos_ < s_.size() &&
         (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
    ++pos_;
  }
}

bool parser::consume(char c) {
  skip_ws();
  if (pos_ >= s_.size() || s_[pos_] != c) return false;
  ++pos_;
  return true;
}

bool parser::literal(const char* word) {
  for (const char* p = word; *p != '\0'; ++p) {
    if (pos_ >= s_.size() || s_[pos_] != *p) return fail("bad literal");
    ++pos_;
  }
  return true;
}

bool parser::string_body(std::string& out) {
  if (!consume('"')) return fail("expected string");
  while (pos_ < s_.size()) {
    char c = s_[pos_++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos_ >= s_.size()) return fail("dangling escape");
    char e = s_[pos_++];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (pos_ + 4 > s_.size()) return fail("short \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = s_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return fail("bad hex digit");
        }
        // BMP-only, fine for this repo's exporters (< 0x20 control chars).
        out += static_cast<char>(code);
        break;
      }
      default: return fail("unknown escape");
    }
  }
  return fail("unterminated string");
}

bool parser::parse_value(value& out) {
  skip_ws();
  if (pos_ >= s_.size()) return fail("unexpected end");
  char c = s_[pos_];
  if (c == '{') {
    ++pos_;
    out.k = value::kind::object;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      skip_ws();
      if (!string_body(key)) return false;
      if (!consume(':')) return fail("expected ':'");
      value v;
      if (!parse_value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }
  if (c == '[') {
    ++pos_;
    out.k = value::kind::array;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      value v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }
  if (c == '"') {
    out.k = value::kind::string;
    return string_body(out.str);
  }
  if (c == 't') {
    out.k = value::kind::boolean;
    out.b = true;
    return literal("true");
  }
  if (c == 'f') {
    out.k = value::kind::boolean;
    out.b = false;
    return literal("false");
  }
  if (c == 'n') {
    out.k = value::kind::null;
    return literal("null");
  }
  // Number.
  std::size_t start = pos_;
  if (c == '-') ++pos_;
  while (pos_ < s_.size() &&
         ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' || s_[pos_] == 'e' ||
          s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
    ++pos_;
  }
  if (pos_ == start) return fail("unexpected character");
  out.k = value::kind::number;
  out.num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
  return true;
}

bool parser::parse(value& out) {
  if (!parse_value(out)) return false;
  skip_ws();
  if (pos_ != s_.size()) return fail("trailing characters");
  return true;
}

bool parse(const std::string& text, value* out, std::string* err) {
  parser p(text);
  if (p.parse(*out)) return true;
  if (err != nullptr) *err = p.error();
  return false;
}

bool parse_file(const std::string& path, value* out, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (err != nullptr) *err = path + ": cannot open";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string parse_err;
  if (parse(ss.str(), out, &parse_err)) return true;
  if (err != nullptr) *err = path + ": " + parse_err;
  return false;
}

}  // namespace mach::mini_json
