#include "harness/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <tuple>

#include "trace/trace_export.h"

namespace mach {

namespace {

namespace fs = std::filesystem;

// Sentinel relative delta for "appeared from zero" — large enough to gate,
// finite so it renders as a valid JSON number.
constexpr double kFromZeroDelta = 1e9;

const bench_table* find_table(const bench_doc& d, const std::string& caption) {
  for (const bench_table& t : d.tables) {
    if (t.caption == caption) return &t;
  }
  return nullptr;
}

int find_row(const bench_table& t, const std::string& key) {
  for (std::size_t r = 0; r < t.rows.size(); ++r) {
    if (row_key(t, r) == key) return static_cast<int>(r);
  }
  return -1;
}

int find_column(const bench_table& t, const std::string& header) {
  for (std::size_t c = 0; c < t.columns.size(); ++c) {
    if (t.columns[c] == header) return static_cast<int>(c);
  }
  return -1;
}

std::optional<double> cell_cov(const bench_row& row, std::size_t c) {
  return c < row.cov.size() ? row.cov[c] : std::nullopt;
}

std::string pct(double v) {
  char buf[64];
  if (std::fabs(v) >= 1e6) return v > 0 ? "+inf%" : "-inf%";
  std::snprintf(buf, sizeof buf, "%+.1f%%", v * 100.0);
  return buf;
}

std::string short_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void append_delta_array(std::string& out, const std::vector<cell_delta>& deltas) {
  out += "[";
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const cell_delta& d = deltas[i];
    if (i != 0) out += ",";
    out += "\n  {\"bench\":\"" + json_escape(d.bench) + "\"";
    out += ",\"table\":\"" + json_escape(d.caption) + "\"";
    out += ",\"row\":\"" + json_escape(d.row) + "\"";
    out += ",\"column\":\"" + json_escape(d.column) + "\"";
    out += ",\"direction\":\"" + std::string(to_string(d.dir)) + "\"";
    out += ",\"base\":" + short_num(d.base);
    out += ",\"fresh\":" + short_num(d.fresh);
    out += ",\"rel_delta\":" + short_num(d.rel_delta);
    out += ",\"threshold\":" + short_num(d.threshold);
    out += ",\"kind\":\"" + std::string(to_string(d.kind)) + "\"}";
  }
  out += "]";
}

void append_name_array(std::string& out, const std::vector<std::string>& names) {
  out += "[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(names[i]) + "\"";
  }
  out += "]";
}

// Row keys join info cells with " | ", and captions may carry "|" too —
// escape them or they become extra markdown columns.
std::string md_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '|') out += '\\';
    out += c;
  }
  return out;
}

void md_delta_table(std::string& out, const std::vector<cell_delta>& deltas) {
  out += "| bench | table | row | metric | dir | base | fresh | delta | threshold |\n";
  out += "|---|---|---|---|---|---|---|---|---|\n";
  for (const cell_delta& d : deltas) {
    out += "| " + md_escape(d.bench) + " | " + md_escape(d.caption) + " | " + md_escape(d.row) +
           " | " + md_escape(d.column) + " | " + to_string(d.dir) + " | " + short_num(d.base) +
           " | " + short_num(d.fresh) + " | " + pct(d.rel_delta) + " | " + pct(d.threshold) +
           " |\n";
  }
}

void md_name_list(std::string& out, const char* title, const std::vector<std::string>& names) {
  if (names.empty()) return;
  out += "\n**";
  out += title;
  out += ":**\n\n";
  for (const std::string& n : names) out += "- `" + n + "`\n";
}

}  // namespace

const char* to_string(delta_kind k) {
  switch (k) {
    case delta_kind::improvement: return "improvement";
    case delta_kind::regression: return "regression";
    case delta_kind::within_noise: return "within_noise";
  }
  return "within_noise";
}

void diff_docs(const bench_doc& base, const bench_doc& fresh, const diff_options& opts,
               diff_result* out) {
  // Tables present only on one side.
  for (const bench_table& t : base.tables) {
    if (find_table(fresh, t.caption) == nullptr) {
      out->removed_tables.push_back(base.bench + ": " + t.caption);
    }
  }
  for (const bench_table& t : fresh.tables) {
    if (find_table(base, t.caption) == nullptr) {
      out->added_tables.push_back(fresh.bench + ": " + t.caption);
    }
  }
  for (const bench_table& bt : base.tables) {
    const bench_table* ft = find_table(fresh, bt.caption);
    if (ft == nullptr) continue;
    // Rows present only on one side.
    for (std::size_t r = 0; r < bt.rows.size(); ++r) {
      if (find_row(*ft, row_key(bt, r)) < 0) {
        out->removed_rows.push_back(base.bench + ": " + bt.caption + ": " + row_key(bt, r));
      }
    }
    for (std::size_t r = 0; r < ft->rows.size(); ++r) {
      if (find_row(bt, row_key(*ft, r)) < 0) {
        out->added_rows.push_back(fresh.bench + ": " + bt.caption + ": " + row_key(*ft, r));
      }
    }
    for (std::size_t br = 0; br < bt.rows.size(); ++br) {
      const std::string key = row_key(bt, br);
      const int fr = find_row(*ft, key);
      if (fr < 0) continue;
      const bench_row& brow = bt.rows[br];
      const bench_row& frow = ft->rows[static_cast<std::size_t>(fr)];
      for (std::size_t bc = 0; bc < bt.columns.size(); ++bc) {
        // The baseline's direction annotation governs the comparison: a
        // PR that flips a column's direction refreshes the baseline too.
        const metric_dir dir = bc < bt.directions.size() ? bt.directions[bc] : metric_dir::stat;
        if (dir != metric_dir::higher && dir != metric_dir::lower) continue;
        const int fc = find_column(*ft, bt.columns[bc]);
        if (fc < 0) continue;
        if (bc >= brow.values.size() || static_cast<std::size_t>(fc) >= frow.values.size()) {
          continue;
        }
        const auto& bv = brow.values[bc];
        const auto& fv = frow.values[static_cast<std::size_t>(fc)];
        if (!bv.has_value() || !fv.has_value()) continue;
        ++out->gated_cells;

        cell_delta d;
        d.bench = base.bench;
        d.caption = bt.caption;
        d.row = key;
        d.column = bt.columns[bc];
        d.dir = dir;
        d.base = *bv;
        d.fresh = *fv;
        if (*bv == 0.0) {
          d.rel_delta = *fv == 0.0 ? 0.0 : std::copysign(kFromZeroDelta, *fv);
        } else {
          d.rel_delta = (*fv - *bv) / std::fabs(*bv);
        }
        const double cov_b = cell_cov(brow, bc).value_or(0.0);
        const double cov_f = cell_cov(frow, static_cast<std::size_t>(fc)).value_or(0.0);
        d.threshold = std::max(opts.min_rel_delta, opts.cov_mult * std::max(cov_b, cov_f));
        if (std::fabs(d.rel_delta) <= d.threshold) {
          d.kind = delta_kind::within_noise;
          ++out->within_noise;
        } else {
          const bool got_better = (dir == metric_dir::higher) == (d.rel_delta > 0.0);
          d.kind = got_better ? delta_kind::improvement : delta_kind::regression;
          (got_better ? out->improvements : out->regressions).push_back(d);
        }
      }
    }
  }
  auto by_magnitude = [](const cell_delta& a, const cell_delta& b) {
    if (std::fabs(a.rel_delta) != std::fabs(b.rel_delta)) {
      return std::fabs(a.rel_delta) > std::fabs(b.rel_delta);
    }
    return std::tie(a.bench, a.caption, a.row, a.column) <
           std::tie(b.bench, b.caption, b.row, b.column);
  };
  std::sort(out->regressions.begin(), out->regressions.end(), by_magnitude);
  std::sort(out->improvements.begin(), out->improvements.end(), by_magnitude);
}

bool diff_trees(const std::string& base_dir, const std::string& fresh_dir,
                const diff_options& opts, diff_result* out, std::string* err) {
  auto list_tree = [err](const std::string& dir,
                         std::map<std::string, std::string>* files) -> bool {
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
      if (err != nullptr) *err = dir + ": " + ec.message();
      return false;
    }
    for (const auto& entry : it) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
          name.compare(name.size() - 5, 5, ".json") == 0) {
        (*files)[name] = entry.path().string();
      }
    }
    return true;
  };
  std::map<std::string, std::string> base_files, fresh_files;
  if (!list_tree(base_dir, &base_files) || !list_tree(fresh_dir, &fresh_files)) return false;
  // A tree with nothing to compare is a broken invocation (wrong path, run
  // that produced no output), not a clean "OK — 0 cells" verdict.
  if (base_files.empty()) {
    if (err != nullptr) *err = base_dir + ": no BENCH_*.json files";
    return false;
  }
  if (fresh_files.empty()) {
    if (err != nullptr) *err = fresh_dir + ": no BENCH_*.json files";
    return false;
  }
  for (const auto& [name, path] : base_files) {
    if (fresh_files.count(name) == 0) {
      // Still parse it: a corrupt baseline should fail loudly, not read as
      // "bench removed".
      bench_doc removed;
      if (!parse_bench_doc_file(path, &removed, err)) return false;
      out->removed_benches.push_back(name);
      continue;
    }
    bench_doc base, fresh;
    if (!parse_bench_doc_file(path, &base, err)) return false;
    if (!parse_bench_doc_file(fresh_files.at(name), &fresh, err)) return false;
    diff_docs(base, fresh, opts, out);
  }
  for (const auto& [name, path] : fresh_files) {
    if (base_files.count(name) == 0) {
      // Same rule for fresh-only files: a truncated or empty BENCH file
      // must not be silently reported as an added bench.
      bench_doc added;
      if (!parse_bench_doc_file(path, &added, err)) return false;
      out->added_benches.push_back(name);
    }
  }
  return true;
}

std::string verdict_json(const diff_result& r, const diff_options& opts) {
  std::string out = "{\"status\":\"";
  out += r.ok() ? "ok" : "regression";
  out += "\",\"options\":{\"min_rel_delta\":" + short_num(opts.min_rel_delta) +
         ",\"cov_mult\":" + short_num(opts.cov_mult) + "}";
  out += ",\"counts\":{\"gated_cells\":" + std::to_string(r.gated_cells);
  out += ",\"regressions\":" + std::to_string(r.regressions.size());
  out += ",\"improvements\":" + std::to_string(r.improvements.size());
  out += ",\"within_noise\":" + std::to_string(r.within_noise) + "}";
  out += ",\"regressions\":";
  append_delta_array(out, r.regressions);
  out += ",\"improvements\":";
  append_delta_array(out, r.improvements);
  out += ",\"added_benches\":";
  append_name_array(out, r.added_benches);
  out += ",\"removed_benches\":";
  append_name_array(out, r.removed_benches);
  out += ",\"added_tables\":";
  append_name_array(out, r.added_tables);
  out += ",\"removed_tables\":";
  append_name_array(out, r.removed_tables);
  out += ",\"added_rows\":";
  append_name_array(out, r.added_rows);
  out += ",\"removed_rows\":";
  append_name_array(out, r.removed_rows);
  out += "}\n";
  return out;
}

std::string markdown_report(const diff_result& r, const diff_options& opts,
                            const std::string& base_label, const std::string& fresh_label) {
  std::string out = "# bench_diff: " + base_label + " → " + fresh_label + "\n\n";
  out += r.ok() ? "**Verdict: OK**" : "**Verdict: REGRESSION**";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                " — %zu gated cells: %zu regression(s), %zu improvement(s), %zu within noise.\n",
                r.gated_cells, r.regressions.size(), r.improvements.size(), r.within_noise);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "\nNoise model: |delta| gates only beyond max(%.0f%%, %.1f x measured CoV) per "
                "cell.\n",
                opts.min_rel_delta * 100.0, opts.cov_mult);
  out += buf;
  if (!r.regressions.empty()) {
    out += "\n## Regressions\n\n";
    md_delta_table(out, r.regressions);
  }
  if (!r.improvements.empty()) {
    out += "\n## Improvements\n\n";
    md_delta_table(out, r.improvements);
  }
  if (!r.added_benches.empty() || !r.removed_benches.empty() || !r.added_tables.empty() ||
      !r.removed_tables.empty() || !r.added_rows.empty() || !r.removed_rows.empty()) {
    out += "\n## Structural changes (not gated)\n";
    md_name_list(out, "Benches added", r.added_benches);
    md_name_list(out, "Benches removed", r.removed_benches);
    md_name_list(out, "Tables added", r.added_tables);
    md_name_list(out, "Tables removed", r.removed_tables);
    md_name_list(out, "Rows added", r.added_rows);
    md_name_list(out, "Rows removed", r.removed_rows);
  }
  return out;
}

}  // namespace mach
