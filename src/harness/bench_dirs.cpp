#include "harness/bench_dirs.h"

#include <algorithm>
#include <cctype>

namespace mach {

namespace {

std::string lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() && s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

const char* to_string(metric_dir d) {
  switch (d) {
    case metric_dir::higher: return "higher";
    case metric_dir::lower: return "lower";
    case metric_dir::stat: return "stat";
    case metric_dir::info: return "info";
  }
  return "stat";
}

metric_dir metric_dir_from_string(const std::string& s) {
  if (s == "higher") return metric_dir::higher;
  if (s == "lower") return metric_dir::lower;
  if (s == "info") return metric_dir::info;
  return metric_dir::stat;
}

metric_dir infer_metric_dir(const std::string& column_header) {
  const std::string h = lowered(column_header);
  // Throughput: every rate column in the repo ends "/s" ("ops/s",
  // "acq/s", "translations/s", ...). Per-acquisition diagnostic rates
  // ("failedRMW/acq") deliberately do NOT match.
  if (ends_with(h, "/s") || contains(h, "throughput") || contains(h, "fairness")) {
    return metric_dir::higher;
  }
  // Latency / waste: a named time unit or percentile means lower-is-better.
  if (contains(h, "(us)") || contains(h, "(ms)") || contains(h, "(ns)") || contains(h, "p99") ||
      contains(h, "p50") || contains(h, "latency") || contains(h, "lost wakeup")) {
    return metric_dir::lower;
  }
  // Config axes: the headers the repo's benches use for the row-identity
  // columns. These become the row key.
  for (const char* label : {"policy", "variant", "mode", "lock", "discipline", "granularity",
                            "resolution", "implementation", "protocol", "locking", "priority",
                            "threads", "readers", "clients", "participants", "translators",
                            "observation", "metric", "name", "rounds", "block", "special logic",
                            "in-flight faults", "enter threads"}) {
    if (h == label) return metric_dir::info;
  }
  // Everything else is a measurement we will not gate on until a bench
  // annotates it explicitly.
  return metric_dir::stat;
}

std::vector<metric_dir> resolve_metric_dirs(const std::vector<std::string>& columns,
                                            const std::vector<metric_dir>& annotated) {
  std::vector<metric_dir> out(columns.size(), metric_dir::info);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out[i] = i < annotated.size() ? annotated[i] : infer_metric_dir(columns[i]);
  }
  return out;
}

}  // namespace mach
