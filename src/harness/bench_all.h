// bench_all: run the whole bench suite and produce a baseline tree.
//
// Discovers every bench_* binary in a build's bench directory, runs each
// one MACHLOCK_BENCH_REPS times (each rep writes its BENCH_<name>.json
// into a private scratch dir via MACHLOCK_BENCH_JSON), normalizes e13's
// google-benchmark output into the common table model, merges the reps
// per bench (median values, per-cell coefficient of variation — see
// bench_model.h), and writes the merged BENCH_*.json tree into the output
// directory. That tree is what gets committed under bench/baselines/ and
// what the CI perf gate diffs against.
//
// Child processes inherit the parent environment plus MACHLOCK_BENCH_JSON
// (per rep) and, when configured, MACHLOCK_BENCH_MS and MACHLOCK_GIT_SHA
// (resolved from `git rev-parse` when not already set), so every file in
// the tree carries the same meta stamp.
#pragma once

#include <string>
#include <vector>

namespace mach {

struct bench_all_options {
  std::string bench_dir;  // directory holding the bench binaries
  std::string out_dir;    // destination for the merged BENCH_*.json tree
  int reps = 1;           // repetitions per bench (median-of-N)
  int bench_ms = 0;       // forwarded as MACHLOCK_BENCH_MS when > 0
  std::string only;       // substring filter on binary names ("" = all)
  bool verbose = true;    // per-bench progress + CoV summary on stderr
};

struct bench_all_report {
  std::vector<std::string> written;  // merged files, in run order
  std::vector<std::string> errors;   // one line per failed bench/rep
  int benches_run = 0;
  int benches_failed = 0;
};

// Returns false on a setup error (missing bench dir, unwritable output
// dir). Per-bench failures (non-zero exit, missing/unparseable JSON) are
// recorded in report->errors and counted in benches_failed instead.
bool run_bench_all(const bench_all_options& opts, bench_all_report* report, std::string* err);

// Reads MACHLOCK_BENCH_REPS (default `def`), clamped to [1, 99].
int bench_reps_from_env(int def = 1);

}  // namespace mach
