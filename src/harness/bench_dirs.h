// Metric-direction schema for bench tables.
//
// Every column of every printed bench table has a direction: does a larger
// number mean the system got better (throughput), worse (latency), or is
// the cell descriptive (a config label, a thread count, a diagnostic
// counter too noisy to gate on)? bench_diff needs this to turn a cell
// delta into a verdict — without it a +40% change in "acq/s" and a +40%
// change in "p99 ns" would read the same.
//
// Benches annotate explicitly per table via table::dirs(); for columns
// left unannotated this registry infers a direction from the header name
// (the repo's headers follow strong conventions: throughput ends "/s",
// latencies name a unit or a percentile). Explicit annotation always wins;
// the inference is the safety net that keeps a forgotten annotation from
// silently exempting a column from the perf gate.
#pragma once

#include <string>
#include <vector>

namespace mach {

enum class metric_dir {
  info,    // row identity: config labels/axes (policy, threads). Form the
           // row key that bench_all's rep-merge and bench_diff's row
           // matching agree on; never gated.
  stat,    // a measurement, but descriptive only: never gated and never
           // part of the row key (noisy diagnostics, gb iterations)
  higher,  // higher is better (throughput, fairness) — gated
  lower,   // lower is better (latency, stalls, wasted work) — gated
};

const char* to_string(metric_dir d);

// Parse "info" / "higher" / "lower"; returns info for anything else.
metric_dir metric_dir_from_string(const std::string& s);

// Infer a direction from a column header.
metric_dir infer_metric_dir(const std::string& column_header);

// Resolve a table's direction vector: take `annotated` where provided
// (it may be shorter than `columns` or empty), infer the rest.
std::vector<metric_dir> resolve_metric_dirs(const std::vector<std::string>& columns,
                                            const std::vector<metric_dir>& annotated);

}  // namespace mach
