// span_report: offline critical-path analysis of kspan-instrumented traces.
//
// Consumes a Chrome trace JSON file written by export_chrome_json and
// reconstructs, for every request (root span) it finds, where the wall time
// went:
//
//     wall = run + lock_wait + queue_wait + blocked_other
//
// * lock_wait    — lock slow-path spans (lock-wait / read-wait / write-wait /
//                  upgrade-wait) stamped with the request's trace id, on any
//                  thread the request touched;
// * queue_wait   — message time spent sitting in port queues, measured at
//                  dequeue (span-recv arg2);
// * blocked_other— thread-blocked intervals attributed to the request, with
//                  the portion overlapping a lock wait on the same thread
//                  subtracted (a complex-lock wait *is* a block; count it
//                  once, as lock wait);
// * run          — the remainder: time the request was actually executing.
//
// The report also ranks locks by total blocked-request time — the paper's
// contention question ("which lock is the bottleneck?") asked per-request
// rather than system-wide — naming each lock's most frequent holder via the
// span-bind (thread token -> tid) records and the trace's thread names.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/mini_json.h"

namespace mach {

struct span_report {
  // Per request-kind aggregate of the latency decomposition, nanoseconds.
  struct kind_row {
    std::string kind;
    std::size_t requests = 0;
    std::uint64_t wall_nanos = 0;
    std::uint64_t run_nanos = 0;
    std::uint64_t lock_wait_nanos = 0;
    std::uint64_t queue_wait_nanos = 0;
    std::uint64_t blocked_nanos = 0;  // blocked_other
  };

  // Per lock: total time requests spent waiting on it.
  struct lock_row {
    std::string lock;
    std::size_t waits = 0;
    std::uint64_t wait_nanos = 0;
    std::string top_holder;  // most frequent holder thread name, "" unknown
  };

  std::size_t requests = 0;  // root spans found
  std::size_t spans = 0;     // all spans (roots + adopted legs)
  std::size_t flow_events = 0;
  double coverage = 0.0;  // attributed fraction of total request wall time
  std::vector<kind_row> kinds;  // sorted by wall_nanos, descending
  std::vector<lock_row> locks;  // sorted by wait_nanos, descending
};

// Build a report from a parsed Chrome trace document. Returns false and
// fills *err when the document is not a Chrome trace. A trace with no
// requests is not an error; check report.requests.
bool build_span_report(const mini_json::value& doc, span_report* out, std::string* err);

// Read `path`, parse it, and build the report.
bool build_span_report_file(const std::string& path, span_report* out, std::string* err);

// Human-readable rendering (aligned tables); `top_locks` bounds the lock
// ranking (0 = all).
std::string render_span_report(const span_report& r, std::size_t top_locks = 10);

}  // namespace mach
