#include "harness/bench_all.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "harness/bench_model.h"

namespace mach {

namespace {

namespace fs = std::filesystem;

// Resolve the git SHA to stamp into the baselines: the environment wins
// (CI passes the exact commit), else ask git, else "unknown".
std::string resolve_git_sha() {
  if (const char* sha = std::getenv("MACHLOCK_GIT_SHA"); sha != nullptr && sha[0] != '\0') {
    return sha;
  }
  std::FILE* p = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (p == nullptr) return "unknown";
  char buf[64] = {0};
  const bool got = std::fgets(buf, sizeof buf, p) != nullptr;
  ::pclose(p);
  if (!got) return "unknown";
  std::string sha = buf;
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

// Run one bench binary with MACHLOCK_BENCH_JSON=json_dir, stdout to
// /dev/null (the tables also go to the JSON; stderr stays visible).
// Returns the child's exit status, or -1 on spawn failure.
int run_bench_child(const std::string& binary, const std::string& json_dir, int bench_ms,
                    const std::string& git_sha) {
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::setenv("MACHLOCK_BENCH_JSON", json_dir.c_str(), 1);
    ::setenv("MACHLOCK_GIT_SHA", git_sha.c_str(), 1);
    if (bench_ms > 0) {
      ::setenv("MACHLOCK_BENCH_MS", std::to_string(bench_ms).c_str(), 1);
    }
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    ::execl(binary.c_str(), binary.c_str(), static_cast<char*>(nullptr));
    std::fprintf(stderr, "bench_all: exec %s: %s\n", binary.c_str(), std::strerror(errno));
    ::_exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

// The single BENCH_*.json a rep wrote, or "" when absent/ambiguous.
std::string find_rep_output(const std::string& dir) {
  std::string found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0) continue;
    if (!found.empty()) return {};
    found = entry.path().string();
  }
  return ec ? std::string{} : found;
}

// Mean CoV across gated cells, for the per-bench progress line.
double mean_gated_cov(const bench_doc& doc) {
  double sum = 0;
  std::size_t n = 0;
  for (const bench_table& t : doc.tables) {
    for (const bench_row& r : t.rows) {
      for (std::size_t c = 0; c < t.directions.size() && c < r.cov.size(); ++c) {
        if (t.directions[c] != metric_dir::higher && t.directions[c] != metric_dir::lower) {
          continue;
        }
        if (r.cov[c].has_value()) {
          sum += *r.cov[c];
          ++n;
        }
      }
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int bench_reps_from_env(int def) {
  int reps = def;
  if (const char* env = std::getenv("MACHLOCK_BENCH_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) reps = v;
  }
  return std::clamp(reps, 1, 99);
}

bool run_bench_all(const bench_all_options& opts, bench_all_report* report, std::string* err) {
  std::error_code ec;
  std::vector<std::string> binaries;
  for (const auto& entry : fs::directory_iterator(opts.bench_dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("bench_", 0) != 0) continue;
    if (!opts.only.empty() && name.find(opts.only) == std::string::npos) continue;
    if (::access(entry.path().c_str(), X_OK) != 0) continue;
    binaries.push_back(entry.path().string());
  }
  if (ec) {
    if (err != nullptr) *err = opts.bench_dir + ": " + ec.message();
    return false;
  }
  if (binaries.empty()) {
    if (err != nullptr) *err = opts.bench_dir + ": no bench_* binaries found";
    return false;
  }
  std::sort(binaries.begin(), binaries.end());

  fs::create_directories(opts.out_dir, ec);
  if (ec) {
    if (err != nullptr) *err = opts.out_dir + ": " + ec.message();
    return false;
  }
  const std::string scratch = opts.out_dir + "/.reps";
  const std::string git_sha = resolve_git_sha();
  const int reps = std::clamp(opts.reps, 1, 99);

  for (const std::string& binary : binaries) {
    const std::string name = fs::path(binary).filename().string();
    ++report->benches_run;
    std::vector<bench_doc> docs;
    std::string bench_error;
    for (int rep = 0; rep < reps && bench_error.empty(); ++rep) {
      const std::string rep_dir = scratch + "/" + name + "/r" + std::to_string(rep);
      fs::create_directories(rep_dir, ec);
      if (ec) {
        bench_error = rep_dir + ": " + ec.message();
        break;
      }
      const int status = run_bench_child(binary, rep_dir, opts.bench_ms, git_sha);
      if (status != 0) {
        bench_error = name + " rep " + std::to_string(rep) + ": exit status " +
                      std::to_string(status);
        break;
      }
      const std::string json = find_rep_output(rep_dir);
      if (json.empty()) {
        bench_error = name + " rep " + std::to_string(rep) + ": wrote no BENCH_*.json";
        break;
      }
      bench_doc doc;
      std::string parse_err;
      if (!parse_bench_doc_file(json, &doc, &parse_err)) {
        bench_error = parse_err;
        break;
      }
      docs.push_back(std::move(doc));
    }
    if (bench_error.empty()) {
      bench_doc merged;
      if (!merge_reps(docs, &merged, &bench_error)) {
        // fallthrough to the error path below
      } else {
        // google-benchmark docs (e13) carry no env stamp; the orchestrator
        // knows the commit regardless of who wrote the per-rep JSON.
        if (merged.meta.git_sha.empty() || merged.meta.git_sha == "unknown") {
          merged.meta.git_sha = git_sha;
        }
        const std::string out_path = opts.out_dir + "/BENCH_" + merged.bench + ".json";
        const std::string body = render_bench_doc(merged);
        std::FILE* f = std::fopen(out_path.c_str(), "w");
        if (f == nullptr) {
          bench_error = out_path + ": " + std::strerror(errno);
        } else {
          const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
          const bool ok = std::fclose(f) == 0 && n == body.size();
          if (!ok) {
            bench_error = out_path + ": short write";
          } else {
            report->written.push_back(out_path);
            if (opts.verbose) {
              std::fprintf(stderr, "bench_all: %s — %d rep(s), mean gated CoV %.1f%%\n",
                           name.c_str(), reps, 100.0 * mean_gated_cov(merged));
            }
          }
        }
      }
    }
    if (!bench_error.empty()) {
      ++report->benches_failed;
      report->errors.push_back(bench_error);
      std::fprintf(stderr, "bench_all: FAILED %s: %s\n", name.c_str(), bench_error.c_str());
    }
  }
  fs::remove_all(scratch, ec);  // best-effort scratch cleanup
  return true;
}

}  // namespace mach
