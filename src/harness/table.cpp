#include "harness/table.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "harness/bench_json.h"

namespace mach {

table::table(std::string caption) : caption_(std::move(caption)) {}

table& table::columns(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

table& table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

table& table::dirs(std::vector<metric_dir> directions) {
  dirs_ = std::move(directions);
  return *this;
}

std::string table::num(std::uint64_t v) {
  // Group digits for readability: 1234567 → "1,234,567".
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string table::ratio(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx", v);
  return buf;
}

void table::print() const {
  bench_json::record_table(caption_, headers_, dirs_, rows_);
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
      if (r[i].size() > widths[i]) widths[i] = r[i].size();
    }
  }
  std::printf("\n== %s ==\n", caption_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf(" ");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      std::printf(" %-*s", static_cast<int>(widths[i]), c.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    rule += std::string(widths[i] + 1, '-');
  }
  std::printf("  %s\n", rule.c_str());
  for (const auto& r : rows_) print_row(r);
  std::fflush(stdout);
}

int bench_duration_ms(int def_ms) {
  if (const char* env = std::getenv("MACHLOCK_BENCH_MS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return def_ms;
}

}  // namespace mach
