// The bench-document model behind benchguard.
//
// One BENCH_<name>.json is one `bench_doc`: a meta stamp (git SHA, build
// type, hw_concurrency, repetitions, schema version) plus the printed
// tables — caption, column headers, per-column metric directions, string
// cells, parsed numeric values, and (after a multi-rep bench_all run) the
// per-cell coefficient of variation that bench_diff keys its noise
// thresholds on.
//
// Three producers converge on this model:
//   * bench_json.cpp renders a live bench process's tables through it,
//   * bench_all merges N repetition docs into one (median values, CoV),
//   * normalize_google_benchmark() folds e13's google-benchmark JSON
//     (schema "context"/"benchmarks") into the same table shape so the
//     diff never special-cases it.
//
// parse_bench_doc() reads all three on-disk schemas: v2 (this model),
// v1 (PR 2's meta-less tables, directions inferred), and raw
// google-benchmark output.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/bench_dirs.h"
#include "harness/mini_json.h"

namespace mach {

inline constexpr int kBenchSchemaVersion = 2;

struct bench_row {
  std::vector<std::string> cells;
  std::vector<std::optional<double>> values;  // parallel to cells; nullopt = non-numeric
  std::vector<std::optional<double>> cov;     // coefficient of variation; empty until merged
};

struct bench_table {
  std::string caption;
  std::vector<std::string> columns;
  std::vector<metric_dir> directions;  // parallel to columns
  std::vector<bench_row> rows;
};

struct bench_meta {
  int schema = kBenchSchemaVersion;
  std::string git_sha = "unknown";
  std::string build_type = "unknown";
  std::string source = "harness";  // or "google-benchmark" after normalization
  unsigned hw_concurrency = 0;
  int reps = 1;
  int bench_ms = 0;  // MACHLOCK_BENCH_MS if set, else 0 = per-bench default
};

struct bench_doc {
  std::string bench;  // "e1_spin_policies"
  bench_meta meta;
  std::vector<bench_table> tables;
};

// Fill a meta stamp from the process environment: MACHLOCK_GIT_SHA,
// MACHLOCK_BENCH_MS, the compile-time build type, hw_concurrency.
bench_meta meta_from_environment();

// The row key bench_all (merging reps) and bench_diff (matching rows)
// agree on: the info-direction cells joined with " | ", or the row index
// when a table has no info columns.
std::string row_key(const bench_table& t, std::size_t row_index);

// Serialize to the on-disk v2 JSON (stable member order, trailing
// newline). Cov arrays are emitted only when any cell has one.
std::string render_bench_doc(const bench_doc& doc);

// Parse any of the three supported schemas (v2, v1, google-benchmark).
// On v1 input, directions are inferred from the headers; on
// google-benchmark input the doc is normalized via
// normalize_google_benchmark(). Returns false and fills *err on
// malformed input.
bool parse_bench_doc(const std::string& json_text, const std::string& fallback_bench_name,
                     bench_doc* out, std::string* err);

// parse_bench_doc() over a file's contents; *err names the file.
bool parse_bench_doc_file(const std::string& path, bench_doc* out, std::string* err);

// Fold google-benchmark's JSON ({"context":..., "benchmarks":[...]}) into
// a one-table bench_doc: columns name | real_time (ns) | cpu_time (ns) |
// iterations, times converted to ns, directions info/lower/lower/info.
bool normalize_google_benchmark(const mini_json::value& gb, const std::string& bench_name,
                                bench_doc* out, std::string* err);

// Merge N repetition docs of the same bench into one: per-cell median of
// the numeric values (cells keep the median rep's string), per-cell
// coefficient of variation (stddev/mean, 0 when mean == 0). Tables and
// rows present in only some reps are kept (median over the reps that have
// them). meta.reps is set to docs.size(). Returns false on an empty input
// or mismatched bench names.
bool merge_reps(const std::vector<bench_doc>& docs, bench_doc* out, std::string* err);

}  // namespace mach
