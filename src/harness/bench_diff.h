// bench_diff: cell-by-cell comparison of two bench-baseline trees.
//
// Loads every BENCH_*.json in a baseline directory and a fresh directory
// (v2, v1, or raw google-benchmark schema — see bench_model.h), matches
// tables by caption, rows by their info-column key, and columns by
// header, then classifies each gated cell (direction higher/lower) as an
// improvement, a regression, or within noise.
//
// The noise threshold per cell is keyed on the measured coefficient of
// variation that bench_all stamped into the trees:
//
//     threshold = max(min_rel_delta, cov_mult * max(cov_base, cov_fresh))
//
// so a cell that repeats tightly is held to the floor, and a cell the
// machine itself measures as noisy gets proportionally more slack — the
// paper's "measure, don't assume" applied to the measurement layer
// itself.
//
// Structural drift (benches/tables/rows added or removed) is reported but
// never fails the gate: new benches must not be punished for existing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/bench_model.h"

namespace mach {

struct diff_options {
  double min_rel_delta = 0.25;  // noise floor: |delta| below this never gates
  double cov_mult = 3.0;        // CoV multiplier for the adaptive threshold
};

enum class delta_kind { improvement, regression, within_noise };

const char* to_string(delta_kind k);

struct cell_delta {
  std::string bench;
  std::string caption;
  std::string row;     // the info-column row key
  std::string column;  // header
  metric_dir dir = metric_dir::stat;
  double base = 0.0;
  double fresh = 0.0;
  double rel_delta = 0.0;  // (fresh - base) / |base|, signed
  double threshold = 0.0;  // the resolved noise threshold for this cell
  delta_kind kind = delta_kind::within_noise;
};

struct diff_result {
  std::vector<cell_delta> regressions;   // sorted, worst first
  std::vector<cell_delta> improvements;  // sorted, best first
  std::size_t within_noise = 0;
  std::size_t gated_cells = 0;  // total higher/lower cells compared
  std::vector<std::string> added_benches, removed_benches;
  std::vector<std::string> added_tables, removed_tables;  // "bench: caption"
  std::vector<std::string> added_rows, removed_rows;      // "bench: caption: key"

  bool ok() const { return regressions.empty(); }
};

// Compare two parsed docs of the same bench, appending into *out.
void diff_docs(const bench_doc& base, const bench_doc& fresh, const diff_options& opts,
               diff_result* out);

// Compare two directories of BENCH_*.json files (matched by file name).
// Returns false and fills *err when a directory is missing/unreadable or
// a file fails to parse.
bool diff_trees(const std::string& base_dir, const std::string& fresh_dir,
                const diff_options& opts, diff_result* out, std::string* err);

// Machine-readable verdict: status, options, counts, every classified
// delta, structural drift. Consumed by the CI gate and the tests.
std::string verdict_json(const diff_result& r, const diff_options& opts);

// Human-readable report for the CI artifact / PR comment.
std::string markdown_report(const diff_result& r, const diff_options& opts,
                            const std::string& base_label, const std::string& fresh_label);

}  // namespace mach
