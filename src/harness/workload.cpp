#include "harness/workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "sched/kthread.h"

namespace mach {

std::uint64_t workload_result::total_ops() const {
  std::uint64_t sum = 0;
  for (const auto& w : per_thread) sum += w.ops;
  return sum;
}

double workload_result::ops_per_second() const {
  if (wall_nanos == 0) return 0.0;
  return static_cast<double>(total_ops()) * 1e9 / static_cast<double>(wall_nanos);
}

latency_histogram workload_result::merged_latency() const {
  latency_histogram h;
  for (const auto& w : per_thread) h.merge(w.latency);
  return h;
}

double workload_result::fairness() const {
  if (per_thread.empty()) return 1.0;
  std::uint64_t lo = per_thread[0].ops, hi = per_thread[0].ops;
  for (const auto& w : per_thread) {
    lo = std::min(lo, w.ops);
    hi = std::max(hi, w.ops);
  }
  return hi == 0 ? 1.0 : static_cast<double>(lo) / static_cast<double>(hi);
}

workload_result run_workload(const workload_spec& spec) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  workload_result result;
  result.per_thread.resize(static_cast<std::size_t>(spec.threads));

  std::vector<std::unique_ptr<kthread>> workers;
  workers.reserve(static_cast<std::size_t>(spec.threads));
  for (int t = 0; t < spec.threads; ++t) {
    workers.push_back(kthread::spawn("worker" + std::to_string(t), [&, t] {
      if (spec.setup) spec.setup(t);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      worker_result& mine = result.per_thread[static_cast<std::size_t>(t)];
      std::uint64_t iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (spec.timed) {
          std::uint64_t t0 = now_nanos();
          spec.body(t, iter);
          mine.latency.record(now_nanos() - t0);
        } else {
          spec.body(t, iter);
        }
        ++mine.ops;
        ++iter;
      }
      if (spec.teardown) spec.teardown(t);
    }));
  }
  while (ready.load() < spec.threads) std::this_thread::yield();
  std::uint64_t t0 = now_nanos();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(spec.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w->join();
  result.wall_nanos = now_nanos() - t0;
  return result;
}

}  // namespace mach
