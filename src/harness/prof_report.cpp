#include "harness/prof_report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "trace/trace_export.h"

namespace mach {

namespace {

bool parse_state(const std::string& s, kprof::activity* out) {
  using kprof::activity;
  for (activity a : {activity::running, activity::spinning, activity::lock_waiting,
                     activity::holding, activity::blocked}) {
    if (s == kprof::to_string(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

double num_or(const mini_json::value* v, double def) {
  return v != nullptr && v->is(mini_json::value::kind::number) ? v->num : def;
}

std::uint64_t ms_to_nanos(double ms) {
  return ms <= 0 ? 0 : static_cast<std::uint64_t>(ms * 1e6);
}

void append_double(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    out += std::to_string(static_cast<std::int64_t>(v));
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out += buf;
  }
}

bool is_counter_name(const std::string& name) {
  // Prometheus counter convention; labelled counters look like
  // "machlock_x_total{k=\"v\"}".
  const std::size_t brace = name.find('{');
  const std::string base = brace == std::string::npos ? name : name.substr(0, brace);
  return base.size() > 6 && base.compare(base.size() - 6, 6, "_total") == 0;
}

}  // namespace

bool load_profile(const mini_json::value& doc, kprof::profile* out, std::string* err) {
  *out = kprof::profile{};
  const mini_json::value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is(mini_json::value::kind::string) ||
      schema->str != "machlock-kprof-v1") {
    if (err != nullptr) *err = "not a kprof profile: missing schema \"machlock-kprof-v1\"";
    return false;
  }
  if (const mini_json::value* meta = doc.find("meta")) {
    out->hz = num_or(meta->find("hz"), 0.0);
    out->ticks = static_cast<std::uint64_t>(num_or(meta->find("ticks"), 0.0));
    out->duration_nanos = ms_to_nanos(num_or(meta->find("duration_ms"), 0.0));
    out->flight_interval_nanos = ms_to_nanos(num_or(meta->find("flight_interval_ms"), 0.0));
  }
  const mini_json::value* samples = doc.find("samples");
  if (samples == nullptr || !samples->is(mini_json::value::kind::array)) {
    if (err != nullptr) *err = "not a kprof profile: no samples array";
    return false;
  }
  for (const mini_json::value& s : samples->arr) {
    kprof::site_sample ss;
    const mini_json::value* state = s.find("state");
    if (state == nullptr || !parse_state(state->str, &ss.state)) {
      if (err != nullptr) *err = "sample with missing or unknown state";
      return false;
    }
    if (const mini_json::value* site = s.find("site")) ss.site = site->str;
    if (const mini_json::value* rq = s.find("request")) ss.request = rq->b;
    ss.count = static_cast<std::uint64_t>(num_or(s.find("count"), 0.0));
    ss.weight_nanos = ms_to_nanos(num_or(s.find("weight_ms"), 0.0));
    out->sites.push_back(std::move(ss));
  }
  if (const mini_json::value* flight = doc.find("flight")) {
    out->flight_dropped = static_cast<std::uint64_t>(num_or(flight->find("dropped"), 0.0));
    if (const mini_json::value* snaps = flight->find("snapshots");
        snaps != nullptr && snaps->is(mini_json::value::kind::array)) {
      for (const mini_json::value& s : snaps->arr) {
        kprof::flight_snapshot fs;
        fs.nanos = ms_to_nanos(num_or(s.find("t_ms"), 0.0));
        if (const mini_json::value* vals = s.find("values");
            vals != nullptr && vals->is(mini_json::value::kind::object)) {
          for (const auto& [name, v] : vals->obj) {
            if (v.is(mini_json::value::kind::number)) fs.values.emplace_back(name, v.num);
          }
        }
        out->flight.push_back(std::move(fs));
      }
    }
  }
  return true;
}

bool load_profile_file(const std::string& path, kprof::profile* out, std::string* err) {
  mini_json::value doc;
  std::string parse_err;
  if (!mini_json::parse_file(path, &doc, &parse_err)) {
    if (err != nullptr) *err = parse_err;
    return false;
  }
  std::string load_err;
  if (!load_profile(doc, out, &load_err)) {
    if (err != nullptr) *err = path + ": " + load_err;
    return false;
  }
  return true;
}

std::string render_folded(const kprof::profile& p) {
  std::string out;
  for (const kprof::site_sample& s : p.sites) {
    if (s.count == 0) continue;
    out += "kprof;";
    out += s.request ? "request" : "background";
    out += ";";
    out += kprof::to_string(s.state);
    if (!s.site.empty()) {
      // Folded frames may not contain the separator; the site is a lock
      // name or event label, but be defensive.
      out += ";";
      for (char c : s.site) out += c == ';' ? ',' : c;
    }
    out += " " + std::to_string(s.count) + "\n";
  }
  return out;
}

std::string render_top(const kprof::profile& p, std::size_t top) {
  struct site_row {
    std::uint64_t spin = 0, wait = 0, hold = 0, blocked = 0;
    std::uint64_t contended_weight = 0;  // spinning + lock-waiting nanos
    std::uint64_t total_weight = 0;
  };
  std::map<std::string, site_row> by_site;
  std::uint64_t total_weight = 0;
  std::uint64_t total_samples = 0;
  for (const kprof::site_sample& s : p.sites) {
    total_weight += s.weight_nanos;
    total_samples += s.count;
    if (s.site.empty()) continue;
    site_row& r = by_site[s.site];
    r.total_weight += s.weight_nanos;
    switch (s.state) {
      case kprof::activity::spinning:
        r.spin += s.count;
        r.contended_weight += s.weight_nanos;
        break;
      case kprof::activity::lock_waiting:
        r.wait += s.count;
        r.contended_weight += s.weight_nanos;
        break;
      case kprof::activity::holding: r.hold += s.count; break;
      case kprof::activity::blocked: r.blocked += s.count; break;
      case kprof::activity::running: break;
    }
  }
  std::vector<std::pair<std::string, site_row>> rows(by_site.begin(), by_site.end());
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.contended_weight != b.second.contended_weight) {
      return a.second.contended_weight > b.second.contended_weight;
    }
    return a.second.total_weight > b.second.total_weight;
  });

  std::ostringstream os;
  os << "kprof: " << total_samples << " thread-samples over " << p.ticks << " ticks ("
     << p.duration_nanos / 1'000'000 << " ms at ";
  char hzbuf[32];
  std::snprintf(hzbuf, sizeof hzbuf, "%g", p.hz);
  os << hzbuf << " Hz), " << by_site.size() << " sites\n";
  os << "sampled sites, most contended first (spin + lock-wait weight):\n";
  char line[256];
  std::snprintf(line, sizeof line, "  %-28s %8s %8s %8s %8s %10s %7s\n", "site", "spin", "wait",
                "hold", "blocked", "weight", "share");
  os << line;
  std::size_t printed = 0;
  for (const auto& [site, r] : rows) {
    if (top != 0 && printed++ >= top) break;
    const double share =
        total_weight == 0 ? 0.0
                          : 100.0 * static_cast<double>(r.total_weight) /
                                static_cast<double>(total_weight);
    std::snprintf(line, sizeof line, "  %-28s %8llu %8llu %8llu %8llu %8llums %6.1f%%\n",
                  site.c_str(), static_cast<unsigned long long>(r.spin),
                  static_cast<unsigned long long>(r.wait), static_cast<unsigned long long>(r.hold),
                  static_cast<unsigned long long>(r.blocked),
                  static_cast<unsigned long long>(r.total_weight / 1'000'000), share);
    os << line;
  }
  if (rows.empty()) os << "  (no site-attributed samples)\n";
  return os.str();
}

std::string render_flight_json(const kprof::profile& p) {
  std::string out = "{\"schema\":\"machlock-kprof-flight-v1\",";
  out += "\"interval_ms\":";
  append_double(out, static_cast<double>(p.flight_interval_nanos) / 1e6);
  out += ",\"dropped\":" + std::to_string(p.flight_dropped);
  out += ",\"snapshots\":[";
  const kprof::flight_snapshot* prev = nullptr;
  bool first = true;
  for (const kprof::flight_snapshot& f : p.flight) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"t_ms\":";
    append_double(out, static_cast<double>(f.nanos) / 1e6);
    out += ",\"values\":{";
    bool vfirst = true;
    for (const auto& [name, v] : f.values) {
      if (!vfirst) out += ",";
      vfirst = false;
      out += "\"" + json_escape(name) + "\":";
      append_double(out, v);
    }
    out += "}";
    // Per-interval counter rates against the previous snapshot: the
    // delta-over-time view the end-of-run kmon export cannot give.
    if (prev != nullptr && f.nanos > prev->nanos) {
      const double dt = static_cast<double>(f.nanos - prev->nanos) / 1e9;
      std::map<std::string, double> prev_vals(prev->values.begin(), prev->values.end());
      out += ",\"rates\":{";
      bool rfirst = true;
      for (const auto& [name, v] : f.values) {
        if (!is_counter_name(name)) continue;
        auto it = prev_vals.find(name);
        if (it == prev_vals.end()) continue;
        if (!rfirst) out += ",";
        rfirst = false;
        out += "\"" + json_escape(name) + "\":";
        append_double(out, (v - it->second) / dt);
      }
      out += "}";
    }
    out += "}";
    prev = &f;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace mach
