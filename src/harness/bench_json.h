// Machine-readable bench output.
//
// Every bench binary prints its results as harness tables; when
// MACHLOCK_BENCH_JSON=<dir> is set, the same tables are also collected and
// written to <dir>/BENCH_<name>.json at exit (via trace_session's
// destructor calling flush()). <name> is the binary's name with any
// "bench_" prefix stripped, so bench_e2_rw_starvation emits
// BENCH_e2_rw_starvation.json.
//
// The JSON is benchguard's schema-v2 bench_doc (see bench_model.h): a
// `meta` stamp (git SHA from MACHLOCK_GIT_SHA, build type,
// hw_concurrency, repetitions, MACHLOCK_BENCH_MS), the printed tables —
// caption, column headers, per-column metric directions, string cells —
// plus a best-effort numeric parse of each cell ("1,234" → 1234,
// "3.42x" → 3.42, "85.0%" → 85.0, "1.2e+06" → 1200000, non-numeric →
// null) so consumers can plot without re-implementing the harness's
// formatting.
//
// bench_e13_primitives writes google-benchmark's own JSON instead; it
// calls note_external_output() so the empty-table flush here does not
// clobber that file. bench_all later normalizes it into the same schema.
#pragma once

#include <string>
#include <vector>

#include "harness/bench_dirs.h"

namespace mach::bench_json {

// True when MACHLOCK_BENCH_JSON names an output directory.
bool active();

// Override the bench name derived from the binary name (tests use this).
void set_bench_name(std::string name);

// Record one printed table. Called by table::print(); a no-op when
// inactive. `directions` is parallel to `columns` (resolved by the table
// from its annotations + the bench_dirs inference registry); when empty
// it is inferred here.
void record_table(const std::string& caption, const std::vector<std::string>& columns,
                  const std::vector<metric_dir>& directions,
                  const std::vector<std::vector<std::string>>& rows);

// Write <dir>/BENCH_<name>.json once; later calls are no-ops. Returns the
// path written, or empty when inactive / already flushed / marked
// external. Failure to write (missing or unwritable directory, disk
// error) logs to stderr and KEEPS the recorded tables and the unflushed
// state, so a later flush() after the caller fixes the destination still
// writes them — tables are never silently dropped.
std::string flush();

// Declare that this process wrote its own bench JSON to `path` (e.g. the
// google-benchmark reporter); flush() then skips its own write. If tables
// were also recorded, the skip is logged to stderr rather than silent.
void note_external_output(const std::string& path);

// The path flush() would write (or wrote): <dir>/BENCH_<name>.json.
// Empty when inactive.
std::string output_path();

// Best-effort numeric parse of one table cell: strips the harness's digit
// grouping ("1,234"), accepts the unit suffixes its formatters produce
// ("x", "%", "ns", "us", "ms"), scientific notation ("1.2e+06") and
// negative values. Rejects hex, non-finite results, and anything else
// ("nan"/"inf" cells must not leak into the JSON as invalid tokens).
bool parse_numeric_cell(const std::string& cell, double* out);

// Drop all recorded state (tables, flushed flag, external path, bench
// name override). Only for tests, which share one process-global
// collector.
void reset_for_tests();

}  // namespace mach::bench_json
