// Machine-readable bench output.
//
// Every bench binary prints its results as harness tables; when
// MACHLOCK_BENCH_JSON=<dir> is set, the same tables are also collected and
// written to <dir>/BENCH_<name>.json at exit (via trace_session's
// destructor calling flush()). <name> is the binary's name with any
// "bench_" prefix stripped, so bench_e2_rw_starvation emits
// BENCH_e2_rw_starvation.json.
//
// The JSON mirrors the printed tables — caption, column headers, string
// cells — plus a best-effort numeric parse of each cell ("1,234" → 1234,
// "3.42x" → 3.42, "85.0%" → 85.0, non-numeric → null) so consumers can
// plot without re-implementing the harness's formatting.
//
// bench_e13_primitives writes google-benchmark's own JSON instead; it
// calls note_external_output() so the empty-table flush here does not
// clobber that file.
#pragma once

#include <string>
#include <vector>

namespace mach::bench_json {

// True when MACHLOCK_BENCH_JSON names an output directory.
bool active();

// Override the bench name derived from the binary name (tests use this).
void set_bench_name(std::string name);

// Record one printed table. Called by table::print(); a no-op when
// inactive.
void record_table(const std::string& caption, const std::vector<std::string>& columns,
                  const std::vector<std::vector<std::string>>& rows);

// Write <dir>/BENCH_<name>.json once; later calls are no-ops. Returns the
// path written, or empty when inactive / already flushed / marked external.
std::string flush();

// Declare that this process wrote its own bench JSON to `path` (e.g. the
// google-benchmark reporter); flush() then skips its own write.
void note_external_output(const std::string& path);

// The path flush() would write (or wrote): <dir>/BENCH_<name>.json.
// Empty when inactive.
std::string output_path();

}  // namespace mach::bench_json
