// Aligned-table printer for the experiment harnesses.
//
// Every bench binary prints its results as one or more tables with a
// caption naming the experiment and the paper claim it reproduces, so the
// bench output can be diffed against EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mach {

class table {
 public:
  explicit table(std::string caption);

  table& columns(std::vector<std::string> headers);
  table& row(std::vector<std::string> cells);

  // Formatting helpers for cells.
  static std::string num(std::uint64_t v);
  static std::string num(double v, int precision = 2);
  static std::string ratio(double v);  // "3.42x"

  // Render to stdout.
  void print() const;

 private:
  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Shared bench-duration knob: reads MACHLOCK_BENCH_MS (default
// `def_ms`), so CI can shorten runs.
int bench_duration_ms(int def_ms = 300);

}  // namespace mach
