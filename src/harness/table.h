// Aligned-table printer for the experiment harnesses.
//
// Every bench binary prints its results as one or more tables with a
// caption naming the experiment and the paper claim it reproduces, so the
// bench output can be diffed against EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/bench_dirs.h"

namespace mach {

class table {
 public:
  explicit table(std::string caption);

  table& columns(std::vector<std::string> headers);
  table& row(std::vector<std::string> cells);

  // Annotate each column's metric direction (parallel to columns());
  // benchguard's bench_diff gates only on higher/lower columns. Columns
  // not covered here fall back to bench_dirs.h's header inference, so
  // annotate explicitly wherever the header is ambiguous ("retries",
  // "2 threads") or a diagnostic is too noisy to gate on.
  table& dirs(std::vector<metric_dir> directions);

  // Formatting helpers for cells.
  static std::string num(std::uint64_t v);
  static std::string num(double v, int precision = 2);
  static std::string ratio(double v);  // "3.42x"

  // Render to stdout.
  void print() const;

 private:
  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<metric_dir> dirs_;
  std::vector<std::vector<std::string>> rows_;
};

// Shared bench-duration knob: reads MACHLOCK_BENCH_MS (default
// `def_ms`), so CI can shorten runs.
int bench_duration_ms(int def_ms = 300);

}  // namespace mach
