#include "harness/span_report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <unordered_map>

namespace mach {

namespace {

// ts/dur in Chrome JSON are microseconds with fractional nanoseconds.
std::uint64_t us_to_nanos(double us) {
  if (us <= 0.0) return 0;
  return static_cast<std::uint64_t>(us * 1000.0 + 0.5);
}

// Parse the exporter's "0x<hex>" strings (arg1, trace, span).
std::uint64_t parse_hex(const mini_json::value* v) {
  if (v == nullptr || !v->is(mini_json::value::kind::string)) return 0;
  return std::strtoull(v->str.c_str(), nullptr, 16);
}

double num_or(const mini_json::value* v, double def) {
  return (v != nullptr && v->is(mini_json::value::kind::number)) ? v->num : def;
}

// Event name is "<kind label>" or "<kind label>:<subject>".
void split_name(const std::string& name, std::string* label, std::string* subject) {
  const std::size_t colon = name.find(':');
  if (colon == std::string::npos) {
    *label = name;
    subject->clear();
  } else {
    *label = name.substr(0, colon);
    *subject = name.substr(colon + 1);
  }
}

bool is_lock_wait_label(const std::string& label) {
  return label == "lock-wait" || label == "read-wait" || label == "write-wait" ||
         label == "upgrade-wait";
}

struct interval {
  std::uint32_t tid = 0;
  double start_us = 0.0;
  double end_us = 0.0;
};

double overlap_us(const interval& a, const interval& b) {
  const double lo = std::max(a.start_us, b.start_us);
  const double hi = std::min(a.end_us, b.end_us);
  return hi > lo ? hi - lo : 0.0;
}

struct root_span {
  std::uint32_t trace = 0;
  std::string kind;
  double dur_us = 0.0;
};

}  // namespace

bool build_span_report(const mini_json::value& doc, span_report* out, std::string* err) {
  *out = span_report{};
  const mini_json::value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is(mini_json::value::kind::array)) {
    if (err != nullptr) *err = "not a Chrome trace: no traceEvents array";
    return false;
  }

  std::unordered_map<std::uint32_t, std::string> thread_names;  // tid -> name
  std::unordered_map<std::uint64_t, std::uint32_t> token_tids;  // thread token -> tid
  std::vector<root_span> roots;
  // Per trace id: lock-wait and blocked intervals (for the overlap
  // subtraction), queue-wait total, lock-wait total.
  std::unordered_map<std::uint32_t, std::vector<interval>> lock_ivals, blocked_ivals;
  std::unordered_map<std::uint32_t, std::uint64_t> queue_nanos, lock_nanos;
  // Per lock: total request wait, count, per-holder-token counts.
  struct lock_acc {
    std::size_t waits = 0;
    std::uint64_t wait_nanos = 0;
    std::unordered_map<std::uint64_t, std::size_t> holders;
  };
  std::map<std::string, lock_acc> lock_accs;  // ordered: stable rendering ties

  for (const mini_json::value& e : events->arr) {
    if (!e.is(mini_json::value::kind::object)) continue;
    const mini_json::value* namev = e.find("name");
    const mini_json::value* phv = e.find("ph");
    if (namev == nullptr || phv == nullptr) continue;
    const std::string& ph = phv->str;
    const auto tid = static_cast<std::uint32_t>(num_or(e.find("tid"), 0.0));
    const mini_json::value* args = e.find("args");

    if (ph == "M") {
      if (namev->str == "thread_name" && args != nullptr) {
        const mini_json::value* n = args->find("name");
        if (n != nullptr) thread_names[tid] = n->str;
      }
      continue;
    }
    if (ph == "s" || ph == "t" || ph == "f") {
      ++out->flow_events;
      continue;
    }

    std::string label, subject;
    split_name(namev->str, &label, &subject);
    const std::uint64_t arg1 = args != nullptr ? parse_hex(args->find("arg1")) : 0;
    const double arg2 = args != nullptr ? num_or(args->find("arg2"), 0.0) : 0.0;
    const auto trace =
        static_cast<std::uint32_t>(args != nullptr ? parse_hex(args->find("trace")) : 0);
    const double ts = num_or(e.find("ts"), 0.0);
    const double dur = num_or(e.find("dur"), 0.0);

    if (label == "span-end") {
      ++out->spans;
      if (arg1 == 1 && trace != 0) {
        roots.push_back({trace, subject.empty() ? "request" : subject, dur});
      }
    } else if (label == "span-recv") {
      // arg1 carries the message's context; arg2 the queue wait in ns.
      const auto msg_trace = static_cast<std::uint32_t>(arg1 >> 32);
      if (msg_trace != 0) queue_nanos[msg_trace] += static_cast<std::uint64_t>(arg2);
    } else if (label == "span-bind") {
      if (arg1 != 0) token_tids[arg1] = tid;
    } else if (label == "span-blocked") {
      // The request announced the lock (and holder) it is about to wait on.
      lock_acc& acc = lock_accs[subject.empty() ? "?" : subject];
      ++acc.waits;
      if (arg1 != 0) ++acc.holders[arg1];
    } else if (is_lock_wait_label(label) && ph == "X" && trace != 0) {
      lock_ivals[trace].push_back({tid, ts, ts + dur});
      lock_nanos[trace] += us_to_nanos(dur);
      lock_accs[subject.empty() ? "?" : subject].wait_nanos += us_to_nanos(dur);
    } else if (label == "blocked" && ph == "X" && trace != 0) {
      blocked_ivals[trace].push_back({tid, ts, ts + dur});
    }
  }

  // blocked_other per trace: blocked time minus its overlap with lock waits
  // on the same thread (a complex-lock wait blocks via the event system and
  // would otherwise be counted twice).
  std::unordered_map<std::uint32_t, std::uint64_t> blocked_nanos;
  for (const auto& [trace, blocked] : blocked_ivals) {
    const auto lit = lock_ivals.find(trace);
    double total_us = 0.0;
    for (const interval& b : blocked) {
      double kept = b.end_us - b.start_us;
      if (lit != lock_ivals.end()) {
        for (const interval& l : lit->second) {
          if (l.tid == b.tid) kept -= overlap_us(b, l);
        }
      }
      if (kept > 0.0) total_us += kept;
    }
    blocked_nanos[trace] = us_to_nanos(total_us);
  }

  // Fold roots into per-kind rows, clamping each component so the
  // decomposition never exceeds the request's wall time.
  std::map<std::string, span_report::kind_row> kinds;
  for (const root_span& r : roots) {
    const std::uint64_t wall = us_to_nanos(r.dur_us);
    std::uint64_t lw = std::min(lock_nanos[r.trace], wall);
    std::uint64_t qw = std::min(queue_nanos[r.trace], wall - lw);
    std::uint64_t bo = std::min(blocked_nanos[r.trace], wall - lw - qw);
    span_report::kind_row& row = kinds[r.kind];
    row.kind = r.kind;
    ++row.requests;
    row.wall_nanos += wall;
    row.lock_wait_nanos += lw;
    row.queue_wait_nanos += qw;
    row.blocked_nanos += bo;
    row.run_nanos += wall - lw - qw - bo;
  }
  out->requests = roots.size();
  std::uint64_t total_wall = 0, total_attr = 0;
  for (auto& [kind, row] : kinds) {
    total_wall += row.wall_nanos;
    total_attr += row.run_nanos + row.lock_wait_nanos + row.queue_wait_nanos + row.blocked_nanos;
    out->kinds.push_back(std::move(row));
  }
  std::sort(out->kinds.begin(), out->kinds.end(),
            [](const auto& a, const auto& b) { return a.wall_nanos > b.wall_nanos; });
  out->coverage = total_wall != 0
                      ? static_cast<double>(total_attr) / static_cast<double>(total_wall)
                      : 1.0;

  for (auto& [lock, acc] : lock_accs) {
    span_report::lock_row row;
    row.lock = lock;
    row.waits = acc.waits;
    row.wait_nanos = acc.wait_nanos;
    // Most frequent holder, named via its span-bind tid when available.
    std::uint64_t best_token = 0;
    std::size_t best_count = 0;
    for (const auto& [token, count] : acc.holders) {
      if (count > best_count) {
        best_token = token;
        best_count = count;
      }
    }
    if (best_token != 0) {
      const auto tit = token_tids.find(best_token);
      if (tit != token_tids.end()) {
        const auto nit = thread_names.find(tit->second);
        row.top_holder = nit != thread_names.end() ? nit->second
                                                   : "tid " + std::to_string(tit->second);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%" PRIx64, best_token);
        row.top_holder = buf;
      }
    }
    out->locks.push_back(std::move(row));
  }
  std::sort(out->locks.begin(), out->locks.end(),
            [](const auto& a, const auto& b) { return a.wait_nanos > b.wait_nanos; });
  return true;
}

bool build_span_report_file(const std::string& path, span_report* out, std::string* err) {
  mini_json::value doc;
  if (!mini_json::parse_file(path, &doc, err)) return false;
  return build_span_report(doc, out, err);
}

namespace {

std::string fmt_us(std::uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(nanos) / 1000.0);
  return buf;
}

std::string fmt_pct(std::uint64_t part, std::uint64_t whole) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                whole != 0 ? 100.0 * static_cast<double>(part) / static_cast<double>(whole)
                           : 0.0);
  return buf;
}

}  // namespace

std::string render_span_report(const span_report& r, std::size_t top_locks) {
  std::ostringstream os;
  os << "span_report: " << r.requests << " requests, " << r.spans << " spans, "
     << r.flow_events << " flow events";
  char cov[32];
  std::snprintf(cov, sizeof(cov), "%.1f%%", r.coverage * 100.0);
  os << ", " << cov << " of request wall time attributed\n";
  if (r.requests == 0) {
    os << "(no request roots in trace; run with MACHLOCK_SPANS=1 and wrap "
          "requests in kspan::request)\n";
    return os.str();
  }

  os << "\ncritical path by request kind (totals, us):\n";
  os << "  kind          reqs      wall       run      %    lock-wait    %   queue-wait"
        "    %    blocked    %\n";
  for (const span_report::kind_row& k : r.kinds) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-12s %5zu %9s %9s %5s %9s %5s %9s %5s %9s %5s\n", k.kind.c_str(),
                  k.requests, fmt_us(k.wall_nanos).c_str(), fmt_us(k.run_nanos).c_str(),
                  fmt_pct(k.run_nanos, k.wall_nanos).c_str(), fmt_us(k.lock_wait_nanos).c_str(),
                  fmt_pct(k.lock_wait_nanos, k.wall_nanos).c_str(),
                  fmt_us(k.queue_wait_nanos).c_str(),
                  fmt_pct(k.queue_wait_nanos, k.wall_nanos).c_str(),
                  fmt_us(k.blocked_nanos).c_str(),
                  fmt_pct(k.blocked_nanos, k.wall_nanos).c_str());
    os << line;
  }

  if (!r.locks.empty()) {
    os << "\ntop blocking locks (by blocked-request time):\n";
    os << "  lock                    waits   wait-us  top holder\n";
    std::size_t shown = 0;
    for (const span_report::lock_row& l : r.locks) {
      if (top_locks != 0 && shown++ >= top_locks) break;
      char line[256];
      std::snprintf(line, sizeof(line), "  %-22s %6zu %9s  %s\n", l.lock.c_str(), l.waits,
                    fmt_us(l.wait_nanos).c_str(),
                    l.top_holder.empty() ? "-" : l.top_holder.c_str());
      os << line;
    }
  }
  return os.str();
}

}  // namespace mach
