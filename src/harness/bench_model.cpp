#include "harness/bench_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "trace/trace_export.h"

#ifndef MACHLOCK_BUILD_TYPE
#define MACHLOCK_BUILD_TYPE "unknown"
#endif

namespace mach {

namespace {

// Shortest %g rendering that round-trips: medians like 0.1*3 would
// otherwise print as 0.30000000000000004 all over the baselines.
std::string render_number(double v) {
  char buf[64];
  for (int prec : {15, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void append_string_array(std::string& out, const std::vector<std::string>& items) {
  out += "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"";
    out += json_escape(items[i]);
    out += "\"";
  }
  out += "]";
}

void append_optional_array(std::string& out, const std::vector<std::optional<double>>& items) {
  out += "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ",";
    out += items[i].has_value() ? render_number(*items[i]) : "null";
  }
  out += "]";
}

const mini_json::value* find_kind(const mini_json::value& obj, const std::string& key,
                                  mini_json::value::kind k) {
  const mini_json::value* v = obj.find(key);
  return (v != nullptr && v->k == k) ? v : nullptr;
}

std::string string_or(const mini_json::value& obj, const std::string& key,
                      const std::string& def) {
  const mini_json::value* v = find_kind(obj, key, mini_json::value::kind::string);
  return v != nullptr ? v->str : def;
}

double number_or(const mini_json::value& obj, const std::string& key, double def) {
  const mini_json::value* v = find_kind(obj, key, mini_json::value::kind::number);
  return v != nullptr ? v->num : def;
}

bool parse_table(const mini_json::value& jt, bench_table* out, std::string* err) {
  out->caption = string_or(jt, "caption", "");
  if (const mini_json::value* cols = find_kind(jt, "columns", mini_json::value::kind::array)) {
    for (const auto& c : cols->arr) out->columns.push_back(c.str);
  }
  std::vector<metric_dir> annotated;
  if (const mini_json::value* dirs = find_kind(jt, "directions", mini_json::value::kind::array)) {
    for (const auto& d : dirs->arr) annotated.push_back(metric_dir_from_string(d.str));
  }
  out->directions = resolve_metric_dirs(out->columns, annotated);
  const mini_json::value* rows = find_kind(jt, "rows", mini_json::value::kind::array);
  if (rows == nullptr) return true;
  for (const auto& jr : rows->arr) {
    bench_row row;
    if (const mini_json::value* cells = find_kind(jr, "cells", mini_json::value::kind::array)) {
      for (const auto& c : cells->arr) row.cells.push_back(c.str);
    }
    if (const mini_json::value* vals = find_kind(jr, "values", mini_json::value::kind::array)) {
      for (const auto& v : vals->arr) {
        row.values.push_back(v.k == mini_json::value::kind::number
                                 ? std::optional<double>(v.num)
                                 : std::nullopt);
      }
    }
    row.values.resize(row.cells.size());
    if (const mini_json::value* cov = find_kind(jr, "cov", mini_json::value::kind::array)) {
      for (const auto& v : cov->arr) {
        row.cov.push_back(v.k == mini_json::value::kind::number ? std::optional<double>(v.num)
                                                                : std::nullopt);
      }
      row.cov.resize(row.cells.size());
    }
    out->rows.push_back(std::move(row));
  }
  if (err != nullptr) err->clear();
  return true;
}

// Convert a google-benchmark time to nanoseconds.
double to_ns(double t, const std::string& unit) {
  if (unit == "ns") return t;
  if (unit == "us") return t * 1e3;
  if (unit == "ms") return t * 1e6;
  if (unit == "s") return t * 1e9;
  return t;
}

// Map a rep's column index for `header`, preferring the same index.
int column_index(const bench_table& t, const std::string& header, std::size_t hint) {
  if (hint < t.columns.size() && t.columns[hint] == header) return static_cast<int>(hint);
  for (std::size_t i = 0; i < t.columns.size(); ++i) {
    if (t.columns[i] == header) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

bench_meta meta_from_environment() {
  bench_meta m;
  if (const char* sha = std::getenv("MACHLOCK_GIT_SHA"); sha != nullptr && sha[0] != '\0') {
    m.git_sha = sha;
  }
  m.build_type = MACHLOCK_BUILD_TYPE;
  m.hw_concurrency = std::thread::hardware_concurrency();
  if (const char* ms = std::getenv("MACHLOCK_BENCH_MS")) {
    const int v = std::atoi(ms);
    if (v > 0) m.bench_ms = v;
  }
  return m;
}

std::string row_key(const bench_table& t, std::size_t row_index) {
  if (row_index >= t.rows.size()) return "row:" + std::to_string(row_index);
  const bench_row& r = t.rows[row_index];
  std::string key;
  for (std::size_t c = 0; c < r.cells.size() && c < t.directions.size(); ++c) {
    if (t.directions[c] != metric_dir::info) continue;
    if (!key.empty()) key += " | ";
    key += r.cells[c];
  }
  return key.empty() ? "row:" + std::to_string(row_index) : key;
}

std::string render_bench_doc(const bench_doc& doc) {
  std::string out = "{\"schema\":" + std::to_string(doc.meta.schema);
  out += ",\"bench\":\"" + json_escape(doc.bench) + "\"";
  out += ",\"meta\":{";
  out += "\"git_sha\":\"" + json_escape(doc.meta.git_sha) + "\"";
  out += ",\"build_type\":\"" + json_escape(doc.meta.build_type) + "\"";
  out += ",\"source\":\"" + json_escape(doc.meta.source) + "\"";
  out += ",\"hw_concurrency\":" + std::to_string(doc.meta.hw_concurrency);
  out += ",\"reps\":" + std::to_string(doc.meta.reps);
  out += ",\"bench_ms\":" + std::to_string(doc.meta.bench_ms);
  out += "},\"tables\":[";
  for (std::size_t t = 0; t < doc.tables.size(); ++t) {
    const bench_table& bt = doc.tables[t];
    out += t == 0 ? "\n" : ",\n";
    out += "{\"caption\":\"" + json_escape(bt.caption) + "\"";
    out += ",\"columns\":";
    append_string_array(out, bt.columns);
    out += ",\"directions\":[";
    for (std::size_t c = 0; c < bt.directions.size(); ++c) {
      if (c != 0) out += ",";
      out += "\"";
      out += to_string(bt.directions[c]);
      out += "\"";
    }
    out += "],\"rows\":[";
    for (std::size_t r = 0; r < bt.rows.size(); ++r) {
      const bench_row& row = bt.rows[r];
      if (r != 0) out += ",";
      out += "\n{\"cells\":";
      append_string_array(out, row.cells);
      out += ",\"values\":";
      append_optional_array(out, row.values);
      const bool any_cov =
          std::any_of(row.cov.begin(), row.cov.end(), [](const auto& c) { return c.has_value(); });
      if (any_cov) {
        out += ",\"cov\":";
        append_optional_array(out, row.cov);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

bool normalize_google_benchmark(const mini_json::value& gb, const std::string& bench_name,
                                bench_doc* out, std::string* err) {
  const mini_json::value* benches = find_kind(gb, "benchmarks", mini_json::value::kind::array);
  if (benches == nullptr) {
    if (err != nullptr) *err = "google-benchmark JSON without a \"benchmarks\" array";
    return false;
  }
  out->bench = bench_name;
  out->meta = meta_from_environment();
  out->meta.source = "google-benchmark";
  if (const mini_json::value* ctx = find_kind(gb, "context", mini_json::value::kind::object)) {
    const double cpus = number_or(*ctx, "num_cpus", 0);
    if (cpus > 0) out->meta.hw_concurrency = static_cast<unsigned>(cpus);
  }
  bench_table t;
  t.caption = "E13: primitive operation costs (normalized from google-benchmark)";
  t.columns = {"name", "real_time (ns)", "cpu_time (ns)", "iterations"};
  t.directions = {metric_dir::info, metric_dir::lower, metric_dir::lower, metric_dir::stat};
  for (const auto& b : benches->arr) {
    if (b.k != mini_json::value::kind::object) continue;
    // Skip aggregate rows (mean/median/stddev) if repetitions were used;
    // bench_all computes its own aggregates.
    if (b.find("aggregate_name") != nullptr) continue;
    const std::string unit = string_or(b, "time_unit", "ns");
    const double real_ns = to_ns(number_or(b, "real_time", 0), unit);
    const double cpu_ns = to_ns(number_or(b, "cpu_time", 0), unit);
    const double iters = number_or(b, "iterations", 0);
    bench_row row;
    row.cells = {string_or(b, "name", "?"), render_number(real_ns), render_number(cpu_ns),
                 render_number(iters)};
    row.values = {std::nullopt, real_ns, cpu_ns, iters};
    t.rows.push_back(std::move(row));
  }
  out->tables.push_back(std::move(t));
  return true;
}

bool parse_bench_doc(const std::string& json_text, const std::string& fallback_bench_name,
                     bench_doc* out, std::string* err) {
  mini_json::value root;
  if (!mini_json::parse(json_text, &root, err)) return false;
  if (root.k != mini_json::value::kind::object) {
    if (err != nullptr) *err = "top level is not an object";
    return false;
  }
  if (root.find("benchmarks") != nullptr) {
    return normalize_google_benchmark(root, fallback_bench_name, out, err);
  }
  *out = bench_doc{};
  out->bench = string_or(root, "bench", fallback_bench_name);
  out->meta.schema = static_cast<int>(number_or(root, "schema", 1));
  if (const mini_json::value* meta = find_kind(root, "meta", mini_json::value::kind::object)) {
    out->meta.git_sha = string_or(*meta, "git_sha", "unknown");
    out->meta.build_type = string_or(*meta, "build_type", "unknown");
    out->meta.source = string_or(*meta, "source", "harness");
    out->meta.hw_concurrency = static_cast<unsigned>(number_or(*meta, "hw_concurrency", 0));
    out->meta.reps = static_cast<int>(number_or(*meta, "reps", 1));
    out->meta.bench_ms = static_cast<int>(number_or(*meta, "bench_ms", 0));
  }
  const mini_json::value* tables = find_kind(root, "tables", mini_json::value::kind::array);
  if (tables == nullptr) {
    if (err != nullptr) *err = "no \"tables\" array";
    return false;
  }
  for (const auto& jt : tables->arr) {
    bench_table t;
    if (!parse_table(jt, &t, err)) return false;
    out->tables.push_back(std::move(t));
  }
  return true;
}

bool parse_bench_doc_file(const std::string& path, bench_doc* out, std::string* err) {
  std::string name = path;
  if (const std::size_t slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (name.rfind("BENCH_", 0) == 0) name = name.substr(6);
  if (const std::size_t dot = name.rfind(".json"); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) *err = path + ": cannot open";
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string parse_err;
  if (parse_bench_doc(text, name, out, &parse_err)) return true;
  if (err != nullptr) *err = path + ": " + parse_err;
  return false;
}

bool merge_reps(const std::vector<bench_doc>& docs, bench_doc* out, std::string* err) {
  if (docs.empty()) {
    if (err != nullptr) *err = "no repetition docs to merge";
    return false;
  }
  for (const bench_doc& d : docs) {
    if (d.bench != docs[0].bench) {
      if (err != nullptr) {
        *err = "mismatched bench names: " + docs[0].bench + " vs " + d.bench;
      }
      return false;
    }
  }
  *out = bench_doc{};
  out->bench = docs[0].bench;
  out->meta = docs[0].meta;
  out->meta.reps = static_cast<int>(docs.size());

  // Union of tables by caption, in first-seen order.
  std::vector<std::string> captions;
  for (const bench_doc& d : docs) {
    for (const bench_table& t : d.tables) {
      if (std::find(captions.begin(), captions.end(), t.caption) == captions.end()) {
        captions.push_back(t.caption);
      }
    }
  }
  for (const std::string& caption : captions) {
    // Reps of this table across docs (a bench emits each caption once).
    std::vector<const bench_table*> reps;
    for (const bench_doc& d : docs) {
      for (const bench_table& t : d.tables) {
        if (t.caption == caption) {
          reps.push_back(&t);
          break;
        }
      }
    }
    bench_table merged;
    merged.caption = caption;
    merged.columns = reps[0]->columns;
    merged.directions = reps[0]->directions;

    // Union of row keys in first-seen order.
    std::vector<std::string> keys;
    for (const bench_table* t : reps) {
      for (std::size_t r = 0; r < t->rows.size(); ++r) {
        const std::string k = row_key(*t, r);
        if (std::find(keys.begin(), keys.end(), k) == keys.end()) keys.push_back(k);
      }
    }
    for (const std::string& key : keys) {
      // This key's row in each rep that has it.
      std::vector<std::pair<const bench_table*, const bench_row*>> rows;
      for (const bench_table* t : reps) {
        for (std::size_t r = 0; r < t->rows.size(); ++r) {
          if (row_key(*t, r) == key) {
            rows.emplace_back(t, &t->rows[r]);
            break;
          }
        }
      }
      bench_row merged_row;
      merged_row.cells = rows[0].second->cells;
      merged_row.cells.resize(merged.columns.size());
      merged_row.values.assign(merged.columns.size(), std::nullopt);
      merged_row.cov.assign(merged.columns.size(), std::nullopt);
      for (std::size_t c = 0; c < merged.columns.size(); ++c) {
        std::vector<double> samples;
        std::vector<const std::string*> sample_cells;
        for (const auto& [t, row] : rows) {
          const int ci = column_index(*t, merged.columns[c], c);
          if (ci < 0 || static_cast<std::size_t>(ci) >= row->values.size()) continue;
          if (const auto& v = row->values[static_cast<std::size_t>(ci)]; v.has_value()) {
            samples.push_back(*v);
            sample_cells.push_back(&row->cells[static_cast<std::size_t>(ci)]);
          }
        }
        if (samples.empty()) continue;
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        const std::size_t mid = sorted.size() / 2;
        const double median = sorted.size() % 2 == 1
                                  ? sorted[mid]
                                  : (sorted[mid - 1] + sorted[mid]) / 2.0;
        double mean = 0;
        for (double v : samples) mean += v;
        mean /= static_cast<double>(samples.size());
        double var = 0;
        for (double v : samples) var += (v - mean) * (v - mean);
        var /= static_cast<double>(samples.size());
        const double cov = mean != 0.0 ? std::sqrt(var) / std::fabs(mean) : 0.0;
        merged_row.values[c] = median;
        merged_row.cov[c] = cov;
        // Show the string cell of the rep closest to the median so the
        // committed baseline stays human-readable ("1,234" not 1234.0).
        std::size_t best = 0;
        for (std::size_t i = 1; i < samples.size(); ++i) {
          if (std::fabs(samples[i] - median) < std::fabs(samples[best] - median)) best = i;
        }
        merged_row.cells[c] = *sample_cells[best];
      }
      merged.rows.push_back(std::move(merged_row));
    }
    out->tables.push_back(std::move(merged));
  }
  return true;
}

}  // namespace mach
