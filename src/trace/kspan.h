// kspan — request-scoped causal tracing on top of ktrace.
//
// ktrace answers "what happened on this thread and for how long"; lockstat
// and kmon answer "how often, system-wide". Neither can answer the question
// a request-serving workload lives on: for ONE request, where did its
// latency go, and which lock (and which holder) sat on its critical path?
// kspan supplies the missing identity: a span context — a trace id naming
// the request plus a span id naming the current leg — carried in a
// thread-local slot, stamped into every ktrace record the thread emits,
// propagated across IPC (a context field in struct message, adopted by the
// receiver), and annotated at every blocking edge (lock slow paths record
// the lock and its holder; wakeup delivery records who unblocked whom).
// The Chrome exporter renders the cross-thread hops as flow events
// (`ph:"s"/"t"/"f"`), and tools/span_report reconstructs each request's
// critical path from the exported JSON.
//
// Context encoding: one 64-bit word, trace id in the high 32 bits, span id
// in the low 32. Zero means "no active span". Packing keeps the hot paths
// (stamp-into-record, copy-into-message, publish-to-watchdog-slot) single
// loads and stores.
//
// Cost model (the ktrace/kmon discipline): compiled in unconditionally;
// runtime-disabled by default via MACHLOCK_SPANS=1 or kspan::enable().
// Disabled, every hook is one relaxed atomic load (scopes) or one
// thread-local load (context reads) — no clock reads, no stores. Span
// *records* additionally require ktrace to be enabled; with only kspan on,
// contexts still propagate and the per-kind kmon latency histograms still
// fill, but nothing is written to the rings.
#pragma once

#include <atomic>
#include <cstdint>

#include "trace/ktrace.h"

namespace mach {

// Packed span context: trace id (hi 32) | span id (lo 32). 0 = none.
using span_ctx_t = std::uint64_t;

inline constexpr std::uint32_t span_trace_id(span_ctx_t c) noexcept {
  return static_cast<std::uint32_t>(c >> 32);
}
inline constexpr std::uint32_t span_span_id(span_ctx_t c) noexcept {
  return static_cast<std::uint32_t>(c);
}

namespace kspan {

namespace detail {
extern std::atomic<bool> g_enabled;
// The calling thread's active context; read by ktrace::detail::emit_slow to
// stamp every record, and by the watchdog wait hooks to name the stalled
// request. Written only by the owning thread (scope ctors/dtors).
extern thread_local span_ctx_t tl_ctx;
// Allocate a fresh root context (new trace id, span id 1) / a child of
// `parent` (same trace id, fresh span id).
span_ctx_t make_root() noexcept;
span_ctx_t make_child(span_ctx_t parent) noexcept;
// Emit the once-per-thread span_bind record (thread token -> ring tid) so
// offline analysis can name holder tokens. No-op until ktrace is enabled.
void bind_thread() noexcept;
// Close a span scope: emit span_end, feed the per-kind kmon histogram.
void end_scope(const char* kind, span_ctx_t ctx, std::uint64_t start_nanos,
               bool root) noexcept;
}  // namespace detail

// The global switch. One relaxed load, same contract as ktrace::enabled().
inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }
void enable() noexcept;
void disable() noexcept;

// The calling thread's active context (0 when none / spans disabled).
inline span_ctx_t current() noexcept { return detail::tl_ctx; }

// Annotate the active span: the calling thread is about to block on `lock`
// whose current holder is `holder` (may be null when unknown, e.g. a
// reader-held complex lock). Called from the sync slow paths; self-gates on
// an active context so uninstrumented threads pay one TLS load.
inline void note_blocked(const char* lock_name, const void* lock, const void* holder) noexcept {
  if (detail::tl_ctx == 0) return;
  ktrace::emit(trace_kind::span_blocked_on, lock_name,
               reinterpret_cast<std::uint64_t>(holder), reinterpret_cast<std::uint64_t>(lock));
}

// RAII root span: one request, from arrival to reply. Installs a fresh
// context for the scope's extent; no-op when kspan is disabled.
class request {
 public:
  explicit request(const char* kind) noexcept : kind_(kind) {
    if (!enabled()) [[likely]] return;
    prev_ = detail::tl_ctx;
    ctx_ = detail::make_root();
    detail::tl_ctx = ctx_;
    start_ = now_nanos();
    detail::bind_thread();
    ktrace::emit(trace_kind::span_begin, kind_, /*root=*/1, ctx_);
  }
  ~request() {
    if (ctx_ == 0) return;
    detail::end_scope(kind_, ctx_, start_, /*root=*/true);
    detail::tl_ctx = prev_;
  }
  request(const request&) = delete;
  request& operator=(const request&) = delete;

  bool active() const noexcept { return ctx_ != 0; }
  span_ctx_t ctx() const noexcept { return ctx_; }

 private:
  const char* kind_;
  span_ctx_t ctx_ = 0;
  span_ctx_t prev_ = 0;
  std::uint64_t start_ = 0;
};

// RAII adopted span: continue a context received from another thread (an
// IPC message's span_ctx) as a child span — same trace id, fresh span id.
// Restores the previous context on destruction, so nesting (a server thread
// with its own housekeeping span adopting a request mid-stream, or an RPC
// reply landing back in the client) unwinds correctly. No-op when kspan is
// disabled or `received` is 0.
class adopt_scope {
 public:
  explicit adopt_scope(span_ctx_t received, const char* kind = "adopted") noexcept
      : kind_(kind) {
    if (!enabled()) [[likely]] return;
    if (received == 0) return;
    prev_ = detail::tl_ctx;
    ctx_ = detail::make_child(received);
    detail::tl_ctx = ctx_;
    start_ = now_nanos();
    detail::bind_thread();
    ktrace::emit(trace_kind::span_begin, kind_, /*root=*/0, ctx_);
  }
  ~adopt_scope() {
    if (ctx_ == 0) return;
    detail::end_scope(kind_, ctx_, start_, /*root=*/false);
    detail::tl_ctx = prev_;
  }
  adopt_scope(const adopt_scope&) = delete;
  adopt_scope& operator=(const adopt_scope&) = delete;

  bool active() const noexcept { return ctx_ != 0; }
  span_ctx_t ctx() const noexcept { return ctx_; }

 private:
  const char* kind_;
  span_ctx_t ctx_ = 0;
  span_ctx_t prev_ = 0;
  std::uint64_t start_ = 0;
};

}  // namespace kspan
}  // namespace mach
