// ktrace — kernel-wide event tracing.
//
// The lockstat registry (sync/lockstat.h) can *count* lock events; it
// cannot show WHEN they happened, HOW LONG a lock was held, or WHO waited
// on whom. ktrace is the timeline complement: every thread owns a
// lock-free single-producer/single-consumer ring of fixed-size trace
// records, tracepoints in the sync/sched/kern/smp/vm/ipc layers append to
// the current thread's ring, and a collector merges all rings into one
// time-ordered stream that the exporters (trace/trace_export.h) render as
// Chrome trace_event JSON or plain text.
//
// Cost model:
//   * compiled in unconditionally, like the rest of the debug discipline;
//   * runtime-disabled by default: every tracepoint is one relaxed atomic
//     load and a predicted-not-taken branch — no clock reads, no stores;
//   * when enabled, a tracepoint is one now_nanos() plus a handful of
//     plain stores into the thread-local ring (no locks, no allocation
//     after the ring exists).
//
// Ring discipline: the owning thread is the only writer; the ring keeps
// the most recent `capacity` records and wraparound DROPS THE OLDEST,
// tallying a per-thread drop count so a truncated trace is never mistaken
// for a complete one. Collect after ktrace::disable() (and after joining
// writers) for a tear-free snapshot; collecting concurrently is safe for
// the newest records but may observe partially overwritten oldest slots.
//
// Record args: `name` must point to storage that outlives collection —
// lock and object names in this codebase are string literals, which is
// exactly why the record can carry the pointer instead of copying.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/stats.h"

namespace mach {

// What happened. Span kinds record the END timestamp in `nanos` and the
// duration in `arg2`, so the exporters can reconstruct [end-dur, end]
// intervals; instant kinds are points.
enum class trace_kind : std::uint16_t {
  none = 0,  // zeroed slot (never emitted)

  // sync — arg1 = lock address, arg2 = duration (ns)
  simple_lock_wait,    // span: spin time until a contended acquire
  simple_lock_held,    // span: hold time, emitted at unlock
  complex_read_wait,   // span: blocked/spun time until lock_read returned
  complex_write_wait,  // span: ... until lock_write returned
  complex_upgrade_wait,  // span: ... until an upgrade drained the readers
  complex_write_held,  // span: write-side hold time, emitted at release

  // sched — arg1 = event address
  assert_wait_ev,   // instant: wait declared
  thread_blocked,   // span: arg2 = ns from thread_block to wakeup (0 if
                    // short-circuited by an early wakeup)
  thread_wakeup_ev, // instant: arg2 = waiters actually woken

  // kern — arg1 = the count's address ("the portion containing its
  // reference count" — the policy object inside kobject, or a bare
  // refcount); arg2 = resulting reference count where the policy knows it
  // exactly (striped fast paths emit 0 for takes / 1 for non-final puts)
  ref_take,        // instant: reference cloned
  ref_release,     // instant: reference released (arg2 == 0: destroyed)
  ref_deactivate,  // instant: object deactivated (arg2 = 1 if this call)

  // smp / vm — the TLB-shootdown barrier phases
  barrier_round,       // span on the initiator: arg1 = participant mask
  barrier_isr,         // span on a participant: arg1 = cpu id, the time
                       // parked at interrupt level inside the ISR
  shootdown_round,     // span on the initiator: arg1 = va, whole protocol
  shootdown_posted,    // instant: arg1 = target cpu, arg2 = va
  shootdown_excluded,  // instant: arg1 = cpu removed by the special logic

  // ipc — port → object translation and dispatch
  rpc_translate,  // span: arg1 = port name, name = "translate"
  rpc_dispatch,   // span: arg1 = op number, name = operation name

  // span — kspan request-scoped causal tracing (trace/kspan.h). All span
  // records additionally carry the packed context in trace_record::ctx.
  span_begin,       // instant: a span scope opened; arg1 = 1 for a request
                    // root (0 for an adopted leg), name = span kind
  span_end,         // span: the scope's extent; arg1 = root flag, name = kind
  span_send,        // instant: message enqueued; arg1 = message's span ctx,
                    // arg2 = destination port address
  span_recv,        // instant: message dequeued; arg1 = message's span ctx,
                    // arg2 = queue-wait ns (dequeue - enqueue)
  span_unblock,     // instant: this thread's block ended by a wakeup whose
                    // deliverer carried arg1 = the waker's span ctx;
                    // arg2 = the event address
  span_blocked_on,  // instant: the active span is entering a lock slow
                    // path; name = lock name, arg1 = holder token (may be
                    // 0), arg2 = lock address
  span_bind,        // instant: once per thread; arg1 = the thread's token,
                    // binding tokens to ring tids for offline holder naming

  kind_count
};

// One fixed-size ring slot.
struct trace_record {
  std::uint64_t nanos = 0;  // end-of-span or instant timestamp
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
  // The emitting thread's kspan context (trace id << 32 | span id), stamped
  // by emit_slow; 0 when no span was active. Attributes EVERY record — lock
  // waits, blocked intervals, refcount traffic — to the request that
  // incurred it, which is what tools/span_report aggregates.
  std::uint64_t ctx = 0;
  const char* name = nullptr;  // static string; may be null
  trace_kind kind = trace_kind::none;
};

// Kind metadata shared by the exporters and reports.
const char* trace_kind_label(trace_kind k) noexcept;
const char* trace_kind_category(trace_kind k) noexcept;  // sync/sched/kern/vm/ipc
bool trace_kind_is_span(trace_kind k) noexcept;

namespace ktrace {

namespace detail {
extern std::atomic<bool> g_enabled;
// Appends to the calling thread's ring, creating it on first use.
void emit_slow(trace_kind kind, const char* name, std::uint64_t arg1, std::uint64_t arg2,
               std::uint64_t nanos) noexcept;
}  // namespace detail

// The global switch. enabled() is the tracepoint fast path: keep it to a
// single relaxed load so disabled tracing stays near-free.
inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }
void enable() noexcept;
void disable() noexcept;

// Record an instant event, stamped now. No-op when disabled.
inline void emit(trace_kind kind, const char* name = nullptr, std::uint64_t arg1 = 0,
                 std::uint64_t arg2 = 0) noexcept {
  if (!enabled()) return;
  detail::emit_slow(kind, name, arg1, arg2, now_nanos());
}

// Record a span that ended at `end_nanos` and lasted `duration` ns (kept
// in arg2 by convention). Callers time the span themselves so the clock is
// read once per endpoint. No-op when disabled.
inline void emit_span(trace_kind kind, const char* name, std::uint64_t arg1,
                      std::uint64_t duration, std::uint64_t end_nanos) noexcept {
  if (!enabled()) return;
  detail::emit_slow(kind, name, arg1, duration, end_nanos);
}

// Name the calling thread's ring in collected output (kthread::spawn does
// this automatically). Safe to call before the ring exists.
void set_thread_name(std::string name);

// Ring capacity (records per thread) for rings created AFTER the call;
// existing rings keep their size. Tests shrink this to exercise wraparound.
void set_default_ring_capacity(std::size_t records);
std::size_t default_ring_capacity() noexcept;

// Zero every ring (head, drop counts) without deallocating, so live
// threads' cached ring pointers stay valid. Call with tracing disabled and
// writers quiescent.
void reset();

// --- collection ---

struct thread_info {
  std::uint32_t tid = 0;       // stable small id (ring index + 1)
  std::string name;            // last set_thread_name, or "thread-<tid>"
  std::uint64_t written = 0;   // records ever emitted
  std::uint64_t dropped = 0;   // overwritten by wraparound
};

struct collected_event {
  trace_record rec;
  std::uint32_t tid = 0;
};

struct trace_collection {
  std::vector<thread_info> threads;
  std::vector<collected_event> events;  // merged, non-decreasing in rec.nanos
  std::uint64_t total_dropped() const noexcept;
};

// Snapshot every ring and merge into one time-ordered stream. See the
// header comment for the consistency contract.
trace_collection collect();

}  // namespace ktrace
}  // namespace mach
