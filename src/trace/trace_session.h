// trace_session — RAII driver for whole-program observability, used by the
// bench harness: construct one at the top of main() and every `bench_e*`
// run can emit a trace with
//
//     MACHLOCK_TRACE=out.json ./bench_e1_spin_policies
//
// The default constructor reads the environment (full matrix in
// docs/OBSERVABILITY.md):
//   MACHLOCK_TRACE=<path>    enable tracing; on destruction collect every
//                            ring and write <path> (Chrome trace_event JSON
//                            if the path ends in ".json", plain text
//                            otherwise), then report counts on stderr.
//   MACHLOCK_LOCKSTAT=json   on destruction, print the lock registry as
//                            JSON on stdout (machine-readable lockstat;
//                            independent of MACHLOCK_TRACE).
//   MACHLOCK_METRICS=<path>  enable the kmon metrics registry and its
//                            periodic rate sampler (interval from
//                            MACHLOCK_METRICS_INTERVAL_MS, default 200);
//                            on destruction export every metric to <path>
//                            (Prometheus text if it ends in ".prom", JSON
//                            otherwise).
//   MACHLOCK_BENCH_JSON=<dir> collect every harness table this process
//                            prints and write <dir>/BENCH_<name>.json on
//                            destruction (see harness/bench_json.h).
//   MACHLOCK_DEADLOCK=1      enable the wait-for-graph; on destruction
//                            report any cycle still present.
//   MACHLOCK_LOCK_ORDER=1    enable the lock-order validator; on
//                            destruction report recorded violations.
//   MACHLOCK_WATCHDOG=1      start the stall watchdog (deadlines from
//                            MACHLOCK_WATCHDOG_{POLL,SPIN,BLOCK,WRITER}_MS,
//                            MACHLOCK_WATCHDOG_PANIC=1 to panic on a trip).
//   MACHLOCK_SPANS=1         enable kspan request-scoped causal tracing
//                            (see trace/kspan.h); pairs with MACHLOCK_TRACE
//                            for flow events and tools/span_report.
//   MACHLOCK_TRACE_RING_CAP=<n>  per-thread trace ring capacity in records
//                            (applied before tracing starts; undersized
//                            rings surface as machlock_trace_dropped_total).
//   MACHLOCK_PROF=<path|1>   start the kprof sampling profiler (see
//                            prof/kprof.h); on destruction export the
//                            profile + flight recorder as schema-stamped
//                            JSON to <path> ("1" means ./kprof.json).
//                            Implies kmon::enable() so the flight recorder
//                            has live counters to snapshot. Sampling rate
//                            from MACHLOCK_PROF_HZ (default 97 — prime, so
//                            ticks do not phase-lock with periodic work),
//                            snapshot cadence from MACHLOCK_PROF_FLIGHT_MS
//                            (default 20).
#pragma once

#include <string>

namespace mach {

class trace_session {
 public:
  enum class format { chrome_json, text };

  // Environment-driven (see above); tracing inactive if MACHLOCK_TRACE is
  // unset (the other env toggles are still honored).
  trace_session();
  // Explicit session: enable now, export to `path` on destruction. Only
  // drives ktrace; the env toggles are not read.
  trace_session(std::string path, format f);
  ~trace_session();

  trace_session(const trace_session&) = delete;
  trace_session& operator=(const trace_session&) = delete;

  bool active() const noexcept { return active_; }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  format format_ = format::chrome_json;
  bool active_ = false;
  // What this session turned on (and must turn off / report).
  std::string metrics_path_;
  std::string prof_path_;
  bool started_prof_ = false;
  bool started_sampler_ = false;
  bool started_watchdog_ = false;
  bool started_spans_ = false;
  bool report_deadlock_ = false;
  bool report_lock_order_ = false;
};

}  // namespace mach
