// trace_session — RAII driver for a whole-program trace, used by the bench
// harness: construct one at the top of main() and every `bench_e*` run can
// emit a trace with
//
//     MACHLOCK_TRACE=out.json ./bench_e1_spin_policies
//
// The default constructor reads the environment:
//   MACHLOCK_TRACE=<path>   enable tracing; on destruction collect every
//                           ring and write <path> (Chrome trace_event JSON
//                           if the path ends in ".json", plain text
//                           otherwise), then report counts on stderr.
//   MACHLOCK_LOCKSTAT=json  on destruction, print the lock registry as
//                           JSON on stdout (machine-readable lockstat;
//                           independent of MACHLOCK_TRACE).
#pragma once

#include <string>

namespace mach {

class trace_session {
 public:
  enum class format { chrome_json, text };

  // Environment-driven (see above); inactive if MACHLOCK_TRACE is unset.
  trace_session();
  // Explicit session: enable now, export to `path` on destruction.
  trace_session(std::string path, format f);
  ~trace_session();

  trace_session(const trace_session&) = delete;
  trace_session& operator=(const trace_session&) = delete;

  bool active() const noexcept { return active_; }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  format format_ = format::chrome_json;
  bool active_ = false;
};

}  // namespace mach
