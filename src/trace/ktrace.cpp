#include "trace/ktrace.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "trace/kspan.h"

namespace mach {

namespace {

struct kind_meta {
  const char* label;
  const char* category;
  bool is_span;
};

const kind_meta& meta_for(trace_kind k) noexcept {
  static const kind_meta table[] = {
      {"none", "none", false},
      {"lock-wait", "sync", true},
      {"lock-held", "sync", true},
      {"read-wait", "sync", true},
      {"write-wait", "sync", true},
      {"upgrade-wait", "sync", true},
      {"write-held", "sync", true},
      {"assert-wait", "sched", false},
      {"blocked", "sched", true},
      {"wakeup", "sched", false},
      {"ref-take", "kern", false},
      {"ref-release", "kern", false},
      {"ref-deactivate", "kern", false},
      {"barrier-round", "smp", true},
      {"barrier-isr", "smp", true},
      {"shootdown", "vm", true},
      {"shootdown-post", "vm", false},
      {"shootdown-excluded", "vm", false},
      {"rpc-translate", "ipc", true},
      {"rpc-dispatch", "ipc", true},
      {"span-begin", "span", false},
      {"span-end", "span", true},
      {"span-send", "span", false},
      {"span-recv", "span", false},
      {"span-unblock", "span", false},
      {"span-blocked", "span", false},
      {"span-bind", "span", false},
  };
  static_assert(sizeof(table) / sizeof(table[0]) ==
                static_cast<std::size_t>(trace_kind::kind_count));
  auto i = static_cast<std::size_t>(k);
  if (i >= static_cast<std::size_t>(trace_kind::kind_count)) i = 0;
  return table[i];
}

}  // namespace

const char* trace_kind_label(trace_kind k) noexcept { return meta_for(k).label; }
const char* trace_kind_category(trace_kind k) noexcept { return meta_for(k).category; }
bool trace_kind_is_span(trace_kind k) noexcept { return meta_for(k).is_span; }

namespace ktrace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// One ring per thread that ever emitted. The owning thread is the only
// writer; `head` counts records ever written (the slot index is
// head % capacity), released so a collector that acquires it sees the
// corresponding slots. Rings are registered globally and never freed, so
// the collector can read rings of exited threads.
struct trace_ring {
  explicit trace_ring(std::size_t cap, std::uint32_t id, std::string nm)
      : slots(cap), tid(id), name(std::move(nm)) {}

  std::vector<trace_record> slots;
  std::atomic<std::uint64_t> head{0};
  std::uint32_t tid;
  std::string name;  // guarded by registry mutex

  void push(const trace_record& r) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    slots[h % slots.size()] = r;
    head.store(h + 1, std::memory_order_release);
  }
};

struct ring_registry {
  std::mutex m;
  std::vector<std::unique_ptr<trace_ring>> rings;
  std::size_t default_capacity = 8192;
};

// Leaked (threads may trace during static destruction).
ring_registry& registry() {
  static ring_registry* r = new ring_registry;
  return *r;
}

thread_local trace_ring* tl_ring = nullptr;
thread_local std::string* tl_pending_name = nullptr;

trace_ring& my_ring() {
  if (tl_ring != nullptr) return *tl_ring;
  ring_registry& reg = registry();
  std::lock_guard<std::mutex> g(reg.m);
  auto tid = static_cast<std::uint32_t>(reg.rings.size() + 1);
  std::string name = tl_pending_name != nullptr ? *tl_pending_name
                                                : "thread-" + std::to_string(tid);
  reg.rings.push_back(std::make_unique<trace_ring>(reg.default_capacity, tid, std::move(name)));
  tl_ring = reg.rings.back().get();
  return *tl_ring;
}

}  // namespace

namespace detail {

void emit_slow(trace_kind kind, const char* name, std::uint64_t arg1, std::uint64_t arg2,
               std::uint64_t nanos) noexcept {
  trace_record r;
  r.nanos = nanos;
  r.arg1 = arg1;
  r.arg2 = arg2;
  r.ctx = kspan::current();  // request attribution; 0 when no span active
  r.name = name;
  r.kind = kind;
  my_ring().push(r);
}

}  // namespace detail

void enable() noexcept { detail::g_enabled.store(true, std::memory_order_relaxed); }
void disable() noexcept { detail::g_enabled.store(false, std::memory_order_relaxed); }

void set_thread_name(std::string name) {
  // Stash for the ring this thread may create later...
  static thread_local std::string pending;
  pending = std::move(name);
  tl_pending_name = &pending;
  // ...and rename an already-created ring in place.
  if (tl_ring != nullptr) {
    std::lock_guard<std::mutex> g(registry().m);
    tl_ring->name = pending;
  }
}

void set_default_ring_capacity(std::size_t records) {
  ring_registry& reg = registry();
  std::lock_guard<std::mutex> g(reg.m);
  reg.default_capacity = records == 0 ? 1 : records;
}

std::size_t default_ring_capacity() noexcept {
  ring_registry& reg = registry();
  std::lock_guard<std::mutex> g(reg.m);
  return reg.default_capacity;
}

void reset() {
  ring_registry& reg = registry();
  std::lock_guard<std::mutex> g(reg.m);
  for (auto& ring : reg.rings) {
    ring->head.store(0, std::memory_order_release);
    std::fill(ring->slots.begin(), ring->slots.end(), trace_record{});
  }
}

std::uint64_t trace_collection::total_dropped() const noexcept {
  std::uint64_t sum = 0;
  for (const thread_info& t : threads) sum += t.dropped;
  return sum;
}

trace_collection collect() {
  trace_collection out;
  ring_registry& reg = registry();
  std::lock_guard<std::mutex> g(reg.m);
  for (const auto& ring : reg.rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const auto cap = static_cast<std::uint64_t>(ring->slots.size());
    const std::uint64_t n = std::min(head, cap);

    thread_info info;
    info.tid = ring->tid;
    info.name = ring->name;
    info.written = head;
    info.dropped = head > cap ? head - cap : 0;
    out.threads.push_back(std::move(info));

    for (std::uint64_t i = head - n; i < head; ++i) {
      const trace_record& r = ring->slots[i % cap];
      if (r.kind == trace_kind::none) continue;
      out.events.push_back({r, ring->tid});
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const collected_event& a, const collected_event& b) {
                     return a.rec.nanos < b.rec.nanos;
                   });
  return out;
}

}  // namespace ktrace
}  // namespace mach
