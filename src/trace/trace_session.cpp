#include "trace/trace_session.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/bench_json.h"
#include "metrics/kmetrics.h"
#include "metrics/kmon.h"
#include "metrics/watchdog.h"
#include "prof/kprof.h"
#include "sync/deadlock.h"
#include "sync/lock_order.h"
#include "sync/lockstat.h"
#include "trace/kspan.h"
#include "trace/ktrace.h"
#include "trace/trace_export.h"

namespace mach {

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool env_flag(const char* var) {
  const char* v = std::getenv(var);
  return v != nullptr && v[0] == '1';
}

}  // namespace

trace_session::trace_session() {
  // Ring sizing must precede ktrace::enable(): rings are carved per thread
  // at first emit and keep their capacity for the process lifetime.
  if (const char* cap = std::getenv("MACHLOCK_TRACE_RING_CAP")) {
    const long v = std::atol(cap);
    if (v > 0) ktrace::set_default_ring_capacity(static_cast<std::size_t>(v));
  }
  const char* path = std::getenv("MACHLOCK_TRACE");
  if (path != nullptr && path[0] != '\0') {
    path_ = path;
    format_ = ends_with(path_, ".json") ? format::chrome_json : format::text;
    active_ = true;
    ktrace::enable();
  }
  if (env_flag("MACHLOCK_SPANS")) {
    kspan::enable();
    started_spans_ = true;
  }
  const char* metrics = std::getenv("MACHLOCK_METRICS");
  if (metrics != nullptr && metrics[0] != '\0') {
    metrics_path_ = metrics;
    kmon::enable();
    int interval_ms = 200;
    if (const char* iv = std::getenv("MACHLOCK_METRICS_INTERVAL_MS")) {
      const int v = std::atoi(iv);
      if (v > 0) interval_ms = v;
    }
    if (!kmon::sampler::instance().running()) {
      kmon::sampler::instance().start(std::chrono::milliseconds(interval_ms));
      started_sampler_ = true;
    }
  }
  const char* prof = std::getenv("MACHLOCK_PROF");
  if (prof != nullptr && prof[0] != '\0' && !kprof::sampler::instance().running()) {
    prof_path_ = std::strcmp(prof, "1") == 0 ? "kprof.json" : prof;
    // The flight recorder snapshots kmon counters; without the registry
    // enabled every snapshot would be zeros.
    kmon::enable();
    double hz = 97.0;
    if (const char* h = std::getenv("MACHLOCK_PROF_HZ")) {
      const double v = std::atof(h);
      if (v > 0) hz = v;
    }
    int flight_ms = 20;
    if (const char* f = std::getenv("MACHLOCK_PROF_FLIGHT_MS")) {
      const int v = std::atoi(f);
      if (v > 0) flight_ms = v;
    }
    kprof::sampler::instance().start(hz, std::chrono::milliseconds(flight_ms));
    started_prof_ = true;
  }
  if (env_flag("MACHLOCK_DEADLOCK")) {
    wait_graph::instance().set_enabled(true);
    report_deadlock_ = true;
  }
  if (env_flag("MACHLOCK_LOCK_ORDER")) {
    lock_order_validator::instance().set_enabled(true);
    report_lock_order_ = true;
  }
  if (env_flag("MACHLOCK_WATCHDOG") && !watchdog::instance().running()) {
    watchdog::instance().start(watchdog_config_from_env());
    started_watchdog_ = true;
  }
}

trace_session::trace_session(std::string path, format f)
    : path_(std::move(path)), format_(f), active_(true) {
  ktrace::enable();
}

trace_session::~trace_session() {
  // Stop the monitors this session started before exporting, so their
  // final state is included and their threads are gone before teardown.
  if (started_watchdog_) watchdog::instance().stop();
  if (started_prof_) {
    kprof::sampler::instance().stop();
    const kprof::profile p = kprof::sampler::instance().snapshot();
    if (kprof::export_file(prof_path_)) {
      std::fprintf(stderr,
                   "kprof: wrote %llu ticks over %llu ms (%zu sites, %zu flight snapshots) to %s\n",
                   static_cast<unsigned long long>(p.ticks),
                   static_cast<unsigned long long>(p.duration_nanos / 1'000'000),
                   p.sites.size(), p.flight.size(), prof_path_.c_str());
    } else {
      std::fprintf(stderr, "kprof: FAILED to write %s\n", prof_path_.c_str());
    }
  }
  if (started_sampler_) kmon::sampler::instance().stop();
  if (started_spans_) kspan::disable();
  if (active_) {
    ktrace::disable();
    ktrace::trace_collection c = ktrace::collect();
    // Dropped records are an observability defect in their own right;
    // surface them in kmon so dashboards notice undersized rings.
    if (kmon::enabled() && c.total_dropped() != 0) {
      kmet().trace_dropped.inc(c.total_dropped());
    }
    const bool ok = format_ == format::chrome_json ? export_chrome_json_file(c, path_)
                                                   : export_text_file(c, path_);
    if (ok) {
      std::fprintf(stderr, "ktrace: wrote %zu events from %zu threads to %s (%llu dropped)\n",
                   c.events.size(), c.threads.size(), path_.c_str(),
                   static_cast<unsigned long long>(c.total_dropped()));
    } else {
      std::fprintf(stderr, "ktrace: FAILED to write %s\n", path_.c_str());
    }
  }
  if (!metrics_path_.empty()) {
    if (kmon::export_file(metrics_path_)) {
      std::fprintf(stderr, "kmon: wrote %zu metrics to %s\n",
                   kmon::registry::instance().live_metrics(), metrics_path_.c_str());
    } else {
      std::fprintf(stderr, "kmon: FAILED to write %s\n", metrics_path_.c_str());
    }
  }
  if (report_deadlock_) {
    if (auto cyc = wait_graph::instance().find_cycle()) {
      std::fprintf(stderr, "deadlock: wait-graph cycle at exit: %s\n", cyc->description.c_str());
    } else {
      std::fprintf(stderr, "deadlock: no wait-graph cycle at exit\n");
    }
  }
  if (report_lock_order_) {
    const std::vector<std::string> v = lock_order_validator::instance().take_violations();
    std::fprintf(stderr, "lock-order: %zu violation(s) recorded\n", v.size());
    for (const std::string& s : v) std::fprintf(stderr, "lock-order: %s\n", s.c_str());
  }
  // Machine-readable lockstat hook, independent of tracing.
  const char* lockstat = std::getenv("MACHLOCK_LOCKSTAT");
  if (lockstat != nullptr && std::strcmp(lockstat, "json") == 0) {
    std::string json = lock_registry::instance().snapshot_json();
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
  }
  if (const std::string out = bench_json::flush(); !out.empty()) {
    std::fprintf(stderr, "bench_json: wrote %s\n", out.c_str());
  }
}

}  // namespace mach
