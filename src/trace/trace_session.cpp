#include "trace/trace_session.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sync/lockstat.h"
#include "trace/ktrace.h"
#include "trace/trace_export.h"

namespace mach {

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

trace_session::trace_session() {
  const char* path = std::getenv("MACHLOCK_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  path_ = path;
  format_ = ends_with(path_, ".json") ? format::chrome_json : format::text;
  active_ = true;
  ktrace::enable();
}

trace_session::trace_session(std::string path, format f)
    : path_(std::move(path)), format_(f), active_(true) {
  ktrace::enable();
}

trace_session::~trace_session() {
  if (active_) {
    ktrace::disable();
    ktrace::trace_collection c = ktrace::collect();
    const bool ok = format_ == format::chrome_json ? export_chrome_json_file(c, path_)
                                                   : export_text_file(c, path_);
    if (ok) {
      std::fprintf(stderr, "ktrace: wrote %zu events from %zu threads to %s (%llu dropped)\n",
                   c.events.size(), c.threads.size(), path_.c_str(),
                   static_cast<unsigned long long>(c.total_dropped()));
    } else {
      std::fprintf(stderr, "ktrace: FAILED to write %s\n", path_.c_str());
    }
  }
  // Machine-readable lockstat hook, independent of tracing.
  const char* lockstat = std::getenv("MACHLOCK_LOCKSTAT");
  if (lockstat != nullptr && std::strcmp(lockstat, "json") == 0) {
    std::string json = lock_registry::instance().snapshot_json();
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
  }
}

}  // namespace mach
