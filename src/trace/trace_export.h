// Exporters for a collected ktrace stream.
//
// Two formats:
//   * Chrome trace_event JSON — loadable in chrome://tracing and Perfetto.
//     Span kinds become complete ("X") events with microsecond ts/dur so
//     lock hold/wait intervals, blocked intervals, and shootdown rounds
//     render as bars on each thread's track; instant kinds become
//     thread-scoped instant ("i") events. Per-thread drop counts are
//     attached as process metadata so truncation is visible in the UI.
//   * Plain text — one line per event, for terminal reconstruction of a
//     timeline (examples/lock_doctor.cpp) and for grepping in CI logs.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/ktrace.h"

namespace mach {

// Chrome trace_event JSON ({"traceEvents": [...]}) to a stream/file.
void export_chrome_json(const ktrace::trace_collection& c, std::ostream& os);
bool export_chrome_json_file(const ktrace::trace_collection& c, const std::string& path);

// Plain-text dump, one event per line, time-ordered. `max_events` == 0
// means all; otherwise the most recent `max_events` are printed.
void export_text(const ktrace::trace_collection& c, std::ostream& os,
                 std::size_t max_events = 0);
bool export_text_file(const ktrace::trace_collection& c, const std::string& path);

// Escape a string for embedding in a JSON string literal (shared with
// lock_registry::snapshot_json).
std::string json_escape(const std::string& s);

}  // namespace mach
