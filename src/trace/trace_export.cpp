#include "trace/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <unordered_set>

#include "trace/kspan.h"

namespace mach {

namespace {

// Chrome wants microseconds; keep nanosecond precision as a fraction.
double to_us(std::uint64_t nanos) { return static_cast<double>(nanos) / 1000.0; }

// Event display name: "<label>:<subject>" when the record carries one.
std::string event_name(const trace_record& r) {
  std::string n = trace_kind_label(r.kind);
  if (r.name != nullptr && r.name[0] != '\0') {
    n += ':';
    n += r.name;
  }
  return n;
}

void write_common(std::ostream& os, const ktrace::collected_event& e, const char* ph,
                  double ts_us) {
  char buf[64];
  os << "{\"name\":\"" << json_escape(event_name(e.rec)) << "\",\"cat\":\""
     << trace_kind_category(e.rec.kind) << "\",\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":"
     << e.tid << ",\"ts\":";
  std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
  os << buf;
}

void write_args(std::ostream& os, const trace_record& r) {
  os << ",\"args\":{\"arg1\":\"0x";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIx64, r.arg1);
  os << buf << "\",\"arg2\":" << r.arg2;
  if (r.ctx != 0) {
    // Request attribution: the emitting thread's kspan context.
    std::snprintf(buf, sizeof(buf), "0x%x", span_trace_id(r.ctx));
    os << ",\"trace\":\"" << buf << "\"";
    std::snprintf(buf, sizeof(buf), "0x%x", span_span_id(r.ctx));
    os << ",\"span\":\"" << buf << "\"";
  }
  os << "}}";
}

// A kspan flow event: `ph:"s"` leaving the sender (message enqueued, or a
// wakeup issued), `ph:"t"` arriving (dequeue / unblock), `ph:"f"` closing
// the chain at the request root's end. Chrome links phases sharing
// name+cat+id, so all flow events are named "kspan" and keyed by trace id;
// `bp:"e"` binds steps to their enclosing slice.
void write_flow(std::ostream& os, std::uint32_t tid, const char* ph, std::uint32_t trace_id,
                double ts_us) {
  char buf[64];
  os << "{\"name\":\"kspan\",\"cat\":\"span\",\"ph\":\"" << ph << "\",\"id\":" << trace_id
     << ",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
  std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
  os << buf;
  if (ph[0] != 's') os << ",\"bp\":\"e\"";
  os << "}";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void export_chrome_json(const ktrace::trace_collection& c, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: process and thread names, so tracks are labelled.
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"machlock\"}}";
  for (const ktrace::thread_info& t : c.threads) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t.tid
       << ",\"args\":{\"name\":\"" << json_escape(t.name) << "\"}}";
  }

  // Trace ids whose flow chain opened with an "s" phase: a terminating
  // "f" is only legal (and only drawn) after a start.
  std::unordered_set<std::uint32_t> flow_started;

  for (const ktrace::collected_event& e : c.events) {
    const trace_record& r = e.rec;
    sep();
    if (trace_kind_is_span(r.kind)) {
      // nanos is the span END; arg2 its duration.
      const std::uint64_t dur = r.arg2;
      const std::uint64_t start = r.nanos >= dur ? r.nanos - dur : 0;
      write_common(os, e, "X", to_us(start));
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", to_us(dur));
      os << ",\"dur\":" << buf;
    } else {
      write_common(os, e, "i", to_us(r.nanos));
      os << ",\"s\":\"t\"";
    }
    write_args(os, r);

    // kspan cross-thread hops additionally emit Chrome flow events so the
    // request visibly threads across kthread tracks in the viewer.
    if (r.kind == trace_kind::span_send) {
      const std::uint32_t id = span_trace_id(r.arg1);  // arg1 = message ctx
      if (id != 0) {
        sep();
        write_flow(os, e.tid, "s", id, to_us(r.nanos));
        flow_started.insert(id);
      }
    } else if (r.kind == trace_kind::span_recv || r.kind == trace_kind::span_unblock) {
      const std::uint32_t id = span_trace_id(r.arg1);  // arg1 = carried ctx
      if (id != 0 && flow_started.count(id) != 0) {
        sep();
        write_flow(os, e.tid, "t", id, to_us(r.nanos));
      }
    } else if (r.kind == trace_kind::span_end && r.arg1 == 1) {
      // The request root closed: finish its flow chain, if one started.
      const std::uint32_t id = span_trace_id(r.ctx);
      if (id != 0 && flow_started.count(id) != 0) {
        sep();
        write_flow(os, e.tid, "f", id, to_us(r.nanos));
      }
    }
  }
  os << "],\n\"otherData\":{";
  os << "\"droppedRecords\":" << c.total_dropped();
  for (const ktrace::thread_info& t : c.threads) {
    if (t.dropped == 0) continue;
    os << ",\"droppedOnTid" << t.tid << "\":" << t.dropped;
  }
  os << "}}\n";
}

bool export_chrome_json_file(const ktrace::trace_collection& c, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  export_chrome_json(c, f);
  return static_cast<bool>(f);
}

void export_text(const ktrace::trace_collection& c, std::ostream& os, std::size_t max_events) {
  // Thread names, indexed for the per-line prefix.
  std::vector<std::string> names;
  for (const ktrace::thread_info& t : c.threads) {
    if (names.size() < t.tid + 1) names.resize(t.tid + 1);
    names[t.tid] = t.name;
  }
  const std::uint64_t t0 = c.events.empty() ? 0 : c.events.front().rec.nanos;
  std::size_t begin = 0;
  if (max_events != 0 && c.events.size() > max_events) begin = c.events.size() - max_events;
  if (begin != 0) {
    os << "... (" << begin << " earlier events elided)\n";
  }
  for (std::size_t i = begin; i < c.events.size(); ++i) {
    const ktrace::collected_event& e = c.events[i];
    const trace_record& r = e.rec;
    char line[256];
    const char* who = e.tid < names.size() ? names[e.tid].c_str() : "?";
    if (trace_kind_is_span(r.kind)) {
      std::snprintf(line, sizeof(line),
                    "%12.3f us  [%-16s] %-18s %-24s dur=%.3f us  arg=0x%" PRIx64 "\n",
                    static_cast<double>(r.nanos - t0) / 1000.0, who, trace_kind_label(r.kind),
                    r.name != nullptr ? r.name : "-", static_cast<double>(r.arg2) / 1000.0,
                    r.arg1);
    } else {
      std::snprintf(line, sizeof(line),
                    "%12.3f us  [%-16s] %-18s %-24s arg1=0x%" PRIx64 " arg2=%" PRIu64 "\n",
                    static_cast<double>(r.nanos - t0) / 1000.0, who, trace_kind_label(r.kind),
                    r.name != nullptr ? r.name : "-", r.arg1, r.arg2);
    }
    os << line;
  }
  if (c.total_dropped() != 0) {
    os << "(" << c.total_dropped() << " records dropped to ring wraparound)\n";
  }
}

bool export_text_file(const ktrace::trace_collection& c, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  export_text(c, f);
  return static_cast<bool>(f);
}

}  // namespace mach
