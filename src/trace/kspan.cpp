#include "trace/kspan.h"

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "metrics/kmetrics.h"
#include "sync/deadlock.h"  // current_thread_token

namespace mach::kspan {

namespace detail {

std::atomic<bool> g_enabled{false};
thread_local span_ctx_t tl_ctx = 0;

namespace {

// Trace ids name requests, span ids name legs; both only need uniqueness
// over a trace's lifetime, so plain wrapping counters are enough. Ids start
// at 1 so a zero context always means "none".
std::atomic<std::uint32_t> g_next_trace{1};
std::atomic<std::uint32_t> g_next_span{2};

std::uint32_t next_nonzero(std::atomic<std::uint32_t>& c) noexcept {
  std::uint32_t id = c.fetch_add(1, std::memory_order_relaxed);
  while (id == 0) id = c.fetch_add(1, std::memory_order_relaxed);  // skip wrap-to-zero
  return id;
}

// Per-request-kind latency histograms, created on first use and leaked
// (kmon registry discipline: metrics with static storage may outlive main).
// Kind names are the const char* literals passed to the scopes; matching is
// by string value so two literals with equal text share one histogram.
struct kind_hist_registry {
  std::mutex m;
  std::vector<std::pair<std::string, std::unique_ptr<kmon::histogram>>> hists;
};

kind_hist_registry& kind_hists() {
  static kind_hist_registry* r = new kind_hist_registry;
  return *r;
}

kmon::histogram& kind_histogram(const char* kind) {
  kind_hist_registry& reg = kind_hists();
  std::lock_guard<std::mutex> g(reg.m);
  for (auto& [name, h] : reg.hists) {
    if (name == kind) return *h;
  }
  reg.hists.emplace_back(kind, std::make_unique<kmon::histogram>(
                                   "machlock_span_nanos",
                                   "kspan span latency by request/span kind", "kind", kind));
  return *reg.hists.back().second;
}

thread_local bool t_bound = false;

}  // namespace

span_ctx_t make_root() noexcept {
  return (static_cast<span_ctx_t>(next_nonzero(g_next_trace)) << 32) | 1u;
}

span_ctx_t make_child(span_ctx_t parent) noexcept {
  return (parent & 0xFFFF'FFFF'0000'0000ull) |
         static_cast<span_ctx_t>(next_nonzero(g_next_span));
}

void bind_thread() noexcept {
  if (t_bound || !ktrace::enabled()) return;
  t_bound = true;
  ktrace::emit(trace_kind::span_bind,
               nullptr, reinterpret_cast<std::uint64_t>(current_thread_token()));
}

void end_scope(const char* kind, [[maybe_unused]] span_ctx_t ctx, std::uint64_t start_nanos,
               bool root) noexcept {
  // `ctx` is still installed in tl_ctx here (the scope dtor restores prev_
  // only after this call), so emit_slow's stamp carries it.
  const std::uint64_t end = now_nanos();
  const std::uint64_t dur = end - start_nanos;
  // The scope's extent as a span record; arg1 = 1 marks the request root so
  // offline analysis can tell a request's wall time from a leg's. The
  // record's ctx stamp (emit_slow) carries trace/span ids.
  ktrace::emit_span(trace_kind::span_end, kind, root ? 1 : 0, dur, end);
  if (kmon::enabled()) {
    kind_histogram(kind).record(dur);
    if (root) {
      kmet().span_requests.inc();
    } else {
      kmet().span_adoptions.inc();
    }
  }
}

}  // namespace detail

void enable() noexcept { detail::g_enabled.store(true, std::memory_order_relaxed); }
void disable() noexcept { detail::g_enabled.store(false, std::memory_order_relaxed); }

}  // namespace mach::kspan
