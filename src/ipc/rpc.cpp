#include "ipc/rpc.h"

#include "base/panic.h"
#include "metrics/kmetrics.h"
#include "trace/kspan.h"
#include "trace/ktrace.h"

namespace mach {
namespace {

struct atomic_rpc_counters {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> invalid_name{0};
  std::atomic<std::uint64_t> terminated{0};
  std::atomic<std::uint64_t> op_failures{0};
  std::atomic<std::uint64_t> refs_released_by_interface{0};
  std::atomic<std::uint64_t> refs_consumed_by_operation{0};
};

atomic_rpc_counters g_counters;

// In-flight gauge + latency bookkeeping covering every msg_rpc return path.
struct rpc_flight_scope {
  std::uint64_t start = 0;
  rpc_flight_scope() {
    kmet().ipc_rpcs.inc();
    kmet().ipc_rpc_in_flight.add(1);
    if (kmon::enabled()) start = now_nanos();
  }
  ~rpc_flight_scope() {
    kmet().ipc_rpc_in_flight.sub(1);
    if (start != 0) kmet().ipc_rpc_nanos.record(now_nanos() - start);
  }
};

}  // namespace

void rpc_router::register_op(std::uint32_t op, const char* name, handler_fn fn) {
  MACH_ASSERT(ops_.find(op) == ops_.end(), std::string("duplicate RPC op registration: ") + name);
  ops_.emplace(op, std::make_pair(name, std::move(fn)));
}

bool rpc_router::has(std::uint32_t op) const { return ops_.find(op) != ops_.end(); }

const char* rpc_router::op_name(std::uint32_t op) const {
  auto it = ops_.find(op);
  return it == ops_.end() ? "?" : it->second.first;
}

kern_return_t rpc_router::dispatch(kobject& obj, const message& req, message& reply) const {
  auto it = ops_.find(req.op);
  if (it == ops_.end()) return KERN_INVALID_OP;
  return it->second.second(obj, req, reply);
}

kern_return_t msg_rpc(ipc_space& space, port_name_t name, const message& req, message& reply,
                      const rpc_router& router, ref_discipline discipline) {
  g_counters.calls.fetch_add(1, std::memory_order_relaxed);
  const rpc_flight_scope flight;
  reply = message{req.op};

  // Steps 1–2 as one traced span: name → port → object is the paper's
  // two-level translation, and both clones happen under it.
  const std::uint64_t xlate_start = ktrace::enabled() ? now_nanos() : 0;
  auto xlate_done = [&] {
    if (xlate_start != 0) {
      const std::uint64_t end = now_nanos();
      ktrace::emit_span(trace_kind::rpc_translate, "translate",
                        static_cast<std::uint64_t>(name), end - xlate_start, end);
    }
  };

  // Step 1: the request "message" names a port; holding the space's table
  // reference clone keeps the port alive for the call's duration.
  ref_ptr<port> p = space.lookup(name);
  if (!p) {
    xlate_done();
    g_counters.invalid_name.fetch_add(1, std::memory_order_relaxed);
    reply.ret = KERN_INVALID_NAME;
    return KERN_INVALID_NAME;
  }

  // Step 2: port → object translation clones an object reference; a
  // shutdown that already cleared the translation makes this fail cleanly.
  ref_ptr<kobject> obj = p->translate();
  xlate_done();
  kmet().ipc_translations.inc();
  if (!obj) {
    g_counters.terminated.fetch_add(1, std::memory_order_relaxed);
    reply.ret = KERN_TERMINATED;
    return KERN_TERMINATED;
  }

  // Step 3: the operation executes under the object's own locking; the
  // references above pin both data structures.
  const std::uint64_t dispatch_start = ktrace::enabled() ? now_nanos() : 0;
  kern_return_t kr = router.dispatch(*obj, req, reply);
  if (dispatch_start != 0) {
    const std::uint64_t end = now_nanos();
    ktrace::emit_span(trace_kind::rpc_dispatch, router.op_name(req.op),
                      static_cast<std::uint64_t>(req.op), end - dispatch_start, end);
  }
  reply.ret = kr;

  // Step 4: reference release per discipline.
  if (discipline == ref_discipline::mach30_operation_consumes && kr == KERN_SUCCESS) {
    g_counters.refs_consumed_by_operation.fetch_add(1, std::memory_order_relaxed);
    obj.reset();  // "a successful operation consumes the object reference"
  } else {
    g_counters.refs_released_by_interface.fetch_add(1, std::memory_order_relaxed);
    obj.reset();  // interface code releases
  }

  if (kr == KERN_SUCCESS) {
    g_counters.ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_counters.op_failures.fetch_add(1, std::memory_order_relaxed);
  }
  // Step 5: reply returns the result; the port reference dies with `p`.
  return kr;
}

std::optional<message> rpc_call(port& service, message req, std::chrono::milliseconds timeout) {
  // One reply port per client thread, reused across calls.
  thread_local ref_ptr<port> reply_port = make_object<port>("thread-reply-port");
  req.reply_to = reply_port;
  if (service.send(std::move(req)) != KERN_SUCCESS) return std::nullopt;
  return reply_port->receive(timeout);
}

rpc_counters rpc_stats() noexcept {
  rpc_counters c;
  c.calls = g_counters.calls.load(std::memory_order_relaxed);
  c.ok = g_counters.ok.load(std::memory_order_relaxed);
  c.invalid_name = g_counters.invalid_name.load(std::memory_order_relaxed);
  c.terminated = g_counters.terminated.load(std::memory_order_relaxed);
  c.op_failures = g_counters.op_failures.load(std::memory_order_relaxed);
  c.refs_released_by_interface =
      g_counters.refs_released_by_interface.load(std::memory_order_relaxed);
  c.refs_consumed_by_operation =
      g_counters.refs_consumed_by_operation.load(std::memory_order_relaxed);
  return c;
}

void reset_rpc_stats() noexcept {
  g_counters.calls.store(0);
  g_counters.ok.store(0);
  g_counters.invalid_name.store(0);
  g_counters.terminated.store(0);
  g_counters.op_failures.store(0);
  g_counters.refs_released_by_interface.store(0);
  g_counters.refs_consumed_by_operation.store(0);
}

kernel_server::kernel_server(ref_ptr<port> service, const rpc_router& router, std::string name)
    : service_(std::move(service)), router_(router) {
  thread_ = kthread::spawn(std::move(name), [this] { loop(); });
}

kernel_server::~kernel_server() { stop(); }

void kernel_server::stop() {
  if (thread_ == nullptr) return;
  stop_.store(true);
  thread_->join();
  thread_.reset();
}

void kernel_server::loop() {
  using namespace std::chrono_literals;
  while (!stop_.load()) {
    std::optional<message> req = service_->receive(20ms);
    if (!req.has_value()) {
      // Timeout: re-check stop. Dead port: the receiver retires (otherwise
      // the instant empty receives would busy-spin).
      service_->lock();
      bool dead = !service_->active();
      service_->unlock();
      if (dead) break;
      continue;
    }
    // Adopt the request's span for the server-side leg: dispatch and the
    // reply send run under the adopted context, so the reply message is
    // stamped with the same trace id and the client's reply receive closes
    // the flow. No-op when the message carries no context.
    kspan::adopt_scope span(req->span_ctx, "serve");
    message reply(req->op);
    ref_ptr<kobject> obj = service_->translate();
    reply.ret = obj ? router_.dispatch(*obj, *req, reply) : KERN_TERMINATED;
    served_.fetch_add(1, std::memory_order_relaxed);
    if (req->reply_to) {
      // Failure to deliver the reply (dead reply port) is the sender's
      // problem, as in Mach.
      (void)req->reply_to->send(std::move(reply));
    }
  }
}

}  // namespace mach
