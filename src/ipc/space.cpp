#include "ipc/space.h"

namespace mach {

ipc_space::ipc_space(const char* name) { simple_lock_init(&own_lock_, name); }

ipc_space::ipc_space(simple_lock_data_t* external) : external_lock_(external) {
  simple_lock_init(&own_lock_, "ipc-space-unused");
}

ipc_space::~ipc_space() {
  // The table's references die with the map; nothing holds our lock now.
}

port_name_t ipc_space::insert(ref_ptr<port> p) {
  simple_lock(lk());
  port_name_t name = next_name_++;
  table_.emplace(name, std::move(p));
  simple_unlock(lk());
  return name;
}

ref_ptr<port> ipc_space::lookup(port_name_t name) {
  simple_lock(lk());
  auto it = table_.find(name);
  ref_ptr<port> r = it != table_.end() ? it->second : ref_ptr<port>{};
  simple_unlock(lk());
  return r;
}

bool ipc_space::remove(port_name_t name) {
  ref_ptr<port> doomed;  // released after the lock is dropped
  simple_lock(lk());
  auto it = table_.find(name);
  bool found = it != table_.end();
  if (found) {
    doomed = std::move(it->second);
    table_.erase(it);
  }
  simple_unlock(lk());
  return found;
}

std::size_t ipc_space::size() const {
  simple_lock(lk());
  std::size_t n = table_.size();
  simple_unlock(lk());
  return n;
}

}  // namespace mach
