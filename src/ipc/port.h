// Ports: protected communication channels with exactly one receiver and
// one or more senders (paper section 3), and the port→object translation
// that backs every kernel operation (section 10).
//
// The port is itself a kernel object: it has a lock, a reference count and
// a deactivation flag, and it *holds one reference* to the object it
// represents ("if the abstraction is not a port, then the port data
// structure contains a pointer to the actual object"). Clearing that
// pointer — shutdown step 2 — is what disables port-to-object translation
// while outstanding references keep both data structures alive.
#pragma once

#include <chrono>
#include <deque>
#include <optional>

#include "ipc/message.h"
#include "kern/object.h"

namespace mach {

class port final : public kobject {
 public:
  explicit port(const char* name = "port");
  ~port() override;

  // --- translation ---
  // Install/replace the represented object (consumes the passed reference).
  void set_translation(ref_ptr<kobject> obj);
  // Translate port → object, cloning a reference under the port lock
  // ("this effectively clones the object reference held by the name
  // translation data structures"). Null if translation was cleared or the
  // port is dead.
  ref_ptr<kobject> translate();
  // Shutdown step 2: "Lock the corresponding port, remove the object
  // pointer and reference from the port, and unlock the port." Returns the
  // removed reference so the caller controls when it dies.
  ref_ptr<kobject> clear_translation();
  bool has_translation();

  // --- messaging ---
  // Enqueue; fails with KERN_TERMINATED on a dead port, KERN_NO_SPACE when
  // the queue limit is reached.
  kern_return_t send(message m);
  // Blocking receive; nullopt on timeout or if the port dies while waiting.
  std::optional<message> receive(
      std::chrono::milliseconds timeout = std::chrono::milliseconds::max());
  std::optional<message> try_receive();

  // Deactivate the port: senders get KERN_TERMINATED, blocked receivers
  // wake empty-handed, queued messages are dropped (their carried
  // references released).
  void destroy_port();

  std::size_t queued();
  void set_queue_limit(std::size_t limit);

  std::uint64_t sends_ok() const { return sends_ok_.load(std::memory_order_relaxed); }
  std::uint64_t sends_failed() const { return sends_failed_.load(std::memory_order_relaxed); }

 private:
  std::deque<message> queue_;
  std::size_t queue_limit_ = 1024;
  ref_ptr<kobject> translation_;
  std::atomic<std::uint64_t> sends_ok_{0};
  std::atomic<std::uint64_t> sends_failed_{0};
};

}  // namespace mach
