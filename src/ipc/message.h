// Messages and kernel return codes.
//
// "A message is a typed collection of data objects; communication is
// performed by sending messages to ports." Our message carries an
// operation code, inline data words, and (optionally) a reply-port right —
// the port reference the paper's section 10 step 1 mentions: "This message
// contains a reference to the port from which it was received."
#pragma once

#include <cstdint>
#include <vector>

#include "kern/object.h"

namespace mach {

enum kern_return_t : int {
  KERN_SUCCESS = 0,
  KERN_FAILURE = 1,
  KERN_INVALID_NAME = 2,      // no such name in the IPC space
  KERN_TERMINATED = 3,        // object deactivated / port dead
  KERN_INVALID_OP = 4,        // no stub registered for the operation
  KERN_NO_SPACE = 5,          // message queue full
  KERN_RESOURCE_SHORTAGE = 6, // allocation failed
  KERN_TIMED_OUT = 7,
  KERN_ABORTED = 8,
};

const char* to_string(kern_return_t kr) noexcept;

class port;

struct message {
  std::uint32_t op = 0;          // operation selector (request) / echo (reply)
  kern_return_t ret = KERN_SUCCESS;  // result code (meaningful in replies)
  std::vector<std::uint64_t> data;   // inline typed data, simplified to words
  ref_ptr<port> reply_to;        // carried port right: holds one reference
  // kspan causal-tracing context (trace/kspan.h), carried across the IPC
  // hop like a trace header: port::send stamps it from the sender's active
  // span when unset, the receiver adopts it (kspan::adopt_scope), and a
  // reply sent under the adopted scope carries the same trace id back.
  // span_sent_nanos is the enqueue stamp port::send records alongside it so
  // the dequeue side can attribute queue-wait time. Both are 0 (and cost
  // nothing) when spans are disabled.
  std::uint64_t span_ctx = 0;
  std::uint64_t span_sent_nanos = 0;

  message() = default;
  message(std::uint32_t op_, std::vector<std::uint64_t> data_ = {})
      : op(op_), data(std::move(data_)) {}
};

}  // namespace mach
