#include "ipc/port.h"

#include "metrics/kmetrics.h"
#include "sched/event.h"
#include "trace/kspan.h"

namespace mach {

namespace {

// kspan-enabled slow path: stamp the sender's active context into the
// message (a pre-stamped context — e.g. a forwarded request — wins) and
// record the enqueue time so the dequeue side can attribute queue wait.
void span_stamp_send(message& m, const port& p) {
  if (m.span_ctx == 0) m.span_ctx = kspan::current();
  if (m.span_ctx == 0) return;
  m.span_sent_nanos = now_nanos();
  ktrace::emit(trace_kind::span_send, p.type_name(), m.span_ctx,
               reinterpret_cast<std::uint64_t>(&p));
}

// Dequeue half: emit the flow-step record and feed the queue-wait
// histogram. Runs outside the port lock.
void span_note_recv(const message& m, const port& p) {
  if (m.span_ctx == 0 || !kspan::enabled()) return;
  const std::uint64_t now = now_nanos();
  const std::uint64_t waited =
      m.span_sent_nanos != 0 && now > m.span_sent_nanos ? now - m.span_sent_nanos : 0;
  ktrace::emit(trace_kind::span_recv, p.type_name(), m.span_ctx, waited);
  kmet().span_queue_nanos.record(waited);
}

}  // namespace

const char* to_string(kern_return_t kr) noexcept {
  switch (kr) {
    case KERN_SUCCESS: return "KERN_SUCCESS";
    case KERN_FAILURE: return "KERN_FAILURE";
    case KERN_INVALID_NAME: return "KERN_INVALID_NAME";
    case KERN_TERMINATED: return "KERN_TERMINATED";
    case KERN_INVALID_OP: return "KERN_INVALID_OP";
    case KERN_NO_SPACE: return "KERN_NO_SPACE";
    case KERN_RESOURCE_SHORTAGE: return "KERN_RESOURCE_SHORTAGE";
    case KERN_TIMED_OUT: return "KERN_TIMED_OUT";
    case KERN_ABORTED: return "KERN_ABORTED";
  }
  return "KERN_?";
}

port::port(const char* name) : kobject(name) {}

port::~port() = default;

void port::set_translation(ref_ptr<kobject> obj) {
  // Drop the old reference outside the port lock (release may destroy).
  ref_ptr<kobject> old;
  lock();
  old = std::move(translation_);
  translation_ = std::move(obj);
  unlock();
}

ref_ptr<kobject> port::translate() {
  lock();
  if (!active() || !translation_) {
    unlock();
    return {};
  }
  // Cloning under the port lock is safe: acquiring a reference never
  // blocks (paper section 8).
  ref_ptr<kobject> r = translation_;
  unlock();
  return r;
}

ref_ptr<kobject> port::clear_translation() {
  lock();
  ref_ptr<kobject> r = std::move(translation_);
  unlock();
  return r;
}

bool port::has_translation() {
  lock();
  bool h = static_cast<bool>(translation_);
  unlock();
  return h;
}

kern_return_t port::send(message m) {
  lock();
  if (!active()) {
    unlock();
    sends_failed_.fetch_add(1, std::memory_order_relaxed);
    return KERN_TERMINATED;
  }
  if (queue_.size() >= queue_limit_) {
    unlock();
    sends_failed_.fetch_add(1, std::memory_order_relaxed);
    return KERN_NO_SPACE;
  }
  if (kspan::enabled()) [[unlikely]] span_stamp_send(m, *this);
  queue_.push_back(std::move(m));
  unlock();
  sends_ok_.fetch_add(1, std::memory_order_relaxed);
  kmet().ipc_messages.inc();
  thread_wakeup_one(&queue_);
  return KERN_SUCCESS;
}

std::optional<message> port::receive(std::chrono::milliseconds timeout) {
  const bool bounded = timeout != std::chrono::milliseconds::max();
  lock();
  for (;;) {
    if (!queue_.empty()) {
      message m = std::move(queue_.front());
      queue_.pop_front();
      unlock();
      span_note_recv(m, *this);
      return m;
    }
    if (!active()) {
      unlock();
      return std::nullopt;
    }
    // assert_wait-then-unlock: atomic with respect to send()'s wakeup.
    assert_wait(&queue_);
    unlock();
    wait_result r = bounded ? thread_block_timeout(timeout) : thread_block();
    if (r == wait_result::timed_out) {
      // A send can land between the timeout firing and this return: the
      // sender's thread_wakeup_one finds no waiter (we already left the
      // wait queue), so nothing re-delivers the message until the next
      // receive — for a single-receiver pattern (an RPC reply port) that
      // message would be silently delayed and mis-delivered to the NEXT
      // call. Re-take the lock and drain once before giving up.
      lock();
      if (!queue_.empty()) {
        message m = std::move(queue_.front());
        queue_.pop_front();
        // If more messages slipped in, their wakeups may also have been
        // consumed against no waiter; re-signal so a blocked receiver
        // (if any) picks them up instead of stranding them.
        bool more = !queue_.empty();
        unlock();
        if (more) thread_wakeup_one(&queue_);
        span_note_recv(m, *this);
        return m;
      }
      unlock();
      return std::nullopt;
    }
    lock();
  }
}

std::optional<message> port::try_receive() {
  lock();
  if (queue_.empty()) {
    unlock();
    return std::nullopt;
  }
  message m = std::move(queue_.front());
  queue_.pop_front();
  unlock();
  span_note_recv(m, *this);
  return m;
}

void port::destroy_port() {
  std::deque<message> drained;
  lock();
  // Deactivate and drain under ONE lock hold. Deactivating after the
  // drain (the old order) left a window where a concurrent send could
  // pass the active() check and enqueue between the two, leaking the
  // message (and any port references it carries) until the port itself
  // died. With the flag flipped first, every send that succeeded is in
  // the queue we drain, and every later send fails KERN_TERMINATED.
  deactivate_locked();
  drained.swap(queue_);
  unlock();
  // Dropped messages release their carried port references here, outside
  // any lock.
  drained.clear();
  // Blocked receivers re-check active() and leave.
  thread_wakeup(&queue_);
}

std::size_t port::queued() {
  lock();
  std::size_t n = queue_.size();
  unlock();
  return n;
}

void port::set_queue_limit(std::size_t limit) {
  lock();
  queue_limit_ = limit;
  unlock();
}

}  // namespace mach
