// Kernel RPC — the section 10 operation sequence.
//
//   1. request message received (carries a port reference);
//   2. port → object translation obtains an object reference (MiG-generated
//      code in Mach; rpc_router + msg_rpc here);
//   3. the operation executes, acquiring/releasing the object lock — the
//      object and port "cannot vanish due to the references acquired above";
//   4. the operation completes; the interface code releases the object
//      reference (Mach 2.5), or the operation consumes it on success and
//      the interface releases only on failure (Mach 3.0);
//   5. the reply message returns the result.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "ipc/space.h"
#include "sched/kthread.h"

namespace mach {

// Which side releases the object reference on success (paper sec. 10
// step 4). Behaviourally equivalent for well-formed operations; the
// counters expose which path ran.
enum class ref_discipline { mach25_interface_releases, mach30_operation_consumes };

class rpc_router {
 public:
  using handler_fn = std::function<kern_return_t(kobject&, const message& req, message& reply)>;

  void register_op(std::uint32_t op, const char* name, handler_fn fn);
  bool has(std::uint32_t op) const;
  const char* op_name(std::uint32_t op) const;
  kern_return_t dispatch(kobject& obj, const message& req, message& reply) const;

 private:
  std::unordered_map<std::uint32_t, std::pair<const char*, handler_fn>> ops_;
};

struct rpc_counters {
  std::uint64_t calls = 0;
  std::uint64_t ok = 0;
  std::uint64_t invalid_name = 0;   // step 1 failures
  std::uint64_t terminated = 0;     // step 2 failures (translation cleared)
  std::uint64_t op_failures = 0;    // step 3 failures
  std::uint64_t refs_released_by_interface = 0;  // Mach 2.5 path / 3.0 failure path
  std::uint64_t refs_consumed_by_operation = 0;  // Mach 3.0 success path
};

// Synchronous kernel RPC against a port name in `space`.
kern_return_t msg_rpc(ipc_space& space, port_name_t name, const message& req, message& reply,
                      const rpc_router& router,
                      ref_discipline discipline = ref_discipline::mach25_interface_releases);

// Client-side message-pair RPC against a service port (paper sec. 3: "this
// pair of messages constitutes a remote procedure call"): sends `req` with
// the calling thread's private reply port attached and awaits the reply.
// Returns nullopt on send failure or timeout. The reply port is cached
// per thread, as Mach clients conventionally do.
std::optional<message> rpc_call(port& service, message req,
                                std::chrono::milliseconds timeout = std::chrono::milliseconds(1000));

rpc_counters rpc_stats() noexcept;
void reset_rpc_stats() noexcept;

// Asynchronous message-based server: a kernel thread receives requests on
// a service port, translates the port to its object, dispatches through a
// router, and sends the reply to each message's reply_to port — the
// message-pair RPC of paper section 3.
class kernel_server {
 public:
  kernel_server(ref_ptr<port> service, const rpc_router& router,
                std::string name = "kernel-server");
  ~kernel_server();

  void stop();
  std::uint64_t served() const { return served_.load(std::memory_order_relaxed); }

 private:
  void loop();

  ref_ptr<port> service_;
  const rpc_router& router_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
  std::unique_ptr<kthread> thread_;
};

}  // namespace mach
