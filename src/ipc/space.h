// Per-task IPC name spaces: the name → port translation tables.
//
// "Executing code performs a name to object translation. This effectively
// clones the object reference held by the name translation data
// structures." (paper section 8). lookup() is exactly that clone.
//
// For experiment E12 the space can either own its lock (Mach's design: "a
// task has two locks to allow task operations and ipc translations to
// occur in parallel") or share an external lock (the single-lock ablation).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ipc/port.h"

namespace mach {

using port_name_t = std::uint32_t;

class ipc_space {
 public:
  // Own-lock configuration (Mach behaviour).
  explicit ipc_space(const char* name = "ipc-space");
  // Shared-lock configuration: all table operations serialize on
  // `external` instead (E12's coarse variant). `external` must outlive
  // the space.
  explicit ipc_space(simple_lock_data_t* external);
  ~ipc_space();
  ipc_space(const ipc_space&) = delete;
  ipc_space& operator=(const ipc_space&) = delete;

  // Insert a port under a fresh name; the table keeps one reference.
  port_name_t insert(ref_ptr<port> p);
  // Name → port translation, cloning the table's reference.
  ref_ptr<port> lookup(port_name_t name);
  // Remove the name; the table's reference is released. False if absent.
  bool remove(port_name_t name);

  std::size_t size() const;

 private:
  simple_lock_data_t* lk() const { return external_lock_ != nullptr ? external_lock_ : &own_lock_; }

  mutable simple_lock_data_t own_lock_;
  simple_lock_data_t* external_lock_ = nullptr;
  std::unordered_map<port_name_t, ref_ptr<port>> table_;
  port_name_t next_name_ = 1;
};

}  // namespace mach
