#include "ipc/stubs.h"

namespace mach {

kern_return_t counter_object::add(std::uint64_t delta, std::uint64_t& new_value) {
  lock();
  if (!active()) {
    unlock();
    return KERN_TERMINATED;
  }
  value_ += delta;
  new_value = value_;
  unlock();
  return KERN_SUCCESS;
}

kern_return_t counter_object::read(std::uint64_t& value) {
  lock();
  if (!active()) {
    unlock();
    return KERN_TERMINATED;
  }
  value = value_;
  unlock();
  return KERN_SUCCESS;
}

namespace {

kern_return_t op_echo(kobject& obj, const message& req, message& reply) {
  // Liveness still matters for echo: operations on deactivated objects
  // fail with a failure code (section 9).
  obj.lock();
  bool alive = obj.active();
  obj.unlock();
  if (!alive) return KERN_TERMINATED;
  reply.data = req.data;
  return KERN_SUCCESS;
}

kern_return_t op_object_info(kobject& obj, const message&, message& reply) {
  obj.lock();
  bool alive = obj.active();
  obj.unlock();
  reply.data = {static_cast<std::uint64_t>(obj.ref_count()),
                static_cast<std::uint64_t>(alive ? 1 : 0)};
  return KERN_SUCCESS;  // info is answerable even for deactivated objects
}

task* as_task(kobject& obj) { return dynamic_cast<task*>(&obj); }

kern_return_t op_task_suspend(kobject& obj, const message&, message&) {
  task* t = as_task(obj);
  return t == nullptr ? KERN_FAILURE : t->suspend();
}

kern_return_t op_task_resume(kobject& obj, const message&, message&) {
  task* t = as_task(obj);
  return t == nullptr ? KERN_FAILURE : t->resume();
}

kern_return_t op_task_info(kobject& obj, const message&, message& reply) {
  task* t = as_task(obj);
  if (t == nullptr) return KERN_FAILURE;
  t->lock();
  if (!t->active()) {
    t->unlock();
    return KERN_TERMINATED;
  }
  t->unlock();
  reply.data = {static_cast<std::uint64_t>(t->suspend_count()),
                static_cast<std::uint64_t>(t->thread_count())};
  return KERN_SUCCESS;
}

kern_return_t op_counter_add(kobject& obj, const message& req, message& reply) {
  auto* c = dynamic_cast<counter_object*>(&obj);
  if (c == nullptr || req.data.empty()) return KERN_FAILURE;
  std::uint64_t v = 0;
  kern_return_t kr = c->add(req.data[0], v);
  if (kr == KERN_SUCCESS) reply.data = {v};
  return kr;
}

kern_return_t op_counter_read(kobject& obj, const message&, message& reply) {
  auto* c = dynamic_cast<counter_object*>(&obj);
  if (c == nullptr) return KERN_FAILURE;
  std::uint64_t v = 0;
  kern_return_t kr = c->read(v);
  if (kr == KERN_SUCCESS) reply.data = {v};
  return kr;
}

}  // namespace

const rpc_router& standard_router() {
  static const rpc_router router = [] {
    rpc_router r;
    r.register_op(OP_ECHO, "echo", &op_echo);
    r.register_op(OP_OBJECT_INFO, "object_info", &op_object_info);
    r.register_op(OP_TASK_SUSPEND, "task_suspend", &op_task_suspend);
    r.register_op(OP_TASK_RESUME, "task_resume", &op_task_resume);
    r.register_op(OP_TASK_INFO, "task_info", &op_task_info);
    r.register_op(OP_COUNTER_ADD, "counter_add", &op_counter_add);
    r.register_op(OP_COUNTER_READ, "counter_read", &op_counter_read);
    return r;
  }();
  return router;
}

kern_return_t shutdown_protocol(port& p, ref_ptr<kobject> creation_ref) {
  // Obtain our own reference first (the step-2 translation of the kernel
  // operation sequence); everything below is safe against concurrent
  // shutdowns because deactivate() is the single decision point.
  ref_ptr<kobject> obj = p.translate();
  if (!obj) return KERN_TERMINATED;  // translation already disabled

  // 1. Lock the object, set the "deactivated" flag, unlock.
  if (!obj->deactivate()) {
    // Someone else shut it down between our translate and now; they own
    // the rest of the sequence.
    return KERN_TERMINATED;
  }

  // 2. Disable port→object translation, removing the port's reference.
  ref_ptr<kobject> ports_ref = p.clear_translation();

  // 3. Subsystem-specific teardown (takes the object lock as needed).
  obj->shutdown_body();

  // 4. Release the creation reference; final deletion happens when all
  //    other references (including ours and the port's, dying at return)
  //    are released.
  creation_ref.reset();
  ports_ref.reset();
  return KERN_SUCCESS;
}

}  // namespace mach
