#include "sched/event.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "base/panic.h"
#include "metrics/kmetrics.h"
#include "metrics/watchdog.h"
#include "prof/kprof.h"
#include "trace/kspan.h"
#include "trace/ktrace.h"

namespace mach {
namespace {

// Hashed wait queues, as in Mach's sched_prim.c. Each bucket holds waiters
// for every event hashing to it; matching is by exact event.
constexpr std::size_t num_buckets = 128;

struct event_bucket {
  // Untracked: internal to the event system, never held across blocking.
  simple_lock_data_t lock{"event-bucket", /*track=*/false};
  std::vector<kthread*> waiters;
};

event_bucket& bucket_for(event_t e) {
  static std::array<event_bucket, num_buckets> table;
  return table[std::hash<const void*>{}(e) & (num_buckets - 1)];
}

std::atomic<std::uint64_t> g_blocks_suspended{0};
std::atomic<std::uint64_t> g_blocks_short_circuited{0};
std::atomic<std::uint64_t> g_wakeups_delivered{0};
std::atomic<std::uint64_t> g_wakeups_no_waiter{0};

// Publishes "this thread is suspended" to the stall watchdog; the dtor
// covers every return path out of block(), including timeout bookkeeping.
struct watchdog_blocked_scope {
  explicit watchdog_blocked_scope(const void* ev) {
    watchdog_note_wait_begin(stall_kind::thread_blocked, ev, "event-wait");
  }
  ~watchdog_blocked_scope() { watchdog_note_wait_end(); }
};

// kprof: samples of a suspended thread attribute to the event it sleeps
// on — UNLESS an outer instrumentation point already attributed the wait
// (a complex-lock sleep publishes lock_waiting before blocking; naming
// the lock beats naming the lock's event address).
struct kprof_blocked_scope {
  kprof::activity_word prev;
  explicit kprof_blocked_scope(const void* ev) : prev(kprof::self_word()) {
    if (kprof::unpack_state(prev) != kprof::activity::lock_waiting) {
      kprof::publish(kprof::activity::blocked, ev);
    }
  }
  ~kprof_blocked_scope() { kprof::publish_word(prev); }
};

}  // namespace

// Friend of kthread: all access to its wait state funnels through here.
struct event_system {
  static void assert_wait(event_t e) {
    MACH_ASSERT(e != nullptr, "assert_wait on the null event");
    kthread& t = kthread::current();
    event_bucket& b = bucket_for(e);
    simple_lock(&b.lock);
    {
      std::lock_guard<std::mutex> g(t.wait_mutex_);
      MACH_ASSERT(!t.wait_asserted_,
                  "assert_wait by '" + t.name_ + "' while a wait is already asserted (fatal per paper sec. 8)");
      t.wait_event_ = e;
      t.wait_asserted_ = true;
      t.wakeup_pending_ = false;
    }
    b.waiters.push_back(&t);
    t.queued_ = true;
    simple_unlock(&b.lock);
    kmet().sched_wait_queue_depth.add(1);
    ktrace::emit(trace_kind::assert_wait_ev, nullptr, reinterpret_cast<std::uint64_t>(e));
  }

  // Dequeue `t` from its bucket if still queued. Returns true if this call
  // removed it (i.e. no waker got there first).
  static bool try_dequeue(kthread& t, event_t e) {
    event_bucket& b = bucket_for(e);
    simple_lock(&b.lock);
    bool removed = false;
    if (t.queued_) {
      auto it = std::find(b.waiters.begin(), b.waiters.end(), &t);
      MACH_ASSERT(it != b.waiters.end(), "queued thread missing from event bucket");
      b.waiters.erase(it);
      t.queued_ = false;
      removed = true;
    }
    simple_unlock(&b.lock);
    if (removed) kmet().sched_wait_queue_depth.sub(1);
    return removed;
  }

  static wait_result block(const std::chrono::milliseconds* timeout) {
    kthread& t = kthread::current();
    MACH_ASSERT(held_tracked_simple_locks() == 0,
                "thread_block by '" + t.name_ + "' while holding a simple lock (design requirement, paper sec. 4)");
    std::unique_lock<std::mutex> g(t.wait_mutex_);
    if (!t.wait_asserted_) {
      // Plain context switch.
      g.unlock();
      std::this_thread::yield();
      return wait_result::not_waiting;
    }
    // Trace the blocked interval (from here to wakeup consumption); a
    // short-circuited block shows as a ~0-length span, which is itself
    // informative (the paper's non-blocking context switch).
    const std::uint64_t t_block = (ktrace::enabled() || kmon::enabled()) ? now_nanos() : 0;
    const auto traced_event = reinterpret_cast<std::uint64_t>(t.wait_event_.load());
    auto traced = [&](wait_result r) {
      if (t_block != 0) {
        const std::uint64_t end = now_nanos();
        if (ktrace::enabled()) {
          ktrace::emit_span(trace_kind::thread_blocked, nullptr, traced_event, end - t_block, end);
        }
        kmet().sched_block_nanos.record(end - t_block);
      }
      // Consume the wait-for edge the waker left behind (deliver()): the
      // trace then records that THIS thread's block was ended by a wakeup
      // issued under the waker's span — the blocking-handoff half of
      // kspan's cross-thread propagation.
      if (kspan::enabled()) {
        const std::uint64_t waker = t.wake_span_ctx_.exchange(0, std::memory_order_relaxed);
        if (waker != 0 && r == wait_result::awakened) {
          ktrace::emit(trace_kind::span_unblock, nullptr, waker, traced_event);
        }
      }
      return r;
    };
    if (t.wakeup_pending_) {
      // Event occurred between assert_wait and here: non-blocking switch.
      g_blocks_short_circuited.fetch_add(1, std::memory_order_relaxed);
      kmet().sched_blocks_short_circuited.inc();
      return traced(consume_locked(t));
    }
    g_blocks_suspended.fetch_add(1, std::memory_order_relaxed);
    kmet().sched_blocks.inc();
    const watchdog_blocked_scope wd_scope(t.wait_event_.load());
    const kprof_blocked_scope prof_scope(t.wait_event_.load());
    if (timeout == nullptr) {
      t.wait_cv_.wait(g, [&t] { return t.wakeup_pending_; });
      return traced(consume_locked(t));
    }
    if (t.wait_cv_.wait_for(g, *timeout, [&t] { return t.wakeup_pending_; })) {
      return traced(consume_locked(t));
    }
    // Timed out: remove ourselves from the queue, racing against wakers.
    event_t e = t.wait_event_;
    g.unlock();
    if (try_dequeue(t, e)) {
      std::lock_guard<std::mutex> g2(t.wait_mutex_);
      // A waker cannot reach us anymore; cancel the assertion.
      t.wait_asserted_ = false;
      t.wait_event_ = nullptr;
      t.wakeup_pending_ = false;
      return traced(wait_result::timed_out);
    }
    // A waker dequeued us concurrently; its wakeup is (about to be)
    // delivered. Honor it.
    g.lock();
    t.wait_cv_.wait(g, [&t] { return t.wakeup_pending_; });
    return traced(consume_locked(t));
  }

  static wait_result consume_locked(kthread& t) {
    t.wait_asserted_ = false;
    t.wait_event_ = nullptr;
    t.wakeup_pending_ = false;
    return t.wakeup_result_;
  }

  static void deliver(kthread* t, wait_result r) {
    {
      std::lock_guard<std::mutex> g(t->wait_mutex_);
      t->wakeup_pending_ = true;
      t->wakeup_result_ = r;
      if (kspan::enabled()) {
        t->wake_span_ctx_.store(kspan::current(), std::memory_order_relaxed);
      }
    }
    t->wait_cv_.notify_all();
  }

  static void wakeup(event_t e, bool one) {
    event_bucket& b = bucket_for(e);
    std::vector<kthread*> to_wake;
    simple_lock(&b.lock);
    for (auto it = b.waiters.begin(); it != b.waiters.end();) {
      kthread* t = *it;
      // wait_event_ is stable while the thread is queued (see assert_wait /
      // try_dequeue): safe to read under the bucket lock.
      if (t->wait_event_ == e) {
        it = b.waiters.erase(it);
        t->queued_ = false;
        to_wake.push_back(t);
        if (one) break;
      } else {
        ++it;
      }
    }
    simple_unlock(&b.lock);
    ktrace::emit(trace_kind::thread_wakeup_ev, nullptr, reinterpret_cast<std::uint64_t>(e),
                 to_wake.size());
    if (to_wake.empty()) {
      g_wakeups_no_waiter.fetch_add(1, std::memory_order_relaxed);
      kmet().sched_wakeups_no_waiter.inc();
      return;
    }
    g_wakeups_delivered.fetch_add(to_wake.size(), std::memory_order_relaxed);
    kmet().sched_wakeups.inc(to_wake.size());
    kmet().sched_wait_queue_depth.sub(static_cast<std::int64_t>(to_wake.size()));
    for (kthread* t : to_wake) deliver(t, wait_result::awakened);
  }

  static void clear(kthread& t, wait_result r) {
    // The target can consume a wakeup and re-assert a different event while
    // we work, so verify the event under the bucket lock and retry on a
    // mismatch. A thread cycling faster than we can observe is inherently
    // unclearable (same in Mach); bound the retries.
    for (int attempt = 0; attempt < 64; ++attempt) {
      event_t e = nullptr;
      {
        std::lock_guard<std::mutex> g(t.wait_mutex_);
        if (!t.wait_asserted_ || t.wakeup_pending_) return;  // nothing to clear
        e = t.wait_event_;
      }
      event_bucket& b = bucket_for(e);
      simple_lock(&b.lock);
      if (t.queued_ && t.wait_event_ == e) {
        auto it = std::find(b.waiters.begin(), b.waiters.end(), &t);
        MACH_ASSERT(it != b.waiters.end(), "queued thread missing from event bucket");
        b.waiters.erase(it);
        t.queued_ = false;
        simple_unlock(&b.lock);
        kmet().sched_wait_queue_depth.sub(1);
        kmet().sched_wakeups.inc();
        deliver(&t, r);
        return;
      }
      bool superseded = !t.queued_;
      simple_unlock(&b.lock);
      if (superseded) return;  // a waker got there first; its wakeup stands
      std::this_thread::yield();
    }
  }
};

void assert_wait(event_t event) { event_system::assert_wait(event); }

wait_result thread_block() { return event_system::block(nullptr); }

wait_result thread_block_timeout(std::chrono::milliseconds timeout) {
  return event_system::block(&timeout);
}

void thread_wakeup(event_t event) { event_system::wakeup(event, /*one=*/false); }

void thread_wakeup_one(event_t event) { event_system::wakeup(event, /*one=*/true); }

void clear_wait(kthread& t, wait_result result) { event_system::clear(t, result); }

wait_result thread_sleep(event_t event, simple_lock_data_t* lock) {
  assert_wait(event);
  simple_unlock(lock);
  return thread_block();
}

event_system_counters event_counters() noexcept {
  return {g_blocks_suspended.load(std::memory_order_relaxed),
          g_blocks_short_circuited.load(std::memory_order_relaxed),
          g_wakeups_delivered.load(std::memory_order_relaxed),
          g_wakeups_no_waiter.load(std::memory_order_relaxed)};
}

void reset_event_counters() noexcept {
  g_blocks_suspended.store(0, std::memory_order_relaxed);
  g_blocks_short_circuited.store(0, std::memory_order_relaxed);
  g_wakeups_delivered.store(0, std::memory_order_relaxed);
  g_wakeups_no_waiter.store(0, std::memory_order_relaxed);
}

}  // namespace mach
