// Usage timers — the one place Mach coordinates WITHOUT multiprocessor
// locks (paper section 2):
//
//   "It is possible to implement operation coordination without
//    multiprocessor locks, but such techniques are reasonable only in
//    situations where other restrictions ensure that only a single
//    processor can attempt to change the data structure at a time. ...
//    The Mach kernel's operation coordination techniques are based on
//    multiprocessor locking, with the exception of access to timer data
//    structures in its usage timing subsystem [5]."
//
// The restriction that makes this sound: a usage timer is updated only by
// the processor the timed thread is running on — a single writer. Readers
// on other processors use the check-field protocol from Black's timing
// facility [5]: the writer bumps `high_check` BEFORE a rollover update and
// `high` AFTER it, so a reader that sees high == high_check between two
// reads has observed a consistent snapshot, and retries otherwise. No
// reader or writer ever spins on a lock; a reader retries only while an
// update is mid-flight.
//
// For comparison (bench E15) locked_usage_timer implements the same
// interface with a simple lock.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/simple_lock.h"

namespace mach {

// Microseconds, split like Mach's timer into low bits (rolled over by the
// updater) and high bits (guarded by the check field).
inline constexpr std::uint64_t timer_low_limit = 1u << 30;  // ~17.9 minutes in us

class usage_timer {
 public:
  // Single-writer update: add `delta_us` microseconds of usage. Must only
  // ever be called by one thread at a time (the "processor" running the
  // timed thread) — that restriction is the whole design.
  void tick(std::uint64_t delta_us) noexcept;

  // Lock-free consistent read from any thread.
  std::uint64_t total_us() const noexcept;

  // Diagnostics: how many reader retries the check protocol has caused.
  std::uint64_t read_retries() const noexcept {
    return retries_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> low_{0};
  std::atomic<std::uint32_t> high_{0};
  std::atomic<std::uint32_t> high_check_{0};
  mutable std::atomic<std::uint64_t> retries_{0};
};

// The locking baseline: identical semantics via a simple lock.
class locked_usage_timer {
 public:
  locked_usage_timer() { simple_lock_init(&lock_, "usage-timer", /*tracked=*/false); }

  void tick(std::uint64_t delta_us) noexcept {
    simple_lock(&lock_);
    total_ += delta_us;
    simple_unlock(&lock_);
  }

  std::uint64_t total_us() const noexcept {
    simple_lock(&lock_);
    std::uint64_t v = total_;
    simple_unlock(&lock_);
    return v;
  }

 private:
  mutable simple_lock_data_t lock_;
  std::uint64_t total_ = 0;
};

}  // namespace mach
