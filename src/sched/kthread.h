// Kernel threads.
//
// The paper's coordination machinery is expressed in terms of threads of
// control inside the kernel: a thread holds locks, asserts waits, blocks,
// and can be the target of clear_wait. kthread wraps a host thread with the
// wait state the event system (sched/event.h) needs, and gives every thread
// a stable identity and name for lock debugging.
//
// Any host thread (e.g. the test main thread) is adopted lazily by
// kthread::current(); threads created with kthread::spawn() are owned and
// must be joined before destruction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace mach {

// An event is identified by an address, as in Mach (vm_offset_t event).
using event_t = const void*;

enum class wait_result {
  awakened,   // thread_wakeup on the event
  cleared,    // clear_wait aimed at this thread
  timed_out,  // extension: bounded block for watchdogs/tests
  not_waiting // thread_block without a prior assert_wait (plain yield)
};

class kthread {
 public:
  ~kthread();
  kthread(const kthread&) = delete;
  kthread& operator=(const kthread&) = delete;

  // The current thread's kthread, adopting the host thread on first use.
  static kthread& current();

  // Spawn a named kernel thread running `fn`. Join before destroying.
  static std::unique_ptr<kthread> spawn(std::string name, std::function<void()> fn);

  void join();

  const std::string& name() const noexcept { return name_; }
  // Identity token shared with the lock-debugging layer.
  const void* token() const noexcept { return token_; }

 private:
  friend struct event_system;
  explicit kthread(std::string name);

  std::string name_;
  const void* token_ = nullptr;
  std::thread host_;  // empty for adopted threads

  // --- Wait state, owned by the event system ---
  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
  // Event from assert_wait, null when not asserted. Atomic because
  // clear_wait probes it from outside the owning bucket's lock; it is
  // stable while the thread is queued.
  std::atomic<event_t> wait_event_{nullptr};
  bool wait_asserted_ = false;     // between assert_wait and thread_block completion
  bool wakeup_pending_ = false;    // event occurred since assert_wait
  wait_result wakeup_result_ = wait_result::awakened;
  // On an event bucket queue. Written under the owning bucket's lock;
  // atomic because clear_wait probes it cross-bucket.
  std::atomic<bool> queued_{false};
  // kspan wait-for edge: the waker's span context, stored by the event
  // system's wakeup delivery (under wait_mutex_) and consumed by this
  // thread when its block ends, so the trace records who unblocked whom.
  // 0 when spans are disabled or the waker carried no span.
  std::atomic<std::uint64_t> wake_span_ctx_{0};
};

}  // namespace mach
