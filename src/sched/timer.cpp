#include "sched/timer.h"

namespace mach {

void usage_timer::tick(std::uint64_t delta_us) noexcept {
  std::uint64_t low = low_.load(std::memory_order_relaxed) + delta_us;
  if (low < timer_low_limit) {
    // Common case: no rollover, a single plain store. Readers pair this
    // with their acquire loads.
    low_.store(static_cast<std::uint32_t>(low), std::memory_order_release);
    return;
  }
  // Rollover: the check-field dance. Bump the check first so any reader
  // overlapping the update sees high != high_check and retries.
  std::uint32_t high = high_.load(std::memory_order_relaxed);
  std::uint32_t carries = static_cast<std::uint32_t>(low / timer_low_limit);
  high_check_.store(high + carries, std::memory_order_release);
  low_.store(static_cast<std::uint32_t>(low % timer_low_limit), std::memory_order_release);
  high_.store(high + carries, std::memory_order_release);
}

std::uint64_t usage_timer::total_us() const noexcept {
  for (;;) {
    std::uint32_t high = high_.load(std::memory_order_acquire);
    std::uint32_t low = low_.load(std::memory_order_acquire);
    std::uint32_t check = high_check_.load(std::memory_order_acquire);
    if (high == check) {
      return static_cast<std::uint64_t>(high) * timer_low_limit + low;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace mach
