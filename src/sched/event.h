// Mach event-wait primitives (paper section 6).
//
// The central problem these primitives solve: "releasing one or more locks
// to wait for an event ... must be atomic with respect to the operation
// that declares event occurrence", else the event can slip in while the
// locks are being released and the waiter blocks indefinitely. Mach splits
// the wait into a declaration (assert_wait) and a conditional context
// switch (thread_block): event occurrence synchronizes with assert_wait,
// and a wakeup arriving between the two converts the block into a
// non-blocking no-op.
//
//   assert_wait(event)        declare the event to be waited for
//   thread_block()            block, unless the event occurred since assert_wait
//   thread_wakeup(event)      event-based occurrence (wakes all waiters)
//   thread_wakeup_one(event)  wake a single waiter
//   clear_wait(thread, ...)   thread-based occurrence
//   thread_sleep(event, lock) the common release-one-lock-and-wait case
//
// Extension over the paper: thread_block_timeout() bounds the block so
// watchdogs and tests never hang; it reports wait_result::timed_out.
#pragma once

#include <chrono>

#include "sched/kthread.h"
#include "sync/simple_lock.h"

namespace mach {

// Declare the event the current thread is about to wait for. Calling this
// twice without an intervening thread_block is fatal (the paper's section 8
// note: the blocking release path "will call assert_wait() a second time
// (this is fatal)").
void assert_wait(event_t event);

// Block until the asserted event occurs. If the event occurred between
// assert_wait and this call, returns immediately (a non-blocking context
// switch). Without a prior assert_wait this is a plain yield.
// Fatal if any tracked simple lock is held — the paper's design
// requirement that simple locks never be held across blocking.
wait_result thread_block();

// As thread_block, but give up after `timeout`; the wait assertion is
// cancelled on timeout.
wait_result thread_block_timeout(std::chrono::milliseconds timeout);

// Event-based occurrence: wake every thread waiting on `event` / one such
// thread (no-op if there are none).
void thread_wakeup(event_t event);
void thread_wakeup_one(event_t event);

// Thread-based occurrence: wake `t` out of its current wait (or cause its
// next thread_block after an assert_wait to return immediately) with the
// given result. Used by implementations that track blocked threads
// themselves (the paper's "block threads on event zero" pattern).
void clear_wait(kthread& t, wait_result result = wait_result::cleared);

// Release `lock` and wait for `event`, atomically with respect to
// thread_wakeup: assert_wait, simple_unlock, thread_block.
wait_result thread_sleep(event_t event, simple_lock_data_t* lock);

// Instrumentation for experiments: global counts of blocks that actually
// suspended vs. blocks short-circuited by an early wakeup.
struct event_system_counters {
  std::uint64_t blocks_suspended;
  std::uint64_t blocks_short_circuited;
  std::uint64_t wakeups_delivered;
  std::uint64_t wakeups_no_waiter;
};
event_system_counters event_counters() noexcept;
void reset_event_counters() noexcept;

}  // namespace mach
