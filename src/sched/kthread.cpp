#include "sched/kthread.h"

#include <future>

#include "base/panic.h"
#include "metrics/kmetrics.h"
#include "prof/kprof.h"
#include "sync/deadlock.h"
#include "trace/ktrace.h"

namespace mach {
namespace {

thread_local kthread* tl_current = nullptr;

}  // namespace

kthread::kthread(std::string name) : name_(std::move(name)) {}

kthread::~kthread() {
  MACH_ASSERT(!host_.joinable(), "kthread '" + name_ + "' destroyed without join");
  if (tl_current == this) tl_current = nullptr;
}

kthread& kthread::current() {
  if (tl_current != nullptr) return *tl_current;
  // Adopt the host thread (e.g. main). The adopted wrapper lives for the
  // host thread's lifetime.
  thread_local std::unique_ptr<kthread> adopted;
  adopted.reset(new kthread("adopted"));
  adopted->token_ = current_thread_token();
  tl_current = adopted.get();
  kprof::publish(kprof::activity::running, nullptr);  // claim a sampler slot
  return *tl_current;
}

std::unique_ptr<kthread> kthread::spawn(std::string name, std::function<void()> fn) {
  std::unique_ptr<kthread> t(new kthread(std::move(name)));
  kthread* raw = t.get();
  std::promise<void> started;
  std::future<void> started_f = started.get_future();
  raw->host_ = std::thread([raw, fn = std::move(fn), &started]() mutable {
    raw->token_ = current_thread_token();
    tl_current = raw;
    wait_graph::instance().name_thread(raw->token_, raw->name_);
    ktrace::set_thread_name(raw->name_);  // label this thread's trace ring
    kprof::publish(kprof::activity::running, nullptr);  // claim a sampler slot
    kmet().sched_threads_live.add(1);
    started.set_value();
    fn();
    kmet().sched_threads_live.sub(1);
    tl_current = nullptr;
  });
  started_f.wait();  // token_ is valid once we return
  return t;
}

void kthread::join() {
  MACH_ASSERT(host_.joinable(), "join of non-spawned or already-joined kthread '" + name_ + "'");
  host_.join();
}

}  // namespace mach
