#include "smp/barrier.h"

#include <string>
#include <thread>

#include "base/backoff.h"
#include "base/panic.h"
#include "metrics/kmetrics.h"
#include "sync/deadlock.h"
#include "trace/ktrace.h"

namespace mach {

interrupt_barrier::interrupt_barrier(const char* name) : name_(name) {}

void interrupt_barrier::attach(spl_t level, std::function<void(virtual_cpu&)> on_interrupt) {
  level_ = level;
  on_interrupt_ = std::move(on_interrupt);
  vector_ = machine::instance().register_vector(name_, level,
                                                [this](virtual_cpu& c) { isr(c); });
}

void interrupt_barrier::isr(virtual_cpu& cpu) {
  const std::uint32_t bit = 1u << cpu.id();
  // Process posted work on entry: by the time the initiator's round
  // completes, every participant that entered has already applied its
  // updates (it is parked in the ISR and cannot use stale state anyway).
  if (on_interrupt_) on_interrupt_(cpu);
  if (round_active_.load() && (needed_.load() & bit) != 0 &&
      (entered_.load() & bit) == 0) {
    entered_.fetch_or(bit);
    kmet().smp_barrier_isr_parks.inc();
    // generation_ is written before round_active_ at round start, so
    // having observed round_active_ == true we read our own round's
    // generation (or a later one, in which case our round is over).
    const std::uint64_t my_round = generation_.load();
    // Spin *inside the ISR* until the initiator releases — the barrier
    // property: nobody leaves before everybody (that must) has entered.
    const void* me = current_thread_token();
    const std::uint64_t isr_start = ktrace::enabled() ? now_nanos() : 0;
    wait_graph::instance().thread_waits(me, &release_slot_,
                                        "barrier-release");
    backoff bo;
    while (generation_.load() == my_round && !released_.load() && !aborted_.load()) {
      bo.pause();
    }
    wait_graph::instance().thread_wait_done(me, &release_slot_);
    if (isr_start != 0) {
      // The time this CPU was parked at interrupt level — the per-CPU
      // cost of the paper's "costly operation".
      const std::uint64_t end = now_nanos();
      ktrace::emit_span(trace_kind::barrier_isr, name_, static_cast<std::uint64_t>(cpu.id()),
                        end - isr_start, end);
    }
    // Drain again on the way out: the initiator's update may have posted
    // more work while we were parked.
    if (on_interrupt_) on_interrupt_(cpu);
  }
}

interrupt_barrier::status interrupt_barrier::run(std::uint32_t participant_mask,
                                                 const std::function<void()>& update,
                                                 std::chrono::milliseconds timeout) {
  MACH_ASSERT(vector_ >= 0, "interrupt_barrier::run before attach");
  machine& m = machine::instance();
  const void* me = current_thread_token();
  wait_graph& graph = wait_graph::instance();

  // The initiator cannot take its own IPI while spinning at the vector's
  // level; it participates implicitly.
  virtual_cpu* self = machine::current_cpu();
  const std::uint32_t self_bit = self != nullptr ? (1u << self->id()) : 0;
  const std::uint32_t others = participant_mask & ~self_bit;

  simple_lock(&round_lock_);  // one round at a time
  const std::uint64_t round_start = ktrace::enabled() ? now_nanos() : 0;
  generation_.fetch_add(1);   // unwedges stragglers from the previous round
  entered_.store(0);
  released_.store(false);
  aborted_.store(false);
  needed_.store(others);
  round_active_.store(true);

  // Deadlock-detector bookkeeping: each missing participant's entry is a
  // resource held by whatever thread is bound to that CPU.
  graph.resource_held(&release_slot_, me, "barrier-release");
  std::uint32_t tracked = 0;
  for (int i = 0; i < m.ncpus(); ++i) {
    const std::uint32_t bit = 1u << i;
    if ((others & bit) == 0) continue;
    const void* owner = m.cpu(i).bound_token();
    if (owner == nullptr) continue;  // unbound CPU: nothing to attribute
    graph.resource_held(&entry_slot_[i], owner,
                        "barrier-entry");
    graph.thread_waits(me, &entry_slot_[i], "barrier-entry");
    tracked |= bit;
  }
  auto untrack = [&](std::uint32_t bits) {
    for (int i = 0; i < m.ncpus(); ++i) {
      const std::uint32_t bit = 1u << i;
      if ((bits & bit) == 0) continue;
      graph.thread_wait_done(me, &entry_slot_[i]);
      graph.resource_released(&entry_slot_[i], m.cpu(i).bound_token());
    }
  };

  // Post the IPIs with our own spl raised to the barrier level (the
  // paper's shootdown initiator runs the whole round at interrupt level).
  spl_guard raised(level_);
  for (int i = 0; i < m.ncpus(); ++i) {
    if ((others & (1u << i)) != 0) m.post_ipi(i, vector_);
  }

  status result = status::ok;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  backoff bo;
  std::uint32_t seen = 0;
  while ((entered_.load() & others) != others) {
    const std::uint32_t now_in = entered_.load() & others & ~seen & tracked;
    if (now_in != 0) {
      untrack(now_in);
      seen |= now_in;
    }
    if (aborted_.load()) {
      result = status::aborted;
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      aborted_.store(true);
      result = status::timed_out;
      break;
    }
    machine::interrupt_point();  // still accept higher-priority interrupts
    bo.pause();
  }
  untrack(tracked & ~seen);

  if (result == status::ok) {
    update();
    released_.store(true);
    rounds_ok_.fetch_add(1, std::memory_order_relaxed);
    kmet().smp_barrier_rounds.inc();
  } else {
    rounds_failed_.fetch_add(1, std::memory_order_relaxed);
    kmet().smp_barrier_rounds_failed.inc();
  }
  graph.resource_released(&release_slot_, me);
  round_active_.store(false);
  if (round_start != 0) {
    const std::uint64_t end = now_nanos();
    ktrace::emit_span(trace_kind::barrier_round, name_,
                      static_cast<std::uint64_t>(participant_mask), end - round_start, end);
  }
  simple_unlock(&round_lock_);

  // The initiator's own CPU processes its posted work directly.
  if (result == status::ok && self != nullptr && (participant_mask & self_bit) != 0 &&
      on_interrupt_) {
    on_interrupt_(*self);
  }
  return result;
}

}  // namespace mach
