#include "smp/processor.h"

#include <bit>

#include "base/panic.h"
#include "metrics/kmetrics.h"
#include "sync/deadlock.h"
#include "sync/spin_policies.h"

namespace mach {
namespace {

thread_local virtual_cpu* tl_cpu = nullptr;

void spin_hook() { machine::interrupt_point(); }

}  // namespace

machine& machine::instance() noexcept {
  static machine m;
  return m;
}

void machine::configure(int ncpus) {
  MACH_ASSERT(ncpus >= 0 && ncpus <= 32, "machine supports at most 32 virtual CPUs");
  for (const auto& c : cpus_) {
    MACH_ASSERT(c->bound_token() == nullptr, "machine reconfigured while a CPU is bound");
  }
  cpus_.clear();
  vectors_.clear();
  for (int i = 0; i < ncpus; ++i) {
    auto c = std::make_unique<virtual_cpu>();
    c->id_ = i;
    cpus_.push_back(std::move(c));
  }
  delivered_.store(0, std::memory_order_relaxed);
  deferred_.store(0, std::memory_order_relaxed);
  // Let spinning simple-lock waiters accept interrupts.
  g_spin_wait_hook.store(&spin_hook, std::memory_order_relaxed);
}

virtual_cpu& machine::cpu(int i) {
  MACH_ASSERT(i >= 0 && i < ncpus(), "virtual CPU index out of range");
  return *cpus_[static_cast<std::size_t>(i)];
}

int machine::register_vector(const char* name, spl_t level,
                             std::function<void(virtual_cpu&)> handler) {
  MACH_ASSERT(vectors_.size() < 32, "too many interrupt vectors");
  MACH_ASSERT(level > SPL0, "interrupt vector must have a maskable priority level");
  vectors_.push_back({name, level, std::move(handler)});
  return static_cast<int>(vectors_.size()) - 1;
}

void machine::post_ipi(int cpu_id, int vector) {
  MACH_ASSERT(vector >= 0 && vector < static_cast<int>(vectors_.size()),
              "post_ipi of unregistered vector");
  cpu(cpu_id).pending_.fetch_or(1u << vector, std::memory_order_release);
}

void machine::broadcast_ipi(int vector, int except_cpu) {
  for (int i = 0; i < ncpus(); ++i) {
    if (i != except_cpu) post_ipi(i, vector);
  }
}

void machine::bind_current(int cpu_id) {
  MACH_ASSERT(tl_cpu == nullptr, "thread already bound to a virtual CPU");
  virtual_cpu& c = cpu(cpu_id);
  const void* expected = nullptr;
  MACH_ASSERT(c.bound_token_.compare_exchange_strong(expected, current_thread_token(),
                                                     std::memory_order_acq_rel),
              "virtual CPU already has a bound thread");
  c.spl_.store(SPL0, std::memory_order_relaxed);
  tl_cpu = &c;
}

void machine::unbind_current() {
  MACH_ASSERT(tl_cpu != nullptr, "unbind of unbound thread");
  tl_cpu->bound_token_.store(nullptr, std::memory_order_release);
  tl_cpu = nullptr;
}

virtual_cpu* machine::current_cpu() noexcept { return tl_cpu; }

void machine::interrupt_point() {
  virtual_cpu* c = tl_cpu;
  if (c == nullptr) return;
  machine& m = instance();
  for (;;) {
    std::uint32_t pend = c->pending_.load(std::memory_order_acquire);
    if (pend == 0) return;
    int cur = c->spl_.load(std::memory_order_relaxed);
    int chosen = -1;
    // Deliver the highest-priority deliverable vector first.
    for (std::uint32_t bits = pend; bits != 0;) {
      int v = std::countr_zero(bits);
      bits &= bits - 1;
      const vector_entry& ve = m.vectors_[static_cast<std::size_t>(v)];
      if (ve.level > cur &&
          (chosen < 0 || ve.level > m.vectors_[static_cast<std::size_t>(chosen)].level)) {
        chosen = v;
      }
    }
    if (chosen < 0) {
      m.deferred_.fetch_add(1, std::memory_order_relaxed);
      return;  // everything pending is masked at the current spl
    }
    c->pending_.fetch_and(~(1u << chosen), std::memory_order_acq_rel);
    const vector_entry& ve = m.vectors_[static_cast<std::size_t>(chosen)];
    // Run the handler at the vector's priority level (nested delivery of
    // still-higher vectors remains possible inside the handler via its own
    // polling points).
    c->spl_.store(ve.level, std::memory_order_relaxed);
    m.delivered_.fetch_add(1, std::memory_order_relaxed);
    ve.handler(*c);
    c->spl_.store(cur, std::memory_order_relaxed);
  }
}

// --- spl interface ---

const char* to_string(spl_t level) noexcept {
  switch (level) {
    case SPL0: return "spl0";
    case SPLSOFTCLOCK: return "splsoftclock";
    case SPLNET: return "splnet";
    case SPLBIO: return "splbio";
    case SPLIMP: return "splimp";
    case SPLVM: return "splvm";
    case SPLCLOCK: return "splclock";
    case SPLSCHED: return "splsched";
    case SPLHIGH: return "splhigh";
  }
  return "spl?";
}

spl_t splraise(spl_t level) {
  virtual_cpu* c = machine::current_cpu();
  if (c == nullptr) return SPL0;
  int cur = c->spl_.load(std::memory_order_relaxed);
  MACH_ASSERT(level >= cur, "splraise used to lower the priority level");
  c->spl_.store(level, std::memory_order_relaxed);
  if (level > cur) kmet().smp_spl_raises.inc();
  return static_cast<spl_t>(cur);
}

void splx(spl_t saved) {
  virtual_cpu* c = machine::current_cpu();
  if (c == nullptr) return;
  c->spl_.store(saved, std::memory_order_relaxed);
  // Lowering may make pending interrupts deliverable.
  machine::interrupt_point();
}

spl_t spl_level() {
  virtual_cpu* c = machine::current_cpu();
  return c == nullptr ? SPL0 : c->level();
}

}  // namespace mach
