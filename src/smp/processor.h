// Virtual processors and polled interrupt delivery.
//
// The paper's section 7 hazards are *ordering* hazards between lock holds
// and interrupt acceptance; they do not require asynchronous preemption to
// reproduce. Our virtual CPUs therefore accept interrupts at well-defined
// polling points:
//
//   * every spin-wait iteration of a simple lock (via the global spin hook
//     installed by machine::configure) — "Processor 2 ... will not take
//     interrupts before the lock is released" falls out of this naturally
//     when CPU 2 spins with its spl raised;
//   * splx() when lowering the priority level;
//   * explicit machine::interrupt_point() calls in client code (the
//     "interrupts enabled inside the critical section" case).
//
// An interrupt vector has a priority level; a pending interrupt is
// deliverable only when the CPU's current spl is *below* that level. The
// handler runs with the CPU's spl raised to the vector's level.
//
// A thread becomes a CPU's execution context by binding to it
// (cpu_binding); the bound thread's identity is exported so the deadlock
// detector can attribute barrier-entry obligations to it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/compiler.h"
#include "smp/spl.h"

namespace mach {

class machine;

class alignas(cacheline_size) virtual_cpu {
 public:
  int id() const noexcept { return id_; }
  spl_t level() const noexcept { return static_cast<spl_t>(spl_.load(std::memory_order_relaxed)); }
  const void* bound_token() const noexcept { return bound_token_.load(std::memory_order_acquire); }
  bool has_pending() const noexcept { return pending_.load(std::memory_order_relaxed) != 0; }

  // Section 7's TLB-shootdown special logic: a processor "attempting to
  // acquire or holding" a pmap lock is removed from the barrier's
  // participant set. The pmap layer maintains this flag.
  bool at_pmap_lock() const noexcept { return at_pmap_lock_.load(std::memory_order_acquire); }
  void set_at_pmap_lock(bool v) noexcept { at_pmap_lock_.store(v, std::memory_order_release); }

 private:
  friend class machine;
  friend spl_t splraise(spl_t);
  friend void splx(spl_t);
  int id_ = -1;
  std::atomic<std::uint32_t> pending_{0};  // bit per vector
  std::atomic<int> spl_{SPL0};
  std::atomic<const void*> bound_token_{nullptr};
  std::atomic<bool> at_pmap_lock_{false};
};

class machine {
 public:
  static machine& instance() noexcept;

  // (Re)configure with `ncpus` virtual CPUs. Clears registered vectors.
  // Must not be called while any thread is bound.
  void configure(int ncpus);
  int ncpus() const noexcept { return static_cast<int>(cpus_.size()); }
  virtual_cpu& cpu(int i);

  // Register an interrupt vector (at most 32). Returns the vector id.
  // The handler runs on the receiving CPU with spl raised to `level`.
  int register_vector(const char* name, spl_t level, std::function<void(virtual_cpu&)> handler);

  // Post an interprocessor interrupt; it is delivered when the target CPU
  // reaches a polling point with spl below the vector's level.
  void post_ipi(int cpu, int vector);
  void broadcast_ipi(int vector, int except_cpu = -1);

  // Bind/unbind the calling thread as the execution context of a CPU.
  void bind_current(int cpu);
  void unbind_current();
  static virtual_cpu* current_cpu() noexcept;

  // Poll & deliver every deliverable pending interrupt on the current CPU.
  // No-op for unbound threads.
  static void interrupt_point();

  std::uint64_t interrupts_delivered() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t interrupts_deferred() const noexcept {
    return deferred_.load(std::memory_order_relaxed);
  }

 private:
  machine() = default;
  struct vector_entry {
    const char* name;
    spl_t level;
    std::function<void(virtual_cpu&)> handler;
  };
  friend spl_t splraise(spl_t);
  friend void splx(spl_t);
  friend spl_t spl_level();

  std::vector<std::unique_ptr<virtual_cpu>> cpus_;
  std::vector<vector_entry> vectors_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> deferred_{0};  // polls that skipped masked vectors
};

// RAII CPU binding.
class cpu_binding {
 public:
  explicit cpu_binding(int cpu) { machine::instance().bind_current(cpu); }
  ~cpu_binding() { machine::instance().unbind_current(); }
  cpu_binding(const cpu_binding&) = delete;
  cpu_binding& operator=(const cpu_binding&) = delete;
};

}  // namespace mach
