// Barrier synchronization at interrupt level (paper section 7).
//
// "all involved processors must enter the interrupt service routine before
// any can leave" — the structure TLB shootdown needs, and the one that
// deadlocks when interrupt protection is inconsistent. A round works as in
// the paper's description of [2]:
//
//   1. the initiator serializes against other initiators, arms the round,
//      and posts the barrier IPI to every participant CPU;
//   2. each participant, upon *accepting* the interrupt (which requires its
//      spl to be below the barrier vector's level), enters the ISR, signals
//      entry, and spins at interrupt level until the initiator releases;
//   3. once every participant has entered, the initiator performs the
//      critical update (e.g. changing a page table entry) and releases;
//   4. each participant runs the on_interrupt action (e.g. processing its
//      posted TLB invalidations) and leaves the ISR.
//
// A participant that never accepts the interrupt (spinning on a lock with
// interrupts disabled — the section 7 scenario) stalls the whole round:
// the initiator's wait is visible to the deadlock detector through
// barrier-entry resources attributed to the bound thread of each missing
// CPU, so experiment E10 can *name* the three-party cycle. Rounds also
// carry a timeout so a deadlocked round terminates instead of hanging.
//
// The paper actively discourages this construct ("a costly operation");
// E10 quantifies that cost as a function of participant count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

#include "smp/processor.h"
#include "sync/simple_lock.h"

namespace mach {

class interrupt_barrier {
 public:
  explicit interrupt_barrier(const char* name = "intr-barrier");

  // Register this barrier's IPI vector; call once after machine::configure.
  // `on_interrupt` (optional) runs on every accepting CPU after the barrier
  // part of the ISR — including for stale IPIs delivered after a round
  // ended, which is exactly how posted-but-deferred TLB updates get
  // processed by a CPU that was excluded or late.
  void attach(spl_t level = SPLHIGH, std::function<void(virtual_cpu&)> on_interrupt = nullptr);

  int vector() const noexcept { return vector_; }
  spl_t level() const noexcept { return level_; }

  enum class status { ok, aborted, timed_out };

  // Run one round. `participant_mask` is a bitmask of CPU ids that must
  // enter (the initiator's own CPU, if present, participates implicitly —
  // it cannot take its own IPI while it spins). `update` runs once all
  // participants are in. Initiator runs with spl raised to the vector level.
  status run(std::uint32_t participant_mask, const std::function<void()>& update,
             std::chrono::milliseconds timeout = std::chrono::milliseconds(1000));

  // External escape hatch: abort the in-flight round (used after the
  // deadlock detector has reported the cycle).
  void abort_current() noexcept { aborted_.store(true); }

  std::uint64_t rounds_ok() const noexcept { return rounds_ok_.load(std::memory_order_relaxed); }
  std::uint64_t rounds_failed() const noexcept {
    return rounds_failed_.load(std::memory_order_relaxed);
  }

 private:
  void isr(virtual_cpu& cpu);

  const char* name_;
  int vector_ = -1;
  spl_t level_ = SPLHIGH;
  std::function<void(virtual_cpu&)> on_interrupt_;

  simple_lock_data_t round_lock_{"barrier-round", /*track=*/false};
  std::atomic<bool> round_active_{false};
  // Round generation: bumped at every round start. A participant that has
  // not yet observed its round's release when the NEXT round begins would
  // otherwise spin on the new round's (reset) release flag forever — at
  // interrupt level, where it cannot take the new round's IPI. A change of
  // generation implies its round already released or aborted, so it may
  // leave.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint32_t> needed_{0};
  std::atomic<std::uint32_t> entered_{0};
  std::atomic<bool> released_{false};
  std::atomic<bool> aborted_{false};
  std::atomic<std::uint64_t> rounds_ok_{0};
  std::atomic<std::uint64_t> rounds_failed_{0};

  // Wait-graph resource addresses: one entry obligation per CPU plus the
  // release the participants spin on.
  char entry_slot_[32] = {};
  char release_slot_ = 0;
};

}  // namespace mach
