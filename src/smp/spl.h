// Interrupt priority levels (paper section 7).
//
// "each lock must always be acquired at the same interrupt priority level
// (spl0, splvm, splnet, splclock, etc.), and held at that level or higher"
// — the design rule whose violation produces the three-processor barrier
// deadlock of section 7. These functions manipulate the *current virtual
// CPU's* priority level; they are no-ops for threads not bound to a CPU
// (plain threads conceptually run with interrupts enabled at spl0 and can
// never take our virtual interrupts anyway).
#pragma once

namespace mach {

enum spl_t : int {
  SPL0 = 0,        // all interrupts enabled
  SPLSOFTCLOCK = 1,
  SPLNET = 2,
  SPLBIO = 3,
  SPLIMP = 4,
  SPLVM = 5,
  SPLCLOCK = 6,
  SPLSCHED = 7,
  SPLHIGH = 8,     // all interrupts blocked
};

const char* to_string(spl_t level) noexcept;

// Raise the current CPU's priority to at least `level`; returns the
// previous level for the matching splx(). Raising is idempotent; an
// attempt to *lower* through splraise is a fatal misuse.
spl_t splraise(spl_t level);

// Restore a previously saved level. Lowering makes newly enabled pending
// interrupts deliverable and delivers them immediately.
void splx(spl_t saved);

// The current CPU's level (SPL0 for unbound threads).
spl_t spl_level();

// RAII: raise on construction, restore on destruction.
class spl_guard {
 public:
  explicit spl_guard(spl_t level) : saved_(splraise(level)) {}
  ~spl_guard() { splx(saved_); }
  spl_guard(const spl_guard&) = delete;
  spl_guard& operator=(const spl_guard&) = delete;

 private:
  spl_t saved_;
};

}  // namespace mach
