// Processor sets — the processor-allocation subsystem (paper section 7.1:
// "The locking primitives have been extensively used in subsequently
// designed kernel subsystems (e.g., processor allocation [3])").
//
// A processor set owns a group of processors and the tasks assigned to
// them. It is a normal kernel object: reference counted, deactivatable,
// protected by its simple lock. Two conventions from section 5 are used
// and validated here:
//   * locks are ordered by object type within the subsystem: processor
//     set before task;
//   * two objects of the same type (two psets, during a task move) are
//     locked in address order.
#pragma once

#include "kern/task.h"
#include "sync/lock_order.h"

namespace mach {

inline constexpr lock_class pset_lock_class{"sched", "pset-lock", 0};
inline constexpr lock_class pset_task_lock_class{"sched", "task-lock", 1};

class processor_set final : public kobject {
 public:
  explicit processor_set(const char* name = "processor-set");
  ~processor_set() override;

  // --- processor assignment (by virtual CPU id) ---
  kern_return_t assign_processor(int cpu_id);
  kern_return_t remove_processor(int cpu_id);
  std::vector<int> processors();
  std::size_t processor_count();

  // --- task assignment ---
  // A task may be assigned to at most one set at a time; callers moving a
  // task between sets must use move_task (which orders the two pset locks
  // by address, per the section 5 convention).
  kern_return_t assign_task(ref_ptr<task> t);
  kern_return_t remove_task(task* t);
  bool contains_task(task* t);
  std::size_t task_count();

  // Atomically move `t` from one set to the other. Fails with
  // KERN_FAILURE if `t` is not in `from`, KERN_TERMINATED if `to` is
  // deactivated.
  static kern_return_t move_task(processor_set& from, processor_set& to, task* t);

  // Shutdown (section 10 step 3): drop all tasks and processors.
  void shutdown_body() override;

 private:
  // Both lists protected by the kobject lock.
  std::vector<int> cpus_;
  std::vector<ref_ptr<task>> tasks_;

  // Lock held; returns the task's slot or tasks_.end().
  std::vector<ref_ptr<task>>::iterator find_task_locked(task* t);
};

}  // namespace mach
