// Zone allocator — Mach's zalloc-style typed memory zones.
//
// This is the substrate that makes "memory allocation (blocks if memory is
// not available)" (paper sec. 4) a real, exercisable behaviour: a zone has
// a capacity, and zone::alloc() sleeps through the event system when the
// zone is exhausted, waking when an element is freed or the capacity is
// raised. That property is what forces locks held across allocation to be
// Sleep locks, and it is the trigger for the vm_map_pageable deadlock
// replayed in experiment E6.
//
// Blocking while holding a tracked simple lock is fatal (enforced by
// thread_block), exactly the paper's rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "metrics/kmon.h"
#include "sync/simple_lock.h"

namespace mach {

class zone {
 public:
  // `max_elems` is the capacity ceiling ("physical memory"); alloc()
  // blocks once in_use reaches it.
  zone(const char* name, std::size_t elem_size, std::size_t max_elems);
  ~zone();
  zone(const zone&) = delete;
  zone& operator=(const zone&) = delete;

  // Allocate one element, sleeping while the zone is exhausted.
  void* alloc();
  // Allocate or return nullptr immediately if exhausted.
  void* alloc_nowait();
  void free(void* p);

  // Shortage/recovery simulation: lowering the ceiling makes future
  // allocations block sooner; raising it wakes blocked allocators.
  void set_max(std::size_t max_elems);

  std::size_t in_use() const;
  std::size_t capacity() const;
  const char* name() const noexcept { return name_; }
  // Number of allocations that had to sleep at least once.
  std::uint64_t alloc_sleeps() const;

 private:
  void* take_locked();  // lock held; nullptr if exhausted

  mutable simple_lock_data_t lock_;
  const char* name_;
  std::size_t elem_size_;
  std::size_t max_;
  std::size_t in_use_ = 0;
  std::uint64_t sleeps_ = 0;
  // Threads currently asleep in alloc(). Drives the free-side wakeup
  // policy: a free with multiple sleepers broadcasts instead of waking
  // one, so a wakeup wasted on a thread that cannot proceed (e.g. after a
  // shrink-then-grow ceiling sequence) never strands the others.
  std::size_t sleepers_now_ = 0;
  std::vector<void*> free_list_;
  std::vector<std::unique_ptr<char[]>> storage_;
  std::unordered_set<void*> outstanding_;  // double-free / foreign-free tripwire
  // Per-zone occupancy, evaluated lazily at kmon snapshot time (the alloc
  // and free hot paths carry no extra work for it).
  kmon::callback_gauge occupancy_;
};

// Typed convenience wrapper: construct/destroy T elements in a zone.
template <typename T>
class object_zone {
 public:
  object_zone(const char* name, std::size_t max_elems)
      : zone_(name, sizeof(T), max_elems) {}

  template <typename... Args>
  T* construct(Args&&... args) {
    return new (zone_.alloc()) T(std::forward<Args>(args)...);
  }

  template <typename... Args>
  T* construct_nowait(Args&&... args) {
    void* m = zone_.alloc_nowait();
    return m == nullptr ? nullptr : new (m) T(std::forward<Args>(args)...);
  }

  void destroy(T* p) {
    p->~T();
    zone_.free(p);
  }

  zone& raw() noexcept { return zone_; }

 private:
  zone zone_;
};

}  // namespace mach
