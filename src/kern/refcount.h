// Reference-count policies (paper section 8, experiment E7).
//
// Mach implements references as "a reference count field in the
// corresponding data structure", incremented and decremented under the
// object's lock — "actually acquiring a reference requires locking the
// object (or the portion containing its reference count)". That is
// locked_refcount below, and the discipline kobject builds on.
//
// Four interchangeable policies are provided, compared head-to-head in
// the E7 shoot-out and selectable per-object through kobject:
//
//   * locked_refcount  — the paper's design: count guarded by a simple
//     lock. Every get/put pays an acquire/release pair.
//   * atomic_refcount  — the "portion" form taken literally: one atomic
//     RMW, no lock. The modern baseline the paper's choice is measured
//     against.
//   * lockref_refcount — the Linux lockref technique (sync/lockref.h):
//     lock word and count packed into one 64-bit word, updated by a
//     BOUNDED cmpxchg loop. Fallback to the embedded locked path when
//     (a) the lock bit is observed set, or (b) kFastAttempts cmpxchges
//     lose their race (livelock bound). Get/put on an unlocked object
//     never touches the spinlock.
//   * striped_refcount — per-slot counters for long-lived hot objects
//     (pset, the pager-backed memory object) whose single count line
//     would ping-pong. Threads get/put against a thread-affine slot (its
//     own cache line, each a lockref64 word); release-to-zero detection
//     happens in a locked reconcile that folds every slot into a base
//     count. Invariant making fast-path puts provably non-final: slots
//     never go negative and base stays >= 1 while the object is alive, so
//     a put that keeps its slot >= 0 cannot be the last reference; a put
//     that would drive its slot negative takes the reconcile path
//     instead. At zero the reconcile marks every slot with the sticky
//     kDeadBit, which is how clone-from-dead panics stay exact.
//
// Observable semantics are identical across policies (asserted by the
// policy-equivalence property tests): release() returns true exactly
// once, over-release and clone-from-dead MACH_ASSERT identically, and
// counts match a sequential oracle. Sticky references (section 8: a
// terminated object's data structure survives while pointers to it
// exist) need no policy cooperation — deactivation never touches the
// count word, so clones of still-held references ride the fast path on
// deactivated objects exactly as on active ones; only the count reaching
// zero retires the word.
//
// Tracing discipline: every policy emits ktrace ref_take/ref_release on
// every path (records carry the active kspan context automatically).
// ref_release arg2 is the exact remaining count where the policy knows it
// (locked always; atomic/lockref exactly, from the RMW's return;
// striped's fast path only knows "not last" and emits 1) — arg2 == 0
// always and only marks destruction. locked_refcount additionally
// guarantees trace ORDER: it emits while still holding the lock, so the
// destroying record is sequenced after every other release record for
// that object (regression-tested; lock-free fast paths cannot promise
// inter-thread emit order, only per-record exactness).
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <string>

#include "base/panic.h"
#include "metrics/kmetrics.h"
#include "sync/lockref.h"
#include "sync/simple_lock.h"
#include "trace/ktrace.h"

namespace mach {

// The paper's design: count guarded by a simple lock.
class locked_refcount {
 public:
  explicit locked_refcount(int initial = 1) : count_(initial) {
    simple_lock_init(&lock_, "refcount", /*tracked=*/false);
  }

  void acquire(const char* who = nullptr) {
    const char* name = who != nullptr ? who : "locked_refcount";
    simple_lock(&lock_);
    MACH_ASSERT(count_ > 0, std::string("reference cloned from dead ") + name);
    ++count_;
    // Emit under the lock: the record order then matches the count order.
    ktrace::emit(trace_kind::ref_take, name, reinterpret_cast<std::uint64_t>(this),
                 static_cast<std::uint64_t>(count_));
    simple_unlock(&lock_);
  }

  // Returns true if this released the last reference.
  bool release(const char* who = nullptr) {
    const char* name = who != nullptr ? who : "locked_refcount";
    simple_lock(&lock_);
    MACH_ASSERT(count_ > 0, std::string("reference over-release on ") + name);
    int remaining = --count_;
    // Emit while the lock still pins the object. Once we unlock, a racing
    // release may drop the last reference and the caller may destroy the
    // object; an emit issued after that point would sequence a ref_release
    // record AFTER the destruction record (or attribute it to a recycled
    // address). Capturing the fields and emitting under the lock makes the
    // arg2 == 0 record provably the final trace record for this object.
    ktrace::emit(trace_kind::ref_release, name, reinterpret_cast<std::uint64_t>(this),
                 static_cast<std::uint64_t>(remaining));
    simple_unlock(&lock_);
    return remaining == 0;
  }

  int value() const {
    simple_lock(&lock_);
    int v = count_;
    simple_unlock(&lock_);
    return v;
  }

 private:
  mutable simple_lock_data_t lock_;
  int count_;
};

// The modern comparison point: lock-free count, one atomic RMW per op.
class atomic_refcount {
 public:
  explicit atomic_refcount(int initial = 1) : count_(initial) {}

  void acquire(const char* who = nullptr) {
    const char* name = who != nullptr ? who : "atomic_refcount";
    int prev = count_.fetch_add(1, std::memory_order_relaxed);
    if (prev <= 0) {
      // Undo before panicking: dead must stay sticky, or a (caught, in
      // tests) clone-from-dead panic would resurrect the count to 1 and a
      // later release would report a second "last" — the equivalence
      // property the other policies keep by checking before mutating.
      count_.fetch_sub(1, std::memory_order_relaxed);
      panic(std::string("reference cloned from dead ") + name);
    }
    ktrace::emit(trace_kind::ref_take, name, reinterpret_cast<std::uint64_t>(this),
                 static_cast<std::uint64_t>(prev + 1));
  }

  bool release(const char* who = nullptr) {
    const char* name = who != nullptr ? who : "atomic_refcount";
    int prev = count_.fetch_sub(1, std::memory_order_acq_rel);
    if (prev <= 0) {
      count_.fetch_add(1, std::memory_order_relaxed);  // sticky dead, as above
      panic(std::string("reference over-release on ") + name);
    }
    ktrace::emit(trace_kind::ref_release, name, reinterpret_cast<std::uint64_t>(this),
                 static_cast<std::uint64_t>(prev - 1));
    return prev == 1;
  }

  int value() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int> count_;
};

// Linux lockref: {lock, count} in one word, bounded cmpxchg fast path.
class lockref_refcount {
 public:
  explicit lockref_refcount(int initial = 1) : ref_(initial) {}

  void acquire(const char* who = nullptr) {
    const char* name = who != nullptr ? who : "lockref_refcount";
    std::uint64_t w = ref_.load();
    for (int attempt = 0; attempt < lockref64::kFastAttempts && !lockref64::is_locked(w);
         ++attempt) {
      std::int32_t c = lockref64::count_of(w);
      MACH_ASSERT(c > 0, std::string("reference cloned from dead ") + name);
      if (ref_.cas(w, lockref64::pack(c + 1))) {
        kmet().kern_lockref_fast.inc();
        ktrace::emit(trace_kind::ref_take, name, reinterpret_cast<std::uint64_t>(this),
                     static_cast<std::uint64_t>(c + 1));
        return;
      }
      cpu_relax();
    }
    // Lock bit observed set (a holder owns the count) or the cmpxchg
    // budget ran out under a stream of winners: the paper's locked path.
    ref_.lock();
    std::int32_t c = ref_.count_locked();
    if (c <= 0) {
      ref_.unlock();
      panic(std::string("reference cloned from dead ") + name);
    }
    ref_.add_locked(1);
    kmet().kern_lockref_slow.inc();
    ktrace::emit(trace_kind::ref_take, name, reinterpret_cast<std::uint64_t>(this),
                 static_cast<std::uint64_t>(c + 1));
    ref_.unlock();
  }

  bool release(const char* who = nullptr) {
    const char* name = who != nullptr ? who : "lockref_refcount";
    std::uint64_t w = ref_.load();
    for (int attempt = 0; attempt < lockref64::kFastAttempts && !lockref64::is_locked(w);
         ++attempt) {
      std::int32_t c = lockref64::count_of(w);
      MACH_ASSERT(c > 0, std::string("reference over-release on ") + name);
      if (ref_.cas(w, lockref64::pack(c - 1))) {
        kmet().kern_lockref_fast.inc();
        ktrace::emit(trace_kind::ref_release, name, reinterpret_cast<std::uint64_t>(this),
                     static_cast<std::uint64_t>(c - 1));
        return c == 1;
      }
      cpu_relax();
    }
    ref_.lock();
    std::int32_t c = ref_.count_locked();
    if (c <= 0) {
      ref_.unlock();
      panic(std::string("reference over-release on ") + name);
    }
    ref_.add_locked(-1);
    kmet().kern_lockref_slow.inc();
    // Under the embedded lock this path has the locked policy's trace-order
    // guarantee; the cmpxchg fast path above emits after its CAS instead.
    ktrace::emit(trace_kind::ref_release, name, reinterpret_cast<std::uint64_t>(this),
                 static_cast<std::uint64_t>(c - 1));
    ref_.unlock();
    return c == 1;
  }

  int value() const { return lockref64::count_of(ref_.load()); }

  // The embedded lock, exposed for call sites that already hold the
  // object locked (the paper's clone-under-lock form) and for the
  // lock-steal arms of the stress battery: while held, every fast path
  // falls back to waiting on it.
  void lock() { ref_.lock(); }
  void unlock() { ref_.unlock(); }
  bool try_lock() { return ref_.try_lock(); }

 private:
  lockref64 ref_;
};

// Per-slot counters with a locked reconcile on release-to-zero.
class striped_refcount {
 public:
  static constexpr int kSlots = 8;

  explicit striped_refcount(int initial = 1) : base_(initial) {
    if (initial <= 0) retire_slots_unlocked();
  }

  void acquire(const char* who = nullptr) {
    const char* name = who != nullptr ? who : "striped_refcount";
    lockref64& s = slots_[my_slot()].word;
    std::uint64_t w = s.load();
    for (int attempt = 0; attempt < lockref64::kFastAttempts && !lockref64::is_locked(w);
         ++attempt) {
      MACH_ASSERT(!lockref64::is_dead(w), std::string("reference cloned from dead ") + name);
      if (s.cas(w, lockref64::pack(lockref64::count_of(w) + 1))) {
        kmet().kern_lockref_fast.inc();
        ktrace::emit(trace_kind::ref_take, name, reinterpret_cast<std::uint64_t>(this), 0);
        return;
      }
      cpu_relax();
    }
    // Slot lock held (a reconcile is folding) or cmpxchg budget exhausted:
    // take just this slot's lock. Acquire never needs the global view —
    // the caller holds a reference, so the total cannot be zero.
    s.lock();
    if (lockref64::is_dead(s.load())) {
      s.unlock();
      panic(std::string("reference cloned from dead ") + name);
    }
    s.add_locked(1);
    kmet().kern_lockref_slow.inc();
    ktrace::emit(trace_kind::ref_take, name, reinterpret_cast<std::uint64_t>(this), 0);
    s.unlock();
  }

  bool release(const char* who = nullptr) {
    const char* name = who != nullptr ? who : "striped_refcount";
    lockref64& s = slots_[my_slot()].word;
    std::uint64_t w = s.load();
    for (int attempt = 0; attempt < lockref64::kFastAttempts && !lockref64::is_locked(w);
         ++attempt) {
      MACH_ASSERT(!lockref64::is_dead(w), std::string("reference over-release on ") + name);
      std::int32_t c = lockref64::count_of(w);
      // Fast path only while it keeps the slot non-negative: with every
      // slot >= 0 and base >= 1 while alive, a put that leaves its slot
      // >= 0 is provably not the last reference. Crossing below zero is
      // routed to the reconcile, the only place release-to-zero can be
      // decided.
      if (c < 1) break;
      if (s.cas(w, lockref64::pack(c - 1))) {
        kmet().kern_lockref_fast.inc();
        ktrace::emit(trace_kind::ref_release, name, reinterpret_cast<std::uint64_t>(this), 1);
        return false;
      }
      cpu_relax();
    }
    return reconcile_release(name);
  }

  // Racy diagnostic sum, exact at quiescence (like the other policies'
  // value(), it is a snapshot for tests and stats, not for decisions).
  int value() const {
    std::int64_t total = base_.load(std::memory_order_relaxed);
    for (const auto& s : slots_) total += lockref64::count_of(s.word.load());
    return static_cast<int>(total);
  }

 private:
  struct alignas(64) slot_t {
    lockref64 word{0};
  };

  // Thread-affine slot assignment: round-robin at first use, so up to
  // kSlots concurrent threads land on distinct cache lines.
  static unsigned my_slot() noexcept {
    static std::atomic<unsigned> next{0};
    thread_local unsigned mine = next.fetch_add(1, std::memory_order_relaxed);
    return mine % kSlots;
  }

  // Only called from the constructor (initial <= 0): no concurrency yet.
  void retire_slots_unlocked() {
    for (auto& s : slots_) s.word.unlock_to(0, lockref64::kDeadBit);
  }

  // The locked reconcile: take every slot lock (index order — the only
  // multi-lock path, so ordering is trivially acyclic), perform this
  // release against the folded total, and republish base/slots. While the
  // locks are held every fast path fails its cmpxchg and waits, so the
  // fold is a true snapshot.
  bool reconcile_release(const char* name) {
    for (auto& s : slots_) s.word.lock();
    if (lockref64::is_dead(slots_[0].word.load())) {
      for (auto& s : slots_) s.word.unlock();
      panic(std::string("reference over-release on ") + name);
    }
    std::int64_t total = base_.load(std::memory_order_relaxed);
    for (auto& s : slots_) total += s.word.count_locked();
    total -= 1;  // this release
    if (total < 0) {
      for (auto& s : slots_) s.word.unlock();
      panic(std::string("reference over-release on ") + name);
    }
    const bool last = total == 0;
    base_.store(total, std::memory_order_relaxed);
    kmet().kern_lockref_slow.inc();
    // Emit before unlocking: same ordering guarantee as the locked policy
    // — the destroying record cannot be outrun by later records.
    ktrace::emit(trace_kind::ref_release, name, reinterpret_cast<std::uint64_t>(this),
                 last ? 0 : 1);
    // Fold: slots to zero; at zero total, retire them with the sticky
    // dead bit so every later op panics from a single word load.
    for (auto& s : slots_) s.word.unlock_to(0, last ? lockref64::kDeadBit : 0);
    return last;
  }

  slot_t slots_[kSlots];
  // Folded remainder. Mutated only while ALL slot locks are held; atomic
  // so value() can snapshot it without them. Invariant: >= 1 while the
  // object is alive (the fold publishes the whole positive total here).
  std::atomic<std::int64_t> base_;
};

// --- runtime policy selection (threaded through kobject) ---

enum class refcount_policy : std::uint8_t { locked, atomic, lockref, striped };

inline constexpr refcount_policy kRefcountPolicies[] = {
    refcount_policy::locked,
    refcount_policy::atomic,
    refcount_policy::lockref,
    refcount_policy::striped,
};

const char* refcount_policy_name(refcount_policy p) noexcept;

// Parses "locked" / "atomic" / "lockref" / "striped"; false on no match.
bool refcount_policy_parse(const std::string& s, refcount_policy* out) noexcept;

// The kernel-wide default for kobject: MACHLOCK_REFCOUNT=<policy> if set
// and valid, else lockref (the fast path this library exists to measure).
refcount_policy default_refcount_policy() noexcept;

// A reference count with the policy chosen at construction — the form
// kobject embeds. Dispatch is one predictable switch; the storage is a
// union so only the selected policy is ever constructed (constructing a
// locked_refcount registers a lock; a striped_refcount is slot-array
// sized — neither should be paid by objects using another policy).
class krefcount {
 public:
  explicit krefcount(refcount_policy p, int initial = 1) : pol_(p) {
    switch (pol_) {
      case refcount_policy::locked:
        new (&u_.lk) locked_refcount(initial);
        break;
      case refcount_policy::atomic:
        new (&u_.at) atomic_refcount(initial);
        break;
      case refcount_policy::lockref:
        new (&u_.lr) lockref_refcount(initial);
        break;
      case refcount_policy::striped:
        new (&u_.st) striped_refcount(initial);
        break;
    }
  }

  ~krefcount() {
    switch (pol_) {
      case refcount_policy::locked:
        u_.lk.~locked_refcount();
        break;
      case refcount_policy::atomic:
        u_.at.~atomic_refcount();
        break;
      case refcount_policy::lockref:
        u_.lr.~lockref_refcount();
        break;
      case refcount_policy::striped:
        u_.st.~striped_refcount();
        break;
    }
  }

  krefcount(const krefcount&) = delete;
  krefcount& operator=(const krefcount&) = delete;

  void acquire(const char* who = nullptr) {
    switch (pol_) {
      case refcount_policy::locked:
        u_.lk.acquire(who);
        break;
      case refcount_policy::atomic:
        u_.at.acquire(who);
        break;
      case refcount_policy::lockref:
        u_.lr.acquire(who);
        break;
      case refcount_policy::striped:
        u_.st.acquire(who);
        break;
    }
  }

  bool release(const char* who = nullptr) {
    switch (pol_) {
      case refcount_policy::locked:
        return u_.lk.release(who);
      case refcount_policy::atomic:
        return u_.at.release(who);
      case refcount_policy::lockref:
        return u_.lr.release(who);
      case refcount_policy::striped:
        return u_.st.release(who);
    }
    panic("krefcount: corrupt policy tag");
  }

  int value() const {
    switch (pol_) {
      case refcount_policy::locked:
        return u_.lk.value();
      case refcount_policy::atomic:
        return u_.at.value();
      case refcount_policy::lockref:
        return u_.lr.value();
      case refcount_policy::striped:
        return u_.st.value();
    }
    panic("krefcount: corrupt policy tag");
  }

  refcount_policy policy() const noexcept { return pol_; }

 private:
  union storage {
    storage() {}
    ~storage() {}
    locked_refcount lk;
    atomic_refcount at;
    lockref_refcount lr;
    striped_refcount st;
  } u_;
  refcount_policy pol_;
};

}  // namespace mach
