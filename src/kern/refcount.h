// Reference-count policies (paper section 8, experiment E7).
//
// Mach implements references as "a reference count field in the
// corresponding data structure", incremented and decremented under the
// object's lock — "actually acquiring a reference requires locking the
// object (or the portion containing its reference count)". That is
// locked_refcount below, and the discipline kobject builds on.
//
// atomic_refcount is the modern alternative (a single atomic RMW, no lock)
// offered for the E7 comparison: it shows what the lock costs and why the
// paper's choice still made sense (the object lock is usually already held
// at clone sites, making the increment free).
#pragma once

#include <atomic>
#include <cstdint>

#include "base/panic.h"
#include "sync/simple_lock.h"
#include "trace/ktrace.h"

namespace mach {

// The paper's design: count guarded by a simple lock.
class locked_refcount {
 public:
  explicit locked_refcount(int initial = 1) : count_(initial) {
    simple_lock_init(&lock_, "refcount", /*tracked=*/false);
  }

  void acquire() {
    simple_lock(&lock_);
    MACH_ASSERT(count_ > 0, "reference cloned from a dead object");
    ++count_;
    simple_unlock(&lock_);
    ktrace::emit(trace_kind::ref_take, "locked_refcount", reinterpret_cast<std::uint64_t>(this));
  }

  // Returns true if this released the last reference.
  bool release() {
    simple_lock(&lock_);
    MACH_ASSERT(count_ > 0, "reference over-release");
    bool last = --count_ == 0;
    simple_unlock(&lock_);
    ktrace::emit(trace_kind::ref_release, "locked_refcount",
                 reinterpret_cast<std::uint64_t>(this), last ? 0 : 1);
    return last;
  }

  int value() const {
    simple_lock(&lock_);
    int v = count_;
    simple_unlock(&lock_);
    return v;
  }

 private:
  mutable simple_lock_data_t lock_;
  int count_;
};

// The modern comparison point: lock-free count.
class atomic_refcount {
 public:
  explicit atomic_refcount(int initial = 1) : count_(initial) {}

  void acquire() {
    int prev = count_.fetch_add(1, std::memory_order_relaxed);
    MACH_ASSERT(prev > 0, "reference cloned from a dead object");
    ktrace::emit(trace_kind::ref_take, "atomic_refcount", reinterpret_cast<std::uint64_t>(this),
                 static_cast<std::uint64_t>(prev + 1));
  }

  bool release() {
    int prev = count_.fetch_sub(1, std::memory_order_acq_rel);
    MACH_ASSERT(prev > 0, "reference over-release");
    ktrace::emit(trace_kind::ref_release, "atomic_refcount",
                 reinterpret_cast<std::uint64_t>(this), static_cast<std::uint64_t>(prev - 1));
    return prev == 1;
  }

  int value() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int> count_;
};

}  // namespace mach
