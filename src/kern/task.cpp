#include "kern/task.h"

namespace mach {

thread_obj::thread_obj(ref_ptr<task> owner) : kobject("thread"), owner_(std::move(owner)) {}

ref_ptr<task> thread_obj::owner() {
  lock();
  ref_ptr<task> r = owner_;
  unlock();
  return r;
}

kern_return_t thread_obj::suspend() {
  lock();
  if (!active()) {
    unlock();
    return KERN_TERMINATED;
  }
  ++suspend_count_;
  unlock();
  return KERN_SUCCESS;
}

kern_return_t thread_obj::resume() {
  lock();
  if (!active()) {
    unlock();
    return KERN_TERMINATED;
  }
  if (suspend_count_ == 0) {
    unlock();
    return KERN_FAILURE;
  }
  --suspend_count_;
  unlock();
  return KERN_SUCCESS;
}

int thread_obj::suspend_count() {
  lock();
  int n = suspend_count_;
  unlock();
  return n;
}

task::task(const char* name, bool split_ipc_lock) : kobject(name), split_(split_ipc_lock) {
  space_ = split_ ? std::make_unique<ipc_space>("task-ipc-space")
                  : std::make_unique<ipc_space>(lock_addr());
}

task::~task() = default;

kern_return_t task::suspend() {
  lock();
  if (!active()) {
    unlock();
    return KERN_TERMINATED;
  }
  ++suspend_count_;
  unlock();
  return KERN_SUCCESS;
}

kern_return_t task::resume() {
  lock();
  if (!active()) {
    unlock();
    return KERN_TERMINATED;
  }
  if (suspend_count_ == 0) {
    unlock();
    return KERN_FAILURE;
  }
  --suspend_count_;
  unlock();
  return KERN_SUCCESS;
}

int task::suspend_count() {
  lock();
  int n = suspend_count_;
  unlock();
  return n;
}

ref_ptr<thread_obj> task::create_thread() {
  auto self = ref_ptr<task>::clone_from(this);
  auto t = make_object<thread_obj>(std::move(self));
  lock();
  if (!active()) {
    unlock();
    return {};  // cannot add threads to a dead task
  }
  threads_.push_back(t);  // task's reference (clone)
  unlock();
  return t;
}

bool task::remove_thread(thread_obj* t) {
  ref_ptr<thread_obj> doomed;
  lock();
  bool found = false;
  for (auto it = threads_.begin(); it != threads_.end(); ++it) {
    if (it->get() == t) {
      doomed = std::move(*it);
      threads_.erase(it);
      found = true;
      break;
    }
  }
  unlock();
  return found;
}

std::size_t task::thread_count() {
  lock();
  std::size_t n = threads_.size();
  unlock();
  return n;
}

std::vector<ref_ptr<thread_obj>> task::threads() {
  lock();
  std::vector<ref_ptr<thread_obj>> copy = threads_;  // clones each
  unlock();
  return copy;
}

void task::set_vm_map(ref_ptr<kobject> map) {
  ref_ptr<kobject> old;
  lock();
  old = std::move(vm_map_);
  vm_map_ = std::move(map);
  unlock();
}

ref_ptr<kobject> task::vm_map_ref() {
  lock();
  ref_ptr<kobject> r = vm_map_;
  unlock();
  return r;
}

void task::shutdown_body() {
  // Deactivate and detach every thread; their references die outside the
  // task lock.
  std::vector<ref_ptr<thread_obj>> doomed;
  lock();
  doomed.swap(threads_);
  unlock();
  for (auto& t : doomed) t->deactivate();
  doomed.clear();
}

}  // namespace mach
