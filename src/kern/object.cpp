#include "kern/object.h"

#include "metrics/kmetrics.h"
#include "sync/deadlock.h"
#include "trace/ktrace.h"

namespace mach {
namespace {

std::atomic<std::uint64_t> g_live_objects{0};

}  // namespace

kobject::kobject(const char* type_name, refcount_policy ref_policy)
    : ref_(ref_policy, 1), type_name_(type_name) {
  simple_lock_init(&lock_, type_name);
  g_live_objects.fetch_add(1, std::memory_order_relaxed);
}

kobject::~kobject() { g_live_objects.fetch_sub(1, std::memory_order_relaxed); }

void kobject::ref_clone() {
  kmet().kern_ref_takes.inc();
  // The policy asserts clone-from-dead and emits ref_take (with this
  // object's type as the trace name, carrying the active kspan context).
  ref_.acquire(type_name_);
}

void kobject::ref_clone_locked() {
  MACH_ASSERT(locked_by_me(), "ref_clone_locked without the object lock");
  kmet().kern_ref_takes.inc();
  ref_.acquire(type_name_);
}

void kobject::ref_release() {
  // "Releasing a reference ... may perform other operations that can
  // block. Thus it may not be done while holding any non-sleep locks, nor
  // between an assert_wait() and the corresponding thread_block()."
  // We cannot see an unpaired assert_wait from here (thread_block's own
  // assert covers it), but the lock rule is checkable:
  kmet().kern_ref_releases.inc();
  bool last = ref_.release(type_name_);
  if (last) {
    MACH_ASSERT(held_tracked_simple_locks() == 0,
                std::string("last reference to ") + type_name_ +
                    " released while holding a simple lock (destruction may block)");
    on_last_reference();
    delete this;
  }
}

bool kobject::deactivate() {
  lock();
  bool did = deactivate_locked();
  unlock();
  return did;
}

bool kobject::deactivate_locked() {
  MACH_ASSERT(locked_by_me(), "deactivate_locked without the object lock");
  bool did = active_;
  active_ = false;
  if (did) kmet().kern_deactivations.inc();
  ktrace::emit(trace_kind::ref_deactivate, type_name_, reinterpret_cast<std::uint64_t>(this),
               did ? 1 : 0);
  return did;
}

std::uint64_t kobject::live_objects() { return g_live_objects.load(std::memory_order_relaxed); }

}  // namespace mach
