#include "kern/refcount.h"

#include <cstdlib>

namespace mach {

const char* refcount_policy_name(refcount_policy p) noexcept {
  switch (p) {
    case refcount_policy::locked:
      return "locked";
    case refcount_policy::atomic:
      return "atomic";
    case refcount_policy::lockref:
      return "lockref";
    case refcount_policy::striped:
      return "striped";
  }
  return "unknown";
}

bool refcount_policy_parse(const std::string& s, refcount_policy* out) noexcept {
  for (refcount_policy p : kRefcountPolicies) {
    if (s == refcount_policy_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

refcount_policy default_refcount_policy() noexcept {
  static const refcount_policy chosen = [] {
    refcount_policy p = refcount_policy::lockref;
    if (const char* env = std::getenv("MACHLOCK_REFCOUNT")) refcount_policy_parse(env, &p);
    return p;
  }();
  return chosen;
}

}  // namespace mach
