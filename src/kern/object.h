// Kernel objects: the lock / reference / deactivation discipline of paper
// sections 8–10, shared by every Mach abstraction (task, thread, port,
// memory object).
//
// Rules encoded here:
//   * an object is created with a single reference to itself (its creator's);
//   * a reference guarantees only that the DATA STRUCTURE exists — "it is
//     possible for an object to be terminated, but its data structure to
//     remain while pointers to it exist";
//   * cloning a reference locks the object and increments the count; it
//     never blocks, so it is safe while holding other locks;
//   * releasing a reference may destroy the object, which may block —
//     so it must not happen while any (tracked, non-sleep) lock is held,
//     nor between assert_wait and thread_block;
//   * deactivation (section 9) marks the object dead under its lock; any
//     operation that depends on liveness must re-check after every relock.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "base/panic.h"
#include "kern/refcount.h"
#include "sync/simple_lock.h"

namespace mach {

class kobject {
 public:
  // `ref_policy` selects the reference-count implementation (kern/
  // refcount.h): lockref by default (overridable kernel-wide via
  // MACHLOCK_REFCOUNT); long-lived hot objects such as processor sets and
  // pager-backed memory objects pass refcount_policy::striped.
  explicit kobject(const char* type_name,
                   refcount_policy ref_policy = default_refcount_policy());
  virtual ~kobject();
  kobject(const kobject&) = delete;
  kobject& operator=(const kobject&) = delete;

  // --- object lock ---
  void lock() { simple_lock(&lock_); }
  void unlock() { simple_unlock(&lock_); }
  bool lock_try() { return simple_lock_try(&lock_); }
  bool locked_by_me() const { return simple_lock_held(&lock_); }
  simple_lock_data_t* lock_addr() { return &lock_; }

  // --- references (section 8) ---
  // Clone a reference the caller already (transitively) holds. Per the
  // paper, acquiring a reference requires locking the object "or the
  // portion containing its reference count"; kobject uses the
  // portion-lock form (the policy-selected count in kern/refcount.h,
  // lockref by default) so that cloning a back-pointer's reference while
  // holding another object's lock can never invert a lock order — no
  // policy's count lock is tracked or can block. (The four policies are
  // compared head-to-head in E7.)
  void ref_clone();
  // As ref_clone, for call sites already holding the object lock (kept to
  // express the paper's protocol at those sites; the count update itself
  // is the same atomic portion).
  void ref_clone_locked();
  // Release one reference. If it was the last: no pointers, no operations
  // in progress, no way to invoke new ones — destroy. Destruction may
  // block, so releasing is fatal while a tracked simple lock is held.
  void ref_release();
  // Racy snapshot for diagnostics/tests.
  int ref_count() const { return ref_.value(); }
  // Which count policy this object was built with.
  refcount_policy ref_policy() const { return ref_.policy(); }

  // --- deactivation (section 9) ---
  // Mark deactivated; idempotent; returns true if this call did it.
  bool deactivate();
  // As deactivate(), for callers already holding the object lock — lets a
  // subsystem make "deactivate + mutate other locked state" one atomic
  // critical section (e.g. port::destroy_port deactivates and drains the
  // queue under a single lock hold, closing the send-after-drain race).
  bool deactivate_locked();
  // Liveness check; only meaningful under the object lock, and must be
  // re-checked after any unlock/relock.
  bool active() const {
    MACH_ASSERT(locked_by_me(), "active() checked without holding the object lock");
    return active_;
  }
  // Unlocked peek for statistics only (never for correctness decisions).
  bool active_hint() const { return active_; }

  // Shutdown step 3 hook (paper section 10): subsystem-specific teardown of
  // a deactivated object ("Shutdown/destroy the object. Requires a lock."
  // — implementations take the object lock internally as needed).
  virtual void shutdown_body() {}

  const char* type_name() const { return type_name_; }

  // Count of live kobject instances — the use-after-free tripwire the
  // shutdown experiments (E11) assert on.
  static std::uint64_t live_objects();

 protected:
  // Hook run when the last reference dies, before deletion (e.g. return
  // memory to a zone, close ports). Runs without the object lock held.
  virtual void on_last_reference() {}

 private:
  mutable simple_lock_data_t lock_;
  // The count, under the policy chosen at construction. Every policy keeps
  // the paper's discipline observable (over-release and clone-from-dead
  // panic identically); the lockref default makes get/put on an unlocked
  // object a single cmpxchg. See kern/refcount.h for the policy catalogue.
  krefcount ref_;
  bool active_ = true;
  const char* type_name_;
};

// Smart pointer managing one reference to a kobject subtype.
template <typename T>
class ref_ptr {
 public:
  ref_ptr() = default;
  // Adopt an existing (e.g. creation) reference without cloning.
  static ref_ptr adopt(T* p) {
    ref_ptr r;
    r.p_ = p;
    return r;
  }
  // Clone a new reference from a raw pointer the caller keeps valid.
  static ref_ptr clone_from(T* p) {
    if (p != nullptr) p->ref_clone();
    return adopt(p);
  }

  ref_ptr(const ref_ptr& o) : p_(o.p_) {
    if (p_ != nullptr) p_->ref_clone();
  }
  ref_ptr(ref_ptr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }

  // Converting constructors (derived → base).
  template <typename U>
    requires std::is_convertible_v<U*, T*>
  ref_ptr(const ref_ptr<U>& o) : p_(o.get()) {  // NOLINT(google-explicit-constructor)
    if (p_ != nullptr) p_->ref_clone();
  }
  template <typename U>
    requires std::is_convertible_v<U*, T*>
  ref_ptr(ref_ptr<U>&& o) noexcept : p_(o.release_to_caller()) {}  // NOLINT(google-explicit-constructor)

  ref_ptr& operator=(const ref_ptr& o) {
    if (this != &o) {
      ref_ptr tmp(o);
      swap(tmp);
    }
    return *this;
  }
  ref_ptr& operator=(ref_ptr&& o) noexcept {
    swap(o);
    return *this;
  }
  ~ref_ptr() { reset(); }

  void reset() {
    if (p_ != nullptr) {
      p_->ref_release();
      p_ = nullptr;
    }
  }
  // Hand the reference to the caller (no release).
  T* release_to_caller() {
    T* p = p_;
    p_ = nullptr;
    return p;
  }
  void swap(ref_ptr& o) noexcept { std::swap(p_, o.p_); }

  T* get() const { return p_; }
  T* operator->() const { return p_; }
  T& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  T* p_ = nullptr;
};

// Create an object; the returned ref_ptr owns the creation reference.
template <typename T, typename... Args>
ref_ptr<T> make_object(Args&&... args) {
  return ref_ptr<T>::adopt(new T(std::forward<Args>(args)...));
}

}  // namespace mach
