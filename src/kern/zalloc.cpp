#include "kern/zalloc.h"

#include <algorithm>

#include "base/panic.h"
#include "metrics/kmetrics.h"
#include "sched/event.h"
#include "sync/deadlock.h"

namespace mach {

zone::zone(const char* name, std::size_t elem_size, std::size_t max_elems)
    : name_(name),
      elem_size_(std::max(elem_size, sizeof(void*))),
      max_(max_elems),
      occupancy_("machlock_zone_in_use", "elements currently allocated from the zone",
                 [this] { return static_cast<double>(in_use()); }, "zone", name) {
  simple_lock_init(&lock_, name);
}

zone::~zone() {
  // Outstanding elements at teardown indicate a leak in the client; the
  // storage is reclaimed regardless (the zone owns it).
  MACH_ASSERT(outstanding_.empty(),
              std::string("zone '") + name_ + "' destroyed with elements outstanding");
}

void* zone::take_locked() {
  // The ceiling binds both paths: a shrunk zone must not hand out free-list
  // elements past the new capacity (they are "frames taken offline").
  if (in_use_ >= max_) return nullptr;
  if (!free_list_.empty()) {
    void* p = free_list_.back();
    free_list_.pop_back();
    ++in_use_;
    outstanding_.insert(p);
    return p;
  }
  if (in_use_ < max_) {
    storage_.push_back(std::make_unique<char[]>(elem_size_));
    void* p = storage_.back().get();
    ++in_use_;
    outstanding_.insert(p);
    return p;
  }
  return nullptr;
}

void* zone::alloc() {
  const void* me = current_thread_token();
  simple_lock(&lock_);
  bool slept = false;
  for (;;) {
    if (void* p = take_locked()) {
      if (slept) {
        --sleepers_now_;
        wait_graph::instance().thread_wait_done(me, this);
      }
      simple_unlock(&lock_);
      kmet().kern_zalloc_allocs.inc();
      return p;
    }
    if (!slept) {
      slept = true;
      ++sleeps_;
      ++sleepers_now_;
      kmet().kern_zalloc_sleeps.inc();
      wait_graph::instance().thread_waits(me, this, name_);
    }
    // The canonical release-one-lock-and-wait pattern (paper sec. 6).
    thread_sleep(this, &lock_);
    simple_lock(&lock_);
  }
}

void* zone::alloc_nowait() {
  simple_lock(&lock_);
  void* p = take_locked();
  simple_unlock(&lock_);
  if (p != nullptr) kmet().kern_zalloc_allocs.inc();
  return p;
}

void zone::free(void* p) {
  simple_lock(&lock_);
  if (outstanding_.erase(p) != 1) {
    simple_unlock(&lock_);
    panic(std::string("zone '") + name_ + "': free of element not allocated from it");
  }
  --in_use_;
  free_list_.push_back(p);
  const std::size_t sleepers = sleepers_now_;
  simple_unlock(&lock_);
  kmet().kern_zalloc_frees.inc();
  // Wakeup policy: with more than one sleeper, broadcast. A single
  // wake-one can be wasted on a sleeper that cannot proceed (its retake
  // raced a ceiling shrink or an alloc_nowait steal) and nothing would
  // re-signal the rest even though capacity exists; sleepers re-check
  // under the zone lock, so a broadcast is always safe, merely noisier —
  // and exhaustion is the rare path.
  if (sleepers > 1) {
    thread_wakeup(this);
  } else if (sleepers == 1) {
    thread_wakeup_one(this);
  }
}

void zone::set_max(std::size_t max_elems) {
  simple_lock(&lock_);
  bool grew = max_elems > max_;
  max_ = max_elems;
  simple_unlock(&lock_);
  if (grew) thread_wakeup(this);
}

std::size_t zone::in_use() const {
  simple_lock(&lock_);
  std::size_t v = in_use_;
  simple_unlock(&lock_);
  return v;
}

std::size_t zone::capacity() const {
  simple_lock(&lock_);
  std::size_t v = max_;
  simple_unlock(&lock_);
  return v;
}

std::uint64_t zone::alloc_sleeps() const {
  simple_lock(&lock_);
  std::uint64_t v = sleeps_;
  simple_unlock(&lock_);
  return v;
}

}  // namespace mach
