// Tasks and threads — the execution-environment objects of section 3,
// instrumented with the locking layout section 5 describes: "a task has
// two locks to allow task operations and ipc translations to occur in
// parallel". The task's kobject lock serializes task operations
// (suspend/resume/thread list); its IPC space has its own lock — unless
// the task is built in single-lock mode for the E12 ablation.
#pragma once

#include <memory>
#include <vector>

#include "ipc/space.h"
#include "kern/object.h"

namespace mach {

class task;

// A locus of control within a task.
class thread_obj final : public kobject {
 public:
  explicit thread_obj(ref_ptr<task> owner);

  // The owning task (clones a reference).
  ref_ptr<task> owner();

  kern_return_t suspend();
  kern_return_t resume();
  int suspend_count();

 private:
  ref_ptr<task> owner_;  // counted back-pointer
  int suspend_count_ = 0;
};

class task final : public kobject {
 public:
  // `split_ipc_lock`: Mach behaviour (true) gives the IPC space its own
  // lock; false shares the task lock (E12's coarse configuration).
  explicit task(const char* name = "task", bool split_ipc_lock = true);
  ~task() override;

  ipc_space& space() { return *space_; }
  bool split_ipc_lock() const { return split_; }

  // --- task operations (serialized by the task lock) ---
  kern_return_t suspend();
  kern_return_t resume();
  int suspend_count();

  // Create a thread in this task; the task keeps one reference, the
  // returned ref is the caller's.
  ref_ptr<thread_obj> create_thread();
  // Remove a thread (releases the task's reference). False if not ours.
  bool remove_thread(thread_obj* t);
  std::size_t thread_count();
  // Snapshot of the thread list (each entry a cloned reference).
  std::vector<ref_ptr<thread_obj>> threads();

  // Slot for the task's address space, set by the VM layer (held as a
  // generic kobject reference to keep kern below vm in the layering).
  void set_vm_map(ref_ptr<kobject> map);
  ref_ptr<kobject> vm_map_ref();

  // Shutdown hook (section 10 step 3): deactivates and drops all threads.
  void shutdown_body() override;

 private:
  bool split_;
  std::unique_ptr<ipc_space> space_;
  int suspend_count_ = 0;
  std::vector<ref_ptr<thread_obj>> threads_;
  ref_ptr<kobject> vm_map_;
};

}  // namespace mach
