#include "kern/pset.h"

#include <algorithm>

namespace mach {

// Processor sets live for the kernel's lifetime and every task/thread
// operation clones their reference: the striped count keeps that traffic
// on per-thread cache lines (kern/refcount.h).
processor_set::processor_set(const char* name) : kobject(name, refcount_policy::striped) {}

processor_set::~processor_set() = default;

kern_return_t processor_set::assign_processor(int cpu_id) {
  lock();
  ordered_hold order(lock_addr(), pset_lock_class);
  if (!active()) {
    unlock();
    return KERN_TERMINATED;
  }
  if (std::find(cpus_.begin(), cpus_.end(), cpu_id) != cpus_.end()) {
    unlock();
    return KERN_FAILURE;  // already assigned here
  }
  cpus_.push_back(cpu_id);
  unlock();
  return KERN_SUCCESS;
}

kern_return_t processor_set::remove_processor(int cpu_id) {
  lock();
  auto it = std::find(cpus_.begin(), cpus_.end(), cpu_id);
  if (it == cpus_.end()) {
    unlock();
    return KERN_FAILURE;
  }
  cpus_.erase(it);
  unlock();
  return KERN_SUCCESS;
}

std::vector<int> processor_set::processors() {
  lock();
  std::vector<int> copy = cpus_;
  unlock();
  return copy;
}

std::size_t processor_set::processor_count() {
  lock();
  std::size_t n = cpus_.size();
  unlock();
  return n;
}

std::vector<ref_ptr<task>>::iterator processor_set::find_task_locked(task* t) {
  return std::find_if(tasks_.begin(), tasks_.end(),
                      [t](const ref_ptr<task>& r) { return r.get() == t; });
}

kern_return_t processor_set::assign_task(ref_ptr<task> t) {
  if (!t) return KERN_FAILURE;
  lock();
  ordered_hold order(lock_addr(), pset_lock_class);
  if (!active()) {
    unlock();
    return KERN_TERMINATED;
  }
  if (find_task_locked(t.get()) != tasks_.end()) {
    unlock();
    return KERN_FAILURE;
  }
  tasks_.push_back(std::move(t));
  unlock();
  return KERN_SUCCESS;
}

kern_return_t processor_set::remove_task(task* t) {
  ref_ptr<task> doomed;  // released outside the lock
  lock();
  auto it = find_task_locked(t);
  if (it == tasks_.end()) {
    unlock();
    return KERN_FAILURE;
  }
  doomed = std::move(*it);
  tasks_.erase(it);
  unlock();
  return KERN_SUCCESS;
}

bool processor_set::contains_task(task* t) {
  lock();
  bool found = find_task_locked(t) != tasks_.end();
  unlock();
  return found;
}

std::size_t processor_set::task_count() {
  lock();
  std::size_t n = tasks_.size();
  unlock();
  return n;
}

kern_return_t processor_set::move_task(processor_set& from, processor_set& to, task* t) {
  if (&from == &to) return KERN_FAILURE;
  // Section 5: "If two objects of the same type must be locked, the
  // acquisitions can be ordered by address."
  processor_set* first = &from < &to ? &from : &to;
  processor_set* second = &from < &to ? &to : &from;
  first->lock();
  ordered_hold order1(first->lock_addr(), pset_lock_class);
  second->lock();
  ordered_hold order2(second->lock_addr(), pset_lock_class);

  kern_return_t kr;
  auto it = from.find_task_locked(t);
  if (it == from.tasks_.end()) {
    kr = KERN_FAILURE;
  } else if (!to.active()) {
    kr = KERN_TERMINATED;
  } else {
    to.tasks_.push_back(std::move(*it));
    from.tasks_.erase(it);
    kr = KERN_SUCCESS;
  }
  second->unlock();
  first->unlock();
  return kr;
}

void processor_set::shutdown_body() {
  std::vector<ref_ptr<task>> doomed;
  lock();
  doomed.swap(tasks_);
  cpus_.clear();
  unlock();
  doomed.clear();
}

}  // namespace mach
