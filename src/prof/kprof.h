// kprof — statistical sampling profiler with lock-state attribution.
//
// The event-based stack (ktrace timelines, lockstat counters, kmon rates,
// kspan critical paths) can say a lock was acquired ten million times; it
// cannot say, statistically, what every kernel thread was doing at any
// wall-clock instant. kprof supplies that missing modality with the
// classic two halves of a sampling profiler:
//
//   * every kthread continuously PUBLISHES a single 64-bit *activity
//     word* — {state, subject, request flag} packed into one atomic slot —
//     with plain relaxed stores at the wait/hold transitions that already
//     exist (simple-lock slow path, complex-lock wait/acquire/release,
//     thread_block suspension). Publishing is always on; the cost is one
//     store to the thread's own cacheline-padded slot, paid only on slow
//     paths plus complex-lock acquire/release (see docs/OBSERVABILITY.md
//     for measured numbers);
//   * an optional SAMPLER thread walks the slot table at a configured
//     rate, accumulating weighted samples into per-(state, site) profiles,
//     and keeps a *flight recorder* ring of periodic kmon counter/gauge
//     snapshots so counter behavior over the course of a run — not just
//     its end-of-run total — is visible.
//
// Activity states:
//   running      — on CPU (or at least not inside an instrumented wait);
//   spinning     — simple-lock contended slow path; subject = lock name;
//   lock_waiting — complex-lock wait loop (sleep or spin); subject = name;
//   holding      — holding a complex lock (read or write side); subject =
//                  lock name. Simple-lock holds are NOT published: they are
//                  nanosecond-scale, invisible at sampling rates, and
//                  publishing them would put stores on the uncontended
//                  fast path (the paper's cardinal sin);
//   blocked      — suspended in thread_block; subject = event address,
//                  resolved against the lock registry at export when the
//                  event is a live lock (thread_sleep style waits).
//
// Word layout: [63:56] state, [55] request flag (a kspan context was
// active when published), [54:0] subject. Lock-state subjects are static
// name pointers (the ktrace contract: lock names are string literals);
// blocked subjects are event addresses. Last-write-wins, no stack: a
// thread holding two locks reports the most recent transition, which is
// the usual statistical-profiler trade.
//
// Enable the sampler via MACHLOCK_PROF=<file|1> (+ MACHLOCK_PROF_HZ,
// MACHLOCK_PROF_FLIGHT_MS) through trace_session, or programmatically with
// kprof::sampler::instance().start(). tools/prof_report renders the
// exported JSON as folded stacks (flamegraph input), a contention top
// table, and the schema-stamped flight-recorder JSON.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "base/compiler.h"
#include "trace/kspan.h"

namespace mach::kprof {

enum class activity : std::uint8_t {
  running = 0,   // word 0: a claimed slot that never published a wait
  spinning,      // simple-lock slow path
  lock_waiting,  // complex-lock wait loop
  holding,       // complex-lock hold (read or write side)
  blocked,       // suspended in thread_block
};
const char* to_string(activity a) noexcept;

// Packed activity word; see layout in the header comment.
using activity_word = std::uint64_t;

inline constexpr std::uint64_t k_subject_mask = (std::uint64_t{1} << 55) - 1;
inline constexpr std::uint64_t k_request_bit = std::uint64_t{1} << 55;

inline activity_word pack(activity a, const void* subject, bool request) noexcept {
  return (static_cast<activity_word>(a) << 56) | (request ? k_request_bit : 0) |
         (reinterpret_cast<std::uintptr_t>(subject) & k_subject_mask);
}

inline activity unpack_state(activity_word w) noexcept {
  return static_cast<activity>(w >> 56);
}
inline bool unpack_request(activity_word w) noexcept { return (w & k_request_bit) != 0; }
inline std::uint64_t unpack_subject(activity_word w) noexcept { return w & k_subject_mask; }

namespace detail {

// One thread's published slot. The owner writes `word` with plain relaxed
// stores; the sampler reads all slots racily — a torn observation is
// impossible (single 64-bit atomic) and a stale one is just the previous
// instant's truth.
struct alignas(cacheline_size) activity_slot {
  std::atomic<const void*> token{nullptr};  // owner thread token; null = free
  std::atomic<activity_word> word{0};
};

inline constexpr int k_slots = 256;
extern activity_slot g_slots[k_slots];
extern thread_local activity_slot* t_slot;

// Claim a slot for the calling thread (releasing it at thread exit) and
// return it. When the table is full the thread gets a private overflow
// slot: publishing stays cheap, the thread just goes unsampled.
activity_slot* claim_slot() noexcept;

}  // namespace detail

// Publish the calling thread's activity: one relaxed store (plus a
// once-per-thread slot claim). Always on — the sampler decides whether
// anyone is reading.
inline void publish(activity a, const void* subject) noexcept {
  detail::activity_slot* s = detail::t_slot;
  if (s == nullptr) [[unlikely]] s = detail::claim_slot();
  s->word.store(pack(a, subject, kspan::current() != 0), std::memory_order_relaxed);
}

// The calling thread's current packed word (0 when nothing published) /
// raw republish — the save/restore pair the nested instrumentation points
// use (a complex-lock wait that blocks through the event system restores
// the lock attribution when the inner block ends).
inline activity_word self_word() noexcept {
  detail::activity_slot* s = detail::t_slot;
  return s == nullptr ? 0 : s->word.load(std::memory_order_relaxed);
}
inline void publish_word(activity_word w) noexcept {
  detail::activity_slot* s = detail::t_slot;
  if (s == nullptr) [[unlikely]] s = detail::claim_slot();
  s->word.store(w, std::memory_order_relaxed);
}

// Decoded activity of a thread by token (for the watchdog trip reports).
// `found` is false when the thread never published. `site` resolves the
// subject the same way the exporter does (lock name / "event:0x...").
struct thread_activity {
  bool found = false;
  activity state = activity::running;
  bool request = false;
  std::string site;
};
thread_activity activity_for(const void* token) noexcept;

// --- sampler ---

// One aggregated profile cell: everything observed in `state` at `site`.
struct site_sample {
  activity state = activity::running;
  bool request = false;       // published while a kspan context was active
  std::string site;           // lock name, "event:0x...", or "" for running
  std::uint64_t count = 0;    // samples
  std::uint64_t weight_nanos = 0;  // sum of inter-tick intervals
};

// One flight-recorder entry: every kmon counter/gauge value at `nanos`.
struct flight_snapshot {
  std::uint64_t nanos = 0;  // relative to sampler start
  std::vector<std::pair<std::string, double>> values;  // name -> value
};

struct profile {
  double hz = 0.0;
  std::uint64_t ticks = 0;
  std::uint64_t duration_nanos = 0;
  std::uint64_t flight_interval_nanos = 0;
  std::uint64_t flight_dropped = 0;  // snapshots evicted by the ring
  std::vector<site_sample> sites;    // sorted: weight desc, then key
  std::vector<flight_snapshot> flight;
};

class sampler {
 public:
  static sampler& instance() noexcept;

  // Start sampling at `hz` (clamped to [1, 10000]) with a flight-recorder
  // snapshot every `flight_interval`. Idempotent: a second start while
  // running is a no-op, as is stop while stopped.
  void start(double hz = 97.0,
             std::chrono::milliseconds flight_interval = std::chrono::milliseconds(20));
  void stop();
  bool running() const noexcept;

  // Aggregated profile so far (valid while running or after stop).
  profile snapshot() const;
  // Drop accumulated samples and flight snapshots (between bench rounds).
  void reset();

 private:
  sampler() = default;
  struct impl;
  impl& self() const;
};

// Schema-stamped JSON export ("machlock-kprof-v1") of a profile; see
// tools/prof_report for the consumers. export_file snapshots the global
// sampler and writes `path`, returning false on I/O failure.
std::string export_json(const profile& p);
bool export_file(const std::string& path);

}  // namespace mach::kprof
