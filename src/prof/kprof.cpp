#include "prof/kprof.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "base/stats.h"
#include "metrics/kmon.h"
#include "sync/deadlock.h"
#include "sync/lockstat.h"
#include "trace/trace_export.h"

namespace mach::kprof {

const char* to_string(activity a) noexcept {
  switch (a) {
    case activity::running: return "running";
    case activity::spinning: return "spinning";
    case activity::lock_waiting: return "lock-waiting";
    case activity::holding: return "holding";
    case activity::blocked: return "blocked";
  }
  return "?";
}

namespace detail {

activity_slot g_slots[k_slots];
thread_local activity_slot* t_slot = nullptr;

namespace {

// Releases the slot at thread exit so the table recycles across the
// short-lived kthreads the tests and benches spawn (the watchdog
// stall-table pattern). Word is cleared before the token so the sampler
// never attributes a stale word to the slot's next owner.
struct slot_owner {
  activity_slot* slot = nullptr;
  ~slot_owner() {
    if (slot == nullptr) return;
    slot->word.store(0, std::memory_order_relaxed);
    slot->token.store(nullptr, std::memory_order_release);
    t_slot = nullptr;
  }
};
thread_local slot_owner t_owner;

}  // namespace

activity_slot* claim_slot() noexcept {
  const void* me = current_thread_token();
  const std::size_t h = std::hash<const void*>{}(me);
  for (int i = 0; i < k_slots; ++i) {
    const int idx = static_cast<int>((h + static_cast<std::size_t>(i)) % k_slots);
    const void* expect = nullptr;
    if (g_slots[idx].token.compare_exchange_strong(expect, me, std::memory_order_acq_rel)) {
      t_slot = &g_slots[idx];
      t_owner.slot = t_slot;
      return t_slot;
    }
  }
  // Table full: fall back to a private slot the sampler never sees, so
  // publishing stays one store instead of re-probing 256 slots each time.
  static thread_local activity_slot overflow;
  t_slot = &overflow;
  return t_slot;
}

}  // namespace detail

namespace {

// Decode a packed subject into the exporter's site string. Lock-state
// subjects are static name pointers (the ktrace lifetime contract) and are
// reconstructed directly — user-space pointers fit well inside the 55-bit
// field. Blocked subjects are event addresses: resolved against the lock
// registry when the event is a live lock (thread_sleep-style waits on the
// lock's own address), hex otherwise.
std::string resolve_site(activity state, std::uint64_t subject,
                         const std::unordered_map<std::uint64_t, const char*>* locks_by_addr) {
  if (subject == 0) return {};
  if (state == activity::blocked) {
    if (locks_by_addr != nullptr) {
      auto it = locks_by_addr->find(subject);
      if (it != locks_by_addr->end()) return it->second;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "event:0x%llx", static_cast<unsigned long long>(subject));
    return buf;
  }
  return reinterpret_cast<const char*>(static_cast<std::uintptr_t>(subject));
}

std::unordered_map<std::uint64_t, const char*> live_lock_addresses() {
  std::unordered_map<std::uint64_t, const char*> out;
  for (const lock_stat_entry& e : lock_registry::instance().snapshot()) {
    out.emplace(reinterpret_cast<std::uintptr_t>(e.address) & k_subject_mask, e.name);
  }
  return out;
}

}  // namespace

thread_activity activity_for(const void* token) noexcept {
  thread_activity out;
  for (int i = 0; i < detail::k_slots; ++i) {
    detail::activity_slot& s = detail::g_slots[i];
    if (s.token.load(std::memory_order_acquire) != token) continue;
    const activity_word w = s.word.load(std::memory_order_relaxed);
    out.found = true;
    out.state = unpack_state(w);
    out.request = unpack_request(w);
    const std::uint64_t subject = unpack_subject(w);
    if (subject != 0) {
      if (out.state == activity::blocked) {
        const auto locks = live_lock_addresses();
        out.site = resolve_site(out.state, subject, &locks);
      } else {
        out.site = resolve_site(out.state, subject, nullptr);
      }
    }
    return out;
  }
  return out;
}

// --- sampler ---

namespace {

constexpr std::size_t k_flight_ring_cap = 512;

}  // namespace

struct sampler::impl {
  mutable std::mutex m;  // guards everything below plus start/stop state
  std::thread thread;
  std::atomic<bool> stop{false};
  bool running = false;
  double hz = 0.0;
  std::uint64_t flight_interval_nanos = 0;

  // Accumulated profile, keyed by packed word so the tick loop does one
  // map bump per claimed slot and all string work happens at snapshot.
  struct cell {
    std::uint64_t count = 0;
    std::uint64_t weight_nanos = 0;
  };
  std::map<activity_word, cell> agg;
  std::uint64_t ticks = 0;
  std::uint64_t duration_nanos = 0;
  std::deque<flight_snapshot> flight;
  std::uint64_t flight_dropped = 0;

  void take_flight_snapshot(std::uint64_t rel_nanos) {
    flight_snapshot snap;
    snap.nanos = rel_nanos;
    for (const kmon::metric_sample& s : kmon::registry::instance().snapshot()) {
      if (s.kind == kmon::metric_kind::histogram) continue;
      std::string key = s.name;
      if (!s.label_key.empty()) {
        key += "{" + s.label_key + "=\"" + kmon::prom_escape_label_value(s.label_value) + "\"}";
      }
      snap.values.emplace_back(std::move(key), s.value);
    }
    if (flight.size() >= k_flight_ring_cap) {
      flight.pop_front();
      ++flight_dropped;
    }
    flight.push_back(std::move(snap));
  }

  void loop(std::chrono::nanoseconds tick, std::uint64_t flight_every) {
    const std::uint64_t start = now_nanos();
    std::uint64_t last = start;
    std::uint64_t next_flight = start;  // first snapshot on the first tick
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(tick);
      const std::uint64_t now = now_nanos();
      const std::uint64_t weight = now - last;
      last = now;
      std::lock_guard<std::mutex> g(m);
      ++ticks;
      duration_nanos = now - start;
      for (int i = 0; i < detail::k_slots; ++i) {
        detail::activity_slot& s = detail::g_slots[i];
        if (s.token.load(std::memory_order_acquire) == nullptr) continue;
        const activity_word w = s.word.load(std::memory_order_relaxed);
        cell& c = agg[w];
        ++c.count;
        c.weight_nanos += weight;
      }
      if (flight_every != 0 && now >= next_flight) {
        take_flight_snapshot(now - start);
        next_flight = now + flight_every;
      }
    }
  }
};

sampler& sampler::instance() noexcept {
  static sampler* s = new sampler;
  return *s;
}

sampler::impl& sampler::self() const {
  static impl* i = new impl;
  return *i;
}

void sampler::start(double hz, std::chrono::milliseconds flight_interval) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  if (s.running) return;
  hz = std::clamp(hz, 1.0, 10000.0);
  const auto tick = std::chrono::nanoseconds(static_cast<std::uint64_t>(1e9 / hz));
  const std::uint64_t flight_every =
      flight_interval.count() <= 0
          ? 0
          : static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(flight_interval).count());
  s.hz = hz;
  s.flight_interval_nanos = flight_every;
  s.stop.store(false);
  s.thread = std::thread([&s, tick, flight_every] { s.loop(tick, flight_every); });
  s.running = true;
}

void sampler::stop() {
  impl& s = self();
  {
    std::lock_guard<std::mutex> g(s.m);
    if (!s.running) return;
    s.stop.store(true);
  }
  s.thread.join();
  std::lock_guard<std::mutex> g(s.m);
  s.running = false;
}

bool sampler::running() const noexcept {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  return s.running;
}

profile sampler::snapshot() const {
  impl& s = self();
  profile p;
  std::map<activity_word, impl::cell> agg;
  {
    std::lock_guard<std::mutex> g(s.m);
    p.hz = s.hz;
    p.ticks = s.ticks;
    p.duration_nanos = s.duration_nanos;
    p.flight_interval_nanos = s.flight_interval_nanos;
    p.flight_dropped = s.flight_dropped;
    p.flight.assign(s.flight.begin(), s.flight.end());
    agg = s.agg;
  }
  const auto locks = live_lock_addresses();
  p.sites.reserve(agg.size());
  for (const auto& [w, c] : agg) {
    site_sample ss;
    ss.state = unpack_state(w);
    ss.request = unpack_request(w);
    ss.site = resolve_site(ss.state, unpack_subject(w), &locks);
    ss.count = c.count;
    ss.weight_nanos = c.weight_nanos;
    p.sites.push_back(std::move(ss));
  }
  std::sort(p.sites.begin(), p.sites.end(), [](const site_sample& a, const site_sample& b) {
    if (a.weight_nanos != b.weight_nanos) return a.weight_nanos > b.weight_nanos;
    if (a.state != b.state) return static_cast<int>(a.state) < static_cast<int>(b.state);
    if (a.site != b.site) return a.site < b.site;
    return a.request < b.request;
  });
  return p;
}

void sampler::reset() {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.agg.clear();
  s.ticks = 0;
  s.duration_nanos = 0;
  s.flight.clear();
  s.flight_dropped = 0;
}

// --- export ---

namespace {

void append_double(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    out += std::to_string(static_cast<std::int64_t>(v));
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out += buf;
  }
}

}  // namespace

std::string export_json(const profile& p) {
  std::string out = "{\"schema\":\"machlock-kprof-v1\",\"meta\":{";
  out += "\"hz\":";
  append_double(out, p.hz);
  out += ",\"ticks\":" + std::to_string(p.ticks);
  out += ",\"duration_ms\":";
  append_double(out, static_cast<double>(p.duration_nanos) / 1e6);
  out += ",\"flight_interval_ms\":";
  append_double(out, static_cast<double>(p.flight_interval_nanos) / 1e6);
  out += "},\n\"samples\":[";
  bool first = true;
  for (const site_sample& s : p.sites) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"state\":\"";
    out += to_string(s.state);
    out += "\",\"site\":\"" + json_escape(s.site) + "\"";
    out += ",\"request\":";
    out += s.request ? "true" : "false";
    out += ",\"count\":" + std::to_string(s.count);
    out += ",\"weight_ms\":";
    append_double(out, static_cast<double>(s.weight_nanos) / 1e6);
    out += "}";
  }
  out += "\n],\n\"flight\":{\"dropped\":" + std::to_string(p.flight_dropped) + ",\"snapshots\":[";
  first = true;
  for (const flight_snapshot& f : p.flight) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"t_ms\":";
    append_double(out, static_cast<double>(f.nanos) / 1e6);
    out += ",\"values\":{";
    bool vfirst = true;
    for (const auto& [name, v] : f.values) {
      if (!vfirst) out += ",";
      vfirst = false;
      out += "\"" + json_escape(name) + "\":";
      append_double(out, v);
    }
    out += "}}";
  }
  out += "\n]}}\n";
  return out;
}

bool export_file(const std::string& path) {
  const std::string body = export_json(sampler::instance().snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mach::kprof
