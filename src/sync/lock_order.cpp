#include "sync/lock_order.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <sstream>
#include <utility>

#include "base/panic.h"

namespace mach {
namespace {

struct held_entry {
  const void* lock;
  lock_class cls;
};

thread_local std::vector<held_entry> tl_held;

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_panic{false};

std::mutex g_violations_mutex;
std::vector<std::string> g_violations;
std::atomic<std::size_t> g_violation_count{0};

void report(const std::string& description) {
  if (g_panic.load(std::memory_order_relaxed)) panic(description);
  std::lock_guard<std::mutex> g(g_violations_mutex);
  g_violations.push_back(description);
  g_violation_count.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

lock_order_validator& lock_order_validator::instance() noexcept {
  static lock_order_validator v;
  return v;
}

void lock_order_validator::set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool lock_order_validator::enabled() const noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void lock_order_validator::set_panic_on_violation(bool on) noexcept {
  g_panic.store(on, std::memory_order_relaxed);
}

void lock_order_validator::on_acquire(const void* lock, const lock_class& cls) {
  if (!enabled()) return;
  for (const held_entry& h : tl_held) {
    if (std::strcmp(h.cls.subsystem, cls.subsystem) != 0) continue;
    bool bad_rank = cls.rank < h.cls.rank;
    bool bad_address = cls.rank == h.cls.rank && lock <= h.lock;
    if (bad_rank || bad_address) {
      std::ostringstream os;
      os << "lock order violation in subsystem '" << cls.subsystem << "': acquired '"
         << cls.name << "' (rank " << cls.rank << ", @" << lock << ") while holding '"
         << h.cls.name << "' (rank " << h.cls.rank << ", @" << h.lock << ")";
      if (bad_address) os << " — same rank requires increasing address order";
      report(os.str());
    }
  }
  tl_held.push_back({lock, cls});
}

void lock_order_validator::on_release(const void* lock) {
  if (!enabled()) return;
  for (auto it = tl_held.rbegin(); it != tl_held.rend(); ++it) {
    if (it->lock == lock) {
      tl_held.erase(std::next(it).base());
      return;
    }
  }
}

std::vector<std::string> lock_order_validator::take_violations() {
  std::lock_guard<std::mutex> g(g_violations_mutex);
  return std::exchange(g_violations, {});
}

std::size_t lock_order_validator::violation_count() const {
  return g_violation_count.load(std::memory_order_relaxed);
}

}  // namespace mach
