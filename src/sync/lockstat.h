// Lock statistics registry.
//
// Appendix A: "A simple lock is stored in a C language int variable, which
// is part of a structure to allow the simple addition of debugging and
// statistics information." This module is that addition, system-wide:
// every simple and complex lock registers itself on initialization and
// unregisters on destruction, and the registry can snapshot acquisition /
// contention counts for all live locks — the moral equivalent of a
// kernel's lockstat.
//
// Counter updates are free of extra synchronization: a simple lock's
// counters are mutated only while the lock itself is held; a complex
// lock's counters live in its interlock-protected stats. Snapshots read
// them racily (counts may be one op stale), which is the usual and
// acceptable trade for diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mach {

struct lock_data_t;
struct simple_lock_data_t;

struct lock_stat_entry {
  const void* address;
  const char* name;
  bool is_complex;
  std::uint64_t acquisitions;  // simple: lock+try-success; complex: read+write
  std::uint64_t contended;     // simple: not-first-try; complex: sleeps+spins
  // Hold/wait-time profile, populated only while ktrace is enabled (the
  // per-lock latency histograms are clock-gated; see trace/ktrace.h).
  // Quantiles are log2-bucket upper bounds in nanoseconds; counts of 0
  // mean "never timed", not "instantaneous".
  std::uint64_t hold_samples = 0;
  std::uint64_t hold_p50_nanos = 0;
  std::uint64_t hold_p99_nanos = 0;
  std::uint64_t wait_samples = 0;
  std::uint64_t wait_p50_nanos = 0;
  std::uint64_t wait_p99_nanos = 0;
};

class lock_registry {
 public:
  // Never destroyed (locks with static storage may unregister after main).
  static lock_registry& instance() noexcept;

  void add(simple_lock_data_t* l);
  void remove(simple_lock_data_t* l);
  void add(lock_data_t* l);
  void remove(lock_data_t* l);

  std::size_t live_locks() const;

  // Snapshot all live locks, most contended first. Order is fully
  // deterministic: contended desc, acquisitions desc, then name and
  // finally address as tie-breaks.
  std::vector<lock_stat_entry> snapshot() const;

  // Print the top `max_rows` most contended locks as a table on stdout,
  // including hold/wait p50/p99 (ktrace-populated; see snapshot()).
  void print_top(std::size_t max_rows = 20) const;

  // Machine-readable snapshot: a JSON array of per-lock objects, so CI
  // and scripts can consume lock stats without parsing the print_top
  // table. The "hold"/"wait" quantile objects are OMITTED for a lock whose
  // profile never sampled (profiling is ktrace-gated), matching the "-"
  // cells in print_top — absent means "not measured", never "measured 0".
  // The bench harness emits this on exit when MACHLOCK_LOCKSTAT=json
  // (see trace/trace_session.h).
  std::string snapshot_json() const;

 private:
  lock_registry() = default;
  struct impl;
  impl& self() const;
};

}  // namespace mach
