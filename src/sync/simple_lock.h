// Simple locks — the paper's Appendix A interface.
//
// A simple lock is Mach's machine-dependent spinning mutual-exclusion
// primitive: "a C integer, which is part of a structure to allow the simple
// addition of debugging and statistics information". That is exactly what
// simple_lock_data_t is here. The machine-dependent part (the atomic
// test-and-set and the spin discipline) lives in sync/spin_policies.*; this
// header supplies the machine-independent interface:
//
//   decl_simple_lock_data(class, name)   declaration macro
//   simple_lock_init(&l)                 initialize to unlocked
//   simple_lock(&l)                      spin until acquired
//   simple_unlock(&l)                    release
//   simple_lock_try(&l)                  single attempt, returns success
//   simple_lock_addr(l)                  address-of macro
//
// Design requirements carried over from the paper, enforced here in debug
// bookkeeping (always compiled in — they are the point of this library):
//   * a holder may not block or context switch while holding a simple lock
//     (checked by thread_block, via held_tracked_simple_locks());
//   * recursive acquisition deadlocks immediately (detected and panicked);
//   * unlock by a non-holder is a fatal invariant violation.
//
// Internal locks of the event system itself set `tracked = false` so that
// the blocking assertion describes *client* locks only.
#pragma once

#include <atomic>

#include "base/panic.h"
#include "base/stats.h"
#include "metrics/watchdog.h"
#include "prof/kprof.h"
#include "sync/deadlock.h"
#include "sync/lockstat.h"
#include "sync/spin_policies.h"
#include "sync/spin_stats.h"
#include "trace/kspan.h"
#include "trace/ktrace.h"

namespace mach {

struct simple_lock_data_t {
  std::atomic<int> word{0};  // the paper's "C integer"
  // Debugging & statistics extension, per Appendix A.1:
  std::atomic<const void*> holder{nullptr};
  const char* name = "simple-lock";
  spin_policy policy = spin_policy::tas_then_ttas;
  bool tracked = true;
  // lockstat counters, mutated only while the lock is held (no extra
  // synchronization needed; see sync/lockstat.h).
  std::uint64_t stat_acquisitions = 0;
  std::uint64_t stat_contended = 0;
  // Hold/wait-time profiling, populated only while ktrace is enabled
  // (clock reads are too expensive for the always-on path). acquire_nanos
  // is the current hold's start (0 when untimed); the histograms are
  // mutated only while the lock is held, like the counters above.
  std::uint64_t acquire_nanos = 0;
  latency_histogram hold_hist;
  latency_histogram wait_hist;

  simple_lock_data_t() { lock_registry::instance().add(this); }
  explicit simple_lock_data_t(const char* n, bool track = true,
                              spin_policy p = spin_policy::tas_then_ttas)
      : name(n), policy(p), tracked(track) {
    lock_registry::instance().add(this);
  }
  ~simple_lock_data_t() { lock_registry::instance().remove(this); }

  simple_lock_data_t(const simple_lock_data_t&) = delete;
  simple_lock_data_t& operator=(const simple_lock_data_t&) = delete;
};

// Appendix A declaration macro: `class` is a storage-class prefix
// (e.g. static), `name` the variable name.
#define decl_simple_lock_data(storage_class, name) storage_class ::mach::simple_lock_data_t name;
#define simple_lock_addr(lock) (&(lock))

inline void simple_lock_init(simple_lock_data_t* l, const char* name = "simple-lock",
                             bool tracked = true,
                             spin_policy policy = spin_policy::tas_then_ttas) {
  l->word.store(0, std::memory_order_relaxed);
  l->holder.store(nullptr, std::memory_order_relaxed);
  l->name = name;
  l->policy = policy;
  l->tracked = tracked;
  l->acquire_nanos = 0;
  l->hold_hist = latency_histogram{};
  l->wait_hist = latency_histogram{};
}

namespace detail {

// Cold halves of the tracing instrumentation, kept out of line so the
// always-inlined lock/unlock fast paths stay compact when tracing is off.
[[gnu::noinline, gnu::cold]] inline void begin_timed_hold(simple_lock_data_t* l) {
  l->acquire_nanos = now_nanos();
}

[[gnu::noinline, gnu::cold]] inline void finish_timed_hold(simple_lock_data_t* l) {
  // This hold was timed (tracing was on at acquisition); finish the hold
  // span while we still own the lock.
  const std::uint64_t end = now_nanos();
  const std::uint64_t hold = end - l->acquire_nanos;
  l->hold_hist.record(hold);
  l->acquire_nanos = 0;
  ktrace::emit_span(trace_kind::simple_lock_held, l->name, reinterpret_cast<std::uint64_t>(l),
                    hold, end);
}

inline void note_acquired(simple_lock_data_t* l, const void* me) {
  l->holder.store(me, std::memory_order_relaxed);
  ++l->stat_acquisitions;  // safe: we hold the lock
  // Hold-time profiling only while tracing: the enabled() check is one
  // relaxed load, so the disabled fast path stays clock-free.
  l->acquire_nanos = 0;
  if (l->tracked && ktrace::enabled()) [[unlikely]] begin_timed_hold(l);
  if (l->tracked) {
    ++held_tracked_simple_locks();
    wait_graph::instance().resource_held(l, me, l->name);
  }
}

}  // namespace detail

// True if the current thread holds `l`. (Debug aid; exact, since holder is
// maintained unconditionally.)
inline bool simple_lock_held(const simple_lock_data_t* l) {
  return l->holder.load(std::memory_order_relaxed) == current_thread_token();
}

inline void simple_lock(simple_lock_data_t* l, spin_stats* stats = nullptr) {
  const void* me = current_thread_token();
  MACH_ASSERT(l->holder.load(std::memory_order_relaxed) != me,
              std::string("recursive simple_lock on ") + l->name);
  bool contended = false;
  std::uint64_t wait_start = 0;
  if (!spin_try_acquire(l->word, stats)) {
    contended = true;
    if (l->tracked && ktrace::enabled()) {
      wait_start = now_nanos();
      // Annotate the active request span (if any) with the lock it is
      // about to spin on and the holder blocking it.
      kspan::note_blocked(l->name, l, l->holder.load(std::memory_order_relaxed));
    }
    wait_graph::instance().thread_waits(me, l, l->name);
    watchdog_note_wait_begin(stall_kind::simple_spin, l, l->name);
    // kprof: attribute the spin, then restore whatever the thread was
    // doing before (e.g. a complex-lock wait spinning on the interlock).
    const kprof::activity_word prev_activity = kprof::self_word();
    kprof::publish(kprof::activity::spinning, l->name);
    spin_acquire(l->word, l->policy, stats);
    kprof::publish_word(prev_activity);
    watchdog_note_wait_end();
    wait_graph::instance().thread_wait_done(me, l);
  }
  detail::note_acquired(l, me);
  if (contended) {
    ++l->stat_contended;  // safe: we hold the lock
    // acquire_nanos doubles as the wait's end stamp; both are non-zero
    // only if tracing stayed on across the whole wait.
    if (wait_start != 0 && l->acquire_nanos != 0) {
      const std::uint64_t wait = l->acquire_nanos - wait_start;
      l->wait_hist.record(wait);  // safe: we hold the lock
      ktrace::emit_span(trace_kind::simple_lock_wait, l->name,
                        reinterpret_cast<std::uint64_t>(l), wait, l->acquire_nanos);
    }
  }
}

inline bool simple_lock_try(simple_lock_data_t* l, spin_stats* stats = nullptr) {
  const void* me = current_thread_token();
  MACH_ASSERT(l->holder.load(std::memory_order_relaxed) != me,
              std::string("recursive simple_lock_try on ") + l->name);
  if (!spin_try_acquire(l->word, stats)) return false;
  detail::note_acquired(l, me);
  return true;
}

inline void simple_unlock(simple_lock_data_t* l) {
  const void* me = current_thread_token();
  MACH_ASSERT(l->holder.load(std::memory_order_relaxed) == me,
              std::string("simple_unlock by non-holder of ") + l->name);
  if (l->acquire_nanos != 0) [[unlikely]] detail::finish_timed_hold(l);
  l->holder.store(nullptr, std::memory_order_relaxed);
  if (l->tracked) {
    --held_tracked_simple_locks();
    wait_graph::instance().resource_released(l, me);
  }
  spin_release(l->word);
}

// RAII guard (CP.20): the C-style interface above mirrors the paper;
// new C++ call sites should prefer this.
class simple_locker {
 public:
  explicit simple_locker(simple_lock_data_t& l) : lock_(&l) { simple_lock(lock_); }
  ~simple_locker() {
    if (lock_ != nullptr) simple_unlock(lock_);
  }
  simple_locker(const simple_locker&) = delete;
  simple_locker& operator=(const simple_locker&) = delete;

  // Release early (e.g. before a blocking call).
  void unlock() {
    simple_unlock(lock_);
    lock_ = nullptr;
  }

 private:
  simple_lock_data_t* lock_;
};

}  // namespace mach
