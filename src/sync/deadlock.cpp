#include "sync/deadlock.h"

#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

namespace mach {

const void* current_thread_token() noexcept {
  thread_local char token;
  return &token;
}

int& held_tracked_simple_locks() noexcept {
  thread_local int count = 0;
  return count;
}

struct wait_graph::impl {
  mutable std::mutex m;
  std::map<const void*, std::string> thread_names;
  std::map<const void*, std::string> resource_names;
  // A thread may wait on several resources at once (a barrier initiator
  // waits for every missing participant).
  std::multimap<const void*, const void*> waits;       // thread -> resource
  std::map<const void*, std::set<const void*>> holds;  // resource -> threads

  std::string thread_name(const void* t) const {
    auto it = thread_names.find(t);
    if (it != thread_names.end()) return it->second;
    std::ostringstream os;
    os << "thread@" << t;
    return os.str();
  }
  std::string resource_name(const void* r) const {
    auto it = resource_names.find(r);
    if (it != resource_names.end()) return it->second;
    std::ostringstream os;
    os << "resource@" << r;
    return os.str();
  }
};

wait_graph& wait_graph::instance() noexcept {
  static wait_graph g;
  return g;
}

wait_graph::impl& wait_graph::self() const {
  static impl i;
  return i;
}

void wait_graph::name_thread(const void* thread, std::string name) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.thread_names[thread] = std::move(name);
}

void wait_graph::thread_waits(const void* thread, const void* resource,
                              const char* resource_name) {
  if (!enabled()) return;
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.waits.emplace(thread, resource);
  if (resource_name != nullptr) s.resource_names[resource] = resource_name;
}

void wait_graph::thread_wait_done(const void* thread, const void* resource) {
  if (!enabled()) return;
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  auto [lo, hi] = s.waits.equal_range(thread);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == resource) {
      s.waits.erase(it);
      return;
    }
  }
}

void wait_graph::resource_held(const void* resource, const void* thread,
                               const char* resource_name) {
  if (!enabled()) return;
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.holds[resource].insert(thread);
  if (resource_name != nullptr) s.resource_names[resource] = resource_name;
}

void wait_graph::resource_released(const void* resource, const void* thread) {
  if (!enabled()) return;
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  auto it = s.holds.find(resource);
  if (it != s.holds.end()) {
    it->second.erase(thread);
    if (it->second.empty()) s.holds.erase(it);
  }
}

namespace {

// DFS over the thread digraph: t -> h iff t waits on r and h holds r.
// Returns the cycle as alternating thread/resource steps.
bool dfs(const wait_graph::impl& s, const void* t, std::set<const void*>& on_path,
         std::set<const void*>& done, std::vector<std::pair<const void*, const void*>>& path) {
  if (done.count(t) != 0) return false;
  if (!on_path.insert(t).second) return true;  // back-edge: cycle found
  auto [lo, hi] = s.waits.equal_range(t);
  for (auto it = lo; it != hi; ++it) {
    const void* r = it->second;
    auto hit = s.holds.find(r);
    if (hit == s.holds.end()) continue;
    for (const void* h : hit->second) {
      if (h == t) continue;  // a thread holding what it waits for is a recursion case handled elsewhere
      path.emplace_back(t, r);
      if (on_path.count(h) != 0) {
        path.emplace_back(h, nullptr);
        return true;
      }
      if (dfs(s, h, on_path, done, path)) return true;
      path.pop_back();
    }
  }
  on_path.erase(t);
  done.insert(t);
  return false;
}

}  // namespace

std::optional<wait_graph::cycle> wait_graph::find_cycle() const {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  std::set<const void*> done;
  for (const auto& [t, r] : s.waits) {
    (void)r;
    std::set<const void*> on_path;
    std::vector<std::pair<const void*, const void*>> path;
    if (dfs(s, t, on_path, done, path)) {
      cycle c;
      std::ostringstream os;
      // Trim the path to the cycle proper: it ends at the repeated thread.
      const void* repeat = path.back().first;
      std::size_t start = 0;
      for (std::size_t i = 0; i < path.size(); ++i) {
        if (path[i].first == repeat) {
          start = i;
          break;
        }
      }
      for (std::size_t i = start; i < path.size(); ++i) {
        // The path closes with a repeat of the first thread; keep it in the
        // rendering but not in the thread list.
        if (path[i].second != nullptr) c.threads.push_back(path[i].first);
        os << s.thread_name(path[i].first);
        if (path[i].second != nullptr) {
          os << " -> [" << s.resource_name(path[i].second) << "] -> ";
        }
      }
      c.description = os.str();
      return c;
    }
  }
  return std::nullopt;
}

std::string wait_graph::thread_label(const void* thread) const {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  return s.thread_name(thread);
}

std::vector<std::string> wait_graph::held_resources() const {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  std::vector<std::string> out;
  out.reserve(s.holds.size());
  for (const auto& [resource, holders] : s.holds) {
    std::string line = "[";
    line += s.resource_name(resource);
    line += "] held by ";
    bool first = true;
    for (const void* h : holders) {
      if (!first) line += ", ";
      first = false;
      line += s.thread_name(h);
    }
    out.push_back(std::move(line));
  }
  return out;
}

std::optional<wait_graph::cycle> wait_graph::wait_for_cycle(int timeout_ms, int poll_ms) const {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (auto c = find_cycle()) return c;
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
}

void wait_graph::clear() {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.waits.clear();
  s.holds.clear();
  s.resource_names.clear();
  // Thread names persist; they are cheap and useful across rounds.
}

}  // namespace mach
