// Spin acquisition policies for simple locks (paper section 2).
//
// The paper describes three generations of spin acquisition:
//   1. raw test-and-set: every attempt is an atomic RMW — wastes bus
//      bandwidth while spinning;
//   2. test-and-test-and-set: spin on a plain load, attempt the RMW only
//      when the lock looks free — waiters spin in their own caches;
//   3. Mach's refinement: try the RMW first (most locks in a well designed
//      system are acquired on the first attempt), fall back to
//      test-and-test-and-set only if that fails.
// We add a TTAS-with-exponential-backoff variant as the modern baseline.
//
// All policies yield the host thread after a bounded number of iterations:
// on a machine with fewer hardware contexts than runnable threads a pure
// spin could burn a full scheduler quantum while the holder is preempted.
// Yields are counted separately and do not contaminate the RMW/load
// statistics E1 reports.
#pragma once

#include <atomic>
#include <cstdint>

#include "base/compiler.h"
#include "sync/spin_stats.h"

namespace mach {

enum class spin_policy : std::uint8_t {
  tas,             // raw test-and-set loop
  ttas,            // test, then test-and-set
  tas_then_ttas,   // Mach default: RMW first, TTAS on failure
  ttas_backoff,    // TTAS with bounded exponential backoff
};

constexpr const char* to_string(spin_policy p) noexcept {
  switch (p) {
    case spin_policy::tas: return "tas";
    case spin_policy::ttas: return "ttas";
    case spin_policy::tas_then_ttas: return "tas+ttas";
    case spin_policy::ttas_backoff: return "ttas+backoff";
  }
  return "?";
}

// Hook invoked on every spin-wait iteration; the SMP layer installs an
// interrupt poll here so a spinning processor with interrupts enabled can
// accept them (the behaviour section 7's deadlock analysis depends on).
using spin_wait_hook_t = void (*)();
inline std::atomic<spin_wait_hook_t> g_spin_wait_hook{nullptr};

namespace detail {

inline void spin_wait_iteration() noexcept {
  if (spin_wait_hook_t hook = g_spin_wait_hook.load(std::memory_order_relaxed)) hook();
  cpu_relax();
}

// Single RMW attempt; true on success.
inline bool tas_attempt(std::atomic<int>& word) noexcept {
  return word.exchange(1, std::memory_order_acquire) == 0;
}

}  // namespace detail

// Make one attempt (no spinning). Shared by every policy's try-path.
inline bool spin_try_acquire(std::atomic<int>& word, spin_stats* stats = nullptr) noexcept {
  if (detail::tas_attempt(word)) {
    if (stats != nullptr) ++stats->acquisitions;
    return true;
  }
  if (stats != nullptr) ++stats->failed_rmw;
  return false;
}

// Spin until acquired, using `policy`. `stats` may be null.
void spin_acquire(std::atomic<int>& word, spin_policy policy, spin_stats* stats = nullptr) noexcept;

inline void spin_release(std::atomic<int>& word) noexcept {
  word.store(0, std::memory_order_release);
}

}  // namespace mach
