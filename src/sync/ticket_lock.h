// Ticket lock — the FIFO contrast to the paper's test-and-set family.
//
// The paper's section 2 surveys hardware test-and-set variants; all of
// them grant the lock to whichever spinner's RMW lands first, so under
// contention they are unfair (a waiter can starve behind luckier ones —
// visible in experiment E1b's fairness table). The ticket lock is the
// classic alternative: acquisition order is arrival order, at the cost of
// every waiter spinning on the single shared now-serving word.
//
// Provided as a standalone primitive for comparison; the Appendix-A
// simple_lock remains the Mach-faithful default.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "base/compiler.h"

namespace mach {

class ticket_lock {
 public:
  // Acquire; returns the ticket number (arrival order), mostly useful to
  // tests asserting FIFO service.
  std::uint32_t lock() noexcept {
    std::uint32_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    std::uint32_t spins = 0;
    while (serving_.load(std::memory_order_acquire) != ticket) {
      cpu_relax();
      if (++spins >= 256) {
        std::this_thread::yield();  // host-portability, as in spin_policies
        spins = 0;
      }
    }
    return ticket;
  }

  // Single attempt: succeeds only when nobody is ahead of us.
  bool try_lock() noexcept {
    std::uint32_t serving = serving_.load(std::memory_order_acquire);
    std::uint32_t expected = serving;
    return next_.compare_exchange_strong(expected, serving + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() noexcept {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }

  bool locked() const noexcept {
    return serving_.load(std::memory_order_relaxed) != next_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};
};

}  // namespace mach
