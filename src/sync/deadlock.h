// Wait-for-graph deadlock detector.
//
// The paper's deadlock discussions (section 5 lock-ordering conventions,
// section 7's interrupt-barrier deadlock, section 7.1's recursive-lock
// deadlock in vm_map_pageable) all reduce to cycles in a graph whose nodes
// are threads and resources: a thread waits for a resource, a resource is
// held by one or more threads. This module records those edges (when
// tracing is enabled) and finds cycles on demand, so the experiments can
// *detect and report* the deadlocks the paper describes instead of hanging.
//
// Tracing is off by default and costs one relaxed atomic load per lock
// operation when off. Resources are keyed by address; names are for
// reporting only.
#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <vector>

namespace mach {

// Stable per-thread identity usable below the scheduler layer (the
// scheduler itself uses simple locks, so lock debugging cannot depend on
// kthread). The token is the address of a thread_local object.
const void* current_thread_token() noexcept;

// Count of *tracked* simple locks held by the current thread; the event
// system asserts this is zero in thread_block (the paper's "may not be held
// during blocking operations" rule).
int& held_tracked_simple_locks() noexcept;

class wait_graph {
 public:
  static wait_graph& instance() noexcept;

  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  // Give the current thread a report-friendly name.
  void name_thread(const void* thread, std::string name);

  // Edge bookkeeping. All are no-ops when tracing is disabled.
  void thread_waits(const void* thread, const void* resource, const char* resource_name);
  void thread_wait_done(const void* thread, const void* resource);
  void resource_held(const void* resource, const void* thread, const char* resource_name);
  void resource_released(const void* resource, const void* thread);

  struct cycle {
    // Human-readable: "threadA -> lock L -> threadB -> ... -> threadA".
    std::string description;
    std::vector<const void*> threads;
  };

  // Search for any wait cycle; nullopt if the graph is cycle-free.
  std::optional<cycle> find_cycle() const;

  // Report-friendly label for a thread token: its name_thread name, or
  // "thread@<addr>". Works whether or not tracing is enabled.
  std::string thread_label(const void* thread) const;

  // One line per tracked resource currently recorded as held, e.g.
  // "[lock-A] held by main, worker1". Used by the watchdog trip report.
  std::vector<std::string> held_resources() const;

  // Poll for a cycle every `poll_ms` until one appears or `timeout_ms`
  // elapses. Used by experiments that construct a deadlock on purpose.
  std::optional<cycle> wait_for_cycle(int timeout_ms, int poll_ms = 1) const;

  // Drop all recorded state (between experiment rounds).
  void clear();

  struct impl;  // definition private to deadlock.cpp

 private:
  wait_graph() = default;
  std::atomic<bool> enabled_{false};
  impl& self() const;
};

// RAII enable/disable for tests and benches.
class deadlock_tracing_scope {
 public:
  deadlock_tracing_scope() { wait_graph::instance().set_enabled(true); }
  ~deadlock_tracing_scope() {
    wait_graph::instance().set_enabled(false);
    wait_graph::instance().clear();
  }
  deadlock_tracing_scope(const deadlock_tracing_scope&) = delete;
  deadlock_tracing_scope& operator=(const deadlock_tracing_scope&) = delete;
};

}  // namespace mach
