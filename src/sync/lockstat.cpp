#include "sync/lockstat.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>

#include "harness/table.h"
#include "sync/complex_lock.h"
#include "sync/simple_lock.h"
#include "trace/trace_export.h"

namespace mach {

struct lock_registry::impl {
  mutable std::mutex m;
  std::set<simple_lock_data_t*> simple;
  std::set<lock_data_t*> complex;
};

lock_registry& lock_registry::instance() noexcept {
  // Intentionally leaked: locks with static storage duration unregister
  // during shutdown, possibly after any registry with a destructor would
  // already be gone.
  static lock_registry* r = new lock_registry;
  return *r;
}

lock_registry::impl& lock_registry::self() const {
  static impl* i = new impl;
  return *i;
}

void lock_registry::add(simple_lock_data_t* l) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.simple.insert(l);
}

void lock_registry::remove(simple_lock_data_t* l) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.simple.erase(l);
}

void lock_registry::add(lock_data_t* l) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.complex.insert(l);
}

void lock_registry::remove(lock_data_t* l) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.complex.erase(l);
}

std::size_t lock_registry::live_locks() const {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  return s.simple.size() + s.complex.size();
}

namespace {

void fill_latency(lock_stat_entry& e, const latency_histogram& hold,
                  const latency_histogram& wait) {
  e.hold_samples = hold.count();
  e.hold_p50_nanos = hold.quantile_nanos(0.5);
  e.hold_p99_nanos = hold.quantile_nanos(0.99);
  e.wait_samples = wait.count();
  e.wait_p50_nanos = wait.quantile_nanos(0.5);
  e.wait_p99_nanos = wait.quantile_nanos(0.99);
}

}  // namespace

std::vector<lock_stat_entry> lock_registry::snapshot() const {
  impl& s = self();
  std::vector<lock_stat_entry> out;
  {
    std::lock_guard<std::mutex> g(s.m);
    out.reserve(s.simple.size() + s.complex.size());
    for (simple_lock_data_t* l : s.simple) {
      lock_stat_entry e{l, l->name, false, l->stat_acquisitions, l->stat_contended};
      fill_latency(e, l->hold_hist, l->wait_hist);
      out.push_back(e);
    }
    for (lock_data_t* l : s.complex) {
      // Racy reads of the interlock-protected stats: fine for diagnostics.
      lock_stat_entry e{l, l->name, true,
                        l->stats.read_acquisitions + l->stats.write_acquisitions,
                        l->stats.sleeps + l->stats.spins};
      fill_latency(e, l->hold_hist, l->wait_hist);
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(), [](const lock_stat_entry& a, const lock_stat_entry& b) {
    if (a.contended != b.contended) return a.contended > b.contended;
    if (a.acquisitions != b.acquisitions) return a.acquisitions > b.acquisitions;
    // Deterministic tie-breaks so output is stable across runs: name,
    // then address (addresses differ between runs but make the order
    // total within one).
    const int byname = std::strcmp(a.name, b.name);
    if (byname != 0) return byname < 0;
    return a.address < b.address;
  });
  return out;
}

namespace {

// "12.3us" style cell; "-" when the histogram never sampled (profiling is
// ktrace-gated, so zero samples is the common disabled case).
std::string ns_cell(std::uint64_t samples, std::uint64_t nanos) {
  if (samples == 0) return "-";
  if (nanos < 10'000) return table::num(nanos) + "ns";
  if (nanos < 10'000'000) return table::num(static_cast<double>(nanos) / 1e3, 1) + "us";
  return table::num(static_cast<double>(nanos) / 1e6, 1) + "ms";
}

}  // namespace

void lock_registry::print_top(std::size_t max_rows) const {
  std::vector<lock_stat_entry> snap = snapshot();
  table t("lockstat: most contended live locks (" + std::to_string(snap.size()) + " registered)");
  t.columns({"lock", "kind", "acquisitions", "contended", "hold p50", "hold p99", "wait p50",
             "wait p99"});
  std::size_t rows = 0;
  for (const lock_stat_entry& e : snap) {
    if (rows++ >= max_rows) break;
    t.row({e.name, e.is_complex ? "complex" : "simple", table::num(e.acquisitions),
           table::num(e.contended), ns_cell(e.hold_samples, e.hold_p50_nanos),
           ns_cell(e.hold_samples, e.hold_p99_nanos), ns_cell(e.wait_samples, e.wait_p50_nanos),
           ns_cell(e.wait_samples, e.wait_p99_nanos)});
  }
  t.print();
}

std::string lock_registry::snapshot_json() const {
  std::vector<lock_stat_entry> snap = snapshot();
  std::string out = "[";
  bool first = true;
  for (const lock_stat_entry& e : snap) {
    if (!first) out += ",";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"kind\":\"%s\",\"acquisitions\":%llu,\"contended\":%llu,",
                  json_escape(e.name).c_str(), e.is_complex ? "complex" : "simple",
                  static_cast<unsigned long long>(e.acquisitions),
                  static_cast<unsigned long long>(e.contended));
    out += buf;
    // Hold/wait profiling is ktrace-gated; a lock that was never timed has
    // zero samples, and emitting p50/p99 "0" for it would read as a
    // measured zero-latency lock. Omit the objects entirely instead (the
    // print_top table renders the same case as "-").
    if (e.hold_samples != 0) {
      std::snprintf(buf, sizeof(buf),
                    "\"hold\":{\"samples\":%llu,\"p50_ns\":%llu,\"p99_ns\":%llu},",
                    static_cast<unsigned long long>(e.hold_samples),
                    static_cast<unsigned long long>(e.hold_p50_nanos),
                    static_cast<unsigned long long>(e.hold_p99_nanos));
      out += buf;
    }
    if (e.wait_samples != 0) {
      std::snprintf(buf, sizeof(buf),
                    "\"wait\":{\"samples\":%llu,\"p50_ns\":%llu,\"p99_ns\":%llu},",
                    static_cast<unsigned long long>(e.wait_samples),
                    static_cast<unsigned long long>(e.wait_p50_nanos),
                    static_cast<unsigned long long>(e.wait_p99_nanos));
      out += buf;
    }
    out.pop_back();  // trailing comma from the last emitted field
    out += "}";
  }
  out += "\n]";
  return out;
}

}  // namespace mach
