#include "sync/lockstat.h"

#include <algorithm>
#include <mutex>
#include <set>

#include "harness/table.h"
#include "sync/complex_lock.h"
#include "sync/simple_lock.h"

namespace mach {

struct lock_registry::impl {
  mutable std::mutex m;
  std::set<simple_lock_data_t*> simple;
  std::set<lock_data_t*> complex;
};

lock_registry& lock_registry::instance() noexcept {
  // Intentionally leaked: locks with static storage duration unregister
  // during shutdown, possibly after any registry with a destructor would
  // already be gone.
  static lock_registry* r = new lock_registry;
  return *r;
}

lock_registry::impl& lock_registry::self() const {
  static impl* i = new impl;
  return *i;
}

void lock_registry::add(simple_lock_data_t* l) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.simple.insert(l);
}

void lock_registry::remove(simple_lock_data_t* l) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.simple.erase(l);
}

void lock_registry::add(lock_data_t* l) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.complex.insert(l);
}

void lock_registry::remove(lock_data_t* l) {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  s.complex.erase(l);
}

std::size_t lock_registry::live_locks() const {
  impl& s = self();
  std::lock_guard<std::mutex> g(s.m);
  return s.simple.size() + s.complex.size();
}

std::vector<lock_stat_entry> lock_registry::snapshot() const {
  impl& s = self();
  std::vector<lock_stat_entry> out;
  {
    std::lock_guard<std::mutex> g(s.m);
    out.reserve(s.simple.size() + s.complex.size());
    for (simple_lock_data_t* l : s.simple) {
      out.push_back({l, l->name, false, l->stat_acquisitions, l->stat_contended});
    }
    for (lock_data_t* l : s.complex) {
      // Racy reads of the interlock-protected stats: fine for diagnostics.
      out.push_back({l, l->name, true,
                     l->stats.read_acquisitions + l->stats.write_acquisitions,
                     l->stats.sleeps + l->stats.spins});
    }
  }
  std::sort(out.begin(), out.end(), [](const lock_stat_entry& a, const lock_stat_entry& b) {
    if (a.contended != b.contended) return a.contended > b.contended;
    return a.acquisitions > b.acquisitions;
  });
  return out;
}

void lock_registry::print_top(std::size_t max_rows) const {
  std::vector<lock_stat_entry> snap = snapshot();
  table t("lockstat: most contended live locks (" + std::to_string(snap.size()) + " registered)");
  t.columns({"lock", "kind", "acquisitions", "contended"});
  std::size_t rows = 0;
  for (const lock_stat_entry& e : snap) {
    if (rows++ >= max_rows) break;
    t.row({e.name, e.is_complex ? "complex" : "simple", table::num(e.acquisitions),
           table::num(e.contended)});
  }
  t.print();
}

}  // namespace mach
