#include "sync/spin_policies.h"

#include <thread>

namespace mach {
namespace {

// After this many wait iterations without progress, start yielding the host
// thread between attempts (see header comment).
constexpr std::uint32_t yield_threshold = 256;

struct local_stats {
  std::uint64_t failed_rmw = 0;
  std::uint64_t spin_loads = 0;
  std::uint64_t yields = 0;
};

void maybe_yield(std::uint32_t& iter, local_stats& ls) noexcept {
  if (++iter >= yield_threshold) {
    std::this_thread::yield();
    ++ls.yields;
  }
}

void acquire_tas(std::atomic<int>& word, local_stats& ls) noexcept {
  std::uint32_t iter = 0;
  while (!detail::tas_attempt(word)) {
    ++ls.failed_rmw;
    detail::spin_wait_iteration();
    maybe_yield(iter, ls);
  }
}

void acquire_ttas(std::atomic<int>& word, local_stats& ls) noexcept {
  std::uint32_t iter = 0;
  for (;;) {
    while (word.load(std::memory_order_relaxed) != 0) {
      ++ls.spin_loads;
      detail::spin_wait_iteration();
      maybe_yield(iter, ls);
    }
    if (detail::tas_attempt(word)) return;
    ++ls.failed_rmw;
  }
}

void acquire_ttas_backoff(std::atomic<int>& word, local_stats& ls) noexcept {
  std::uint32_t pause_len = 4;
  constexpr std::uint32_t pause_ceiling = 512;
  for (;;) {
    while (word.load(std::memory_order_relaxed) != 0) {
      ++ls.spin_loads;
      for (std::uint32_t i = 0; i < pause_len; ++i) detail::spin_wait_iteration();
      if (pause_len < pause_ceiling) {
        pause_len *= 2;
      } else {
        std::this_thread::yield();
        ++ls.yields;
      }
    }
    if (detail::tas_attempt(word)) return;
    ++ls.failed_rmw;
  }
}

}  // namespace

void spin_acquire(std::atomic<int>& word, spin_policy policy, spin_stats* stats) noexcept {
  local_stats ls;
  bool contended = false;

  switch (policy) {
    case spin_policy::tas:
      if (!detail::tas_attempt(word)) {
        contended = true;
        ++ls.failed_rmw;
        acquire_tas(word, ls);
      }
      break;
    case spin_policy::ttas:
      // Pure TTAS tests before the first RMW as well.
      if (word.load(std::memory_order_relaxed) != 0 || !detail::tas_attempt(word)) {
        contended = true;
        acquire_ttas(word, ls);
      }
      break;
    case spin_policy::tas_then_ttas:
      // The paper's refinement: optimistic RMW first.
      if (!detail::tas_attempt(word)) {
        contended = true;
        ++ls.failed_rmw;
        acquire_ttas(word, ls);
      }
      break;
    case spin_policy::ttas_backoff:
      if (word.load(std::memory_order_relaxed) != 0 || !detail::tas_attempt(word)) {
        contended = true;
        acquire_ttas_backoff(word, ls);
      }
      break;
  }

  if (stats != nullptr) {
    ++stats->acquisitions;
    if (contended) ++stats->contended;
    stats->failed_rmw += ls.failed_rmw;
    stats->spin_loads += ls.spin_loads;
    stats->yields += ls.yields;
  }
}

}  // namespace mach
