// Lock-ordering validator (paper section 5).
//
// "Each kernel subsystem that uses locks must incorporate usage conventions
// that prevent deadlock, because the range of possible locking protocols
// precludes a single lock hierarchy." Mach's conventions are per-subsystem:
// order acquisitions by object type (memory map before memory object), and
// order same-type acquisitions by address.
//
// This validator lets a subsystem declare those conventions as lock classes
// (subsystem + rank) and checks every annotated acquisition against the
// locks the current thread already holds:
//
//   * within one subsystem, a new acquisition's rank must be >= every held
//     rank of that subsystem;
//   * equal rank is allowed only in increasing address order (the paper's
//     "if two objects of the same type must be locked, the acquisitions can
//     be ordered by address").
//
// Violations are recorded (and optionally panic). The validator says
// nothing about locks in *different* subsystems — exactly the paper's
// point that conventions are local. Cross-subsystem trouble is the
// wait-graph detector's job (sync/deadlock.h).
#pragma once

#include <string>
#include <vector>

namespace mach {

struct lock_class {
  const char* subsystem;
  const char* name;
  int rank;  // higher rank = acquired later
};

class lock_order_validator {
 public:
  static lock_order_validator& instance() noexcept;

  void set_enabled(bool on) noexcept;
  bool enabled() const noexcept;
  // When true (default false), a violation panics instead of recording.
  void set_panic_on_violation(bool on) noexcept;

  // Call immediately after acquiring / before releasing an annotated lock.
  void on_acquire(const void* lock, const lock_class& cls);
  void on_release(const void* lock);

  // Drain recorded violation descriptions.
  std::vector<std::string> take_violations();
  std::size_t violation_count() const;

 private:
  lock_order_validator() = default;
};

// RAII: acquire-annotation scope for a lock already held.
class ordered_hold {
 public:
  ordered_hold(const void* lock, const lock_class& cls) : lock_(lock) {
    lock_order_validator::instance().on_acquire(lock_, cls);
  }
  ~ordered_hold() { lock_order_validator::instance().on_release(lock_); }
  ordered_hold(const ordered_hold&) = delete;
  ordered_hold& operator=(const ordered_hold&) = delete;

 private:
  const void* lock_;
};

}  // namespace mach
