// Complex locks — the paper's Appendix B interface (sections 4 and 7.1).
//
// A complex lock is Mach's machine-independent lock implementing the
// Multiple protocol (multiple readers / single writer, with writers'
// priority to avoid starvation) plus two options:
//
//   Sleep:     waiters block via the event system instead of spinning, and
//              holders may block while holding the lock. Dynamically
//              switchable per lock (lock_sleepable).
//   Recursive: a single holder may recursively acquire the lock
//              (lock_set_recursive / lock_clear_recursive). Must be held
//              for write to set; a later downgrade to read prohibits
//              recursive write acquisition and upgrades.
//
// Semantics carried from the paper:
//   * writers' priority — "readers may not be added to a lock held for
//     reading in the presence of an outstanding write request";
//   * upgrades are favored over writes; a second concurrent upgrade
//     request FAILS and loses its read hold (lock_read_to_write returns
//     TRUE on failure);
//   * downgrades (lock_write_to_read) cannot fail;
//   * the recursive holder's requests are not blocked by pending write or
//     upgrade requests;
//   * the internal state of every complex lock is protected by a simple
//     lock, so the only machine dependency is the simple lock itself.
//
// Extension for experiment E3: writers' priority can be disabled per lock
// (lock_set_writer_priority) to measure the starvation it prevents.
#pragma once

#include <cstdint>

#include "base/stats.h"
#include "sync/lockstat.h"
#include "sync/simple_lock.h"

namespace mach {

// Cumulative per-lock statistics, mutated under the interlock (so reading
// them while the lock is in active use gives a consistent-enough snapshot
// for reporting, and updating them costs no extra synchronization).
struct complex_lock_stats {
  std::uint64_t read_acquisitions = 0;
  std::uint64_t write_acquisitions = 0;
  std::uint64_t recursive_acquisitions = 0;
  std::uint64_t upgrades_succeeded = 0;
  std::uint64_t upgrades_failed = 0;
  std::uint64_t downgrades = 0;
  std::uint64_t sleeps = 0;  // waits that went through the event system
  std::uint64_t spins = 0;   // interlock-release/reacquire spin iterations
};

// Storage for a single complex lock (the paper's C type lock_data_t).
struct lock_data_t {
  simple_lock_data_t interlock{"complex-interlock", /*track=*/false};

  // Protected by interlock:
  bool want_write = false;    // a writer holds, or is draining readers
  bool want_upgrade = false;  // an upgrader holds, or is draining readers
  bool waiting = false;       // someone is blocked on this lock (sleep mode)
  bool can_sleep = true;      // Sleep option
  bool writer_priority = true;  // ablation knob (E3); true is Mach behaviour
  // Historical-fidelity knob: Appendix B.3 notes "The Mach 2.5
  // implementation of [lock_try_read_to_write] contains a bug such that it
  // will block even if the Sleep option is disabled". Off by default (we
  // implement the documented-correct behaviour); enable to reproduce 2.5.
  bool mach25_try_upgrade_bug = false;
  int read_count = 0;

  // Recursive option (paper sec. 4): the designated recursion holder and
  // the extra depth of its nested write acquisitions.
  const void* recursion_thread = nullptr;
  int recursion_depth = 0;

  // Debug/tracking:
  const void* write_holder = nullptr;  // thread holding for write/upgrade
  const char* name = "complex-lock";
  complex_lock_stats stats;
  // Hold/wait-time profiling (ktrace-gated, like simple locks; see
  // sync/simple_lock.h). wait_hist covers read, write, and upgrade waits;
  // hold_hist covers write-side holds (a read hold is shared by many
  // threads at once, so per-holder read spans are not tracked). All
  // mutated under the interlock.
  std::uint64_t write_acquire_nanos = 0;
  latency_histogram hold_hist;
  latency_histogram wait_hist;

  lock_data_t() { lock_registry::instance().add(this); }
  ~lock_data_t() { lock_registry::instance().remove(this); }
  lock_data_t(const lock_data_t&) = delete;
  lock_data_t& operator=(const lock_data_t&) = delete;
};

// All interface routines take a pointer, as in the paper.
using lock_t = lock_data_t*;

// Initialize; can_sleep selects the Sleep option. "Locks without the sleep
// option cannot be held during blocking operations or context switches."
void lock_init(lock_t l, bool can_sleep, const char* name = "complex-lock");

// --- Locking and unlocking (Appendix B.2) ---
void lock_read(lock_t l);
void lock_write(lock_t l);
// Upgrade read -> write. Returns TRUE if the upgrade FAILED (another
// upgrade was pending); on failure the read lock has been released.
bool lock_read_to_write(lock_t l);
// Downgrade write -> read. Cannot fail.
void lock_write_to_read(lock_t l);
// Release however the lock is held (single writer or one of the readers).
void lock_done(lock_t l);

// --- Lock attempts (Appendix B.3) ---
bool lock_try_read(lock_t l);
bool lock_try_write(lock_t l);
// Attempt upgrade; may block waiting for other readers to drain, but does
// NOT drop the read lock if the upgrade would deadlock (returns FALSE
// with the read hold intact). Note: Appendix B.3 reports the Mach 2.5
// implementation blocked even with Sleep disabled; we implement the
// documented-correct behaviour (spin-drain when Sleep is off).
bool lock_try_read_to_write(lock_t l);

// --- Lock options (Appendix B.4) ---
void lock_sleepable(lock_t l, bool can_sleep);
// Enable the Recursive option for the calling thread; the lock must be
// held for write.
void lock_set_recursive(lock_t l);
// Clear the Recursive option; caller must be the recursion holder.
void lock_clear_recursive(lock_t l);

// Ablation knob (not in the paper's interface): disable writers' priority
// so experiment E3 can measure the starvation it prevents.
void lock_set_writer_priority(lock_t l, bool on);

// Historical-fidelity knob: reproduce the Mach 2.5 lock_try_read_to_write
// bug (blocks through the event system even when Sleep is disabled).
void lock_set_mach25_try_upgrade_bug(lock_t l, bool on);

// Snapshot of the statistics (taken under the interlock).
complex_lock_stats lock_stats(lock_t l);

// --- RAII guards (modern call sites; CP.20) ---
class read_lock_guard {
 public:
  explicit read_lock_guard(lock_data_t& l) : lock_(&l) { lock_read(lock_); }
  ~read_lock_guard() {
    if (lock_ != nullptr) lock_done(lock_);
  }
  read_lock_guard(const read_lock_guard&) = delete;
  read_lock_guard& operator=(const read_lock_guard&) = delete;
  void unlock() {
    lock_done(lock_);
    lock_ = nullptr;
  }

 private:
  lock_data_t* lock_;
};

class write_lock_guard {
 public:
  explicit write_lock_guard(lock_data_t& l) : lock_(&l) { lock_write(lock_); }
  ~write_lock_guard() {
    if (lock_ != nullptr) lock_done(lock_);
  }
  write_lock_guard(const write_lock_guard&) = delete;
  write_lock_guard& operator=(const write_lock_guard&) = delete;
  void unlock() {
    lock_done(lock_);
    lock_ = nullptr;
  }

 private:
  lock_data_t* lock_;
};

}  // namespace mach
