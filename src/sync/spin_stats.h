// Per-call-site spin statistics.
//
// Experiment E1 needs a proxy for the bus/interconnect traffic the paper's
// section 2 discusses: every failed atomic read-modify-write is a cache-line
// ownership transfer on real hardware, while a failed plain load that hits a
// locally cached line is (nearly) free. We therefore count the two
// separately.
#pragma once

#include <cstdint>

namespace mach {

struct spin_stats {
  std::uint64_t acquisitions = 0;        // successful lock acquisitions
  std::uint64_t contended = 0;           // acquisitions that did not succeed first try
  std::uint64_t failed_rmw = 0;          // failed test-and-set attempts (bus traffic proxy)
  std::uint64_t spin_loads = 0;          // plain test loads while waiting (cache-local)
  std::uint64_t yields = 0;              // host-scheduler yields (portability concession)

  void merge(const spin_stats& o) noexcept {
    acquisitions += o.acquisitions;
    contended += o.contended;
    failed_rmw += o.failed_rmw;
    spin_loads += o.spin_loads;
    yields += o.yields;
  }
};

}  // namespace mach
