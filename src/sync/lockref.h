// lockref — a spinlock and a reference count packed into one 64-bit word,
// the Linux lib/lockref.c technique (SNIPPETS.md Snippet 1) adapted to
// this library's conventions.
//
// The paper takes references under the object's simple lock (section 8);
// at service scale that makes get/put the most-executed locked operation
// in the kernel. The lockref observation: if the lock word and the count
// share one 64-bit word, a get/put against an UNLOCKED object can update
// the count with a single compare-exchange that simultaneously verifies
// the lock is free — the paper's locking discipline is preserved (no
// count ever changes while another CPU holds the lock) without the
// fast path ever touching the lock.
//
// Word layout:
//   bit  0      — embedded spinlock (kLockBit)
//   bit  1      — dead/retired marker (kDeadBit), sticky once set; used by
//                 striped_refcount slots to make clone-from-dead and
//                 over-release detectable from a single word load
//   bits 32..63 — signed 32-bit count
//
// This header is only the machine-level word: the cmpxchg step, the
// embedded spinlock, and the locked accessors. The refcount policies that
// build get/put semantics (bounded fast-path loops, fallback conditions,
// panic discipline) live in kern/refcount.h.
//
// The embedded spinlock is deliberately NOT a simple_lock_data_t: it has
// no holder bookkeeping, no lockstat, and is never tracked — it exists so
// the fast path has something to pack next to the count, and its critical
// sections are a handful of instructions. Contended acquisition backs off
// exactly like the spin policies do (base/backoff.h).
#pragma once

#include <atomic>
#include <cstdint>

#include "base/backoff.h"
#include "base/compiler.h"

namespace mach {

class lockref64 {
 public:
  static constexpr std::uint64_t kLockBit = 1u << 0;
  static constexpr std::uint64_t kDeadBit = 1u << 1;
  // Bound on fast-path cmpxchg retries before a policy falls back to its
  // locked path (Linux bounds the equivalent loop on some architectures to
  // avoid cmpxchg livelock against a stream of winners).
  static constexpr int kFastAttempts = 64;

  explicit lockref64(std::int32_t count = 0, std::uint64_t flags = 0) noexcept
      : word_(pack(count, flags)) {}

  lockref64(const lockref64&) = delete;
  lockref64& operator=(const lockref64&) = delete;

  static constexpr std::uint64_t pack(std::int32_t count, std::uint64_t flags = 0) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(count)) << 32) | flags;
  }
  static constexpr std::int32_t count_of(std::uint64_t word) noexcept {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(word >> 32));
  }
  static constexpr bool is_locked(std::uint64_t word) noexcept { return (word & kLockBit) != 0; }
  static constexpr bool is_dead(std::uint64_t word) noexcept { return (word & kDeadBit) != 0; }

  std::uint64_t load() const noexcept { return word_.load(std::memory_order_acquire); }

  // One fast-path step: install `desired` if the word is still `expected`.
  // On failure `expected` is reloaded (the Linux comment: "the cmpxchg
  // reloads the old value for the failure case").
  bool cas(std::uint64_t& expected, std::uint64_t desired) noexcept {
    return word_.compare_exchange_weak(expected, desired, std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  }

  // --- the embedded spinlock (policy slow paths and reconciles) ---

  void lock() noexcept {
    backoff b;
    for (;;) {
      std::uint64_t w = word_.load(std::memory_order_relaxed);
      if (!is_locked(w) &&
          word_.compare_exchange_weak(w, w | kLockBit, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
      b.pause();
    }
  }

  bool try_lock() noexcept {
    std::uint64_t w = word_.load(std::memory_order_relaxed);
    return !is_locked(w) &&
           word_.compare_exchange_strong(w, w | kLockBit, std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() noexcept { word_.fetch_and(~kLockBit, std::memory_order_release); }

  // --- accessors for the lock holder ---
  // While kLockBit is set every fast-path cmpxchg fails, so the holder has
  // exclusive write access to the count half; updates stay atomic RMWs only
  // so concurrent value() snapshots read a whole word.

  std::int32_t count_locked() const noexcept {
    return count_of(word_.load(std::memory_order_relaxed));
  }

  void add_locked(std::int32_t delta) noexcept {
    word_.fetch_add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(delta)) << 32,
                    std::memory_order_relaxed);
  }

  // Release the lock and publish a new count (and optional flags) in one
  // store — the reconcile path's fold step.
  void unlock_to(std::int32_t count, std::uint64_t flags = 0) noexcept {
    word_.store(pack(count, flags & ~kLockBit), std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> word_;
};

static_assert(sizeof(lockref64) == 8, "lockref must stay one 64-bit word");

}  // namespace mach
