#include "sync/complex_lock.h"

#include "base/backoff.h"
#include "base/panic.h"
#include "metrics/watchdog.h"
#include "prof/kprof.h"
#include "sched/event.h"
#include "sync/deadlock.h"
#include "trace/kspan.h"
#include "trace/ktrace.h"

namespace mach {
namespace {

// --- hold/wait-time profiling (ktrace-gated; interlock held) ---

// Stamp the start of a wait the first time a wait loop iterates.
inline std::uint64_t wait_stamp(std::uint64_t current) {
  if (current != 0) return current;
  return ktrace::enabled() ? now_nanos() : 0;
}

// Annotate the active request span (if any) with the complex lock the
// caller is about to wait on and the write holder blocking it (null when
// the lock is held by readers). Interlock held; emit does not block.
inline void span_note_wait(lock_t l) {
  kspan::note_blocked(l->name, l, l->write_holder);
}

// Close a wait span opened by wait_stamp: feed the per-lock histogram and
// emit the trace record. `kind` distinguishes read/write/upgrade waits.
inline void wait_finish(lock_t l, std::uint64_t start, trace_kind kind) {
  if (start == 0 || !ktrace::enabled()) return;
  const std::uint64_t end = now_nanos();
  const std::uint64_t wait = end - start;
  l->wait_hist.record(wait);
  ktrace::emit_span(kind, l->name, reinterpret_cast<std::uint64_t>(l), wait, end);
}

// Begin / end write-side hold timing (upgrade holds included). Recursive
// nested acquisitions keep the outermost stamp.
inline void hold_begin(lock_t l) {
  l->write_acquire_nanos = ktrace::enabled() ? now_nanos() : 0;
}

inline void hold_finish(lock_t l) {
  if (l->write_acquire_nanos == 0) return;
  const std::uint64_t end = now_nanos();
  const std::uint64_t hold = end - l->write_acquire_nanos;
  l->write_acquire_nanos = 0;
  l->hold_hist.record(hold);
  ktrace::emit_span(trace_kind::complex_write_held, l->name,
                    reinterpret_cast<std::uint64_t>(l), hold, end);
}

// Wait for the lock state to change. Interlock held on entry and exit.
// Sleep mode blocks through the event system (the lock's own address is
// the event, as in Mach's kern/lock.c); spin mode releases the interlock,
// backs off, and reacquires.
void lock_wait(lock_t l, backoff& bo, bool force_sleep = false) {
  // kprof: the whole wait — sleeping through the event system or spinning
  // in backoff — samples as waiting on THIS lock. The inner thread_block
  // and interlock spins save/restore around their own publishes, so the
  // attribution survives nesting.
  const kprof::activity_word prev_activity = kprof::self_word();
  kprof::publish(kprof::activity::lock_waiting, l->name);
  if (l->can_sleep || force_sleep) {
    l->waiting = true;
    ++l->stats.sleeps;
    assert_wait(l);
    simple_unlock(&l->interlock);
    thread_block();
    simple_lock(&l->interlock);
  } else {
    ++l->stats.spins;
    simple_unlock(&l->interlock);
    bo.pause();
    simple_lock(&l->interlock);
  }
  kprof::publish_word(prev_activity);
}

// Interlock held. Wake anyone blocked on the lock after a state change
// that could unblock them. Wake-all: waiters re-check their predicate and
// re-wait, which keeps the state machine simple at the price of a small
// thundering herd (Mach makes the same trade).
void lock_wakeup(lock_t l) {
  if (l->waiting) {
    l->waiting = false;
    thread_wakeup(l);
  }
}


// Release the interlock, then report the invariant violation. panic()
// normally aborts, but tests install a throwing hook; releasing first keeps
// the lock usable after the throw is caught.
[[noreturn]] void fail_locked(lock_t l, const std::string& msg) {
  simple_unlock(&l->interlock);
  panic(msg);
  __builtin_unreachable();
}

// Would a new (non-recursive) reader have to wait? With writers' priority
// (Mach behaviour) any outstanding write or upgrade request holds new
// readers off, guaranteeing the writer eventually gets the drained lock.
// Without it, readers keep piling in while read_count > 0 — the starvation
// experiment E3 measures.
bool reader_must_wait(const lock_data_t* l) {
  if (l->writer_priority) return l->want_write || l->want_upgrade;
  return (l->want_write || l->want_upgrade) && l->read_count == 0;
}

}  // namespace

void lock_init(lock_t l, bool can_sleep, const char* name) {
  simple_lock_init(&l->interlock, name, /*tracked=*/false);
  l->want_write = false;
  l->want_upgrade = false;
  l->waiting = false;
  l->can_sleep = can_sleep;
  l->writer_priority = true;
  l->mach25_try_upgrade_bug = false;
  l->read_count = 0;
  l->recursion_thread = nullptr;
  l->recursion_depth = 0;
  l->write_holder = nullptr;
  l->name = name;
  l->stats = complex_lock_stats{};
  l->write_acquire_nanos = 0;
  l->hold_hist = latency_histogram{};
  l->wait_hist = latency_histogram{};
}

void lock_read(lock_t l) {
  const void* me = current_thread_token();
  simple_lock(&l->interlock);
  if (l->recursion_thread == me) {
    // The recursive holder is never blocked by pending write/upgrade
    // requests (paper sec. 4) — that is what lets it finish the work those
    // requests are waiting on.
    ++l->read_count;
    ++l->stats.recursive_acquisitions;
    ++l->stats.read_acquisitions;
    simple_unlock(&l->interlock);
    return;
  }
  bool waited = false;
  std::uint64_t wait_start = 0;
  backoff bo;
  while (reader_must_wait(l)) {
    if (!waited) {
      waited = true;
      wait_start = wait_stamp(wait_start);
      span_note_wait(l);
      wait_graph::instance().thread_waits(me, l, l->name);
    }
    lock_wait(l, bo);
  }
  if (waited) {
    wait_graph::instance().thread_wait_done(me, l);
    wait_finish(l, wait_start, trace_kind::complex_read_wait);
  }
  ++l->read_count;
  ++l->stats.read_acquisitions;
  kprof::publish(kprof::activity::holding, l->name);
  wait_graph::instance().resource_held(l, me, l->name);
  simple_unlock(&l->interlock);
}

void lock_write(lock_t l) {
  const void* me = current_thread_token();
  simple_lock(&l->interlock);
  if (l->recursion_thread == me) {
    if (l->want_write && l->write_holder == me) {
      ++l->recursion_depth;
      ++l->stats.recursive_acquisitions;
      ++l->stats.write_acquisitions;
      simple_unlock(&l->interlock);
      return;
    }
    // "this downgrade prohibits recursive acquisitions for write" (sec. 4).
    simple_unlock(&l->interlock);
    panic(std::string("recursive write acquisition after downgrade on ") + l->name);
  }
  bool waited = false;
  std::uint64_t wait_start = 0;
  backoff bo;
  auto note_wait = [&] {
    if (!waited) {
      waited = true;
      wait_start = wait_stamp(wait_start);
      span_note_wait(l);
      wait_graph::instance().thread_waits(me, l, l->name);
      watchdog_note_wait_begin(stall_kind::writer_wait, l, l->name);
    }
  };
  // Wait our turn behind other writers/upgraders...
  while (l->want_write || l->want_upgrade) {
    note_wait();
    lock_wait(l, bo);
  }
  l->want_write = true;  // commits us: no new readers may be added
  // ...then drain existing readers, yielding to upgrades (upgrades are
  // favored over writes to avoid deadlocking a reader that must upgrade).
  while (l->read_count > 0 || l->want_upgrade) {
    note_wait();
    lock_wait(l, bo);
  }
  if (waited) {
    watchdog_note_wait_end();
    wait_graph::instance().thread_wait_done(me, l);
    wait_finish(l, wait_start, trace_kind::complex_write_wait);
  }
  l->write_holder = me;
  ++l->stats.write_acquisitions;
  hold_begin(l);
  kprof::publish(kprof::activity::holding, l->name);
  wait_graph::instance().resource_held(l, me, l->name);
  simple_unlock(&l->interlock);
}

bool lock_read_to_write(lock_t l) {
  const void* me = current_thread_token();
  simple_lock(&l->interlock);
  if (l->read_count <= 0) fail_locked(l, std::string("upgrade without read hold on ") + l->name);
  if (l->recursion_thread == me) {
    fail_locked(l, std::string("upgrade of recursive read acquisition on ") + l->name);
  }
  --l->read_count;
  if (l->want_upgrade) {
    // Another upgrade is pending: ours fails and RELEASES the read lock
    // (required to let the other upgrade drain; the caller needs recovery
    // logic — the cost sec. 7.1 complains about, measured in E4).
    ++l->stats.upgrades_failed;
    kprof::publish(kprof::activity::running, nullptr);
    wait_graph::instance().resource_released(l, me);
    lock_wakeup(l);  // our released read hold may unblock the winner
    simple_unlock(&l->interlock);
    return true;  // TRUE = upgrade failed
  }
  l->want_upgrade = true;
  bool waited = false;
  std::uint64_t wait_start = 0;
  backoff bo;
  while (l->read_count > 0) {
    if (!waited) {
      waited = true;
      wait_start = wait_stamp(wait_start);
      span_note_wait(l);
      wait_graph::instance().thread_waits(me, l, l->name);
    }
    lock_wait(l, bo);
  }
  if (waited) {
    watchdog_note_wait_end();
    wait_graph::instance().thread_wait_done(me, l);
    wait_finish(l, wait_start, trace_kind::complex_upgrade_wait);
  }
  l->write_holder = me;
  ++l->stats.upgrades_succeeded;
  hold_begin(l);
  kprof::publish(kprof::activity::holding, l->name);
  simple_unlock(&l->interlock);
  return false;
}

void lock_write_to_read(lock_t l) {
  const void* me = current_thread_token();
  simple_lock(&l->interlock);
  if (l->write_holder != me) fail_locked(l, std::string("downgrade by non-writer on ") + l->name);
  if (l->recursion_depth != 0) {
    fail_locked(l, std::string("downgrade with nested write acquisitions on ") + l->name);
  }
  hold_finish(l);  // the write-side hold ends at the downgrade
  ++l->read_count;
  if (l->want_upgrade) {
    l->want_upgrade = false;
  } else {
    l->want_write = false;
  }
  l->write_holder = nullptr;
  ++l->stats.downgrades;
  lock_wakeup(l);  // other readers may now enter
  simple_unlock(&l->interlock);
}

void lock_done(lock_t l) {
  const void* me = current_thread_token();
  simple_lock(&l->interlock);
  if (l->read_count > 0) {
    --l->read_count;
    if (l->read_count == 0 || l->recursion_thread != me) {
      kprof::publish(kprof::activity::running, nullptr);
      wait_graph::instance().resource_released(l, me);
    }
  } else if (l->recursion_depth > 0) {
    if (l->recursion_thread != me) {
      fail_locked(l, std::string("lock_done of recursive depth by non-holder on ") + l->name);
    }
    --l->recursion_depth;
  } else if (l->want_upgrade) {
    if (l->write_holder != me) {
      fail_locked(l, std::string("lock_done of upgrade hold by non-holder on ") + l->name);
    }
    l->want_upgrade = false;
    l->write_holder = nullptr;
    hold_finish(l);
    kprof::publish(kprof::activity::running, nullptr);
    wait_graph::instance().resource_released(l, me);
  } else {
    if (!(l->want_write && l->write_holder == me)) {
      fail_locked(l, std::string("lock_done of unheld lock ") + l->name);
    }
    l->want_write = false;
    l->write_holder = nullptr;
    hold_finish(l);
    kprof::publish(kprof::activity::running, nullptr);
    wait_graph::instance().resource_released(l, me);
  }
  lock_wakeup(l);
  simple_unlock(&l->interlock);
}

bool lock_try_read(lock_t l) {
  const void* me = current_thread_token();
  simple_lock(&l->interlock);
  if (l->recursion_thread == me) {
    ++l->read_count;
    ++l->stats.recursive_acquisitions;
    ++l->stats.read_acquisitions;
    simple_unlock(&l->interlock);
    return true;
  }
  if (reader_must_wait(l)) {
    simple_unlock(&l->interlock);
    return false;
  }
  ++l->read_count;
  ++l->stats.read_acquisitions;
  kprof::publish(kprof::activity::holding, l->name);
  wait_graph::instance().resource_held(l, me, l->name);
  simple_unlock(&l->interlock);
  return true;
}

bool lock_try_write(lock_t l) {
  const void* me = current_thread_token();
  simple_lock(&l->interlock);
  if (l->recursion_thread == me && l->want_write && l->write_holder == me) {
    ++l->recursion_depth;
    ++l->stats.recursive_acquisitions;
    ++l->stats.write_acquisitions;
    simple_unlock(&l->interlock);
    return true;
  }
  if (l->want_write || l->want_upgrade || l->read_count > 0) {
    simple_unlock(&l->interlock);
    return false;
  }
  l->want_write = true;
  l->write_holder = me;
  ++l->stats.write_acquisitions;
  hold_begin(l);
  kprof::publish(kprof::activity::holding, l->name);
  wait_graph::instance().resource_held(l, me, l->name);
  simple_unlock(&l->interlock);
  return true;
}

bool lock_try_read_to_write(lock_t l) {
  const void* me = current_thread_token();
  simple_lock(&l->interlock);
  if (l->read_count <= 0) fail_locked(l, std::string("try-upgrade without read hold on ") + l->name);
  if (l->want_upgrade || l->recursion_thread == me) {
    // Would deadlock (or is a recursive read): keep the read lock and
    // report failure — unlike lock_read_to_write, nothing is dropped.
    simple_unlock(&l->interlock);
    return false;
  }
  l->want_upgrade = true;
  --l->read_count;
  bool waited = false;
  std::uint64_t wait_start = 0;
  backoff bo;
  while (l->read_count > 0) {
    if (!waited) {
      waited = true;
      wait_start = wait_stamp(wait_start);
      span_note_wait(l);
      wait_graph::instance().thread_waits(me, l, l->name);
      watchdog_note_wait_begin(stall_kind::writer_wait, l, l->name);
    }
    // Appendix B.3: Mach 2.5's implementation blocked here even with the
    // Sleep option disabled; reproduce that when the compat knob is set.
    lock_wait(l, bo, /*force_sleep=*/l->mach25_try_upgrade_bug);
  }
  if (waited) {
    watchdog_note_wait_end();
    wait_graph::instance().thread_wait_done(me, l);
    wait_finish(l, wait_start, trace_kind::complex_upgrade_wait);
  }
  l->write_holder = me;
  ++l->stats.upgrades_succeeded;
  hold_begin(l);
  kprof::publish(kprof::activity::holding, l->name);
  simple_unlock(&l->interlock);
  return true;
}

void lock_sleepable(lock_t l, bool can_sleep) {
  simple_lock(&l->interlock);
  l->can_sleep = can_sleep;
  simple_unlock(&l->interlock);
}

void lock_set_recursive(lock_t l) {
  const void* me = current_thread_token();
  simple_lock(&l->interlock);
  if (l->write_holder != me) {
    fail_locked(l, std::string("lock_set_recursive without write hold on ") + l->name);
  }
  l->recursion_thread = me;
  simple_unlock(&l->interlock);
}

void lock_clear_recursive(lock_t l) {
  const void* me = current_thread_token();
  simple_lock(&l->interlock);
  if (l->recursion_thread != me) {
    fail_locked(l, std::string("lock_clear_recursive by non-holder on ") + l->name);
  }
  if (l->recursion_depth != 0) {
    fail_locked(l, std::string("lock_clear_recursive with nested holds on ") + l->name);
  }
  l->recursion_thread = nullptr;
  simple_unlock(&l->interlock);
}

void lock_set_writer_priority(lock_t l, bool on) {
  simple_lock(&l->interlock);
  l->writer_priority = on;
  simple_unlock(&l->interlock);
}

void lock_set_mach25_try_upgrade_bug(lock_t l, bool on) {
  simple_lock(&l->interlock);
  l->mach25_try_upgrade_bug = on;
  simple_unlock(&l->interlock);
}

complex_lock_stats lock_stats(lock_t l) {
  simple_lock(&l->interlock);
  complex_lock_stats s = l->stats;
  simple_unlock(&l->interlock);
  return s;
}

}  // namespace mach
