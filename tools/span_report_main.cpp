// span_report CLI: critical-path analysis of a kspan-instrumented trace.
//
//   span_report <trace.json> [--top N]
//
// Exit codes: 0 report printed, 1 bad input / parse failure, 2 the trace
// parsed but contains no request roots (so CI smoke can distinguish "spans
// never recorded" from "file broken").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/span_report.h"

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: span_report <trace.json> [--top N]\n");
      return 0;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "span_report: unexpected argument '%s'\n", argv[i]);
      return 1;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: span_report <trace.json> [--top N]\n");
    return 1;
  }
  mach::span_report report;
  std::string err;
  if (!mach::build_span_report_file(path, &report, &err)) {
    std::fprintf(stderr, "span_report: %s\n", err.c_str());
    return 1;
  }
  std::fputs(mach::render_span_report(report, top).c_str(), stdout);
  return report.requests != 0 ? 0 : 2;
}
