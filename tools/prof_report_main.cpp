// prof_report CLI: render a kprof sampling profile.
//
//   prof_report <kprof.json> [--top N] [--folded FILE] [--flight FILE]
//
// Prints the sampled-site top table on stdout; --folded writes the
// collapsed-stack file (flamegraph.pl / speedscope input) and --flight the
// flight-recorder JSON with computed counter rates. Exit codes: 0 report
// rendered (an empty profile is still a report), 1 bad input / parse
// failure / write failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/prof_report.h"

namespace {

bool write_file(const char* path, const std::string& body) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  const char* folded_path = nullptr;
  const char* flight_path = nullptr;
  std::size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--folded") == 0 && i + 1 < argc) {
      folded_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flight") == 0 && i + 1 < argc) {
      flight_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: prof_report <kprof.json> [--top N] [--folded FILE] [--flight FILE]\n");
      return 0;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "prof_report: unexpected argument '%s'\n", argv[i]);
      return 1;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: prof_report <kprof.json> [--top N] [--folded FILE] [--flight FILE]\n");
    return 1;
  }
  mach::kprof::profile p;
  std::string err;
  if (!mach::load_profile_file(path, &p, &err)) {
    std::fprintf(stderr, "prof_report: %s\n", err.c_str());
    return 1;
  }
  std::fputs(mach::render_top(p, top).c_str(), stdout);
  if (folded_path != nullptr && !write_file(folded_path, mach::render_folded(p))) {
    std::fprintf(stderr, "prof_report: FAILED to write %s\n", folded_path);
    return 1;
  }
  if (flight_path != nullptr && !write_file(flight_path, mach::render_flight_json(p))) {
    std::fprintf(stderr, "prof_report: FAILED to write %s\n", flight_path);
    return 1;
  }
  return 0;
}
