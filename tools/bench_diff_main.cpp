// bench_diff — compare two bench-baseline trees and gate on regressions.
//
//   bench_diff <baseline-dir> <fresh-dir> [--json verdict.json] [--md report.md]
//              [--min-rel-delta 0.25] [--cov-mult 3.0] [--advisory]
//
// Prints the markdown report to stdout (and to --md when given), writes
// the machine-readable verdict to --json. Exit status: 0 when no
// regression beyond threshold (or --advisory), 1 on regressions, 2 on
// usage/IO errors. See src/harness/bench_diff.h for the noise model.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/bench_diff.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline-dir> <fresh-dir> [--json FILE] [--md FILE]\n"
               "          [--min-rel-delta F] [--cov-mult F] [--advisory]\n",
               argv0);
  return 2;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  return std::fclose(f) == 0 && n == body.size();
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_dir, fresh_dir, json_path, md_path;
  mach::diff_options opts;
  bool advisory = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--json") {
      const char* v = next("--json");
      if (v == nullptr) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--md") {
      const char* v = next("--md");
      if (v == nullptr) return usage(argv[0]);
      md_path = v;
    } else if (arg == "--min-rel-delta") {
      const char* v = next("--min-rel-delta");
      if (v == nullptr) return usage(argv[0]);
      opts.min_rel_delta = std::atof(v);
    } else if (arg == "--cov-mult") {
      const char* v = next("--cov-mult");
      if (v == nullptr) return usage(argv[0]);
      opts.cov_mult = std::atof(v);
    } else if (arg == "--advisory") {
      advisory = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: unknown argument %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    } else if (base_dir.empty()) {
      base_dir = arg;
    } else if (fresh_dir.empty()) {
      fresh_dir = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (base_dir.empty() || fresh_dir.empty()) return usage(argv[0]);

  mach::diff_result result;
  std::string err;
  if (!mach::diff_trees(base_dir, fresh_dir, opts, &result, &err)) {
    std::fprintf(stderr, "bench_diff: %s\n", err.c_str());
    return 2;
  }
  const std::string md = mach::markdown_report(result, opts, base_dir, fresh_dir);
  std::fputs(md.c_str(), stdout);
  if (!md_path.empty() && !write_file(md_path, md)) {
    std::fprintf(stderr, "bench_diff: cannot write %s\n", md_path.c_str());
    return 2;
  }
  if (!json_path.empty() && !write_file(json_path, mach::verdict_json(result, opts))) {
    std::fprintf(stderr, "bench_diff: cannot write %s\n", json_path.c_str());
    return 2;
  }
  if (!result.ok() && advisory) {
    std::fprintf(stderr, "bench_diff: regressions found, but --advisory: exiting 0\n");
    return 0;
  }
  return result.ok() ? 0 : 1;
}
