// bench_all — run the full bench suite into a committed-baseline tree.
//
//   bench_all --bench-dir build/bench --out bench/baselines
//             [--reps N] [--bench-ms M] [--only e7]
//
// Repetitions default to MACHLOCK_BENCH_REPS (else 1); each bench's cells
// become the median over reps with the coefficient of variation stamped
// alongside (see src/harness/bench_all.h). Exit status: 0 when every
// bench produced a merged file, 1 when any bench failed, 2 on usage or
// setup errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/bench_all.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --bench-dir <dir> --out <dir> [--reps N] [--bench-ms M] [--only SUB]\n"
               "  --reps defaults to MACHLOCK_BENCH_REPS (else 1)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  mach::bench_all_options opts;
  opts.reps = mach::bench_reps_from_env(1);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--bench-dir") {
      const char* v = next("--bench-dir");
      if (v == nullptr) return usage(argv[0]);
      opts.bench_dir = v;
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return usage(argv[0]);
      opts.out_dir = v;
    } else if (arg == "--reps") {
      const char* v = next("--reps");
      if (v == nullptr) return usage(argv[0]);
      opts.reps = std::atoi(v);
      if (opts.reps < 1) return usage(argv[0]);
    } else if (arg == "--bench-ms") {
      const char* v = next("--bench-ms");
      if (v == nullptr) return usage(argv[0]);
      opts.bench_ms = std::atoi(v);
    } else if (arg == "--only") {
      const char* v = next("--only");
      if (v == nullptr) return usage(argv[0]);
      opts.only = v;
    } else if (arg == "--quiet") {
      opts.verbose = false;
    } else {
      std::fprintf(stderr, "%s: unknown argument %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if (opts.bench_dir.empty() || opts.out_dir.empty()) return usage(argv[0]);

  mach::bench_all_report report;
  std::string err;
  if (!mach::run_bench_all(opts, &report, &err)) {
    std::fprintf(stderr, "bench_all: %s\n", err.c_str());
    return 2;
  }
  std::printf("bench_all: %d bench(es), %zu baseline file(s) written to %s, %d failed\n",
              report.benches_run, report.written.size(), opts.out_dir.c_str(),
              report.benches_failed);
  for (const std::string& e : report.errors) std::printf("bench_all: error: %s\n", e.c_str());
  return report.benches_failed == 0 ? 0 : 1;
}
